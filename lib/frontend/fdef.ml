type error = {
  message : string;
  where : string option;
}

type t = {
  name : string;
  description : string;
  extensions : string list;
  multi : bool;
  route_canonical : bool;
  parse : string -> ((string * Lcm_cfg.Cfg.t) list, error) result;
  print : Lcm_cfg.Cfg.t -> string;
}

let err ?where fmt = Printf.ksprintf (fun message -> Error { message; where }) fmt
