module Cfg = Lcm_cfg.Cfg
module Cfg_text = Lcm_cfg.Cfg_text
module Lower = Lcm_cfg.Lower
module Parser = Lcm_ir.Parser
module Lexer = Lcm_ir.Lexer

type error = Fdef.error = {
  message : string;
  where : string option;
}

type t = Fdef.t = {
  name : string;
  description : string;
  extensions : string list;
  multi : bool;
  route_canonical : bool;
  parse : string -> ((string * Cfg.t) list, error) result;
  print : Cfg.t -> string;
}

(* ---- the built-in frontends ---- *)

let miniimp =
  {
    name = "miniimp";
    description = "structured MiniImp source (the paper's running language)";
    extensions = [ ".imp" ];
    multi = true;
    (* Lowering renumbers and desugars: content-addressing miniimp on the
       canonical graph would be sound, but parsing is not a cheap
       normalization, so the router keys on the raw source instead. *)
    route_canonical = false;
    parse =
      (fun text ->
        match Lower.program (Parser.parse_program text) with
        | funcs -> Ok funcs
        | exception Parser.Parse_error (m, line, col) ->
          Fdef.err ~where:(Printf.sprintf "%d:%d" line col) "miniimp parse error at %d:%d: %s" line col m
        | exception Lexer.Lex_error (m, line, col) ->
          Fdef.err ~where:(Printf.sprintf "%d:%d" line col) "miniimp lex error at %d:%d: %s" line col m);
    print = Cfg.to_string;
  }

let cfg =
  {
    name = "cfg";
    description = "textual control-flow graphs, exactly what the engine prints";
    extensions = [ ".cfg" ];
    multi = false;
    route_canonical = true;
    parse =
      (fun text ->
        match Cfg_text.parse text with
        | g -> Ok [ (Cfg.name g, g) ]
        | exception Cfg_text.Parse_error (m, line) ->
          Fdef.err ~where:(Printf.sprintf "line %d" line) "cfg parse error at line %d: %s" line m);
    print = Cfg.to_string;
  }

let bril =
  {
    name = "bril";
    description = "Bril JSON programs (https://capra.cs.cornell.edu/bril/)";
    extensions = [ ".bril"; ".json" ];
    multi = true;
    route_canonical = true;
    parse =
      (fun text ->
        match Bril.parse_program text with
        | funcs -> Ok funcs
        | exception Bril.Err (m, path) -> Fdef.err ~where:path "bril parse error at %s: %s" path m);
    print = Bril.print;
  }

(* ---- registry ---- *)

let all = [ miniimp; cfg; bril ]
let find name = List.find_opt (fun f -> f.name = name) all
let names = List.map (fun f -> f.name) all
let default = miniimp

let of_extension path =
  let suffix f = List.exists (fun ext -> Filename.check_suffix path ext) f.extensions in
  List.find_opt suffix all

(* ---- function selection ----
   One uniform policy over [parse]'s function list, shared by the engine
   and the CLI so wire and command line agree on every message. *)

type pick_error =
  | Parse of error  (** the program text did not parse *)
  | Pick of string  (** parsed fine, but function selection failed *)

let parse_one fe ?func text =
  match fe.parse text with
  | Error e -> Error (Parse e)
  | Ok funcs ->
    (match (func, funcs) with
    | None, [ (_, g) ] -> Ok g
    | None, [] -> Error (Parse { message = "program defines no function"; where = None })
    | None, _ ->
      Error
        (Pick
           (Printf.sprintf "program defines %d functions; pick one with \"function\" (%s)"
              (List.length funcs)
              (String.concat ", " (List.map fst funcs))))
    | Some f, _ when not fe.multi ->
      (* Formats denoting one graph ignore selection, as the engine always
         has: a [func] field on a cfg request is not an error. *)
      ignore f;
      (match funcs with
      | [ (_, g) ] -> Ok g
      | _ -> Error (Pick (Printf.sprintf "format %S does not support function selection" fe.name)))
    | Some f, _ ->
      (match List.assoc_opt f funcs with
      | Some g -> Ok g
      | None -> Error (Pick (Printf.sprintf "no function %S in program" f))))
