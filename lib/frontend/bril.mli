(** Self-contained Bril JSON codec (https://capra.cs.cornell.edu/bril/).

    The reader lowers Bril's flat instruction streams onto our CFG:
    integer/boolean value operations become expression assignments (PRE
    candidates); calls, memory operations and other extensions become
    opaque {!Lcm_ir.Instr.Effect} instructions that are never moved and
    conservatively kill the expressions of the variables they touch.
    The writer renders an optimized graph back as a legal Bril function,
    inferring [int]/[bool] types and materializing constant operands.

    Use through {!Frontend.find "bril"} rather than directly: the
    registry entry wraps {!Err} into the uniform {!Fdef.error}. *)

(** [Err (message, path)] — [path] is the offending JSON path, e.g.
    ["functions[0].instrs[2]"], or ["$"] for document-level problems. *)
exception Err of string * string

(** All functions of the program, as validated graphs.  Raises {!Err}. *)
val parse_program : string -> (string * Lcm_cfg.Cfg.t) list

(** One graph as a single-function Bril program (compact JSON). *)
val print : Lcm_cfg.Cfg.t -> string
