(** The frontend registry.

    Mirrors the pass registry ({!Lcm_eval.Registry}): every surface format
    the system understands is one {!Fdef.t} entry here, and the engine, the
    CLI, the shard router and the corpus driver resolve formats by name
    through {!find} instead of hard-coding parsers.  Adding a format means
    adding an entry, nothing else. *)

type error = Fdef.error = {
  message : string;
  where : string option;
}

type t = Fdef.t = {
  name : string;
  description : string;
  extensions : string list;
  multi : bool;
  route_canonical : bool;
  parse : string -> ((string * Lcm_cfg.Cfg.t) list, error) result;
  print : Lcm_cfg.Cfg.t -> string;
}

val miniimp : t
(** Structured MiniImp source; the default and the paper's language. *)

val cfg : t
(** Textual CFGs, exactly what {!Lcm_cfg.Cfg.to_string} prints. *)

val bril : t
(** Bril JSON programs; see {!Bril}. *)

val all : t list
(** Registration order: [miniimp] first (the default). *)

val find : string -> t option
(** By wire name ({!Fdef.t.name}). *)

val names : string list

val default : t
(** [miniimp]. *)

val of_extension : string -> t option
(** By file suffix, e.g. ["prog.json"] resolves to {!bril}. *)

(** Why {!parse_one} failed: a parse error in the text, or a selection
    problem over a well-parsed program.  The engine maps [Parse] to the
    wire's [parse_error] and [Pick] to [bad_request]. *)
type pick_error =
  | Parse of error
  | Pick of string

val parse_one : t -> ?func:string -> string -> (Lcm_cfg.Cfg.t, pick_error) result
(** The one graph a request denotes: the sole function, or the one named
    by [func] for formats with [multi = true]. *)
