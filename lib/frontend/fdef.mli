(** The frontend interface: how program text in some surface format
    becomes control-flow graphs, and how graphs print back.

    A frontend is a first-class record (mirroring the pass registry's
    shape, {!Lcm_eval.Registry}) so that new formats are registry entries,
    not forks of the loading code.  The engine, the CLI, the shard router
    and the corpus driver all go through this interface. *)

(** A parse failure with uniform position context.  [message] is the
    complete human-readable diagnostic (stable across CLI and wire);
    [where] is the bare position — a line ("line 3"), a line:column
    ("3:7"), or a JSON path ("functions[0].instrs[2]") — for callers that
    compose their own message. *)
type error = {
  message : string;
  where : string option;
}

type t = {
  name : string;  (** wire name: the protocol's [format] field value *)
  description : string;
  extensions : string list;  (** file suffixes claimed, e.g. [[".bril"; ".json"]] *)
  multi : bool;
      (** the format can define several functions, so request-level
          function selection ("function" field / [--func]) applies;
          false for formats that denote exactly one graph *)
  route_canonical : bool;
      (** parsing is cheap normalization, so the shard router may
          parse+reprint on its own process to content-address requests
          (structurally identical programs share a digest however they
          were written); false keys routing on the raw source text and
          defers parsing to the worker *)
  parse : string -> ((string * Lcm_cfg.Cfg.t) list, error) result;
      (** the program as named functions, each a validated graph *)
  print : Lcm_cfg.Cfg.t -> string;
      (** render one optimized graph back into the surface format *)
}

(** [Error { message; where }] built from a format string. *)
val err : ?where:string -> ('a, unit, string, (('b, error) result)) format4 -> 'a
