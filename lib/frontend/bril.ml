(* A self-contained Bril JSON codec (https://capra.cs.cornell.edu/bril/):
   reader lowering Bril functions onto our CFG, and a writer rendering
   optimized graphs back out as Bril.

   Mapping, reading:
   - integer/boolean value operations (const, id, add, sub, mul, div,
     eq, lt, gt, le, ge, and, or, not — plus our [mod], [ne] and [neg]
     extensions, see below) become [Instr.Assign] of [Expr] terms, i.e.
     genuine PRE candidates;
   - [print] with one argument becomes the native [Instr.Print];
   - everything else — [call], multi-argument [print], the memory
     extension ([alloc], [free], [store], [load], [ptradd]), floats,
     unknown opcodes — lowers as an opaque [Instr.Effect]: never a
     motion candidate, conservatively killing the expressions of every
     variable it touches;
   - labels split blocks; [jmp]/[br] become terminators; [ret x] stores
     into [Lower.return_var] and jumps to the exit block; [nop] is
     dropped.

   Writing re-emits one Bril function per graph, inferring [int]/[bool]
   types by fixpoint over operator shapes and materializing constant
   operands as fresh [const] temporaries (Bril arguments are variable
   names).  Three opcodes are emitted that core Bril lacks an exact
   spelling for — [mod], [ne] and unary [neg] — chosen so that the
   reader maps them back and parse ∘ print is a graph isomorphism; a
   strictly core-Bril consumer would rewrite them as two-instruction
   sequences instead. *)

module Json = Lcm_obs.Json
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Lower = Lcm_cfg.Lower
module Validate = Lcm_cfg.Validate
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr

exception Err of string * string (* message, JSON path *)

let fail path fmt = Printf.ksprintf (fun m -> raise (Err (m, path))) fmt

(* ---- types as tokens ----
   Bril types are JSON ("int", {"ptr": "int"}); internally they ride
   along as compact tokens ("int", "ptr<int>") inside [Instr.Effect]. *)

let rec token_of_type path = function
  | Json.String s -> s
  | Json.Obj [ (k, v) ] -> k ^ "<" ^ token_of_type path v ^ ">"
  | _ -> fail path "unsupported type"

let rec type_of_token s =
  match String.index_opt s '<' with
  | None -> Json.String s
  | Some i when String.length s > 1 && s.[String.length s - 1] = '>' ->
    Json.Obj [ (String.sub s 0 i, type_of_token (String.sub s (i + 1) (String.length s - i - 2))) ]
  | Some _ -> Json.String s

(* ---- opcode tables (shared by reader and writer) ---- *)

let binop_of_op = function
  | "add" -> Some Expr.Add
  | "sub" -> Some Expr.Sub
  | "mul" -> Some Expr.Mul
  | "div" -> Some Expr.Div
  | "mod" -> Some Expr.Mod
  | "eq" -> Some Expr.Eq
  | "ne" -> Some Expr.Ne
  | "lt" -> Some Expr.Lt
  | "le" -> Some Expr.Le
  | "gt" -> Some Expr.Gt
  | "ge" -> Some Expr.Ge
  | "and" -> Some Expr.And
  | "or" -> Some Expr.Or
  | _ -> None

let op_of_binop = function
  | Expr.Add -> "add"
  | Expr.Sub -> "sub"
  | Expr.Mul -> "mul"
  | Expr.Div -> "div"
  | Expr.Mod -> "mod"
  | Expr.Eq -> "eq"
  | Expr.Ne -> "ne"
  | Expr.Lt -> "lt"
  | Expr.Le -> "le"
  | Expr.Gt -> "gt"
  | Expr.Ge -> "ge"
  | Expr.And -> "and"
  | Expr.Or -> "or"

let unop_of_op = function
  | "not" -> Some Expr.Not
  | "neg" -> Some Expr.Neg
  | _ -> None

(* ---- reader ---- *)

let get_string path field j =
  match Option.bind (Json.member field j) Json.to_string_opt with
  | Some s -> s
  | None -> fail path "missing or non-string field %S" field

let get_string_list path field j =
  match Json.member field j with
  | None | Some Json.Null -> []
  | Some (Json.List xs) ->
    List.map
      (function
        | Json.String s -> s
        | _ -> fail path "field %S must be a list of strings" field)
      xs
  | Some _ -> fail path "field %S must be a list of strings" field

(* One parsed Bril instruction (terminators included, handled by the
   block builder). *)
type instr =
  | I_plain of Instr.t
  | I_label of string
  | I_jmp of string
  | I_br of string * string * string
  | I_ret of string option
  | I_nop

let parse_instr path j =
  match j with
  | Json.Obj _ when Json.member "label" j <> None ->
    (match Json.member "label" j with
    | Some (Json.String l) -> I_label l
    | _ -> fail path "label must be a string")
  | Json.Obj _ ->
    let op =
      match Option.bind (Json.member "op" j) Json.to_string_opt with
      | Some op -> op
      | None -> fail path "instruction has neither \"op\" nor \"label\""
    in
    let args = get_string_list path "args" j in
    let labels = get_string_list path "labels" j in
    let funcs = get_string_list path "funcs" j in
    let dest () = get_string path "dest" j in
    let ty () = token_of_type path (Option.value (Json.member "type" j) ~default:Json.Null) in
    let effect () =
      let d =
        match Json.member "dest" j with
        | None | Some Json.Null -> None
        | Some _ -> Some (dest (), ty ())
      in
      I_plain
        (Instr.Effect
           { Instr.eff_op = op; eff_dest = d; eff_args = List.map (fun a -> Expr.Var a) args; eff_funcs = funcs })
    in
    (match op with
    | "nop" -> I_nop
    | "jmp" ->
      (match labels with
      | [ l ] -> I_jmp l
      | _ -> fail path "jmp needs exactly one label")
    | "br" ->
      (match (args, labels) with
      | [ c ], [ t; f ] -> I_br (c, t, f)
      | _ -> fail path "br needs one argument and two labels")
    | "ret" ->
      (match args with
      | [] -> I_ret None
      | [ a ] -> I_ret (Some a)
      | _ -> fail path "ret takes at most one argument")
    | "const" ->
      let d = dest () in
      (match (ty (), Json.member "value" j) with
      | "int", Some (Json.Int n) -> I_plain (Instr.Assign (d, Expr.Atom (Expr.Const n)))
      | "bool", Some (Json.Bool b) -> I_plain (Instr.Assign (d, Expr.Atom (Expr.Const (if b then 1 else 0))))
      | ("int" | "bool"), _ -> fail path "const value does not match its type"
      | t, _ -> fail path "unsupported constant type %S" t)
    | "id" ->
      (match (ty (), args) with
      | ("int" | "bool"), [ a ] -> I_plain (Instr.Assign (dest (), Expr.Atom (Expr.Var a)))
      | _ -> effect ())
    | "print" ->
      (match args with
      | [ a ] -> I_plain (Instr.Print (Expr.Var a))
      | _ -> effect ())
    | _ ->
      (match (binop_of_op op, unop_of_op op, args) with
      | Some b, _, [ x; y ] when ty () = "int" || ty () = "bool" ->
        I_plain (Instr.Assign (dest (), Expr.Binary (b, Expr.Var x, Expr.Var y)))
      | _, Some u, [ x ] when ty () = "int" || ty () = "bool" ->
        I_plain (Instr.Assign (dest (), Expr.Unary (u, Expr.Var x)))
      | _ -> effect ()))
  | _ -> fail path "instruction must be a JSON object"

(* A basic block under construction: Bril's flat instruction stream is
   split at labels and after terminators. *)
type term =
  | T_jmp of string
  | T_br of string * string * string
  | T_ret of string option
  | T_fall (* falls through to the next segment (or the function's end) *)

type seg = {
  s_label : string option;
  s_path : string;
  mutable s_body : Instr.t list; (* reversed *)
  mutable s_term : term;
}

let segments fpath instrs =
  let segs = ref [] in
  let current = ref None in
  let open_seg ?label path = current := Some { s_label = label; s_path = path; s_body = []; s_term = T_fall } in
  let close term =
    match !current with
    | Some s ->
      s.s_term <- term;
      segs := s :: !segs;
      current := None
    | None -> ()
  in
  List.iteri
    (fun i j ->
      let path = Printf.sprintf "%s.instrs[%d]" fpath i in
      match parse_instr path j with
      | I_nop -> ()
      | I_label l ->
        close T_fall;
        open_seg ~label:l path
      | I_jmp l ->
        if !current = None then open_seg path;
        close (T_jmp l)
      | I_br (c, t, f) ->
        if !current = None then open_seg path;
        close (T_br (c, t, f))
      | I_ret a ->
        if !current = None then open_seg path;
        close (T_ret a)
      | I_plain instr ->
        (match !current with
        | None -> open_seg path
        | Some _ -> ());
        (match !current with
        | Some s -> s.s_body <- instr :: s.s_body
        | None -> assert false))
    instrs;
  close T_fall;
  List.rev !segs

let parse_function fpath j =
  let name = get_string fpath "name" j in
  let instrs =
    match Json.member "instrs" j with
    | Some (Json.List xs) -> xs
    | _ -> fail fpath "missing field \"instrs\""
  in
  let segs = segments fpath instrs in
  let g = Cfg.create ~name () in
  let exit_l = Cfg.exit_label g in
  (* Allocate one block per segment; labels resolve to their segment's
     block.  A leading *unlabelled* segment cannot be a branch target, so
     it becomes the entry block itself; when the function opens with a
     label (Bril code may branch back to it), the entry stays a bare
     [goto first-segment] stub — our entry has no predecessors by
     construction.  The asymmetry makes [parse (print g)] reproduce [g]'s
     block structure exactly: {!print} emits the entry unlabelled. *)
  let blocks =
    List.mapi
      (fun k s ->
        if k = 0 && s.s_label = None then (s, Cfg.entry g)
        else (s, Cfg.add_block g ~instrs:[] ~term:Cfg.Halt))
      segs
  in
  let by_label = Hashtbl.create 16 in
  List.iter
    (fun (s, l) ->
      match s.s_label with
      | Some name ->
        if Hashtbl.mem by_label name then fail s.s_path "duplicate label %S" name;
        Hashtbl.replace by_label name l
      | None -> ())
    blocks;
  let resolve path name =
    match Hashtbl.find_opt by_label name with
    | Some l -> l
    | None -> fail path "unknown label %S" name
  in
  let rec wire = function
    | [] -> ()
    | (s, l) :: rest ->
      let body = List.rev s.s_body in
      let next = match rest with (_, l') :: _ -> Some l' | [] -> None in
      let body, term =
        match s.s_term with
        | T_jmp t -> (body, Cfg.Goto (resolve s.s_path t))
        | T_br (c, t, f) -> (body, Cfg.Branch (Expr.Var c, resolve s.s_path t, resolve s.s_path f))
        | T_ret None -> (body, Cfg.Goto exit_l)
        | T_ret (Some x) when String.equal x Lower.return_var ->
          (* [ret _ret] is our own writer's spelling; appending
             [_ret := _ret] would grow the graph on every round trip. *)
          (body, Cfg.Goto exit_l)
        | T_ret (Some x) -> (body @ [ Instr.Assign (Lower.return_var, Expr.Atom (Expr.Var x)) ], Cfg.Goto exit_l)
        | T_fall -> (body, Cfg.Goto (Option.value next ~default:exit_l))
      in
      Cfg.set_instrs g l body;
      Cfg.set_term g l term;
      wire rest
  in
  wire blocks;
  (match blocks with
  | (_, l0) :: _ when not (Label.equal l0 (Cfg.entry g)) ->
    Cfg.set_term g (Cfg.entry g) (Cfg.Goto l0)
  | _ -> (* entry merged with the first segment (or no segments at all) *) ());
  Cfg.remove_unreachable g;
  (match Validate.check g with
  | [] -> ()
  | issues -> fail fpath "invalid graph: %s" (String.concat "; " issues));
  (name, g)

let parse_program text =
  match Json.parse text with
  | exception Json.Parse_error m -> raise (Err ("malformed JSON: " ^ m, "$"))
  | j ->
    (match Json.member "functions" j with
    | Some (Json.List fs) ->
      if fs = [] then raise (Err ("program defines no function", "functions"));
      List.mapi (fun i f -> parse_function (Printf.sprintf "functions[%d]" i) f) fs
    | _ -> raise (Err ("missing field \"functions\"", "$")))

(* ---- writer ---- *)

(* int/bool inference by fixpoint: definitions constrain their target
   (comparisons and logic yield bool, arithmetic int), uses constrain
   their operands, copies propagate, effect destinations carry their
   declared token.  Unconstrained variables default to int.  First
   constraint wins: a variable reused at several types (possible in
   synthetic graphs, not in well-typed Bril input) keeps its first
   inferred type — the reader does not type-check, so such programs
   still round-trip isomorphically. *)
let infer_types g =
  let ty = Hashtbl.create 32 in
  let changed = ref true in
  let set v t =
    if not (Hashtbl.mem ty v) then begin
      Hashtbl.replace ty v t;
      changed := true
    end
  in
  let set_operand t = function
    | Expr.Var v -> set v t
    | Expr.Const _ -> ()
  in
  let result_type = function
    | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.Eq | Expr.Ne | Expr.And | Expr.Or -> "bool"
    | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod -> "int"
  in
  let operand_type = function
    | Expr.And | Expr.Or -> "bool"
    | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge
    | Expr.Eq | Expr.Ne -> "int"
  in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        List.iter
          (fun i ->
            match i with
            | Instr.Assign (v, Expr.Binary (op, a, b)) ->
              set v (result_type op);
              set_operand (operand_type op) a;
              set_operand (operand_type op) b
            | Instr.Assign (v, Expr.Unary (Expr.Not, a)) ->
              set v "bool";
              set_operand "bool" a
            | Instr.Assign (v, Expr.Unary (Expr.Neg, a)) ->
              set v "int";
              set_operand "int" a
            | Instr.Assign (v, Expr.Atom (Expr.Var w)) ->
              (match (Hashtbl.find_opt ty w, Hashtbl.find_opt ty v) with
              | Some t, None -> set v t
              | None, Some t -> set w t
              | _ -> ())
            | Instr.Assign (_, Expr.Atom (Expr.Const _)) -> ()
            | Instr.Print a -> set_operand "int" a
            | Instr.Effect e ->
              (match e.Instr.eff_dest with
              | Some (v, t) -> set v t
              | None -> ()))
          (Cfg.instrs g l);
        match Cfg.term g l with
        | Cfg.Branch (c, _, _) -> set_operand "bool" c
        | Cfg.Goto _ | Cfg.Halt -> ())
      (Cfg.labels g)
  done;
  fun v -> Option.value (Hashtbl.find_opt ty v) ~default:"int"

(* Variables the function may read before writing become its parameters.
   A syntactic free-variable check is not enough: a name can be both an
   input and a later destination (a call overwriting one of its own
   arguments), so this is live-in at the entry — classic backward
   liveness to a fixpoint. *)
let free_vars g =
  let labels = Cfg.labels g in
  (* Per-block gen (read before any local write) and kill (written). *)
  let local l =
    let gen = Hashtbl.create 8 and killed = Hashtbl.create 8 in
    List.iter
      (fun i ->
        List.iter (fun v -> if not (Hashtbl.mem killed v) then Hashtbl.replace gen v ()) (Instr.uses i);
        Option.iter (fun v -> Hashtbl.replace killed v ()) (Instr.defs i))
      (Cfg.instrs g l);
    (match Cfg.term g l with
    | Cfg.Branch (Expr.Var v, _, _) -> if not (Hashtbl.mem killed v) then Hashtbl.replace gen v ()
    | Cfg.Branch (Expr.Const _, _, _) | Cfg.Goto _ | Cfg.Halt -> ());
    (gen, killed)
  in
  let locals = List.map (fun l -> (l, local l)) labels in
  let live_in : (Label.t, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace live_in l (Hashtbl.create 8)) labels;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (l, (gen, killed)) ->
        let here = Hashtbl.find live_in l in
        let add v =
          if not (Hashtbl.mem here v) then begin
            Hashtbl.replace here v ();
            changed := true
          end
        in
        Hashtbl.iter (fun v () -> add v) gen;
        List.iter
          (fun s ->
            Hashtbl.iter (fun v () -> if not (Hashtbl.mem killed v) then add v) (Hashtbl.find live_in s))
          (Cfg.successors g l))
      locals
  done;
  let at_entry = Hashtbl.find live_in (Cfg.entry g) in
  List.filter (Hashtbl.mem at_entry) (Cfg.all_vars g)

let defines g v =
  List.exists
    (fun l ->
      List.exists (fun i -> Instr.defs i = Some v) (Cfg.instrs g l))
    (Cfg.labels g)

let print g =
  let type_of = infer_types g in
  let taken = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.replace taken v ()) (Cfg.all_vars g);
  let counter = ref 0 in
  let fresh () =
    let rec go () =
      let c = Printf.sprintf "c%d" !counter in
      incr counter;
      if Hashtbl.mem taken c then go ()
      else begin
        Hashtbl.replace taken c ();
        c
      end
    in
    go ()
  in
  let out = ref [] in
  let emit j = out := j :: !out in
  let const_instr d t n =
    Json.Obj
      [
        ("op", Json.String "const");
        ("dest", Json.String d);
        ("type", Json.String t);
        ("value", (if t = "bool" then Json.Bool (n <> 0) else Json.Int n));
      ]
  in
  (* Bril arguments are variable names: a constant operand materializes
     as a fresh [const] temporary right before its use. *)
  let operand t = function
    | Expr.Var v -> v
    | Expr.Const n ->
      let d = fresh () in
      emit (const_instr d t n);
      d
  in
  let value_instr op dest dty args =
    Json.Obj
      [
        ("op", Json.String op);
        ("dest", Json.String dest);
        ("type", type_of_token dty);
        ("args", Json.List (List.map (fun a -> Json.String a) args));
      ]
  in
  let operand_type = function
    | Expr.And | Expr.Or -> "bool"
    | _ -> "int"
  in
  let result_type = function
    | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.Eq | Expr.Ne | Expr.And | Expr.Or -> "bool"
    | Expr.Add | Expr.Sub | Expr.Mul | Expr.Div | Expr.Mod -> "int"
  in
  let emit_instr = function
    | Instr.Assign (v, Expr.Atom (Expr.Const n)) -> emit (const_instr v (type_of v) n)
    | Instr.Assign (v, Expr.Atom (Expr.Var w)) -> emit (value_instr "id" v (type_of v) [ w ])
    | Instr.Assign (v, Expr.Unary (op, a)) ->
      let t = match op with Expr.Not -> "bool" | Expr.Neg -> "int" in
      emit (value_instr (match op with Expr.Not -> "not" | Expr.Neg -> "neg") v t [ operand t a ])
    | Instr.Assign (v, Expr.Binary (op, a, b)) ->
      let t = operand_type op in
      let xa = operand t a in
      let xb = operand t b in
      emit (value_instr (op_of_binop op) v (result_type op) [ xa; xb ])
    | Instr.Print a -> emit (Json.Obj [ ("op", Json.String "print"); ("args", Json.List [ Json.String (operand "int" a) ]) ])
    | Instr.Effect e ->
      let args = List.map (operand "int") e.Instr.eff_args in
      emit
        (Json.Obj
           ([ ("op", Json.String e.Instr.eff_op) ]
           @ (match e.Instr.eff_dest with
             | Some (v, t) -> [ ("dest", Json.String v); ("type", type_of_token t) ]
             | None -> [])
           @ (if e.Instr.eff_funcs = [] then []
              else [ ("funcs", Json.List (List.map (fun f -> Json.String f) e.Instr.eff_funcs)) ])
           @ if args = [] then [] else [ ("args", Json.List (List.map (fun a -> Json.String a) args)) ]))
  in
  let returns = defines g Lower.return_var in
  let ret_instr =
    Json.Obj
      (("op", Json.String "ret")
      :: (if returns then [ ("args", Json.List [ Json.String Lower.return_var ]) ] else []))
  in
  let label_name l = Printf.sprintf "b%d" (l : Label.t :> int) in
  let entry_l = Cfg.entry g in
  let exit_l = Cfg.exit_label g in
  (* Keep parse ∘ print structure-preserving: the entry prints unlabeled
     (the reader folds a leading unlabeled segment back into its entry
     block), and an empty exit that no branch targets is not printed at
     all — a [Goto exit] inlines as [ret] instead.  A [Goto] can spell
     its target as a fall-through-to-[ret], a [Branch] cannot. *)
  let entry_inline = Cfg.predecessors g entry_l = [] in
  let exit_needed =
    Cfg.instrs g exit_l <> []
    || List.exists
         (fun l ->
           (not (Label.equal l exit_l))
           &&
           match Cfg.term g l with
           | Cfg.Branch (_, a, b) -> Label.equal a exit_l || Label.equal b exit_l
           | Cfg.Goto _ | Cfg.Halt -> false)
         (Cfg.labels g)
  in
  List.iter
    (fun l ->
      if Label.equal l exit_l && not exit_needed then ()
      else begin
        if not (Label.equal l entry_l && entry_inline) then
          emit (Json.Obj [ ("label", Json.String (label_name l)) ]);
        List.iter emit_instr (Cfg.instrs g l);
        if Label.equal l exit_l then emit ret_instr
        else
          match Cfg.term g l with
          | Cfg.Goto m when Label.equal m exit_l && not exit_needed -> emit ret_instr
          | Cfg.Goto m -> emit (Json.Obj [ ("op", Json.String "jmp"); ("labels", Json.List [ Json.String (label_name m) ]) ])
          | Cfg.Branch (c, a, b) ->
            let cv = operand "bool" c in
            emit
              (Json.Obj
                 [
                   ("op", Json.String "br");
                   ("args", Json.List [ Json.String cv ]);
                   ("labels", Json.List [ Json.String (label_name a); Json.String (label_name b) ]);
                 ])
          | Cfg.Halt -> emit ret_instr
      end)
    (Cfg.labels g);
  let func =
    Json.Obj
      ([ ("name", Json.String (Cfg.name g)) ]
      @ [
          ( "args",
            Json.List
              (List.map
                 (fun v -> Json.Obj [ ("name", Json.String v); ("type", type_of_token (type_of v)) ])
                 (List.sort String.compare (free_vars g))) );
        ]
      @ (if returns then [ ("type", type_of_token (type_of Lower.return_var)) ] else [])
      @ [ ("instrs", Json.List (List.rev !out)) ])
  in
  Json.to_string (Json.Obj [ ("functions", Json.List [ func ]) ])
