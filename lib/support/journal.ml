(* Length-prefixed, CRC-guarded record framing for the write-ahead
   journal.  Pure string codec: file layout and I/O policy (fsync,
   compaction, directory naming) live in the serving layer; this module
   only decides what a record looks like on disk and how to find the
   longest clean prefix of a possibly torn file. *)

let file_magic = "LCMJ1\n"

(* CRC-32 (IEEE 802.3, reflected), table-driven.  Kept here rather than
   pulling in a checksum dependency: the table is 256 words and the
   payloads are small JSON records. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let crc32 ?(crc = 0) s =
  let table = Lazy.force crc_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  String.iter
    (fun ch ->
      c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

(* A record is a 1-byte tag, a big-endian u32 payload length, a
   big-endian u32 CRC-32 of the payload, then the payload itself.  The
   tag byte doubles as a resync sanity check: a decoder positioned on
   anything other than 'R' knows the tail is garbage, not merely short. *)
let record_tag = 'R'
let header_len = 9

(* Refuse absurd lengths during decode so a corrupt length field cannot
   make the decoder wait for gigabytes of payload that will never come.
   64 MiB is orders of magnitude above any canonical program text. *)
let max_payload = 1 lsl 26

let encode_record payload =
  let n = String.length payload in
  if n > max_payload then invalid_arg "Journal.encode_record: payload too large";
  let b = Buffer.create (header_len + n) in
  Buffer.add_char b record_tag;
  let u32 v =
    Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
    Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char b (Char.chr (v land 0xFF))
  in
  u32 n;
  u32 (crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

let u32_at s i =
  (Char.code s.[i] lsl 24)
  lor (Char.code s.[i + 1] lsl 16)
  lor (Char.code s.[i + 2] lsl 8)
  lor Char.code s.[i + 3]

let decode ?(pos = 0) s =
  let len = String.length s in
  let out = ref [] in
  let p = ref pos in
  let status = ref `Clean in
  let stop st = status := st in
  (try
     while !p < len do
       if len - !p < header_len then begin
         stop `Torn;
         raise Exit
       end;
       if s.[!p] <> record_tag then begin
         stop `Torn;
         raise Exit
       end;
       let n = u32_at s (!p + 1) in
       let crc = u32_at s (!p + 5) in
       if n > max_payload then begin
         stop `Torn;
         raise Exit
       end;
       if len - !p - header_len < n then begin
         stop `Torn;
         raise Exit
       end;
       let payload = String.sub s (!p + header_len) n in
       if crc32 payload <> crc then begin
         stop `Torn;
         raise Exit
       end;
       out := payload :: !out;
       p := !p + header_len + n
     done
   with Exit -> ());
  (List.rev !out, !p, !status)
