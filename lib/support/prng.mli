(** Deterministic pseudo-random number generator (splitmix64).

    All random workloads in this repository — random programs, random CFGs,
    random interpreter inputs — draw from this generator so that every
    experiment is reproducible from a seed printed in its output. *)

type t

(** [create seed] is a fresh generator. *)
val create : int64 -> t

(** [of_int seed] is [create] on the sign-extended seed. *)
val of_int : int -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)
val int_in : t -> int -> int -> int

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [chance t ~num ~den] is true with probability [num/den]. *)
val chance : t -> num:int -> den:int -> bool

(** [choose t arr] is a uniform element of [arr], which must be non-empty. *)
val choose : t -> 'a array -> 'a

(** [choose_list t xs] is a uniform element of [xs], which must be non-empty. *)
val choose_list : t -> 'a list -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [split t] derives an independent generator and advances [t]. *)
val split : t -> t
