(* Bit vectors stored as an array of native ints, using every bit of the
   int (63 on 64-bit systems).  The last word keeps its unused high bits at
   zero so that [equal], [is_empty], [count] and [subset] can work
   word-wise without masking.

   The storage array may be *longer* than the vector needs: [of_buffer]
   wraps a pooled buffer whose capacity was rounded up to a size bucket
   (see Arena), so near-miss widths share buffers.  Every operation
   therefore iterates [nwords v] — the words the length actually spans —
   never [Array.length v.words]; words past [nwords] are dead storage with
   unspecified contents. *)

let bits_per_word = Sys.int_size

type t = { mutable len : int; words : int array }

let word_count len = (len + bits_per_word - 1) / bits_per_word
let words_for = word_count
let[@inline] nwords v = word_count v.len

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; words = Array.make (word_count len) 0 }

(* Mask of valid bits in the last word. *)
let last_mask len =
  let r = len mod bits_per_word in
  if r = 0 then -1 lsr (Sys.int_size - bits_per_word) else (1 lsl r) - 1

let normalize v =
  if v.len > 0 then begin
    let last = nwords v - 1 in
    v.words.(last) <- v.words.(last) land last_mask v.len
  end

let fill v b =
  Array.fill v.words 0 (nwords v) (if b then -1 else 0);
  if b then normalize v

let create_full len =
  let v = create len in
  fill v true;
  v

(* Wrap [buf] (capacity >= [words_for len]) as a [len]-bit vector.  The
   used prefix is explicitly cleared (or set, for [of_buffer_full]): a
   recycled buffer must never leak the previous checkout's bits — the
   arena property tests assert exactly this. *)
let of_buffer buf len =
  if len < 0 then invalid_arg "Bitvec.of_buffer: negative length";
  if Array.length buf < word_count len then
    invalid_arg
      (Printf.sprintf "Bitvec.of_buffer: buffer of %d words cannot hold %d bits" (Array.length buf)
         len);
  let v = { len; words = buf } in
  fill v false;
  v

let of_buffer_full buf len =
  let v = of_buffer buf len in
  fill v true;
  v

(* Rebind an existing vector to [len] bits over its own (possibly wider)
   buffer, clearing the used prefix.  This is what lets the arena recycle
   whole [t] records: a steady-state checkout re-initializes a parked view
   in place and allocates nothing at all. *)
let reinit v len =
  if len < 0 then invalid_arg "Bitvec.reinit: negative length";
  if Array.length v.words < word_count len then
    invalid_arg
      (Printf.sprintf "Bitvec.reinit: buffer of %d words cannot hold %d bits"
         (Array.length v.words) len);
  v.len <- len;
  fill v false

let reinit_full v len =
  reinit v len;
  fill v true

let buffer v = v.words

let length v = v.len

let check v i name =
  if i < 0 || i >= v.len then invalid_arg (Printf.sprintf "Bitvec.%s: index %d out of [0,%d)" name i v.len)

let get v i =
  check v i "get";
  v.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set v i b =
  check v i "set";
  let w = i / bits_per_word and m = 1 lsl (i mod bits_per_word) in
  if b then v.words.(w) <- v.words.(w) lor m else v.words.(w) <- v.words.(w) land lnot m

let copy v = { len = v.len; words = Array.sub v.words 0 (nwords v) }

let same_length a b name =
  if a.len <> b.len then invalid_arg (Printf.sprintf "Bitvec.%s: lengths %d and %d differ" name a.len b.len)

let blit ~src ~dst =
  same_length src dst "blit";
  let changed = ref false in
  for w = 0 to nwords src - 1 do
    if dst.words.(w) <> src.words.(w) then begin
      dst.words.(w) <- src.words.(w);
      changed := true
    end
  done;
  !changed

(* Top-level recursions: a [let rec] nested inside the function would
   capture the vector and allocate a closure per call — these run once per
   edge/visit on the hot path, so they must stay allocation-free. *)
let rec words_equal_from aw bw w =
  w < 0 || (Array.unsafe_get aw w = Array.unsafe_get bw w && words_equal_from aw bw (w - 1))

let equal a b =
  same_length a b "equal";
  words_equal_from a.words b.words (nwords a - 1)

let rec words_zero_from ws w = w < 0 || (Array.unsafe_get ws w = 0 && words_zero_from ws (w - 1))
let is_empty v = words_zero_from v.words (nwords v - 1)

let popcount =
  (* Kernighan's loop is fast enough for our word counts. *)
  let rec go n acc = if n = 0 then acc else go (n land (n - 1)) (acc + 1) in
  fun n -> go n 0

let count v =
  let acc = ref 0 in
  for w = 0 to nwords v - 1 do
    acc := !acc + popcount v.words.(w)
  done;
  !acc

let inplace op ~into v name =
  same_length into v name;
  let changed = ref false in
  for w = 0 to nwords into - 1 do
    let x = op into.words.(w) v.words.(w) in
    if x <> into.words.(w) then begin
      into.words.(w) <- x;
      changed := true
    end
  done;
  !changed

let union_into ~into v = inplace ( lor ) ~into v "union_into"
let inter_into ~into v = inplace ( land ) ~into v "inter_into"
let diff_into ~into v = inplace (fun a b -> a land lnot b) ~into v "diff_into"

(* into := into ∪ (src \ diff), one pass over the words.  This is the inner
   step of the LATER system (LATER = EARLIEST ∪ (LATERIN ∩ ¬ANTLOC)); fusing
   it halves the number of word sweeps in that loop. *)
let union_diff_into ~into src ~diff =
  same_length into src "union_diff_into";
  same_length into diff "union_diff_into";
  let changed = ref false in
  for w = 0 to nwords into - 1 do
    let x = into.words.(w) lor (src.words.(w) land lnot diff.words.(w)) in
    if x <> into.words.(w) then begin
      into.words.(w) <- x;
      changed := true
    end
  done;
  !changed

let union a b =
  let r = copy a in
  ignore (union_into ~into:r b);
  r

let inter a b =
  let r = copy a in
  ignore (inter_into ~into:r b);
  r

let diff a b =
  let r = copy a in
  ignore (diff_into ~into:r b);
  r

let complement v =
  let r = create v.len in
  for w = 0 to nwords v - 1 do
    r.words.(w) <- lnot v.words.(w)
  done;
  normalize r;
  r

let rec words_subset_from aw bw w =
  w < 0 || (Array.unsafe_get aw w land lnot (Array.unsafe_get bw w) = 0 && words_subset_from aw bw (w - 1))

let subset a b =
  same_length a b "subset";
  words_subset_from a.words b.words (nwords a - 1)

(* Number of trailing zeros of a non-zero word (branchy binary search; no
   hardware ctz is exposed for native ints). *)
let ntz x =
  let x = ref (x land -x) and n = ref 0 in
  if !x land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    x := !x lsr 32
  end;
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

(* Word-skipping: zero words cost one comparison, and within a word each set
   bit is extracted by lowest-set-bit stripping instead of testing every
   position.  The unused high bits of the last word are zero by invariant,
   so no length masking is needed. *)
let iter_true f v =
  for wi = 0 to nwords v - 1 do
    let w = ref v.words.(wi) in
    if !w <> 0 then begin
      let base = wi * bits_per_word in
      while !w <> 0 do
        f (base + ntz !w);
        w := !w land (!w - 1)
      done
    end
  done

let fold_true f v acc =
  let r = ref acc in
  iter_true (fun i -> r := f i !r) v;
  !r

let to_list v = List.rev (fold_true (fun i acc -> i :: acc) v [])

let of_list n is =
  let v = create n in
  List.iter (fun i -> set v i true) is;
  v

(* --- word-aligned slice views -------------------------------------------

   The parallel solver partitions the expression axis into word-aligned
   slices so that disjoint slices never share a word: each domain then owns
   its words outright and no masking (or locking) is needed on the
   boundary.  [slice] extracts such a view as a fresh vector; [blit_slice]
   writes one back.  Both require the offset to be word-aligned, and
   [blit_slice] additionally requires the slice to end on a word boundary
   or at the end of the destination — the only shapes a partition
   produces — so that whole-word copies are exact. *)

let aligned lo name =
  if lo < 0 || lo mod bits_per_word <> 0 then
    invalid_arg (Printf.sprintf "Bitvec.%s: offset %d is not word-aligned" name lo)

let slice v ~lo ~len =
  aligned lo "slice";
  if len < 0 || lo + len > v.len then
    invalid_arg (Printf.sprintf "Bitvec.slice: [%d,%d) out of [0,%d)" lo (lo + len) v.len);
  let r = create len in
  let w0 = lo / bits_per_word in
  Array.blit v.words w0 r.words 0 (word_count len);
  normalize r;
  r

let blit_slice ~src ~into ~lo =
  aligned lo "blit_slice";
  if lo + src.len > into.len then
    invalid_arg
      (Printf.sprintf "Bitvec.blit_slice: [%d,%d) out of [0,%d)" lo (lo + src.len) into.len);
  if src.len mod bits_per_word <> 0 && lo + src.len <> into.len then
    invalid_arg "Bitvec.blit_slice: slice must end on a word boundary or at the destination's end";
  let w0 = lo / bits_per_word in
  let changed = ref false in
  for w = 0 to nwords src - 1 do
    if into.words.(w0 + w) <> src.words.(w) then begin
      into.words.(w0 + w) <- src.words.(w);
      changed := true
    end
  done;
  !changed

(* Word-aligned partition of [0, nbits) into at most [pieces] contiguous
   slices of near-equal word counts.  Always covers the space exactly;
   returns a single slice when there are fewer words than pieces would
   need. *)
let slice_bounds ~nbits ~pieces =
  if nbits < 0 then invalid_arg "Bitvec.slice_bounds: negative nbits";
  if pieces < 1 then invalid_arg "Bitvec.slice_bounds: need at least one piece";
  let words = word_count nbits in
  if pieces = 1 || words <= 1 then [| (0, nbits) |]
  else begin
    let pieces = min pieces words in
    let base = words / pieces and extra = words mod pieces in
    let bounds = Array.make pieces (0, 0) in
    let wlo = ref 0 in
    for i = 0 to pieces - 1 do
      let w = base + if i < extra then 1 else 0 in
      let lo = !wlo * bits_per_word in
      let hi = min nbits ((!wlo + w) * bits_per_word) in
      bounds.(i) <- (lo, hi - lo);
      wlo := !wlo + w
    done;
    bounds
  end

let pp ppf v =
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Format.pp_print_int) (to_list v)
