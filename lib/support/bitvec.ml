(* Bit vectors stored as an array of native ints, using every bit of the
   int (63 on 64-bit systems).  The last word keeps its unused high bits at
   zero so that [equal], [is_empty], [count] and [subset] can work
   word-wise without masking. *)

let bits_per_word = Sys.int_size

type t = { len : int; words : int array }

let word_count len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; words = Array.make (word_count len) 0 }

(* Mask of valid bits in the last word. *)
let last_mask len =
  let r = len mod bits_per_word in
  if r = 0 then -1 lsr (Sys.int_size - bits_per_word) else (1 lsl r) - 1

let normalize v =
  if v.len > 0 then begin
    let last = Array.length v.words - 1 in
    v.words.(last) <- v.words.(last) land last_mask v.len
  end

let create_full len =
  let v = create len in
  Array.fill v.words 0 (Array.length v.words) (-1);
  normalize v;
  v

let length v = v.len

let check v i name =
  if i < 0 || i >= v.len then invalid_arg (Printf.sprintf "Bitvec.%s: index %d out of [0,%d)" name i v.len)

let get v i =
  check v i "get";
  v.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set v i b =
  check v i "set";
  let w = i / bits_per_word and m = 1 lsl (i mod bits_per_word) in
  if b then v.words.(w) <- v.words.(w) lor m else v.words.(w) <- v.words.(w) land lnot m

let copy v = { len = v.len; words = Array.copy v.words }

let same_length a b name =
  if a.len <> b.len then invalid_arg (Printf.sprintf "Bitvec.%s: lengths %d and %d differ" name a.len b.len)

let blit ~src ~dst =
  same_length src dst "blit";
  let changed = ref false in
  for w = 0 to Array.length src.words - 1 do
    if dst.words.(w) <> src.words.(w) then begin
      dst.words.(w) <- src.words.(w);
      changed := true
    end
  done;
  !changed

let equal a b =
  same_length a b "equal";
  let rec go w = w < 0 || (a.words.(w) = b.words.(w) && go (w - 1)) in
  go (Array.length a.words - 1)

let is_empty v =
  let rec go w = w < 0 || (v.words.(w) = 0 && go (w - 1)) in
  go (Array.length v.words - 1)

let fill v b =
  Array.fill v.words 0 (Array.length v.words) (if b then -1 else 0);
  if b then normalize v

let popcount =
  (* Kernighan's loop is fast enough for our word counts. *)
  let rec go n acc = if n = 0 then acc else go (n land (n - 1)) (acc + 1) in
  fun n -> go n 0

let count v = Array.fold_left (fun acc w -> acc + popcount w) 0 v.words

let inplace op ~into v name =
  same_length into v name;
  let changed = ref false in
  for w = 0 to Array.length into.words - 1 do
    let x = op into.words.(w) v.words.(w) in
    if x <> into.words.(w) then begin
      into.words.(w) <- x;
      changed := true
    end
  done;
  !changed

let union_into ~into v = inplace ( lor ) ~into v "union_into"
let inter_into ~into v = inplace ( land ) ~into v "inter_into"
let diff_into ~into v = inplace (fun a b -> a land lnot b) ~into v "diff_into"

(* into := into ∪ (src \ diff), one pass over the words.  This is the inner
   step of the LATER system (LATER = EARLIEST ∪ (LATERIN ∩ ¬ANTLOC)); fusing
   it halves the number of word sweeps in that loop. *)
let union_diff_into ~into src ~diff =
  same_length into src "union_diff_into";
  same_length into diff "union_diff_into";
  let changed = ref false in
  for w = 0 to Array.length into.words - 1 do
    let x = into.words.(w) lor (src.words.(w) land lnot diff.words.(w)) in
    if x <> into.words.(w) then begin
      into.words.(w) <- x;
      changed := true
    end
  done;
  !changed

let union a b =
  let r = copy a in
  ignore (union_into ~into:r b);
  r

let inter a b =
  let r = copy a in
  ignore (inter_into ~into:r b);
  r

let diff a b =
  let r = copy a in
  ignore (diff_into ~into:r b);
  r

let complement v =
  let r = { len = v.len; words = Array.map lnot v.words } in
  normalize r;
  r

let subset a b =
  same_length a b "subset";
  let rec go w = w < 0 || (a.words.(w) land lnot b.words.(w) = 0 && go (w - 1)) in
  go (Array.length a.words - 1)

(* Number of trailing zeros of a non-zero word (branchy binary search; no
   hardware ctz is exposed for native ints). *)
let ntz x =
  let x = ref (x land -x) and n = ref 0 in
  if !x land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    x := !x lsr 32
  end;
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

(* Word-skipping: zero words cost one comparison, and within a word each set
   bit is extracted by lowest-set-bit stripping instead of testing every
   position.  The unused high bits of the last word are zero by invariant,
   so no length masking is needed. *)
let iter_true f v =
  for wi = 0 to Array.length v.words - 1 do
    let w = ref v.words.(wi) in
    if !w <> 0 then begin
      let base = wi * bits_per_word in
      while !w <> 0 do
        f (base + ntz !w);
        w := !w land (!w - 1)
      done
    end
  done

let fold_true f v acc =
  let r = ref acc in
  iter_true (fun i -> r := f i !r) v;
  !r

let to_list v = List.rev (fold_true (fun i acc -> i :: acc) v [])

let of_list n is =
  let v = create n in
  List.iter (fun i -> set v i true) is;
  v

(* --- word-aligned slice views -------------------------------------------

   The parallel solver partitions the expression axis into word-aligned
   slices so that disjoint slices never share a word: each domain then owns
   its words outright and no masking (or locking) is needed on the
   boundary.  [slice] extracts such a view as a fresh vector; [blit_slice]
   writes one back.  Both require the offset to be word-aligned, and
   [blit_slice] additionally requires the slice to end on a word boundary
   or at the end of the destination — the only shapes a partition
   produces — so that whole-word copies are exact. *)

let aligned lo name =
  if lo < 0 || lo mod bits_per_word <> 0 then
    invalid_arg (Printf.sprintf "Bitvec.%s: offset %d is not word-aligned" name lo)

let slice v ~lo ~len =
  aligned lo "slice";
  if len < 0 || lo + len > v.len then
    invalid_arg (Printf.sprintf "Bitvec.slice: [%d,%d) out of [0,%d)" lo (lo + len) v.len);
  let r = create len in
  let w0 = lo / bits_per_word in
  Array.blit v.words w0 r.words 0 (word_count len);
  normalize r;
  r

let blit_slice ~src ~into ~lo =
  aligned lo "blit_slice";
  if lo + src.len > into.len then
    invalid_arg
      (Printf.sprintf "Bitvec.blit_slice: [%d,%d) out of [0,%d)" lo (lo + src.len) into.len);
  if src.len mod bits_per_word <> 0 && lo + src.len <> into.len then
    invalid_arg "Bitvec.blit_slice: slice must end on a word boundary or at the destination's end";
  let w0 = lo / bits_per_word in
  let changed = ref false in
  for w = 0 to Array.length src.words - 1 do
    if into.words.(w0 + w) <> src.words.(w) then begin
      into.words.(w0 + w) <- src.words.(w);
      changed := true
    end
  done;
  !changed

(* Word-aligned partition of [0, nbits) into at most [pieces] contiguous
   slices of near-equal word counts.  Always covers the space exactly;
   returns a single slice when there are fewer words than pieces would
   need. *)
let slice_bounds ~nbits ~pieces =
  if nbits < 0 then invalid_arg "Bitvec.slice_bounds: negative nbits";
  if pieces < 1 then invalid_arg "Bitvec.slice_bounds: need at least one piece";
  let words = word_count nbits in
  if pieces = 1 || words <= 1 then [| (0, nbits) |]
  else begin
    let pieces = min pieces words in
    let base = words / pieces and extra = words mod pieces in
    let bounds = Array.make pieces (0, 0) in
    let wlo = ref 0 in
    for i = 0 to pieces - 1 do
      let w = base + if i < extra then 1 else 0 in
      let lo = !wlo * bits_per_word in
      let hi = min nbits ((!wlo + w) * bits_per_word) in
      bounds.(i) <- (lo, hi - lo);
      wlo := !wlo + w
    done;
    bounds
  end

let pp ppf v =
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Format.pp_print_int) (to_list v)
