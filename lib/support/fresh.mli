(** Fresh-name generation that cannot collide with existing names.

    Several passes introduce new variables (PRE temporaries, local-value-
    numbering holders, parallel-copy scratch, SSA versions); each needs a
    prefix guaranteed not to clash with anything already in the program.
    [prefix] picks one by extending the seed with underscores until no
    existing name starts with it; a {!t} then mints [prefix0], [prefix1],
    ... *)

type t

(** [prefix ~existing seed] is the shortest extension of [seed] (by
    appended underscores) that no name in [existing] starts with. *)
val prefix : existing:string list -> string -> string

(** [create ~existing seed] is a mint whose names all start with
    [prefix ~existing seed]. *)
val create : existing:string list -> string -> t

(** The next fresh name. *)
val mint : t -> string

(** The prefix in use. *)
val prefix_of : t -> string
