(* A fixed-size pool of domains draining one shared task queue.

   Tasks are plain thunks; [run] enqueues a batch and the calling thread
   *helps* drain the queue until its own batch completes, so a task may
   itself call [run] on the same pool (pass-level overlap on top of
   slice-level fan-out) without deadlock: every thread that is waiting for
   a batch executes whatever work is queued, and blocks on the condition
   variable only when the queue is empty — at which point any pending task
   of its batch is running on some other thread and its completion will
   broadcast. *)

module Trace = Lcm_obs.Trace

type task = unit -> unit

(* Trace context is domain-local, so by itself it would not follow a task
   onto a worker domain and the task's spans would be orphans.  Capture the
   submitter's context at [run] time and reinstall it around each task,
   under a "pool.task" span.  Free when tracing is disabled (one atomic
   load) or the submitter is outside any trace. *)
let traced tasks =
  if not (Trace.enabled ()) then tasks
  else
    match Trace.current () with
    | None -> tasks
    | Some ctx ->
      List.map
        (fun task () -> Trace.with_ctx (Some ctx) (fun () -> Trace.span "pool.task" task))
        tasks

(* One [run] call.  [pending] counts tasks not yet finished; the first
   exception raised by any task of the batch is kept and re-raised by
   [run] after the whole batch has drained. *)
type batch = {
  mutable pending : int;
  mutable failure : exn option;
}

type t = {
  lock : Mutex.t;
  wake : Condition.t;  (* new work queued, a task finished, or shutdown *)
  queue : (task * batch) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  size : int;
}

let size t = t.size

(* Drain tasks until [finished ()] holds.  [finished] is evaluated with the
   lock held. *)
let help t finished =
  Mutex.lock t.lock;
  while not (finished ()) do
    match Queue.take_opt t.queue with
    | Some (task, batch) ->
      Mutex.unlock t.lock;
      (* "pool.task" is the worker-death chaos point: an injected raise here
         is exactly what a task dying on a pool domain looks like to the
         batch (first failure kept, re-raised by [run] after the drain). *)
      let failure = (try Fault.inject "pool.task"; task (); None with e -> Some e) in
      Mutex.lock t.lock;
      (match failure with
      | Some _ when batch.failure = None -> batch.failure <- failure
      | Some _ | None -> ());
      batch.pending <- batch.pending - 1;
      Condition.broadcast t.wake
    | None -> Condition.wait t.wake t.lock
  done;
  Mutex.unlock t.lock

let create n =
  if n < 1 then invalid_arg "Pool.create: need at least 1 domain";
  let t =
    {
      lock = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
      size = n;
    }
  in
  if n > 1 then
    t.workers <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> help t (fun () -> t.stop)));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let run t tasks =
  match traced tasks with
  | [] -> ()
  | [ task ] ->
    Fault.inject "pool.task";
    task ()
  | tasks when t.size <= 1 ->
    (* Single-domain pool: the sequential fallback, no queue round-trip.
       Same semantics as the parallel path: the whole batch drains, the
       first failure is re-raised afterwards. *)
    let failure = ref None in
    List.iter
      (fun task ->
        try
          Fault.inject "pool.task";
          task ()
        with e -> if !failure = None then failure := Some e)
      tasks;
    (match !failure with Some e -> raise e | None -> ())
  | tasks ->
    let batch = { pending = List.length tasks; failure = None } in
    Mutex.lock t.lock;
    List.iter (fun task -> Queue.add (task, batch) t.queue) tasks;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    help t (fun () -> batch.pending = 0);
    (match batch.failure with Some e -> raise e | None -> ())

(* [parallel_for] chunks the index space so the queue holds a bounded
   number of coarse tasks rather than one task per index. *)
let parallel_for t ?chunk n f =
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Pool.parallel_for: chunk must be >= 1"
      | None -> max 1 (n / (4 * t.size))
    in
    if t.size <= 1 || n <= chunk then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let tasks = ref [] in
      let lo = ref 0 in
      while !lo < n do
        let lo' = !lo and hi' = min n (!lo + chunk) in
        tasks :=
          (fun () ->
            for i = lo' to hi' - 1 do
              f i
            done)
          :: !tasks;
        lo := hi'
      done;
      run t !tasks
    end
  end

(* Default pool: size from LCM_DOMAINS when set (CI forces 1 and 4 to cover
   both the sequential-fallback and parallel paths), otherwise what the
   runtime recommends for this machine, capped to keep small machines from
   oversubscribing on wide corpus fan-outs. *)

let env_var = "LCM_DOMAINS"

let default_size () =
  match Option.bind (Sys.getenv_opt env_var) int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> min 8 (Domain.recommended_domain_count ())

let default_pool = ref None
let default_lock = Mutex.create ()

let default () =
  Mutex.lock default_lock;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
      let p = create (default_size ()) in
      default_pool := Some p;
      (* Idle workers block on the condition variable; join them at exit so
         the process terminates cleanly. *)
      at_exit (fun () -> shutdown p);
      p
  in
  Mutex.unlock default_lock;
  p

(* ---- per-domain scratch arenas --------------------------------------------

   The engine checks an arena out per request, keyed by the request's
   (blocks, exprs) *shape class* — both axes rounded up to powers of two so
   near-miss shapes reuse the same arenas instead of fragmenting into one
   pool per exact shape.  Arenas live in domain-local storage: no locks,
   and no arena ever crosses domains (an Arena.t is single-owner).

   Help-draining makes this reentrant in a subtle way: a request task
   blocked in [run] may execute *another* request inline on the same
   domain, so checkouts nest.  The freelist-stack discipline (pop on
   checkout, push on return) handles that naturally — the inner request
   pops a different arena (or creates one), and returns restore in LIFO
   order. *)

module Scratch = struct
  let pow2_floor = 16

  let shape_class ~blocks ~exprs =
    let rec up c n = if c >= n then c else up (c * 2) n in
    (up pow2_floor blocks, up pow2_floor exprs)

  let slots : (int * int, Arena.t list ref) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 8)

  let with_arena ~blocks ~exprs f =
    let tbl = Domain.DLS.get slots in
    let key = shape_class ~blocks ~exprs in
    let cell =
      match Hashtbl.find_opt tbl key with
      | Some c -> c
      | None ->
        let c = ref [] in
        Hashtbl.add tbl key c;
        c
    in
    let arena =
      match !cell with
      | a :: rest ->
        cell := rest;
        a
      | [] -> Arena.create ()
    in
    (* Reset inside the finalizer, not on checkout: a panic escaping [f]
       (chaos injection, tier failure) must still reclaim every loan, and
       the arena must be parked clean so [retained_words] reflects steady
       state. *)
    Fun.protect
      ~finally:(fun () ->
        Arena.reset arena;
        cell := arena :: !cell)
      (fun () -> f arena)

  (* Footprint of this domain's parked arenas, for the stats snapshot. *)
  let domain_retained_words () =
    let tbl = Domain.DLS.get slots in
    Hashtbl.fold
      (fun _ cell acc -> List.fold_left (fun acc a -> acc + Arena.retained_words a) acc !cell)
      tbl 0
end
