(** Record framing for the write-ahead handle journal.

    A journal file is [file_magic] followed by a run of records, each a
    tag byte, a big-endian u32 payload length, a big-endian u32 CRC-32
    of the payload, and the payload.  The codec is pure — the serving
    layer owns files, fsync and compaction; this module owns the byte
    layout and torn-tail detection.

    The contract recovery relies on: append-only writers can crash at
    any byte, and {!decode} still returns the longest prefix of intact
    records.  A short header, a bad tag byte, an absurd length, a short
    payload or a CRC mismatch all end the scan at the last clean record
    boundary — [`Torn] tells the caller to truncate the file there. *)

(** First bytes of every journal file (includes a format version). *)
val file_magic : string

(** CRC-32 (IEEE) of a string; [?crc] continues a running checksum.
    Also used by the shard cache's payload-integrity guard. *)
val crc32 : ?crc:int -> string -> int

(** Frame one payload as a record. Raises [Invalid_argument] past 64 MiB. *)
val encode_record : string -> string

(** [decode ?pos s] scans records from [pos] (default 0 — note the file
    magic is {e not} consumed here; strip it first).  Returns the intact
    payloads in order, the offset just past the last clean record, and
    [`Clean] if the scan consumed the whole string or [`Torn] if it
    stopped early at damage. *)
val decode : ?pos:int -> string -> string list * int * [ `Clean | `Torn ]
