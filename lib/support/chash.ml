(* The ring is a sorted array of (point, node) pairs.  Points come from
   MD5 — not for cryptographic strength but for a stable, well-mixed,
   implementation-independent placement: the router and any future peer
   compute identical rings from the worker count alone. *)

type t = {
  n_nodes : int;
  points : int array;  (* sorted hash points *)
  owners : int array;  (* owners.(i) owns points.(i) *)
  first_point : int array;  (* first_point.(n) = n's lowest virtual point index *)
}

let hash_string s =
  let d = Digest.string s in
  (* Fold the first 8 digest bytes into a non-negative OCaml int. *)
  let b i = Char.code d.[i] in
  let v =
    b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
    lor (b 4 lsl 32) lor (b 5 lsl 40) lor (b 6 lsl 48) lor ((b 7 land 0x3f) lsl 56)
  in
  v land max_int

let create ~nodes ~replicas =
  if nodes < 1 then invalid_arg "Chash.create: nodes < 1";
  if replicas < 1 then invalid_arg "Chash.create: replicas < 1";
  let pairs =
    Array.init (nodes * replicas) (fun i ->
        let node = i / replicas and r = i mod replicas in
        (hash_string (Printf.sprintf "node-%d/%d" node r), node))
  in
  (* Ties broken by node index so the ring is a total order. *)
  Array.sort compare pairs;
  let points = Array.map fst pairs and owners = Array.map snd pairs in
  let first_point = Array.make nodes (-1) in
  Array.iteri (fun i n -> if first_point.(n) < 0 then first_point.(n) <- i) owners;
  { n_nodes = nodes; points; owners; first_point }

let nodes t = t.n_nodes

(* Index of the first ring point at or after [h], wrapping. *)
let locate t h =
  let lo = ref 0 and hi = ref (Array.length t.points) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = Array.length t.points then 0 else !lo

let lookup t key = t.owners.(locate t (hash_string key))

let walk t start ~skip ~alive =
  let len = Array.length t.owners in
  let rec go i remaining =
    if remaining = 0 then None
    else
      let n = t.owners.(i mod len) in
      if (not (skip n)) && alive n then Some n else go (i + 1) (remaining - 1)
  in
  go start len

let lookup_alive t ~alive key = walk t (locate t (hash_string key)) ~skip:(fun _ -> false) ~alive

let successor t ~alive n =
  if n < 0 || n >= t.n_nodes then None
  else walk t (t.first_point.(n) + 1) ~skip:(fun m -> m = n) ~alive
