(** A fixed-size pool of domains draining a shared task queue.

    The parallel engines fan work out in three layers — bit slices of one
    fixpoint ({!Lcm_dataflow.Solver.run_par}), independent passes of the
    LCM cascade, and whole functions of a corpus — and all three share one
    pool.  [run] is re-entrant: a task may submit a sub-batch to the same
    pool, and any thread waiting for its batch helps execute queued tasks
    instead of idling, so nested fan-out cannot deadlock.

    A pool of size 1 spawns no domains and executes everything in the
    calling thread, in order — the sequential fallback path. *)

type t

(** [create n] is a pool of [n] domains in total: the caller of {!run}
    counts as one, so [n - 1] worker domains are spawned.  Raises
    [Invalid_argument] when [n < 1]. *)
val create : int -> t

(** Total parallelism (worker domains + the calling thread). *)
val size : t -> int

(** [run t tasks] executes every task and returns when all are finished.
    Tasks of one batch may run concurrently on different domains, in any
    order; the caller participates.  If any task raises, the first
    exception observed is re-raised after the whole batch has drained.

    Tasks must synchronize their own shared state; writes made by a task
    are visible to the caller after [run] returns (the queue's mutex
    orders them). *)
val run : t -> (unit -> unit) list -> unit

(** [parallel_for t ?chunk n f] applies [f] to [0 .. n-1], chunked into
    contiguous ranges of [chunk] indices (default: [n / (4 * size t)],
    at least 1) so the queue holds coarse tasks.  Iteration order within a
    chunk is ascending; chunks may interleave across domains. *)
val parallel_for : t -> ?chunk:int -> int -> (int -> unit) -> unit

(** Joins the worker domains.  The pool must be idle; [run] must not be
    called afterwards.  Called automatically at exit for {!default}. *)
val shutdown : t -> unit

(** Name of the environment variable overriding {!default_size}:
    ["LCM_DOMAINS"].  CI runs the test suite with it forced to 1 and to 4
    so both the sequential-fallback and the parallel paths are covered. *)
val env_var : string

(** Size used by {!default}: [$LCM_DOMAINS] when set to a positive
    integer, otherwise [Domain.recommended_domain_count ()] capped at 8. *)
val default_size : unit -> int

(** The process-wide shared pool, created on first use and shut down at
    exit.  Benchmarks that need a specific width create their own pools
    instead. *)
val default : unit -> t

(** Per-domain pools of scratch {!Arena.t}s, keyed by shape class.  The
    engine wraps each request's solve in {!Scratch.with_arena}; the arena
    is reclaimed (and parked back on this domain's freelist) even when the
    request panics. *)
module Scratch : sig
  (** [shape_class ~blocks ~exprs] rounds both axes up to powers of two
      (floor 16): requests whose shapes land in the same class share
      arenas, so near-miss shapes don't fragment the pools. *)
  val shape_class : blocks:int -> exprs:int -> int * int

  (** [with_arena ~blocks ~exprs f] checks an arena for the shape class out
      of this domain's freelist (creating one on first use), runs [f] with
      it, and — panic or not — resets it and parks it back.  Reentrant:
      nested checkouts (help-draining can run another request inline) pop
      distinct arenas. *)
  val with_arena : blocks:int -> exprs:int -> (Arena.t -> 'a) -> 'a

  (** Words retained by the calling domain's parked arenas (steady-state
      scratch footprint, surfaced as a stats gauge). *)
  val domain_retained_words : unit -> int
end
