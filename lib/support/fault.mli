(** Deterministic fault injection for chaos testing.

    A process-wide registry of named injection points.  Code under test
    asks {!fire} "does the fault at this point trigger now?"; the answer
    is a pure function of the configured seed, the point's name, and how
    many times that point has been reached — so a failing run replays
    bit-for-bit from its [seed:spec] string, regardless of thread
    interleaving across distinct points.

    When no configuration is installed (the production state) every probe
    is a single atomic load and a branch: the hooks are free.

    The spec grammar (also accepted from the [LCM_CHAOS] environment
    variable as [seed:spec]):

    {v
    spec  ::= entry (',' entry)*
    entry ::= point '=' rate
    point ::= a point name, optionally ending in '*' (prefix match)
    rate  ::= probability in [0,1], or a percentage like '5%'
    v}

    e.g. [LCM_CHAOS=42:sock.*=0.05,engine.panic=1%].  Later entries win
    over earlier ones when several match a point. *)

(** Raised by {!inject} when its point fires.  Treated like any other
    exception by the code under test — that is the point. *)
exception Injected of string

val env_var : string
(** ["LCM_CHAOS"]. *)

val epoch_env_var : string
(** ["LCM_CHAOS_EPOCH"]: an integer mixed into the seed by
    {!install_from_env}.  Occurrence counters are per-process, so a
    restarted process would otherwise replay the exact fault schedule of
    its predecessor — crashing at the same frame count forever.  A
    supervisor bumps the epoch on each restart so every incarnation runs a
    different (but still deterministic) schedule. *)

val parse_spec : string -> ((string * float) list, string) result
(** Parse the [spec] part of the grammar above. *)

val configure : seed:int -> (string * float) list -> unit
(** Install a configuration (replacing any previous one). *)

val configure_string : string -> (unit, string) result
(** Parse and install a full [seed:spec] string. *)

val install_from_env : unit -> (unit, string) result
(** Install from [LCM_CHAOS] when set; [Ok ()] when unset. *)

val disable : unit -> unit
(** Remove the configuration: every subsequent probe is free and false. *)

val enabled : unit -> bool

val fire : string -> bool
(** [fire point] decides whether the fault at [point] triggers at this,
    its k-th, occurrence.  Always false when disabled or the point matches
    no spec entry. *)

val inject : string -> unit
(** [inject point] raises [Injected point] when [fire point]. *)

val counts : unit -> (string * int * int) list
(** [(point, occurrences, fired)] for every point probed since the last
    {!configure}, sorted by name.  Empty when disabled. *)
