(* A scratch arena for the per-request solver state.

   The LCM cascade allocates a knowable set of buffers for a given
   (blocks × exprs) shape: bit vectors of [exprs] bits (a few per block for
   each equation system), flat [Bitvec.t array]s indexed by block or edge,
   and small int/bool scratch arrays for the worklist machinery.  An arena
   owns bump-cursor pools of exactly those objects, *size-bucketed* to the
   next power of two so near-miss shapes reuse each other's storage.

   A pool parks whole ready-made objects — complete [Bitvec.t] records, not
   just their word buffers — in an array with a cursor: the prefix
   [0, next) is loaned out, the suffix [next, count) is parked.  A checkout
   in steady state is cursor-bump + in-place re-initialization
   ({!Bitvec.reinit} / [Array.fill] of the used prefix) and allocates
   *nothing*; only a cold pool heap-allocates a new object (counted in
   [misses]).  Re-initialization clears the used prefix, so a recycled
   object can never leak the previous request's bits.

   [reset a] reclaims everything at once by rewinding every cursor to 0.
   There is no per-object free; lifetimes in the engine are strictly
   per-request, so bulk reset is both O(pools) and panic-proof (the engine
   resets in a [Fun.protect] finalizer).

   An arena is single-owner: one request on one domain.  Concurrency is
   handled a level up (Pool.Scratch keeps per-domain arena freelists); the
   arena itself has no locks and must not be shared.

   Callers thread an [t option] because every allocating API keeps working
   without an arena — [alloc]/[alloc_copy]/... fall back to plain heap
   allocation on [None], which is what makes the existing entry points
   "thin wrappers" over the scratch-aware ones. *)

type 'a pool = {
  pcap : int;  (* capacity (words or cells) of every item in this pool *)
  mutable items : 'a array;  (* loaned prefix [0,next), parked [next,count) *)
  mutable count : int;
  mutable next : int;
}

type t = {
  mutable vec_pools : Bitvec.t pool list;  (* ascending capacity; a handful *)
  mutable int_pools : int array pool list;
  mutable bool_pools : bool array pool list;
  mutable slot_pools : Bitvec.t array pool list;
  mutable checkouts : int;  (* lifetime checkouts, for tests/stats *)
  mutable misses : int;  (* checkouts that had to heap-allocate a new item *)
}

let create () =
  {
    vec_pools = [];
    int_pools = [];
    bool_pools = [];
    slot_pools = [];
    checkouts = 0;
    misses = 0;
  }

(* Pool capacities are powers of two with a floor of 8: a 5-word and a
   7-word vector land in the same 8-word pool, so shapes that differ by a
   few expressions share storage instead of fragmenting the pools. *)
let min_bucket = 8

(* Top-level recursion, not a local [let rec go]: a local closure would
   capture [n] and allocate 4 words on every checkout — the exact hot path
   this module exists to keep allocation-free. *)
let rec bucket_up n c = if c >= n then c else bucket_up n (c * 2)
let bucket_size n = bucket_up n min_bucket

(* The pool lists stay sorted ascending and hold O(log max-shape) entries,
   so a linear walk is fine.  [find] raises [Not_found] rather than return
   an option so the steady-state checkout path allocates nothing at all. *)
let rec find lst cap =
  match lst with
  | p :: _ when p.pcap = cap -> p
  | p :: rest when p.pcap < cap -> find rest cap
  | _ -> raise Not_found

let rec insert p = function
  | p' :: rest when p'.pcap < p.pcap -> p' :: insert p rest
  | rest -> p :: rest

(* Park a freshly heap-allocated item as loaned: it sits at the cursor, so
   after the current request's [reset] it is recycled like any other. *)
let push p x =
  if p.count = Array.length p.items then begin
    let items = Array.make (max 4 (2 * p.count)) x in
    Array.blit p.items 0 items 0 p.count;
    p.items <- items
  end;
  p.items.(p.count) <- x;
  p.count <- p.count + 1;
  p.next <- p.count

let vec_pool a cap =
  try find a.vec_pools cap
  with Not_found ->
    let p = { pcap = cap; items = [||]; count = 0; next = 0 } in
    a.vec_pools <- insert p a.vec_pools;
    p

let int_pool a cap =
  try find a.int_pools cap
  with Not_found ->
    let p = { pcap = cap; items = [||]; count = 0; next = 0 } in
    a.int_pools <- insert p a.int_pools;
    p

let bool_pool a cap =
  try find a.bool_pools cap
  with Not_found ->
    let p = { pcap = cap; items = [||]; count = 0; next = 0 } in
    a.bool_pools <- insert p a.bool_pools;
    p

let slot_pool a cap =
  try find a.slot_pools cap
  with Not_found ->
    let p = { pcap = cap; items = [||]; count = 0; next = 0 } in
    a.slot_pools <- insert p a.slot_pools;
    p

let bitvec a n =
  let p = vec_pool a (bucket_size (Bitvec.words_for n)) in
  a.checkouts <- a.checkouts + 1;
  if p.next < p.count then begin
    let v = p.items.(p.next) in
    p.next <- p.next + 1;
    Bitvec.reinit v n;
    v
  end
  else begin
    a.misses <- a.misses + 1;
    let v = Bitvec.of_buffer (Array.make p.pcap 0) n in
    push p v;
    v
  end

let bitvec_full a n =
  let p = vec_pool a (bucket_size (Bitvec.words_for n)) in
  a.checkouts <- a.checkouts + 1;
  if p.next < p.count then begin
    let v = p.items.(p.next) in
    p.next <- p.next + 1;
    Bitvec.reinit_full v n;
    v
  end
  else begin
    a.misses <- a.misses + 1;
    let v = Bitvec.of_buffer_full (Array.make p.pcap 0) n in
    push p v;
    v
  end

let copy a v =
  let r = bitvec a (Bitvec.length v) in
  ignore (Bitvec.blit ~src:v ~dst:r);
  r

(* Raw int scratch, zero-filled over the first [n] cells (callers see a
   logically fresh array; cells past [n] are dead storage).  Used for the
   worklist priority heaps and visit counters. *)
let int_array a n =
  let p = int_pool a (bucket_size n) in
  a.checkouts <- a.checkouts + 1;
  if p.next < p.count then begin
    let buf = p.items.(p.next) in
    p.next <- p.next + 1;
    Array.fill buf 0 n 0;
    buf
  end
  else begin
    a.misses <- a.misses + 1;
    let buf = Array.make p.pcap 0 in
    push p buf;
    buf
  end

let bool_array a n =
  let p = bool_pool a (bucket_size n) in
  a.checkouts <- a.checkouts + 1;
  if p.next < p.count then begin
    let buf = p.items.(p.next) in
    p.next <- p.next + 1;
    Array.fill buf 0 n false;
    buf
  end
  else begin
    a.misses <- a.misses + 1;
    let buf = Array.make p.pcap false in
    push p buf;
    buf
  end

(* A [Bitvec.t array] for per-block/per-edge solver state.  Slots are reset
   to a shared zero-width dummy so stale vector *references* from the
   previous checkout cannot leak (the vectors themselves are reclaimed
   separately via the vec pools). *)
let empty_vec = Bitvec.create 0

let vec_array a n =
  let p = slot_pool a (bucket_size n) in
  a.checkouts <- a.checkouts + 1;
  if p.next < p.count then begin
    let buf = p.items.(p.next) in
    p.next <- p.next + 1;
    Array.fill buf 0 (Array.length buf) empty_vec;
    buf
  end
  else begin
    a.misses <- a.misses + 1;
    let buf = Array.make p.pcap empty_vec in
    push p buf;
    buf
  end

let reset a =
  let rewind p = p.next <- 0 in
  List.iter rewind a.vec_pools;
  List.iter rewind a.int_pools;
  List.iter rewind a.bool_pools;
  (* Unpin eagerly: a parked slot array must not keep the previous
     request's Bitvecs reachable through slots nobody re-fills. *)
  List.iter
    (fun p ->
      for i = 0 to p.next - 1 do
        let arr = p.items.(i) in
        Array.fill arr 0 (Array.length arr) empty_vec
      done;
      rewind p)
    a.slot_pools

let retained_words a =
  let words_of acc p = acc + (p.pcap * p.count) in
  List.fold_left words_of (List.fold_left words_of 0 a.vec_pools) a.int_pools

let checkouts a = a.checkouts
let misses a = a.misses

(* ---- optional-arena helpers ----------------------------------------------

   The solve entry points take [?scratch:Arena.t] and call these; [None]
   means "allocate on the heap as before", which keeps every existing API a
   thin wrapper with identical behavior. *)

let alloc scratch n = match scratch with Some a -> bitvec a n | None -> Bitvec.create n
let alloc_full scratch n = match scratch with Some a -> bitvec_full a n | None -> Bitvec.create_full n

let alloc_copy scratch v =
  match scratch with Some a -> copy a v | None -> Bitvec.copy v

let alloc_int scratch n = match scratch with Some a -> int_array a n | None -> Array.make n 0

let alloc_bool scratch n =
  match scratch with Some a -> bool_array a n | None -> Array.make n false

let alloc_vec scratch n =
  match scratch with Some a -> vec_array a n | None -> Array.make n empty_vec
