type row = Cells of string list | Separator

type t = { headers : string list; ncols : int; mutable rows : row list (* reversed *) }

let create headers = { headers; ncols = List.length headers; rows = [] }

let add_row t cells =
  let n = List.length cells in
  if n > t.ncols then invalid_arg "Table.add_row: more cells than headers";
  let padded = cells @ List.init (t.ncols - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_sep t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let measure = function
    | Separator -> ()
    | Cells cs -> List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cs
  in
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let pad s w =
    Buffer.add_string buf s;
    Buffer.add_string buf (String.make (w - String.length s) ' ')
  in
  let emit_cells cs =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        pad c widths.(i))
      cs;
    Buffer.add_char buf '\n'
  in
  let emit_sep () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  emit_sep ();
  List.iter (function Separator -> emit_sep () | Cells cs -> emit_cells cs) rows;
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

let cell_int = string_of_int
let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
let cell_bool b = if b then "yes" else "no"

let cell_ratio num den =
  if den = 0 then "n/a" else Printf.sprintf "%.2f" (float_of_int num /. float_of_int den)
