(** Plain-text table rendering for experiment reports.

    The benchmark harness prints each reproduced table/figure of the paper as
    an aligned ASCII table; this module does the alignment. *)

type t

(** [create headers] starts a table with the given column headers. *)
val create : string list -> t

(** [add_row t cells] appends a row.  Rows shorter than the header are padded
    with empty cells; longer rows raise [Invalid_argument]. *)
val add_row : t -> string list -> unit

(** [add_sep t] appends a horizontal separator row. *)
val add_sep : t -> unit

(** Render with all columns padded to their widest cell. *)
val render : t -> string

(** [print t] renders to stdout followed by a newline. *)
val print : t -> unit

(** Convenience cell formatters. *)
val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
val cell_ratio : int -> int -> string
