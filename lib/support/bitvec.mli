(** Dense, fixed-width bit vectors.

    The data-flow analyses in this library solve one equation system for all
    expressions of a program simultaneously; a bit vector holds one boolean
    per expression.  Vectors are mutable; the [*_into] operations overwrite
    their destination and report whether it changed, which is exactly the
    signal an iterative worklist solver needs. *)

type t

(** [create n] is a vector of [n] bits, all [false]. *)
val create : int -> t

(** [create_full n] is a vector of [n] bits, all [true]. *)
val create_full : int -> t

(** [words_for n] is the number of storage words an [n]-bit vector spans —
    the minimum capacity a buffer passed to {!of_buffer} must have. *)
val words_for : int -> int

(** [of_buffer buf n] wraps [buf] as an [n]-bit vector *without copying*;
    the used prefix ([words_for n] words) is cleared to all-zeroes, words
    beyond it are left untouched and ignored by every operation.  Raises
    [Invalid_argument] when [buf] is too small.  This is how the arena
    recycles size-bucketed buffers across near-miss shapes. *)
val of_buffer : int array -> int -> t

(** As {!of_buffer} but the used prefix is set to all-ones. *)
val of_buffer_full : int array -> int -> t

(** [reinit v n] rebinds [v] to [n] bits over its existing buffer and
    clears the used prefix — the in-place analogue of {!of_buffer}, used by
    the arena to recycle whole vector records so a steady-state checkout
    allocates nothing.  Raises [Invalid_argument] when the buffer is too
    small.  Any alias of [v] observes the new width. *)
val reinit : t -> int -> unit

(** As {!reinit} but the used prefix is set to all-ones. *)
val reinit_full : t -> int -> unit

(** The backing storage (may be longer than [words_for (length v)]).
    Exposed so the arena can reclaim buffers; treat as opaque elsewhere. *)
val buffer : t -> int array

(** Number of bits. *)
val length : t -> int

(** [get v i] is bit [i].  Raises [Invalid_argument] when out of range. *)
val get : t -> int -> bool

(** [set v i b] assigns bit [i]. *)
val set : t -> int -> bool -> unit

(** A fresh copy. *)
val copy : t -> t

(** [blit ~src ~dst] overwrites [dst] with [src]; returns [true] when [dst]
    changed.  Both vectors must have the same length. *)
val blit : src:t -> dst:t -> bool

(** Structural equality of contents (lengths must match). *)
val equal : t -> t -> bool

(** [is_empty v] holds when no bit is set. *)
val is_empty : t -> bool

(** [fill v b] sets every bit to [b]. *)
val fill : t -> bool -> unit

(** Number of set bits. *)
val count : t -> int

(** [union_into ~into v] computes [into ∪ v] in place; returns [true] when
    [into] changed. *)
val union_into : into:t -> t -> bool

(** [inter_into ~into v] computes [into ∩ v] in place; returns [true] when
    [into] changed. *)
val inter_into : into:t -> t -> bool

(** [diff_into ~into v] computes [into \ v] in place; returns [true] when
    [into] changed. *)
val diff_into : into:t -> t -> bool

(** [union_diff_into ~into src ~diff] computes [into ∪ (src \ diff)] into
    [into] in a single pass over the words; returns [true] when [into]
    changed.  This fuses the [LATER = EARLIEST ∪ (LATERIN ∩ ¬ANTLOC)]
    inner step of the LCM placement system. *)
val union_diff_into : into:t -> t -> diff:t -> bool

(** Pure binary operations; operands must have equal lengths. *)
val union : t -> t -> t

val inter : t -> t -> t
val diff : t -> t -> t

(** Complement within the vector's width. *)
val complement : t -> t

(** [subset a b] holds when every bit of [a] is also set in [b]. *)
val subset : t -> t -> bool

(** [iter_true f v] applies [f] to the index of every set bit, ascending. *)
val iter_true : (int -> unit) -> t -> unit

(** [fold_true f v acc] folds over indices of set bits, ascending. *)
val fold_true : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Indices of set bits, ascending. *)
val to_list : t -> int list

(** [of_list n is] is an [n]-bit vector with exactly the bits in [is] set. *)
val of_list : int -> int list -> t

(** Bits per storage word ([Sys.int_size]): the alignment unit of the
    slice operations below. *)
val bits_per_word : int

(** [slice v ~lo ~len] is a fresh [len]-bit vector holding bits
    [lo .. lo+len-1] of [v].  [lo] must be a multiple of
    {!bits_per_word} and [lo + len <= length v]; [len] may be 0.  The
    parallel solver uses word-aligned slices so that disjoint slices never
    share a storage word. *)
val slice : t -> lo:int -> len:int -> t

(** [blit_slice ~src ~into ~lo] writes [src] into bits
    [lo .. lo + length src - 1] of [into]; returns [true] when [into]
    changed.  [lo] must be word-aligned, and the slice must end on a word
    boundary or exactly at [length into] (the shapes {!slice_bounds}
    produces), so the copy moves whole words. *)
val blit_slice : src:t -> into:t -> lo:int -> bool

(** [slice_bounds ~nbits ~pieces] partitions [0, nbits)] into at most
    [pieces] contiguous word-aligned [(lo, len)] slices of near-equal word
    counts, covering the space exactly.  Returns a single slice when
    [nbits] spans fewer words than pieces. *)
val slice_bounds : nbits:int -> pieces:int -> (int * int) array

(** Renders as a ["{1, 4, 7}"]-style set. *)
val pp : Format.formatter -> t -> unit
