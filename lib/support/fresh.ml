type t = { prefix : string; mutable next : int }

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let prefix ~existing seed =
  let rec search candidate =
    if List.exists (fun v -> starts_with ~prefix:candidate v) existing then search (candidate ^ "_")
    else candidate
  in
  search seed

let create ~existing seed = { prefix = prefix ~existing seed; next = 0 }

let mint t =
  let name = Printf.sprintf "%s%d" t.prefix t.next in
  t.next <- t.next + 1;
  name

let prefix_of t = t.prefix
