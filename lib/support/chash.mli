(** Consistent hashing: a ring of virtual nodes for request routing.

    The shard router hashes every request's canonical program digest onto
    this ring to pick the worker that serves it.  Consistent hashing keeps
    the mapping stable under membership change: when one worker dies, only
    the keys it owned move (to its ring successor), so a restart does not
    reshuffle the whole key space — retained handles and warm state on the
    surviving workers stay useful.

    Nodes are small ints (worker indices).  Each node is placed at
    [replicas] pseudo-random points of the ring (virtual nodes), which
    evens out the arc lengths; placement is a pure function of the node
    index, so every process computes the same ring. *)

type t

(** [create ~nodes ~replicas] is a ring over worker indices
    [0 .. nodes-1], each placed at [replicas] points.  Raises
    [Invalid_argument] when [nodes < 1] or [replicas < 1]. *)
val create : nodes:int -> replicas:int -> t

(** Number of real nodes the ring was built over. *)
val nodes : t -> int

(** [lookup t key] is the node owning [key]: the first virtual node at or
    clockwise after the key's hash point. *)
val lookup : t -> string -> int

(** [lookup_alive t ~alive key] is the first owner [n] of [key] (walking
    clockwise) with [alive n]; [None] when no node is alive. *)
val lookup_alive : t -> alive:(int -> bool) -> string -> int option

(** [successor t ~alive n] is the next distinct live node clockwise after
    [n]'s first virtual point — the sibling that inherits [n]'s keys when
    [n] dies.  [None] when no other live node exists. *)
val successor : t -> alive:(int -> bool) -> int -> int option
