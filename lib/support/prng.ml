(* Splitmix64 (Steele, Lea, Flood 2014): tiny state, good statistical
   quality, and splittable — ideal for reproducible test-case generation. *)

type t = { mutable state : int64 }

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Take the top bits; modulo bias is negligible for our bounds. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L
let chance t ~num ~den = int t den < num

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | _ :: _ -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = create (next t)
