exception Injected of string

let env_var = "LCM_CHAOS"

type reg = {
  seed : int;
  entries : (string * float) list;  (* in spec order; later entries win *)
  lock : Mutex.t;
  occ : (string, int ref) Hashtbl.t;  (* per-point occurrence counter *)
  hits : (string, int ref) Hashtbl.t;
}

(* The production state is [None]: a probe is one atomic load + branch. *)
let state : reg option Atomic.t = Atomic.make None

let enabled () = Atomic.get state <> None

let disable () = Atomic.set state None

let configure ~seed entries =
  Atomic.set state
    (Some { seed; entries; lock = Mutex.create (); occ = Hashtbl.create 16; hits = Hashtbl.create 16 })

(* ---- spec parsing ---- *)

let parse_rate s =
  let pct = String.length s > 0 && s.[String.length s - 1] = '%' in
  let num = if pct then String.sub s 0 (String.length s - 1) else s in
  match float_of_string_opt num with
  | Some v ->
    let v = if pct then v /. 100. else v in
    if v >= 0. && v <= 1. then Ok v else Error (Printf.sprintf "rate %S out of [0,1]" s)
  | None -> Error (Printf.sprintf "bad rate %S" s)

let parse_spec s =
  let parts = String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "") in
  if parts = [] then Error "empty chaos spec"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest ->
        (match String.index_opt p '=' with
        | None -> Error (Printf.sprintf "bad spec entry %S (expected point=rate)" p)
        | Some i ->
          let point = String.sub p 0 i in
          if point = "" then Error (Printf.sprintf "bad spec entry %S (empty point)" p)
          else
            (match parse_rate (String.sub p (i + 1) (String.length p - i - 1)) with
            | Ok r -> go ((point, r) :: acc) rest
            | Error m -> Error m))
    in
    go [] parts

let configure_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad %s value %S (expected seed:spec)" env_var s)
  | Some i ->
    (match int_of_string_opt (String.sub s 0 i) with
    | None -> Error (Printf.sprintf "bad chaos seed in %S" s)
    | Some seed ->
      (match parse_spec (String.sub s (i + 1) (String.length s - i - 1)) with
      | Ok entries ->
        configure ~seed entries;
        Ok ()
      | Error m -> Error m))

let epoch_env_var = "LCM_CHAOS_EPOCH"

(* Occurrence counters are per-process, so a restarted process replays the
   same fault schedule and can crash periodically at the same frame count
   forever.  A supervisor breaks the loop by bumping the epoch per restart;
   (seed, epoch) still fully determines the schedule. *)
let install_from_env () =
  match Sys.getenv_opt env_var with
  | None -> Ok ()
  | Some s -> (
    match configure_string s with
    | Error _ as e -> e
    | Ok () -> (
      match Option.bind (Sys.getenv_opt epoch_env_var) int_of_string_opt with
      | None | Some 0 -> Ok ()
      | Some epoch -> (
        match Atomic.get state with
        | None -> Ok ()
        | Some reg ->
          configure ~seed:(reg.seed + (epoch * 0x9E3779B9)) reg.entries;
          Ok ())))

(* ---- the decision ---- *)

let matches pat point =
  if pat = point then true
  else
    let n = String.length pat in
    n > 0 && pat.[n - 1] = '*' && String.length point >= n - 1 && String.sub point 0 (n - 1) = String.sub pat 0 (n - 1)

let rate_of reg point =
  List.fold_left (fun acc (pat, r) -> if matches pat point then Some r else acc) None reg.entries

let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0,1): splitmix of (seed, point, occurrence index).  53 bits
   of the mix, so every representable probability is hittable. *)
let u01 ~seed ~point ~k =
  let h = Int64.of_int (Hashtbl.hash point) in
  let z =
    Int64.add
      (Int64.mul (Int64.of_int seed) golden)
      (Int64.add (Int64.mul h 0x100000001B3L) (Int64.of_int k))
  in
  Int64.to_float (Int64.shift_right_logical (mix64 (Int64.add z golden)) 11) /. 9007199254740992.

let bump tbl point =
  match Hashtbl.find_opt tbl point with
  | Some r ->
    incr r;
    !r
  | None ->
    Hashtbl.add tbl point (ref 1);
    1

let fire point =
  match Atomic.get state with
  | None -> false
  | Some reg ->
    (match rate_of reg point with
    | None | Some 0. -> false
    | Some rate ->
      Mutex.lock reg.lock;
      let k = bump reg.occ point in
      let decision = u01 ~seed:reg.seed ~point ~k < rate in
      if decision then ignore (bump reg.hits point);
      Mutex.unlock reg.lock;
      decision)

let inject point = if fire point then raise (Injected point)

let counts () =
  match Atomic.get state with
  | None -> []
  | Some reg ->
    Mutex.lock reg.lock;
    let l =
      Hashtbl.fold
        (fun point occ acc ->
          let hits = match Hashtbl.find_opt reg.hits point with Some r -> !r | None -> 0 in
          (point, !occ, hits) :: acc)
        reg.occ []
    in
    Mutex.unlock reg.lock;
    List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) l
