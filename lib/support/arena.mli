(** Per-request scratch arena: size-bucketed bump-cursor pools of the
    ready-made objects the LCM cascade needs (whole [Bitvec.t] records,
    int/bool scratch, [Bitvec.t] slot arrays).  Checked out at engine
    admission for a (blocks × exprs) shape class; a warm checkout is a
    cursor bump plus in-place re-initialization and allocates nothing.
    Everything is reclaimed wholesale by {!reset} (cursor rewind) in a
    [Fun.protect] finalizer — there is no per-object free, so a chaos
    panic mid-cascade cannot leak slots.

    An arena is single-owner (one request, one domain) and unlocked; the
    per-domain pooling of arenas themselves lives in [Pool.Scratch]. *)

type t

(** A fresh arena with empty pools. *)
val create : unit -> t

(** [bitvec a n] is an [n]-bit vector, all-zero: a recycled record rebound
    in place when the pool is warm, a fresh bucketed one otherwise.  Valid
    until the next {!reset}. *)
val bitvec : t -> int -> Bitvec.t

(** As {!bitvec} but all-one. *)
val bitvec_full : t -> int -> Bitvec.t

(** [copy a v] is an arena-backed copy of [v]. *)
val copy : t -> Bitvec.t -> Bitvec.t

(** [int_array a n] is an int array with (at least) [n] cells, the first
    [n] zeroed.  Callers must index below their requested [n] only. *)
val int_array : t -> int -> int array

(** [bool_array a n]: as {!int_array} with [false] cells. *)
val bool_array : t -> int -> bool array

(** [vec_array a n] is a [Bitvec.t array] of capacity >= [n] whose first
    [n] slots hold a shared zero-width dummy vector. *)
val vec_array : t -> int -> Bitvec.t array

(** Return every loaned object to its pool by rewinding the cursors.
    Does not shrink capacity — the point is that the *next* request's
    checkouts all hit warm pools. *)
val reset : t -> unit

(** Total words of storage the arena currently owns (free + loaned); the
    steady-state footprint of a shape class. *)
val retained_words : t -> int

(** Lifetime number of checkouts, and how many of those had to
    heap-allocate because the pool was cold.  In steady state [misses]
    stops growing — that is the zero-allocation property. *)
val checkouts : t -> int

val misses : t -> int

(** {2 Optional-arena helpers}

    Solve entry points take [?scratch:Arena.t] and allocate through these:
    [None] falls back to plain heap allocation, keeping the historical
    allocating APIs thin wrappers with identical behavior. *)

val alloc : t option -> int -> Bitvec.t
val alloc_full : t option -> int -> Bitvec.t
val alloc_copy : t option -> Bitvec.t -> Bitvec.t
val alloc_int : t option -> int -> int array
val alloc_bool : t option -> int -> bool array
val alloc_vec : t option -> int -> Bitvec.t array
