type config = {
  max_restarts : int;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  healthy_s : float;
  state_file : string;
  child_pid_file : string option;
  quiet : bool;
}

let default_config ~state_file =
  {
    max_restarts = 10;
    backoff_base_ms = 100.;
    backoff_cap_ms = 5000.;
    healthy_s = 5.;
    state_file;
    child_pid_file = None;
    quiet = false;
  }

let log cfg fmt =
  Printf.ksprintf
    (fun m ->
      if not cfg.quiet then begin
        Printf.eprintf "lcmd-supervisor: %s\n" m;
        flush stderr
      end)
    fmt

let write_pid_file path pid =
  try
    let oc = open_out path in
    Printf.fprintf oc "%d\n" pid;
    close_out oc
  with Sys_error _ -> ()

(* Fold the restart into the shared metrics file so the next incarnation
   (which loads the file at startup) reports it from its stats endpoint. *)
let record_restart cfg status =
  let reg = Stats.create () in
  let m = Smetrics.create reg in
  Stats.load_file reg cfg.state_file;
  Stats.bump m.Smetrics.restarts_total;
  Stats.bump
    (match status with
    | Unix.WSIGNALED _ -> m.Smetrics.restarts_signal
    | _ -> m.Smetrics.restarts_exit);
  Stats.save_file reg cfg.state_file

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

(* Sleep the full duration even across signal interruptions, but bail out
   early once shutdown was requested. *)
let interruptible_sleep ~stop seconds =
  let until = Unix.gettimeofday () +. seconds in
  let remaining () = until -. Unix.gettimeofday () in
  while (not (stop ())) && remaining () > 0. do
    try Unix.sleepf (remaining ()) with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let backoff_policy cfg =
  { Retry.retries = max_int; base_ms = cfg.backoff_base_ms; cap_ms = cfg.backoff_cap_ms; budget_ms = None }

let run cfg thunk =
  let shutting_down = ref false in
  let child = ref (-1) in
  let forward signum =
    shutting_down := true;
    if !child > 0 then try Unix.kill !child signum with Unix.Unix_error _ -> ()
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle forward);
  Sys.set_signal Sys.sigint (Sys.Signal_handle forward);
  let total_restarts = ref 0 in
  let rec loop consecutive =
    let started = Unix.gettimeofday () in
    (* Each incarnation gets a fresh fault epoch: without it a fixed
       LCM_CHAOS seed replays the predecessor's schedule and a crash point
       fires at the same frame count in every child, forever. *)
    if !total_restarts > 0 && Sys.getenv_opt Lcm_support.Fault.env_var <> None then
      Unix.putenv Lcm_support.Fault.epoch_env_var (string_of_int !total_restarts);
    match Unix.fork () with
    | 0 ->
      (* The thunk installs its own drain handlers; until it does, die the
         default way rather than forwarding to a child we do not have. *)
      Sys.set_signal Sys.sigterm Sys.Signal_default;
      Sys.set_signal Sys.sigint Sys.Signal_default;
      (* Forked, not exec'd: the registry installed at process startup was
         inherited, so re-read the environment to pick up the new epoch
         (and reset the inherited occurrence counters). *)
      ignore (Lcm_support.Fault.install_from_env ());
      (try
         thunk ();
         Stdlib.exit 0
       with e ->
         Printf.eprintf "lcmd: fatal: %s\n%!" (Printexc.to_string e);
         Stdlib.exit 70)
    | pid ->
      child := pid;
      Option.iter (fun path -> write_pid_file path pid) cfg.child_pid_file;
      let status = waitpid_retry pid in
      child := -1;
      let uptime = Unix.gettimeofday () -. started in
      (match status with
      | Unix.WEXITED 0 ->
        log cfg "child %d exited cleanly after %.1f s" pid uptime;
        0
      | status when !shutting_down ->
        log cfg "child %d stopped (%s) during shutdown" pid (status_to_string status);
        0
      | status ->
        let consecutive = if uptime >= cfg.healthy_s then 1 else consecutive + 1 in
        incr total_restarts;
        record_restart cfg status;
        if consecutive > cfg.max_restarts then begin
          log cfg "child %d died (%s); %d consecutive failures, giving up" pid
            (status_to_string status) consecutive;
          match status with Unix.WEXITED n -> max 1 n | _ -> 1
        end
        else begin
          let delay_ms = Retry.backoff_ms (backoff_policy cfg) ~attempt:(consecutive - 1) in
          log cfg "child %d died (%s) after %.1f s; restart %d in %.0f ms" pid
            (status_to_string status) uptime consecutive delay_ms;
          if delay_ms > 0. then
            interruptible_sleep ~stop:(fun () -> !shutting_down) (delay_ms /. 1000.);
          if !shutting_down then 0 else loop consecutive
        end)
  in
  let code = loop 0 in
  Sys.set_signal Sys.sigterm Sys.Signal_default;
  Sys.set_signal Sys.sigint Sys.Signal_default;
  code
