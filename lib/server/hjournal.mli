(** The per-handle write-ahead journal behind [--state-dir].

    One file per retained handle, [<dir>/<handle>.journal]: a base
    record with the canonical program captured at [run retain:true],
    then one patch record per accepted [delta] (the raw wire [edits]
    value, journaled verbatim).  Records are CRC-guarded
    {!Lcm_support.Journal} frames; every append is fsynced before the
    acknowledging response leaves the worker, so an acknowledged delta
    survives [kill -9].

    After [compact_every] patches the file is rewritten — tmp file,
    fsync, atomic rename — as a single base record holding the current
    canonical program, bounding recovery time by snapshot size instead
    of patch-log length.

    Fault points: [journal.append] (record write fails), [journal.fsync]
    (fsync silently skipped — simulates an OS that lied about
    durability; recovery then sees a torn tail). *)

type t

type recovered = {
  r_handle : string;
  r_algorithm : string;
  r_simplify : bool;
  r_program : string;  (** canonical base (or compacted snapshot) text *)
  r_patches : Json.t list;  (** raw wire [edits] values, oldest first *)
  r_truncated : bool;  (** a torn tail was cut off this file *)
}

(** Creates [dir] (and parents) if needed.  [fsync:false] is for tests
    and benchmarks that measure the append path without durability. *)
val create : dir:string -> ?fsync:bool -> ?compact_every:int -> unit -> (t, string) result

(** Start a fresh journal for a newly minted handle (truncates any stale
    file of the same name). *)
val record_base :
  t -> handle:string -> algorithm:string -> simplify:bool -> program:string -> (unit, string) result

(** Append one accepted patch.  [program] produces the canonical text
    {e after} the patch — the compaction snapshot — and is forced only
    when this append trips the threshold, keeping the hot-path append
    cost flat in graph size.  A failed compaction degrades to
    [`Appended]: the patch itself is already durable. *)
val record_patch :
  t ->
  handle:string ->
  edits:Json.t ->
  algorithm:string ->
  simplify:bool ->
  program:(unit -> string) ->
  ([ `Appended | `Compacted ], string) result

(** Delete an evicted handle's journal. *)
val drop : t -> handle:string -> unit

(** Set aside a journal that failed to replay (renamed [*.corrupt]) so
    the next recovery does not trip over it again. *)
val quarantine : t -> handle:string -> unit

(** Scan the directory: stray compaction tmps are deleted, torn tails
    truncated, unusable files quarantined.  Returns the rebuildable
    handles sorted by mint sequence, plus the torn and quarantined
    counts. *)
val recover : t -> recovered list * int * int

(** The journal file that backs [handle] (tests and tooling). *)
val path : t -> handle:string -> string
