(** Process-wide metrics registry for the serving daemon.

    Two instrument kinds, both named by strings and created on first use:

    - monotonic counters ({!incr});
    - fixed-bucket latency histograms in milliseconds ({!observe_ms}),
      with upper bounds {!bucket_bounds_ms} plus an overflow bucket.

    Everything is guarded by one mutex — instruments are touched a handful
    of times per request, which is noise next to a data-flow analysis, and
    one lock keeps snapshots consistent.  A snapshot is queryable at run
    time via the protocol's [stats] request and dumped on shutdown.

    Histogram quantiles are estimated by linear interpolation inside the
    bucket containing the requested rank (the overflow bucket reports its
    lower bound), which is exact enough to spot regressions; the serving
    benchmark computes exact client-side quantiles independently. *)

type t

val create : unit -> t

(** The daemon's registry. *)
val global : t

(** [incr ?by t name] bumps counter [name] (default [by] = 1). *)
val incr : ?by:int -> t -> string -> unit

(** Current value of a counter; 0 when never incremented. *)
val counter_value : t -> string -> int

(** Fold the calling domain's GC progress since the previous [record_gc]
    into the counters [gc.minor_collections], [gc.major_collections],
    [gc.promoted_words] and [gc.alloc_words] (total words allocated, minor
    plus direct-to-major).  Delta-based, so the counters stay additive and
    merge across supervised restarts like every other counter (the names
    are schema-additive within snapshot schema 2).  Called before each
    snapshot/save so the [stats] op and persisted metrics stay fresh. *)
val record_gc : t -> unit

(** {2 Typed handles}

    A handle names its instrument exactly once, at creation; every
    subsequent touch goes through the handle, so instrument names cannot
    drift apart across call sites.  Handles stay valid across {!reset}
    (they hold the name, not the cell).  The serving code builds its full
    set in [Smetrics]. *)

type counter
type histo

val counter : t -> string -> counter
val bump : ?by:int -> counter -> unit
val counter_name : counter -> string

(** Current value of the handle's counter. *)
val value : counter -> int

val histo : t -> string -> histo

(** [observe h v] records a sample of [v] milliseconds. *)
val observe : histo -> float -> unit

val histo_name : histo -> string

(** Histogram bucket upper bounds, in milliseconds, ascending. *)
val bucket_bounds_ms : float array

(** [observe_ms t name v] records a sample of [v] milliseconds. *)
val observe_ms : t -> string -> float -> unit

(** [quantile_ms t name q] estimates the [q]-quantile (0 ≤ q ≤ 1) of a
    histogram; [None] when it has no samples. *)
val quantile_ms : t -> string -> float -> float option

(** Snapshot schema version written by {!snapshot} (currently 2; version 1
    snapshots carried no ["schema"] field). *)
val snapshot_schema : int

(** Consistent snapshot: [{"schema": 2, "counters": ..., "histograms":
    ...}] with counters sorted by name and histograms carrying bucket
    counts, count, sum and p50/p95/p99 estimates. *)
val snapshot : t -> Json.t

(** Human-readable dump of {!snapshot} (one instrument per line). *)
val dump : t -> out_channel -> unit

(** Drop every instrument (tests and per-load benchmark runs). *)
val reset : t -> unit

(** {2 Persistence} — metrics across supervised restarts.

    Snapshots merge {e additively}: loading a file adds its counter values
    and histogram contents onto the registry's current state.  All three
    functions swallow I/O and parse failures — persistence must never stop
    the daemon from serving. *)

(** Fold a {!snapshot}-shaped JSON value into the registry.  Accepts
    schema versions 1 (no ["schema"] field) and 2; a snapshot claiming a
    schema newer than {!snapshot_schema} is skipped whole rather than
    half-merged. *)
val merge_snapshot : t -> Json.t -> unit

(** Write the current snapshot to [path] (atomically, via a rename). *)
val save_file : t -> string -> unit

(** Merge the snapshot stored at [path]; no-op when missing or corrupt. *)
val load_file : t -> string -> unit
