let bucket_bounds_ms =
  [| 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.; 2500.; 5000.; 10000. |]

type histogram = {
  counts : int array;  (* length = Array.length bucket_bounds_ms + 1; last = overflow *)
  mutable count : int;
  mutable sum_ms : float;
}

type t = {
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  (* last GC sample folded into the gc.* counters (see [record_gc]) *)
  mutable gc_minor : int;
  mutable gc_major : int;
  mutable gc_promoted : float;
  mutable gc_alloc : float;
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 16;
    histograms = Hashtbl.create 8;
    gc_minor = 0;
    gc_major = 0;
    gc_promoted = 0.;
    gc_alloc = 0.;
  }

let global = create ()

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Typed handles.  A handle is (registry, name): creation is where the
   name is spelled once, so call sites cannot drift apart by typo, and
   [reset] keeps working because nothing caches the underlying cell. *)
type counter = { ct : t; cname : string }
type histo = { ht : t; hname : string }

let incr ?(by = 1) t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add t.counters name (ref by))

let counter_value t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> !r
      | None -> 0)

let counter t name = { ct = t; cname = name }
let bump ?by c = incr ?by c.ct c.cname
let counter_name c = c.cname
let value c = counter_value c.ct c.cname

(* Fold the runtime's GC progress since the last sample into plain
   counters.  Deltas (not absolutes) keep the counters *additive*: they
   merge across supervisor restarts exactly like every other counter, and
   a registry that loaded persisted totals keeps extending them.  Counter
   names are new in schema 2 but schema-additive — old readers simply see
   extra keys. *)
let gc_minor_name = "gc.minor_collections"
let gc_major_name = "gc.major_collections"
let gc_promoted_name = "gc.promoted_words"
let gc_alloc_name = "gc.alloc_words"

let record_gc t =
  let s = Gc.quick_stat () in
  (* Total words allocated: minor allocations plus direct-to-major ones,
     minus promotions (which minor_words and major_words both count). *)
  let alloc = s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words in
  with_lock t (fun () ->
      let bump name by =
        if by > 0 then
          match Hashtbl.find_opt t.counters name with
          | Some r -> r := !r + by
          | None -> Hashtbl.add t.counters name (ref by)
      in
      bump gc_minor_name (s.Gc.minor_collections - t.gc_minor);
      bump gc_major_name (s.Gc.major_collections - t.gc_major);
      bump gc_promoted_name (int_of_float (s.Gc.promoted_words -. t.gc_promoted));
      bump gc_alloc_name (int_of_float (alloc -. t.gc_alloc));
      t.gc_minor <- s.Gc.minor_collections;
      t.gc_major <- s.Gc.major_collections;
      t.gc_promoted <- s.Gc.promoted_words;
      t.gc_alloc <- alloc)

let bucket_of_ms v =
  let n = Array.length bucket_bounds_ms in
  let rec go i = if i >= n then n else if v <= bucket_bounds_ms.(i) then i else go (i + 1) in
  go 0

let observe_ms t name v =
  with_lock t (fun () ->
      let h =
        match Hashtbl.find_opt t.histograms name with
        | Some h -> h
        | None ->
          let h = { counts = Array.make (Array.length bucket_bounds_ms + 1) 0; count = 0; sum_ms = 0. } in
          Hashtbl.add t.histograms name h;
          h
      in
      let b = bucket_of_ms v in
      h.counts.(b) <- h.counts.(b) + 1;
      h.count <- h.count + 1;
      h.sum_ms <- h.sum_ms +. v)

let histo t name = { ht = t; hname = name }
let observe h v = observe_ms h.ht h.hname v
let histo_name h = h.hname

(* Rank-based estimate: walk buckets to the one holding the q-rank sample,
   interpolate linearly between its bounds. *)
let quantile_of_histogram h q =
  if h.count = 0 then None
  else begin
    let rank = q *. float_of_int h.count in
    let n = Array.length bucket_bounds_ms in
    let rec go i cum =
      if i > n then Some bucket_bounds_ms.(n - 1)
      else begin
        let cum' = cum + h.counts.(i) in
        if float_of_int cum' >= rank && h.counts.(i) > 0 then
          if i = n then Some bucket_bounds_ms.(n - 1)
          else begin
            let lo = if i = 0 then 0. else bucket_bounds_ms.(i - 1) in
            let hi = bucket_bounds_ms.(i) in
            let inside = (rank -. float_of_int cum) /. float_of_int h.counts.(i) in
            Some (lo +. (Float.max 0. (Float.min 1. inside) *. (hi -. lo)))
          end
        else go (i + 1) cum'
      end
    in
    go 0 0
  end

let quantile_ms t name q =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.histograms name with
      | Some h -> quantile_of_histogram h q
      | None -> None)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot t =
  with_lock t (fun () ->
      let counters =
        List.map (fun (name, r) -> (name, Json.Int !r)) (sorted_bindings t.counters)
      in
      let histograms =
        List.map
          (fun (name, h) ->
            let q p = match quantile_of_histogram h p with Some v -> Json.Float v | None -> Json.Null in
            ( name,
              Json.Obj
                [
                  ("count", Json.Int h.count);
                  ("sum_ms", Json.Float h.sum_ms);
                  ("p50_ms", q 0.5);
                  ("p95_ms", q 0.95);
                  ("p99_ms", q 0.99);
                  ( "buckets",
                    Json.List
                      (Array.to_list
                         (Array.mapi
                            (fun i c ->
                              let le =
                                if i < Array.length bucket_bounds_ms then
                                  Json.Float bucket_bounds_ms.(i)
                                else Json.String "inf"
                              in
                              Json.Obj [ ("le_ms", le); ("count", Json.Int c) ])
                            h.counts)) );
                ] ))
          (sorted_bindings t.histograms)
      in
      Json.Obj
        [
          ("schema", Json.Int 2);
          ("counters", Json.Obj counters);
          ("histograms", Json.Obj histograms);
        ])

let dump t oc =
  with_lock t (fun () ->
      Printf.fprintf oc "counters:\n";
      List.iter (fun (name, r) -> Printf.fprintf oc "  %-28s %d\n" name !r) (sorted_bindings t.counters);
      Printf.fprintf oc "histograms (ms):\n";
      List.iter
        (fun (name, h) ->
          let q p = match quantile_of_histogram h p with Some v -> Printf.sprintf "%.2f" v | None -> "-" in
          Printf.fprintf oc "  %-28s count=%d sum=%.2f p50=%s p95=%s p99=%s\n" name h.count h.sum_ms
            (q 0.5) (q 0.95) (q 0.99))
        (sorted_bindings t.histograms));
  flush oc

let reset t =
  with_lock t (fun () ->
      Hashtbl.reset t.counters;
      Hashtbl.reset t.histograms)

(* ---- persistence (supervisor restarts) ----

   A snapshot is merged *additively*: counters and histogram contents from
   the file add onto whatever the registry already holds, so metrics
   survive a supervised restart (child loads the file at startup) and the
   supervisor's own counters (restarts) can be folded into the same
   registry.  Corrupt or missing files are ignored — metrics persistence
   must never stop the daemon from serving. *)

let snapshot_schema = 2

(* v1 snapshots carried no "schema" field; treat its absence as 1.  A
   snapshot from a *newer* writer is skipped whole — merging half-understood
   data would silently corrupt the additive totals. *)
let merge_snapshot t j =
  let int_of jv = Json.to_int_opt jv in
  let schema = match Option.bind (Json.member "schema" j) Json.to_int_opt with Some n -> n | None -> 1 in
  if schema > snapshot_schema then ()
  else begin
  (match Json.member "counters" j with
  | Some (Json.Obj fields) ->
    List.iter (fun (name, v) -> match int_of v with Some n when n > 0 -> incr ~by:n t name | _ -> ()) fields
  | _ -> ());
  match Json.member "histograms" j with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (name, h) ->
        let sum = Option.bind (Json.member "sum_ms" h) Json.to_float_opt in
        match (Json.member "buckets" h, sum) with
        | Some (Json.List buckets), Some sum_ms ->
          with_lock t (fun () ->
              let hist =
                match Hashtbl.find_opt t.histograms name with
                | Some hist -> hist
                | None ->
                  let hist =
                    { counts = Array.make (Array.length bucket_bounds_ms + 1) 0; count = 0; sum_ms = 0. }
                  in
                  Hashtbl.add t.histograms name hist;
                  hist
              in
              List.iteri
                (fun i b ->
                  if i < Array.length hist.counts then
                    match Option.bind (Json.member "count" b) int_of with
                    | Some c when c > 0 ->
                      hist.counts.(i) <- hist.counts.(i) + c;
                      hist.count <- hist.count + c
                    | _ -> ())
                buckets;
              hist.sum_ms <- hist.sum_ms +. sum_ms)
        | _ -> ())
      fields
  | _ -> ()
  end

let save_file t path =
  try
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc (Json.to_string (snapshot t));
    output_char oc '\n';
    close_out oc;
    Sys.rename tmp path
  with Sys_error _ -> ()

let load_file t path =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> (try merge_snapshot t (Json.parse contents) with Json.Parse_error _ -> ())
  | exception Sys_error _ -> ()
