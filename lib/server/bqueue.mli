(** Bounded FIFO with explicit backpressure.

    The daemon's admission queue: {!try_push} refuses work beyond the
    high-water mark instead of buffering without bound, which is what turns
    overload into fast, structured [overloaded] rejections rather than
    unbounded latency.  Mutex-guarded so producers (connection readers) and
    the batch dispatcher may live on different domains. *)

type 'a t

(** [create ~capacity] — [capacity] is the high-water mark (≥ 1). *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [try_push t x] enqueues [x], or returns [false] when the queue already
    holds [capacity] items. *)
val try_push : 'a t -> 'a -> bool

(** [pop_batch t ~max] dequeues up to [max] items, in FIFO order; [[]]
    when empty. *)
val pop_batch : 'a t -> max:int -> 'a list
