(** Client-side retry policy with capped, jittered exponential backoff.

    The daemon sheds load with typed, stable error codes ([overloaded],
    [shutting_down]) precisely so that clients can distinguish "try again
    shortly" from "your request is wrong".  This module is the client half
    of that contract: given a policy, it decides {e whether} a failed
    attempt should be retried and {e how long} to sleep first.

    Backoff shape: attempt [k] (0-based count of {e completed} attempts)
    sleeps a uniform value in [\[b/2, b\]] where
    [b = min (cap_ms, base_ms * 2^k)].  Jitter desynchronises a thundering
    herd of clients that all saw the same [overloaded] response; keeping
    the jitter floor at [b/2] preserves the exponential envelope.

    An optional overall budget bounds first-byte-to-give-up wall time:
    a sleep is clipped to the remaining budget, and once the budget is
    spent no further attempt is made.  All decisions are pure functions of
    (policy, rng, attempt, elapsed) — the QCheck suite leans on this. *)

type policy = {
  retries : int;  (** additional attempts after the first (0 = never retry) *)
  base_ms : float;  (** backoff before the first retry *)
  cap_ms : float;  (** upper bound on the pre-jitter backoff *)
  budget_ms : float option;  (** overall wall-clock budget across attempts *)
}

(** 0 retries: preserves the one-shot behaviour of [lcmopt request]. *)
val default : policy

(** [backoff_ms p ~attempt] is the pre-jitter backoff
    [min (cap_ms, base_ms * 2^attempt)], monotone in [attempt]. *)
val backoff_ms : policy -> attempt:int -> float

(** [next_delay_ms p rng ~attempt ~elapsed_ms] decides the sleep before
    retry number [attempt + 1].  [None] means give up: retries exhausted
    ([attempt >= retries]) or budget spent.  [Some d] satisfies
    [b/2 <= d <= b] for [b = backoff_ms p ~attempt], further clipped to
    the remaining budget. *)
val next_delay_ms :
  policy -> Lcm_support.Prng.t -> attempt:int -> elapsed_ms:float -> float option

(** Server error codes worth retrying: ["overloaded"] and
    ["shutting_down"].  Everything else ([bad_request], [deadline_exceeded],
    [fuel_exhausted], …) would fail identically on a healthy server. *)
val retryable_code : string -> bool
