type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  mutex : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  { capacity; q = Queue.create (); mutex = Mutex.create () }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let length t = with_lock t (fun () -> Queue.length t.q)
let is_empty t = length t = 0

let try_push t x =
  with_lock t (fun () ->
      (* Chaos point inside the critical section: with_lock's Fun.protect
         must release the mutex when this raises. *)
      Lcm_support.Fault.inject "bqueue.push";
      if Queue.length t.q >= t.capacity then false
      else begin
        Queue.add x t.q;
        true
      end)

let pop_batch t ~max =
  with_lock t (fun () ->
      let n = min max (Queue.length t.q) in
      List.init n (fun _ -> Queue.pop t.q))
