type error_code =
  | Bad_request
  | Parse_error
  | Oversized
  | Overloaded
  | Deadline_exceeded
  | Fuel_exhausted
  | Unknown_handle
  | Poisoned_request
  | Shutting_down
  | Unsupported_format
  | Internal

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Parse_error -> "parse_error"
  | Oversized -> "oversized"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Fuel_exhausted -> "fuel_exhausted"
  | Unknown_handle -> "unknown_handle"
  | Poisoned_request -> "poisoned_request"
  | Shutting_down -> "shutting_down"
  | Unsupported_format -> "unsupported_format"
  | Internal -> "internal"

type run_request = {
  program : string;
  format : string;
  func : string option;
  algorithm : string;
  simplify : bool;
  workers : int;
  validate : bool;
  retain : bool;
}

type delta_edit = {
  d_block : string option;
  d_add : bool;
  d_instrs : string list option;
  d_term : string option;
}

type delta_request = {
  d_handle : string;
  d_edits : delta_edit list;
  d_edits_json : Json.t;
  d_validate : bool;
}

type op =
  | Run of run_request
  | Delta of delta_request
  | Stats
  | Profile
  | Ping
  | Sleep of float

type request = {
  id : Json.t;
  trace_id : string option;
  op : op;
  deadline_ms : float option;
}

(* ---- request parsing ---- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let opt_field j name conv =
  match Json.member name j with
  | None | Some Json.Null -> None
  | Some v ->
    (match conv v with
    | Some x -> Some x
    | None -> bad "field %S has the wrong type" name)

let string_field j name =
  match opt_field j name Json.to_string_opt with
  | Some s -> s
  | None -> bad "missing field %S" name

let parse_format j program =
  match opt_field j "format" Json.to_string_opt with
  | Some f ->
    (* Validated against the frontend registry by the engine, which owns
       the typed [Unsupported_format] rejection — the protocol layer does
       not know which formats are registered. *)
    f
  | None ->
    (* Default: sniff.  Cfg_text documents always start with "cfg "; a
       JSON document (Bril) starts with '{'; anything else is MiniImp. *)
    if String.length program >= 4 && String.sub program 0 4 = "cfg " then "cfg"
    else begin
      let i = ref 0 in
      while
        !i < String.length program
        && match program.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr i
      done;
      if !i < String.length program && program.[!i] = '{' then "bril" else "miniimp"
    end

let parse_run j =
  let program = string_field j "program" in
  {
    program;
    format = parse_format j program;
    func = opt_field j "function" Json.to_string_opt;
    algorithm = Option.value (opt_field j "algorithm" Json.to_string_opt) ~default:"lcm-edge";
    simplify = Option.value (opt_field j "simplify" Json.to_bool_opt) ~default:false;
    workers = Option.value (opt_field j "workers" Json.to_int_opt) ~default:1;
    validate = Option.value (opt_field j "validate" Json.to_bool_opt) ~default:false;
    retain = Option.value (opt_field j "retain" Json.to_bool_opt) ~default:false;
  }

let parse_edit e =
    match e with
    | Json.Obj _ ->
      let d_block = opt_field e "block" Json.to_string_opt in
      let d_add = Option.value (opt_field e "add" Json.to_bool_opt) ~default:false in
      let d_instrs =
        match Json.member "instrs" e with
        | None | Some Json.Null -> None
        | Some (Json.List xs) ->
          Some
            (List.map
               (function
                 | Json.String s -> s
                 | _ -> bad "edit field \"instrs\" must be a list of strings")
               xs)
        | Some _ -> bad "edit field \"instrs\" must be a list of strings"
      in
      let d_term = opt_field e "term" Json.to_string_opt in
      (match (d_block, d_add) with
      | None, false -> bad "each edit needs \"block\" or \"add\":true"
      | Some _, true -> bad "an edit cannot both name a \"block\" and \"add\" one"
      | _ -> ());
      if d_add && d_term = None then bad "an added block needs a \"term\"";
      if d_instrs = None && d_term = None then bad "an edit must change \"instrs\" or \"term\"";
      { d_block; d_add; d_instrs; d_term }
    | _ -> bad "each edit must be a JSON object"

let parse_edits = function
  | Json.List items ->
    let edits = List.map parse_edit items in
    if edits = [] then bad "\"edits\" must be non-empty";
    edits
  | _ -> bad "field \"edits\" must be a list"

let delta_edits_of_json j = try Ok (parse_edits j) with Bad m -> Error m

let parse_delta j =
  let d_handle = string_field j "handle" in
  let d_edits_json =
    match Json.member "edits" j with
    | Some v -> v
    | None -> bad "missing field \"edits\""
  in
  {
    d_handle;
    d_edits = parse_edits d_edits_json;
    d_edits_json;
    d_validate = Option.value (opt_field j "validate" Json.to_bool_opt) ~default:false;
  }

let parse_request frame =
  match Json.parse frame with
  | exception Json.Parse_error m -> Error (Json.Null, None, Bad_request, "malformed frame: " ^ m)
  | Json.Obj _ as j ->
    let id = Option.value (Json.member "id" j) ~default:Json.Null in
    (* Recovered tolerantly (ignored when ill-typed) so even a rejected
       request's error response can still correlate with its trace. *)
    let trace_id = match Json.member "trace_id" j with Some (Json.String s) -> Some s | _ -> None in
    (try
       let trace_id =
         match opt_field j "trace_id" Json.to_string_opt with
         | Some "" -> bad "trace_id must be non-empty"
         | t -> t
       in
       let deadline_ms =
         match opt_field j "deadline_ms" Json.to_float_opt with
         | Some d when d < 0. -> bad "deadline_ms must be non-negative"
         | d -> d
       in
       let op =
         match Option.value (opt_field j "op" Json.to_string_opt) ~default:"run" with
         | "run" -> Run (parse_run j)
         | "delta" -> Delta (parse_delta j)
         | "stats" -> Stats
         | "profile" -> Profile
         | "ping" -> Ping
         | "sleep" ->
           (match opt_field j "duration_ms" Json.to_float_opt with
           | Some d when d >= 0. -> Sleep d
           | Some _ -> bad "duration_ms must be non-negative"
           | None -> bad "missing field \"duration_ms\"")
         | other -> bad "unknown op %S" other
       in
       Ok { id; trace_id; op; deadline_ms }
     with Bad m -> Error (id, trace_id, Bad_request, m))
  | _ -> Error (Json.Null, None, Bad_request, "frame is not a JSON object")

(* ---- responses ---- *)

type timing = {
  queue_ms : float;
  run_ms : float;
}

let counts_json (c : Lcm_eval.Metrics.static_counts) =
  Json.Obj
    [
      ("blocks", Json.Int c.Lcm_eval.Metrics.blocks);
      ("instrs", Json.Int c.Lcm_eval.Metrics.instrs);
      ("candidate_occurrences", Json.Int c.Lcm_eval.Metrics.candidate_occurrences);
      ("copies_and_moves", Json.Int c.Lcm_eval.Metrics.copies_and_moves);
    ]

let round_ms v = Float.round (v *. 1000.) /. 1000.

let timing_fields = function
  | None -> []
  | Some t ->
    [
      ( "timing",
        Json.Obj
          [ ("queue_ms", Json.Float (round_ms t.queue_ms)); ("run_ms", Json.Float (round_ms t.run_ms)) ]
      );
    ]

let tid_fields = function
  | None -> []
  | Some t -> [ ("trace_id", Json.String t) ]

let ok_transform ~opname ~id ?trace_id ~algorithm ~workers ~degraded ~validated ?(extra = [])
    ~program ~before ~after ~timing () =
  Json.to_string
    (Json.Obj
       ([ ("id", id) ]
       @ tid_fields trace_id
       @ [
           ("status", Json.String "ok");
           ("op", Json.String opname);
           ("algorithm", Json.String algorithm);
           ("workers", Json.Int workers);
         ]
       @ (match degraded with Some tier -> [ ("degraded", Json.String tier) ] | None -> [])
       @ (if validated then [ ("validated", Json.Bool true) ] else [])
       @ [
           ("program", Json.String program);
           ("before", counts_json before);
           ("after", counts_json after);
         ]
       @ extra
       @ timing_fields timing))

let ok_run ~id ?trace_id ~algorithm ~workers ~degraded ~validated ?extra ~program ~before ~after
    ~timing () =
  ok_transform ~opname:"run" ~id ?trace_id ~algorithm ~workers ~degraded ~validated ?extra ~program
    ~before ~after ~timing ()

let ok_delta ~id ?trace_id ~algorithm ~validated ?extra ~program ~before ~after ~timing () =
  ok_transform ~opname:"delta" ~id ?trace_id ~algorithm ~workers:1 ~degraded:None ~validated ?extra
    ~program ~before ~after ~timing ()

let ok_stats ~id ?trace_id ~stats () =
  Json.to_string
    (Json.Obj
       ([ ("id", id) ]
       @ tid_fields trace_id
       @ [ ("status", Json.String "ok"); ("op", Json.String "stats"); ("stats", stats) ]))

let ok_profile ~id ?trace_id ~profile () =
  Json.to_string
    (Json.Obj
       ([ ("id", id) ]
       @ tid_fields trace_id
       @ [ ("status", Json.String "ok"); ("op", Json.String "profile"); ("profile", profile) ]))

let ok_ping ~id ?trace_id () =
  Json.to_string
    (Json.Obj
       ([ ("id", id) ] @ tid_fields trace_id @ [ ("status", Json.String "ok"); ("op", Json.String "ping") ]))

let ok_sleep ~id ?trace_id ~slept_ms ~timing () =
  Json.to_string
    (Json.Obj
       ([ ("id", id) ]
       @ tid_fields trace_id
       @ [ ("status", Json.String "ok"); ("op", Json.String "sleep"); ("slept_ms", Json.Float (round_ms slept_ms)) ]
       @ timing_fields timing))

let error ~id ?trace_id ~code ~message () =
  Json.to_string
    (Json.Obj
       ([ ("id", id) ]
       @ tid_fields trace_id
       @ [
           ("status", Json.String "error");
           ("code", Json.String (error_code_to_string code));
           ("message", Json.String message);
         ]))
