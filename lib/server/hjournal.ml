(* The per-handle write-ahead journal: one file per retained handle,
   holding the inputs needed to rebuild it — a base record with the
   canonicalized program captured at [run retain:true], then one patch
   record per accepted delta.  Records are framed and CRC-guarded by
   {!Lcm_support.Journal}; payloads reuse the Json codec so recovery
   replays the byte-identical wire edits through the normal parser.

   Durability policy lives here: every record is fsynced before the
   response that acknowledges it is sent, and after [compact_every]
   patches the file is rewritten (tmp + atomic rename) as a single base
   record holding the current canonical program, which bounds both disk
   and recovery time.  A crash at any byte leaves either the old file,
   the old file plus a torn tail (truncated on recovery), or the fully
   renamed compacted file — never a half state. *)

module Journal = Lcm_support.Journal
module Fault = Lcm_support.Fault

type t = {
  dir : string;
  fsync : bool;
  compact_every : int;
  patch_counts : (string, int ref) Hashtbl.t;  (* patches since last base *)
}

type recovered = {
  r_handle : string;
  r_algorithm : string;
  r_simplify : bool;
  r_program : string;
  r_patches : Json.t list;
  r_truncated : bool;
}

let suffix = ".journal"
let path t ~handle = Filename.concat t.dir (handle ^ suffix)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ~dir ?(fsync = true) ?(compact_every = 64) () =
  if compact_every < 1 then invalid_arg "Hjournal.create: compact_every < 1";
  match mkdir_p dir with
  | () -> Ok { dir; fsync; compact_every; patch_counts = Hashtbl.create 16 }
  | exception (Unix.Unix_error _ | Sys_error _) ->
    Error (Printf.sprintf "cannot create state dir %s" dir)

let maybe_fsync t fd = if t.fsync && not (Fault.fire "journal.fsync") then Unix.fsync fd

let with_fd path flags f =
  match Unix.openfile path flags 0o644 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd ->
    Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match f fd with
        | v -> Ok v
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
        | exception Fault.Injected p -> Error ("fault injected: " ^ p))

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let base_payload ~algorithm ~simplify ~program =
  Json.to_string
    (Json.Obj
       [
         ("kind", Json.String "base");
         ("algorithm", Json.String algorithm);
         ("simplify", Json.Bool simplify);
         ("program", Json.String program);
       ])

let record_base t ~handle ~algorithm ~simplify ~program =
  let body = Journal.file_magic ^ Journal.encode_record (base_payload ~algorithm ~simplify ~program) in
  let r =
    with_fd (path t ~handle) Unix.[ O_WRONLY; O_CREAT; O_TRUNC ] (fun fd ->
        Fault.inject "journal.append";
        write_all fd body;
        maybe_fsync t fd)
  in
  if r = Ok () then Hashtbl.replace t.patch_counts handle (ref 0);
  r

(* Rewrite the journal as a single base record holding [program].  The
   tmp file is fsynced before the rename so a crash can only expose the
   old complete file or the new complete file. *)
let compact t ~handle ~algorithm ~simplify ~program =
  let final = path t ~handle in
  let tmp = final ^ ".tmp" in
  let body = Journal.file_magic ^ Journal.encode_record (base_payload ~algorithm ~simplify ~program) in
  let r =
    with_fd tmp Unix.[ O_WRONLY; O_CREAT; O_TRUNC ] (fun fd ->
        write_all fd body;
        maybe_fsync t fd)
  in
  match r with
  | Error _ as e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    e
  | Ok () ->
    (match Unix.rename tmp final with
    | () ->
      (match Hashtbl.find_opt t.patch_counts handle with
      | Some c -> c := 0
      | None -> Hashtbl.replace t.patch_counts handle (ref 0));
      (* Make the rename itself durable. *)
      (match with_fd t.dir Unix.[ O_RDONLY ] (fun fd -> if t.fsync then Unix.fsync fd) with
      | Ok () | Error _ -> ());
      Ok ()
    | exception Unix.Unix_error (e, _, _) ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error (Unix.error_message e))

let record_patch t ~handle ~edits ~algorithm ~simplify ~program =
  let payload = Json.to_string (Json.Obj [ ("kind", Json.String "patch"); ("edits", edits) ]) in
  let r =
    with_fd (path t ~handle) Unix.[ O_WRONLY; O_CREAT; O_APPEND ] (fun fd ->
        Fault.inject "journal.append";
        write_all fd (Journal.encode_record payload);
        maybe_fsync t fd)
  in
  match r with
  | Error _ as e -> e
  | Ok () ->
    let count =
      match Hashtbl.find_opt t.patch_counts handle with
      | Some c ->
        incr c;
        !c
      | None ->
        Hashtbl.replace t.patch_counts handle (ref 1);
        1
    in
    if count >= t.compact_every then
      match compact t ~handle ~algorithm ~simplify ~program:(program ()) with
      | Ok () -> Ok `Compacted
      | Error _ ->
        (* Compaction is an optimization: the appended patch is already
           durable, so a failed rewrite only costs replay time. *)
        Ok `Appended
    else Ok `Appended

let drop t ~handle =
  Hashtbl.remove t.patch_counts handle;
  try Sys.remove (path t ~handle) with Sys_error _ -> ()

let quarantine t ~handle =
  Hashtbl.remove t.patch_counts handle;
  let p = path t ~handle in
  try Unix.rename p (p ^ ".corrupt") with Unix.Unix_error _ | Sys_error _ -> ()

let read_file p =
  match with_fd p Unix.[ O_RDONLY ] (fun fd ->
      let len = (Unix.fstat fd).Unix.st_size in
      let b = Bytes.create len in
      let off = ref 0 in
      (try
         while !off < len do
           let n = Unix.read fd b !off (len - !off) in
           if n = 0 then raise Exit;
           off := !off + n
         done
       with Exit -> ());
      Bytes.sub_string b 0 !off)
  with
  | Ok s -> Some s
  | Error _ -> None

(* Parse one journal file's records into a recovered handle.  [None]
   means the file is unusable (bad magic, no base record, undecodable
   payload in the clean prefix) — the caller quarantines it. *)
let parse_records payloads =
  let base = ref None in
  let patches = ref [] in
  try
    List.iter
      (fun payload ->
        match Json.parse payload with
        | exception Json.Parse_error _ -> raise Exit
        | j ->
          (match Json.member "kind" j with
          | Some (Json.String "base") ->
            let str name =
              match Json.member name j with Some (Json.String s) -> s | _ -> raise Exit
            in
            let simplify = match Json.member "simplify" j with Some (Json.Bool b) -> b | _ -> false in
            (* A later base record resets the patch log (the durable form
               of compaction); keep the newest. *)
            base := Some (str "algorithm", simplify, str "program");
            patches := []
          | Some (Json.String "patch") ->
            (match Json.member "edits" j with
            | Some e -> patches := e :: !patches
            | None -> raise Exit)
          | _ -> raise Exit))
      payloads;
    match !base with
    | None -> None
    | Some (algorithm, simplify, program) -> Some (algorithm, simplify, program, List.rev !patches)
  with Exit -> None

let truncate_file p len =
  match with_fd p Unix.[ O_WRONLY ] (fun fd -> Unix.ftruncate fd len) with Ok () | Error _ -> ()

let recover t =
  let entries =
    match Sys.readdir t.dir with
    | names -> Array.to_list names
    | exception Sys_error _ -> []
  in
  (* A stray .tmp is a compaction that died before its rename; the
     journal proper is still complete, so the tmp is just deleted. *)
  List.iter
    (fun n ->
      if Filename.check_suffix n ".tmp" then
        try Sys.remove (Filename.concat t.dir n) with Sys_error _ -> ())
    entries;
  let truncated = ref 0 in
  let quarantined = ref 0 in
  let recovered =
    List.filter_map
      (fun name ->
        if not (Filename.check_suffix name suffix) then None
        else
          let handle = Filename.chop_suffix name suffix in
          let p = Filename.concat t.dir name in
          let quarantine_this () =
            incr quarantined;
            Hashtbl.remove t.patch_counts handle;
            (try Unix.rename p (p ^ ".corrupt") with Unix.Unix_error _ | Sys_error _ -> ());
            None
          in
          match read_file p with
          | None -> quarantine_this ()
          | Some body ->
            let mlen = String.length Journal.file_magic in
            if String.length body < mlen || String.sub body 0 mlen <> Journal.file_magic then
              quarantine_this ()
            else begin
              let payloads, clean_end, status = Journal.decode ~pos:mlen body in
              let torn = status = `Torn in
              if torn then begin
                incr truncated;
                truncate_file p clean_end
              end;
              match parse_records payloads with
              | None -> quarantine_this ()
              | Some (algorithm, simplify, program, patches) ->
                Hashtbl.replace t.patch_counts handle (ref (List.length patches));
                Some
                  {
                    r_handle = handle;
                    r_algorithm = algorithm;
                    r_simplify = simplify;
                    r_program = program;
                    r_patches = patches;
                    r_truncated = torn;
                  }
            end)
      entries
  in
  let seq h = Option.value (Handles.seq_of_handle h) ~default:max_int in
  let sorted = List.sort (fun a b -> compare (seq a.r_handle) (seq b.r_handle)) recovered in
  (sorted, !truncated, !quarantined)
