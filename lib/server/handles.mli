(** The per-worker table of retained graphs.

    A [run] with [retain:true] parks its parsed graph and captured
    analysis here under a freshly minted handle ["h<worker>-<seq>"];
    later [delta] requests look the handle up, patch the graph, and
    restart the solve from the capture.  The table is bounded: past
    [capacity] live handles the oldest is evicted (FIFO — a retained
    graph is scaffolding for a stream of edits, not a cache with reuse
    skew).

    Handles are process-local: the worker index is baked into the name
    so the shard router can route a [delta] to the worker that holds the
    graph.  Without a state dir a handle dies with its worker — the
    router answers [unknown_handle] and the client re-submits with
    [retain:true].  With one, the engine journals each handle's inputs
    and {!restore} rebuilds it under its original name on respawn. *)

type entry = {
  algorithm : string;
  simplify : bool;
  mutable state : Lcm_cfg.Cfg.t * Lcm_core.Lcm_edge.saved;
      (** current (patched) graph, canonical labels, paired with the
          capture that matches it.  The pair is one mutable field so a
          commit is a single write: concurrent deltas on one handle are
          last-writer-wins (clients should serialize edits to a handle),
          but a reader can never observe a graph with a stale capture. *)
}

type t

(** [create ~worker ~capacity] — [worker] is baked into minted handle
    names; [capacity >= 1]. *)
val create : worker:int -> capacity:int -> t

(** Park an entry; returns the minted handle.  Evicts the oldest entries
    when full (their names are returned so the caller can drop their
    journals and count them). *)
val register : t -> entry -> string * [ `Evicted of string list ]

(** Re-register a recovered entry under its original name, advancing the
    mint sequence past it so later {!register} calls cannot collide.
    Raises [Invalid_argument] on a malformed name or a live handle. *)
val restore : t -> string -> entry -> [ `Evicted of string list ]

val find : t -> string -> entry option
val size : t -> int

(** The worker index encoded in a handle name ([None] when the name is
    not of the form [h<worker>-<seq>]).  Used by the router, which holds
    no table of its own. *)
val worker_of_handle : string -> int option

(** The mint sequence number encoded in a handle name. *)
val seq_of_handle : string -> int option
