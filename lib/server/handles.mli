(** The per-worker table of retained graphs.

    A [run] with [retain:true] parks its parsed graph and captured
    analysis here under a freshly minted handle ["h<worker>-<seq>"];
    later [delta] requests look the handle up, patch the graph, and
    restart the solve from the capture.  The table is bounded: past
    [capacity] live handles the oldest is evicted (FIFO — a retained
    graph is scaffolding for a stream of edits, not a cache with reuse
    skew).

    Handles are process-local by design: the worker index is baked into
    the name so the shard router can route a [delta] to the worker that
    holds the graph, and a handle dies with its worker — after a crash
    and restart the router answers [unknown_handle] and the client
    re-submits with [retain:true]. *)

type entry = {
  algorithm : string;
  simplify : bool;
  mutable state : Lcm_cfg.Cfg.t * Lcm_core.Lcm_edge.saved;
      (** current (patched) graph, canonical labels, paired with the
          capture that matches it.  The pair is one mutable field so a
          commit is a single write: concurrent deltas on one handle are
          last-writer-wins (clients should serialize edits to a handle),
          but a reader can never observe a graph with a stale capture. *)
}

type t

(** [create ~worker ~capacity] — [worker] is baked into minted handle
    names; [capacity >= 1]. *)
val create : worker:int -> capacity:int -> t

(** Park an entry; returns the minted handle.  Evicts the oldest entry
    when full (returned via [evicted] for metrics). *)
val register : t -> entry -> string * [ `Evicted of int ]

val find : t -> string -> entry option
val size : t -> int

(** The worker index encoded in a handle name ([None] when the name is
    not of the form [h<worker>-<seq>]).  Used by the router, which holds
    no table of its own. *)
val worker_of_handle : string -> int option
