(** Newline-delimited framing with a size ceiling.

    The wire format is JSON-lines: one request or response per line,
    terminated by ['\n'] (see docs/PROTOCOL.md).  A {!reader} accumulates
    arbitrary byte chunks and yields complete frames; a line that exceeds
    [max_frame] bytes is discarded up to its terminating newline and
    reported as {!Oversized} instead of buffering without bound — the
    daemon answers it with a structured [oversized] error and the
    connection keeps working. *)

type event =
  | Frame of string  (** one complete line, newline stripped *)
  | Oversized of int  (** an over-limit line was dropped; payload is the byte count seen *)

type reader

(** [create ~max_frame] is a fresh reader.  [max_frame] bounds the frame
    length in bytes, excluding the newline. *)
val create : max_frame:int -> reader

(** [feed r bytes len] consumes [len] bytes from the front of [bytes] and
    returns the completed events, in input order. *)
val feed : reader -> bytes -> int -> event list

(** Bytes currently buffered for an incomplete frame (diagnostics). *)
val pending : reader -> int

(** [write_all fd s] writes the whole string, retrying on short writes and
    [EINTR].  Raises [Unix.Unix_error] on real failures (e.g. [EPIPE]). *)
val write_all : Unix.file_descr -> string -> unit

(** [write_frame fd s] is [write_all fd (s ^ "\n")]. *)
val write_frame : Unix.file_descr -> string -> unit
