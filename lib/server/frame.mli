(** Newline-delimited framing with a size ceiling.

    The wire format is JSON-lines: one request or response per line,
    terminated by ['\n'] (see docs/PROTOCOL.md).  A {!reader} accumulates
    arbitrary byte chunks and yields complete frames; a line that exceeds
    [max_frame] bytes is discarded up to its terminating newline and
    reported as {!Oversized} instead of buffering without bound — the
    daemon answers it with a structured [oversized] error and the
    connection keeps working. *)

type event =
  | Frame of string  (** one complete line, newline stripped *)
  | Oversized of int  (** an over-limit line was dropped; payload is the byte count seen *)

type reader

(** [create ~max_frame] is a fresh reader.  [max_frame] bounds the frame
    length in bytes, excluding the newline. *)
val create : max_frame:int -> reader

(** [feed r bytes len] consumes [len] bytes from the front of [bytes] and
    returns the completed events, in input order. *)
val feed : reader -> bytes -> int -> event list

(** Bytes currently buffered for an incomplete frame (diagnostics). *)
val pending : reader -> int

(** The reader's reusable read chunk (64 KiB): one buffer per connection
    instead of one per [read(2)].  Callers read into it and pass it
    straight to {!feed}; the reader never retains a reference past the
    [feed] call, so reuse is safe. *)
val read_chunk : reader -> bytes

(** {2 Write scratch}

    A per-connection scratch buffer for the flush path: copying the
    pending-output [Buffer] into it avoids allocating a fresh string on
    every flush.  The scratch grows on demand up to [retain_max] bytes
    (default 64 KiB); larger payloads fall back to a one-shot temporary
    that is not retained, so a single oversized response cannot pin
    memory for the connection's lifetime. *)

type writer

val writer : ?retain_max:int -> unit -> writer

(** [writer_bytes w buf] returns a [bytes] whose first [Buffer.length buf]
    bytes are [buf]'s contents.  The result aliases the writer's scratch
    (valid until the next call) unless the payload exceeded [retain_max]. *)
val writer_bytes : writer -> Buffer.t -> bytes

(** [write_all fd s] writes the whole string, retrying on short writes and
    [EINTR].  Raises [Unix.Unix_error] on real failures (e.g. [EPIPE]). *)
val write_all : Unix.file_descr -> string -> unit

(** [write_frame fd s] is [write_all fd (s ^ "\n")]. *)
val write_frame : Unix.file_descr -> string -> unit
