type t = {
  frames_total : Stats.counter;
  requests_total : Stats.counter;
  responses_ok : Stats.counter;
  errors_total : Stats.counter;
  rejected_overloaded : Stats.counter;
  rejected_oversized : Stats.counter;
  batches_total : Stats.counter;
  dispatch_failures : Stats.counter;
  accept_failures : Stats.counter;
  connections_total : Stats.counter;
  tier_fallbacks : Stats.counter;
  arena_checkouts : Stats.counter;
  arena_misses : Stats.counter;
  alloc_words : Stats.counter;
  degraded_total : Stats.counter;
  validated_total : Stats.counter;
  restarts_total : Stats.counter;
  restarts_signal : Stats.counter;
  restarts_exit : Stats.counter;
  deltas_total : Stats.counter;
  delta_incremental : Stats.counter;
  delta_full : Stats.counter;
  handles_live : Stats.counter;
  handles_evicted : Stats.counter;
  cache_hits : Stats.counter;
  cache_misses : Stats.counter;
  cache_evictions : Stats.counter;
  digest_memo_hits : Stats.counter;
  shard_retries : Stats.counter;
  shard_restarts : Stats.counter;
  shard_replays : Stats.counter;
  shard_poisoned : Stats.counter;
  shard_held : Stats.counter;
  cache_corrupt : Stats.counter;
  journal_appends : Stats.counter;
  journal_append_failures : Stats.counter;
  journal_compactions : Stats.counter;
  journal_recovered : Stats.counter;
  journal_replayed_patches : Stats.counter;
  journal_truncated : Stats.counter;
  journal_quarantined : Stats.counter;
  queue_delay : Stats.histo;
  run : Stats.histo;
  total : Stats.histo;
  batch_size : Stats.histo;
  error_by_code : Protocol.error_code -> Stats.counter;
  degraded_tier : string -> Stats.counter;
  format_requests : string -> Stats.counter;
  shard_routed : int -> Stats.counter;
}

let all_codes =
  [
    Protocol.Bad_request;
    Protocol.Parse_error;
    Protocol.Oversized;
    Protocol.Overloaded;
    Protocol.Deadline_exceeded;
    Protocol.Fuel_exhausted;
    Protocol.Unknown_handle;
    Protocol.Poisoned_request;
    Protocol.Shutting_down;
    Protocol.Unsupported_format;
    Protocol.Internal;
  ]

let create stats =
  let c name = Stats.counter stats name in
  let h name = Stats.histo stats name in
  let by_code =
    List.map (fun code -> (code, c ("errors." ^ Protocol.error_code_to_string code))) all_codes
  in
  (* The engine names tiers; unknown names still get a live counter. *)
  let tiers = List.map (fun t -> (t, c ("degraded." ^ t))) [ "parallel"; "sequential"; "identity" ] in
  (* Registered frontends get their counter eagerly so a stats snapshot
     shows every format at zero, not only the ones already requested. *)
  let formats = List.map (fun f -> (f, c ("requests.format." ^ f))) Lcm_frontend.Frontend.names in
  {
    frames_total = c "frames_total";
    requests_total = c "requests_total";
    responses_ok = c "responses_ok";
    errors_total = c "errors_total";
    rejected_overloaded = c "rejected_overloaded";
    rejected_oversized = c "rejected_oversized";
    batches_total = c "batches_total";
    dispatch_failures = c "dispatch_failures_total";
    accept_failures = c "accept_failures_total";
    connections_total = c "connections_total";
    tier_fallbacks = c "engine.tier_fallbacks";
    arena_checkouts = c "arena.checkouts_total";
    arena_misses = c "arena.misses_total";
    alloc_words = c "engine.alloc_words_total";
    degraded_total = c "degraded_total";
    validated_total = c "validated_total";
    restarts_total = c "supervisor.restarts_total";
    restarts_signal = c "supervisor.restarts.signal";
    restarts_exit = c "supervisor.restarts.exit";
    deltas_total = c "deltas_total";
    delta_incremental = c "delta.incremental_total";
    delta_full = c "delta.full_total";
    handles_live = c "handles.registered_total";
    handles_evicted = c "handles.evicted_total";
    cache_hits = c "cache.hits_total";
    cache_misses = c "cache.misses_total";
    cache_evictions = c "cache.evictions_total";
    digest_memo_hits = c "shard.digest_memo_hits_total";
    shard_retries = c "shard.retries_total";
    shard_restarts = c "shard.worker_restarts_total";
    shard_replays = c "shard.replays_total";
    shard_poisoned = c "shard.poisoned_total";
    shard_held = c "shard.held_frames_total";
    cache_corrupt = c "shard.cache_corrupt_total";
    journal_appends = c "journal.appends_total";
    journal_append_failures = c "journal.append_failures_total";
    journal_compactions = c "journal.compactions_total";
    journal_recovered = c "journal.recovered_handles_total";
    journal_replayed_patches = c "journal.replayed_patches_total";
    journal_truncated = c "journal.truncated_tails_total";
    journal_quarantined = c "journal.quarantined_total";
    queue_delay = h "queue_delay";
    run = h "run";
    total = h "total";
    batch_size = h "batch_size";
    error_by_code = (fun code -> List.assoc code by_code);
    degraded_tier =
      (fun tier ->
        match List.assoc_opt tier tiers with Some h -> h | None -> c ("degraded." ^ tier));
    format_requests =
      (fun fmt ->
        match List.assoc_opt fmt formats with Some h -> h | None -> c ("requests.format." ^ fmt));
    shard_routed =
      (* Worker counts are small and fixed at startup; memoize per index
         so the hot path holds a handle, not a name. *)
      (let memo = Hashtbl.create 8 in
       fun i ->
         match Hashtbl.find_opt memo i with
         | Some h -> h
         | None ->
           let h = c (Printf.sprintf "shard.routed.w%d" i) in
           Hashtbl.replace memo i h;
           h);
  }

let error m code =
  Stats.bump m.errors_total;
  Stats.bump (m.error_by_code code)
