module Pool = Lcm_support.Pool
module Fault = Lcm_support.Fault
module Trace = Lcm_obs.Trace
module Prof = Lcm_obs.Prof

type config = {
  queue_capacity : int;
  batch_max : int;
  max_frame : int;
  default_deadline_ms : float option;
  workers : int;
  no_timing : bool;
  quiet : bool;
  stats : Stats.t;
  hard_faults : bool;  (* allow process-killing chaos points (daemon.crash) *)
  state_file : string option;  (* metrics persisted here across supervised restarts *)
  state_dir : string option;  (* handle journals live here; set => retained handles survive kill -9 *)
  journal_compact : int;  (* patches per handle before its journal is compacted to a snapshot *)
  trace_dir : string option;  (* tracing on iff set; one Chrome file per trace id *)
  worker_id : int option;  (* shard worker index: stamped into responses + handle names *)
}

let default_config () =
  {
    queue_capacity = 256;
    batch_max = 32;
    max_frame = 1 lsl 20;
    default_deadline_ms = None;
    workers = Pool.default_size ();
    no_timing = false;
    quiet = false;
    stats = Stats.global;
    hard_faults = false;
    state_file = None;
    state_dir = None;
    journal_compact = 64;
    trace_dir = None;
    worker_id = None;
  }

(* One flag for the whole process so a signal handler has a fixed target;
   cleared when a loop exits so daemons can run back to back (tests). *)
let shutdown_flag = Atomic.make false
let request_shutdown () = Atomic.set shutdown_flag true

type conn = {
  fd_in : Unix.file_descr;
  fd_out : Unix.file_descr;
  reader : Frame.reader;
  out : Buffer.t;  (* response bytes not yet accepted by the peer *)
  writer : Frame.writer;  (* reusable flush scratch (see [flush_out]) *)
  owns_fds : bool;  (* accepted sockets are closed by the daemon; stdio fds are not *)
  mutable eof : bool;
  mutable dead : bool;
  mutable inflight : int;  (* admitted requests whose response is not yet buffered *)
}

type item = {
  i_conn : conn;
  i_req : Protocol.request;
  i_arrival : float;
  i_deadline : float option;
  i_trace : string;  (* resolved at admission: client's trace_id or minted *)
}

type state = {
  cfg : config;
  engine : Engine.config;
  pool : Pool.t;
  queue : item Bqueue.t;
  mutable conns : conn list;
  listen_fd : Unix.file_descr option;
  mutable served : int;
  mutable last_save : float;  (* last periodic metrics save (state_file only) *)
  mutable last_trace_flush : float;  (* last drain of the "daemon" I/O trace *)
}

let now = Unix.gettimeofday
let metrics st = st.engine.Engine.m

let log st fmt =
  Printf.ksprintf
    (fun m ->
      if not st.cfg.quiet then begin
        Printf.eprintf "lcmd: %s\n" m;
        flush stderr
      end)
    fmt

(* ---- writing ---- *)

let kill_conn conn =
  if not conn.dead then begin
    conn.dead <- true;
    conn.eof <- true;
    Buffer.clear conn.out;
    if conn.owns_fds then begin
      (try Unix.close conn.fd_in with Unix.Unix_error _ -> ());
      if conn.fd_out != conn.fd_in then try Unix.close conn.fd_out with Unix.Unix_error _ -> ()
    end
  end

(* Write as much buffered output as the peer accepts right now. *)
let flush_out conn =
  if conn.owns_fds && Fault.fire "sock.write" then
    (* Chaos: the peer vanished mid-write (what EPIPE would tell us). *)
    kill_conn conn;
  if (not conn.dead) && Buffer.length conn.out > 0 then
    Trace.in_trace ~trace_id:"daemon" "io.write" @@ fun () ->
    begin
    (* The scratch aliases conn.writer until the next flush, which is fine:
       the refill below copies the unwritten tail back into conn.out. *)
    let b = Frame.writer_bytes conn.writer conn.out in
    let n = Buffer.length conn.out in
    let written = ref 0 in
    let stop = ref false in
    while (not !stop) && !written < n do
      match Unix.write conn.fd_out b !written (n - !written) with
      | 0 -> stop := true
      | k -> written := !written + k
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> stop := true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        kill_conn conn;
        stop := true
    done;
    if not conn.dead then begin
      Buffer.clear conn.out;
      if !written < n then Buffer.add_subbytes conn.out b !written (n - !written)
    end
  end

let send conn frame =
  if not conn.dead then begin
    Buffer.add_string conn.out frame;
    Buffer.add_char conn.out '\n';
    flush_out conn
  end

(* ---- per-trace files ----

   One Chrome trace_event file per trace id, append-only: the format
   accepts an unterminated array, so a retry (same client trace_id) or a
   post-restart incarnation appends its spans to the same file and the
   loaded document still shows one tree per request attempt.  Trace I/O
   must never take the daemon down — failures are swallowed. *)

let sanitize_id s =
  String.map (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.') as c -> c | _ -> '_') s

let append_trace_file ~dir ~trace_id spans =
  let path = Filename.concat dir (sanitize_id trace_id ^ ".trace.json") in
  let existed = Sys.file_exists path in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  if not existed then output_string oc "[\n";
  List.iter (fun sp -> output_string oc (Json.to_string (Trace.chrome_event sp) ^ ",\n")) spans;
  close_out oc

(* Drain a finished trace: feed the profile aggregator, persist the file. *)
let collect_trace st trace_id =
  match st.cfg.trace_dir with
  | None -> ()
  | Some dir ->
    (match Trace.take ~trace_id with
    | [] -> ()
    | spans ->
      Prof.add st.engine.Engine.prof spans;
      (try append_trace_file ~dir ~trace_id spans with Sys_error _ -> ()))

(* ---- admission ---- *)

let admission_error st conn ~id ~trace_id ~code ~message =
  Smetrics.error (metrics st) code;
  send conn (Protocol.error ~id ~trace_id ~code ~message ());
  collect_trace st trace_id

let handle_frame st conn frame =
  (* Process-killing chaos is rate-per-frame so availability under a given
     fault rate is predictable; only the supervised binary opts in. *)
  if st.cfg.hard_faults && Fault.fire "daemon.crash" then begin
    prerr_endline "lcmd: chaos: simulated crash (daemon.crash)";
    Unix._exit 70
  end;
  Stats.bump (metrics st).Smetrics.frames_total;
  match Protocol.parse_request frame with
  | Error (id, trace_id, code, message) ->
    (* Even an unparseable request gets a trace id (minted if the frame
       carried none we could recover) so the error response correlates. *)
    let trace_id = match trace_id with Some t -> t | None -> Trace.mint_id () in
    admission_error st conn ~id ~trace_id ~code ~message
  | Ok req ->
    Stats.bump (metrics st).Smetrics.requests_total;
    let trace_id =
      match req.Protocol.trace_id with Some t -> t | None -> Trace.mint_id ()
    in
    let arrival = now () in
    (match req.Protocol.op with
    | Protocol.Stats | Protocol.Profile | Protocol.Ping ->
      (* Control-plane ops bypass the queue: they stay answerable when the
         daemon is overloaded or draining. *)
      conn.inflight <- conn.inflight + 1;
      let r = Engine.execute st.engine ~now ~arrival ~deadline:None ~trace_id req in
      conn.inflight <- conn.inflight - 1;
      st.served <- st.served + 1;
      send conn r;
      collect_trace st trace_id
    | Protocol.Run _ | Protocol.Delta _ | Protocol.Sleep _ ->
      (Trace.in_trace ~trace_id "daemon.admission" @@ fun () ->
      if Atomic.get shutdown_flag then
        admission_error st conn ~id:req.Protocol.id ~trace_id ~code:Protocol.Shutting_down
          ~message:"daemon is draining; request not admitted"
      else begin
        let deadline_ms =
          match req.Protocol.deadline_ms with
          | Some d -> Some d
          | None -> st.cfg.default_deadline_ms
        in
        let i_deadline = Option.map (fun d -> arrival +. (d /. 1000.)) deadline_ms in
        let item = { i_conn = conn; i_req = req; i_arrival = arrival; i_deadline; i_trace = trace_id } in
        let admitted =
          (* "queue.reject" sheds load the queue had room for (client retry
             drills); an exception out of the push ("bqueue.push" chaos, or
             a real bug) must surface as a typed error, not kill the loop. *)
          if Fault.fire "queue.reject" then Ok false
          else match Bqueue.try_push st.queue item with
            | ok -> Ok ok
            | exception e -> Error (Printexc.to_string e)
        in
        match admitted with
        | Ok true -> conn.inflight <- conn.inflight + 1
        | Ok false ->
          Stats.bump (metrics st).Smetrics.rejected_overloaded;
          admission_error st conn ~id:req.Protocol.id ~trace_id ~code:Protocol.Overloaded
            ~message:
              (Printf.sprintf "queue full (%d requests); retry later" (Bqueue.capacity st.queue))
        | Error m ->
          admission_error st conn ~id:req.Protocol.id ~trace_id ~code:Protocol.Internal
            ~message:("admission failed: " ^ m)
      end);
      (* The admission span only finishes when [in_trace] returns, so the
         collect inside [admission_error] cannot see it.  Flush again here:
         a rejection's spans must reach the trace file now — the very next
         frame may crash the process (chaos) and lose the buffer. *)
      collect_trace st trace_id)

let read_conn st conn =
  if conn.owns_fds && Fault.fire "sock.read" then
    (* Chaos: the read side of the socket failed (ECONNRESET). *)
    kill_conn conn
  else begin
  let buf = Frame.read_chunk conn.reader in
  match Trace.in_trace ~trace_id:"daemon" "io.read" (fun () -> Unix.read conn.fd_in buf 0 (Bytes.length buf)) with
  | 0 -> conn.eof <- true
  | len ->
    (* Chaos on the byte stream itself: a torn read loses the tail of the
       chunk (frames split mid-line parse as garbage), a corrupt read flips
       one byte.  Both must surface as typed parse errors, never a wedge. *)
    let len = if len > 1 && Fault.fire "sock.read.torn" then len / 2 else len in
    if len > 0 && Fault.fire "sock.read.corrupt" then begin
      let k = len / 2 in
      Bytes.set buf k (Char.chr (Char.code (Bytes.get buf k) lxor 0x20))
    end;
    List.iter
      (function
        | Frame.Frame f -> handle_frame st conn f
        | Frame.Oversized n ->
          Stats.bump (metrics st).Smetrics.rejected_oversized;
          admission_error st conn ~id:Json.Null ~trace_id:(Trace.mint_id ()) ~code:Protocol.Oversized
            ~message:
              (Printf.sprintf "frame of %d bytes exceeds max_frame=%d" n st.cfg.max_frame))
      (Frame.feed conn.reader buf len)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) -> kill_conn conn
  end

(* ---- dispatch ---- *)

let dispatch_batch st =
  let batch = Bqueue.pop_batch st.queue ~max:st.cfg.batch_max in
  match batch with
  | [] -> ()
  | _ ->
    Stats.bump (metrics st).Smetrics.batches_total;
    Stats.observe (metrics st).Smetrics.batch_size (float_of_int (List.length batch));
    let items = Array.of_list batch in
    let results = Array.make (Array.length items) "" in
    let task k () =
      let it = items.(k) in
      results.(k) <-
        Engine.execute st.engine ~now ~arrival:it.i_arrival ~deadline:it.i_deadline
          ~trace_id:it.i_trace it.i_req
    in
    (* The pool itself can fail (chaos "pool.task" kills a worker mid-run, or
       a genuine bug escapes the engine's own net).  Every admitted request
       still owes its connection a response frame, so fill the holes. *)
    (try Pool.run st.pool (List.init (Array.length items) task)
     with e ->
       Stats.bump (metrics st).Smetrics.dispatch_failures;
       let m = Printexc.to_string e in
       Array.iteri
         (fun k it ->
           if results.(k) = "" then begin
             Smetrics.error (metrics st) Protocol.Internal;
             results.(k) <-
               Protocol.error ~id:it.i_req.Protocol.id ~trace_id:it.i_trace ~code:Protocol.Internal
                 ~message:("worker failed: " ^ m) ()
           end)
         items);
    Array.iteri
      (fun k it ->
        it.i_conn.inflight <- it.i_conn.inflight - 1;
        st.served <- st.served + 1;
        send it.i_conn results.(k);
        collect_trace st it.i_trace)
      items

(* ---- the loop ---- *)

let accept_ready st =
  match st.listen_fd with
  | None -> ()
  | Some lfd ->
    (match Unix.accept ~cloexec:true lfd with
    | fd, _ when Fault.fire "sock.accept" ->
      (* Chaos: the connection died between accept and first read. *)
      Stats.bump (metrics st).Smetrics.accept_failures;
      (try Unix.close fd with Unix.Unix_error _ -> ())
    | fd, _ ->
      Unix.set_nonblock fd;
      Stats.bump (metrics st).Smetrics.connections_total;
      st.conns <-
        st.conns
        @ [
            {
              fd_in = fd;
              fd_out = fd;
              reader = Frame.create ~max_frame:st.cfg.max_frame;
              out = Buffer.create 4096;
              writer = Frame.writer ();
              owns_fds = true;
              eof = false;
              dead = false;
              inflight = 0;
            };
          ]
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ())

let live_conns st = List.filter (fun c -> not c.dead) st.conns

let reap st =
  List.iter
    (fun c ->
      (* A connection whose input ended and whose work is fully answered
         has nothing left to exchange. *)
      if c.eof && (not c.dead) && c.inflight = 0 && Buffer.length c.out = 0 && c.owns_fds then
        kill_conn c)
    st.conns;
  st.conns <- List.filter (fun c -> not c.dead) st.conns

let drained st =
  Bqueue.is_empty st.queue
  && List.for_all (fun c -> c.inflight = 0 && Buffer.length c.out = 0) (live_conns st)

let all_inputs_finished st =
  st.listen_fd = None && List.for_all (fun c -> c.eof) (live_conns st)

let serve_loop st =
  let finished = ref false in
  while not !finished do
    let draining = Atomic.get shutdown_flag in
    let read_fds =
      (if draining then [] else Option.to_list st.listen_fd)
      @ List.filter_map
          (fun c -> if c.eof || c.dead || draining then None else Some c.fd_in)
          st.conns
    in
    let write_fds =
      List.filter_map
        (fun c -> if (not c.dead) && Buffer.length c.out > 0 then Some c.fd_out else None)
        st.conns
    in
    let timeout = if not (Bqueue.is_empty st.queue) then 0. else 0.1 in
    let readable, writable =
      match Unix.select read_fds write_fds [] timeout with
      | r, w, _ -> (r, w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
    in
    (match st.listen_fd with
    | Some lfd when List.memq lfd readable -> accept_ready st
    | _ -> ());
    List.iter
      (fun c -> if (not c.dead) && (not c.eof) && List.memq c.fd_in readable then read_conn st c)
      st.conns;
    List.iter
      (fun c -> if (not c.dead) && List.memq c.fd_out writable then flush_out c)
      st.conns;
    dispatch_batch st;
    reap st;
    (* Periodic metrics save: a supervised child can be killed at any moment,
       so waiting for a graceful exit would lose everything since startup. *)
    (match st.cfg.state_file with
    | Some path when now () -. st.last_save >= 1.0 ->
      st.last_save <- now ();
      Stats.record_gc st.cfg.stats;
      Stats.save_file st.cfg.stats path
    | _ -> ());
    (* The "daemon" pseudo-trace (frame I/O spans) belongs to no request,
       so no response ever drains it — flush it on a timer instead. *)
    (match st.cfg.trace_dir with
    | Some _ when now () -. st.last_trace_flush >= 1.0 ->
      st.last_trace_flush <- now ();
      collect_trace st "daemon"
    | _ -> ());
    if (draining || all_inputs_finished st) && drained st then finished := true
  done;
  (* Final flush: give slow readers one last chance to take buffered
     responses before the fds go away. *)
  List.iter (fun c -> flush_out c) (live_conns st);
  List.iter (fun c -> if c.owns_fds then kill_conn c) st.conns

let make_state cfg ?listen_fd conns =
  (* A daemon writes to peers that may vanish; without this, the first EPIPE
     kills the process instead of reaching the per-write handler above.
     Set here (not in the binary) so in-process daemons are covered too. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* Restore metrics from a previous incarnation (supervised restart). *)
  Option.iter (fun path -> Stats.load_file cfg.stats path) cfg.state_file;
  (* Tracing is on exactly when there is somewhere to put the traces. *)
  Option.iter
    (fun dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      Trace.enable ())
    cfg.trace_dir;
  let pool = Pool.create (max 1 cfg.workers) in
  let journal =
    match cfg.state_dir with
    | None -> None
    | Some dir ->
      (match Hjournal.create ~dir ~compact_every:cfg.journal_compact () with
      | Ok j -> Some j
      | Error m ->
        (* Serving beats durability: come up journal-less rather than not
           at all, and say so loudly. *)
        Printf.eprintf "lcmd: state dir unusable, journaling disabled: %s\n%!" m;
        None)
  in
  let engine =
    Engine.default_config ~pool ~no_timing:cfg.no_timing ?worker_id:cfg.worker_id ?journal cfg.stats
  in
  (* Rebuild journaled handles before the serve loop touches a frame:
     deltas that raced the respawn sit in the socket buffer until every
     handle is back under its original id. *)
  let t0 = now () in
  Engine.recover engine;
  (match journal with
  | Some _ when Handles.size engine.Engine.handles > 0 ->
    if not cfg.quiet then
      Printf.eprintf "lcmd: recovered %d handle(s) from journal in %.1f ms\n%!"
        (Handles.size engine.Engine.handles)
        ((now () -. t0) *. 1000.)
  | _ -> ());
  {
    cfg;
    engine;
    pool;
    queue = Bqueue.create ~capacity:cfg.queue_capacity;
    conns;
    listen_fd;
    served = 0;
    last_save = now ();
    last_trace_flush = now ();
  }

let finish st =
  Pool.shutdown st.pool;
  Atomic.set shutdown_flag false;
  (* Final trace flush: whatever is still buffered (the "daemon" I/O trace,
     spans of rejected requests) goes to its per-trace file now. *)
  (match st.cfg.trace_dir with
  | None -> ()
  | Some dir ->
    let by_trace = Hashtbl.create 8 in
    List.iter
      (fun (sp : Trace.span) ->
        Hashtbl.replace by_trace sp.Trace.trace_id
          (sp :: Option.value (Hashtbl.find_opt by_trace sp.Trace.trace_id) ~default:[]))
      (Trace.drain ());
    Hashtbl.iter
      (fun trace_id spans ->
        Prof.add st.engine.Engine.prof spans;
        try append_trace_file ~dir ~trace_id (List.rev spans) with Sys_error _ -> ())
      by_trace);
  Stats.record_gc st.cfg.stats;
  Option.iter (fun path -> Stats.save_file st.cfg.stats path) st.cfg.state_file;
  log st "drained cleanly: %d responses served" st.served;
  if not st.cfg.quiet then Stats.dump st.cfg.stats stderr

let serve_fds cfg ~fd_in ~fd_out =
  let conn =
    {
      fd_in;
      fd_out;
      reader = Frame.create ~max_frame:cfg.max_frame;
      out = Buffer.create 4096;
      writer = Frame.writer ();
      owns_fds = false;
      eof = false;
      dead = false;
      inflight = 0;
    }
  in
  let st = make_state cfg [ conn ] in
  log st "serving on fds (pool=%d, queue=%d, batch<=%d, max_frame=%d)" (Pool.size st.pool)
    cfg.queue_capacity cfg.batch_max cfg.max_frame;
  Fun.protect ~finally:(fun () -> finish st) (fun () -> serve_loop st)

let serve_unix_socket cfg ~path =
  let lfd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 64;
  Unix.set_nonblock lfd;
  let st = make_state cfg ~listen_fd:lfd [] in
  log st "listening on %s (pool=%d, queue=%d, batch<=%d, max_frame=%d)" path (Pool.size st.pool)
    cfg.queue_capacity cfg.batch_max cfg.max_frame;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      finish st)
    (fun () -> serve_loop st)
