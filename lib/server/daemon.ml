module Pool = Lcm_support.Pool

type config = {
  queue_capacity : int;
  batch_max : int;
  max_frame : int;
  default_deadline_ms : float option;
  workers : int;
  no_timing : bool;
  quiet : bool;
  stats : Stats.t;
}

let default_config () =
  {
    queue_capacity = 256;
    batch_max = 32;
    max_frame = 1 lsl 20;
    default_deadline_ms = None;
    workers = Pool.default_size ();
    no_timing = false;
    quiet = false;
    stats = Stats.global;
  }

(* One flag for the whole process so a signal handler has a fixed target;
   cleared when a loop exits so daemons can run back to back (tests). *)
let shutdown_flag = Atomic.make false
let request_shutdown () = Atomic.set shutdown_flag true

type conn = {
  fd_in : Unix.file_descr;
  fd_out : Unix.file_descr;
  reader : Frame.reader;
  out : Buffer.t;  (* response bytes not yet accepted by the peer *)
  owns_fds : bool;  (* accepted sockets are closed by the daemon; stdio fds are not *)
  mutable eof : bool;
  mutable dead : bool;
  mutable inflight : int;  (* admitted requests whose response is not yet buffered *)
}

type item = {
  i_conn : conn;
  i_req : Protocol.request;
  i_arrival : float;
  i_deadline : float option;
}

type state = {
  cfg : config;
  engine : Engine.config;
  pool : Pool.t;
  queue : item Bqueue.t;
  mutable conns : conn list;
  listen_fd : Unix.file_descr option;
  mutable served : int;
}

let now = Unix.gettimeofday

let log st fmt =
  Printf.ksprintf
    (fun m ->
      if not st.cfg.quiet then begin
        Printf.eprintf "lcmd: %s\n" m;
        flush stderr
      end)
    fmt

(* ---- writing ---- *)

let kill_conn conn =
  if not conn.dead then begin
    conn.dead <- true;
    conn.eof <- true;
    Buffer.clear conn.out;
    if conn.owns_fds then begin
      (try Unix.close conn.fd_in with Unix.Unix_error _ -> ());
      if conn.fd_out != conn.fd_in then try Unix.close conn.fd_out with Unix.Unix_error _ -> ()
    end
  end

(* Write as much buffered output as the peer accepts right now. *)
let flush_out conn =
  if (not conn.dead) && Buffer.length conn.out > 0 then begin
    let s = Buffer.contents conn.out in
    let n = String.length s in
    let written = ref 0 in
    let stop = ref false in
    while (not !stop) && !written < n do
      match Unix.write_substring conn.fd_out s !written (n - !written) with
      | 0 -> stop := true
      | k -> written := !written + k
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> stop := true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        kill_conn conn;
        stop := true
    done;
    if not conn.dead then begin
      Buffer.clear conn.out;
      if !written < n then Buffer.add_substring conn.out s !written (n - !written)
    end
  end

let send conn frame =
  if not conn.dead then begin
    Buffer.add_string conn.out frame;
    Buffer.add_char conn.out '\n';
    flush_out conn
  end

(* ---- admission ---- *)

let admission_error st conn ~id ~code ~message =
  Stats.incr st.cfg.stats "errors_total";
  Stats.incr st.cfg.stats ("errors." ^ Protocol.error_code_to_string code);
  send conn (Protocol.error ~id ~code ~message)

let handle_frame st conn frame =
  Stats.incr st.cfg.stats "frames_total";
  match Protocol.parse_request frame with
  | Error (id, code, message) -> admission_error st conn ~id ~code ~message
  | Ok req ->
    Stats.incr st.cfg.stats "requests_total";
    let arrival = now () in
    (match req.Protocol.op with
    | Protocol.Stats | Protocol.Ping ->
      (* Control-plane ops bypass the queue: they stay answerable when the
         daemon is overloaded or draining. *)
      conn.inflight <- conn.inflight + 1;
      let r = Engine.execute st.engine ~now ~arrival ~deadline:None req in
      conn.inflight <- conn.inflight - 1;
      st.served <- st.served + 1;
      send conn r
    | Protocol.Run _ | Protocol.Sleep _ ->
      if Atomic.get shutdown_flag then
        admission_error st conn ~id:req.Protocol.id ~code:Protocol.Shutting_down
          ~message:"daemon is draining; request not admitted"
      else begin
        let deadline_ms =
          match req.Protocol.deadline_ms with
          | Some d -> Some d
          | None -> st.cfg.default_deadline_ms
        in
        let i_deadline = Option.map (fun d -> arrival +. (d /. 1000.)) deadline_ms in
        let item = { i_conn = conn; i_req = req; i_arrival = arrival; i_deadline } in
        if Bqueue.try_push st.queue item then conn.inflight <- conn.inflight + 1
        else begin
          Stats.incr st.cfg.stats "rejected_overloaded";
          admission_error st conn ~id:req.Protocol.id ~code:Protocol.Overloaded
            ~message:
              (Printf.sprintf "queue full (%d requests); retry later" (Bqueue.capacity st.queue))
        end
      end)

let read_conn st conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.fd_in buf 0 (Bytes.length buf) with
  | 0 -> conn.eof <- true
  | len ->
    List.iter
      (function
        | Frame.Frame f -> handle_frame st conn f
        | Frame.Oversized n ->
          Stats.incr st.cfg.stats "rejected_oversized";
          admission_error st conn ~id:Json.Null ~code:Protocol.Oversized
            ~message:
              (Printf.sprintf "frame of %d bytes exceeds max_frame=%d" n st.cfg.max_frame))
      (Frame.feed conn.reader buf len)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) -> kill_conn conn

(* ---- dispatch ---- *)

let dispatch_batch st =
  let batch = Bqueue.pop_batch st.queue ~max:st.cfg.batch_max in
  match batch with
  | [] -> ()
  | _ ->
    Stats.incr st.cfg.stats "batches_total";
    Stats.observe_ms st.cfg.stats "batch_size" (float_of_int (List.length batch));
    let items = Array.of_list batch in
    let results = Array.make (Array.length items) "" in
    let task k () =
      let it = items.(k) in
      results.(k) <-
        Engine.execute st.engine ~now ~arrival:it.i_arrival ~deadline:it.i_deadline it.i_req
    in
    Pool.run st.pool (List.init (Array.length items) task);
    Array.iteri
      (fun k it ->
        it.i_conn.inflight <- it.i_conn.inflight - 1;
        st.served <- st.served + 1;
        send it.i_conn results.(k))
      items

(* ---- the loop ---- *)

let accept_ready st =
  match st.listen_fd with
  | None -> ()
  | Some lfd ->
    (match Unix.accept ~cloexec:true lfd with
    | fd, _ ->
      Unix.set_nonblock fd;
      Stats.incr st.cfg.stats "connections_total";
      st.conns <-
        st.conns
        @ [
            {
              fd_in = fd;
              fd_out = fd;
              reader = Frame.create ~max_frame:st.cfg.max_frame;
              out = Buffer.create 4096;
              owns_fds = true;
              eof = false;
              dead = false;
              inflight = 0;
            };
          ]
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ())

let live_conns st = List.filter (fun c -> not c.dead) st.conns

let reap st =
  List.iter
    (fun c ->
      (* A connection whose input ended and whose work is fully answered
         has nothing left to exchange. *)
      if c.eof && (not c.dead) && c.inflight = 0 && Buffer.length c.out = 0 && c.owns_fds then
        kill_conn c)
    st.conns;
  st.conns <- List.filter (fun c -> not c.dead) st.conns

let drained st =
  Bqueue.is_empty st.queue
  && List.for_all (fun c -> c.inflight = 0 && Buffer.length c.out = 0) (live_conns st)

let all_inputs_finished st =
  st.listen_fd = None && List.for_all (fun c -> c.eof) (live_conns st)

let serve_loop st =
  let finished = ref false in
  while not !finished do
    let draining = Atomic.get shutdown_flag in
    let read_fds =
      (if draining then [] else Option.to_list st.listen_fd)
      @ List.filter_map
          (fun c -> if c.eof || c.dead || draining then None else Some c.fd_in)
          st.conns
    in
    let write_fds =
      List.filter_map
        (fun c -> if (not c.dead) && Buffer.length c.out > 0 then Some c.fd_out else None)
        st.conns
    in
    let timeout = if not (Bqueue.is_empty st.queue) then 0. else 0.1 in
    let readable, writable =
      match Unix.select read_fds write_fds [] timeout with
      | r, w, _ -> (r, w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
    in
    (match st.listen_fd with
    | Some lfd when List.memq lfd readable -> accept_ready st
    | _ -> ());
    List.iter
      (fun c -> if (not c.dead) && (not c.eof) && List.memq c.fd_in readable then read_conn st c)
      st.conns;
    List.iter
      (fun c -> if (not c.dead) && List.memq c.fd_out writable then flush_out c)
      st.conns;
    dispatch_batch st;
    reap st;
    if (draining || all_inputs_finished st) && drained st then finished := true
  done;
  (* Final flush: give slow readers one last chance to take buffered
     responses before the fds go away. *)
  List.iter (fun c -> flush_out c) (live_conns st);
  List.iter (fun c -> if c.owns_fds then kill_conn c) st.conns

let make_state cfg ?listen_fd conns =
  let pool = Pool.create (max 1 cfg.workers) in
  {
    cfg;
    engine = Engine.default_config ~pool ~no_timing:cfg.no_timing cfg.stats;
    pool;
    queue = Bqueue.create ~capacity:cfg.queue_capacity;
    conns;
    listen_fd;
    served = 0;
  }

let finish st =
  Pool.shutdown st.pool;
  Atomic.set shutdown_flag false;
  log st "drained cleanly: %d responses served" st.served;
  if not st.cfg.quiet then Stats.dump st.cfg.stats stderr

let serve_fds cfg ~fd_in ~fd_out =
  let conn =
    {
      fd_in;
      fd_out;
      reader = Frame.create ~max_frame:cfg.max_frame;
      out = Buffer.create 4096;
      owns_fds = false;
      eof = false;
      dead = false;
      inflight = 0;
    }
  in
  let st = make_state cfg [ conn ] in
  log st "serving on fds (pool=%d, queue=%d, batch<=%d, max_frame=%d)" (Pool.size st.pool)
    cfg.queue_capacity cfg.batch_max cfg.max_frame;
  Fun.protect ~finally:(fun () -> finish st) (fun () -> serve_loop st)

let serve_unix_socket cfg ~path =
  let lfd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 64;
  Unix.set_nonblock lfd;
  let st = make_state cfg ~listen_fd:lfd [] in
  log st "listening on %s (pool=%d, queue=%d, batch<=%d, max_frame=%d)" path (Pool.size st.pool)
    cfg.queue_capacity cfg.batch_max cfg.max_frame;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      finish st)
    (fun () -> serve_loop st)
