module Prng = Lcm_support.Prng

type policy = {
  retries : int;
  base_ms : float;
  cap_ms : float;
  budget_ms : float option;
}

let default = { retries = 0; base_ms = 100.; cap_ms = 5000.; budget_ms = None }

let backoff_ms p ~attempt =
  let base = Float.max 0. p.base_ms in
  let cap = Float.max 0. p.cap_ms in
  if base = 0. then 0.
  else begin
    (* Doubling overflows fast; stop multiplying once past the cap. *)
    let b = ref base in
    let k = ref 0 in
    while !k < attempt && !b < cap do
      b := !b *. 2.;
      incr k
    done;
    Float.min cap !b
  end

let next_delay_ms p rng ~attempt ~elapsed_ms =
  if attempt >= p.retries then None
  else begin
    let b = backoff_ms p ~attempt in
    (* Uniform in [b/2, b]: draw 2^20 lattice points for determinism. *)
    let steps = 1 lsl 20 in
    let u = float_of_int (Prng.int rng (steps + 1)) /. float_of_int steps in
    let d = (b /. 2.) +. (u *. (b /. 2.)) in
    match p.budget_ms with
    | None -> Some d
    | Some budget ->
      let remaining = budget -. elapsed_ms in
      if remaining <= 0. then None else Some (Float.min d remaining)
  end

let retryable_code = function
  | "overloaded" | "shutting_down" -> true
  | _ -> false
