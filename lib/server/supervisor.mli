(** Supervised serving: fork the daemon, restart it when it dies badly.

    The supervisor is a thin parent process with no domains and no request
    state — everything that can crash lives in the child.  The contract:

    - the child runs the supplied thunk and exits 0 on a graceful drain;
    - a clean exit (status 0), or any exit after the supervisor itself was
      asked to stop (SIGTERM/SIGINT, which it forwards to the child), ends
      supervision with exit code 0;
    - any other death — non-zero exit, [kill -9], a chaos-injected
      [daemon.crash] — bumps [supervisor.restarts_total] (and a per-reason
      counter) in the state file and forks a fresh child after a capped
      exponential backoff ({!Retry.backoff_ms} shape, no jitter: restart
      timing should be predictable for operators and tests);
    - a child that stayed up for [healthy_s] before dying resets the
      consecutive-failure count, so a long-running daemon that crashes
      once restarts promptly;
    - [max_restarts] {e consecutive} quick failures end supervision with
      the last child's exit code — a daemon that cannot start should fail
      loudly, not flap forever.

    Metrics continuity is by way of the state file: each child is expected
    to load it at startup and save it periodically
    ({!Daemon.config.state_file}), and the supervisor folds its own restart
    counters into the same file, so a [stats] request answered by the
    third incarnation reports the full history including how many times
    the daemon died. *)

type config = {
  max_restarts : int;  (** consecutive abnormal exits before giving up *)
  backoff_base_ms : float;  (** delay before the first restart *)
  backoff_cap_ms : float;  (** ceiling on the restart delay *)
  healthy_s : float;  (** uptime that counts as recovered *)
  state_file : string;  (** shared metrics file (see above) *)
  child_pid_file : string option;  (** current child pid, rewritten per fork *)
  quiet : bool;  (** suppress supervisor stderr logging *)
}

(** Defaults: 10 restarts, 100 ms base, 5 s cap, 5 s healthy. *)
val default_config : state_file:string -> config

(** [run config thunk] supervises [thunk] as described above and returns
    the process exit code.  Must be called before any domains are spawned
    (it forks). *)
val run : config -> (unit -> unit) -> int
