type event =
  | Frame of string
  | Oversized of int

type reader = {
  max_frame : int;
  buf : Buffer.t;
  mutable discarding : bool;  (* current line already blew the limit *)
  mutable discarded : int;  (* bytes dropped of the current oversized line *)
}

let create ~max_frame = { max_frame; buf = Buffer.create 512; discarding = false; discarded = 0 }

let pending r = Buffer.length r.buf

let feed r bytes len =
  let events = ref [] in
  for i = 0 to len - 1 do
    let c = Bytes.get bytes i in
    if r.discarding then begin
      if c = '\n' then begin
        events := Oversized r.discarded :: !events;
        r.discarding <- false;
        r.discarded <- 0
      end
      else r.discarded <- r.discarded + 1
    end
    else if c = '\n' then begin
      events := Frame (Buffer.contents r.buf) :: !events;
      Buffer.clear r.buf
    end
    else begin
      Buffer.add_char r.buf c;
      if Buffer.length r.buf > r.max_frame then begin
        r.discarding <- true;
        r.discarded <- Buffer.length r.buf;
        Buffer.clear r.buf
      end
    end
  done;
  List.rev !events

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    match Unix.write fd b !written (n - !written) with
    | k -> written := !written + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let write_frame fd s = write_all fd (s ^ "\n")
