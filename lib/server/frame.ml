type event =
  | Frame of string
  | Oversized of int

let chunk_size = 65536

type reader = {
  max_frame : int;
  buf : Buffer.t;
  chunk : Bytes.t;  (* reusable read buffer: one per connection, not per read *)
  mutable discarding : bool;  (* current line already blew the limit *)
  mutable discarded : int;  (* bytes dropped of the current oversized line *)
}

let create ~max_frame =
  {
    max_frame;
    buf = Buffer.create 512;
    chunk = Bytes.create chunk_size;
    discarding = false;
    discarded = 0;
  }

let read_chunk r = r.chunk
let pending r = Buffer.length r.buf

let feed r bytes len =
  let events = ref [] in
  for i = 0 to len - 1 do
    let c = Bytes.get bytes i in
    if r.discarding then begin
      if c = '\n' then begin
        events := Oversized r.discarded :: !events;
        r.discarding <- false;
        r.discarded <- 0
      end
      else r.discarded <- r.discarded + 1
    end
    else if c = '\n' then begin
      events := Frame (Buffer.contents r.buf) :: !events;
      Buffer.clear r.buf
    end
    else begin
      Buffer.add_char r.buf c;
      if Buffer.length r.buf > r.max_frame then begin
        r.discarding <- true;
        r.discarded <- Buffer.length r.buf;
        Buffer.clear r.buf
      end
    end
  done;
  List.rev !events

(* Reusable write scratch.  Flush paths copy a [Buffer] here before
   [Unix.write] instead of materializing a fresh string per flush.  The
   scratch grows geometrically up to [retain_max]; an oversized payload is
   served from a one-shot temporary so one huge response cannot pin a
   connection-lifetime buffer. *)
type writer = { mutable scratch : Bytes.t; retain_max : int }

let writer ?(retain_max = chunk_size) () =
  { scratch = Bytes.create 4096; retain_max = max 4096 retain_max }

let writer_bytes w buf =
  let n = Buffer.length buf in
  if n <= Bytes.length w.scratch then begin
    Buffer.blit buf 0 w.scratch 0 n;
    w.scratch
  end
  else if n <= w.retain_max then begin
    let cap = ref (Bytes.length w.scratch) in
    while !cap < n do
      cap := !cap * 2
    done;
    w.scratch <- Bytes.create (min !cap w.retain_max);
    Buffer.blit buf 0 w.scratch 0 n;
    w.scratch
  end
  else (* oversized fallback: not retained *) Buffer.to_bytes buf

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    match Unix.write fd b !written (n - !written) with
    | k -> written := !written + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let write_frame fd s = write_all fd (s ^ "\n")
