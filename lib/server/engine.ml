module Cfg = Lcm_cfg.Cfg
module Cfg_text = Lcm_cfg.Cfg_text
module Lower = Lcm_cfg.Lower
module Parser = Lcm_ir.Parser
module Lexer = Lcm_ir.Lexer
module Pool = Lcm_support.Pool
module Registry = Lcm_eval.Registry
module Metrics = Lcm_eval.Metrics
module Lcm_edge = Lcm_core.Lcm_edge
module Bcm_edge = Lcm_core.Bcm_edge

type config = {
  lookup : string -> Registry.entry option;
  pool : Pool.t option;
  stats : Stats.t;
  no_timing : bool;
}

let default_config ?pool ?(no_timing = false) stats =
  { lookup = Registry.find; pool; stats; no_timing }

exception Deadline

(* A typed failure raised inside the pipeline; anything else escaping is a
   panic and maps to [Internal]. *)
exception Reject of Protocol.error_code * string

let reject code fmt = Printf.ksprintf (fun m -> raise (Reject (code, m))) fmt

let check_deadline ~now ~deadline =
  match deadline with
  | Some d when now () > d -> raise Deadline
  | _ -> ()

(* Phase 1: the program text to a validated graph. *)
let load_graph (r : Protocol.run_request) =
  match r.Protocol.format with
  | Protocol.CfgText ->
    (try Cfg_text.parse r.Protocol.program with
    | Cfg_text.Parse_error (m, line) -> reject Protocol.Parse_error "cfg parse error at line %d: %s" line m)
  | Protocol.MiniImp ->
    let funcs =
      try Lower.program (Parser.parse_program r.Protocol.program) with
      | Parser.Parse_error (m, line, col) -> reject Protocol.Parse_error "parse error at %d:%d: %s" line col m
      | Lexer.Lex_error (m, line, col) -> reject Protocol.Parse_error "lex error at %d:%d: %s" line col m
    in
    (match r.Protocol.func with
    | None ->
      (match funcs with
      | [ (_, g) ] -> g
      | [] -> reject Protocol.Parse_error "program defines no function"
      | _ ->
        reject Protocol.Bad_request "program defines %d functions; pick one with \"function\" (%s)"
          (List.length funcs)
          (String.concat ", " (List.map fst funcs)))
    | Some f ->
      (match List.assoc_opt f funcs with
      | Some g -> g
      | None -> reject Protocol.Bad_request "no function %S in program" f))

(* Phase 2: the transformation.  The paper-algorithm transforms have a
   parallel path; everything else runs sequentially whatever was asked. *)
let run_algorithm cfg (r : Protocol.run_request) entry g =
  match cfg.pool with
  | Some pool when r.Protocol.workers > 1 && Pool.size pool > 1 -> (
    let workers = min r.Protocol.workers (Pool.size pool) in
    match r.Protocol.algorithm with
    | "lcm-edge" -> (fst (Lcm_edge.transform ~workers:pool g), workers)
    | "bcm-edge" -> (fst (Bcm_edge.transform ~workers:pool g), workers)
    | _ -> (entry.Registry.run g, 1))
  | _ -> (entry.Registry.run g, 1)

let execute_run cfg ~now ~deadline ~id (r : Protocol.run_request) ~timing_of =
  let entry =
    match cfg.lookup r.Protocol.algorithm with
    | Some e -> e
    | None -> reject Protocol.Bad_request "unknown algorithm %S" r.Protocol.algorithm
  in
  let g = load_graph r in
  check_deadline ~now ~deadline;
  let g', workers = run_algorithm cfg r entry g in
  check_deadline ~now ~deadline;
  let g' =
    if r.Protocol.simplify then begin
      let h = Cfg.copy g' in
      Cfg.merge_straight_pairs h;
      Cfg.remove_unreachable h;
      h
    end
    else g'
  in
  check_deadline ~now ~deadline;
  let before = Metrics.static_counts g in
  let after = Metrics.static_counts g' in
  let program = Cfg.to_string g' in
  Protocol.ok_run ~id ~algorithm:r.Protocol.algorithm ~workers ~program ~before ~after
    ~timing:(timing_of ())

(* Cancellable sleep: 1 ms slices with a deadline check between slices —
   the test/benchmark stand-in for a pathologically slow (or
   non-terminating) request. *)
let execute_sleep ~now ~deadline ~id duration_ms ~timing_of =
  let t0 = now () in
  let finish = t0 +. (duration_ms /. 1000.) in
  let rec go () =
    check_deadline ~now ~deadline;
    let remaining = finish -. now () in
    if remaining > 0. then begin
      Unix.sleepf (Float.min 0.001 remaining);
      go ()
    end
  in
  go ();
  Protocol.ok_sleep ~id ~slept_ms:((now () -. t0) *. 1000.) ~timing:(timing_of ())

let execute cfg ~now ~arrival ~deadline (req : Protocol.request) =
  let id = req.Protocol.id in
  let start = now () in
  let queue_ms = Float.max 0. ((start -. arrival) *. 1000.) in
  let timing_of () =
    if cfg.no_timing then None
    else Some { Protocol.queue_ms; run_ms = (now () -. start) *. 1000. }
  in
  let fail code message =
    Stats.incr cfg.stats "errors_total";
    Stats.incr cfg.stats ("errors." ^ Protocol.error_code_to_string code);
    Protocol.error ~id ~code ~message
  in
  let frame =
    try
      check_deadline ~now ~deadline;
      let frame =
        match req.Protocol.op with
        | Protocol.Run r -> execute_run cfg ~now ~deadline ~id r ~timing_of
        | Protocol.Stats -> Protocol.ok_stats ~id ~stats:(Stats.snapshot cfg.stats)
        | Protocol.Ping -> Protocol.ok_ping ~id
        | Protocol.Sleep d -> execute_sleep ~now ~deadline ~id d ~timing_of
      in
      Stats.incr cfg.stats "responses_ok";
      frame
    with
    | Deadline -> fail Protocol.Deadline_exceeded "deadline exceeded during execution"
    | Reject (code, m) -> fail code m
    | Stack_overflow -> fail Protocol.Internal "stack overflow"
    | e -> fail Protocol.Internal ("request crashed: " ^ Printexc.to_string e)
  in
  let run_ms = (now () -. start) *. 1000. in
  Stats.observe_ms cfg.stats "queue_delay" queue_ms;
  Stats.observe_ms cfg.stats "run" run_ms;
  Stats.observe_ms cfg.stats "total" (queue_ms +. run_ms);
  frame
