module Cfg = Lcm_cfg.Cfg
module Cfg_text = Lcm_cfg.Cfg_text
module Frontend = Lcm_frontend.Frontend
module Lower = Lcm_cfg.Lower
module Parser = Lcm_ir.Parser
module Lexer = Lcm_ir.Lexer
module Instr = Lcm_ir.Instr
module Pool = Lcm_support.Pool
module Arena = Lcm_support.Arena
module Fault = Lcm_support.Fault
module Prng = Lcm_support.Prng
module Registry = Lcm_eval.Registry
module Metrics = Lcm_eval.Metrics
module Interp = Lcm_eval.Interp
module Pass = Lcm_core.Pass
module Transform = Lcm_core.Transform
module Lcm_edge = Lcm_core.Lcm_edge
module Patch = Lcm_cfg.Patch
module Placement_check = Lcm_core.Placement_check
module Trace = Lcm_obs.Trace
module Prof = Lcm_obs.Prof

type config = {
  lookup : string -> Registry.entry option;
  pool : Pool.t option;
  stats : Stats.t;
  m : Smetrics.t;
  prof : Prof.t;
  no_timing : bool;
  worker_id : int option;
  handles : Handles.t;
  journal : Hjournal.t option;
  recovered : (string, unit) Hashtbl.t;
}

let default_config ?pool ?(no_timing = false) ?worker_id ?(handle_capacity = 128) ?journal stats =
  {
    lookup = Registry.find;
    pool;
    stats;
    m = Smetrics.create stats;
    prof = Prof.create ();
    no_timing;
    worker_id;
    handles = Handles.create ~worker:(Option.value worker_id ~default:0) ~capacity:handle_capacity;
    journal;
    recovered = Hashtbl.create 8;
  }

(* Serving metadata appended to run/delta responses: which worker answered
   (shard mode only — a plain daemon omits the field, keeping historical
   frames byte-identical). *)
let worker_fields cfg =
  match cfg.worker_id with Some w -> [ ("worker", Json.Int w) ] | None -> []

exception Deadline

(* A typed failure raised inside the pipeline; anything else escaping is a
   panic and maps to [Internal]. *)
exception Reject of Protocol.error_code * string

let reject code fmt = Printf.ksprintf (fun m -> raise (Reject (code, m))) fmt

let check_deadline ~now ~deadline =
  match deadline with
  | Some d when now () > d -> raise Deadline
  | _ -> ()

(* Phase 1: the program text to a validated graph, through the frontend
   registry — the engine resolves the request's [format] by name, so new
   formats are registry entries, not new engine arms. *)
let load_graph cfg (r : Protocol.run_request) =
  let fe =
    match Frontend.find r.Protocol.format with
    | Some fe -> fe
    | None ->
      reject Protocol.Unsupported_format "unknown format %S (registered: %s)" r.Protocol.format
        (String.concat ", " Frontend.names)
  in
  Stats.bump (cfg.m.Smetrics.format_requests fe.Frontend.name);
  match Frontend.parse_one fe ?func:r.Protocol.func r.Protocol.program with
  | Ok g -> g
  | Error (Frontend.Parse e) -> reject Protocol.Parse_error "%s" e.Frontend.message
  | Error (Frontend.Pick m) -> reject Protocol.Bad_request "%s" m

(* ---- chaos boundaries ----
   Probed between pipeline phases.  All three probes are free when no
   LCM_CHAOS configuration is installed (one atomic load each). *)

let chaos_boundary () =
  if Fault.fire "engine.slow" then Unix.sleepf 0.002;
  if Fault.fire "engine.alloc" then raise Out_of_memory;
  Fault.inject "engine.panic"

(* ---- result validation ---- *)

exception Validation_failed of string
exception Validation_fuel
(* every interpreter sample ran out of fuel: nothing was actually compared *)

let validation_fuel = 50_000
let validation_runs = 3

(* Free variables: read somewhere, defined nowhere — the program's inputs. *)
let free_vars g =
  let defined = Hashtbl.create 16 in
  List.iter
    (fun l ->
      List.iter (fun i -> Option.iter (fun v -> Hashtbl.replace defined v ()) (Instr.defs i)) (Cfg.instrs g l))
    (Cfg.labels g);
  List.filter (fun v -> not (Hashtbl.mem defined v)) (Cfg.all_vars g)

(* Interpret both graphs on a few deterministic random inputs (seeded from
   the program text, so a request validates the same way everywhere) and
   compare observable behaviour.  Samples where both sides exhaust their
   fuel prove nothing and are skipped; if *no* sample completes the
   validation itself is inconclusive — [Validation_fuel]. *)
let interp_validate g g' =
  let inputs = free_vars g in
  let rng = Prng.of_int (Hashtbl.hash (Cfg.to_string g)) in
  let pool = Cfg.candidate_pool g in
  let pool' = Cfg.candidate_pool g' in
  let compared = ref 0 in
  for _ = 1 to validation_runs do
    let env = List.map (fun v -> (v, Prng.int_in rng 0 8)) inputs in
    let o = Interp.run ~fuel:validation_fuel ~pool ~env g in
    let o' = Interp.run ~fuel:validation_fuel ~pool:pool' ~env g' in
    if o.Interp.terminated && o'.Interp.terminated then begin
      incr compared;
      if not (Interp.same_behaviour o o') then
        raise (Validation_failed "interpreter outputs differ between original and transformed program")
    end
  done;
  if !compared = 0 then raise Validation_fuel

let spec_validate g spec =
  match Placement_check.check g spec with
  | Ok () -> ()
  | Error m -> raise (Validation_failed ("placement check: " ^ m))

(* ---- the transformation, in tiers ----

   The paper-algorithm transforms have a parallel path; everything else
   runs sequentially whatever was asked.  When a tier faults mid-pipeline
   (injected or real), the request falls back to the next cheaper tier —
   parallel → sequential → identity — and the result of any fallback tier
   is validated before it is served, marked [degraded:<tier>].  The
   service sheds quality before it sheds availability; the identity tier
   cannot fail. *)

type tier =
  | Par of int  (* capped worker count *)
  | Seq
  | Ident

let tier_name = function
  | Par _ -> "parallel"
  | Seq -> "sequential"
  | Ident -> "identity"

(* The spec used for cheap static validation: exposed only when the entry
   is a single pass whose report carries one — a multi-pass pipeline's
   later passes rewrite the graph past what any one spec describes, so a
   spec check alone would under-validate there. *)
let spec_of entry reports =
  match (entry.Registry.pipeline.Pass.Pipeline.passes, reports) with
  | [ _ ], (_, first) :: _ -> first.Pass.spec
  | _ -> None

(* Run one tier: the entry's pipeline under the tier's context (plus a
   trailing structural simplify when the request asked for one).  Returns
   the transformed graph, the worker count to report, and the spec. *)
let run_tier cfg (r : Protocol.run_request) entry g ~scratch = function
  | Par workers ->
    (* The arena rides along: the cascade uses it only on this (the
       request's) domain; phases fanned out to pool domains keep the heap
       path (see [Lcm_edge.solve_safety_systems]). *)
    let ctx = { Pass.workers = Some (Option.get cfg.pool); Pass.scratch } in
    let pipe =
      if r.Protocol.simplify then Pass.Pipeline.append entry.Registry.pipeline [ Pass.simplify ]
      else entry.Registry.pipeline
    in
    let g', reports = Pass.Pipeline.run ctx pipe g in
    (g', workers, spec_of entry reports)
  | Seq ->
    let pipe =
      if r.Protocol.simplify then Pass.Pipeline.append entry.Registry.pipeline [ Pass.simplify ]
      else entry.Registry.pipeline
    in
    let g', reports = Pass.Pipeline.run { Pass.default_ctx with Pass.scratch } pipe g in
    (g', 1, spec_of entry reports)
  | Ident -> (g, 1, None)

let execute_run cfg ~now ~deadline ~id ~trace_id (r : Protocol.run_request) ~timing_of =
  let entry =
    match cfg.lookup r.Protocol.algorithm with
    | Some e -> e
    | None -> reject Protocol.Bad_request "unknown algorithm %S" r.Protocol.algorithm
  in
  let g = Trace.span "engine.load" (fun () -> load_graph cfg r) in
  check_deadline ~now ~deadline;
  (* Admission: check a scratch arena out for this request's shape class.
     Everything from tier selection to response rendering runs inside the
     checkout; [Pool.Scratch.with_arena]'s finalizer reclaims every loan
     even when a tier (or a chaos injection) panics.  Nothing arena-backed
     escapes: the response carries only strings and ints. *)
  let blocks = Cfg.label_bound g in
  let exprs = Lcm_ir.Expr_pool.size (Cfg.candidate_pool g) in
  Pool.Scratch.with_arena ~blocks ~exprs @@ fun arena ->
  let scratch = Some arena in
  let alloc0 = Gc.allocated_bytes () in
  let checkouts0 = Arena.checkouts arena and misses0 = Arena.misses arena in
  let requested =
    match cfg.pool with
    | Some pool when r.Protocol.workers > 1 && Pool.size pool > 1 && entry.Registry.parallelizable ->
      Par (min r.Protocol.workers (Pool.size pool))
    | _ -> Seq
  in
  (* One tier attempt: transform, simplify, chaos boundary, validation.
     Any exception (other than deadline / typed rejection) sends the
     request to the next tier. *)
  let attempt tier =
    if tier <> Ident then chaos_boundary ();
    let g', workers, spec = run_tier cfg r entry g ~scratch tier in
    check_deadline ~now ~deadline;
    if tier <> Ident then chaos_boundary ();
    check_deadline ~now ~deadline;
    let degraded = tier <> requested in
    let validated =
      if tier = Ident then r.Protocol.validate (* the unchanged program is vacuously valid *)
      else if r.Protocol.validate || degraded then
        Trace.span "engine.validate" (fun () ->
            Option.iter (spec_validate g) spec;
            (* Explicit validation always compares behaviour; a degraded
               result with a checked spec skips the interpreter (cheap path). *)
            if r.Protocol.validate || spec = None then begin
              try interp_validate g g'
              with Validation_fuel when r.Protocol.validate && not degraded ->
                reject Protocol.Fuel_exhausted
                  "validation ran out of fuel (%d steps per sample): the program did not terminate \
                   on any sample input"
                  validation_fuel
            end;
            true)
      else false
    in
    (g', workers, tier, validated)
  in
  let tiers = match requested with Par _ -> [ requested; Seq; Ident ] | _ -> [ Seq; Ident ] in
  let rec go = function
    | [] -> reject Protocol.Internal "no tier could serve the request"
    | [ tier ] -> attempt tier (* last resort: let failures surface *)
    | tier :: rest ->
      (match attempt tier with
      | result -> result
      | exception ((Deadline | Reject _) as e) -> raise e
      | exception _ ->
        Stats.bump cfg.m.Smetrics.tier_fallbacks;
        go rest)
  in
  let g', workers, tier, validated = go tiers in
  let tier_served = if tier <> requested then Some (tier_name tier) else None in
  (match tier_served with
  | Some t ->
    Stats.bump cfg.m.Smetrics.degraded_total;
    Stats.bump (cfg.m.Smetrics.degraded_tier t)
  | None -> ());
  if validated then Stats.bump cfg.m.Smetrics.validated_total;
  let before = Metrics.static_counts g in
  let after = Metrics.static_counts g' in
  let program = Cfg.to_string g' in
  let frame =
    Protocol.ok_run ~id ~trace_id ~algorithm:r.Protocol.algorithm ~workers ~degraded:tier_served
      ~validated ~extra:(worker_fields cfg) ~program ~before ~after ~timing:(timing_of ()) ()
  in
  (* Allocation telemetry for the zero-allocation steady state: how many
     scratch checkouts the request made, how many had to heap-allocate
     (zero once the shape class is warm), and the minor-words actually
     allocated on this domain while serving it. *)
  let bump c by = if by > 0 then Stats.bump ~by c in
  bump cfg.m.Smetrics.arena_checkouts (Arena.checkouts arena - checkouts0);
  bump cfg.m.Smetrics.arena_misses (Arena.misses arena - misses0);
  let bytes_per_word = Sys.word_size / 8 in
  bump cfg.m.Smetrics.alloc_words
    (int_of_float ((Gc.allocated_bytes () -. alloc0) /. float_of_int bytes_per_word));
  frame

(* ---- retained graphs and incremental re-solve ----

   A [run] with [retain:true] takes the heap path (no arena: the capture
   must outlive this request) and parks the graph plus its AVAIL/ANTIC
   fixpoints in the handle table.  A later [delta] patches a copy of the
   retained graph and restarts the solve from the capture, visiting only
   the region the patch disturbed; when the patch changed the candidate
   expression pool (bit indices shifted) it falls back to a from-scratch
   solve on the patched graph — same answer, no savings. *)

(* An evicted handle's journal goes with it: recovery must not resurrect
   handles the capacity bound already reclaimed. *)
let drop_evicted cfg evicted =
  if evicted <> [] then begin
    Stats.bump ~by:(List.length evicted) cfg.m.Smetrics.handles_evicted;
    List.iter
      (fun h ->
        Hashtbl.remove cfg.recovered h;
        Option.iter (fun j -> Hjournal.drop j ~handle:h) cfg.journal)
      evicted
  end

let execute_retain cfg ~now ~deadline ~id ~trace_id (r : Protocol.run_request) ~timing_of =
  if not (String.equal r.Protocol.algorithm "lcm-edge") then
    reject Protocol.Bad_request "retain is only supported for algorithm \"lcm-edge\" (got %S)"
      r.Protocol.algorithm;
  let g = Trace.span "engine.load" (fun () -> load_graph cfg r) in
  check_deadline ~now ~deadline;
  chaos_boundary ();
  let a, saved = Trace.span "engine.retain.solve" (fun () -> Lcm_edge.analyze_keep g) in
  check_deadline ~now ~deadline;
  let g', report = Transform.apply ~simplify:r.Protocol.simplify g (Lcm_edge.spec g a) in
  chaos_boundary ();
  check_deadline ~now ~deadline;
  let validated =
    r.Protocol.validate
    &&
    (Trace.span "engine.validate" (fun () ->
         spec_validate g report.Transform.spec;
         (try interp_validate g g'
          with Validation_fuel ->
            reject Protocol.Fuel_exhausted
              "validation ran out of fuel (%d steps per sample): the program did not terminate \
               on any sample input"
              validation_fuel));
     true)
  in
  if validated then Stats.bump cfg.m.Smetrics.validated_total;
  let handle, `Evicted evicted =
    Handles.register cfg.handles
      { Handles.algorithm = r.Protocol.algorithm; simplify = r.Protocol.simplify; state = (g, saved) }
  in
  Stats.bump cfg.m.Smetrics.handles_live;
  drop_evicted cfg evicted;
  (* The base record: the handle survives [kill -9] from the moment the
     response leaves — the journal is fsynced before we return. *)
  (match cfg.journal with
  | None -> ()
  | Some j ->
    (match
       Hjournal.record_base j ~handle ~algorithm:r.Protocol.algorithm ~simplify:r.Protocol.simplify
         ~program:(Cfg.to_string g)
     with
    | Ok () -> Stats.bump cfg.m.Smetrics.journal_appends
    | Error _ -> Stats.bump cfg.m.Smetrics.journal_append_failures));
  let before = Metrics.static_counts g and after = Metrics.static_counts g' in
  Protocol.ok_run ~id ~trace_id ~algorithm:r.Protocol.algorithm ~workers:1 ~degraded:None
    ~validated
    ~extra:
      (worker_fields cfg
      @ [ ("handle", Json.String handle); ("retained_program", Json.String (Cfg.to_string g)) ])
    ~program:(Cfg.to_string g') ~before ~after ~timing:(timing_of ()) ()

(* Wire edits name blocks ["B<n>"] in the *canonical* printing of the
   retained graph (echoed back as [retained_program]): canonical text
   label Bn is internal label n, so resolution is a digit parse.  A block
   added by this delta gets the next label in sequence — N, N+1, … for a
   graph of N blocks — and may be referenced by later edits in the same
   request (edits apply in order). *)
let parse_wire_block what s =
  let n =
    if String.length s >= 2 && s.[0] = 'B' then int_of_string_opt (String.sub s 1 (String.length s - 1))
    else None
  in
  match n with
  | Some n when n >= 0 -> n
  | _ -> reject Protocol.Bad_request "%s: %S is not a block name like \"B3\"" what s

let parse_wire_instr s =
  try Cfg_text.parse_instr_line s
  with Cfg_text.Parse_error (m, _) -> reject Protocol.Bad_request "bad instruction %S: %s" s m

let parse_wire_term s =
  match
    try Cfg_text.parse_term_line s
    with Cfg_text.Parse_error (m, _) -> reject Protocol.Bad_request "bad terminator %S: %s" s m
  with
  | Some (Cfg_text.T_goto n) -> Cfg.Goto n
  | Some (Cfg_text.T_branch (c, a, b)) -> Cfg.Branch (c, a, b)
  | Some Cfg_text.T_halt -> Cfg.Halt
  | None -> reject Protocol.Bad_request "%S is not a terminator (goto / if ... / halt)" s

let edits_of_wire (d : Protocol.delta_request) =
  List.concat_map
    (fun (e : Protocol.delta_edit) ->
      if e.Protocol.d_add then
        [
          Patch.Add_block
            ( List.map parse_wire_instr (Option.value e.Protocol.d_instrs ~default:[]),
              parse_wire_term (Option.get e.Protocol.d_term) );
        ]
      else begin
        let l = parse_wire_block "edit" (Option.get e.Protocol.d_block) in
        (match e.Protocol.d_instrs with
        | Some ss -> [ Patch.Set_instrs (l, List.map parse_wire_instr ss) ]
        | None -> [])
        @
        match e.Protocol.d_term with
        | Some s -> [ Patch.Set_term (l, parse_wire_term s) ]
        | None -> []
      end)
    d.Protocol.d_edits

let execute_delta cfg ~now ~deadline ~id ~trace_id (d : Protocol.delta_request) ~timing_of =
  Stats.bump cfg.m.Smetrics.deltas_total;
  let entry =
    match Handles.find cfg.handles d.Protocol.d_handle with
    | Some e -> e
    | None ->
      reject Protocol.Unknown_handle
        "unknown handle %S: never issued here, evicted, or lost with a worker restart"
        d.Protocol.d_handle
  in
  let edits = edits_of_wire d in
  check_deadline ~now ~deadline;
  chaos_boundary ();
  (* Patch a copy: a failed patch leaves the handle intact at its
     pre-patch state, so the client can correct and resend. *)
  let g0, saved0 = entry.Handles.state in
  let g = Cfg.copy g0 in
  let dirty =
    try Patch.apply g edits with Patch.Error m -> reject Protocol.Bad_request "bad patch: %s" m
  in
  check_deadline ~now ~deadline;
  let a, saved, mode, region =
    match
      Trace.span "engine.delta.solve" (fun () -> Lcm_edge.analyze_incr g ~prev:saved0 ~dirty)
    with
    | Some (a, saved, region) ->
      Stats.bump cfg.m.Smetrics.delta_incremental;
      (a, saved, "incremental", region)
    | None ->
      Stats.bump cfg.m.Smetrics.delta_full;
      let a, saved = Lcm_edge.analyze_keep g in
      (a, saved, "full", Cfg.num_blocks g)
  in
  check_deadline ~now ~deadline;
  let g', _ = Transform.apply ~simplify:entry.Handles.simplify g (Lcm_edge.spec g a) in
  chaos_boundary ();
  (* validate: the incremental restart must land on the same program a
     from-scratch solve of the patched graph produces — bit-identical,
     checked by content digest. *)
  let full_visits =
    if d.Protocol.d_validate then begin
      let gv = Cfg.copy g in
      let av, _ = Trace.span "engine.delta.validate" (fun () -> Lcm_edge.analyze_keep gv) in
      let gv', _ = Transform.apply ~simplify:entry.Handles.simplify gv (Lcm_edge.spec gv av) in
      if not (String.equal (Cfg.digest g') (Cfg.digest gv')) then
        reject Protocol.Internal "incremental re-solve diverged from the from-scratch solve";
      Some av.Lcm_edge.visits
    end
    else None
  in
  check_deadline ~now ~deadline;
  entry.Handles.state <- (g, saved);
  (* Journal the accepted patch (the raw wire edits, replayed verbatim on
     recovery) before the acknowledging response is built.  [program] is
     the post-patch canonical text — the compaction snapshot, printed
     only on the appends that actually compact. *)
  (match cfg.journal with
  | None -> ()
  | Some j ->
    (match
       Hjournal.record_patch j ~handle:d.Protocol.d_handle ~edits:d.Protocol.d_edits_json
         ~algorithm:entry.Handles.algorithm ~simplify:entry.Handles.simplify
         ~program:(fun () -> Cfg.to_string g)
     with
    | Ok `Appended -> Stats.bump cfg.m.Smetrics.journal_appends
    | Ok `Compacted ->
      Stats.bump cfg.m.Smetrics.journal_appends;
      Stats.bump cfg.m.Smetrics.journal_compactions
    | Error _ -> Stats.bump cfg.m.Smetrics.journal_append_failures));
  (* The first response after a journal rebuild tells the client its
     handle crossed a crash: state is intact, latency may have spiked. *)
  let recovered_fields =
    if Hashtbl.mem cfg.recovered d.Protocol.d_handle then begin
      Hashtbl.remove cfg.recovered d.Protocol.d_handle;
      [ ("recovered", Json.Bool true) ]
    end
    else []
  in
  let before = Metrics.static_counts g and after = Metrics.static_counts g' in
  let solve =
    Json.Obj
      ([
         ("mode", Json.String mode);
         ("blocks", Json.Int (Cfg.num_blocks g));
         ("region_blocks", Json.Int region);
         ("visits", Json.Int a.Lcm_edge.visits);
       ]
      @ match full_visits with Some v -> [ ("full_visits", Json.Int v) ] | None -> [])
  in
  Protocol.ok_delta ~id ~trace_id ~algorithm:entry.Handles.algorithm
    ~validated:d.Protocol.d_validate
    ~extra:
      (worker_fields cfg
      @ [ ("handle", Json.String d.Protocol.d_handle); ("solve", solve) ]
      @ recovered_fields)
    ~program:(Cfg.to_string g') ~before ~after ~timing:(timing_of ()) ()

(* ---- crash recovery ----

   Replay one recovered journal: parse the base (or compacted snapshot)
   program, solve it with the keep path, then push every journaled patch
   through the exact pipeline a live delta takes — same wire-edit parser,
   same [Patch.apply], same incremental restart with the same full-solve
   fallback.  Determinism of that pipeline is what makes the journal a
   faithful substitute for the lost heap state: the rebuilt capture is
   bit-identical to the one the dead worker held (the qcheck suite and
   [d_validate] both assert this). *)

let replay_journal cfg (r : Hjournal.recovered) =
  try
    Fault.inject "journal.replay";
    let g =
      try Cfg_text.parse r.Hjournal.r_program
      with Cfg_text.Parse_error (m, line) -> failwith (Printf.sprintf "base parse: line %d: %s" line m)
    in
    let _, saved = Lcm_edge.analyze_keep g in
    let state = ref (g, saved) in
    let replayed = ref 0 in
    List.iter
      (fun edits_json ->
        let edits =
          match Protocol.delta_edits_of_json edits_json with
          | Ok es -> es
          | Error m -> failwith ("patch record: " ^ m)
        in
        let d =
          {
            Protocol.d_handle = r.Hjournal.r_handle;
            d_edits = edits;
            d_edits_json = edits_json;
            d_validate = false;
          }
        in
        let patch = edits_of_wire d in
        let g0, saved0 = !state in
        let g = Cfg.copy g0 in
        let dirty =
          try Patch.apply g patch with Patch.Error m -> failwith ("patch apply: " ^ m)
        in
        let saved =
          match Lcm_edge.analyze_incr g ~prev:saved0 ~dirty with
          | Some (_, saved, _) -> saved
          | None -> snd (Lcm_edge.analyze_keep g)
        in
        incr replayed;
        state := (g, saved))
      r.Hjournal.r_patches;
    let (`Evicted evicted) =
      Handles.restore cfg.handles r.Hjournal.r_handle
        {
          Handles.algorithm = r.Hjournal.r_algorithm;
          simplify = r.Hjournal.r_simplify;
          state = !state;
        }
    in
    Stats.bump cfg.m.Smetrics.handles_live;
    drop_evicted cfg evicted;
    Ok !replayed
  with
  | Failure m -> Error m
  | Reject (_, m) -> Error m
  | Fault.Injected p -> Error ("fault injected: " ^ p)
  | e -> Error (Printexc.to_string e)

let recover cfg =
  match cfg.journal with
  | None -> ()
  | Some j ->
    let entries, truncated, quarantined = Hjournal.recover j in
    if truncated > 0 then Stats.bump ~by:truncated cfg.m.Smetrics.journal_truncated;
    if quarantined > 0 then Stats.bump ~by:quarantined cfg.m.Smetrics.journal_quarantined;
    List.iter
      (fun (r : Hjournal.recovered) ->
        match replay_journal cfg r with
        | Ok patches ->
          Stats.bump cfg.m.Smetrics.journal_recovered;
          if patches > 0 then Stats.bump ~by:patches cfg.m.Smetrics.journal_replayed_patches;
          Hashtbl.replace cfg.recovered r.Hjournal.r_handle ()
        | Error _ ->
          (* An unreplayable journal must not block startup: set it aside
             and serve without that handle (its next delta gets
             [unknown_handle] and the client re-retains). *)
          Hjournal.quarantine j ~handle:r.Hjournal.r_handle;
          Stats.bump cfg.m.Smetrics.journal_quarantined)
      entries

(* Cancellable sleep: 1 ms slices with a deadline check between slices —
   the test/benchmark stand-in for a pathologically slow (or
   non-terminating) request. *)
let execute_sleep ~now ~deadline ~id ~trace_id duration_ms ~timing_of =
  let t0 = now () in
  let finish = t0 +. (duration_ms /. 1000.) in
  let rec go () =
    check_deadline ~now ~deadline;
    let remaining = finish -. now () in
    if remaining > 0. then begin
      Unix.sleepf (Float.min 0.001 remaining);
      go ()
    end
  in
  go ();
  Protocol.ok_sleep ~id ~trace_id ~slept_ms:((now () -. t0) *. 1000.) ~timing:(timing_of ()) ()

(* The stats snapshot, extended with the fault registry's counters when
   chaos is enabled — so a chaos run's injection counts are observable
   through the same `stats` op as everything else — and with the scratch
   footprint of this domain's parked arenas.  GC progress is folded into
   the gc.* counters right before snapshotting so the [stats] op is always
   fresh. *)
let stats_snapshot stats =
  Stats.record_gc stats;
  let base = Stats.snapshot stats in
  let chaos_fields =
    match Fault.counts () with
    | [] -> []
    | cs ->
      [
        ( "chaos",
          Json.Obj
            (List.map
               (fun (p, occ, fired) ->
                 (p, Json.Obj [ ("occurrences", Json.Int occ); ("fired", Json.Int fired) ]))
               cs) );
      ]
  in
  let arena_fields =
    [ ("arena", Json.Obj [ ("retained_words", Json.Int (Pool.Scratch.domain_retained_words ())) ]) ]
  in
  match base with
  | Json.Obj fields -> Json.Obj (fields @ chaos_fields @ arena_fields)
  | j -> j

(* [trace_id]: the caller (daemon) resolves the id so it can also name the
   per-trace file; direct callers may omit it, in which case the request's
   own id is used or a fresh one minted.  The whole execution runs under a
   ["request"] root span of that trace, so the pipeline's spans — recorded
   on whatever pool domain the work lands on — reassemble into one tree. *)
let execute cfg ~now ~arrival ~deadline ?trace_id (req : Protocol.request) =
  let id = req.Protocol.id in
  let trace_id =
    match (trace_id, req.Protocol.trace_id) with
    | Some t, _ -> t
    | None, Some t -> t
    | None, None -> Trace.mint_id ()
  in
  let start = now () in
  let queue_ms = Float.max 0. ((start -. arrival) *. 1000.) in
  let timing_of () =
    if cfg.no_timing then None
    else Some { Protocol.queue_ms; run_ms = (now () -. start) *. 1000. }
  in
  let fail code message =
    Smetrics.error cfg.m code;
    Protocol.error ~id ~trace_id ~code ~message ()
  in
  let frame =
    Trace.in_trace ~trace_id "request" (fun () ->
        try
          check_deadline ~now ~deadline;
          let frame =
            match req.Protocol.op with
            | Protocol.Run r when r.Protocol.retain ->
              execute_retain cfg ~now ~deadline ~id ~trace_id r ~timing_of
            | Protocol.Run r -> execute_run cfg ~now ~deadline ~id ~trace_id r ~timing_of
            | Protocol.Delta d -> execute_delta cfg ~now ~deadline ~id ~trace_id d ~timing_of
            | Protocol.Stats -> Protocol.ok_stats ~id ~trace_id ~stats:(stats_snapshot cfg.stats) ()
            | Protocol.Profile -> Protocol.ok_profile ~id ~trace_id ~profile:(Prof.to_json cfg.prof) ()
            | Protocol.Ping -> Protocol.ok_ping ~id ~trace_id ()
            | Protocol.Sleep d -> execute_sleep ~now ~deadline ~id ~trace_id d ~timing_of
          in
          Stats.bump cfg.m.Smetrics.responses_ok;
          frame
        with
        | Deadline -> fail Protocol.Deadline_exceeded "deadline exceeded during execution"
        | Reject (code, m) -> fail code m
        | Stack_overflow -> fail Protocol.Internal "stack overflow"
        | e -> fail Protocol.Internal ("request crashed: " ^ Printexc.to_string e))
  in
  let run_ms = (now () -. start) *. 1000. in
  Stats.observe cfg.m.Smetrics.queue_delay queue_ms;
  Stats.observe cfg.m.Smetrics.run run_ms;
  Stats.observe cfg.m.Smetrics.total (queue_ms +. run_ms);
  frame
