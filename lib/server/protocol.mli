(** The serving protocol: typed requests/responses over JSON-lines frames.

    See docs/PROTOCOL.md for the normative wire description.  Each frame
    is one JSON object.  Requests carry an [op] ([run], [stats], [ping],
    [sleep]), an optional client-chosen [id] (echoed verbatim in the
    response), and an optional relative [deadline_ms].  Responses carry
    [status] ["ok"] or ["error"]; errors have a stable [code] from
    {!error_code} plus a human-readable [message]. *)

type error_code =
  | Bad_request  (** missing/ill-typed field, unknown op or algorithm *)
  | Parse_error  (** the embedded program failed to lex/parse *)
  | Oversized  (** frame longer than the daemon's [--max-frame] *)
  | Overloaded  (** admission queue at its high-water mark *)
  | Deadline_exceeded  (** deadline hit before or between pipeline phases *)
  | Fuel_exhausted
      (** requested interpreter validation could not finish within its
          step budget on any sample input (distinct from a deadline: the
          *work* is unbounded, not the wall clock) *)
  | Unknown_handle
      (** a [delta] named a handle this worker does not hold — never
          issued, evicted, or (without [--state-dir]) lost with a crashed
          worker.  With a state dir, handles are journaled and rebuilt on
          respawn, so a crash alone no longer produces this code *)
  | Poisoned_request
      (** the request's processing coincided with a worker death twice;
          the router quarantines it instead of replaying it onto yet
          another worker (a deterministically crashing request would
          otherwise cycle the ring) *)
  | Shutting_down  (** daemon draining; no new work admitted *)
  | Unsupported_format
      (** the request's [format] names no registered frontend; the
          message lists the registered names *)
  | Internal  (** the request crashed; the daemon survives *)

val error_code_to_string : error_code -> string

type run_request = {
  program : string;
  format : string;
      (** a {!Lcm_frontend.Frontend} name ("miniimp", "cfg", "bril", …).
          When the request carries no [format] field the value is sniffed
          from the program text ("cfg " prefix → cfg, leading '{' → bril,
          otherwise miniimp), so pre-existing requests keep their exact
          historical behavior.  Unknown names are carried through verbatim
          and rejected by the engine with {!Unsupported_format}. *)
  func : string option;  (** function to pick when the format defines several *)
  algorithm : string;  (** a {!Lcm_eval.Registry} name *)
  simplify : bool;  (** merge straight-line blocks after the transformation *)
  workers : int;  (** requested intra-request parallelism; capped by the daemon pool *)
  validate : bool;
      (** verify the transformation before answering (placement check /
          interpreter comparison); the response carries [validated:true] *)
  retain : bool;
      (** keep the parsed graph and its solved fixpoints on the worker and
          mint a handle for later [delta] requests; the response carries
          [handle] and echoes the canonical (renumbered) program as
          [retained_program] — [delta] block names address that
          numbering *)
}

(** One edit of a retained graph, in {!Lcm_cfg.Cfg_text} line syntax.
    Exactly one of [d_block] (edit that block) or [d_add] (append a fresh
    block, whose name must be the graph's next label) is set. *)
type delta_edit = {
  d_block : string option;  (** canonical block name, e.g. ["B3"] *)
  d_add : bool;
  d_instrs : string list option;  (** replacement body, one instruction per string *)
  d_term : string option;  (** replacement terminator line *)
}

type delta_request = {
  d_handle : string;
  d_edits : delta_edit list;  (** applied in order; non-empty *)
  d_edits_json : Json.t;
      (** the raw [edits] value as received — journaled verbatim so
          crash-recovery replays the byte-identical patch through this
          same parser *)
  d_validate : bool;
      (** additionally run a from-scratch solve on the patched graph and
          assert the incremental result's digest is bit-identical; the
          response's [solve] object then also carries [full_visits] *)
}

type op =
  | Run of run_request
  | Delta of delta_request
      (** patch a retained graph and re-solve incrementally from the dirty
          frontier *)
  | Stats
  | Profile  (** per-phase time/allocation aggregates from the tracing layer *)
  | Ping
  | Sleep of float  (** milliseconds; testing/benchmark aid, cancellable at 1 ms grain *)

type request = {
  id : Json.t;  (** [Null] when the client sent none *)
  trace_id : string option;
      (** client-chosen trace correlation id; the server mints one when
          absent, and every response (including errors) echoes the one in
          effect.  A client that reuses its id across retries gets all the
          attempts recorded under one trace. *)
  op : op;
  deadline_ms : float option;
}

(** Parse one frame.  On error, the result carries the request [id] and
    [trace_id] when they could be recovered (so the error response still
    correlates). *)
val parse_request : string -> (request, Json.t * string option * error_code * string) result

(** Parse a journaled [edits] value (the same grammar as the [edits]
    field of a [delta] request).  Used by crash recovery to replay
    patch records through the identical code path. *)
val delta_edits_of_json : Json.t -> (delta_edit list, string) result

(** {2 Response frames} — each returns a complete single-line frame. *)

type timing = {
  queue_ms : float;  (** admission to start of execution *)
  run_ms : float;  (** execution proper *)
}

val ok_run :
  id:Json.t ->
  ?trace_id:string ->
  algorithm:string ->
  workers:int ->
  degraded:string option ->
  validated:bool ->
  ?extra:(string * Json.t) list ->
  program:string ->
  before:Lcm_eval.Metrics.static_counts ->
  after:Lcm_eval.Metrics.static_counts ->
  timing:timing option ->
  unit ->
  string
(** [degraded] names the tier actually served (["sequential"] or
    ["identity"]) when the engine fell back from the requested tier after
    a mid-pipeline fault; [None] (field absent) on the normal path.
    [extra] fields (serving metadata: [worker], [handle], [cache], …) are
    appended after the payload, before timing; default none, so existing
    frames are byte-identical.  [trace_id], on every builder below too, is
    the trace correlation id in effect (absent only when the server could
    not determine one). *)

(** Response to a [delta]: same payload shape as a run ([op] is
    ["delta"]); the engine puts the [solve] object — mode, region size,
    visit counts — in [extra]. *)
val ok_delta :
  id:Json.t ->
  ?trace_id:string ->
  algorithm:string ->
  validated:bool ->
  ?extra:(string * Json.t) list ->
  program:string ->
  before:Lcm_eval.Metrics.static_counts ->
  after:Lcm_eval.Metrics.static_counts ->
  timing:timing option ->
  unit ->
  string

val ok_stats : id:Json.t -> ?trace_id:string -> stats:Json.t -> unit -> string
val ok_profile : id:Json.t -> ?trace_id:string -> profile:Json.t -> unit -> string
val ok_ping : id:Json.t -> ?trace_id:string -> unit -> string
val ok_sleep : id:Json.t -> ?trace_id:string -> slept_ms:float -> timing:timing option -> unit -> string
val error : id:Json.t -> ?trace_id:string -> code:error_code -> message:string -> unit -> string
