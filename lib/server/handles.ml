type entry = {
  algorithm : string;
  simplify : bool;
  mutable state : Lcm_cfg.Cfg.t * Lcm_core.Lcm_edge.saved;
      (* graph + matching capture; always replaced together, in one write *)
}

type t = {
  worker : int;
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  order : string Queue.t;  (* insertion order; front = oldest *)
  mutable seq : int;
}

let create ~worker ~capacity =
  if capacity < 1 then invalid_arg "Handles.create: capacity < 1";
  { worker; capacity; tbl = Hashtbl.create 16; order = Queue.create (); seq = 0 }

let register t entry =
  let evicted = ref 0 in
  while Hashtbl.length t.tbl >= t.capacity do
    let oldest = Queue.pop t.order in
    if Hashtbl.mem t.tbl oldest then begin
      Hashtbl.remove t.tbl oldest;
      incr evicted
    end
  done;
  t.seq <- t.seq + 1;
  let h = Printf.sprintf "h%d-%d" t.worker t.seq in
  Hashtbl.replace t.tbl h entry;
  Queue.push h t.order;
  (h, `Evicted !evicted)

let find t h = Hashtbl.find_opt t.tbl h
let size t = Hashtbl.length t.tbl

let worker_of_handle h =
  if String.length h < 2 || h.[0] <> 'h' then None
  else
    match String.index_opt h '-' with
    | None -> None
    | Some i ->
      (match int_of_string_opt (String.sub h 1 (i - 1)) with
      | Some w when w >= 0 -> Some w
      | _ -> None)
