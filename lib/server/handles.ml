type entry = {
  algorithm : string;
  simplify : bool;
  mutable state : Lcm_cfg.Cfg.t * Lcm_core.Lcm_edge.saved;
      (* graph + matching capture; always replaced together, in one write *)
}

type t = {
  worker : int;
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  order : string Queue.t;  (* insertion order; front = oldest *)
  mutable seq : int;
}

let create ~worker ~capacity =
  if capacity < 1 then invalid_arg "Handles.create: capacity < 1";
  { worker; capacity; tbl = Hashtbl.create 16; order = Queue.create (); seq = 0 }

let evict_to_capacity t ~headroom =
  let evicted = ref [] in
  while Hashtbl.length t.tbl > t.capacity - headroom do
    let oldest = Queue.pop t.order in
    if Hashtbl.mem t.tbl oldest then begin
      Hashtbl.remove t.tbl oldest;
      evicted := oldest :: !evicted
    end
  done;
  List.rev !evicted

let register t entry =
  let evicted = evict_to_capacity t ~headroom:1 in
  t.seq <- t.seq + 1;
  let h = Printf.sprintf "h%d-%d" t.worker t.seq in
  Hashtbl.replace t.tbl h entry;
  Queue.push h t.order;
  (h, `Evicted evicted)

let worker_of_handle h =
  if String.length h < 2 || h.[0] <> 'h' then None
  else
    match String.index_opt h '-' with
    | None -> None
    | Some i ->
      (match int_of_string_opt (String.sub h 1 (i - 1)) with
      | Some w when w >= 0 -> Some w
      | _ -> None)

let seq_of_handle h =
  match String.index_opt h '-' with
  | Some i when String.length h >= 2 && h.[0] = 'h' ->
    (match int_of_string_opt (String.sub h (i + 1) (String.length h - i - 1)) with
    | Some s when s >= 0 -> Some s
    | _ -> None)
  | _ -> None

let restore t h entry =
  if Hashtbl.mem t.tbl h then invalid_arg "Handles.restore: handle already live";
  let evicted = evict_to_capacity t ~headroom:1 in
  (match seq_of_handle h with
  | Some s -> t.seq <- max t.seq s
  | None -> invalid_arg "Handles.restore: malformed handle name");
  Hashtbl.replace t.tbl h entry;
  Queue.push h t.order;
  `Evicted evicted

let find t h = Hashtbl.find_opt t.tbl h
let size t = Hashtbl.length t.tbl
