(** The serving layer's metrics, as typed {!Stats} handles.

    Every counter and histogram the engine, daemon and supervisor touch is
    declared here exactly once; call sites hold a handle, never a raw name
    string, so an instrument cannot be split across misspelled keys (a
    test greps for stray [Stats.incr]/[Stats.observe_ms] in the serving
    code).  Wire names are unchanged from previous releases — dashboards
    and the stats snapshot see the same keys. *)

type t = {
  frames_total : Stats.counter;
  requests_total : Stats.counter;
  responses_ok : Stats.counter;
  errors_total : Stats.counter;
  rejected_overloaded : Stats.counter;
  rejected_oversized : Stats.counter;
  batches_total : Stats.counter;
  dispatch_failures : Stats.counter;  (** wire name [dispatch_failures_total] *)
  accept_failures : Stats.counter;  (** wire name [accept_failures_total] *)
  connections_total : Stats.counter;
  tier_fallbacks : Stats.counter;  (** wire name [engine.tier_fallbacks] *)
  arena_checkouts : Stats.counter;  (** wire name [arena.checkouts_total] *)
  arena_misses : Stats.counter;
      (** wire name [arena.misses_total]: scratch checkouts that had to
          heap-allocate; stops growing once the shape classes are warm *)
  alloc_words : Stats.counter;
      (** wire name [engine.alloc_words_total]: minor-heap words allocated
          while executing run requests (per-request GC deltas, summed) *)
  degraded_total : Stats.counter;
  validated_total : Stats.counter;
  restarts_total : Stats.counter;  (** wire name [supervisor.restarts_total] *)
  restarts_signal : Stats.counter;  (** wire name [supervisor.restarts.signal] *)
  restarts_exit : Stats.counter;  (** wire name [supervisor.restarts.exit] *)
  queue_delay : Stats.histo;
  run : Stats.histo;
  total : Stats.histo;
  batch_size : Stats.histo;
  error_by_code : Protocol.error_code -> Stats.counter;  (** wire name [errors.<code>] *)
  degraded_tier : string -> Stats.counter;  (** wire name [degraded.<tier>] *)
}

val create : Stats.t -> t

(** Bump [errors_total] and the per-code counter together (they are always
    incremented in lockstep). *)
val error : t -> Protocol.error_code -> unit
