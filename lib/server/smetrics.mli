(** The serving layer's metrics, as typed {!Stats} handles.

    Every counter and histogram the engine, daemon and supervisor touch is
    declared here exactly once; call sites hold a handle, never a raw name
    string, so an instrument cannot be split across misspelled keys (a
    test greps for stray [Stats.incr]/[Stats.observe_ms] in the serving
    code).  Wire names are unchanged from previous releases — dashboards
    and the stats snapshot see the same keys. *)

type t = {
  frames_total : Stats.counter;
  requests_total : Stats.counter;
  responses_ok : Stats.counter;
  errors_total : Stats.counter;
  rejected_overloaded : Stats.counter;
  rejected_oversized : Stats.counter;
  batches_total : Stats.counter;
  dispatch_failures : Stats.counter;  (** wire name [dispatch_failures_total] *)
  accept_failures : Stats.counter;  (** wire name [accept_failures_total] *)
  connections_total : Stats.counter;
  tier_fallbacks : Stats.counter;  (** wire name [engine.tier_fallbacks] *)
  arena_checkouts : Stats.counter;  (** wire name [arena.checkouts_total] *)
  arena_misses : Stats.counter;
      (** wire name [arena.misses_total]: scratch checkouts that had to
          heap-allocate; stops growing once the shape classes are warm *)
  alloc_words : Stats.counter;
      (** wire name [engine.alloc_words_total]: minor-heap words allocated
          while executing run requests (per-request GC deltas, summed) *)
  degraded_total : Stats.counter;
  validated_total : Stats.counter;
  restarts_total : Stats.counter;  (** wire name [supervisor.restarts_total] *)
  restarts_signal : Stats.counter;  (** wire name [supervisor.restarts.signal] *)
  restarts_exit : Stats.counter;  (** wire name [supervisor.restarts.exit] *)
  deltas_total : Stats.counter;
  delta_incremental : Stats.counter;
      (** wire name [delta.incremental_total]: deltas served from the
          retained fixpoint (region re-solve) *)
  delta_full : Stats.counter;
      (** wire name [delta.full_total]: deltas that fell back to a
          from-scratch solve (candidate pool changed) *)
  handles_live : Stats.counter;  (** wire name [handles.registered_total] *)
  handles_evicted : Stats.counter;  (** wire name [handles.evicted_total] *)
  cache_hits : Stats.counter;
      (** wire name [cache.hits_total]: run responses served from the
          router's content-addressed cache, no worker involved *)
  cache_misses : Stats.counter;  (** wire name [cache.misses_total] *)
  cache_evictions : Stats.counter;  (** wire name [cache.evictions_total] *)
  digest_memo_hits : Stats.counter;
      (** wire name [shard.digest_memo_hits_total]: run requests whose
          canonical digest was recalled from the router's raw-text memo,
          skipping the canonicalizing reparse *)
  shard_retries : Stats.counter;
      (** wire name [shard.retries_total]: requests replayed on a sibling
          after their worker died mid-request *)
  shard_restarts : Stats.counter;  (** wire name [shard.worker_restarts_total] *)
  shard_replays : Stats.counter;
      (** wire name [shard.replays_total]: every in-flight frame replayed
          after a worker death — onto a ring sibling (runs) or back onto
          the recovering worker (journaled deltas) *)
  shard_poisoned : Stats.counter;
      (** wire name [shard.poisoned_total]: requests quarantined with
          [poisoned_request] after coinciding with two worker deaths *)
  shard_held : Stats.counter;
      (** wire name [shard.held_frames_total]: deltas parked at the router
          while their worker's handles are being rebuilt from journal *)
  cache_corrupt : Stats.counter;
      (** wire name [shard.cache_corrupt_total]: LRU hits whose payload
          failed the integrity check and fell through to a solve *)
  journal_appends : Stats.counter;  (** wire name [journal.appends_total] *)
  journal_append_failures : Stats.counter;
      (** wire name [journal.append_failures_total]: records that could
          not be made durable; serving continues, durability degrades *)
  journal_compactions : Stats.counter;  (** wire name [journal.compactions_total] *)
  journal_recovered : Stats.counter;
      (** wire name [journal.recovered_handles_total]: handles rebuilt
          from journal on respawn *)
  journal_replayed_patches : Stats.counter;  (** wire name [journal.replayed_patches_total] *)
  journal_truncated : Stats.counter;
      (** wire name [journal.truncated_tails_total]: torn tails cut off
          journal files during recovery *)
  journal_quarantined : Stats.counter;
      (** wire name [journal.quarantined_total]: journals set aside as
          [*.corrupt] because they could not be read or replayed *)
  queue_delay : Stats.histo;
  run : Stats.histo;
  total : Stats.histo;
  batch_size : Stats.histo;
  error_by_code : Protocol.error_code -> Stats.counter;  (** wire name [errors.<code>] *)
  degraded_tier : string -> Stats.counter;  (** wire name [degraded.<tier>] *)
  format_requests : string -> Stats.counter;
      (** wire name [requests.format.<frontend>]; pre-registered for every
          {!Lcm_frontend.Frontend.names} entry *)
  shard_routed : int -> Stats.counter;
      (** wire name [shard.routed.w<i>]: requests the router forwarded to
          worker [i] (cache hits are counted under [cache.hits_total],
          not here) *)
}

val create : Stats.t -> t

(** Bump [errors_total] and the per-code counter together (they are always
    incremented in lockstep). *)
val error : t -> Protocol.error_code -> unit
