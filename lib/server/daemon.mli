(** The serving daemon: optimization-as-a-service over JSON-lines frames.

    One single-threaded event loop owns all I/O (accept, frame reassembly,
    response writes); compute is batched onto one {!Lcm_support.Pool} of
    domains shared by the whole daemon.  The loop alternates between

    - {b admission}: read whatever bytes are available, cut them into
      frames, parse requests, and either enqueue them on a bounded
      {!Bqueue} or answer immediately ([stats]/[ping] bypass the queue;
      beyond the high-water mark, work is rejected with [overloaded];
      frames over [max_frame] with [oversized]; malformed frames with
      [bad_request] — all without disturbing the connection), and
    - {b dispatch}: pop up to [batch_max] queued requests and run them as
      one pool batch; responses are buffered per connection and flushed
      as sockets accept them.

    Deadlines are assigned at admission ([deadline_ms] of the request, or
    the config default) and enforced cooperatively by {!Engine}.  A batch
    in flight is never interrupted: {!request_shutdown} (the SIGTERM
    handler's entry point) makes the loop stop admitting, finish the
    queue, flush every response, dump the {!Stats} registry, and return —
    the graceful drain.  In fd mode, end-of-input triggers the same drain.

    Nothing here calls [exit] and no exception from request work escapes:
    the daemon only returns when it has drained. *)

type config = {
  queue_capacity : int;  (** admission high-water mark (default 256) *)
  batch_max : int;  (** max requests dispatched as one pool batch (default 32) *)
  max_frame : int;  (** frame size ceiling in bytes (default 1 MiB) *)
  default_deadline_ms : float option;  (** applied when a request carries none (default: none) *)
  workers : int;  (** size of the daemon's domain pool (default {!Lcm_support.Pool.default_size}) *)
  no_timing : bool;  (** omit timing fields from responses (golden tests) *)
  quiet : bool;  (** suppress stderr logging and the shutdown stats dump *)
  stats : Stats.t;
  hard_faults : bool;
      (** permit process-killing chaos points ([daemon.crash]); off by
          default so an in-process daemon can never take its host down.
          Only the supervised [lcmopt serve] binary turns this on. *)
  state_file : string option;
      (** when set, the {!Stats} registry is restored from this file at
          startup, saved every second while serving, and saved on drain —
          metrics survive supervised restarts, including [kill -9]. *)
  state_dir : string option;
      (** when set, every retained handle is backed by a write-ahead
          journal in this directory ({!Hjournal}) and rebuilt under its
          original id at startup ({!Engine.recover}) before the first
          frame is processed — retained handles survive [kill -9].  An
          unusable directory disables journaling with a stderr warning
          rather than preventing startup. *)
  journal_compact : int;
      (** patches appended to one handle's journal before it is
          compacted to a single snapshot record (default 64); bounds
          recovery time per handle *)
  trace_dir : string option;
      (** when set, {!Lcm_obs.Trace} collection is enabled and every
          request's span tree is appended to
          [<dir>/<trace_id>.trace.json] (Chrome [trace_event] format,
          append-only: retries and post-restart incarnations that reuse a
          client trace id land in the same file).  Frame I/O spans go to
          [daemon.trace.json].  Off (and tracing fully disabled) by
          default. *)
  worker_id : int option;
      (** shard worker index, set by the router when it forks this daemon:
          stamped into run/delta responses (["worker"] field) and into the
          handle names this worker mints ([h<worker>-<seq>]) *)
}

val default_config : unit -> config

(** Ask every running daemon loop in this process to drain and return.
    Async-signal-safe: only sets an atomic flag.  The flag is cleared when
    a loop exits, so daemons can be run one after another in-process. *)
val request_shutdown : unit -> unit

(** [serve_fds config ~fd_in ~fd_out] serves one pre-connected peer (the
    [--stdio] mode: [fd_in]/[fd_out] are stdin/stdout).  Returns after
    end-of-input or {!request_shutdown}, having drained.  The fds are not
    closed. *)
val serve_fds : config -> fd_in:Unix.file_descr -> fd_out:Unix.file_descr -> unit

(** [serve_unix_socket config ~path] binds a Unix-domain stream socket at
    [path] (replacing any stale socket file), accepts any number of
    concurrent connections, and serves until {!request_shutdown}.  The
    socket file is unlinked on return. *)
val serve_unix_socket : config -> path:string -> unit
