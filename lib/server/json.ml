(* The JSON codec moved to [lib/obs] (the tracing exporters need it below
   the server layer); this alias keeps [Lcm_server.Json] working for every
   existing user of the protocol. *)
include Lcm_obs.Json
