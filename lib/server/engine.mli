(** Request execution: one protocol request through the LCM pipeline.

    The engine is where the subsystem's three per-request guarantees live:

    - {b deadlines}: a request's absolute deadline is checked before it
      starts and between pipeline phases (program parse → analysis +
      transformation → simplify → metrics + print; [sleep] checks at a
      1 ms grain), so an expired request turns into a structured
      [deadline_exceeded] error at the next phase boundary instead of
      occupying a domain indefinitely;
    - {b panic isolation}: any exception escaping the pipeline becomes an
      [internal] error response — a crashing request never kills the
      daemon;
    - {b per-request parallelism}: a [workers > 1] request runs the
      paper-algorithm transforms with the daemon's shared pool
      ([Lcm_edge.transform ~workers] / [Bcm_edge.transform ~workers]),
      capped at the pool's size; other algorithms have no parallel path
      and report [workers = 1].

    [execute] never raises. *)

type config = {
  lookup : string -> Lcm_eval.Registry.entry option;  (** algorithm resolver (injectable for tests) *)
  pool : Lcm_support.Pool.t option;  (** the daemon-wide domain pool *)
  stats : Stats.t;
  no_timing : bool;  (** omit timing fields from responses (golden tests) *)
}

val default_config : ?pool:Lcm_support.Pool.t -> ?no_timing:bool -> Stats.t -> config

(** [execute cfg ~now ~arrival ~deadline req] runs [req] and returns the
    response frame.  [arrival] is the admission timestamp (for the queue
    delay metric); [deadline] is absolute, on [now]'s clock. *)
val execute :
  config -> now:(unit -> float) -> arrival:float -> deadline:float option -> Protocol.request -> string
