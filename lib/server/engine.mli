(** Request execution: one protocol request through the LCM pipeline.

    The engine is where the subsystem's three per-request guarantees live:

    - {b deadlines}: a request's absolute deadline is checked before it
      starts and between pipeline phases (program parse → analysis +
      transformation → simplify → metrics + print; [sleep] checks at a
      1 ms grain), so an expired request turns into a structured
      [deadline_exceeded] error at the next phase boundary instead of
      occupying a domain indefinitely;
    - {b panic isolation}: any exception escaping the pipeline becomes an
      [internal] error response — a crashing request never kills the
      daemon;
    - {b per-request parallelism}: a [workers > 1] request runs a
      [parallelizable] registry entry's pipeline with the daemon's shared
      pool in its pass context, capped at the pool's size; other entries
      have no parallel path and report [workers = 1].

    Every transformation goes through the entry's
    {!Lcm_eval.Registry.entry.pipeline} ({!Lcm_core.Pass.Pipeline.run}),
    so the engine needs no per-algorithm cases and each request's work is
    recorded as a pass-span tree under its ["request"] root span.

    [execute] never raises. *)

type config = {
  lookup : string -> Lcm_eval.Registry.entry option;  (** algorithm resolver (injectable for tests) *)
  pool : Lcm_support.Pool.t option;  (** the daemon-wide domain pool *)
  stats : Stats.t;
  m : Smetrics.t;  (** typed handles over [stats] *)
  prof : Lcm_obs.Prof.t;  (** per-phase aggregates, served by the [profile] op *)
  no_timing : bool;  (** omit timing fields from responses (golden tests) *)
  worker_id : int option;
      (** shard worker index; when set, run/delta responses carry a
          ["worker"] field so clients see who served them *)
  handles : Handles.t;  (** retained graphs for the [delta] op *)
  journal : Hjournal.t option;
      (** when set ([--state-dir]), every retain/delta is journaled
          before its response is sent, and {!recover} can rebuild the
          handle table after a crash *)
  recovered : (string, unit) Hashtbl.t;
      (** handles rebuilt by {!recover} whose next delta response must
          carry [recovered:true] (cleared per handle once told) *)
}

val default_config :
  ?pool:Lcm_support.Pool.t ->
  ?no_timing:bool ->
  ?worker_id:int ->
  ?handle_capacity:int ->
  ?journal:Hjournal.t ->
  Stats.t ->
  config

(** Rebuild the handle table from [config.journal]'s directory: each
    journal's base program is re-solved and its patch log replayed
    through the same parse/patch/incremental-restart pipeline live
    deltas take, restoring every handle under its original id.  Journals
    that cannot be replayed are quarantined ([*.corrupt]) — recovery
    never prevents startup.  Call before serving traffic; no-op without
    a journal. *)
val recover : config -> unit

(** [execute cfg ~now ~arrival ~deadline req] runs [req] and returns the
    response frame.  [arrival] is the admission timestamp (for the queue
    delay metric); [deadline] is absolute, on [now]'s clock.  [trace_id]
    overrides the trace the request records under (the daemon resolves one
    id per request so the per-trace file and the response agree); when
    omitted, the request's own [trace_id] is used, or a fresh one minted. *)
val execute :
  config ->
  now:(unit -> float) ->
  arrival:float ->
  deadline:float option ->
  ?trace_id:string ->
  Protocol.request ->
  string
