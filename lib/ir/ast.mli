(** Abstract syntax of MiniImp, the small imperative surface language.

    MiniImp exists so that workloads for the optimizer can be written (and
    randomly generated) as readable programs; lowering flattens its nested
    expressions into the [v := e] instruction form the paper assumes. *)

type expr =
  | Int of int
  | Var of string
  | Unary of Expr.unop * expr
  | Binary of Expr.binop * expr * expr

type stmt =
  | Assign of string * expr
  | If of expr * stmt list * stmt list  (** [else] branch may be empty *)
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | Print of expr
  | Return of expr

type func = {
  name : string;
  params : string list;
  body : stmt list;
}

type program = func list

(** Variables read anywhere in an expression. *)
val expr_vars : expr -> string list

(** Free variables of a statement list: variables possibly read before being
    assigned in the list itself (approximate, syntactic). *)
val stmt_vars : stmt list -> string list

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_func : Format.formatter -> func -> unit
val pp_program : Format.formatter -> program -> unit
val to_string : program -> string
