type token =
  | INT of int
  | IDENT of string
  | KW_FUNCTION
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_PRINT
  | KW_RETURN
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | BANG
  | EOF

type spanned = { token : token; line : int; col : int }

exception Lex_error of string * int * int

let keyword = function
  | "function" -> Some KW_FUNCTION
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "do" -> Some KW_DO
  | "print" -> Some KW_PRINT
  | "return" -> Some KW_RETURN
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let acc = ref [] in
  let emit tok l c = acc := { token = tok; line = l; col = c } :: !acc in
  let i = ref 0 in
  let advance () =
    if src.[!i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr i
  in
  while !i < n do
    let c = src.[!i] in
    let l0 = !line and c0 = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      let text = String.sub src start (!i - start) in
      match int_of_string_opt text with
      | Some v -> emit (INT v) l0 c0
      | None -> raise (Lex_error (Printf.sprintf "integer literal %s too large" text, l0, c0))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let text = String.sub src start (!i - start) in
      match keyword text with
      | Some kw -> emit kw l0 c0
      | None -> emit (IDENT text) l0 c0
    end
    else begin
      let two tok = advance (); advance (); emit tok l0 c0 in
      let one tok = advance (); emit tok l0 c0 in
      let peek2 ch = !i + 1 < n && src.[!i + 1] = ch in
      match c with
      | '(' -> one LPAREN
      | ')' -> one RPAREN
      | '{' -> one LBRACE
      | '}' -> one RBRACE
      | ',' -> one COMMA
      | ';' -> one SEMI
      | '+' -> one PLUS
      | '-' -> one MINUS
      | '*' -> one STAR
      | '/' -> one SLASH
      | '%' -> one PERCENT
      | '<' -> if peek2 '=' then two LE else one LT
      | '>' -> if peek2 '=' then two GE else one GT
      | '=' -> if peek2 '=' then two EQ else one ASSIGN
      | '!' -> if peek2 '=' then two NE else one BANG
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, l0, c0))
    end
  done;
  emit EOF !line !col;
  List.rev !acc

let pp_token ppf tok =
  let s =
    match tok with
    | INT n -> string_of_int n
    | IDENT s -> s
    | KW_FUNCTION -> "function"
    | KW_IF -> "if"
    | KW_ELSE -> "else"
    | KW_WHILE -> "while"
    | KW_DO -> "do"
    | KW_PRINT -> "print"
    | KW_RETURN -> "return"
    | LPAREN -> "("
    | RPAREN -> ")"
    | LBRACE -> "{"
    | RBRACE -> "}"
    | COMMA -> ","
    | SEMI -> ";"
    | ASSIGN -> "="
    | PLUS -> "+"
    | MINUS -> "-"
    | STAR -> "*"
    | SLASH -> "/"
    | PERCENT -> "%"
    | LT -> "<"
    | LE -> "<="
    | GT -> ">"
    | GE -> ">="
    | EQ -> "=="
    | NE -> "!="
    | BANG -> "!"
    | EOF -> "<eof>"
  in
  Format.pp_print_string ppf s
