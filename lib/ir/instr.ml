type effect_ = {
  eff_op : string;
  eff_dest : (string * string) option;
  eff_args : Expr.operand list;
  eff_funcs : string list;
}

type t =
  | Assign of string * Expr.t
  | Print of Expr.operand
  | Effect of effect_

let defs = function
  | Assign (v, _) -> Some v
  | Print _ -> None
  | Effect e -> Option.map fst e.eff_dest

let operand_vars args =
  List.filter_map (function Expr.Var v -> Some v | Expr.Const _ -> None) args

let uses = function
  | Assign (_, e) -> Expr.vars e
  | Print a -> (match a with Expr.Var v -> [ v ] | Expr.Const _ -> [])
  | Effect e -> operand_vars e.eff_args

let candidate = function
  | Assign (_, e) when Expr.is_candidate e -> Some (Expr.canonical e)
  | Assign _ | Print _ | Effect _ -> None

let kills i =
  match i with
  | Assign _ | Print _ -> ( match defs i with Some v -> [ v ] | None -> [])
  | Effect e ->
    (* An opaque effect may clobber anything it touches: its destination and,
       conservatively, every variable it reads (a call or store may alias).
       Over-killing is sound for the analyses — it only suppresses motion. *)
    let vs = (match defs i with Some v -> [ v ] | None -> []) @ operand_vars e.eff_args in
    List.sort_uniq String.compare vs

let modifies i v =
  match defs i with
  | Some w -> String.equal v w
  | None -> false

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | Assign (v, e) -> Format.fprintf ppf "%s := %a" v Expr.pp e
  | Print a -> Format.fprintf ppf "print %a" Expr.pp_operand a
  | Effect e ->
    Format.fprintf ppf "do %s" e.eff_op;
    List.iter (fun f -> Format.fprintf ppf " @%s" f) e.eff_funcs;
    List.iter (fun a -> Format.fprintf ppf " %a" Expr.pp_operand a) e.eff_args;
    (match e.eff_dest with
     | Some (v, ty) -> Format.fprintf ppf " -> %s %s" v ty
     | None -> ())

let to_string i = Format.asprintf "%a" pp i
