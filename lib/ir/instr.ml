type t =
  | Assign of string * Expr.t
  | Print of Expr.operand

let defs = function
  | Assign (v, _) -> Some v
  | Print _ -> None

let uses = function
  | Assign (_, e) -> Expr.vars e
  | Print a -> (match a with Expr.Var v -> [ v ] | Expr.Const _ -> [])

let candidate = function
  | Assign (_, e) when Expr.is_candidate e -> Some (Expr.canonical e)
  | Assign _ | Print _ -> None

let modifies i v =
  match defs i with
  | Some w -> String.equal v w
  | None -> false

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | Assign (v, e) -> Format.fprintf ppf "%s := %a" v Expr.pp e
  | Print a -> Format.fprintf ppf "print %a" Expr.pp_operand a

let to_string i = Format.asprintf "%a" pp i
