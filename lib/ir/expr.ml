type operand =
  | Var of string
  | Const of int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type unop =
  | Neg
  | Not

type t =
  | Atom of operand
  | Unary of unop * operand
  | Binary of binop * operand * operand

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (e : t) = Hashtbl.hash e

let operand_vars = function
  | Var v -> [ v ]
  | Const _ -> []

let vars = function
  | Atom a -> operand_vars a
  | Unary (_, a) -> operand_vars a
  | Binary (_, a, b) -> operand_vars a @ operand_vars b

let operand_reads a v =
  match a with
  | Var w -> String.equal v w
  | Const _ -> false

let reads_var e v =
  match e with
  | Atom a -> operand_reads a v
  | Unary (_, a) -> operand_reads a v
  | Binary (_, a, b) -> operand_reads a v || operand_reads b v

let is_candidate = function
  | Atom _ -> false
  | Unary _ | Binary _ -> true

let is_commutative = function
  | Add | Mul | Eq | Ne | And | Or -> true
  | Sub | Div | Mod | Lt | Le | Gt | Ge -> false

let canonical e =
  match e with
  | Binary (op, a, b) when is_commutative op && Stdlib.compare a b > 0 -> Binary (op, b, a)
  | Atom _ | Unary _ | Binary _ -> e

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Mod -> if b = 0 then 0 else a mod b
  | Lt -> if a < b then 1 else 0
  | Le -> if a <= b then 1 else 0
  | Gt -> if a > b then 1 else 0
  | Ge -> if a >= b then 1 else 0
  | Eq -> if a = b then 1 else 0
  | Ne -> if a <> b then 1 else 0
  | And -> if a <> 0 && b <> 0 then 1 else 0
  | Or -> if a <> 0 || b <> 0 then 1 else 0

let eval_unop op a =
  match op with
  | Neg -> -a
  | Not -> if a = 0 then 1 else 0

let pp_operand ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Const n -> Format.pp_print_int ppf n

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

let pp_binop ppf op = Format.pp_print_string ppf (binop_symbol op)

let pp_unop ppf = function
  | Neg -> Format.pp_print_string ppf "-"
  | Not -> Format.pp_print_string ppf "!"

let pp ppf = function
  | Atom a -> pp_operand ppf a
  | Unary (op, a) -> Format.fprintf ppf "%a%a" pp_unop op pp_operand a
  | Binary (op, a, b) -> Format.fprintf ppf "%a %s %a" pp_operand a (binop_symbol op) pp_operand b

let to_string e = Format.asprintf "%a" pp e
