type expr =
  | Int of int
  | Var of string
  | Unary of Expr.unop * expr
  | Binary of Expr.binop * expr * expr

type stmt =
  | Assign of string * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_while of stmt list * expr
  | Print of expr
  | Return of expr

type func = {
  name : string;
  params : string list;
  body : stmt list;
}

type program = func list

let rec expr_vars = function
  | Int _ -> []
  | Var v -> [ v ]
  | Unary (_, e) -> expr_vars e
  | Binary (_, a, b) -> expr_vars a @ expr_vars b

let rec stmt_list_vars stmts = List.concat_map stmt_vars_one stmts

and stmt_vars_one = function
  | Assign (_, e) -> expr_vars e
  | If (c, t, f) -> expr_vars c @ stmt_list_vars t @ stmt_list_vars f
  | While (c, b) -> expr_vars c @ stmt_list_vars b
  | Do_while (b, c) -> stmt_list_vars b @ expr_vars c
  | Print e -> expr_vars e
  | Return e -> expr_vars e

let stmt_vars stmts = List.sort_uniq String.compare (stmt_list_vars stmts)

(* Precedence levels used to parenthesize only where needed: comparisons
   bind loosest, then additive, then multiplicative, then unary. *)
let binop_level = function
  | Expr.And | Expr.Or -> 0
  | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.Eq | Expr.Ne -> 1
  | Expr.Add | Expr.Sub -> 2
  | Expr.Mul | Expr.Div | Expr.Mod -> 3

let rec pp_expr_level level ppf = function
  | Int n -> if n < 0 then Format.fprintf ppf "(%d)" n else Format.pp_print_int ppf n
  | Var v -> Format.pp_print_string ppf v
  | Unary (op, e) -> Format.fprintf ppf "%a%a" Expr.pp_unop op (pp_expr_level 4) e
  | Binary (op, a, b) ->
    let mine = binop_level op in
    let body ppf () =
      Format.fprintf ppf "%a %a %a" (pp_expr_level mine) a Expr.pp_binop op (pp_expr_level (mine + 1)) b
    in
    if mine < level then Format.fprintf ppf "(%a)" body () else body ppf ()

let pp_expr ppf e = pp_expr_level 0 ppf e

let rec pp_stmt_indented indent ppf stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Assign (v, e) -> Format.fprintf ppf "%s%s = %a;" pad v pp_expr e
  | Print e -> Format.fprintf ppf "%sprint %a;" pad pp_expr e
  | Return e -> Format.fprintf ppf "%sreturn %a;" pad pp_expr e
  | If (c, t, []) ->
    Format.fprintf ppf "%sif (%a) {@\n%a@\n%s}" pad pp_expr c (pp_block (indent + 2)) t pad
  | If (c, t, f) ->
    Format.fprintf ppf "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad pp_expr c (pp_block (indent + 2)) t
      pad
      (pp_block (indent + 2))
      f pad
  | While (c, b) ->
    Format.fprintf ppf "%swhile (%a) {@\n%a@\n%s}" pad pp_expr c (pp_block (indent + 2)) b pad
  | Do_while (b, c) ->
    Format.fprintf ppf "%sdo {@\n%a@\n%s} while (%a);" pad (pp_block (indent + 2)) b pad pp_expr c

and pp_block indent ppf stmts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@\n")
    (pp_stmt_indented indent) ppf stmts

let pp_stmt ppf stmt = pp_stmt_indented 0 ppf stmt

let pp_func ppf f =
  Format.fprintf ppf "function %s(%s) {@\n%a@\n}" f.name (String.concat ", " f.params) (pp_block 2)
    f.body

let pp_program ppf funcs =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@\n@\n") pp_func ppf funcs

let to_string p = Format.asprintf "%a" pp_program p
