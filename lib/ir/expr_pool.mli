(** Dense numbering of the PRE-candidate expressions of a function.

    Bit-vector data-flow solves all expressions at once; the pool assigns
    each distinct candidate expression (after commutative canonicalization)
    a stable index in [\[0, size)], which is the bit position used by every
    analysis in this library. *)

type t

val create : unit -> t

(** [add pool e] registers candidate expression [e] (canonicalized) and
    returns its index; registering an equal expression again returns the
    same index.  Raises [Invalid_argument] on non-candidates (atoms). *)
val add : t -> Expr.t -> int

(** [index pool e] is the index of [e] if registered. *)
val index : t -> Expr.t -> int option

(** As {!index} but raises [Not_found]: no option allocation, for
    per-instruction lookups on the serving hot path. *)
val index_exn : t -> Expr.t -> int

(** [expr pool i] is the expression with index [i]. *)
val expr : t -> int -> Expr.t

(** Number of registered expressions. *)
val size : t -> int

(** [iter f pool] applies [f index expr] for every registered expression in
    index order. *)
val iter : (int -> Expr.t -> unit) -> t -> unit

(** All registered expressions in index order. *)
val to_list : t -> (int * Expr.t) list

(** Indices of expressions that read variable [v], ascending.  Memoized per
    variable (the cache is invalidated when the pool grows), so repeated
    queries — one per definition during local-predicate computation — are
    O(1) after the first. *)
val reading : t -> string -> int list
