type t = {
  table : (Expr.t, int) Hashtbl.t;
  mutable exprs : Expr.t array;
  mutable size : int;
  (* var → indices of expressions reading it, memoized per pool size: the
     local-predicate scan asks for the same few variables once per
     definition, which made the uncached O(size) scan the hottest spot of
     the whole analysis on large graphs. *)
  reading_cache : (string, int list) Hashtbl.t;
  mutable reading_cache_size : int;
  (* Guards the lazily-filled [reading_cache] only: analyses sharing a pool
     may query [reading] from several domains at once.  [add] still
     requires external ordering — pools are built single-domain, before any
     fan-out. *)
  reading_lock : Mutex.t;
}

let create () =
  {
    table = Hashtbl.create 64;
    exprs = Array.make 16 (Expr.Atom (Expr.Const 0));
    size = 0;
    reading_cache = Hashtbl.create 16;
    reading_cache_size = 0;
    reading_lock = Mutex.create ();
  }

let grow pool =
  if pool.size = Array.length pool.exprs then begin
    let bigger = Array.make (2 * Array.length pool.exprs) pool.exprs.(0) in
    Array.blit pool.exprs 0 bigger 0 pool.size;
    pool.exprs <- bigger
  end

let add pool e =
  if not (Expr.is_candidate e) then
    invalid_arg (Printf.sprintf "Expr_pool.add: %s is not a PRE candidate" (Expr.to_string e));
  let e = Expr.canonical e in
  match Hashtbl.find_opt pool.table e with
  | Some i -> i
  | None ->
    grow pool;
    let i = pool.size in
    pool.exprs.(i) <- e;
    pool.size <- i + 1;
    Hashtbl.add pool.table e i;
    (* Register the flipped orientation of commutative operators too:
       lookups then hit the table directly as written in the program, and
       [index]/[index_exn] never pay [Expr.canonical]'s node rebuild (one
       allocation per candidate instruction per request on the scan path).
       Expressions are shallow — operands are atoms — so the two
       orientations enumerate every equal-up-to-commutativity form. *)
    (match e with
    | Expr.Binary (op, a, b) when Expr.is_commutative op && a <> b ->
      Hashtbl.add pool.table (Expr.Binary (op, b, a)) i
    | Expr.Atom _ | Expr.Unary _ | Expr.Binary _ -> ());
    i

let index pool e = Hashtbl.find_opt pool.table e

(* Hot-path variant of [index]: no [Some] allocation per lookup (the
   local-predicate scan asks once per instruction).  Raises [Not_found]. *)
let index_exn pool e = Hashtbl.find pool.table e

let expr pool i =
  if i < 0 || i >= pool.size then invalid_arg "Expr_pool.expr: index out of range";
  pool.exprs.(i)

let size pool = pool.size

let iter f pool =
  for i = 0 to pool.size - 1 do
    f i pool.exprs.(i)
  done

let to_list pool =
  let acc = ref [] in
  for i = pool.size - 1 downto 0 do
    acc := (i, pool.exprs.(i)) :: !acc
  done;
  !acc

(* The body is uncurried into a plain function so the locked section needs
   no closures at all ([Fun.protect] allocates two per call, and [reading]
   runs once per distinct variable of every request): the exception arm
   below replays the role of [~finally], releasing the lock before
   re-raising (including injected chaos faults). *)
let reading_locked pool v =
  if pool.reading_cache_size <> pool.size then begin
    Hashtbl.reset pool.reading_cache;
    pool.reading_cache_size <- pool.size
  end;
  match Hashtbl.find pool.reading_cache v with
  | is -> is
  | exception Not_found ->
    Lcm_support.Fault.inject "pool.reading";
    let acc = ref [] in
    for i = pool.size - 1 downto 0 do
      if Expr.reads_var pool.exprs.(i) v then acc := i :: !acc
    done;
    Hashtbl.add pool.reading_cache v !acc;
    !acc

let reading pool v =
  Mutex.lock pool.reading_lock;
  match reading_locked pool v with
  | is ->
    Mutex.unlock pool.reading_lock;
    is
  | exception e ->
    Mutex.unlock pool.reading_lock;
    raise e
