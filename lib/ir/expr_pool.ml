type t = {
  table : (Expr.t, int) Hashtbl.t;
  mutable exprs : Expr.t array;
  mutable size : int;
  (* var → indices of expressions reading it, memoized per pool size: the
     local-predicate scan asks for the same few variables once per
     definition, which made the uncached O(size) scan the hottest spot of
     the whole analysis on large graphs. *)
  reading_cache : (string, int list) Hashtbl.t;
  mutable reading_cache_size : int;
  (* Guards the lazily-filled [reading_cache] only: analyses sharing a pool
     may query [reading] from several domains at once.  [add] still
     requires external ordering — pools are built single-domain, before any
     fan-out. *)
  reading_lock : Mutex.t;
}

let create () =
  {
    table = Hashtbl.create 64;
    exprs = Array.make 16 (Expr.Atom (Expr.Const 0));
    size = 0;
    reading_cache = Hashtbl.create 16;
    reading_cache_size = 0;
    reading_lock = Mutex.create ();
  }

let grow pool =
  if pool.size = Array.length pool.exprs then begin
    let bigger = Array.make (2 * Array.length pool.exprs) pool.exprs.(0) in
    Array.blit pool.exprs 0 bigger 0 pool.size;
    pool.exprs <- bigger
  end

let add pool e =
  if not (Expr.is_candidate e) then
    invalid_arg (Printf.sprintf "Expr_pool.add: %s is not a PRE candidate" (Expr.to_string e));
  let e = Expr.canonical e in
  match Hashtbl.find_opt pool.table e with
  | Some i -> i
  | None ->
    grow pool;
    let i = pool.size in
    pool.exprs.(i) <- e;
    pool.size <- i + 1;
    Hashtbl.add pool.table e i;
    i

let index pool e = Hashtbl.find_opt pool.table (Expr.canonical e)

let expr pool i =
  if i < 0 || i >= pool.size then invalid_arg "Expr_pool.expr: index out of range";
  pool.exprs.(i)

let size pool = pool.size

let iter f pool =
  for i = 0 to pool.size - 1 do
    f i pool.exprs.(i)
  done

let to_list pool =
  let acc = ref [] in
  for i = pool.size - 1 downto 0 do
    acc := (i, pool.exprs.(i)) :: !acc
  done;
  !acc

let reading pool v =
  Mutex.lock pool.reading_lock;
  (* Fun.protect: a memo fill that raises (or an injected chaos fault)
     must not leave the lock held. *)
  Fun.protect
    ~finally:(fun () -> Mutex.unlock pool.reading_lock)
    (fun () ->
      if pool.reading_cache_size <> pool.size then begin
        Hashtbl.reset pool.reading_cache;
        pool.reading_cache_size <- pool.size
      end;
      match Hashtbl.find_opt pool.reading_cache v with
      | Some is -> is
      | None ->
        Lcm_support.Fault.inject "pool.reading";
        let acc = ref [] in
        for i = pool.size - 1 downto 0 do
          if Expr.reads_var pool.exprs.(i) v then acc := i :: !acc
        done;
        Hashtbl.add pool.reading_cache v !acc;
        !acc)
