(** Straight-line instructions of the intermediate representation.

    Control flow is represented separately, by basic-block terminators in
    the CFG library; a block body is a list of these instructions. *)

type t =
  | Assign of string * Expr.t  (** [v := e] *)
  | Print of Expr.operand  (** observable output; anchors interpreter equivalence checks *)

(** [defs i] is the variable defined by [i], if any. *)
val defs : t -> string option

(** Variables read by [i]. *)
val uses : t -> string list

(** The candidate expression computed by [i], if any. *)
val candidate : t -> Expr.t option

(** [modifies i v] holds when [i] writes [v]. *)
val modifies : t -> string -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
