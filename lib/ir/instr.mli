(** Straight-line instructions of the intermediate representation.

    Control flow is represented separately, by basic-block terminators in
    the CFG library; a block body is a list of these instructions. *)

(** An opaque effectful operation from an external frontend (function
    call, print with multiple arguments, memory traffic, ...).  The
    optimizer treats it as a black box: it is never a motion candidate,
    and it conservatively kills every expression reading a variable it
    touches.  [eff_dest] carries the destination together with its
    frontend type token (e.g. ["int"], ["bool"], ["ptr<int>"]) so the
    instruction round-trips through printers losslessly. *)
type effect_ = {
  eff_op : string;
  eff_dest : (string * string) option;
  eff_args : Expr.operand list;
  eff_funcs : string list;
}

type t =
  | Assign of string * Expr.t  (** [v := e] *)
  | Print of Expr.operand  (** observable output; anchors interpreter equivalence checks *)
  | Effect of effect_  (** opaque effectful instruction; never a candidate *)

(** [defs i] is the variable defined by [i], if any. *)
val defs : t -> string option

(** Variables read by [i]. *)
val uses : t -> string list

(** The candidate expression computed by [i], if any. *)
val candidate : t -> Expr.t option

(** [kills i] is the set of variables whose expressions must be treated
    as clobbered after [i]: the definition for [Assign]/[Print], and the
    destination plus every operand variable for [Effect] (an opaque call
    or store may alias anything it reads).  Over-approximate but sound:
    extra kills only suppress motion. *)
val kills : t -> string list

(** [modifies i v] holds when [i] writes [v]. *)
val modifies : t -> string -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
