(** Right-hand-side expressions of the intermediate representation.

    Following the setting of the paper, every instruction has the shape
    [v := e] where [e] applies at most one operator.  Expressions are the
    objects PRE reasons about: two syntactically equal expressions are the
    same "computation" wherever they occur. *)

(** An atomic operand. *)
type operand =
  | Var of string
  | Const of int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And  (** logical conjunction over truthiness: nonzero is true *)
  | Or  (** logical disjunction over truthiness: nonzero is true *)

type unop =
  | Neg  (** arithmetic negation *)
  | Not  (** logical negation: 0 becomes 1, anything else 0 *)

type t =
  | Atom of operand  (** a bare copy; never a PRE candidate *)
  | Unary of unop * operand
  | Binary of binop * operand * operand

(** Structural equality. *)
val equal : t -> t -> bool

val compare : t -> t -> int
val hash : t -> int

(** Variables read by the expression. *)
val vars : t -> string list

(** [reads_var e v] holds when evaluating [e] reads [v]. *)
val reads_var : t -> string -> bool

(** [is_candidate e] holds when [e] is a PRE candidate: it applies an
    operator (copies of atoms carry no computation to eliminate). *)
val is_candidate : t -> bool

(** [is_commutative op] holds for operators where operand order does not
    affect the value. *)
val is_commutative : binop -> bool

(** [canonical e] orders the operands of commutative operators so that
    [a+b] and [b+a] denote the same computation. *)
val canonical : t -> t

(** Denotational semantics of the operators, shared by the interpreter and
    the constant folder.  Arithmetic is total: division and modulo by zero
    yield 0; comparisons yield 0 or 1. *)
val eval_binop : binop -> int -> int -> int

val eval_unop : unop -> int -> int

val pp_operand : Format.formatter -> operand -> unit
val pp_binop : Format.formatter -> binop -> unit
val pp_unop : Format.formatter -> unop -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
