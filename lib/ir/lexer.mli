(** Hand-written lexer for MiniImp source text. *)

type token =
  | INT of int
  | IDENT of string
  | KW_FUNCTION
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_PRINT
  | KW_RETURN
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | ASSIGN  (** [=] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQ  (** [==] *)
  | NE
  | BANG
  | EOF

(** Token paired with its 1-based line and column. *)
type spanned = { token : token; line : int; col : int }

exception Lex_error of string * int * int
(** [Lex_error (message, line, col)]. *)

(** Tokenize a whole source string; the result ends with [EOF].
    Comments run from [//] to end of line.  Raises {!Lex_error} on
    unexpected characters. *)
val tokenize : string -> spanned list

val pp_token : Format.formatter -> token -> unit
