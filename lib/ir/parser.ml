exception Parse_error of string * int * int

type state = { mutable tokens : Lexer.spanned list }

let peek st =
  match st.tokens with
  | [] -> { Lexer.token = Lexer.EOF; line = 0; col = 0 }
  | t :: _ -> t

let advance st =
  match st.tokens with
  | [] -> ()
  | _ :: rest -> st.tokens <- rest

let fail st msg =
  let t = peek st in
  raise (Parse_error (Format.asprintf "%s (found %a)" msg Lexer.pp_token t.token, t.line, t.col))

let expect st tok what =
  let t = peek st in
  if t.token = tok then advance st else fail st (Printf.sprintf "expected %s" what)

let expect_ident st what =
  let t = peek st in
  match t.token with
  | Lexer.IDENT name ->
    advance st;
    name
  | _ -> fail st (Printf.sprintf "expected %s" what)

let cmp_op = function
  | Lexer.LT -> Some Expr.Lt
  | Lexer.LE -> Some Expr.Le
  | Lexer.GT -> Some Expr.Gt
  | Lexer.GE -> Some Expr.Ge
  | Lexer.EQ -> Some Expr.Eq
  | Lexer.NE -> Some Expr.Ne
  | _ -> None

let add_op = function
  | Lexer.PLUS -> Some Expr.Add
  | Lexer.MINUS -> Some Expr.Sub
  | _ -> None

let mul_op = function
  | Lexer.STAR -> Some Expr.Mul
  | Lexer.SLASH -> Some Expr.Div
  | Lexer.PERCENT -> Some Expr.Mod
  | _ -> None

let rec parse_expression st = parse_binary_level st cmp_op parse_add

and parse_add st = parse_binary_level st add_op parse_mul

and parse_mul st = parse_binary_level st mul_op parse_unary

and parse_binary_level st classify next =
  let rec loop lhs =
    match classify (peek st).token with
    | Some op ->
      advance st;
      let rhs = next st in
      loop (Ast.Binary (op, lhs, rhs))
    | None -> lhs
  in
  loop (next st)

and parse_unary st =
  match (peek st).token with
  | Lexer.MINUS ->
    advance st;
    Ast.Unary (Expr.Neg, parse_unary st)
  | Lexer.BANG ->
    advance st;
    Ast.Unary (Expr.Not, parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match (peek st).token with
  | Lexer.INT n ->
    advance st;
    Ast.Int n
  | Lexer.IDENT name ->
    advance st;
    Ast.Var name
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expression st in
    expect st Lexer.RPAREN "')'";
    e
  | _ -> fail st "expected expression"

let rec parse_stmt st =
  match (peek st).token with
  | Lexer.IDENT name ->
    advance st;
    expect st Lexer.ASSIGN "'='";
    let e = parse_expression st in
    expect st Lexer.SEMI "';'";
    Ast.Assign (name, e)
  | Lexer.KW_PRINT ->
    advance st;
    let e = parse_expression st in
    expect st Lexer.SEMI "';'";
    Ast.Print e
  | Lexer.KW_RETURN ->
    advance st;
    let e = parse_expression st in
    expect st Lexer.SEMI "';'";
    Ast.Return e
  | Lexer.KW_IF ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let cond = parse_expression st in
    expect st Lexer.RPAREN "')'";
    let then_branch = parse_block st in
    let else_branch =
      if (peek st).token = Lexer.KW_ELSE then begin
        advance st;
        parse_block st
      end
      else []
    in
    Ast.If (cond, then_branch, else_branch)
  | Lexer.KW_WHILE ->
    advance st;
    expect st Lexer.LPAREN "'('";
    let cond = parse_expression st in
    expect st Lexer.RPAREN "')'";
    let body = parse_block st in
    Ast.While (cond, body)
  | Lexer.KW_DO ->
    advance st;
    let body = parse_block st in
    expect st Lexer.KW_WHILE "'while'";
    expect st Lexer.LPAREN "'('";
    let cond = parse_expression st in
    expect st Lexer.RPAREN "')'";
    expect st Lexer.SEMI "';'";
    Ast.Do_while (body, cond)
  | _ -> fail st "expected statement"

and parse_block st =
  expect st Lexer.LBRACE "'{'";
  let rec loop acc =
    if (peek st).token = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

let parse_func_decl st =
  expect st Lexer.KW_FUNCTION "'function'";
  let name = expect_ident st "function name" in
  expect st Lexer.LPAREN "'('";
  let params =
    if (peek st).token = Lexer.RPAREN then []
    else begin
      let rec loop acc =
        let p = expect_ident st "parameter name" in
        if (peek st).token = Lexer.COMMA then begin
          advance st;
          loop (p :: acc)
        end
        else List.rev (p :: acc)
      in
      loop []
    end
  in
  expect st Lexer.RPAREN "')'";
  let body = parse_block st in
  { Ast.name; params; body }

let make_state src = { tokens = Lexer.tokenize src }

let parse_program src =
  let st = make_state src in
  let rec loop acc =
    if (peek st).token = Lexer.EOF then List.rev acc else loop (parse_func_decl st :: acc)
  in
  let funcs = loop [] in
  if funcs = [] then fail st "expected at least one function";
  funcs

let parse_func src =
  let st = make_state src in
  let f = parse_func_decl st in
  if (peek st).token <> Lexer.EOF then fail st "trailing input after function";
  f

let parse_expr src =
  let st = make_state src in
  let e = parse_expression st in
  if (peek st).token <> Lexer.EOF then fail st "trailing input after expression";
  e
