(** Recursive-descent parser for MiniImp.

    Grammar (EBNF):
    {v
    program  ::= func+
    func     ::= "function" IDENT "(" [IDENT {"," IDENT}] ")" block
    block    ::= "{" stmt* "}"
    stmt     ::= IDENT "=" expr ";"
               | "if" "(" expr ")" block ["else" block]
               | "while" "(" expr ")" block
               | "do" block "while" "(" expr ")" ";"
               | "print" expr ";"
               | "return" expr ";"
    expr     ::= cmp
    cmp      ::= add {("<"|"<="|">"|">="|"=="|"!=") add}
    add      ::= mul {("+"|"-") mul}
    mul      ::= unary {("*"|"/"|"%") unary}
    unary    ::= ("-"|"!") unary | atom
    atom     ::= INT | IDENT | "(" expr ")"
    v} *)

exception Parse_error of string * int * int
(** [Parse_error (message, line, col)]. *)

(** Parse a whole source string into a program.
    Raises {!Parse_error} or {!Lexer.Lex_error}. *)
val parse_program : string -> Ast.program

(** Parse a source string containing a single function. *)
val parse_func : string -> Ast.func

(** Parse a bare expression (used by tests and the CLI). *)
val parse_expr : string -> Ast.expr
