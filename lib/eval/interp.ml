module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Lower = Lcm_cfg.Lower
module Expr = Lcm_ir.Expr
module Expr_pool = Lcm_ir.Expr_pool
module Instr = Lcm_ir.Instr

type outcome = {
  return_value : int option;
  prints : int list;
  effects : (string * int list) list;
  eval_counts : int array;
  unknown_evals : int;
  steps : int;
  blocks_visited : int;
  block_visits : (Label.t * int) list;
  undefined_reads : string list;
  terminated : bool;
}

let total_evals o = Array.fold_left ( + ) o.unknown_evals o.eval_counts

type state = {
  env : (string, int) Hashtbl.t;
  mutable prints_rev : int list;
  mutable effects_rev : (string * int list) list;
  mutable unknown_evals : int;
  mutable steps : int;
  mutable blocks_visited : int;
  mutable undefined_rev : string list;
  undefined_seen : (string, unit) Hashtbl.t;
  counts : int array;
  pool : Expr_pool.t;
}

let read st v =
  match Hashtbl.find_opt st.env v with
  | Some x -> x
  | None ->
    if not (Hashtbl.mem st.undefined_seen v) then begin
      Hashtbl.add st.undefined_seen v ();
      st.undefined_rev <- v :: st.undefined_rev
    end;
    0

let operand st = function
  | Expr.Var v -> read st v
  | Expr.Const n -> n

let eval_expr st e =
  (match Expr_pool.index st.pool e with
  | Some idx when Expr.is_candidate e -> st.counts.(idx) <- st.counts.(idx) + 1
  | Some _ | None -> if Expr.is_candidate e then st.unknown_evals <- st.unknown_evals + 1);
  match e with
  | Expr.Atom a -> operand st a
  | Expr.Unary (op, a) -> Expr.eval_unop op (operand st a)
  | Expr.Binary (op, a, b) -> Expr.eval_binop op (operand st a) (operand st b)

let exec_instr st = function
  | Instr.Assign (v, e) ->
    let x = eval_expr st e in
    Hashtbl.replace st.env v x
  | Instr.Print a -> st.prints_rev <- operand st a :: st.prints_rev
  | Instr.Effect e ->
    (* Opaque effects get a deterministic uninterpreted semantics: the
       observable trace records (op, argument values), and the destination
       (if any) receives a value that is a pure function of the op, the
       callee names and the argument values — so two graphs are
       behaviourally equal iff they perform the same effects in the same
       order with equal results. *)
    let args = List.map (operand st) e.Instr.eff_args in
    st.effects_rev <- (e.Instr.eff_op, args) :: st.effects_rev;
    (match e.Instr.eff_dest with
    | Some (v, _) -> Hashtbl.replace st.env v (Hashtbl.hash (e.Instr.eff_op, e.Instr.eff_funcs, args))
    | None -> ())

let run ?(fuel = 100_000) ~pool ~env g =
  let st =
    {
      env = Hashtbl.create 64;
      prints_rev = [];
      effects_rev = [];
      unknown_evals = 0;
      steps = 0;
      blocks_visited = 0;
      undefined_rev = [];
      undefined_seen = Hashtbl.create 16;
      counts = Array.make (Expr_pool.size pool) 0;
      pool;
    }
  in
  List.iter (fun (v, x) -> Hashtbl.replace st.env v x) env;
  let exit_label = Cfg.exit_label g in
  let visits = Hashtbl.create 32 in
  let rec step l budget =
    if budget <= 0 then false
    else begin
      st.blocks_visited <- st.blocks_visited + 1;
      Hashtbl.replace visits l (Option.value ~default:0 (Hashtbl.find_opt visits l) + 1);
      let rec body budget = function
        | [] -> Some budget
        | i :: rest ->
          if budget <= 0 then None
          else begin
            st.steps <- st.steps + 1;
            exec_instr st i;
            body (budget - 1) rest
          end
      in
      match body budget (Cfg.instrs g l) with
      | None -> false
      | Some budget ->
        if Label.equal l exit_label then true
        else begin
          match Cfg.term g l with
          | Cfg.Goto m -> step m (budget - 1)
          | Cfg.Branch (c, a, b) -> step (if operand st c <> 0 then a else b) (budget - 1)
          | Cfg.Halt -> true
        end
    end
  in
  let terminated = step (Cfg.entry g) fuel in
  {
    return_value = Hashtbl.find_opt st.env Lower.return_var;
    prints = List.rev st.prints_rev;
    effects = List.rev st.effects_rev;
    eval_counts = st.counts;
    unknown_evals = st.unknown_evals;
    steps = st.steps;
    blocks_visited = st.blocks_visited;
    block_visits =
      List.filter_map
        (fun l -> Option.map (fun n -> (l, n)) (Hashtbl.find_opt visits l))
        (Cfg.labels g);
    undefined_reads = List.rev st.undefined_rev;
    terminated;
  }

let same_behaviour a b =
  a.return_value = b.return_value && a.prints = b.prints && a.effects = b.effects
  && a.terminated = b.terminated

let pp_outcome ppf o =
  Format.fprintf ppf "return=%s prints=[%s] evals=%d steps=%d%s"
    (match o.return_value with Some v -> string_of_int v | None -> "none")
    (String.concat "; " (List.map string_of_int o.prints))
    (total_evals o) o.steps
    (if o.terminated then "" else " (fuel exhausted)")
