(** The catalogue of transformations compared by the experiments.

    Every entry is a {!Lcm_core.Pass.Pipeline.t}; [run] is derived from it
    under the sequential context, so the convenience signature (graph in,
    graph out) and the pipeline can never disagree.  Newly introduced
    temporaries are recovered generically as the variables of the output
    that the input never mentioned. *)

type entry = {
  name : string;
  description : string;
  is_paper_algorithm : bool;  (** true for the paper's BCM/ALCM/LCM family *)
  speculative : bool;
      (** may evaluate an expression on a path where the original did not
          (LICM, strength reduction); such entries are exempt from the
          per-path safety properties, by design *)
  preserves_expressions : bool;
      (** the syntactic identity of surviving computations is unchanged, so
          per-expression path counts are comparable with the original's;
          false for the cleanup pipeline, whose copy propagation renames
          operands (only per-path *totals* are comparable there) *)
  parallelizable : bool;
      (** some pass in the pipeline uses [ctx.workers] when present
          (results stay bit-identical with and without a pool) *)
  pipeline : Lcm_core.Pass.Pipeline.t;
  run : Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t;
      (** the pipeline under {!Lcm_core.Pass.default_ctx}, reports dropped *)
}

(** In comparison order: identity, lcse, gcse, licm, strength-reduction,
    ssa-dvnt, morel-renvoise, bcm-edge, lcm-edge, lcm-cleanup, bcm-node,
    alcm-node, lcm-node. *)
val all : entry list

(** Entries whose transformations must satisfy per-path safety. *)
val safe : entry list

(** The paper's BCM/ALCM/LCM family. *)
val paper_algorithms : entry list

val find : string -> entry option
val names : unit -> string list

(** Variables of [transformed] that do not occur in [original] — the
    temporaries a transformation introduced. *)
val new_temps : original:Lcm_cfg.Cfg.t -> transformed:Lcm_cfg.Cfg.t -> string list
