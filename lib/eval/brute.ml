module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Order = Lcm_cfg.Order
module Expr_pool = Lcm_ir.Expr_pool
module Local = Lcm_dataflow.Local
module Transform = Lcm_core.Transform
module Copy_analysis = Lcm_core.Copy_analysis
module Temps = Lcm_core.Temps

type candidate = {
  insert_edges : (Label.t * Label.t) list;
  transformed : Cfg.t;
  report : Transform.report;
  safe : bool;
}

(* Availability of the single expression when [h := e] sits on the edges of
   [inserts]; greatest fixed point over booleans. *)
let deletions g local inserts =
  let avin = Hashtbl.create 32 and avout = Hashtbl.create 32 in
  List.iter
    (fun l ->
      Hashtbl.replace avin l true;
      Hashtbl.replace avout l true)
    (Cfg.labels g);
  Hashtbl.replace avin (Cfg.entry g) false;
  let has_insert p b = List.exists (fun (x, y) -> Label.equal x p && Label.equal y b) inserts in
  let order = Order.compute g in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        let in_v =
          if Label.equal b (Cfg.entry g) then false
          else
            List.for_all (fun p -> Hashtbl.find avout p || has_insert p b) (Cfg.predecessors g b)
        in
        let out_v = Bitvec.get (Local.comp local b) 0 || (in_v && Bitvec.get (Local.transp local b) 0) in
        if in_v <> Hashtbl.find avin b || out_v <> Hashtbl.find avout b then begin
          Hashtbl.replace avin b in_v;
          Hashtbl.replace avout b out_v;
          changed := true
        end)
      (Order.reverse_postorder order)
  done;
  List.filter
    (fun b -> Bitvec.get (Local.antloc local b) 0 && Hashtbl.find avin b)
    (Cfg.labels g)

let enumerate ?(max_edges = 12) ?(max_decisions = 8) g =
  let pool = Cfg.candidate_pool g in
  if Expr_pool.size pool <> 1 then
    invalid_arg
      (Printf.sprintf "Brute.enumerate: graph has %d candidate expressions, need exactly 1"
         (Expr_pool.size pool));
  let local = Local.compute g pool in
  let edges = Array.of_list (Cfg.edges g) in
  let n = Array.length edges in
  if n > max_edges then
    invalid_arg (Printf.sprintf "Brute.enumerate: %d edges exceed the limit of %d" n max_edges);
  let temp_names = Temps.names g pool in
  let one = Bitvec.of_list 1 [ 0 ] in
  let results = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let insert_edges =
      List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list edges)
    in
    let insert_sets = List.map (fun e -> (e, Bitvec.copy one)) insert_edges in
    let delete_blocks = deletions g local insert_edges in
    let delete_sets = List.map (fun b -> (b, Bitvec.copy one)) delete_blocks in
    let copies = Copy_analysis.copies g local ~insert_edges:insert_sets ~deletes:delete_sets in
    let spec =
      {
        Transform.algorithm = "brute";
        pool;
        temp_names;
        edge_inserts = insert_sets;
        entry_inserts = [];
        exit_inserts = [];
        deletes = delete_sets;
        copies;
      }
    in
    let transformed, report = Transform.apply g spec in
    let safe =
      match Oracle.safety ~max_decisions ~pool ~original:g transformed with
      | Ok () -> true
      | Error _ -> false
    in
    results := { insert_edges; transformed; report; safe } :: !results
  done;
  List.rev !results

let path_totals ~pool ~max_decisions ~seqs g =
  List.map
    (fun seq ->
      let r = Trace.replay ~pool g seq in
      ignore max_decisions;
      if r.Trace.completed then Some (Trace.total r.Trace.eval_counts) else None)
    seqs

let check_computational_optimality ?max_edges ?(max_decisions = 8) g ~transformed =
  let pool = Cfg.candidate_pool g in
  let seqs = Trace.enumerate g ~max_decisions in
  let mine = path_totals ~pool ~max_decisions ~seqs transformed in
  let candidates = enumerate ?max_edges ~max_decisions g in
  let rec go = function
    | [] -> Ok ()
    | c :: rest ->
      if not c.safe then go rest
      else begin
        let theirs = path_totals ~pool ~max_decisions ~seqs c.transformed in
        let violation =
          List.exists2
            (fun m t -> match (m, t) with Some m, Some t -> m > t | _, _ -> false)
            mine theirs
        in
        if violation then
          Error
            (Printf.sprintf
               "a safe candidate with insertions on [%s] beats the transformation on some path"
               (String.concat ", "
                  (List.map (fun (a, b) -> Printf.sprintf "B%d->B%d" a b) c.insert_edges)))
        else go rest
      end
  in
  go candidates

let check_lifetime_optimality ?max_edges ?(max_decisions = 8) g ~transformed ~temps =
  let pool = Cfg.candidate_pool g in
  let seqs = Trace.enumerate g ~max_decisions in
  let mine = path_totals ~pool ~max_decisions ~seqs transformed in
  let my_lifetime = Metrics.temp_lifetime transformed ~temps in
  let candidates = enumerate ?max_edges ~max_decisions g in
  let rec go = function
    | [] -> Ok ()
    | c :: rest ->
      let theirs = path_totals ~pool ~max_decisions ~seqs c.transformed in
      let equal_counts = c.safe && List.for_all2 (fun m t -> m = t) mine theirs in
      if not equal_counts then go rest
      else begin
        let their_temps = Metrics.temps_of_report c.report in
        let their_lifetime = Metrics.temp_lifetime c.transformed ~temps:their_temps in
        if their_lifetime < my_lifetime then
          Error
            (Printf.sprintf
               "computationally optimal candidate with insertions on [%s] has lifetime %d < %d"
               (String.concat ", "
                  (List.map (fun (a, b) -> Printf.sprintf "B%d->B%d" a b) c.insert_edges))
               their_lifetime my_lifetime)
        else go rest
      end
  in
  go candidates
