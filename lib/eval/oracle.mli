(** Checkable statements of the paper's theorems.

    Each check returns [Ok ()] or [Error message] with a concrete
    counterexample description, so property tests can both assert and
    explain. *)

(** [semantics ~inputs ~runs rng ~original ~transformed] interprets both
    graphs on [runs] random environments over [inputs] and compares
    observable behaviour (return value, print trace, termination).  Runs in
    which either side exhausts its fuel are skipped. *)
val semantics :
  ?fuel:int ->
  ?runs:int ->
  inputs:string list ->
  Lcm_support.Prng.t ->
  original:Lcm_cfg.Cfg.t ->
  transformed:Lcm_cfg.Cfg.t ->
  (unit, string) result

(** [no_undefined_temp_reads ~pool ~original ~transformed] replays every
    path (decision sequence up to [max_decisions]) and fails if the
    transformed graph reads a variable that the original never reads and
    that was never written — i.e. an inserted temporary used before being
    set. *)
val no_undefined_temp_reads :
  ?max_decisions:int ->
  inputs:string list ->
  original:Lcm_cfg.Cfg.t ->
  Lcm_cfg.Cfg.t ->
  (unit, string) result

(** Safety (paper Theorem "BCM/LCM are admissible"): on every path, the
    transformed graph evaluates each candidate expression at most as often
    as the original.  Paths are decision sequences over the original graph,
    replayed on the transformed one. *)
val safety :
  ?max_decisions:int ->
  pool:Lcm_ir.Expr_pool.t ->
  original:Lcm_cfg.Cfg.t ->
  Lcm_cfg.Cfg.t ->
  (unit, string) result

(** [computations_leq ~pool a b] — on every path, graph [a] evaluates at
    most as many candidate computations (totalled over expressions) as
    graph [b].  Both graphs must replay the decision sequences of [a]'s
    enumeration; used to compare two transformations of the same original
    (computational optimality, paper Theorem 2). *)
val computations_leq :
  ?max_decisions:int ->
  pool:Lcm_ir.Expr_pool.t ->
  Lcm_cfg.Cfg.t ->
  Lcm_cfg.Cfg.t ->
  (unit, string) result
