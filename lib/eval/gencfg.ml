module Prng = Lcm_support.Prng
module Ast = Lcm_ir.Ast
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Validate = Lcm_cfg.Validate

type func_params = {
  num_stmts : int;
  max_depth : int;
  num_vars : int;
  loop_bound : int;
}

let default_func_params = { num_stmts = 5; max_depth = 3; num_vars = 5; loop_bound = 4 }

let alphabet = [| "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" |]

let variables params = Array.sub alphabet 0 (min params.num_vars (Array.length alphabet))

let func_inputs params = Array.to_list (variables params)

let random_env rng params = List.map (fun v -> (v, Prng.int_in rng (-8) 8)) (func_inputs params)

(* Expressions stay shallow so that candidate expressions repeat often —
   partial redundancies need repeated syntactic expressions to exist. *)
let random_atom rng vars =
  if Prng.chance rng ~num:4 ~den:5 then Ast.Var (Prng.choose rng vars) else Ast.Int (Prng.int_in rng 0 5)

let random_binop rng =
  Prng.choose rng [| Expr.Add; Expr.Add; Expr.Add; Expr.Sub; Expr.Mul; Expr.Lt; Expr.Eq |]

let random_expr rng vars =
  match Prng.int rng 10 with
  | 0 -> random_atom rng vars
  | 1 -> Ast.Unary (Expr.Neg, random_atom rng vars)
  | _ -> Ast.Binary (random_binop rng, random_atom rng vars, random_atom rng vars)

let random_cond rng vars =
  Ast.Binary
    ( Prng.choose rng [| Expr.Lt; Expr.Le; Expr.Gt; Expr.Eq; Expr.Ne |],
      random_atom rng vars,
      random_atom rng vars )

let rec random_stmts rng params vars depth counter_id budget =
  if budget <= 0 then []
  else begin
    let stmt, cost =
      match Prng.int rng (if depth > 0 then 8 else 5) with
      | 0 | 1 | 2 -> (Ast.Assign (Prng.choose rng vars, random_expr rng vars), 1)
      | 3 -> (Ast.Print (random_atom rng vars), 1)
      | 4 -> (Ast.Assign (Prng.choose rng vars, random_expr rng vars), 1)
      | 5 ->
        let then_b = random_stmts rng params vars (depth - 1) counter_id (budget / 2) in
        let else_b =
          if Prng.bool rng then [] else random_stmts rng params vars (depth - 1) counter_id (budget / 2)
        in
        (Ast.If (random_cond rng vars, then_b, else_b), 2)
      | 6 ->
        (* Counted loop: the counter is reserved, so termination is certain. *)
        let k = Printf.sprintf "k%d" !counter_id in
        incr counter_id;
        let body = random_stmts rng params vars (depth - 1) counter_id (budget / 2) in
        let body = body @ [ Ast.Assign (k, Ast.Binary (Expr.Add, Ast.Var k, Ast.Int 1)) ] in
        ( Ast.If
            ( Ast.Int 1,
              [
                Ast.Assign (k, Ast.Int 0);
                Ast.While (Ast.Binary (Expr.Lt, Ast.Var k, Ast.Int params.loop_bound), body);
              ],
              [] ),
          3 )
      | _ ->
        let k = Printf.sprintf "k%d" !counter_id in
        incr counter_id;
        let body = random_stmts rng params vars (depth - 1) counter_id (budget / 2) in
        let body = body @ [ Ast.Assign (k, Ast.Binary (Expr.Add, Ast.Var k, Ast.Int 1)) ] in
        ( Ast.If
            ( Ast.Int 1,
              [
                Ast.Assign (k, Ast.Int 0);
                Ast.Do_while (body, Ast.Binary (Expr.Lt, Ast.Var k, Ast.Int params.loop_bound));
              ],
              [] ),
          3 )
    in
    stmt :: random_stmts rng params vars depth counter_id (budget - cost)
  end

let random_func ?(params = default_func_params) rng =
  let vars = variables params in
  let counter_id = ref 0 in
  let body = random_stmts rng params vars params.max_depth counter_id params.num_stmts in
  let body = body @ [ Ast.Return (random_expr rng vars) ] in
  { Ast.name = "generated"; params = func_inputs params; body }

type cfg_params = {
  num_blocks : int;
  max_instrs_per_block : int;
  branch_bias : int;
  backedge_bias : int;
}

let default_cfg_params = { num_blocks = 8; max_instrs_per_block = 3; branch_bias = 50; backedge_bias = 25 }

let random_instr rng vars =
  match Prng.int rng 6 with
  | 0 ->
    (* A kill: assign an atom. *)
    Instr.Assign (Prng.choose rng vars, Expr.Atom (Expr.Var (Prng.choose rng vars)))
  | 1 -> Instr.Assign (Prng.choose rng vars, Expr.Atom (Expr.Const (Prng.int_in rng 0 5)))
  | _ ->
    let op = Prng.choose rng [| Expr.Add; Expr.Add; Expr.Sub; Expr.Mul |] in
    let a = Expr.Var (Prng.choose rng vars) in
    let b = if Prng.chance rng ~num:3 ~den:4 then Expr.Var (Prng.choose rng vars) else Expr.Const (Prng.int_in rng 1 3) in
    Instr.Assign (Prng.choose rng vars, Expr.Binary (op, a, b))

let random_cfg ?(params = default_cfg_params) rng =
  let vars = [| "a"; "b"; "c"; "d" |] in
  let g = Cfg.create ~name:"random" () in
  let n = max 1 params.num_blocks in
  let blocks = Array.init n (fun _ -> Cfg.add_block g ~instrs:[] ~term:Cfg.Halt) in
  let next i = if i + 1 < n then blocks.(i + 1) else Cfg.exit_label g in
  let random_target rng i =
    (* Mostly forward targets; occasional back edges build loops. *)
    if Prng.chance rng ~num:params.backedge_bias ~den:100 then blocks.(Prng.int rng n)
    else begin
      let lo = min (i + 1) (n - 1) in
      if i + 1 >= n then Cfg.exit_label g else blocks.(Prng.int_in rng lo (n - 1))
    end
  in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto blocks.(0));
  (* The entry block may legally carry instructions (block merging and
     entry insertions put them there); generate that case too — it has
     boundary-condition pitfalls of its own. *)
  if Prng.chance rng ~num:1 ~den:3 then
    Cfg.set_instrs g (Cfg.entry g) (List.init (Prng.int_in rng 1 2) (fun _ -> random_instr rng vars));
  Array.iteri
    (fun i l ->
      let instrs =
        List.init (Prng.int rng (params.max_instrs_per_block + 1)) (fun _ -> random_instr rng vars)
      in
      Cfg.set_instrs g l instrs;
      (* The fall-through edge to [next i] guarantees that every block
         reaches the exit. *)
      let term =
        if Prng.chance rng ~num:params.branch_bias ~den:100 then
          Cfg.Branch (Expr.Var (Prng.choose rng vars), random_target rng i, next i)
        else Cfg.Goto (next i)
      in
      Cfg.set_term g l term)
    blocks;
  Validate.check_exn g;
  g

let random_single_expr_cfg ?(blocks = 5) rng =
  let blocks = max 2 (min blocks 6) in
  let g = Cfg.create ~name:"single-expr" () in
  let arr = Array.init blocks (fun _ -> Cfg.add_block g ~instrs:[] ~term:Cfg.Halt) in
  let next i = if i + 1 < blocks then arr.(i + 1) else Cfg.exit_label g in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto arr.(0));
  Array.iteri
    (fun i l ->
      let instrs =
        List.concat
          (List.init 2 (fun _ ->
               match Prng.int rng 5 with
               | 0 | 1 -> [ Instr.Assign ("x", Expr.Binary (Expr.Add, Expr.Var "a", Expr.Var "b")) ]
               | 2 -> [ Instr.Assign ("a", Expr.Atom (Expr.Const (Prng.int_in rng 0 3))) ]
               | 3 -> [ Instr.Assign ("c", Expr.Atom (Expr.Var "x")) ]
               | _ -> []))
      in
      Cfg.set_instrs g l instrs;
      let term =
        if Prng.bool rng then
          Cfg.Branch
            ( Expr.Var "c",
              (if Prng.chance rng ~num:1 ~den:4 then arr.(Prng.int rng blocks) else next i),
              next i )
        else Cfg.Goto (next i)
      in
      Cfg.set_term g l term)
    arr;
  Validate.check_exn g;
  g
