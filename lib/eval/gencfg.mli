(** Random workload generators.

    Three families, all deterministic from a {!Lcm_support.Prng.t}:
    - {!random_func}: structured, always-terminating MiniImp functions, for
      interpreter-based semantic equivalence checks;
    - {!random_cfg}: raw block graphs with arbitrary (also critical and
      irreducible) edges, for trace-based path checks — every block is
      reachable and reaches the exit by construction;
    - {!random_single_expr_cfg}: tiny graphs exercising one candidate
      expression, small enough for brute-force enumeration of all
      placements. *)

type func_params = {
  num_stmts : int;  (** statements per block of structure *)
  max_depth : int;  (** nesting depth of if/while *)
  num_vars : int;  (** size of the variable alphabet (max 8) *)
  loop_bound : int;  (** iterations of generated counted loops *)
}

val default_func_params : func_params

(** Input parameters of generated functions (callers should bind these). *)
val func_inputs : func_params -> string list

val random_func : ?params:func_params -> Lcm_support.Prng.t -> Lcm_ir.Ast.func

(** [random_env rng params] is a random binding for {!func_inputs}. *)
val random_env : Lcm_support.Prng.t -> func_params -> (string * int) list

type cfg_params = {
  num_blocks : int;
  max_instrs_per_block : int;
  branch_bias : int;  (** percent of blocks ending in a two-way branch *)
  backedge_bias : int;  (** percent of branch targets allowed to point backwards *)
}

val default_cfg_params : cfg_params
val random_cfg : ?params:cfg_params -> Lcm_support.Prng.t -> Lcm_cfg.Cfg.t

(** Tiny graph whose only candidate expression is [a + b], with random
    kills of [a]; at most [blocks] (≤ 6) interior blocks. *)
val random_single_expr_cfg : ?blocks:int -> Lcm_support.Prng.t -> Lcm_cfg.Cfg.t
