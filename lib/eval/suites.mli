(** Named MiniImp workloads.

    Small hand-written programs, each built around one of the code shapes
    the paper's introduction motivates — partially redundant diamonds,
    loop invariants, guarded invariants where speculation is unsafe — plus
    a few stress shapes.  Benchmarks and examples refer to them by name. *)

type workload = {
  name : string;
  description : string;
  source : string;  (** MiniImp source of a single function *)
  inputs : string list;  (** parameters to bind when interpreting *)
}

val all : workload list
val find : string -> workload option

(** Lower a workload's source to a graph (after local CSE). *)
val graph : workload -> Lcm_cfg.Cfg.t

(** [envs seed w n] is [n] deterministic random environments for [w]. *)
val envs : int -> workload -> int -> (string * int) list list
