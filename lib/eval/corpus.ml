(* The "compiler server" workload: a whole suite of functions optimized in
   one call, mapped over a domain pool.  Functions are independent — each
   job owns its graph, its expression pool, and its transformed copy — so
   this is the coarsest and best-scaling of the three parallel layers (bit
   slices, pass overlap, corpus fan-out).

   Determinism: reports come back in job order whatever the pool schedules,
   and each report carries an MD5 digest of the printed transformed graph,
   so a driver can assert that parallel and sequential runs produced the
   same code. *)

module Pool = Lcm_support.Pool
module Prng = Lcm_support.Prng
module Cfg = Lcm_cfg.Cfg
module Gencfg = Gencfg
module Lcm_edge = Lcm_core.Lcm_edge
module Transform = Lcm_core.Transform

type job = {
  name : string;
  graph : Cfg.t;
}

type report = {
  job : string;
  blocks : int;
  edges : int;
  exprs : int;
  insertions : int;
  deletions : int;
  sweeps : int;
  visits : int;
  digest : string;  (** MD5 of the printed transformed graph *)
}

let generate ?(seed = 1905) ?(dup_rate = 0.) counts =
  let jobs =
    List.concat_map
      (fun (num_blocks, copies) ->
        List.init copies (fun i ->
            let rng = Prng.of_int (seed + (num_blocks * 7919) + i) in
            {
              name = Printf.sprintf "g%d_%d" num_blocks i;
              graph =
                Gencfg.random_cfg ~params:{ Gencfg.default_cfg_params with num_blocks } rng;
            }))
      counts
  in
  if dup_rate <= 0. then jobs
  else begin
    (* Duplicate-rate knob: each job after the first is, with probability
       [dup_rate], replaced by a verbatim repeat of an earlier one (the
       graph value is shared — printed text, and therefore content digest,
       identical).  Models the repeated functions of a real build corpus;
       a content-addressed cache should serve these without solving. *)
    let rng = Prng.of_int (seed lxor 0x00d5_ca7e) in
    let permille = int_of_float (Float.min 1000. (dup_rate *. 1000.)) in
    let arr = Array.of_list jobs in
    Array.iteri
      (fun i j ->
        if i > 0 && Prng.chance rng ~num:permille ~den:1000 then begin
          let src = arr.(Prng.int_in rng 0 (i - 1)) in
          arr.(i) <- { name = j.name ^ "_dup"; graph = src.graph }
        end)
      arr;
    Array.to_list arr
  end

let total_blocks jobs = List.fold_left (fun acc j -> acc + Cfg.num_blocks j.graph) 0 jobs

(* ---- ingesting real programs ---- *)

type ingest = {
  jobs : job list;
  duplicates : int;
  errors : (string * string) list;
}

let ingest_dir ?format dir =
  let module Frontend = Lcm_frontend.Frontend in
  let files =
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.filter_map (fun f ->
           let path = Filename.concat dir f in
           if Sys.is_directory path then None
           else
             match format with
             | Some fe ->
               if List.exists (fun ext -> Filename.check_suffix f ext) fe.Frontend.extensions then
                 Some (f, path, fe)
               else None
             | None -> Option.map (fun fe -> (f, path, fe)) (Frontend.of_extension f))
  in
  let seen = Hashtbl.create 64 in
  let jobs = ref [] and duplicates = ref 0 and errors = ref [] in
  List.iter
    (fun (f, path, fe) ->
      let text = In_channel.with_open_bin path In_channel.input_all in
      match fe.Frontend.parse text with
      | Error e -> errors := (f, e.Frontend.message) :: !errors
      | Ok funcs ->
        List.iter
          (fun (fname, g) ->
            (* Dedup on the canonical digest: the same function ingested
               from two files (or two formats) is one job — mirroring the
               shard router's content addressing. *)
            let d = Cfg.digest g in
            if Hashtbl.mem seen d then incr duplicates
            else begin
              Hashtbl.replace seen d ();
              let name = if List.length funcs = 1 then f else Printf.sprintf "%s:%s" f fname in
              jobs := { name; graph = g } :: !jobs
            end)
          funcs)
    files;
  { jobs = List.rev !jobs; duplicates = !duplicates; errors = List.rev !errors }

let process_one job =
  let a = Lcm_edge.analyze job.graph in
  let transformed, r = Transform.apply job.graph (Lcm_edge.spec job.graph a) in
  {
    job = job.name;
    blocks = Cfg.num_blocks job.graph;
    edges = List.length (Cfg.edges job.graph);
    exprs = Lcm_ir.Expr_pool.size a.Lcm_edge.pool;
    insertions = r.Transform.num_edge_insertions;
    deletions = r.Transform.num_deletions;
    sweeps = a.Lcm_edge.sweeps;
    visits = a.Lcm_edge.visits;
    digest = Digest.to_hex (Digest.string (Cfg.to_string transformed));
  }

let process ?workers jobs =
  match workers with
  | Some pool when Pool.size pool > 1 ->
    let jobs = Array.of_list jobs in
    let reports = Array.make (Array.length jobs) None in
    (* One task per job: graphs differ wildly in size, so per-job tasks let
       the queue balance them; each task touches only its own slot. *)
    Pool.run pool
      (List.init (Array.length jobs) (fun i () -> reports.(i) <- Some (process_one jobs.(i))));
    Array.to_list (Array.map Option.get reports)
  | Some _ | None -> List.map process_one jobs

let digests reports = List.map (fun r -> r.digest) reports
