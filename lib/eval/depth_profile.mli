(** Loop-depth profiles of candidate computations.

    The classic narrative for PRE is "computations move out of loops";
    this module measures it directly: how many static candidate
    occurrences sit at each loop-nesting depth, and how many dynamic
    evaluations happen there.  Comparing the profile of a graph before
    and after a transformation shows where the work went. *)

type t = {
  static_by_depth : int array;  (** occurrences at depth 0, 1, 2, ... *)
  dynamic_by_depth : int array option;
      (** evaluations per depth, summed over the supplied runs; [None]
          when a run exhausted its fuel *)
}

(** [collect ?envs ~pool g] computes the static profile, and the dynamic
    one when [envs] is given. *)
val collect :
  ?fuel:int -> ?envs:(string * int) list list -> pool:Lcm_ir.Expr_pool.t -> Lcm_cfg.Cfg.t -> t

(** Depths are padded to the same length for display. *)
val max_depth : t -> int
