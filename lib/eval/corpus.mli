(** Parallel corpus driver: LCM over a whole suite of functions at once —
    the "compiler server" workload.

    Each job owns its graph and every derived structure, so jobs are
    mapped over a {!Lcm_support.Pool.t} with no shared mutable state; the
    report list always comes back in job order, and the per-job digests
    make parallel/sequential equivalence checkable. *)

type job = {
  name : string;
  graph : Lcm_cfg.Cfg.t;
}

type report = {
  job : string;
  blocks : int;
  edges : int;
  exprs : int;  (** candidate expressions in the job's pool *)
  insertions : int;  (** edge insertions, per (edge, expression) pair *)
  deletions : int;
  sweeps : int;  (** analysis iteration depth, all passes summed *)
  visits : int;  (** transfer applications, all passes summed *)
  digest : string;  (** MD5 hex of the printed transformed graph *)
}

(** [generate ?seed ?dup_rate counts] builds a deterministic suite: for
    every [(num_blocks, copies)] pair, [copies] random CFGs of
    [num_blocks] blocks (distinct seeds per copy).  [dup_rate] (0.0–1.0,
    default 0: all distinct) is the probability that a job is replaced by
    a verbatim duplicate of an earlier one — a controlled stand-in for
    the repeated functions of a real build, used to exercise
    content-addressed result caching ([--dup-rate] in the shard
    benchmark). *)
val generate : ?seed:int -> ?dup_rate:float -> (int * int) list -> job list

(** Sum of block counts across the suite. *)
val total_blocks : job list -> int

(** Result of {!ingest_dir}: the deduplicated jobs in filename order,
    how many functions were dropped as content-identical to an earlier
    one, and per-file parse failures (ingestion is best-effort — one bad
    file does not sink the corpus). *)
type ingest = {
  jobs : job list;
  duplicates : int;
  errors : (string * string) list;  (** (filename, message) *)
}

(** [ingest_dir ?format dir] loads every file of [dir] whose extension a
    registered frontend claims ({!Lcm_frontend.Frontend.of_extension}) —
    or only [format]'s files when given — one job per parsed function,
    deduplicated by canonical graph digest exactly like the shard
    router's content addressing. *)
val ingest_dir : ?format:Lcm_frontend.Frontend.t -> string -> ingest

(** [process ?workers jobs] runs [Lcm_edge.analyze] + [Transform.apply] on
    every job — one pool task per job when [workers] has more than one
    domain, sequentially in the calling thread otherwise.  Reports are in
    job order and bit-identical across both modes (and any pool size). *)
val process : ?workers:Lcm_support.Pool.t -> job list -> report list

(** Digests of the transformed graphs, in job order. *)
val digests : report list -> string list
