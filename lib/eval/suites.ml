module Prng = Lcm_support.Prng
module Lower = Lcm_cfg.Lower
module Lcse = Lcm_opt.Lcse

type workload = {
  name : string;
  description : string;
  source : string;
  inputs : string list;
}

let all =
  [
    {
      name = "diamond";
      description = "partial redundancy across a branch: a+b computed in one arm and after the join";
      inputs = [ "a"; "b"; "p" ];
      source =
        {|
function diamond(a, b, p) {
  if (p > 0) {
    x = a + b;
  } else {
    x = 1;
  }
  y = a + b;
  return x + y;
}
|};
    };
    {
      name = "loop_invariant";
      description = "a*b recomputed every iteration; the motivating case for motion out of loops";
      inputs = [ "a"; "b"; "n" ];
      source =
        {|
function loop_invariant(a, b, n) {
  s = 0;
  i = 0;
  while (i < n) {
    t = a * b;
    s = s + t;
    i = i + 1;
  }
  return s;
}
|};
    };
    {
      name = "guarded_invariant";
      description = "invariant computed only under a loop-carried guard: hoisting it is speculative";
      inputs = [ "a"; "b"; "n"; "p" ];
      source =
        {|
function guarded_invariant(a, b, n, p) {
  s = 0;
  i = 0;
  while (i < n) {
    if (p > 0) {
      t = a * b;
      s = s + t;
    }
    i = i + 1;
  }
  return s;
}
|};
    };
    {
      name = "nested_loops";
      description = "two nesting levels with invariants at each level";
      inputs = [ "a"; "b"; "n"; "m" ];
      source =
        {|
function nested_loops(a, b, n, m) {
  s = 0;
  i = 0;
  while (i < n) {
    u = a + b;
    j = 0;
    while (j < m) {
      v = a * b;
      w = u + v;
      s = s + w;
      j = j + 1;
    }
    i = i + 1;
  }
  return s;
}
|};
    };
    {
      name = "cse_chain";
      description = "straight-line code with globally repeated subexpressions";
      inputs = [ "a"; "b"; "c" ];
      source =
        {|
function cse_chain(a, b, c) {
  x = a + b;
  y = b * c;
  z = a + b;
  w = b * c;
  v = x + y;
  u = z + w;
  return v + u;
}
|};
    };
    {
      name = "kill_and_recompute";
      description = "operand kills between occurrences limit what any PRE may remove";
      inputs = [ "a"; "b"; "p" ];
      source =
        {|
function kill_and_recompute(a, b, p) {
  x = a + b;
  a = a + 1;
  y = a + b;
  if (p > 0) {
    a = a + 2;
  }
  z = a + b;
  return x + y + z;
}
|};
    };
    {
      name = "two_arm_redundancy";
      description = "both arms compute a+b, the join recomputes: full redundancy at the join";
      inputs = [ "a"; "b"; "p" ];
      source =
        {|
function two_arm_redundancy(a, b, p) {
  if (p > 0) {
    x = a + b;
  } else {
    x = a + b;
  }
  y = a + b;
  return x + y;
}
|};
    };
    {
      name = "loop_with_exit_use";
      description = "value needed both inside the loop and after it";
      inputs = [ "a"; "b"; "n" ];
      source =
        {|
function loop_with_exit_use(a, b, n) {
  s = 0;
  i = 0;
  while (i < n) {
    s = s + (a * b);
    i = i + 1;
  }
  r = a * b;
  return s + r;
}
|};
    };
    {
      name = "deep_branches";
      description = "many join points; exercises LATER propagation over long chains";
      inputs = [ "a"; "b"; "p"; "q"; "r" ];
      source =
        {|
function deep_branches(a, b, p, q, r) {
  s = 0;
  if (p > 0) {
    s = a + b;
  } else {
    s = 1;
  }
  if (q > 0) {
    s = s + (a + b);
  } else {
    s = s + 2;
  }
  if (r > 0) {
    s = s + (a + b);
  } else {
    s = s + 3;
  }
  return s;
}
|};
    };
    {
      name = "do_while_invariant";
      description = "do-while with an invariant: at least one evaluation is always needed";
      inputs = [ "a"; "b"; "n" ];
      source =
        {|
function do_while_invariant(a, b, n) {
  s = 0;
  i = 0;
  do {
    s = s + (a * b);
    i = i + 1;
  } while (i < n);
  return s;
}
|};
    };
    {
      name = "gcd";
      description = "Euclid's algorithm: a loop whose every expression changes per iteration";
      inputs = [ "a"; "b" ];
      source =
        {|
function gcd(a, b) {
  if (a < 0) { a = -a; }
  if (b < 0) { b = -b; }
  while (b != 0) {
    t = a % b;
    a = b;
    b = t;
  }
  return a;
}
|};
    };
    {
      name = "fib";
      description = "iterative Fibonacci: sliding-window updates, nothing movable";
      inputs = [ "n" ];
      source =
        {|
function fib(n) {
  a = 0;
  b = 1;
  i = 0;
  while (i < n) {
    t = a + b;
    a = b;
    b = t;
    i = i + 1;
  }
  return a;
}
|};
    };
    {
      name = "poly_eval";
      description = "Horner evaluation with a recomputed scale factor: movable work inside a do-while";
      inputs = [ "x"; "c0"; "c1"; "c2"; "n" ];
      source =
        {|
function poly_eval(x, c0, c1, c2, n) {
  s = 0;
  i = 0;
  do {
    base = (c2 * x + c1) * x + c0;
    s = s + base;
    i = i + 1;
  } while (i < n);
  return s;
}
|};
    };
    {
      name = "collatz_steps";
      description = "bounded Collatz iteration: data-dependent branching in a loop";
      inputs = [ "n" ];
      source =
        {|
function collatz_steps(n) {
  if (n < 1) { n = 1; }
  steps = 0;
  k = 0;
  while (k < 50) {
    if (n > 1) {
      r = n % 2;
      if (r == 0) {
        n = n / 2;
      } else {
        n = 3 * n + 1;
      }
      steps = steps + 1;
    }
    k = k + 1;
  }
  return steps;
}
|};
    };
    {
      name = "prime_count";
      description = "trial division over a nested loop: invariant bound expressions at two depths";
      inputs = [ "limit" ];
      source =
        {|
function prime_count(limit) {
  count = 0;
  n = 2;
  while (n <= limit) {
    is_prime = 1;
    d = 2;
    while (d * d <= n) {
      if (n % d == 0) {
        is_prime = 0;
      }
      d = d + 1;
    }
    count = count + is_prime;
    n = n + 1;
  }
  return count;
}
|};
    };
  ]

let find name = List.find_opt (fun w -> String.equal w.name name) all

let graph w =
  let g = Lower.parse_and_lower_func w.source in
  fst (Lcm_opt.Lcse.run g)

let envs seed w n =
  let rng = Prng.of_int (seed + Hashtbl.hash w.name) in
  List.init n (fun _ -> List.map (fun v -> (v, Prng.int_in rng 0 8)) w.inputs)

(* Reference Lcse so the module alias above is not flagged as unused when
   [graph] is the only consumer. *)
let _ = Lcse.is_clean
