module Cfg = Lcm_cfg.Cfg
module Loop = Lcm_cfg.Loop
module Instr = Lcm_ir.Instr

type t = {
  static_by_depth : int array;
  dynamic_by_depth : int array option;
}

let candidates_in g l =
  List.length (List.filter (fun i -> Option.is_some (Instr.candidate i)) (Cfg.instrs g l))

let collect ?fuel ?envs ~pool g =
  let loops = Loop.compute g in
  let depth_of l = Loop.depth loops l in
  let deepest = List.fold_left (fun acc l -> max acc (depth_of l)) 0 (Cfg.labels g) in
  let static_by_depth = Array.make (deepest + 1) 0 in
  List.iter
    (fun l ->
      let d = depth_of l in
      static_by_depth.(d) <- static_by_depth.(d) + candidates_in g l)
    (Cfg.labels g);
  let dynamic_by_depth =
    match envs with
    | None -> None
    | Some envs ->
      let acc = Array.make (deepest + 1) 0 in
      let ok =
        List.for_all
          (fun env ->
            let o = Interp.run ?fuel ~pool ~env g in
            if not o.Interp.terminated then false
            else begin
              List.iter
                (fun (l, visits) ->
                  let d = depth_of l in
                  acc.(d) <- acc.(d) + (visits * candidates_in g l))
                o.Interp.block_visits;
              true
            end)
          envs
      in
      if ok then Some acc else None
  in
  { static_by_depth; dynamic_by_depth }

let max_depth t = Array.length t.static_by_depth - 1
