(** Brute-force enumeration of all edge placements of a single expression.

    On tiny graphs whose only candidate expression is one binary operation,
    every subset of flow edges is tried as an insertion set; deletions are
    then maximal (an upwards-exposed computation is deleted whenever the
    expression is available-with-insertions at its entry).  Candidates that
    fail the per-path safety check are discarded.  What remains is the full
    space of admissible code motions the paper quantifies over, so
    computational and lifetime optimality of LCM can be checked against it
    directly. *)

type candidate = {
  insert_edges : (Lcm_cfg.Label.t * Lcm_cfg.Label.t) list;
  transformed : Lcm_cfg.Cfg.t;
  report : Lcm_core.Transform.report;
  safe : bool;  (** per-path counts never exceed the original's *)
}

(** All [2^edges] candidates of [g].  Raises [Invalid_argument] when [g] has
    more than [max_edges] (default 12) edges or more than one candidate
    expression. *)
val enumerate : ?max_edges:int -> ?max_decisions:int -> Lcm_cfg.Cfg.t -> candidate list

(** [check_computational_optimality g ~transformed]: on every path, the
    given transformed graph evaluates at most as many computations as every
    safe candidate. *)
val check_computational_optimality :
  ?max_edges:int -> ?max_decisions:int -> Lcm_cfg.Cfg.t -> transformed:Lcm_cfg.Cfg.t -> (unit, string) result

(** [check_lifetime_optimality g ~transformed ~temps]: among safe candidates
    that are themselves computationally optimal (path-count-equal to
    [transformed]), none has a strictly smaller total temporary lifetime. *)
val check_lifetime_optimality :
  ?max_edges:int ->
  ?max_decisions:int ->
  Lcm_cfg.Cfg.t ->
  transformed:Lcm_cfg.Cfg.t ->
  temps:string list ->
  (unit, string) result
