module Cfg = Lcm_cfg.Cfg
module Lcm_edge = Lcm_core.Lcm_edge
module Bcm_edge = Lcm_core.Bcm_edge
module Lcm_node = Lcm_core.Lcm_node
module Morel_renvoise = Lcm_baselines.Morel_renvoise
module Gcse = Lcm_baselines.Gcse
module Licm = Lcm_baselines.Licm
module Lcse = Lcm_opt.Lcse
module Cleanup = Lcm_opt.Cleanup
module Strength_reduction = Lcm_opt.Strength_reduction

type entry = {
  name : string;
  description : string;
  is_paper_algorithm : bool;
  speculative : bool;
  preserves_expressions : bool;
  run : Cfg.t -> Cfg.t;
}

let plain name description run =
  { name; description; is_paper_algorithm = false; speculative = false; preserves_expressions = true; run }

let paper name description run =
  { name; description; is_paper_algorithm = true; speculative = false; preserves_expressions = true; run }

let all =
  [
    plain "identity" "no transformation" Cfg.copy;
    plain "lcse" "local value numbering with temporaries" (fun g -> fst (Lcse.run g));
    plain "gcse" "global CSE: full redundancies only (AVAIL-based)" (fun g -> fst (Gcse.transform g));
    {
      name = "licm";
      description = "dominator-based loop-invariant code motion (speculative)";
      is_paper_algorithm = false;
      speculative = true;
      preserves_expressions = true;
      run = (fun g -> fst (Licm.transform g));
    };
    {
      name = "strength-reduction";
      description = "loop strength reduction of induction-variable multiplications (speculative)";
      is_paper_algorithm = false;
      speculative = true;
      preserves_expressions = true;
      run = (fun g -> fst (Strength_reduction.run g));
    };
    {
      name = "ssa-dvnt";
      description = "dominator-based value numbering over SSA form";
      is_paper_algorithm = false;
      speculative = false;
      preserves_expressions = false;
      run = (fun g -> fst (Lcm_ssa.Dvnt.pass g));
    };
    plain "morel-renvoise" "Morel-Renvoise 1979 bidirectional PRE" (fun g ->
        fst (Morel_renvoise.transform g));
    paper "bcm-edge" "Busy Code Motion, edge insertions (earliest placement)" (fun g ->
        fst (Bcm_edge.transform g));
    paper "lcm-edge" "Lazy Code Motion, edge insertions (the paper's algorithm, practical form)"
      (fun g -> fst (Lcm_edge.transform g));
    paper "lcm-block" "Lazy Code Motion with entry/exit placements on a pre-split graph (TOPLAS form)"
      (fun g -> fst (Lcm_core.Lcm_block.transform g));
    {
      name = "lcm-cleanup";
      description = "lcm-edge followed by the copy-prop/fold/DCE cleanup pipeline";
      is_paper_algorithm = true;
      speculative = false;
      preserves_expressions = false;
      run = (fun g -> fst (Cleanup.run (fst (Lcm_edge.transform g))));
    };
    {
      name = "lcm-iterated";
      description = "lcm-edge and cleanup repeated: copy propagation exposes value redundancies to the next round";
      is_paper_algorithm = false;
      speculative = false;
      preserves_expressions = false;
      run =
        (fun g ->
          let round h = fst (Cleanup.run (fst (Lcm_edge.transform h))) in
          round (round g));
    };
    paper "bcm-node" "Busy Code Motion, node form of PLDI 1992" (fun g ->
        fst (Lcm_node.transform Lcm_node.Bcm g));
    paper "alcm-node" "Almost-lazy Code Motion (no isolation pruning)" (fun g ->
        fst (Lcm_node.transform Lcm_node.Alcm g));
    paper "lcm-node" "Lazy Code Motion, node form of PLDI 1992" (fun g ->
        fst (Lcm_node.transform Lcm_node.Lcm g));
  ]

let safe = List.filter (fun e -> not e.speculative) all
let paper_algorithms = List.filter (fun e -> e.is_paper_algorithm) all
let find name = List.find_opt (fun e -> String.equal e.name name) all
let names () = List.map (fun e -> e.name) all

let new_temps ~original ~transformed =
  let old_vars = Cfg.all_vars original in
  List.filter (fun v -> not (List.mem v old_vars)) (Cfg.all_vars transformed)
