module Cfg = Lcm_cfg.Cfg
module Pass = Lcm_core.Pass
module Lcm_edge = Lcm_core.Lcm_edge
module Bcm_edge = Lcm_core.Bcm_edge
module Lcm_node = Lcm_core.Lcm_node
module Morel_renvoise = Lcm_baselines.Morel_renvoise
module Gcse = Lcm_baselines.Gcse
module Licm = Lcm_baselines.Licm
module Lcse = Lcm_opt.Lcse
module Cleanup = Lcm_opt.Cleanup
module Strength_reduction = Lcm_opt.Strength_reduction

type entry = {
  name : string;
  description : string;
  is_paper_algorithm : bool;
  speculative : bool;
  preserves_expressions : bool;
  parallelizable : bool;
  pipeline : Pass.Pipeline.t;
  run : Cfg.t -> Cfg.t;
}

(* [run] is always derived from the pipeline (sequential context), so the
   two can never disagree. *)
let make ?(is_paper_algorithm = false) ?(speculative = false) ?(preserves_expressions = true)
    ?(parallelizable = false) name description passes =
  let pipeline = Pass.Pipeline.v name passes in
  {
    name;
    description;
    is_paper_algorithm;
    speculative;
    preserves_expressions;
    parallelizable;
    pipeline;
    run = (fun g -> Pass.Pipeline.run_graph Pass.default_ctx pipeline g);
  }

let plain name description passes = make name description passes
let paper name description passes = make ~is_paper_algorithm:true name description passes

let dvnt_pass =
  Pass.v "ssa-dvnt" (fun _ctx g ->
      let g', s = Lcm_ssa.Dvnt.pass g in
      ( g',
        Pass.report
          ~notes:
            [
              ("exprs_replaced", string_of_int s.Lcm_ssa.Dvnt.exprs_replaced);
              ("phis_simplified", string_of_int s.Lcm_ssa.Dvnt.phis_simplified);
            ]
          () ))

let all =
  [
    plain "identity" "no transformation" [ Pass.of_fn "identity" Cfg.copy ];
    plain "lcse" "local value numbering with temporaries" [ Lcse.pass ];
    plain "gcse" "global CSE: full redundancies only (AVAIL-based)" [ Gcse.pass ];
    make ~speculative:true "licm" "dominator-based loop-invariant code motion (speculative)"
      [ Licm.pass ];
    make ~speculative:true "strength-reduction"
      "loop strength reduction of induction-variable multiplications (speculative)"
      [ Strength_reduction.pass ];
    make ~preserves_expressions:false "ssa-dvnt"
      "dominator-based value numbering over SSA form" [ dvnt_pass ];
    plain "morel-renvoise" "Morel-Renvoise 1979 bidirectional PRE" [ Morel_renvoise.pass ];
    make ~is_paper_algorithm:true ~parallelizable:true "bcm-edge"
      "Busy Code Motion, edge insertions (earliest placement)" [ Bcm_edge.pass ];
    make ~is_paper_algorithm:true ~parallelizable:true "lcm-edge"
      "Lazy Code Motion, edge insertions (the paper's algorithm, practical form)"
      [ Lcm_edge.pass ];
    paper "lcm-block"
      "Lazy Code Motion with entry/exit placements on a pre-split graph (TOPLAS form)"
      [ Lcm_core.Lcm_block.pass ];
    make ~is_paper_algorithm:true ~preserves_expressions:false ~parallelizable:true "lcm-cleanup"
      "lcm-edge followed by the copy-prop/fold/DCE cleanup pipeline"
      [ Lcm_edge.pass; Cleanup.pass ];
    make ~preserves_expressions:false ~parallelizable:true "lcm-iterated"
      "lcm-edge and cleanup repeated: copy propagation exposes value redundancies to the next round"
      [ Lcm_edge.pass; Cleanup.pass; Lcm_edge.pass; Cleanup.pass ];
    paper "bcm-node" "Busy Code Motion, node form of PLDI 1992" [ Lcm_node.pass Lcm_node.Bcm ];
    paper "alcm-node" "Almost-lazy Code Motion (no isolation pruning)"
      [ Lcm_node.pass Lcm_node.Alcm ];
    paper "lcm-node" "Lazy Code Motion, node form of PLDI 1992" [ Lcm_node.pass Lcm_node.Lcm ];
  ]

let safe = List.filter (fun e -> not e.speculative) all
let paper_algorithms = List.filter (fun e -> e.is_paper_algorithm) all
let find name = List.find_opt (fun e -> String.equal e.name name) all
let names () = List.map (fun e -> e.name) all

let new_temps ~original ~transformed =
  let old_vars = Cfg.all_vars original in
  List.filter (fun v -> not (List.mem v old_vars)) (Cfg.all_vars transformed)
