(** Decision-driven abstract execution.

    Classic PRE treats every branch as nondeterministic: the theorems
    quantify over *all* paths of the flow graph, feasible or not.  To check
    them we replay graphs under explicit branch-decision sequences instead
    of concrete data: at each [Branch] the next boolean of the sequence
    picks the successor.  A transformation never adds or removes branches,
    so the same decision sequence identifies "the same path" in the
    original and the transformed graph, and per-path computation counts
    become directly comparable — exactly the quantity in the paper's
    safety and optimality theorems. *)

type result = {
  eval_counts : int array;  (** candidate evaluations per pool index along the path *)
  unknown_evals : int;
      (** candidate evaluations of expressions outside the pool (e.g. after
          a transformation that renamed operands) *)
  blocks : Lcm_cfg.Label.t list;  (** path actually taken *)
  completed : bool;  (** reached the exit with the given decisions *)
}

(** All candidate evaluations of the path: pool-indexed plus unknown. *)
val grand_total : result -> int

(** [replay ~pool g decisions] follows [decisions] from the entry.  The
    path ends when the exit is reached ([completed = true]), when a branch
    needs a decision but the sequence is exhausted, or when [max_steps]
    (default 10_000) block visits happen. *)
val replay : ?max_steps:int -> pool:Lcm_ir.Expr_pool.t -> Lcm_cfg.Cfg.t -> bool list -> result

(** [enumerate g ~max_decisions] lists every decision sequence of length at
    most [max_decisions] that drives the entry to the exit (without
    exhausting [max_steps]).  The result is cut off at [limit] (default
    20_000) sequences. *)
val enumerate :
  ?max_steps:int -> ?limit:int -> Lcm_cfg.Cfg.t -> max_decisions:int -> bool list list

(** [counts_dominate a b] holds when [a] is pointwise [<=] [b] (same
    length). *)
val counts_dominate : int array -> int array -> bool

val total : int array -> int
