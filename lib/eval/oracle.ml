module Prng = Lcm_support.Prng
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr
module Expr_pool = Lcm_ir.Expr_pool

let semantics ?(fuel = 200_000) ?(runs = 30) ~inputs rng ~original ~transformed =
  let pool = Cfg.candidate_pool original in
  let rec go k =
    if k = 0 then Ok ()
    else begin
      let env = List.map (fun v -> (v, Prng.int_in rng (-10) 10)) inputs in
      let a = Interp.run ~fuel ~pool ~env original in
      let b = Interp.run ~fuel ~pool ~env transformed in
      if not (a.Interp.terminated && b.Interp.terminated) then go (k - 1)
      else if not (Interp.same_behaviour a b) then
        Error
          (Format.asprintf "behaviour differs on env [%s]: original %a, transformed %a"
             (String.concat "; " (List.map (fun (v, x) -> Printf.sprintf "%s=%d" v x) env))
             Interp.pp_outcome a Interp.pp_outcome b)
      else go (k - 1)
    end
  in
  go runs

(* Variables read before any write along a concrete block path. *)
let undefined_reads_along g blocks ~inputs =
  let defined = Hashtbl.create 32 in
  List.iter (fun v -> Hashtbl.replace defined v ()) inputs;
  let bad = ref [] in
  let use v = if not (Hashtbl.mem defined v) && not (List.mem v !bad) then bad := v :: !bad in
  List.iter
    (fun l ->
      List.iter
        (fun i ->
          List.iter use (Instr.uses i);
          match Instr.defs i with
          | Some v -> Hashtbl.replace defined v ()
          | None -> ())
        (Cfg.instrs g l);
      match Cfg.term g l with
      | Cfg.Branch (Expr.Var v, _, _) -> use v
      | Cfg.Branch (Expr.Const _, _, _) | Cfg.Goto _ | Cfg.Halt -> ())
    blocks;
  List.rev !bad

let for_all_paths ?(max_decisions = 10) ~original check =
  let seqs = Trace.enumerate original ~max_decisions in
  let rec go = function
    | [] -> Ok ()
    | seq :: rest ->
      (match check seq with
      | Ok () -> go rest
      | Error _ as e -> e)
  in
  go seqs

let no_undefined_temp_reads ?max_decisions ~inputs ~original transformed =
  let pool = Cfg.candidate_pool original in
  for_all_paths ?max_decisions ~original (fun seq ->
      let a = Trace.replay ~pool original seq in
      let b = Trace.replay ~pool transformed seq in
      if not b.Trace.completed then
        Error
          (Printf.sprintf "path [%s] completes on the original but not the transformed graph"
             (String.concat "" (List.map (fun d -> if d then "1" else "0") seq)))
      else begin
        let bad_a = undefined_reads_along original a.Trace.blocks ~inputs in
        let bad_b = undefined_reads_along transformed b.Trace.blocks ~inputs in
        match List.filter (fun v -> not (List.mem v bad_a)) bad_b with
        | [] -> Ok ()
        | extra ->
          Error
            (Printf.sprintf "path [%s]: transformed graph reads undefined %s"
               (String.concat "" (List.map (fun d -> if d then "1" else "0") seq))
               (String.concat ", " extra))
      end)

let safety ?max_decisions ~pool ~original transformed =
  for_all_paths ?max_decisions ~original (fun seq ->
      let a = Trace.replay ~pool original seq in
      let b = Trace.replay ~pool transformed seq in
      if not b.Trace.completed then
        Error (Printf.sprintf "path does not complete on transformed graph (%d decisions)" (List.length seq))
      else if not (Trace.counts_dominate b.Trace.eval_counts a.Trace.eval_counts) then
        Error
          (Format.asprintf "path [%s]: transformed counts %s exceed original %s"
             (String.concat "" (List.map (fun d -> if d then "1" else "0") seq))
             (String.concat "," (Array.to_list (Array.map string_of_int b.Trace.eval_counts)))
             (String.concat "," (Array.to_list (Array.map string_of_int a.Trace.eval_counts))))
      else Ok ())

let computations_leq ?max_decisions ~pool a b =
  for_all_paths ?max_decisions ~original:a (fun seq ->
      let ra = Trace.replay ~pool a seq in
      let rb = Trace.replay ~pool b seq in
      if not (ra.Trace.completed && rb.Trace.completed) then Ok ()
      else begin
        (* Grand totals: a transformation may have renamed operands, taking
           its computations out of the pool's syntactic universe. *)
        let ta = Trace.grand_total ra and tb = Trace.grand_total rb in
        if ta <= tb then Ok ()
        else
          Error
            (Printf.sprintf "path [%s]: left graph evaluates %d computations, right %d"
               (String.concat "" (List.map (fun d -> if d then "1" else "0") seq))
               ta tb)
      end)
