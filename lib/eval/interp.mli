(** Concrete interpreter for control-flow graphs.

    The paper's theorems talk about the number of computations executed on
    program paths; the interpreter makes those numbers measurable.  It runs
    a graph on an initial environment, counting every evaluation of a
    candidate expression, and records everything observable so that
    semantic equivalence of original and transformed graphs can be checked
    exactly.

    Arithmetic is total: division and modulo by zero yield 0, so any
    placement of a computation is trap-free and "safety" means what it
    means in the paper — never executing more computations than the
    original on any path. *)

type outcome = {
  return_value : int option;  (** value of the return variable at exit, when defined *)
  prints : int list;  (** observable output, in order *)
  effects : (string * int list) list;
      (** opaque effects executed, in order: (op, argument values) *)
  eval_counts : int array;  (** per expression index of the supplied pool *)
  unknown_evals : int;  (** candidate evaluations of expressions outside the pool *)
  steps : int;  (** instructions executed *)
  blocks_visited : int;
  block_visits : (Lcm_cfg.Label.t * int) list;  (** visit count per block, label order *)
  undefined_reads : string list;  (** variables read before any write, deduplicated, in first-read order *)
  terminated : bool;  (** reached the exit before the fuel ran out *)
}

(** Total candidate evaluations ([eval_counts] summed plus [unknown_evals]). *)
val total_evals : outcome -> int

(** [run ~pool ~env g] executes [g] from the entry with initial variable
    bindings [env].  [fuel] (default 100_000) bounds executed instructions
    plus block transitions. *)
val run :
  ?fuel:int -> pool:Lcm_ir.Expr_pool.t -> env:(string * int) list -> Lcm_cfg.Cfg.t -> outcome

(** Equality of observable behaviour: return value, prints, effect trace,
    and termination flag. *)
val same_behaviour : outcome -> outcome -> bool

val pp_outcome : Format.formatter -> outcome -> unit
