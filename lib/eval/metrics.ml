module Cfg = Lcm_cfg.Cfg
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr
module Live = Lcm_dataflow.Live
module Bitvec = Lcm_support.Bitvec
module Transform = Lcm_core.Transform

type static_counts = {
  blocks : int;
  instrs : int;
  candidate_occurrences : int;
  copies_and_moves : int;
}

let static_counts g =
  let candidate_occurrences = ref 0 and copies = ref 0 and instrs = ref 0 in
  List.iter
    (fun l ->
      List.iter
        (fun i ->
          incr instrs;
          match i with
          | Instr.Assign (_, e) -> if Expr.is_candidate e then incr candidate_occurrences else incr copies
          | Instr.Print _ | Instr.Effect _ -> ())
        (Cfg.instrs g l))
    (Cfg.labels g);
  {
    blocks = Cfg.num_blocks g;
    instrs = !instrs;
    candidate_occurrences = !candidate_occurrences;
    copies_and_moves = !copies;
  }

let dynamic_evals ?fuel ~pool ~envs g =
  List.fold_left
    (fun acc env ->
      match acc with
      | None -> None
      | Some total ->
        let o = Interp.run ?fuel ~pool ~env g in
        if o.Interp.terminated then Some (total + Interp.total_evals o) else None)
    (Some 0) envs

let temp_lifetime g ~temps =
  let live = Live.compute g in
  List.fold_left (fun acc t -> acc + Live.live_blocks live g t) 0 temps

let max_pressure g =
  let live = Live.compute g in
  List.fold_left
    (fun acc l -> max acc (max (Bitvec.count (live.Live.livein l)) (Bitvec.count (live.Live.liveout l))))
    0 (Cfg.labels g)

let temps_of_report (r : Transform.report) =
  let used = Hashtbl.create 16 in
  let note_set set =
    Bitvec.iter_true (fun idx -> Hashtbl.replace used r.Transform.spec.Transform.temp_names.(idx) ()) set
  in
  List.iter (fun (_, set) -> note_set set) r.Transform.spec.Transform.edge_inserts;
  List.iter (fun (_, set) -> note_set set) r.Transform.spec.Transform.entry_inserts;
  List.iter (fun (_, set) -> note_set set) r.Transform.spec.Transform.exit_inserts;
  List.iter (fun (_, set) -> note_set set) r.Transform.spec.Transform.copies;
  List.sort String.compare (Hashtbl.fold (fun t () acc -> t :: acc) used [])
