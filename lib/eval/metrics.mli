(** Static and dynamic measurements used by the experiment tables. *)

type static_counts = {
  blocks : int;
  instrs : int;
  candidate_occurrences : int;  (** static computations of candidate expressions *)
  copies_and_moves : int;  (** atom-assignments (register moves) *)
}

val static_counts : Lcm_cfg.Cfg.t -> static_counts

(** [dynamic_evals ~pool ~envs g] sums candidate evaluations of interpreter
    runs over the given environments; [None] when some run did not
    terminate. *)
val dynamic_evals :
  ?fuel:int -> pool:Lcm_ir.Expr_pool.t -> envs:(string * int) list list -> Lcm_cfg.Cfg.t -> int option

(** Total temporary lifetime: sum over the given temp variables of the
    number of block boundaries at which they are live.  Smaller is better;
    this is the quantity the paper's lifetime-optimality theorem orders. *)
val temp_lifetime : Lcm_cfg.Cfg.t -> temps:string list -> int

(** Maximum number of simultaneously live variables at any block boundary
    (a coarse register-pressure proxy). *)
val max_pressure : Lcm_cfg.Cfg.t -> int

(** Temps of a transformation report that were actually inserted. *)
val temps_of_report : Lcm_core.Transform.report -> string list
