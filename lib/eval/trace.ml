module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Expr = Lcm_ir.Expr
module Expr_pool = Lcm_ir.Expr_pool
module Instr = Lcm_ir.Instr

type result = {
  eval_counts : int array;
  unknown_evals : int;
  blocks : Label.t list;
  completed : bool;
}

let grand_total r = Array.fold_left ( + ) r.unknown_evals r.eval_counts

let count_block pool counts unknown g l =
  List.iter
    (fun i ->
      match Instr.candidate i with
      | Some e ->
        (match Expr_pool.index pool e with
        | Some idx -> counts.(idx) <- counts.(idx) + 1
        | None -> incr unknown)
      | None -> ())
    (Cfg.instrs g l)

let replay ?(max_steps = 10_000) ~pool g decisions =
  let counts = Array.make (Expr_pool.size pool) 0 in
  let unknown = ref 0 in
  let rec go l decisions visited path =
    let path = l :: path in
    if visited > max_steps then (List.rev path, false)
    else begin
      count_block pool counts unknown g l;
      match Cfg.term g l with
      | Cfg.Halt -> (List.rev path, true)
      | Cfg.Goto m -> go m decisions (visited + 1) path
      | Cfg.Branch (_, a, b) ->
        if Label.equal a b then go a decisions (visited + 1) path
        else begin
          match decisions with
          | [] -> (List.rev path, false)
          | d :: rest -> go (if d then a else b) rest (visited + 1) path
        end
    end
  in
  let blocks, completed = go (Cfg.entry g) decisions 0 [] in
  { eval_counts = counts; unknown_evals = !unknown; blocks; completed }

let enumerate ?(max_steps = 10_000) ?(limit = 20_000) g ~max_decisions =
  let results = ref [] in
  let count = ref 0 in
  (* DFS over decision prefixes: extend the prefix only when execution
     actually consumes a decision. *)
  let rec go l taken_rev remaining visited =
    if !count < limit && visited <= max_steps then begin
      match Cfg.term g l with
      | Cfg.Halt ->
        incr count;
        results := List.rev taken_rev :: !results
      | Cfg.Goto m -> go m taken_rev remaining (visited + 1)
      | Cfg.Branch (_, a, b) ->
        if Label.equal a b then go a taken_rev remaining (visited + 1)
        else if remaining > 0 then begin
          go a (true :: taken_rev) (remaining - 1) (visited + 1);
          go b (false :: taken_rev) (remaining - 1) (visited + 1)
        end
    end
  in
  go (Cfg.entry g) [] max_decisions 0;
  List.rev !results

let counts_dominate a b =
  assert (Array.length a = Array.length b);
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let total = Array.fold_left ( + ) 0
