module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr

type stats = {
  phis_lowered : int;
  copies_inserted : int;
  cycles_broken : int;
}

let fresh_var f = Lcm_support.Fresh.mint f

(* Sequentialize a parallel copy (all sources read simultaneously).  Emit
   a copy whose target no other pending copy still needs as a source;
   break cycles by saving one target into a temporary. *)
let sequentialize fresh cycles pending =
  let emitted = ref [] in
  let emit d s = emitted := Instr.Assign (d, Expr.Atom s) :: !emitted in
  let pending = ref pending in
  let uses_as_source v =
    List.exists (fun (_, s) -> match s with Expr.Var w -> String.equal w v | Expr.Const _ -> false) !pending
  in
  while !pending <> [] do
    match List.partition (fun (d, _) -> not (uses_as_source d)) !pending with
    | (d, s) :: ready_rest, blocked ->
      emit d s;
      pending := ready_rest @ blocked;
      (* Drop the emitted copy only; [partition] already removed it from
         ready_rest. *)
      ()
    | [], (d, s) :: rest ->
      (* Every pending target is still needed as a source: a cycle.  Save
         [d]'s old value and redirect its readers to the snapshot. *)
      incr cycles;
      let t = fresh_var fresh in
      emit t (Expr.Var d);
      let redirect (d', s') =
        match s' with
        | Expr.Var w when String.equal w d -> (d', Expr.Var t)
        | Expr.Var _ | Expr.Const _ -> (d', s')
      in
      pending := List.map redirect ((d, s) :: rest)
    | [], [] -> assert false
  done;
  List.rev !emitted

let run ssa =
  let g = Cfg.copy (Ssa.graph ssa) in
  let fresh = Lcm_support.Fresh.create ~existing:(Cfg.all_vars g) "_p" in
  let phis_lowered = ref 0 and copies = ref 0 and cycles = ref 0 in
  List.iter
    (fun j ->
      let ps = Ssa.phis ssa j in
      if ps <> [] then begin
        phis_lowered := !phis_lowered + List.length ps;
        List.iter
          (fun p ->
            (* The parallel copy this predecessor must perform. *)
            let parallel =
              List.filter_map
                (fun (phi : Ssa.phi) ->
                  match List.assoc_opt p phi.args with
                  | Some (Expr.Var s) when String.equal s phi.target -> None
                  | Some a -> Some (phi.target, a)
                  | None -> None)
                ps
            in
            if parallel <> [] then begin
              (* If the predecessor's branch condition is one of the copy
                 targets, snapshot it first. *)
              (match Cfg.term g p with
              | Cfg.Branch (Expr.Var c, x, y)
                when List.exists (fun (d, _) -> String.equal d c) parallel ->
                let t = fresh_var fresh in
                Cfg.append_instr g p (Instr.Assign (t, Expr.Atom (Expr.Var c)));
                Cfg.set_term g p (Cfg.Branch (Expr.Var t, x, y))
              | Cfg.Branch _ | Cfg.Goto _ | Cfg.Halt -> ());
              let seq = sequentialize fresh cycles parallel in
              copies := !copies + List.length seq;
              Cfg.set_instrs g p (Cfg.instrs g p @ seq)
            end)
          (Cfg.predecessors g j)
      end)
    (Cfg.labels g);
  Lcm_cfg.Validate.check_exn g;
  (g, { phis_lowered = !phis_lowered; copies_inserted = !copies; cycles_broken = !cycles })
