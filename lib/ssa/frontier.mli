(** Dominance frontiers (Cooper–Harvey–Kennedy).

    [DF(b)] is the set of blocks [j] such that [b] dominates a predecessor
    of [j] but does not strictly dominate [j] — exactly the places where a
    definition in [b] meets other definitions, i.e. where SSA construction
    places phi functions. *)

type t

val compute : Lcm_cfg.Cfg.t -> t

(** The frontier of a block (empty for unreachable blocks). *)
val frontier : t -> Lcm_cfg.Label.t -> Lcm_cfg.Label.t list

(** Iterated dominance frontier of a set of blocks. *)
val iterated : t -> Lcm_cfg.Label.t list -> Lcm_cfg.Label.Set.t
