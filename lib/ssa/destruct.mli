(** Out-of-SSA translation.

    Lowers each phi function into ordinary copies at the end of the
    predecessors.  Because {!Ssa.of_cfg} split all critical edges, each
    predecessor of a phi block has that block as its only successor, so
    the copies affect no other path.

    The copies of one predecessor form a *parallel* copy (all sources are
    read before any target is written); they are sequentialized
    topologically, with cycles (the classic swap problem) broken by a
    fresh temporary.  A predecessor whose branch condition is itself a phi
    target is also handled by snapshotting the condition first. *)

type stats = {
  phis_lowered : int;
  copies_inserted : int;
  cycles_broken : int;
}

(** [run ssa] produces an ordinary (phi-free) graph computing the same
    function. *)
val run : Ssa.t -> Lcm_cfg.Cfg.t * stats
