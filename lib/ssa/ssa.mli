(** Static single assignment form.

    SSA construction over this library's CFGs: critical edges are split,
    phi functions are placed at the iterated dominance frontier of each
    variable's definition sites, and a dominator-tree walk renames every
    definition to a unique version.  Version 0 of a variable keeps its
    original name, so function inputs stay bindable by the interpreter;
    the lowered return variable receives a copy of its final version at
    the exit block, so observable behaviour is preserved end to end.

    Phi functions live in a side table (the {!Lcm_cfg.Cfg.t} instruction
    set has no phi former); {!Destruct} lowers them back to copies.  The
    follow-up literature recasts the paper's algorithm in SSA form, and
    {!Dvnt} uses this substrate for a dominator-scoped value-numbering
    baseline. *)

type phi = {
  orig : string;  (** the pre-SSA variable this phi merges *)
  target : string;  (** the version defined by the phi *)
  args : (Lcm_cfg.Label.t * Lcm_ir.Expr.operand) list;
      (** one entry per predecessor of the block *)
}

type t

(** [of_cfg g] builds SSA form from a copy of [g] (critical edges are
    split first; [g] itself is untouched). *)
val of_cfg : Lcm_cfg.Cfg.t -> t

(** The phi-free instruction graph, reading and writing SSA names. *)
val graph : t -> Lcm_cfg.Cfg.t

(** Phi functions at a block's entry (empty for most blocks). *)
val phis : t -> Lcm_cfg.Label.t -> phi list

(** Blocks that carry phis. *)
val phi_blocks : t -> Lcm_cfg.Label.t list

(** Total number of phi functions. *)
val num_phis : t -> int

(** Replace the phis of a block (used by optimisations on SSA form). *)
val set_phis : t -> Lcm_cfg.Label.t -> phi list -> unit

(** A deep copy. *)
val copy : t -> t

(** Structural SSA sanity: every variable has at most one definition
    (counting phi targets), phi argument lists match the block's
    predecessors exactly, and the underlying graph validates. *)
val check : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
