(** Dominator-based value numbering on SSA form (Briggs–Cooper–Simpson).

    Walks the dominator tree with a scoped table mapping value-numbered
    expressions to the SSA name that already holds them: a computation
    dominated by an equivalent one becomes a copy, copies and meaningless
    phis (all arguments equal) are forwarded, and successor phi arguments
    are canonicalized on the way.

    As a redundancy eliminator this sits strictly between local value
    numbering and PRE: it sees across blocks, but only along the dominator
    tree — the diamond's partially redundant computation is out of reach,
    which is exactly the gap the paper's algorithm closes.  Used as an
    additional baseline in the experiments. *)

type stats = {
  exprs_replaced : int;  (** computations rewritten to copies *)
  phis_simplified : int;  (** meaningless phis turned into copies *)
  copies_forwarded : int;  (** operand uses redirected to value representatives *)
}

(** [run ssa] value-numbers a copy of [ssa]. *)
val run : Ssa.t -> Ssa.t * stats

(** [pass g] is the complete pipeline: to SSA, value-number, out of SSA. *)
val pass : Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * stats
