module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Dom = Lcm_cfg.Dom

type t = { table : (Label.t, Label.Set.t) Hashtbl.t }

let compute g =
  let dom = Dom.compute g in
  let table = Hashtbl.create 64 in
  let add b j =
    let cur = Option.value ~default:Label.Set.empty (Hashtbl.find_opt table b) in
    Hashtbl.replace table b (Label.Set.add j cur)
  in
  List.iter
    (fun j ->
      let preds = Cfg.predecessors g j in
      if List.length preds >= 2 then
        List.iter
          (fun p ->
            match Dom.idom dom j with
            | None -> ()
            | Some idom_j ->
              (* Walk up the dominator tree from the predecessor until the
                 join's immediate dominator; every block on the way has j
                 in its frontier.  idom(j) dominates every predecessor of
                 j, so the walk terminates there (or at the entry for
                 unreachable predecessors). *)
              let rec walk runner =
                if not (Label.equal runner idom_j) then begin
                  add runner j;
                  match Dom.idom dom runner with
                  | Some up -> walk up
                  | None -> ()
                end
              in
              walk p)
          preds)
    (Cfg.labels g);
  { table }

let frontier t b =
  match Hashtbl.find_opt t.table b with
  | Some s -> Label.Set.elements s
  | None -> []

let iterated t seeds =
  let result = ref Label.Set.empty in
  let work = Queue.create () in
  List.iter (fun b -> Queue.add b work) seeds;
  while not (Queue.is_empty work) do
    let b = Queue.pop work in
    List.iter
      (fun j ->
        if not (Label.Set.mem j !result) then begin
          result := Label.Set.add j !result;
          Queue.add j work
        end)
      (frontier t b)
  done;
  !result
