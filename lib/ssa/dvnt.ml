module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Dom = Lcm_cfg.Dom
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr

type stats = {
  exprs_replaced : int;
  phis_simplified : int;
  copies_forwarded : int;
}

(* A dominator-scoped table: additions are journaled so a subtree's
   entries can be rolled back when the walk leaves it. *)
type 'v scoped = {
  table : (string, 'v) Hashtbl.t;
  mutable journal : (string * 'v option) list list;
}

let scoped () = { table = Hashtbl.create 64; journal = [] }

let enter s = s.journal <- [] :: s.journal

let record s key =
  match s.journal with
  | frame :: rest -> s.journal <- ((key, Hashtbl.find_opt s.table key) :: frame) :: rest
  | [] -> assert false

let set s key value =
  record s key;
  Hashtbl.replace s.table key value

let leave s =
  match s.journal with
  | frame :: rest ->
    List.iter
      (fun (key, previous) ->
        match previous with
        | Some v -> Hashtbl.replace s.table key v
        | None -> Hashtbl.remove s.table key)
      frame;
    s.journal <- rest
  | [] -> assert false

let expr_key e = Format.asprintf "%a" Expr.pp (Expr.canonical e)

let run ssa =
  let ssa = Ssa.copy ssa in
  let g = Ssa.graph ssa in
  let dom = Dom.compute g in
  let order = Lcm_cfg.Order.compute g in
  (* Visit dominator-tree children in reverse postorder: a join is then
     processed after its forward predecessors, whose phi-argument
     canonicalizations it depends on. *)
  let children l =
    let rank c = Option.value ~default:max_int (Lcm_cfg.Order.rpo_index order c) in
    List.sort (fun a b -> compare (rank a) (rank b)) (Dom.children dom l)
  in
  (* value.(v) = the name that canonically holds v's value. *)
  let value : string scoped = scoped () in
  (* exprs.(key) = the name holding that computed value. *)
  let exprs : string scoped = scoped () in
  let stats = ref { exprs_replaced = 0; phis_simplified = 0; copies_forwarded = 0 } in
  let bump f = stats := f !stats in
  let canon_var v = Option.value ~default:v (Hashtbl.find_opt value.table v) in
  let canon_operand op =
    match op with
    | Expr.Var v ->
      let v' = canon_var v in
      if not (String.equal v v') then bump (fun s -> { s with copies_forwarded = s.copies_forwarded + 1 });
      Expr.Var v'
    | Expr.Const _ -> op
  in
  let canon_rhs = function
    | Expr.Atom a -> Expr.Atom (canon_operand a)
    | Expr.Unary (op, a) -> Expr.Unary (op, canon_operand a)
    | Expr.Binary (op, a, b) -> Expr.Binary (op, canon_operand a, canon_operand b)
  in
  let rec walk l =
    enter value;
    enter exprs;
    (* Phis: canonicalize nothing on entry (arguments were canonicalized
       when the predecessors were visited); detect meaningless phis. *)
    let kept_phis =
      List.filter_map
        (fun (p : Ssa.phi) ->
          let arg_values =
            List.map
              (fun (_, a) -> match a with Expr.Var v -> Expr.Var (canon_var v) | Expr.Const _ -> a)
              p.args
          in
          match arg_values with
          | first :: rest when List.for_all (fun a -> a = first) rest ->
            (* All arguments agree: the phi is a copy of that value. *)
            bump (fun s -> { s with phis_simplified = s.phis_simplified + 1 });
            (* The target keeps an explicit head copy (inserted below) so
               the name stays defined; record its value representative. *)
            (match first with
            | Expr.Var v -> set value p.target (canon_var v)
            | Expr.Const _ -> ());
            None
          | _ ->
            set value p.target p.target;
            Some p)
        (Ssa.phis ssa l)
    in
    (* Re-materialize dropped phis as copies at the block head. *)
    let dropped =
      List.filter (fun (p : Ssa.phi) -> not (List.exists (fun (q : Ssa.phi) -> q.target = p.target) kept_phis))
        (Ssa.phis ssa l)
    in
    let head_copies =
      List.map
        (fun (p : Ssa.phi) ->
          let a =
            match p.args with
            | (_, Expr.Const c) :: _ -> Expr.Const c
            | (_, Expr.Var v) :: _ -> Expr.Var (canon_var v)
            | [] -> assert false
          in
          Instr.Assign (p.target, Expr.Atom a))
        dropped
    in
    Ssa.set_phis ssa l kept_phis;
    let body =
      List.map
        (fun i ->
          match i with
          | Instr.Assign (v, e) ->
            let e' = canon_rhs e in
            (match e' with
            | Expr.Atom (Expr.Var w) ->
              (* A copy: v's value is w's value. *)
              set value v (canon_var w);
              Instr.Assign (v, e')
            | Expr.Atom (Expr.Const _) ->
              set value v v;
              Instr.Assign (v, e')
            | Expr.Unary _ | Expr.Binary _ ->
              let key = expr_key e' in
              (match Hashtbl.find_opt exprs.table key with
              | Some holder ->
                bump (fun s -> { s with exprs_replaced = s.exprs_replaced + 1 });
                set value v holder;
                Instr.Assign (v, Expr.Atom (Expr.Var holder))
              | None ->
                set exprs key v;
                set value v v;
                Instr.Assign (v, e')))
          | Instr.Print a -> Instr.Print (canon_operand a)
          | Instr.Effect e ->
            (* Opaque: canonicalize the operands it reads; its destination
               is a fresh opaque value, never merged with any expression. *)
            (match e.Instr.eff_dest with
            | Some (v, _) -> set value v v
            | None -> ());
            Instr.Effect { e with Instr.eff_args = List.map canon_operand e.Instr.eff_args })
        (Cfg.instrs g l)
    in
    Cfg.set_instrs g l (head_copies @ body);
    (match Cfg.term g l with
    | Cfg.Branch (c, a, b) -> Cfg.set_term g l (Cfg.Branch (canon_operand c, a, b))
    | Cfg.Goto _ | Cfg.Halt -> ());
    (* Canonicalize the phi arguments this block supplies. *)
    List.iter
      (fun s ->
        let updated =
          List.map
            (fun (p : Ssa.phi) ->
              {
                p with
                args =
                  List.map
                    (fun (pr, a) ->
                      if Label.equal pr l then
                        (pr, match a with Expr.Var v -> Expr.Var (canon_var v) | Expr.Const _ -> a)
                      else (pr, a))
                    p.args;
              })
            (Ssa.phis ssa s)
        in
        Ssa.set_phis ssa s updated)
      (Cfg.successors g l);
    List.iter walk (children l);
    leave value;
    leave exprs
  in
  walk (Cfg.entry g);
  (ssa, !stats)

let pass g =
  let ssa = Ssa.of_cfg g in
  let ssa', stats = run ssa in
  let out, _ = Destruct.run ssa' in
  (out, stats)
