module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Dom = Lcm_cfg.Dom
module Edge_split = Lcm_cfg.Edge_split
module Lower = Lcm_cfg.Lower
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr

type phi = {
  orig : string;
  target : string;
  args : (Label.t * Expr.operand) list;
}

type t = {
  graph : Cfg.t;
  phi_table : (Label.t, phi list) Hashtbl.t;
  version_sep : string;
}

let graph t = t.graph
let phis t l = Option.value ~default:[] (Hashtbl.find_opt t.phi_table l)

let phi_blocks t =
  List.filter (fun l -> phis t l <> []) (Cfg.labels t.graph)

let num_phis t = List.fold_left (fun acc l -> acc + List.length (phis t l)) 0 (phi_blocks t)

let set_phis t l ps =
  if ps = [] then Hashtbl.remove t.phi_table l else Hashtbl.replace t.phi_table l ps

let copy t =
  let phi_table = Hashtbl.copy t.phi_table in
  { graph = Cfg.copy t.graph; phi_table; version_sep = t.version_sep }

(* A separator that is a substring of no existing variable name, so
   versioned names can never collide with program variables or each
   other. *)
let choose_separator vars =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let rec search k =
    let sep = Printf.sprintf "_v%d_" k in
    if List.exists (fun v -> contains v sep) vars then search (k + 1) else sep
  in
  search 0

(* ---- construction ---- *)

(* Mutable phi cell used during renaming. *)
type phi_cell = {
  p_orig : string;
  mutable p_target : string;
  mutable p_args : (Label.t * Expr.operand) list;  (* accumulated in any order *)
}

let of_cfg original =
  let g = Edge_split.split_critical_edges original in
  let dom = Dom.compute g in
  let frontier = Frontier.compute g in
  let vars = Cfg.all_vars g in
  let sep = choose_separator vars in
  (* Pruned SSA: a phi for [v] is only useful where [v] is live — a dead
     phi would materialize as copies reading values (possibly undefined
     ones) the original program never read. *)
  let live = Lcm_dataflow.Live.compute g in
  let live_in j v =
    match Lcm_dataflow.Var_pool.index live.Lcm_dataflow.Live.vars v with
    | Some idx -> Lcm_support.Bitvec.get (live.Lcm_dataflow.Live.livein j) idx
    | None -> false
  in
  (* Definition sites per variable. *)
  let def_blocks = Hashtbl.create 32 in
  List.iter
    (fun l ->
      List.iter
        (fun i ->
          match Instr.defs i with
          | Some v ->
            let cur = Option.value ~default:Label.Set.empty (Hashtbl.find_opt def_blocks v) in
            Hashtbl.replace def_blocks v (Label.Set.add l cur)
          | None -> ())
        (Cfg.instrs g l))
    (Cfg.labels g);
  (* Phi placement: iterated dominance frontier of the definition sites. *)
  let cells : (Label.t, phi_cell list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun v ->
      match Hashtbl.find_opt def_blocks v with
      | None -> ()
      | Some sites ->
        let joins = Frontier.iterated frontier (Label.Set.elements sites) in
        Label.Set.iter
          (fun j ->
            (* Only joins matter; a frontier block with a single
               predecessor (the exit fed by one return site) merges
               nothing. *)
            if List.length (Cfg.predecessors g j) >= 2 && live_in j v then begin
              let existing = Option.value ~default:[] (Hashtbl.find_opt cells j) in
              Hashtbl.replace cells j ({ p_orig = v; p_target = v; p_args = [] } :: existing)
            end)
          joins)
    vars;
  (* Renaming. *)
  let counter : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let stacks : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  let current v =
    match Hashtbl.find_opt stacks v with
    | Some (top :: _) -> top
    | Some [] | None -> v (* version 0: the entry value keeps the original name *)
  in
  let push v =
    let k = Option.value ~default:0 (Hashtbl.find_opt counter v) + 1 in
    Hashtbl.replace counter v k;
    let name = Printf.sprintf "%s%s%d" v sep k in
    Hashtbl.replace stacks v (name :: Option.value ~default:[] (Hashtbl.find_opt stacks v));
    name
  in
  let pop v =
    match Hashtbl.find_opt stacks v with
    | Some (_ :: rest) -> Hashtbl.replace stacks v rest
    | Some [] | None -> assert false
  in
  let rename_operand = function
    | Expr.Var v -> Expr.Var (current v)
    | Expr.Const _ as c -> c
  in
  let rename_rhs = function
    | Expr.Atom a -> Expr.Atom (rename_operand a)
    | Expr.Unary (op, a) -> Expr.Unary (op, rename_operand a)
    | Expr.Binary (op, a, b) -> Expr.Binary (op, rename_operand a, rename_operand b)
  in
  let keep_at_exit =
    if List.mem Lower.return_var vars then [ Lower.return_var ] else []
  in
  let rec walk l =
    let pushed = ref [] in
    (* 1. phi targets define new versions at the block's entry. *)
    List.iter
      (fun cell ->
        cell.p_target <- push cell.p_orig;
        pushed := cell.p_orig :: !pushed)
      (Option.value ~default:[] (Hashtbl.find_opt cells l));
    (* 2. body. *)
    let instrs' =
      List.map
        (fun i ->
          match i with
          | Instr.Assign (v, e) ->
            let e' = rename_rhs e in
            let v' = push v in
            pushed := v :: !pushed;
            Instr.Assign (v', e')
          | Instr.Print a -> Instr.Print (rename_operand a)
          | Instr.Effect e ->
            (* Operands read the incoming versions; the destination (if
               any) starts a fresh version like any other definition. *)
            let args' = List.map rename_operand e.Instr.eff_args in
            let dest' =
              Option.map
                (fun (v, ty) ->
                  let v' = push v in
                  pushed := v :: !pushed;
                  (v', ty))
                e.Instr.eff_dest
            in
            Instr.Effect { e with Instr.eff_args = args'; eff_dest = dest' })
        (Cfg.instrs g l)
    in
    let instrs' =
      if Label.equal l (Cfg.exit_label g) then
        (* Restore the observable name of the return value. *)
        instrs'
        @ List.filter_map
            (fun v ->
              let cur = current v in
              if String.equal cur v then None else Some (Instr.Assign (v, Expr.Atom (Expr.Var cur))))
            keep_at_exit
      else instrs'
    in
    Cfg.set_instrs g l instrs';
    (* 3. terminator condition. *)
    (match Cfg.term g l with
    | Cfg.Branch (c, a, b) -> Cfg.set_term g l (Cfg.Branch (rename_operand c, a, b))
    | Cfg.Goto _ | Cfg.Halt -> ());
    (* 4. feed successor phis with the versions at this block's end. *)
    List.iter
      (fun s ->
        List.iter
          (fun cell -> cell.p_args <- (l, Expr.Var (current cell.p_orig)) :: cell.p_args)
          (Option.value ~default:[] (Hashtbl.find_opt cells s)))
      (Cfg.successors g l);
    (* 5. recurse over the dominator tree, then roll back. *)
    List.iter walk (Dom.children dom l);
    List.iter pop !pushed
  in
  walk (Cfg.entry g);
  (* Freeze the cells, ordering arguments by predecessor order. *)
  let phi_table = Hashtbl.create 16 in
  Hashtbl.iter
    (fun l cell_list ->
      let preds = Cfg.predecessors g l in
      let freeze cell =
        {
          orig = cell.p_orig;
          target = cell.p_target;
          args =
            List.map
              (fun p ->
                match List.assoc_opt p cell.p_args with
                | Some a -> (p, a)
                | None ->
                  (* Unreachable predecessor: the value never flows; use
                     version 0. *)
                  (p, Expr.Var cell.p_orig))
              preds;
        }
      in
      Hashtbl.replace phi_table l
        (List.sort (fun a b -> String.compare a.orig b.orig) (List.map freeze cell_list)))
    cells;
  { graph = g; phi_table; version_sep = sep }

(* ---- validation ---- *)

let check t =
  let g = t.graph in
  let errors = ref [] in
  let report fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  (match Lcm_cfg.Validate.check g with
  | [] -> ()
  | issues -> List.iter (fun i -> report "graph: %s" i) issues);
  let defs = Hashtbl.create 64 in
  let define what v =
    match Hashtbl.find_opt defs v with
    | Some prev -> report "%s defines %s, already defined by %s" what v prev
    | None -> Hashtbl.replace defs v what
  in
  List.iter
    (fun l ->
      List.iter (fun p -> define (Printf.sprintf "phi in %s" (Label.to_string l)) p.target) (phis t l);
      List.iteri
        (fun k i ->
          match Instr.defs i with
          | Some v -> define (Printf.sprintf "instr %d of %s" k (Label.to_string l)) v
          | None -> ())
        (Cfg.instrs g l))
    (Cfg.labels g);
  List.iter
    (fun l ->
      let preds = Cfg.predecessors g l in
      List.iter
        (fun p ->
          if List.map fst p.args <> preds then
            report "phi for %s in %s: arguments do not match predecessors" p.orig (Label.to_string l))
        (phis t l))
    (Cfg.labels g);
  match List.rev !errors with
  | [] -> Ok ()
  | errs -> Error (String.concat "; " errs)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun l ->
      Format.fprintf ppf "%a:@," Label.pp l;
      List.iter
        (fun p ->
          Format.fprintf ppf "  %s = phi(%s)@," p.target
            (String.concat ", "
               (List.map
                  (fun (pr, a) -> Format.asprintf "%a: %a" Label.pp pr Expr.pp_operand a)
                  p.args)))
        (phis t l);
      List.iter (fun i -> Format.fprintf ppf "  %a@," Instr.pp i) (Cfg.instrs t.graph l);
      Format.fprintf ppf "  %a@," Cfg.pp_terminator (Cfg.term t.graph l))
    (Cfg.labels t.graph);
  Format.fprintf ppf "@]"
