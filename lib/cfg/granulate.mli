(** Splitting blocks into single-instruction nodes.

    The PLDI 1992 formulation of Lazy Code Motion works on flow graphs whose
    nodes are individual statements; this pass rewrites any block CFG into
    that shape (every block carries at most one instruction) so the faithful
    node-based algorithm can run on arbitrary inputs. *)

(** [run g] is a fresh graph computing the same function as [g] in which
    every block holds at most one instruction.  Block [l] of [g] becomes a
    chain of blocks in the result whose first block is again labeled
    compatibly with [g]'s successor structure. *)
val run : Cfg.t -> Cfg.t

(** [is_granular g] holds when every block has at most one instruction. *)
val is_granular : Cfg.t -> bool
