exception Error of string

let err fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type edit =
  | Set_instrs of Label.t * Lcm_ir.Instr.t list
  | Set_term of Label.t * Cfg.terminator
  | Add_block of Lcm_ir.Instr.t list * Cfg.terminator

let check_block g l what = if not (Cfg.mem g l) then err "%s names unknown block B%d" what l

let check_term g l term =
  (match term with
  | Cfg.Halt when not (Label.equal l (Cfg.exit_label g)) -> err "only the exit block B1 may halt"
  | _ -> ());
  let targets =
    match term with
    | Cfg.Goto m -> [ m ]
    | Cfg.Branch (_, a, b) -> [ a; b ]
    | Cfg.Halt -> []
  in
  List.iter (fun t -> check_block g t "terminator") targets

let apply g edits =
  let dirty = ref [] in
  let push l = dirty := l :: !dirty in
  List.iter
    (fun edit ->
      match edit with
      | Set_instrs (l, instrs) ->
        check_block g l "set_instrs";
        Cfg.set_instrs g l instrs;
        push l
      | Set_term (l, term) ->
        check_block g l "set_term";
        check_term g l term;
        (* Both fringes are dirty: old successors lost a predecessor, new
           ones gained one — either way their meet inputs changed. *)
        List.iter push (Cfg.successors g l);
        Cfg.set_term g l term;
        push l;
        List.iter push (Cfg.successors g l)
      | Add_block (instrs, term) ->
        let l = Cfg.label_bound g in
        check_term g l term;
        let l' = Cfg.add_block g ~instrs ~term in
        assert (Label.equal l l');
        push l';
        List.iter push (Cfg.successors g l'))
    edits;
  (match Validate.check g with
  | [] -> ()
  | issues -> err "patched graph invalid: %s" (String.concat "; " issues));
  List.sort_uniq compare !dirty
