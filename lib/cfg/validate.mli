(** Structural well-formedness checks for control-flow graphs.

    Run after construction and after every transformation in tests; a
    transformation that silently corrupts the graph is caught here rather
    than as a mysterious wrong answer downstream. *)

type issue = string

(** All structural problems found, empty when well-formed:
    - every terminator target names a live block;
    - only the exit block halts, and the exit block halts;
    - the entry block has no predecessors;
    - every live block is reachable from the entry (exit excepted:
      an infinite loop legitimately strands it);
    - branch conditions are atoms (guaranteed by the types, but conditions
      must reference defined variables: checked approximately as
      "some instruction or parameter may define them", omitted here). *)
val check : Cfg.t -> issue list

(** Raises [Failure] listing the issues when [check] is non-empty. *)
val check_exn : Cfg.t -> unit
