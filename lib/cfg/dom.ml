(* Cooper, Harvey & Kennedy, "A Simple, Fast Dominance Algorithm" (2001):
   iterate intersection of predecessor dominators over reverse postorder
   until fixpoint, representing idoms as RPO indices. *)

type t = {
  order : Order.t;
  entry : Label.t;
  idom : (Label.t, Label.t) Hashtbl.t;  (* entry maps to itself *)
  kids : (Label.t, Label.t list) Hashtbl.t;
}

let compute g =
  let order = Order.compute g in
  let rpo = Array.of_list (Order.reverse_postorder order) in
  let n = Array.length rpo in
  let index l = Order.rpo_index order l in
  let doms = Array.make n (-1) in
  doms.(0) <- 0;
  let rec intersect a b =
    if a = b then a
    else if a > b then intersect doms.(a) b
    else intersect a doms.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 1 to n - 1 do
      let preds = List.filter_map index (Cfg.predecessors g rpo.(i)) in
      let processed = List.filter (fun p -> doms.(p) >= 0) preds in
      match processed with
      | [] -> ()
      | first :: rest ->
        let new_idom = List.fold_left (fun acc p -> intersect acc p) first rest in
        if doms.(i) <> new_idom then begin
          doms.(i) <- new_idom;
          changed := true
        end
    done
  done;
  let idom = Hashtbl.create n and kids = Hashtbl.create n in
  for i = 0 to n - 1 do
    if doms.(i) >= 0 then begin
      let parent = rpo.(doms.(i)) in
      Hashtbl.replace idom rpo.(i) parent;
      if i > 0 then begin
        let siblings = Option.value ~default:[] (Hashtbl.find_opt kids parent) in
        Hashtbl.replace kids parent (rpo.(i) :: siblings)
      end
    end
  done;
  { order; entry = Cfg.entry g; idom; kids }

let idom t l =
  if Label.equal l t.entry then None
  else Hashtbl.find_opt t.idom l

let dominates t a b =
  if not (Order.is_reachable t.order a && Order.is_reachable t.order b) then false
  else begin
    let rec climb x = Label.equal x a || ((not (Label.equal x t.entry)) && climb (Hashtbl.find t.idom x)) in
    climb b
  end

let children t l = Option.value ~default:[] (Hashtbl.find_opt t.kids l)

let dominated_by t l =
  let rec collect l acc = List.fold_left (fun acc c -> collect c acc) (l :: acc) (children t l) in
  if Order.is_reachable t.order l then collect l [] else []
