(** Lowering MiniImp abstract syntax into control-flow graphs.

    Nested expressions are flattened into single-operator instructions with
    fresh temporaries (so every computation is a [v := e] as the paper
    assumes), and structured control flow becomes explicit blocks and
    branches.  Branch conditions are always atoms after lowering. *)

(** The variable that receives [return] values; read at the exit block. *)
val return_var : string

(** Lower one function.  The resulting graph is validated and has
    unreachable blocks removed. *)
val func : Lcm_ir.Ast.func -> Cfg.t

(** Lower every function of a program. *)
val program : Lcm_ir.Ast.program -> (string * Cfg.t) list

(** [parse_and_lower_func src] is [func] of [Lcm_ir.Parser.parse_func]. *)
val parse_and_lower_func : string -> Cfg.t

(** Lower every function of a source string. *)
val parse_and_lower : string -> (string * Cfg.t) list
