type issue = string

let check g =
  let issues = ref [] in
  let report fmt = Format.kasprintf (fun s -> issues := s :: !issues) fmt in
  let labels = Cfg.labels g in
  (match labels with
  | first :: _ when Label.equal first (Cfg.entry g) -> ()
  | _ -> report "entry block is not first in label order");
  List.iter
    (fun l ->
      List.iter
        (fun dst ->
          if not (Cfg.mem g dst) then report "%a targets dead label %a" Label.pp l Label.pp dst)
        (Cfg.successors g l);
      match Cfg.term g l with
      | Cfg.Halt ->
        if not (Label.equal l (Cfg.exit_label g)) then report "non-exit block %a halts" Label.pp l
      | Cfg.Goto _ | Cfg.Branch _ ->
        if Label.equal l (Cfg.exit_label g) then report "exit block does not halt")
    labels;
  if Cfg.predecessors g (Cfg.entry g) <> [] then report "entry block has predecessors";
  let order = Order.compute g in
  List.iter
    (fun l ->
      if (not (Order.is_reachable order l)) && not (Label.equal l (Cfg.exit_label g)) then
        report "block %a is unreachable" Label.pp l)
    labels;
  List.rev !issues

let check_exn g =
  match check g with
  | [] -> ()
  | issues -> failwith (Printf.sprintf "Cfg validation failed: %s" (String.concat "; " issues))
