module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr

exception Parse_error of string * int

let fail line fmt = Format.kasprintf (fun m -> raise (Parse_error (m, line))) fmt

(* '.' admits frontend-generated names (Bril emitters commonly mint
   [v.1]-style temporaries); a word of ident chars starting with a digit
   is still rejected by [parse_operand]. *)
let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '.'

(* Split a line into whitespace-separated words. *)
let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_label line w =
  let body =
    if String.length w >= 2 && w.[0] = 'B' then String.sub w 1 (String.length w - 1)
    else fail line "expected a label like B3, found %S" w
  in
  match int_of_string_opt body with
  | Some n when n >= 0 -> n
  | Some _ | None -> fail line "expected a label like B3, found %S" w

let parse_operand line w =
  match int_of_string_opt w with
  | Some n -> Expr.Const n
  | None ->
    if w <> "" && String.for_all is_ident_char w && not (w.[0] >= '0' && w.[0] <= '9') then Expr.Var w
    else fail line "expected a variable or integer, found %S" w

let binop_of_symbol = function
  | "+" -> Some Expr.Add
  | "-" -> Some Expr.Sub
  | "*" -> Some Expr.Mul
  | "/" -> Some Expr.Div
  | "%" -> Some Expr.Mod
  | "<" -> Some Expr.Lt
  | "<=" -> Some Expr.Le
  | ">" -> Some Expr.Gt
  | ">=" -> Some Expr.Ge
  | "==" -> Some Expr.Eq
  | "!=" -> Some Expr.Ne
  | "&&" -> Some Expr.And
  | "||" -> Some Expr.Or
  | _ -> None

(* Unary applications print without a space: "-a" or "!x". *)
let parse_unary_word line w =
  if String.length w >= 2 && (w.[0] = '-' || w.[0] = '!') then begin
    let op = if w.[0] = '-' then Expr.Neg else Expr.Not in
    let rest = String.sub w 1 (String.length w - 1) in
    (* "-5" prints as the constant -5; treat it as an atom. *)
    match (op, int_of_string_opt rest) with
    | Expr.Neg, Some n -> Some (Expr.Atom (Expr.Const (-n)))
    | _, _ -> Some (Expr.Unary (op, parse_operand line rest))
  end
  else None

let parse_rhs line ws =
  match ws with
  | [ single ] ->
    (match parse_unary_word line single with
    | Some e -> e
    | None -> Expr.Atom (parse_operand line single))
  | [ a; op; b ] ->
    (match binop_of_symbol op with
    | Some op -> Expr.Binary (op, parse_operand line a, parse_operand line b)
    | None -> fail line "unknown operator %S" op)
  | _ -> fail line "cannot parse expression %S" (String.concat " " ws)

let parse_var line w =
  match parse_operand line w with
  | Expr.Var v -> v
  | Expr.Const _ -> fail line "expected a variable, found %S" w

(* Opaque effect lines mirror [Instr.pp]:
     do OP [@func ...] [operand ...] [-> dest type]
   The type token is opaque to this parser (any space-free word, e.g.
   [int] or [ptr<int>]); it only has to round-trip. *)
let parse_effect line op rest =
  if op = "" || not (String.for_all is_ident_char op) then
    fail line "expected an effect op name, found %S" op;
  let rec split_funcs acc = function
    | w :: ws when String.length w > 1 && w.[0] = '@' ->
      split_funcs (String.sub w 1 (String.length w - 1) :: acc) ws
    | ws -> (List.rev acc, ws)
  in
  let funcs, rest = split_funcs [] rest in
  let rec split_args acc = function
    | [] -> (List.rev acc, None)
    | [ "->"; dest; ty ] -> (List.rev acc, Some (parse_var line dest, ty))
    | "->" :: _ -> fail line "expected \"-> dest type\" at the end of a do line"
    | w :: ws -> split_args (parse_operand line w :: acc) ws
  in
  let args, dest = split_args [] rest in
  Instr.Effect { Instr.eff_op = op; eff_dest = dest; eff_args = args; eff_funcs = funcs }

let parse_instr line ws =
  match ws with
  | "print" :: rest ->
    (match rest with
    | [ a ] -> Instr.Print (parse_operand line a)
    | _ -> fail line "print takes one operand")
  | v :: ":=" :: rest -> Instr.Assign (v, parse_rhs line rest)
  | "do" :: op :: rest -> parse_effect line op rest
  | _ -> fail line "cannot parse instruction %S" (String.concat " " ws)

type parsed_term =
  | T_goto of int
  | T_branch of Expr.operand * int * int
  | T_halt

let parse_term line ws =
  match ws with
  | [ "halt" ] -> Some T_halt
  | [ "goto"; l ] -> Some (T_goto (parse_label line l))
  | [ "if"; c; "then"; a; "else"; b ] ->
    Some (T_branch (parse_operand line c, parse_label line a, parse_label line b))
  | _ -> None

(* Line-level entry points for the serving [delta] op: a patch edits a
   retained graph with the same surface syntax as whole-graph documents,
   one instruction or terminator per string.  Errors report line 0 (the
   caller knows which edit it fed in). *)
let parse_instr_line s = parse_instr 0 (words (String.trim s))
let parse_term_line s = parse_term 0 (words (String.trim s))

type block_acc = {
  text_label : int;
  mutable instrs_rev : Instr.t list;
  mutable term : parsed_term option;
  first_line : int;
}

let parse text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let blocks_rev = ref [] in
  let current = ref None in
  let finish () =
    match !current with
    | None -> ()
    | Some b ->
      if b.term = None then fail b.first_line "block B%d has no terminator" b.text_label;
      blocks_rev := b :: !blocks_rev;
      current := None
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line = "" then ()
      else if String.length line >= 4 && String.sub line 0 4 = "cfg " then begin
        if !header <> None then fail lineno "duplicate cfg header";
        (* "cfg <name> (entry B0, exit B1)" *)
        let name =
          match words line with
          | "cfg" :: name :: _ -> name
          | _ -> fail lineno "malformed cfg header"
        in
        header := Some name
      end
      else if String.length line >= 2 && line.[0] = 'B' && line.[String.length line - 1] = ':' then begin
        finish ();
        let label = parse_label lineno (String.sub line 0 (String.length line - 1)) in
        current := Some { text_label = label; instrs_rev = []; term = None; first_line = lineno }
      end
      else begin
        match !current with
        | None -> fail lineno "content outside a block: %S" line
        | Some b ->
          if b.term <> None then fail lineno "block B%d continues after its terminator" b.text_label;
          let ws = words line in
          (match parse_term lineno ws with
          | Some t -> b.term <- Some t
          | None -> b.instrs_rev <- parse_instr lineno ws :: b.instrs_rev)
      end)
    lines;
  finish ();
  let name = match !header with Some n -> n | None -> fail 1 "missing cfg header" in
  let blocks = List.rev !blocks_rev in
  (match blocks with
  | { text_label = 0; _ } :: { text_label = 1; _ } :: _ -> ()
  | _ -> fail 1 "the first two blocks must be B0 (entry) and B1 (exit)");
  let g = Cfg.create ~name () in
  (* Map text labels to allocated labels, appearance order. *)
  let mapping = Hashtbl.create 16 in
  Hashtbl.replace mapping 0 (Cfg.entry g);
  Hashtbl.replace mapping 1 (Cfg.exit_label g);
  List.iter
    (fun b ->
      if b.text_label <> 0 && b.text_label <> 1 then begin
        if Hashtbl.mem mapping b.text_label then
          fail b.first_line "duplicate block B%d" b.text_label;
        Hashtbl.replace mapping b.text_label (Cfg.add_block g ~instrs:[] ~term:Cfg.Halt)
      end)
    blocks;
  let resolve line l =
    match Hashtbl.find_opt mapping l with
    | Some l' -> l'
    | None -> fail line "undefined label B%d" l
  in
  List.iter
    (fun b ->
      let l = resolve b.first_line b.text_label in
      Cfg.set_instrs g l (List.rev b.instrs_rev);
      match b.term with
      | Some (T_goto t) -> Cfg.set_term g l (Cfg.Goto (resolve b.first_line t))
      | Some (T_branch (c, x, y)) ->
        Cfg.set_term g l (Cfg.Branch (c, resolve b.first_line x, resolve b.first_line y))
      | Some T_halt ->
        if b.text_label <> 1 then fail b.first_line "only the exit block B1 may halt"
      | None -> assert false)
    blocks;
  (match Validate.check g with
  | [] -> ()
  | issues -> fail 1 "invalid graph: %s" (String.concat "; " issues));
  g

let to_string = Cfg.to_string
