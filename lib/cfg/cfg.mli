(** Control-flow graphs over MiniImp instructions.

    A graph always contains a distinguished *entry* block and a distinguished
    *exit* block.  Both are ordinary blocks (the entry may receive inserted
    instructions like any other block); the exit is the only block whose
    terminator is {!Halt}.  Keeping a real entry block with an outgoing edge
    to the first "user" block means edge-based PRE can insert on that edge
    without special cases. *)

(** Block terminators.  Branch conditions are atomic operands — lowering
    materializes compound conditions into instructions first — so branching
    never hides a PRE candidate. *)
type terminator =
  | Goto of Label.t
  | Branch of Lcm_ir.Expr.operand * Label.t * Label.t
      (** [Branch (c, if_true, if_false)]: taken edge first when [c ≠ 0]. *)
  | Halt  (** only the exit block *)

type t

(** [create ~name ()] is a graph containing a fresh entry block (terminated
    by [Goto exit]) and the exit block. *)
val create : ?name:string -> unit -> t

val name : t -> string
val entry : t -> Label.t
val exit_label : t -> Label.t

(** [add_block g ~instrs ~term] allocates a fresh block and returns its
    label. *)
val add_block : t -> instrs:Lcm_ir.Instr.t list -> term:terminator -> Label.t

(** [mem g l] holds when [l] names a live block of [g]. *)
val mem : t -> Label.t -> bool

(** Block contents.  All raise [Invalid_argument] on unknown labels. *)
val instrs : t -> Label.t -> Lcm_ir.Instr.t list

val term : t -> Label.t -> terminator
val set_instrs : t -> Label.t -> Lcm_ir.Instr.t list -> unit
val set_term : t -> Label.t -> terminator -> unit
val append_instr : t -> Label.t -> Lcm_ir.Instr.t -> unit
val prepend_instr : t -> Label.t -> Lcm_ir.Instr.t -> unit

(** Labels in allocation order; the entry block is always first. *)
val labels : t -> Label.t list

(** Number of live blocks. *)
val num_blocks : t -> int

(** One more than the largest allocated label; labels are dense in
    [\[0, label_bound)] unless blocks have been removed. *)
val label_bound : t -> int

(** Successor labels in terminator order, duplicates removed. *)
val successors : t -> Label.t -> Label.t list

(** Predecessor labels (served from the adjacency snapshot below). *)
val predecessors : t -> Label.t -> Label.t list

(** All edges [(src, dst)], grouped by source in label order (cached). *)
val edges : t -> (Label.t * Label.t) list

(** [is_critical_edge g (src, dst)] holds when [src] has several successors
    and [dst] several predecessors.  O(1) on the cached adjacency arrays. *)
val is_critical_edge : t -> Label.t * Label.t -> bool

(** Shape version of the graph.  Bumped by every mutation that can change
    the block set or edge set ([add_block], [set_term], [split_edge],
    [remove_unreachable], [merge_straight_pairs]); instruction-only edits
    ([set_instrs], [append_instr], …) do not bump it. *)
val version : t -> int

(** Cached adjacency/order snapshot of one shape version.

    All arrays are indexed by label in [\[0, adj_bound)]; entries of dead
    labels are empty.  The snapshot is immutable: callers must not mutate
    the arrays.  It is rebuilt lazily whenever {!version} outruns
    [adj_version], so holding on to a snapshot across graph mutation yields
    a consistent (if stale) view — re-call {!adjacency} to refresh. *)
type adjacency = private {
  adj_version : int;  (** {!version} at build time *)
  adj_bound : int;  (** {!label_bound} at build time *)
  adj_labels : Label.t list;  (** {!labels} at build time (allocation order) *)
  adj_succ : Label.t array array;  (** successors, terminator order *)
  adj_pred : Label.t array array;  (** predecessors, source-allocation order *)
  adj_pred_lists : Label.t list array;  (** same, as lists (for list APIs) *)
  adj_edges : (Label.t * Label.t) list;  (** {!edges} *)
  adj_succ_off : int array;  (** CSR prefix sums of [adj_succ] row lengths, [adj_bound + 1] entries *)
  adj_pred_off : int array;  (** CSR prefix sums of [adj_pred] row lengths *)
  adj_rpo : Label.t list;  (** reachable blocks, reverse postorder *)
  adj_post : Label.t list;  (** reachable blocks, postorder *)
  adj_rpo_pos : int array;  (** position in [adj_rpo]; -1 when unreachable *)
  adj_disc : int array;  (** DFS discovery time; 0 when unreachable *)
  adj_fin : int array;  (** DFS finish time; 0 when unreachable *)
}

val adjacency : t -> adjacency

(** [split_edge g src dst] inserts a fresh empty block on the edge
    [(src, dst)] and returns its label.  When the terminator of [src]
    mentions [dst] several times (both branch targets), only a single split
    block is created and both mentions are redirected. *)
val split_edge : t -> Label.t -> Label.t -> Label.t

(** Remove blocks unreachable from the entry. *)
val remove_unreachable : t -> unit

(** [merge_straight_pairs g] collapses [Goto] chains: a block whose only
    successor has exactly one predecessor (and is not entry/exit) absorbs
    it.  Used to clean up after edge-split insertions. *)
val merge_straight_pairs : t -> unit

(** Deep copy (shares immutable instructions). *)
val copy : t -> t

(** All distinct candidate expressions of the graph, as a pool.  Memoized:
    unchanged graphs return the same pool instance (indices are stable);
    any mutation — shape or instruction content — invalidates the memo.
    Callers must treat the result as read-only. *)
val candidate_pool : t -> Lcm_ir.Expr_pool.t

(** Variables assigned or read anywhere in the graph. *)
val all_vars : t -> string list

(** Total number of instructions (all blocks). *)
val num_instrs : t -> int

(** Number of candidate-expression occurrences (static computation count). *)
val num_candidate_occurrences : t -> int

val pp_terminator : Format.formatter -> terminator -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Hex MD5 of {!to_string} — the canonical content address of the graph.
    Structurally identical graphs (same blocks in allocation order, same
    instructions and edges) digest identically regardless of how they were
    built; the result cache and the shard router key on this. *)
val digest : t -> string
