(** Natural loops.

    A natural loop is identified by a back edge [(tail, header)] where
    [header] dominates [tail]; its body is every block that can reach [tail]
    without passing through [header].  Used by the LICM baseline and by
    workload statistics. *)

type loop = {
  header : Label.t;
  body : Label.Set.t;  (** includes the header *)
  back_edges : (Label.t * Label.t) list;  (** tails into this header *)
}

type t

val compute : Cfg.t -> t

(** All loops, one per header, outermost first (by header RPO position). *)
val loops : t -> loop list

(** [loop_of_header t h]. *)
val loop_of_header : t -> Label.t -> loop option

(** [innermost_containing t l] is the loop with the smallest body containing
    [l], if any. *)
val innermost_containing : t -> Label.t -> loop option

(** [depth t l] is the number of loops whose body contains [l]. *)
val depth : t -> Label.t -> int

(** Blocks outside every loop have depth 0. *)
val max_depth : t -> int

(** [preheader_candidates cfg loop] lists the edges entering the header from
    outside the body — the edges a pre-header would intercept. *)
val entry_edges : Cfg.t -> loop -> (Label.t * Label.t) list

(** [insert_preheader g loop] creates an empty block through which every
    entry edge of the loop is routed, and returns its label.  The graph is
    mutated in place; the loop's [body] set remains valid (the pre-header
    lies outside it). *)
val insert_preheader : Cfg.t -> loop -> Label.t
