(** Dominator tree (Cooper–Harvey–Kennedy "engineered" algorithm).

    Used by the loop-invariant-code-motion baseline and by structural
    validation; Lazy Code Motion itself needs no dominators, which is part
    of its appeal. *)

type t

(** Compute dominators of the reachable subgraph. *)
val compute : Cfg.t -> t

(** [idom t l] is the immediate dominator of [l]; [None] for the entry and
    for unreachable blocks. *)
val idom : t -> Label.t -> Label.t option

(** [dominates t a b] holds when every path from entry to [b] passes through
    [a] (reflexive).  Unreachable blocks dominate nothing and are dominated
    by nothing. *)
val dominates : t -> Label.t -> Label.t -> bool

(** Children in the dominator tree. *)
val children : t -> Label.t -> Label.t list

(** Blocks dominated by [l] (including [l]). *)
val dominated_by : t -> Label.t -> Label.t list
