(** A textual format for control-flow graphs.

    Reads exactly what {!Cfg.to_string} prints, so graphs can be stored in
    files, edited by hand (e.g. to build graphs with critical edges, which
    structured MiniImp lowering never produces), and round-tripped:

    {v
    cfg name (entry B0, exit B1)
    B0:
      goto B2
    B1:
      halt
    B2:
      x := a + b
      print x
      if p then B2 else B1
    v}

    The entry must be [B0] and the exit [B1] (as produced by {!Cfg.create});
    other labels may appear in any order and need not be dense — they are
    renumbered in order of appearance. *)

exception Parse_error of string * int
(** [Parse_error (message, line)]. *)

(** Parse a graph from its textual form.  The result is validated.
    Raises {!Parse_error}. *)
val parse : string -> Cfg.t

(** [to_string] is {!Cfg.to_string} (re-exported for symmetry). *)
val to_string : Cfg.t -> string

(** {2 Line-level parsing}

    The serving protocol's [delta] op patches a retained graph one line at
    a time, in this same surface syntax.  Labels in terminators are the
    *textual* numbers; the caller resolves them against its graph (for a
    canonically printed graph, text label [Bn] is internal label [n]). *)

(** A terminator line with unresolved textual labels. *)
type parsed_term =
  | T_goto of int
  | T_branch of Lcm_ir.Expr.operand * int * int
  | T_halt

(** Parse one instruction line ([v := a + b], [print x]).
    Raises {!Parse_error} (line number 0). *)
val parse_instr_line : string -> Lcm_ir.Instr.t

(** Parse one terminator line ([goto B2], [if p then B2 else B1],
    [halt]); [None] when the line is not terminator-shaped.
    Raises {!Parse_error} (line number 0) on malformed labels/operands. *)
val parse_term_line : string -> parsed_term option
