(** A textual format for control-flow graphs.

    Reads exactly what {!Cfg.to_string} prints, so graphs can be stored in
    files, edited by hand (e.g. to build graphs with critical edges, which
    structured MiniImp lowering never produces), and round-tripped:

    {v
    cfg name (entry B0, exit B1)
    B0:
      goto B2
    B1:
      halt
    B2:
      x := a + b
      print x
      if p then B2 else B1
    v}

    The entry must be [B0] and the exit [B1] (as produced by {!Cfg.create});
    other labels may appear in any order and need not be dense — they are
    renumbered in order of appearance. *)

exception Parse_error of string * int
(** [Parse_error (message, line)]. *)

(** Parse a graph from its textual form.  The result is validated.
    Raises {!Parse_error}. *)
val parse : string -> Cfg.t

(** [to_string] is {!Cfg.to_string} (re-exported for symmetry). *)
val to_string : Cfg.t -> string
