let split_by g want =
  let g = Cfg.copy g in
  let targets = List.filter want (Cfg.edges g) in
  List.iter
    (fun (src, dst) ->
      (* The edge may already have been rewritten by an earlier split of a
         sibling edge of the same terminator; check it still exists. *)
      if Cfg.mem g src && List.exists (Label.equal dst) (Cfg.successors g src) then
        ignore (Cfg.split_edge g src dst))
    targets;
  Validate.check_exn g;
  g

let split_join_edges g = split_by g (fun (_, dst) -> List.length (Cfg.predecessors g dst) > 1)
let split_critical_edges g = split_by g (Cfg.is_critical_edge g)
let has_critical_edges g = List.exists (Cfg.is_critical_edge g) (Cfg.edges g)
