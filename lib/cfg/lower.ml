module Ast = Lcm_ir.Ast
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr
module Parser = Lcm_ir.Parser

let return_var = "_ret"

(* Mutable lowering state: the graph under construction, the block being
   filled (with its instructions accumulated in reverse), and a fresh-name
   supply that cannot collide with source variables. *)
type state = {
  graph : Cfg.t;
  mutable current : Label.t option;
  mutable pending : Instr.t list;  (* reversed *)
  temp_prefix : string;
  mutable next_temp : int;
}

let fresh_temp st =
  let v = Printf.sprintf "%s%d" st.temp_prefix st.next_temp in
  st.next_temp <- st.next_temp + 1;
  v

let emit st i = st.pending <- i :: st.pending

(* Close the current block with [term], flushing pending instructions. *)
let seal st term =
  match st.current with
  | None -> ()
  | Some l ->
    Cfg.set_instrs st.graph l (List.rev st.pending);
    Cfg.set_term st.graph l term;
    st.pending <- [];
    st.current <- None

(* Start filling a fresh block and return its label. *)
let start_block st =
  assert (st.current = None);
  let l = Cfg.add_block st.graph ~instrs:[] ~term:Cfg.Halt in
  st.current <- Some l;
  l

(* Ensure some block is open (after a Return the rest of the statement list
   is unreachable; we lower it into a dangling block and let
   [remove_unreachable] discard it). *)
let ensure_open st = if st.current = None then ignore (start_block st)

let rec flatten_operand st (e : Ast.expr) : Expr.operand =
  match e with
  | Ast.Int n -> Expr.Const n
  | Ast.Var v -> Expr.Var v
  | Ast.Unary _ | Ast.Binary _ ->
    let rhs = flatten_rhs st e in
    let t = fresh_temp st in
    emit st (Instr.Assign (t, rhs));
    Expr.Var t

(* Flatten [e] into an instruction right-hand side, materializing
   sub-expressions as temporaries. *)
and flatten_rhs st (e : Ast.expr) : Expr.t =
  match e with
  | Ast.Int n -> Expr.Atom (Expr.Const n)
  | Ast.Var v -> Expr.Atom (Expr.Var v)
  | Ast.Unary (op, a) -> Expr.Unary (op, flatten_operand st a)
  | Ast.Binary (op, a, b) ->
    let oa = flatten_operand st a in
    let ob = flatten_operand st b in
    Expr.Binary (op, oa, ob)

let rec lower_stmts st (stmts : Ast.stmt list) =
  List.iter (lower_stmt st) stmts

and lower_stmt st (s : Ast.stmt) =
  ensure_open st;
  match s with
  | Ast.Assign (v, e) -> emit st (Instr.Assign (v, flatten_rhs st e))
  | Ast.Print e ->
    let a = flatten_operand st e in
    emit st (Instr.Print a)
  | Ast.Return e ->
    let rhs = flatten_rhs st e in
    emit st (Instr.Assign (return_var, rhs));
    seal st (Cfg.Goto (Cfg.exit_label st.graph))
  | Ast.If (cond, then_branch, else_branch) ->
    let c = flatten_operand st cond in
    let here = st.current in
    seal st Cfg.Halt;
    let then_entry = start_block st in
    lower_stmts st then_branch;
    let then_tail = st.current in
    seal st Cfg.Halt;
    let else_entry = start_block st in
    lower_stmts st else_branch;
    let else_tail = st.current in
    seal st Cfg.Halt;
    let join = start_block st in
    Option.iter (fun l -> Cfg.set_term st.graph l (Cfg.Branch (c, then_entry, else_entry))) here;
    Option.iter (fun l -> Cfg.set_term st.graph l (Cfg.Goto join)) then_tail;
    Option.iter (fun l -> Cfg.set_term st.graph l (Cfg.Goto join)) else_tail
  | Ast.While (cond, body) ->
    let before = st.current in
    seal st Cfg.Halt;
    let header = start_block st in
    let c = flatten_operand st cond in
    let cond_tail = st.current in
    seal st Cfg.Halt;
    let body_entry = start_block st in
    lower_stmts st body;
    let body_tail = st.current in
    seal st Cfg.Halt;
    let after = start_block st in
    Option.iter (fun l -> Cfg.set_term st.graph l (Cfg.Goto header)) before;
    Option.iter (fun l -> Cfg.set_term st.graph l (Cfg.Branch (c, body_entry, after))) cond_tail;
    Option.iter (fun l -> Cfg.set_term st.graph l (Cfg.Goto header)) body_tail
  | Ast.Do_while (body, cond) ->
    let before = st.current in
    seal st Cfg.Halt;
    let body_entry = start_block st in
    lower_stmts st body;
    ensure_open st;
    let c = flatten_operand st cond in
    let body_tail = st.current in
    seal st Cfg.Halt;
    let after = start_block st in
    Option.iter (fun l -> Cfg.set_term st.graph l (Cfg.Goto body_entry)) before;
    Option.iter (fun l -> Cfg.set_term st.graph l (Cfg.Branch (c, body_entry, after))) body_tail

let temp_prefix_for (f : Ast.func) =
  Lcm_support.Fresh.prefix ~existing:(Ast.stmt_vars f.Ast.body @ f.Ast.params) "_t"

let func (f : Ast.func) =
  let graph = Cfg.create ~name:f.Ast.name () in
  let st = { graph; current = None; pending = []; temp_prefix = temp_prefix_for f; next_temp = 0 } in
  let first = start_block st in
  Cfg.set_term graph (Cfg.entry graph) (Cfg.Goto first);
  lower_stmts st f.Ast.body;
  (* A function that falls off the end returns 0. *)
  (match st.current with
  | Some _ ->
    emit st (Instr.Assign (return_var, Expr.Atom (Expr.Const 0)));
    seal st (Cfg.Goto (Cfg.exit_label graph))
  | None -> ());
  Cfg.remove_unreachable graph;
  Validate.check_exn graph;
  graph

let program (p : Ast.program) = List.map (fun f -> (f.Ast.name, func f)) p
let parse_and_lower_func src = func (Parser.parse_func src)
let parse_and_lower src = program (Parser.parse_program src)
