(** Depth-first traversal orders.

    Iterative data-flow converges fastest when forward problems visit blocks
    in reverse postorder and backward problems in postorder; this module
    computes both once per graph. *)

type t

(** Orders of the subgraph reachable from the entry.  Served from the
    graph's cached adjacency snapshot: repeated calls on an unmutated graph
    are O(1). *)
val compute : Cfg.t -> t

(** Reachable blocks in postorder (entry last). *)
val postorder : t -> Label.t list

(** Reachable blocks in reverse postorder (entry first). *)
val reverse_postorder : t -> Label.t list

(** [rpo_index t l] is the position of [l] in reverse postorder, or [None]
    when [l] is unreachable. *)
val rpo_index : t -> Label.t -> int option

(** [is_reachable t l]. *)
val is_reachable : t -> Label.t -> bool

(** [back_edges cfg t] lists edges [(src, dst)] where [dst] is an ancestor
    of [src] in the DFS tree (retreating edges). *)
val back_edges : Cfg.t -> t -> (Label.t * Label.t) list
