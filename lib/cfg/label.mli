(** Basic-block labels.

    Labels are dense small integers allocated by a {!Cfg.t}; they index the
    per-block arrays used by the data-flow solver. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Renders as ["B<n>"]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
