type t = int

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let pp ppf l = Format.fprintf ppf "B%d" l
let to_string l = "B" ^ string_of_int l

module Set = Set.Make (Int)
module Map = Map.Make (Int)
