let run g =
  let out = Cfg.create ~name:(Cfg.name g) () in
  (* Allocate the head block of every chain first so that terminators can be
     redirected by a simple label translation. *)
  let head = Hashtbl.create 64 in
  Hashtbl.replace head (Cfg.entry g) (Cfg.entry out);
  Hashtbl.replace head (Cfg.exit_label g) (Cfg.exit_label out);
  List.iter
    (fun l ->
      if not (Hashtbl.mem head l) then
        Hashtbl.replace head l (Cfg.add_block out ~instrs:[] ~term:Cfg.Halt))
    (Cfg.labels g);
  let tr l = Hashtbl.find head l in
  let translate_term = function
    | Cfg.Goto l -> Cfg.Goto (tr l)
    | Cfg.Branch (c, a, b) -> Cfg.Branch (c, tr a, tr b)
    | Cfg.Halt -> Cfg.Halt
  in
  List.iter
    (fun l ->
      let final_term = translate_term (Cfg.term g l) in
      let rec chain cur = function
        | [] -> Cfg.set_term out cur final_term
        | [ last ] ->
          Cfg.set_instrs out cur [ last ];
          Cfg.set_term out cur final_term
        | i :: rest ->
          let next = Cfg.add_block out ~instrs:[] ~term:Cfg.Halt in
          Cfg.set_instrs out cur [ i ];
          Cfg.set_term out cur (Cfg.Goto next);
          chain next rest
      in
      chain (tr l) (Cfg.instrs g l))
    (Cfg.labels g);
  Validate.check_exn out;
  out

let is_granular g = List.for_all (fun l -> List.length (Cfg.instrs g l) <= 1) (Cfg.labels g)
