module Instr = Lcm_ir.Instr

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\l"
      | _ -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let block_label g l =
  let body =
    String.concat "\n" (List.map Instr.to_string (Cfg.instrs g l))
  in
  let term = Format.asprintf "%a" Cfg.pp_terminator (Cfg.term g l) in
  let header = Label.to_string l in
  if body = "" then Printf.sprintf "%s\n%s" header term else Printf.sprintf "%s\n%s\n%s" header body term

let to_dot ?(highlight_blocks = []) ?(highlight_edges = []) g =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  node [shape=box, fontname=\"monospace\"];\n" (escape (Cfg.name g)));
  List.iter
    (fun l ->
      let extra =
        if List.exists (Label.equal l) highlight_blocks then ", style=filled, fillcolor=lightyellow"
        else if Label.equal l (Cfg.entry g) || Label.equal l (Cfg.exit_label g) then
          ", style=filled, fillcolor=lightgray"
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\l\"%s];\n" l (escape (block_label g l)) extra))
    (Cfg.labels g);
  List.iter
    (fun (src, dst) ->
      let extra =
        if List.exists (fun (a, b) -> Label.equal a src && Label.equal b dst) highlight_edges then
          " [color=red, penwidth=2.0]"
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" src dst extra))
    (Cfg.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?highlight_blocks ?highlight_edges path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?highlight_blocks ?highlight_edges g))
