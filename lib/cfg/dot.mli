(** Graphviz export for visual inspection of graphs and transformations. *)

(** [to_dot ?highlight_blocks ?highlight_edges g] renders [g] in the DOT
    language.  Highlighted blocks are filled; highlighted edges are drawn
    bold red (used to show insertion points). *)
val to_dot :
  ?highlight_blocks:Label.t list ->
  ?highlight_edges:(Label.t * Label.t) list ->
  Cfg.t ->
  string

(** [write_file path g] writes [to_dot g] to [path]. *)
val write_file :
  ?highlight_blocks:Label.t list ->
  ?highlight_edges:(Label.t * Label.t) list ->
  string ->
  Cfg.t ->
  unit
