type loop = {
  header : Label.t;
  body : Label.Set.t;
  back_edges : (Label.t * Label.t) list;
}

type t = { by_header : loop Label.Map.t; ordered : loop list }

let natural_loop_body g header tails =
  (* Walk backwards from each tail, stopping at the header. *)
  let body = ref (Label.Set.singleton header) in
  let rec go l =
    if not (Label.Set.mem l !body) then begin
      body := Label.Set.add l !body;
      List.iter go (Cfg.predecessors g l)
    end
  in
  List.iter go tails;
  !body

let compute g =
  let dom = Dom.compute g in
  let order = Order.compute g in
  let backs =
    List.filter
      (fun (src, dst) -> Dom.dominates dom dst src)
      (Order.back_edges g order)
  in
  let by_header =
    List.fold_left
      (fun acc (src, dst) ->
        let existing = Option.value ~default:[] (Label.Map.find_opt dst acc) in
        Label.Map.add dst (src :: existing) acc)
      Label.Map.empty backs
  in
  let make header tails =
    {
      header;
      body = natural_loop_body g header tails;
      back_edges = List.map (fun tail -> (tail, header)) tails;
    }
  in
  let loops_map = Label.Map.mapi make by_header in
  let rpo_pos l = Option.value ~default:max_int (Order.rpo_index order l) in
  let ordered =
    List.sort
      (fun a b -> compare (rpo_pos a.header) (rpo_pos b.header))
      (List.map snd (Label.Map.bindings loops_map))
  in
  { by_header = loops_map; ordered }

let loops t = t.ordered
let loop_of_header t h = Label.Map.find_opt h t.by_header

let innermost_containing t l =
  let containing = List.filter (fun lp -> Label.Set.mem l lp.body) t.ordered in
  match containing with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun best lp -> if Label.Set.cardinal lp.body < Label.Set.cardinal best.body then lp else best)
         first rest)

let depth t l = List.length (List.filter (fun lp -> Label.Set.mem l lp.body) t.ordered)

let max_depth t =
  List.fold_left
    (fun acc lp -> max acc (Label.Set.fold (fun l m -> max m (depth t l)) lp.body 0))
    0 t.ordered

let entry_edges g loop =
  List.filter
    (fun (src, _) -> not (Label.Set.mem src loop.body))
    (List.map (fun p -> (p, loop.header)) (Cfg.predecessors g loop.header))

let insert_preheader g loop =
  (* Snapshot the outside predecessors before allocating the pre-header —
     the fresh block also targets the header and must not be redirected
     into itself. *)
  let outside = List.map fst (entry_edges g loop) in
  let preheader = Cfg.add_block g ~instrs:[] ~term:(Cfg.Goto loop.header) in
  List.iter
    (fun p ->
      let redirect l = if Label.equal l loop.header then preheader else l in
      match Cfg.term g p with
      | Cfg.Goto l -> Cfg.set_term g p (Cfg.Goto (redirect l))
      | Cfg.Branch (c, a, b) -> Cfg.set_term g p (Cfg.Branch (c, redirect a, redirect b))
      | Cfg.Halt -> assert false)
    outside;
  preheader
