module Instr = Lcm_ir.Instr
module Expr = Lcm_ir.Expr
module Expr_pool = Lcm_ir.Expr_pool

type terminator =
  | Goto of Label.t
  | Branch of Expr.operand * Label.t * Label.t
  | Halt

(* [tail_rev] holds appended instructions in reverse; [force_block] folds it
   back into [instrs] on demand, so a burst of [append_instr] calls is O(1)
   amortized instead of O(n²) list concatenation. *)
type block = { mutable instrs : Instr.t list; mutable tail_rev : Instr.t list; mutable term : terminator }

type adjacency = {
  adj_version : int;
  adj_bound : int;
  adj_labels : Label.t list;
  adj_succ : Label.t array array;
  adj_pred : Label.t array array;
  adj_pred_lists : Label.t list array;
  adj_edges : (Label.t * Label.t) list;
  adj_succ_off : int array;
  adj_pred_off : int array;
  adj_rpo : Label.t list;
  adj_post : Label.t list;
  adj_rpo_pos : int array;
  adj_disc : int array;
  adj_fin : int array;
}

type t = {
  name : string;
  blocks : (Label.t, block) Hashtbl.t;
  mutable order : Label.t list;  (* reversed allocation order *)
  mutable next_label : int;
  entry : Label.t;
  exit_label : Label.t;
  (* Shape version: bumped by every mutation that can change the edge set or
     block set.  The adjacency cache below is rebuilt when it outruns
     [adj.adj_version]. *)
  mutable version : int;
  mutable adj : adjacency option;
  (* Guards the lazy build of [adj] only: read-only consumers (the parallel
     solver's slice tasks, overlapped passes) may race to the first
     [adjacency] call on a shared graph.  Mutations themselves remain
     single-domain — the lock makes the *cache fill* atomic, not the
     graph. *)
  adj_lock : Mutex.t;
  (* Instruction version: bumped by mutations that change block bodies
     without changing the edge/block shape ([set_instrs], [append_instr],
     [prepend_instr]).  The candidate-pool cache below depends on
     instruction content, so it is keyed by both counters. *)
  mutable iversion : int;
  mutable cpool : (int * int * Expr_pool.t) option;
  cpool_lock : Mutex.t;
}

let entry g = g.entry
let exit_label g = g.exit_label
let name g = g.name
let version g = g.version

let bump g = g.version <- g.version + 1

let alloc g instrs term =
  let l = g.next_label in
  g.next_label <- l + 1;
  Hashtbl.replace g.blocks l { instrs; tail_rev = []; term };
  g.order <- l :: g.order;
  bump g;
  l

let create ?(name = "main") () =
  let g =
    {
      name;
      blocks = Hashtbl.create 64;
      order = [];
      next_label = 0;
      entry = 0;
      exit_label = 1;
      version = 0;
      adj = None;
      adj_lock = Mutex.create ();
      iversion = 0;
      cpool = None;
      cpool_lock = Mutex.create ();
    }
  in
  let entry = alloc g [] Halt in
  let exit_l = alloc g [] Halt in
  assert (entry = g.entry && exit_l = g.exit_label);
  (Hashtbl.find g.blocks entry).term <- Goto exit_l;
  g

let add_block g ~instrs ~term = alloc g instrs term

let mem g l = Hashtbl.mem g.blocks l

let find g l what =
  (* Exception form rather than [find_opt]: block lookup runs once per
     block per analysis phase, and the [Some] per hit adds up. *)
  match Hashtbl.find g.blocks l with
  | b -> b
  | exception Not_found -> invalid_arg (Printf.sprintf "Cfg.%s: unknown label B%d" what l)

let force_block b =
  if b.tail_rev <> [] then begin
    b.instrs <- b.instrs @ List.rev b.tail_rev;
    b.tail_rev <- []
  end

let instrs g l =
  let b = find g l "instrs" in
  force_block b;
  b.instrs

let term g l = (find g l "term").term

let ibump g = g.iversion <- g.iversion + 1

let set_instrs g l is =
  let b = find g l "set_instrs" in
  b.instrs <- is;
  b.tail_rev <- [];
  ibump g

let set_term g l t =
  (find g l "set_term").term <- t;
  bump g

let append_instr g l i =
  let b = find g l "append_instr" in
  b.tail_rev <- i :: b.tail_rev;
  ibump g

let prepend_instr g l i =
  let b = find g l "prepend_instr" in
  b.instrs <- i :: b.instrs;
  ibump g

(* Serve from the adjacency snapshot when it is warm: steady-state solves
   call this several times per request, and rebuilding the list each time
   costs ~3 words per block.  Cold (or mid-mutation) graphs keep the
   historical fresh build. *)
let labels g =
  match g.adj with
  | Some a when a.adj_version = g.version -> a.adj_labels
  | Some _ | None -> List.rev g.order
let num_blocks g = Hashtbl.length g.blocks
let label_bound g = g.next_label

let successors_of_term = function
  | Goto m -> [ m ]
  | Branch (_, a, b) -> if Label.equal a b then [ a ] else [ a; b ]
  | Halt -> []

let successors g l = successors_of_term (term g l)

(* Build the full adjacency snapshot: successor/predecessor arrays, the edge
   list, and a DFS from the entry yielding postorder / reverse postorder and
   discovery/finish times (for retreating-edge tests).  One pass per shape
   version; every traversal-hungry consumer (solver, orders, edge lists,
   criticality) reads this snapshot instead of re-deriving lists. *)
let build_adjacency g =
  let bound = g.next_label in
  let labels = List.rev g.order in
  let succ = Array.make bound [||] in
  List.iter (fun l -> succ.(l) <- Array.of_list (successors g l)) labels;
  (* Predecessors, in allocation order of the source block (the order the
     old per-call cache produced). *)
  let pred_count = Array.make bound 0 in
  List.iter
    (fun s -> Array.iter (fun d -> pred_count.(d) <- pred_count.(d) + 1) succ.(s))
    labels;
  let pred = Array.init bound (fun d -> Array.make pred_count.(d) 0) in
  let fill = Array.make bound 0 in
  List.iter
    (fun s ->
      Array.iter
        (fun d ->
          pred.(d).(fill.(d)) <- s;
          fill.(d) <- fill.(d) + 1)
        succ.(s))
    labels;
  let pred_lists = Array.map Array.to_list pred in
  let edges =
    List.concat_map (fun s -> List.map (fun d -> (s, d)) (Array.to_list succ.(s))) labels
  in
  (* Iterative DFS from the entry; tick on discovery and on finish, exactly
     like the recursive formulation, so interval-nesting back-edge tests
     keep working. *)
  let disc = Array.make bound 0 and fin = Array.make bound 0 in
  let stack_l = Array.make (max 1 bound) 0 and stack_i = Array.make (max 1 bound) 0 in
  let sp = ref 0 and clock = ref 0 in
  let finish_acc = ref [] in
  let push l =
    incr clock;
    disc.(l) <- !clock;
    stack_l.(!sp) <- l;
    stack_i.(!sp) <- 0;
    incr sp
  in
  push g.entry;
  while !sp > 0 do
    let l = stack_l.(!sp - 1) in
    let i = stack_i.(!sp - 1) in
    if i < Array.length succ.(l) then begin
      stack_i.(!sp - 1) <- i + 1;
      let s = succ.(l).(i) in
      if disc.(s) = 0 then push s
    end
    else begin
      decr sp;
      incr clock;
      fin.(l) <- !clock;
      finish_acc := l :: !finish_acc
    end
  done;
  let rpo = !finish_acc in
  let post = List.rev rpo in
  let rpo_pos = Array.make bound (-1) in
  List.iteri (fun i l -> rpo_pos.(l) <- i) rpo;
  (* CSR-style prefix sums over the adjacency rows: per-edge analyses index
     flat arrays by [off.(l) + i] instead of building nested per-block
     structures (or hashed edge keys) each request. *)
  let succ_off = Array.make (bound + 1) 0 and pred_off = Array.make (bound + 1) 0 in
  for l = 0 to bound - 1 do
    succ_off.(l + 1) <- succ_off.(l) + Array.length succ.(l);
    pred_off.(l + 1) <- pred_off.(l) + Array.length pred.(l)
  done;
  {
    adj_version = g.version;
    adj_bound = bound;
    adj_labels = labels;
    adj_succ = succ;
    adj_pred = pred;
    adj_pred_lists = pred_lists;
    adj_edges = edges;
    adj_succ_off = succ_off;
    adj_pred_off = pred_off;
    adj_rpo = rpo;
    adj_post = post;
    adj_rpo_pos = rpo_pos;
    adj_disc = disc;
    adj_fin = fin;
  }

let adjacency_slow g =
  Mutex.lock g.adj_lock;
  (* Fun.protect: a cache build that raises (or an injected chaos fault)
     must not leave the lock held — the next caller would deadlock. *)
  Fun.protect
    ~finally:(fun () -> Mutex.unlock g.adj_lock)
    (fun () ->
      match g.adj with
      | Some a when a.adj_version = g.version -> a
      | Some _ | None ->
        Lcm_support.Fault.inject "cfg.adjacency";
        let a = build_adjacency g in
        g.adj <- Some a;
        a)

(* Double-checked fast path: a warm snapshot whose version matches is
   returned without the lock (and without [Fun.protect]'s closures — the
   solver hits this on every phase of every request).  A racing reader at
   worst sees a stale [None]/older snapshot and falls through to the locked
   build; mutation is single-domain, so a version match never lies. *)
let adjacency g =
  match g.adj with
  | Some a when a.adj_version = g.version -> a
  | Some _ | None -> adjacency_slow g

let predecessors g l =
  ignore (find g l "predecessors");
  (adjacency g).adj_pred_lists.(l)

let edges g = (adjacency g).adj_edges

let is_critical_edge g (src, dst) =
  let adj = adjacency g in
  Array.length adj.adj_succ.(src) > 1 && Array.length adj.adj_pred.(dst) > 1

let split_edge g src dst =
  let b = find g src "split_edge" in
  if not (List.exists (Label.equal dst) (successors g src)) then
    invalid_arg (Printf.sprintf "Cfg.split_edge: no edge B%d -> B%d" src dst);
  let fresh = alloc g [] (Goto dst) in
  let redirect l = if Label.equal l dst then fresh else l in
  (match b.term with
  | Goto l -> b.term <- Goto (redirect l)
  | Branch (c, l1, l2) -> b.term <- Branch (c, redirect l1, redirect l2)
  | Halt -> assert false);
  bump g;
  fresh

let reachable_set g =
  let seen = Hashtbl.create 64 in
  let rec go l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.add seen l ();
      List.iter go (successors g l)
    end
  in
  go g.entry;
  seen

let remove_unreachable g =
  let keep = reachable_set g in
  (* The exit block must survive even if no path reaches it (e.g. an
     infinite loop); analyses rely on its existence. *)
  Hashtbl.replace keep g.exit_label ();
  let dead = Hashtbl.fold (fun l _ acc -> if Hashtbl.mem keep l then acc else l :: acc) g.blocks [] in
  if dead <> [] then begin
    List.iter (Hashtbl.remove g.blocks) dead;
    g.order <- List.filter (fun l -> Hashtbl.mem keep l) g.order;
    bump g
  end

let merge_straight_pairs g =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if mem g l && not (Label.equal l g.exit_label) then
          match term g l with
          | Goto m
            when (not (Label.equal m g.exit_label))
                 && (not (Label.equal m l))
                 && List.length (predecessors g m) = 1 ->
            let mb = find g m "merge" in
            let lb = find g l "merge" in
            force_block mb;
            force_block lb;
            lb.instrs <- lb.instrs @ mb.instrs;
            lb.term <- mb.term;
            Hashtbl.remove g.blocks m;
            g.order <- List.filter (fun l' -> not (Label.equal l' m)) g.order;
            bump g;
            changed := true
          | Goto _ | Branch _ | Halt -> ())
      (labels g)
  done

let copy g =
  let blocks = Hashtbl.create (Hashtbl.length g.blocks) in
  Hashtbl.iter
    (fun l b ->
      force_block b;
      Hashtbl.replace blocks l { instrs = b.instrs; tail_rev = []; term = b.term })
    g.blocks;
  {
    name = g.name;
    blocks;
    order = g.order;
    next_label = g.next_label;
    entry = g.entry;
    exit_label = g.exit_label;
    version = 0;
    adj = None;
    adj_lock = Mutex.create ();
    iversion = 0;
    cpool = None;
    cpool_lock = Mutex.create ();
  }

let build_candidate_pool g =
  let pool = Expr_pool.create () in
  List.iter
    (fun l ->
      List.iter
        (fun i ->
          match Instr.candidate i with
          | Some e -> ignore (Expr_pool.add pool e)
          | None -> ())
        (instrs g l))
    (labels g);
  pool

(* Locked cache fill, double-checked: a competitor may have completed the
   build while this caller waited on the lock. *)
let candidate_pool_slow g =
  Mutex.lock g.cpool_lock;
  match
    match g.cpool with
    | Some (v, iv, p) when v = g.version && iv = g.iversion -> p
    | Some _ | None ->
      let p = build_candidate_pool g in
      g.cpool <- Some (g.version, g.iversion, p);
      p
  with
  | p ->
    Mutex.unlock g.cpool_lock;
    p
  | exception e ->
    Mutex.unlock g.cpool_lock;
    raise e

(* Rebuilding the pool costs a full instruction scan plus a hashtable per
   call, which dominated the steady-state residue of the local-predicate
   phase; unchanged graphs serve the memo.  The unlocked fast path is safe
   for the same reason as {!adjacency}'s: the cache slot is written once
   per (version, iversion) under the lock, mutations are single-domain,
   and a racing reader at worst misses and takes the locked path. *)
let candidate_pool g =
  match g.cpool with
  | Some (v, iv, p) when v = g.version && iv = g.iversion -> p
  | Some _ | None -> candidate_pool_slow g

let all_vars g =
  let tbl = Hashtbl.create 64 in
  let note v = Hashtbl.replace tbl v () in
  List.iter
    (fun l ->
      List.iter
        (fun i ->
          Option.iter note (Instr.defs i);
          List.iter note (Instr.uses i))
        (instrs g l);
      match term g l with
      | Branch (Expr.Var v, _, _) -> note v
      | Branch (Expr.Const _, _, _) | Goto _ | Halt -> ())
    (labels g);
  List.sort String.compare (Hashtbl.fold (fun v () acc -> v :: acc) tbl [])

let num_instrs g = List.fold_left (fun acc l -> acc + List.length (instrs g l)) 0 (labels g)

let num_candidate_occurrences g =
  List.fold_left
    (fun acc l ->
      acc
      + List.length (List.filter (fun i -> Option.is_some (Instr.candidate i)) (instrs g l)))
    0 (labels g)

let pp_terminator ppf = function
  | Goto l -> Format.fprintf ppf "goto %a" Label.pp l
  | Branch (c, a, b) -> Format.fprintf ppf "if %a then %a else %a" Expr.pp_operand c Label.pp a Label.pp b
  | Halt -> Format.pp_print_string ppf "halt"

let pp ppf g =
  Format.fprintf ppf "@[<v>cfg %s (entry %a, exit %a)" g.name Label.pp g.entry Label.pp g.exit_label;
  List.iter
    (fun l ->
      Format.fprintf ppf "@,%a:" Label.pp l;
      List.iter (fun i -> Format.fprintf ppf "@,  %a" Instr.pp i) (instrs g l);
      Format.fprintf ppf "@,  %a" pp_terminator (term g l))
    (labels g);
  Format.fprintf ppf "@]"

let to_string g = Format.asprintf "%a" pp g

(* Content address of the printed form.  [to_string] prints blocks in
   allocation order with dense labels, so two graphs that parse to the
   same structure digest identically — the serving cache and the shard
   router both key on this. *)
let digest g = Digest.to_hex (Digest.string (to_string g))
