module Instr = Lcm_ir.Instr
module Expr = Lcm_ir.Expr
module Expr_pool = Lcm_ir.Expr_pool

type terminator =
  | Goto of Label.t
  | Branch of Expr.operand * Label.t * Label.t
  | Halt

type block = { mutable instrs : Instr.t list; mutable term : terminator }

type t = {
  name : string;
  blocks : (Label.t, block) Hashtbl.t;
  mutable order : Label.t list;  (* reversed allocation order *)
  mutable next_label : int;
  entry : Label.t;
  exit_label : Label.t;
  (* Predecessor cache: rebuilt when [version] outruns [preds_version]. *)
  mutable version : int;
  mutable preds_version : int;
  mutable preds : Label.t list Label.Map.t;
}

let entry g = g.entry
let exit_label g = g.exit_label
let name g = g.name

let bump g = g.version <- g.version + 1

let alloc g instrs term =
  let l = g.next_label in
  g.next_label <- l + 1;
  Hashtbl.replace g.blocks l { instrs; term };
  g.order <- l :: g.order;
  bump g;
  l

let create ?(name = "main") () =
  let g =
    {
      name;
      blocks = Hashtbl.create 64;
      order = [];
      next_label = 0;
      entry = 0;
      exit_label = 1;
      version = 0;
      preds_version = -1;
      preds = Label.Map.empty;
    }
  in
  let entry = alloc g [] Halt in
  let exit_l = alloc g [] Halt in
  assert (entry = g.entry && exit_l = g.exit_label);
  (Hashtbl.find g.blocks entry).term <- Goto exit_l;
  g

let add_block g ~instrs ~term = alloc g instrs term

let mem g l = Hashtbl.mem g.blocks l

let find g l what =
  match Hashtbl.find_opt g.blocks l with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Cfg.%s: unknown label B%d" what l)

let instrs g l = (find g l "instrs").instrs
let term g l = (find g l "term").term
let set_instrs g l is = (find g l "set_instrs").instrs <- is

let set_term g l t =
  (find g l "set_term").term <- t;
  bump g

let append_instr g l i =
  let b = find g l "append_instr" in
  b.instrs <- b.instrs @ [ i ]

let prepend_instr g l i =
  let b = find g l "prepend_instr" in
  b.instrs <- i :: b.instrs

let labels g = List.rev g.order
let num_blocks g = Hashtbl.length g.blocks
let label_bound g = g.next_label

let successors g l =
  match term g l with
  | Goto m -> [ m ]
  | Branch (_, a, b) -> if Label.equal a b then [ a ] else [ a; b ]
  | Halt -> []

let refresh_preds g =
  if g.preds_version <> g.version then begin
    let map = ref Label.Map.empty in
    List.iter
      (fun src ->
        List.iter
          (fun dst ->
            let existing = Option.value ~default:[] (Label.Map.find_opt dst !map) in
            map := Label.Map.add dst (src :: existing) !map)
          (successors g src))
      (labels g);
    (* Predecessors were accumulated in reverse label order; restore it. *)
    g.preds <- Label.Map.map List.rev !map;
    g.preds_version <- g.version
  end

let predecessors g l =
  ignore (find g l "predecessors");
  refresh_preds g;
  Option.value ~default:[] (Label.Map.find_opt l g.preds)

let edges g = List.concat_map (fun src -> List.map (fun dst -> (src, dst)) (successors g src)) (labels g)

let is_critical_edge g (src, dst) =
  List.length (successors g src) > 1 && List.length (predecessors g dst) > 1

let split_edge g src dst =
  let b = find g src "split_edge" in
  if not (List.exists (Label.equal dst) (successors g src)) then
    invalid_arg (Printf.sprintf "Cfg.split_edge: no edge B%d -> B%d" src dst);
  let fresh = alloc g [] (Goto dst) in
  let redirect l = if Label.equal l dst then fresh else l in
  (match b.term with
  | Goto l -> b.term <- Goto (redirect l)
  | Branch (c, l1, l2) -> b.term <- Branch (c, redirect l1, redirect l2)
  | Halt -> assert false);
  bump g;
  fresh

let reachable_set g =
  let seen = Hashtbl.create 64 in
  let rec go l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.add seen l ();
      List.iter go (successors g l)
    end
  in
  go g.entry;
  seen

let remove_unreachable g =
  let keep = reachable_set g in
  (* The exit block must survive even if no path reaches it (e.g. an
     infinite loop); analyses rely on its existence. *)
  Hashtbl.replace keep g.exit_label ();
  let dead = Hashtbl.fold (fun l _ acc -> if Hashtbl.mem keep l then acc else l :: acc) g.blocks [] in
  if dead <> [] then begin
    List.iter (Hashtbl.remove g.blocks) dead;
    g.order <- List.filter (fun l -> Hashtbl.mem keep l) g.order;
    bump g
  end

let merge_straight_pairs g =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if mem g l && not (Label.equal l g.exit_label) then
          match term g l with
          | Goto m
            when (not (Label.equal m g.exit_label))
                 && (not (Label.equal m l))
                 && List.length (predecessors g m) = 1 ->
            let mb = find g m "merge" in
            let lb = find g l "merge" in
            lb.instrs <- lb.instrs @ mb.instrs;
            lb.term <- mb.term;
            Hashtbl.remove g.blocks m;
            g.order <- List.filter (fun l' -> not (Label.equal l' m)) g.order;
            bump g;
            changed := true
          | Goto _ | Branch _ | Halt -> ())
      (labels g)
  done

let copy g =
  let blocks = Hashtbl.create (Hashtbl.length g.blocks) in
  Hashtbl.iter (fun l b -> Hashtbl.replace blocks l { instrs = b.instrs; term = b.term }) g.blocks;
  {
    name = g.name;
    blocks;
    order = g.order;
    next_label = g.next_label;
    entry = g.entry;
    exit_label = g.exit_label;
    version = 0;
    preds_version = -1;
    preds = Label.Map.empty;
  }

let candidate_pool g =
  let pool = Expr_pool.create () in
  List.iter
    (fun l ->
      List.iter
        (fun i ->
          match Instr.candidate i with
          | Some e -> ignore (Expr_pool.add pool e)
          | None -> ())
        (instrs g l))
    (labels g);
  pool

let all_vars g =
  let tbl = Hashtbl.create 64 in
  let note v = Hashtbl.replace tbl v () in
  List.iter
    (fun l ->
      List.iter
        (fun i ->
          Option.iter note (Instr.defs i);
          List.iter note (Instr.uses i))
        (instrs g l);
      match term g l with
      | Branch (Expr.Var v, _, _) -> note v
      | Branch (Expr.Const _, _, _) | Goto _ | Halt -> ())
    (labels g);
  List.sort String.compare (Hashtbl.fold (fun v () acc -> v :: acc) tbl [])

let num_instrs g = List.fold_left (fun acc l -> acc + List.length (instrs g l)) 0 (labels g)

let num_candidate_occurrences g =
  List.fold_left
    (fun acc l ->
      acc
      + List.length (List.filter (fun i -> Option.is_some (Instr.candidate i)) (instrs g l)))
    0 (labels g)

let pp_terminator ppf = function
  | Goto l -> Format.fprintf ppf "goto %a" Label.pp l
  | Branch (c, a, b) -> Format.fprintf ppf "if %a then %a else %a" Expr.pp_operand c Label.pp a Label.pp b
  | Halt -> Format.pp_print_string ppf "halt"

let pp ppf g =
  Format.fprintf ppf "@[<v>cfg %s (entry %a, exit %a)" g.name Label.pp g.entry Label.pp g.exit_label;
  List.iter
    (fun l ->
      Format.fprintf ppf "@,%a:" Label.pp l;
      List.iter (fun i -> Format.fprintf ppf "@,  %a" Instr.pp i) (instrs g l);
      Format.fprintf ppf "@,  %a" pp_terminator (term g l))
    (labels g);
  Format.fprintf ppf "@]"

let to_string g = Format.asprintf "%a" pp g
