(** Edge splitting: landing nodes for node-based code motion.

    The node-insertion model of the PLDI 1992 paper assumes that an
    insertion point exists *per edge* into every join: a computation
    inserted at a node executes once per visit of the node, so without a
    landing node on each join edge the insertion cannot distinguish the
    paths that need the value from those that already have it (and a node
    inside a loop would re-execute the insertion on every iteration).

    [split_join_edges] inserts an empty block on every edge whose target
    has several predecessors; [split_critical_edges] only splits edges
    that are critical in the classic sense (multi-successor source *and*
    multi-predecessor target) — enough for edge-based LCM if one prefers
    a priori splitting over on-demand splitting at transformation time. *)

(** Copy of the graph with an empty block on every join edge. *)
val split_join_edges : Cfg.t -> Cfg.t

(** Copy of the graph with an empty block on every critical edge. *)
val split_critical_edges : Cfg.t -> Cfg.t

(** [has_critical_edges g]. *)
val has_critical_edges : Cfg.t -> bool
