(** In-place edits of a control-flow graph, with the dirty seed for
    incremental re-solving.

    The serving protocol's [delta] op expresses a change to a previously
    submitted graph as a list of these edits.  [apply] mutates the graph,
    re-validates it, and returns the labels whose local predicates or meet
    inputs the patch may have changed — exactly the seed
    {!Lcm_dataflow.Solver.resolve} needs to confine re-iteration to the
    affected region:

    - [Set_instrs l]: the block's transfer changed → [l];
    - [Set_term l]: the block's successors changed → [l] plus its old and
      new successors (their predecessor sets changed);
    - [Add_block]: the new block plus its successors.

    Edits apply in order; a terminator may only name blocks that exist by
    the time it applies, so add blocks before wiring edges to them. *)

exception Error of string

type edit =
  | Set_instrs of Label.t * Lcm_ir.Instr.t list  (** replace a block's body *)
  | Set_term of Label.t * Cfg.terminator  (** rewire a block's out-edges *)
  | Add_block of Lcm_ir.Instr.t list * Cfg.terminator
      (** append a fresh block (label = the graph's next, i.e.
          [Cfg.label_bound] before the edit) *)

(** [apply g edits] mutates [g] and returns the dirty seed (sorted,
    deduplicated).  Raises {!Error} — naming an unknown block, halting
    outside the exit, or leaving the graph structurally invalid
    ({!Validate.check}) — with [g] left in an unspecified state; callers
    that must keep the pre-patch graph apply to a {!Cfg.copy}. *)
val apply : Cfg.t -> edit list -> Label.t list
