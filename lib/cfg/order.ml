type t = {
  post : Label.t list;
  rpo : Label.t list;
  rpo_idx : (Label.t, int) Hashtbl.t;
  (* DFS discovery/finish times for retreating-edge detection. *)
  disc : (Label.t, int) Hashtbl.t;
  fin : (Label.t, int) Hashtbl.t;
}

let compute g =
  let disc = Hashtbl.create 64 and fin = Hashtbl.create 64 in
  let post = ref [] in
  let clock = ref 0 in
  let tick () =
    incr clock;
    !clock
  in
  let rec visit l =
    if not (Hashtbl.mem disc l) then begin
      Hashtbl.add disc l (tick ());
      List.iter visit (Cfg.successors g l);
      Hashtbl.add fin l (tick ());
      post := l :: !post
    end
  in
  visit (Cfg.entry g);
  let rpo = !post in
  let post = List.rev rpo in
  let rpo_idx = Hashtbl.create 64 in
  List.iteri (fun i l -> Hashtbl.add rpo_idx l i) rpo;
  { post; rpo; rpo_idx; disc; fin }

let postorder t = t.post
let reverse_postorder t = t.rpo
let rpo_index t l = Hashtbl.find_opt t.rpo_idx l
let is_reachable t l = Hashtbl.mem t.rpo_idx l

let back_edges g t =
  List.filter
    (fun (src, dst) ->
      match (Hashtbl.find_opt t.disc src, Hashtbl.find_opt t.disc dst) with
      | Some ds, Some dd ->
        (* dst is an ancestor of src iff dst's DFS interval encloses src's. *)
        dd <= ds && Hashtbl.find t.fin dst >= Hashtbl.find t.fin src
      | _ -> false)
    (Cfg.edges g)
