(* Orders are a view of the graph's cached adjacency snapshot: [compute] is
   O(1) amortized per shape version, so callers may freely re-request the
   order instead of threading it through. *)

type t = Cfg.adjacency

let compute g = Cfg.adjacency g

let postorder (t : t) = t.Cfg.adj_post
let reverse_postorder (t : t) = t.Cfg.adj_rpo

let rpo_index (t : t) l =
  if l < 0 || l >= t.Cfg.adj_bound then None
  else
    let i = t.Cfg.adj_rpo_pos.(l) in
    if i < 0 then None else Some i

let is_reachable (t : t) l = l >= 0 && l < t.Cfg.adj_bound && t.Cfg.adj_rpo_pos.(l) >= 0

let back_edges g (t : t) =
  let disc l = if l >= 0 && l < t.Cfg.adj_bound then t.Cfg.adj_disc.(l) else 0 in
  let fin l = if l >= 0 && l < t.Cfg.adj_bound then t.Cfg.adj_fin.(l) else 0 in
  List.filter
    (fun (src, dst) ->
      let ds = disc src and dd = disc dst in
      (* dst is an ancestor of src iff dst's DFS interval encloses src's. *)
      ds > 0 && dd > 0 && dd <= ds && fin dst >= fin src)
    (Cfg.edges g)
