module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Order = Lcm_cfg.Order

type direction =
  | Forward
  | Backward

type confluence =
  | Union
  | Inter

type spec = {
  nbits : int;
  direction : direction;
  confluence : confluence;
  boundary : Bitvec.t;
  transfer : Label.t -> src:Bitvec.t -> dst:Bitvec.t -> unit;
}

type result = {
  block_in : Label.t -> Bitvec.t;
  block_out : Label.t -> Bitvec.t;
  sweeps : int;
  visits : int;
}

let run g spec =
  let order = Order.compute g in
  let sweep_order =
    match spec.direction with
    | Forward -> Order.reverse_postorder order
    | Backward -> Order.postorder order
  in
  let boundary_label =
    match spec.direction with
    | Forward -> Cfg.entry g
    | Backward -> Cfg.exit_label g
  in
  let neighbors l =
    match spec.direction with
    | Forward -> Cfg.predecessors g l
    | Backward -> Cfg.successors g l
  in
  let init () =
    match spec.confluence with
    | Union -> Bitvec.create spec.nbits
    | Inter -> Bitvec.create_full spec.nbits
  in
  (* meet.(l): value on the meet side of block l (entry for forward, exit for
     backward).  flow.(l): value on the other side, i.e. after the transfer. *)
  let meet = Hashtbl.create 64 and flow = Hashtbl.create 64 in
  List.iter
    (fun l ->
      Hashtbl.replace meet l (if Label.equal l boundary_label then Bitvec.copy spec.boundary else init ());
      Hashtbl.replace flow l (init ()))
    (Cfg.labels g);
  let scratch = Bitvec.create spec.nbits in
  let sweeps = ref 0 and visits = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr sweeps;
    List.iter
      (fun l ->
        let m = Hashtbl.find meet l in
        if not (Label.equal l boundary_label) then begin
          (match neighbors l with
          | [] ->
            (* No meet inputs: blocks that cannot reach the exit (backward)
               keep the neutral element of the confluence. *)
            ()
          | first :: rest ->
            ignore (Bitvec.blit ~src:(Hashtbl.find flow first) ~dst:scratch);
            List.iter
              (fun nb ->
                let v = Hashtbl.find flow nb in
                ignore
                  (match spec.confluence with
                  | Union -> Bitvec.union_into ~into:scratch v
                  | Inter -> Bitvec.inter_into ~into:scratch v))
              rest;
            ignore (Bitvec.blit ~src:scratch ~dst:m))
        end;
        let f = Hashtbl.find flow l in
        spec.transfer l ~src:m ~dst:scratch;
        incr visits;
        if Bitvec.blit ~src:scratch ~dst:f then changed := true)
      sweep_order
  done;
  let lookup table what l =
    match Hashtbl.find_opt table l with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Solver.%s: unknown label B%d" what l)
  in
  let block_in, block_out =
    match spec.direction with
    | Forward -> (lookup meet "block_in", lookup flow "block_out")
    | Backward -> (lookup flow "block_in", lookup meet "block_out")
  in
  { block_in; block_out; sweeps = !sweeps; visits = !visits }
