module Bitvec = Lcm_support.Bitvec
module Pool = Lcm_support.Pool
module Arena = Lcm_support.Arena
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label

let default_engine_name = "dense worklist (RPO priority queue)"
let par_engine_name = "domain-sliced worklist (word-aligned bit slices)"

type direction =
  | Forward
  | Backward

type confluence =
  | Union
  | Inter

type engine =
  | Worklist
  | Sweep

type spec = {
  nbits : int;
  direction : direction;
  confluence : confluence;
  boundary : Bitvec.t;
  transfer : Label.t -> src:Bitvec.t -> dst:Bitvec.t -> unit;
}

type result = {
  block_in : Label.t -> Bitvec.t;
  block_out : Label.t -> Bitvec.t;
  sweeps : int;
  visits : int;
}

(* Binary min-heap of labels keyed by a static priority, with an in-queue
   bitmap for deduplication: a label already pending is never pushed twice,
   so the heap never exceeds the reachable block count. *)
module Pq = struct
  type t = {
    heap : int array;
    prio : int array;
    inq : bool array;
    mutable size : int;
  }

  let create ?scratch ~capacity ~bound prio =
    {
      heap = Arena.alloc_int scratch (max 1 capacity);
      prio;
      inq = Arena.alloc_bool scratch bound;
      size = 0;
    }

  let is_empty q = q.size = 0
  let mem q l = q.inq.(l)

  let push q l =
    if not q.inq.(l) then begin
      q.inq.(l) <- true;
      let i = ref q.size in
      q.size <- q.size + 1;
      q.heap.(!i) <- l;
      let continue = ref true in
      while !continue && !i > 0 do
        let parent = (!i - 1) / 2 in
        if q.prio.(q.heap.(parent)) > q.prio.(q.heap.(!i)) then begin
          let tmp = q.heap.(parent) in
          q.heap.(parent) <- q.heap.(!i);
          q.heap.(!i) <- tmp;
          i := parent
        end
        else continue := false
      done
    end

  let pop q =
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    q.heap.(0) <- q.heap.(q.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < q.size && q.prio.(q.heap.(l)) < q.prio.(q.heap.(!smallest)) then smallest := l;
      if r < q.size && q.prio.(q.heap.(r)) < q.prio.(q.heap.(!smallest)) then smallest := r;
      if !smallest <> !i then begin
        let tmp = q.heap.(!smallest) in
        q.heap.(!smallest) <- q.heap.(!i);
        q.heap.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    q.inq.(top) <- false;
    top
end

(* Shared dense state for both engines: [meet.(l)] is the value on the meet
   side of block l (entry for forward, exit for backward); [flow.(l)] the
   value after the transfer.  Arrays are indexed by label — labels are dense
   ints below [Cfg.label_bound] — replacing the per-access Hashtbl lookups
   of the old engine. *)
type state = {
  adj : Cfg.adjacency;
  boundary_label : Label.t;
  meet : Bitvec.t array;
  flow : Bitvec.t array;
  live : bool array;
  (* meet inputs of a block (preds forward, succs backward) *)
  meet_neighbors : Label.t array array;
  (* blocks whose meet reads our flow (succs forward, preds backward) *)
  dependents : Label.t array array;
  process_order : Label.t list;
  scratch : Bitvec.t;
  arena : Arena.t option;  (* where this state's buffers came from *)
}

(* All of a solve's state — the meet/flow vector per block, the slot arrays
   holding them, and the worklist machinery below — comes from the request's
   arena when one is threaded through ([?scratch]); with [None] every
   allocation falls back to the heap, which is the historical behavior. *)
let make_state ?scratch g spec =
  let adj = Cfg.adjacency g in
  let bound = adj.Cfg.adj_bound in
  let boundary_label =
    match spec.direction with
    | Forward -> Cfg.entry g
    | Backward -> Cfg.exit_label g
  in
  let init () =
    match spec.confluence with
    | Union -> Arena.alloc scratch spec.nbits
    | Inter -> Arena.alloc_full scratch spec.nbits
  in
  let meet = Arena.alloc_vec scratch bound in
  let flow = Arena.alloc_vec scratch bound in
  for l = 0 to bound - 1 do
    meet.(l) <- init ();
    flow.(l) <- init ()
  done;
  meet.(boundary_label) <- Arena.alloc_copy scratch spec.boundary;
  let live = Arena.alloc_bool scratch bound in
  List.iter (fun l -> live.(l) <- true) (Cfg.labels g);
  let meet_neighbors, dependents, process_order =
    match spec.direction with
    | Forward -> (adj.Cfg.adj_pred, adj.Cfg.adj_succ, adj.Cfg.adj_rpo)
    | Backward -> (adj.Cfg.adj_succ, adj.Cfg.adj_pred, adj.Cfg.adj_post)
  in
  {
    adj;
    boundary_label;
    meet;
    flow;
    live;
    meet_neighbors;
    dependents;
    process_order;
    scratch = Arena.alloc scratch spec.nbits;
    arena = scratch;
  }

(* Recompute meet.(l) from its neighbors' flow values, then apply the
   transfer; returns whether flow.(l) changed.  Blocks without meet inputs
   keep the neutral element of the confluence (e.g. backward blocks that
   cannot reach the exit). *)
let visit st spec l =
  if not (Label.equal l st.boundary_label) then begin
    let nbs = st.meet_neighbors.(l) in
    if Array.length nbs > 0 then begin
      ignore (Bitvec.blit ~src:st.flow.(nbs.(0)) ~dst:st.scratch);
      for i = 1 to Array.length nbs - 1 do
        let v = st.flow.(nbs.(i)) in
        ignore
          (match spec.confluence with
          | Union -> Bitvec.union_into ~into:st.scratch v
          | Inter -> Bitvec.inter_into ~into:st.scratch v)
      done;
      ignore (Bitvec.blit ~src:st.scratch ~dst:st.meet.(l))
    end
  end;
  spec.transfer l ~src:st.meet.(l) ~dst:st.scratch;
  Bitvec.blit ~src:st.scratch ~dst:st.flow.(l)

(* Reference engine: round-robin sweeps to a fixed point, exactly the shape
   the paper costs out.  [sweeps] counts full passes including the final
   unchanged one; [visits] counts transfer applications. *)
let run_sweep st spec =
  let sweeps = ref 0 and visits = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr sweeps;
    List.iter
      (fun l ->
        incr visits;
        if visit st spec l then changed := true)
      st.process_order
  done;
  (!sweeps, !visits)

(* Worklist engine: seed every reachable block once in priority order
   (reverse postorder for forward problems, postorder for backward), then
   re-visit only the direction-appropriate dependents of blocks whose flow
   changed.  On sparse graphs this drops visit counts from ~sweeps·N to the
   near-optimal count.  [sweeps] is reported as the maximum number of times
   any single block was visited — the depth of iteration, the analogue of
   the round-robin sweep count. *)
let run_worklist ?seeds st spec =
  let bound = st.adj.Cfg.adj_bound in
  let reachable = st.adj.Cfg.adj_rpo_pos in
  (* Priority = position in the processing order. *)
  let prio = Arena.alloc_int st.arena bound in
  Array.fill prio 0 bound max_int;
  List.iteri (fun i l -> prio.(l) <- i) st.process_order;
  let nreach = List.length st.process_order in
  let q = Pq.create ?scratch:st.arena ~capacity:nreach ~bound prio in
  let seeds = match seeds with Some s -> s | None -> st.process_order in
  List.iter (fun l -> Pq.push q l) seeds;
  let visits = ref 0 in
  let visit_count = Arena.alloc_int st.arena bound in
  while not (Pq.is_empty q) do
    let l = Pq.pop q in
    incr visits;
    visit_count.(l) <- visit_count.(l) + 1;
    if visit st spec l then begin
      (* Explicit loop, not [Array.iter]: a closure here would be
         allocated on every changed visit of the hot fixpoint. *)
      let deps = st.dependents.(l) in
      for i = 0 to Array.length deps - 1 do
        let d = deps.(i) in
        if reachable.(d) >= 0 && not (Pq.mem q d) then Pq.push q d
      done
    end
  done;
  (* Arena-backed arrays may be wider than [bound]; fold over the live
     prefix only. *)
  let sweeps = ref 0 in
  for l = 0 to bound - 1 do
    if visit_count.(l) > !sweeps then sweeps := visit_count.(l)
  done;
  (!sweeps, !visits)

let make_result ~direction ~live ~meet ~flow ~sweeps ~visits =
  let lookup table what l =
    if l >= 0 && l < Array.length table && live.(l) then table.(l)
    else invalid_arg (Printf.sprintf "Solver.%s: unknown label B%d" what l)
  in
  let block_in, block_out =
    match direction with
    | Forward -> (lookup meet "block_in", lookup flow "block_out")
    | Backward -> (lookup flow "block_in", lookup meet "block_out")
  in
  { block_in; block_out; sweeps; visits }

let run ?(engine = Worklist) ?scratch g spec =
  let st = make_state ?scratch g spec in
  let sweeps, visits =
    match engine with
    | Worklist -> run_worklist st spec
    | Sweep -> run_sweep st spec
  in
  make_result ~direction:spec.direction ~live:st.live ~meet:st.meet ~flow:st.flow ~sweeps ~visits

(* --- restartable entry point --------------------------------------------

   The incremental tier of the serving protocol patches a retained CFG and
   re-solves only the blocks a patch can influence.  Soundness rests on a
   property [visit] already has: a block's meet is recomputed *entirely*
   from its neighbors' flow on every visit (never updated in place), so a
   solve may start from any assignment that agrees with the unique extreme
   fixpoint outside the re-initialized region.

   The affected region is the closure of the dirty seed under [dependents]
   (successors forward, predecessors backward): exactly the blocks the
   worklist could ever re-push from a changed seed.  Blocks outside it keep
   their saved fixpoint values — which remain consistent, because any block
   whose meet inputs or transfer changed is inside the region by
   construction.  Blocks inside are reset to the from-scratch
   initialization and seeded; chaotic iteration from the extreme element
   with frozen fixpoint inputs converges to the restriction of the global
   extreme fixpoint, so the combined result is bit-identical to a full
   solve — at the cost of visiting only the region. *)

type saved = {
  s_nbits : int;
  s_direction : direction;
  s_bound : int;
  s_meet : Bitvec.t array;
  s_flow : Bitvec.t array;
  s_reach : bool array;
}

(* Heap copies: solver state may live in a request arena that is reset when
   the request finishes, but a saved fixpoint must outlive it. *)
let save st spec =
  let bound = st.adj.Cfg.adj_bound in
  {
    s_nbits = spec.nbits;
    s_direction = spec.direction;
    s_bound = bound;
    s_meet = Array.init bound (fun l -> Bitvec.copy st.meet.(l));
    s_flow = Array.init bound (fun l -> Bitvec.copy st.flow.(l));
    s_reach = Array.init bound (fun l -> st.adj.Cfg.adj_rpo_pos.(l) >= 0);
  }

let run_saved ?scratch g spec =
  let st = make_state ?scratch g spec in
  let sweeps, visits = run_worklist st spec in
  let result =
    make_result ~direction:spec.direction ~live:st.live ~meet:st.meet ~flow:st.flow ~sweeps ~visits
  in
  (result, save st spec)

let resolve ?scratch g spec ~prev ~dirty =
  if prev.s_nbits <> spec.nbits || prev.s_direction <> spec.direction then None
  else begin
    let st = make_state ?scratch g spec in
    let bound = st.adj.Cfg.adj_bound in
    let reach = st.adj.Cfg.adj_rpo_pos in
    let affected = Array.make bound false in
    let stack = ref [] in
    let mark l =
      if l >= 0 && l < bound && not affected.(l) then begin
        affected.(l) <- true;
        stack := l :: !stack
      end
    in
    (* Seeds: patched blocks, blocks newer than the save, and blocks whose
       reachability flipped (their saved value belongs to the old shape). *)
    List.iter mark dirty;
    for l = prev.s_bound to bound - 1 do
      mark l
    done;
    for l = 0 to min prev.s_bound bound - 1 do
      if reach.(l) >= 0 <> prev.s_reach.(l) then mark l
    done;
    let rec close () =
      match !stack with
      | [] -> ()
      | l :: rest ->
        stack := rest;
        Array.iter mark st.dependents.(l);
        close ()
    in
    close ();
    (* Outside the region: restore the saved fixpoint.  Inside: keep the
       from-scratch initialization [make_state] just wrote (including the
       boundary block's boundary value). *)
    for l = 0 to min prev.s_bound bound - 1 do
      if (not affected.(l)) && st.live.(l) then begin
        ignore (Bitvec.blit ~src:prev.s_meet.(l) ~dst:st.meet.(l));
        ignore (Bitvec.blit ~src:prev.s_flow.(l) ~dst:st.flow.(l))
      end
    done;
    let seeds = List.filter (fun l -> affected.(l)) st.process_order in
    let region = List.length seeds in
    let sweeps, visits = run_worklist ~seeds st spec in
    let result =
      make_result ~direction:spec.direction ~live:st.live ~meet:st.meet ~flow:st.flow ~sweeps
        ~visits
    in
    Some (result, save st spec, region)
  end

(* --- domain-parallel engine ---------------------------------------------

   Bit-vector dataflow is embarrassingly parallel along the expression
   axis: the fixpoint of bit [i] never reads any bit [j <> i], so any
   partition of the [nbits] space can be solved independently.  [run_par]
   partitions it into word-aligned slices (disjoint slices never share a
   storage word — see [Bitvec.slice_bounds]), solves each slice's fixpoint
   with the sequential worklist engine on its own pool task, and reassembles
   full-width vectors afterwards.  The caller supplies [slice], producing a
   spec whose transfer operates on [len]-bit vectors for bits
   [lo .. lo+len-1] of the full problem; its boundary must be the matching
   slice of the full boundary.

   Determinism contract: each slice fixpoint is the unique
   least/greatest fixpoint of its (monotone) slice system, so the result is
   bit-identical to the sequential engines regardless of how the pool
   schedules slices; assembly order is fixed.  Counter semantics: [visits]
   sums the slices' transfer applications (total work), [sweeps] is the
   maximum iteration depth over slices (critical path).

   Problems narrower than [threshold] bits per available domain fall back
   to the sequential worklist — slicing two words across domains costs more
   in fan-out than it saves. *)

let default_par_threshold = 256

let run_par ?pool ?(threshold = default_par_threshold) ?scratch g spec ~slice =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let pieces = min (Pool.size pool) (max 1 (spec.nbits / max 1 threshold)) in
  let bounds = Bitvec.slice_bounds ~nbits:spec.nbits ~pieces in
  if pieces <= 1 || Array.length bounds <= 1 then run ?scratch g spec
  else begin
    (* Pre-warm the lazily-built adjacency snapshot before fanning out: the
       build is lock-guarded, but warming it here keeps the slices from
       serializing on it. *)
    let adj = Cfg.adjacency g in
    let bound = adj.Cfg.adj_bound in
    let k = Array.length bounds in
    let solved = Array.make k None in
    Pool.run pool
      (List.init k (fun i () ->
           let lo, len = bounds.(i) in
           let sub = slice ~lo ~len in
           if sub.nbits <> len then
             invalid_arg
               (Printf.sprintf "Solver.run_par: slice [%d,%d) returned a %d-bit spec" lo
                  (lo + len) sub.nbits);
           (* Slice states are built on pool domains: an arena is
              single-owner per domain, so slices keep the heap path and
              only the caller-side assembly below uses [scratch]. *)
           let st = make_state g sub in
           let counts = run_worklist st sub in
           solved.(i) <- Some (st, counts)));
    let meet = Arena.alloc_vec scratch bound in
    let flow = Arena.alloc_vec scratch bound in
    for l = 0 to bound - 1 do
      meet.(l) <- Arena.alloc scratch spec.nbits;
      flow.(l) <- Arena.alloc scratch spec.nbits
    done;
    let sweeps = ref 0 and visits = ref 0 in
    Array.iteri
      (fun i entry ->
        let st, (s, v) = Option.get entry in
        let lo, _ = bounds.(i) in
        for l = 0 to bound - 1 do
          ignore (Bitvec.blit_slice ~src:st.meet.(l) ~into:meet.(l) ~lo);
          ignore (Bitvec.blit_slice ~src:st.flow.(l) ~into:flow.(l) ~lo)
        done;
        sweeps := max !sweeps s;
        visits := !visits + v)
      solved;
    let live = Arena.alloc_bool scratch bound in
    List.iter (fun l -> live.(l) <- true) (Cfg.labels g);
    make_result ~direction:spec.direction ~live ~meet ~flow ~sweeps:!sweeps ~visits:!visits
  end
