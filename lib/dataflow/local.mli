(** Block-local predicates over the candidate-expression universe.

    For each basic block [b] and candidate expression [e]:
    - [ANTLOC b e] — [b] contains an *upwards exposed* computation of [e]
      (computed before any operand of [e] is modified in [b]);
    - [COMP b e] — [b] contains a *downwards exposed* computation of [e]
      (computed after the last modification of [e]'s operands in [b]);
    - [TRANSP b e] — [b] is *transparent* for [e] (modifies no operand).

    These are the only facts the global analyses need about block bodies. *)

type t

(** [compute g pool] scans every block once.  With [scratch], every
    predicate vector is checked out of the arena (valid until its next
    reset); without it they are heap-allocated as before. *)
val compute : ?scratch:Lcm_support.Arena.t -> Lcm_cfg.Cfg.t -> Lcm_ir.Expr_pool.t -> t

val pool : t -> Lcm_ir.Expr_pool.t

(** Number of bits per vector (= pool size). *)
val nbits : t -> int

(** The returned vectors are owned by [t]; callers must not mutate them. *)
val antloc : t -> Lcm_cfg.Label.t -> Lcm_support.Bitvec.t

val comp : t -> Lcm_cfg.Label.t -> Lcm_support.Bitvec.t
val transp : t -> Lcm_cfg.Label.t -> Lcm_support.Bitvec.t

(** Render the three predicates for every block, one row per block. *)
val pp : Format.formatter -> t -> unit
