module Bitvec = Lcm_support.Bitvec
module Arena = Lcm_support.Arena

type t = {
  avin : Lcm_cfg.Label.t -> Bitvec.t;
  avout : Lcm_cfg.Label.t -> Bitvec.t;
  sweeps : int;
  visits : int;
}

(* AVOUT(b) = COMP(b) ∪ (AVIN(b) ∩ TRANSP(b)) *)
let transfer local l ~src ~dst =
  ignore (Bitvec.blit ~src ~dst);
  ignore (Bitvec.inter_into ~into:dst (Local.transp local l));
  ignore (Bitvec.union_into ~into:dst (Local.comp local l))

let run confluence ?scratch g local =
  let nbits = Local.nbits local in
  let result =
    Solver.run ?scratch g
      {
        Solver.nbits;
        direction = Solver.Forward;
        confluence;
        boundary = Arena.alloc scratch nbits;
        transfer = transfer local;
      }
  in
  {
    avin = result.Solver.block_in;
    avout = result.Solver.block_out;
    sweeps = result.Solver.sweeps;
    visits = result.Solver.visits;
  }

(* Slice spec for [Solver.run_par]: the transfer reads word-aligned slice
   views of the block-local TRANSP/COMP vectors, memoized per label.  Each
   slice's caches are built and read by a single domain only; the [Local.t]
   arrays they are sliced from are immutable after [Local.compute]. *)
let slice_spec confluence local ~bound ~lo ~len =
  let transp_s = Array.make bound None and comp_s = Array.make bound None in
  let view cache f l =
    match cache.(l) with
    | Some v -> v
    | None ->
      let v = Bitvec.slice (f local l) ~lo ~len in
      cache.(l) <- Some v;
      v
  in
  {
    Solver.nbits = len;
    direction = Solver.Forward;
    confluence;
    boundary = Bitvec.create len;
    transfer =
      (fun l ~src ~dst ->
        ignore (Bitvec.blit ~src ~dst);
        ignore (Bitvec.inter_into ~into:dst (view transp_s Local.transp l));
        ignore (Bitvec.union_into ~into:dst (view comp_s Local.comp l)));
  }

let run_par confluence ?pool ?threshold ?scratch g local =
  let nbits = Local.nbits local in
  let bound = Lcm_cfg.Cfg.label_bound g in
  let result =
    Solver.run_par ?pool ?threshold ?scratch g
      {
        Solver.nbits;
        direction = Solver.Forward;
        confluence;
        boundary = Arena.alloc scratch nbits;
        transfer = transfer local;
      }
      ~slice:(fun ~lo ~len -> slice_spec confluence local ~bound ~lo ~len)
  in
  {
    avin = result.Solver.block_in;
    avout = result.Solver.block_out;
    sweeps = result.Solver.sweeps;
    visits = result.Solver.visits;
  }

(* Each public solve is one trace span, with the iteration counts as
   attributes (free when tracing is disabled). *)
let solve name f =
  Lcm_obs.Trace.span_attrs name (fun () ->
      let r = f () in
      (r, [ ("sweeps", string_of_int r.sweeps); ("visits", string_of_int r.visits) ]))

let compute ?scratch g local = solve "solve.avail" (fun () -> run Solver.Inter ?scratch g local)

let compute_partial ?scratch g local =
  solve "solve.avail.partial" (fun () -> run Solver.Union ?scratch g local)

let compute_par ?pool ?threshold ?scratch g local =
  solve "solve.avail" (fun () -> run_par Solver.Inter ?pool ?threshold ?scratch g local)

(* Incremental variants for the serving [delta] tier: same spec as
   [compute], routed through the restartable solver entry points. *)
let spec_of ?scratch local =
  let nbits = Local.nbits local in
  {
    Solver.nbits;
    direction = Solver.Forward;
    confluence = Solver.Inter;
    boundary = Arena.alloc scratch nbits;
    transfer = transfer local;
  }

let of_result (result : Solver.result) =
  {
    avin = result.Solver.block_in;
    avout = result.Solver.block_out;
    sweeps = result.Solver.sweeps;
    visits = result.Solver.visits;
  }

let compute_keep ?scratch g local =
  Lcm_obs.Trace.span_attrs "solve.avail" (fun () ->
      let result, saved = Solver.run_saved ?scratch g (spec_of ?scratch local) in
      let r = of_result result in
      ((r, saved), [ ("sweeps", string_of_int r.sweeps); ("visits", string_of_int r.visits) ]))

let compute_incr ?scratch g local ~prev ~dirty =
  Lcm_obs.Trace.span_attrs "solve.avail.incr" (fun () ->
      match Solver.resolve ?scratch g (spec_of ?scratch local) ~prev ~dirty with
      | None -> (None, [ ("fallback", "full") ])
      | Some (result, saved, region) ->
        ( Some (of_result result, saved, region),
          [ ("region", string_of_int region); ("visits", string_of_int result.Solver.visits) ] ))
