module Bitvec = Lcm_support.Bitvec

type t = {
  avin : Lcm_cfg.Label.t -> Bitvec.t;
  avout : Lcm_cfg.Label.t -> Bitvec.t;
  sweeps : int;
  visits : int;
}

(* AVOUT(b) = COMP(b) ∪ (AVIN(b) ∩ TRANSP(b)) *)
let transfer local l ~src ~dst =
  ignore (Bitvec.blit ~src ~dst);
  ignore (Bitvec.inter_into ~into:dst (Local.transp local l));
  ignore (Bitvec.union_into ~into:dst (Local.comp local l))

let run confluence g local =
  let nbits = Local.nbits local in
  let result =
    Solver.run g
      {
        Solver.nbits;
        direction = Solver.Forward;
        confluence;
        boundary = Bitvec.create nbits;
        transfer = transfer local;
      }
  in
  {
    avin = result.Solver.block_in;
    avout = result.Solver.block_out;
    sweeps = result.Solver.sweeps;
    visits = result.Solver.visits;
  }

let compute g local = run Solver.Inter g local
let compute_partial g local = run Solver.Union g local
