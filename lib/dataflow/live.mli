(** Live variables (backward, union).

    Used to measure temporary lifetimes: the paper's lifetime-optimality
    theorem is about how long the inserted temporaries stay live, and
    experiment EXP-T3 compares exactly these ranges across BCM/ALCM/LCM. *)

type t = {
  vars : Var_pool.t;
  livein : Lcm_cfg.Label.t -> Lcm_support.Bitvec.t;
  liveout : Lcm_cfg.Label.t -> Lcm_support.Bitvec.t;
  sweeps : int;
  visits : int;
}

(** [compute ?scratch ?exit_live g] runs liveness.  [exit_live] lists
    variables considered read after the exit block (defaults to the lowered
    return variable when present).  [scratch] backs the gen/kill sets and
    all solver state — results are then valid only until the arena's next
    reset. *)
val compute : ?scratch:Lcm_support.Arena.t -> ?exit_live:string list -> Lcm_cfg.Cfg.t -> t

(** [live_blocks t v] is the number of blocks at whose entry or exit [v] is
    live — a simple, placement-independent measure of register pressure. *)
val live_blocks : t -> Lcm_cfg.Cfg.t -> string -> int
