(** Dense numbering of the variables of a graph, for liveness vectors. *)

type t

(** [of_cfg g] numbers every variable assigned or read in [g]. *)
val of_cfg : Lcm_cfg.Cfg.t -> t

(** [of_list vars] numbers the given variables (duplicates collapse). *)
val of_list : string list -> t

(** [add t v] registers [v] if new; returns its index either way. *)
val add : t -> string -> int

val index : t -> string -> int option
val var : t -> int -> string
val size : t -> int
val to_list : t -> (int * string) list
