(** Availability (forward) of candidate expressions.

    An expression is *available* at a point when every path from the entry
    computes it after the last modification of its operands — in the paper's
    terms, when the point is *up-safe*.  [compute_partial] is the "may"
    variant (available along some path), needed by the Morel–Renvoise
    baseline. *)

type t = {
  avin : Lcm_cfg.Label.t -> Lcm_support.Bitvec.t;
  avout : Lcm_cfg.Label.t -> Lcm_support.Bitvec.t;
  sweeps : int;
  visits : int;
}

(** [scratch] backs all solver state (see {!Solver.run}); the result's
    vectors are then valid only until the arena's next reset.  Omitting it
    keeps the historical allocating behavior. *)
val compute : ?scratch:Lcm_support.Arena.t -> Lcm_cfg.Cfg.t -> Local.t -> t

val compute_partial : ?scratch:Lcm_support.Arena.t -> Lcm_cfg.Cfg.t -> Local.t -> t

(** Same fixpoint as {!compute} (bit-identical), solved slice-parallel on
    [pool] via {!Solver.run_par}; falls back to the sequential worklist
    below [threshold] bits per domain. *)
val compute_par :
  ?pool:Lcm_support.Pool.t ->
  ?threshold:int ->
  ?scratch:Lcm_support.Arena.t ->
  Lcm_cfg.Cfg.t ->
  Local.t ->
  t

(** [compute_keep] is {!compute} that additionally captures the fixpoint
    for incremental restart (heap copies; safe to retain across arena
    resets). *)
val compute_keep :
  ?scratch:Lcm_support.Arena.t -> Lcm_cfg.Cfg.t -> Local.t -> t * Solver.saved

(** [compute_incr g local ~prev ~dirty] re-solves availability on the
    patched graph [g] from the fixpoint saved before the patch, visiting
    only the affected region (see {!Solver.resolve}); also returns the
    region size.  [None] when [prev] is inadmissible (candidate pool
    width changed) — fall back to {!compute_keep}. *)
val compute_incr :
  ?scratch:Lcm_support.Arena.t ->
  Lcm_cfg.Cfg.t ->
  Local.t ->
  prev:Solver.saved ->
  dirty:Lcm_cfg.Label.t list ->
  (t * Solver.saved * int) option
