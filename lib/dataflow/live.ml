module Bitvec = Lcm_support.Bitvec
module Arena = Lcm_support.Arena
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Instr = Lcm_ir.Instr
module Expr = Lcm_ir.Expr

type t = {
  vars : Var_pool.t;
  livein : Label.t -> Bitvec.t;
  liveout : Label.t -> Bitvec.t;
  sweeps : int;
  visits : int;
}

let term_uses g l =
  match Cfg.term g l with
  | Cfg.Branch (Expr.Var v, _, _) -> [ v ]
  | Cfg.Branch (Expr.Const _, _, _) | Cfg.Goto _ | Cfg.Halt -> []

(* gen(b): upward-exposed uses; kill(b): all definitions. *)
let gen_kill ?scratch g vars l =
  let n = Var_pool.size vars in
  let gen = Arena.alloc scratch n and kill = Arena.alloc scratch n in
  let idx v = Var_pool.index vars v in
  let set bv v b = Option.iter (fun i -> Bitvec.set bv i b) (idx v) in
  List.iter (fun v -> set gen v true) (term_uses g l);
  List.iter
    (fun i ->
      (match Instr.defs i with
      | Some v ->
        set gen v false;
        set kill v true
      | None -> ());
      List.iter (fun v -> set gen v true) (Instr.uses i))
    (List.rev (Cfg.instrs g l));
  (gen, kill)

let compute ?scratch ?exit_live g =
  Lcm_obs.Trace.span_attrs "solve.live" @@ fun () ->
  let vars = Var_pool.of_cfg g in
  let n = Var_pool.size vars in
  let return_var = Lcm_cfg.Lower.return_var in
  let exit_live =
    match exit_live with
    | Some vs -> vs
    | None -> (match Var_pool.index vars return_var with Some _ -> [ return_var ] | None -> [])
  in
  let boundary = Arena.alloc scratch n in
  List.iter (fun v -> Option.iter (fun i -> Bitvec.set boundary i true) (Var_pool.index vars v)) exit_live;
  (* gen/kill as flat label-indexed arrays (labels are dense ints below
     [label_bound]), checked out of the arena like the solver state. *)
  let bound = Cfg.label_bound g in
  let gens = Arena.alloc_vec scratch bound and kills = Arena.alloc_vec scratch bound in
  List.iter
    (fun l ->
      let gen, kill = gen_kill ?scratch g vars l in
      gens.(l) <- gen;
      kills.(l) <- kill)
    (Cfg.labels g);
  let transfer l ~src ~dst =
    ignore (Bitvec.blit ~src ~dst);
    ignore (Bitvec.diff_into ~into:dst kills.(l));
    ignore (Bitvec.union_into ~into:dst gens.(l))
  in
  let result =
    Solver.run ?scratch g
      { Solver.nbits = n; direction = Solver.Backward; confluence = Solver.Union; boundary; transfer }
  in
  ( {
      vars;
      livein = result.Solver.block_in;
      liveout = result.Solver.block_out;
      sweeps = result.Solver.sweeps;
      visits = result.Solver.visits;
    },
    [
      ("sweeps", string_of_int result.Solver.sweeps);
      ("visits", string_of_int result.Solver.visits);
    ] )

let live_blocks t g v =
  match Var_pool.index t.vars v with
  | None -> 0
  | Some i ->
    List.fold_left
      (fun acc l ->
        acc + (if Bitvec.get (t.livein l) i then 1 else 0) + if Bitvec.get (t.liveout l) i then 1 else 0)
      0 (Cfg.labels g)
