(** Anticipatability (backward) of candidate expressions.

    An expression is *anticipatable* — the paper's *down-safe* — at a point
    when every path from the point to the exit computes it before any
    operand is modified.  Inserting a computation is safe exactly at
    down-safe points.  [compute_partial] is the "may" variant. *)

type t = {
  antin : Lcm_cfg.Label.t -> Lcm_support.Bitvec.t;
  antout : Lcm_cfg.Label.t -> Lcm_support.Bitvec.t;
  sweeps : int;
  visits : int;
}

(** [scratch] backs all solver state (see {!Solver.run}); the result's
    vectors are then valid only until the arena's next reset.  Omitting it
    keeps the historical allocating behavior. *)
val compute : ?scratch:Lcm_support.Arena.t -> Lcm_cfg.Cfg.t -> Local.t -> t

val compute_partial : ?scratch:Lcm_support.Arena.t -> Lcm_cfg.Cfg.t -> Local.t -> t

(** Same fixpoint as {!compute} (bit-identical), solved slice-parallel on
    [pool] via {!Solver.run_par}; falls back to the sequential worklist
    below [threshold] bits per domain. *)
val compute_par :
  ?pool:Lcm_support.Pool.t ->
  ?threshold:int ->
  ?scratch:Lcm_support.Arena.t ->
  Lcm_cfg.Cfg.t ->
  Local.t ->
  t

(** [compute_keep] is {!compute} that additionally captures the fixpoint
    for incremental restart; backward twin of {!Avail.compute_keep}. *)
val compute_keep :
  ?scratch:Lcm_support.Arena.t -> Lcm_cfg.Cfg.t -> Local.t -> t * Solver.saved

(** Backward twin of {!Avail.compute_incr}. *)
val compute_incr :
  ?scratch:Lcm_support.Arena.t ->
  Lcm_cfg.Cfg.t ->
  Local.t ->
  prev:Solver.saved ->
  dirty:Lcm_cfg.Label.t list ->
  (t * Solver.saved * int) option
