module Bitvec = Lcm_support.Bitvec
module Arena = Lcm_support.Arena
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Instr = Lcm_ir.Instr
module Expr = Lcm_ir.Expr
module Expr_pool = Lcm_ir.Expr_pool

(* Predicates live in flat arrays indexed by the dense label ints: the
   data-flow transfer functions read them on every visit, so the per-access
   hashing (and the [Some] allocated by [Hashtbl.find_opt]) of a table-based
   representation shows up directly in solver throughput.  [live] marks
   which slots belong to blocks of the graph. *)
type t = {
  pool : Expr_pool.t;
  graph : Cfg.t;
  antloc : Bitvec.t array;
  comp : Bitvec.t array;
  transp : Bitvec.t array;
  live : bool array;
}

(* One block's instruction scan, as a top-level recursion: a local closure
   would be allocated per block, and the [Instr.defs]/[Instr.candidate]
   option API would allocate a [Some] per instruction — this runs once per
   instruction of every request, so it matches on the instruction directly.

   The computation happens before the definition takes effect, so an
   instruction like [x := x + 1] exposes [x + 1] upwards but not
   downwards. *)
let rec scan_block pool reads_mask killed a c t = function
  | [] -> ()
  | i :: rest ->
    (match i with
    | Instr.Assign (v, e) ->
      if Expr.is_candidate e then begin
        let idx =
          match Expr_pool.index_exn pool e with
          | idx -> idx
          | exception Not_found ->
            invalid_arg "Local.compute: pool is missing a candidate of the graph"
        in
        if not (Bitvec.get killed idx) then Bitvec.set a idx true;
        Bitvec.set c idx true
      end;
      let m = reads_mask v in
      ignore (Bitvec.union_into ~into:killed m);
      ignore (Bitvec.diff_into ~into:t m);
      ignore (Bitvec.diff_into ~into:c m)
    | Instr.Print _ -> ()
    | Instr.Effect _ ->
      (* Opaque effect: kill every expression reading a variable it may
         clobber (destination plus operands — a call or store may alias).
         Never a candidate itself, so nothing enters [a]/[c]. *)
      List.iter
        (fun v ->
          let m = reads_mask v in
          ignore (Bitvec.union_into ~into:killed m);
          ignore (Bitvec.diff_into ~into:t m);
          ignore (Bitvec.diff_into ~into:c m))
        (Instr.kills i));
    scan_block pool reads_mask killed a c t rest

let compute ?scratch g pool =
  let n = Expr_pool.size pool in
  let bound = Cfg.label_bound g in
  let antloc = Arena.alloc_vec scratch bound
  and comp = Arena.alloc_vec scratch bound
  and transp = Arena.alloc_vec scratch bound in
  let live = Arena.alloc_bool scratch bound in
  (* Per-variable kill masks (bit set ⇔ the expression reads the variable),
     shared across blocks: applying a definition is then three word-wide
     vector ops instead of a per-bit loop over [Expr_pool.reading]. *)
  let mask_cache = Hashtbl.create 16 in
  let reads_mask v =
    match Hashtbl.find mask_cache v with
    | m -> m
    | exception Not_found ->
      let m = Arena.alloc scratch n in
      List.iter (fun idx -> Bitvec.set m idx true) (Expr_pool.reading pool v);
      Hashtbl.add mask_cache v m;
      m
  in
  (* [killed] tracks expressions whose operands have been modified by an
     earlier instruction of the current block. *)
  let killed = Arena.alloc scratch n in
  List.iter
    (fun l ->
      let a = Arena.alloc scratch n
      and c = Arena.alloc scratch n
      and t = Arena.alloc_full scratch n in
      Bitvec.fill killed false;
      scan_block pool reads_mask killed a c t (Cfg.instrs g l);
      antloc.(l) <- a;
      comp.(l) <- c;
      transp.(l) <- t;
      live.(l) <- true)
    (Cfg.labels g);
  { pool; graph = g; antloc; comp; transp; live }

let pool t = t.pool
let nbits t = Expr_pool.size t.pool

let[@inline] get t arr l what =
  if l >= 0 && l < Array.length arr && Array.unsafe_get t.live l then Array.unsafe_get arr l
  else invalid_arg (Printf.sprintf "Local.%s: unknown label B%d" what l)

let antloc t l = get t t.antloc l "antloc"
let comp t l = get t t.comp l "comp"
let transp t l = get t t.transp l "transp"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun l ->
      Format.fprintf ppf "%a: antloc=%a comp=%a transp=%a@," Label.pp l Bitvec.pp (antloc t l)
        Bitvec.pp (comp t l) Bitvec.pp (transp t l))
    (Cfg.labels t.graph);
  Format.fprintf ppf "@]"
