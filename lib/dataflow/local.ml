module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Instr = Lcm_ir.Instr
module Expr_pool = Lcm_ir.Expr_pool

(* Predicates live in flat arrays indexed by the dense label ints: the
   data-flow transfer functions read them on every visit, so the per-access
   hashing (and the [Some] allocated by [Hashtbl.find_opt]) of a table-based
   representation shows up directly in solver throughput.  [live] marks
   which slots belong to blocks of the graph. *)
type t = {
  pool : Expr_pool.t;
  graph : Cfg.t;
  antloc : Bitvec.t array;
  comp : Bitvec.t array;
  transp : Bitvec.t array;
  live : bool array;
}

let compute g pool =
  let n = Expr_pool.size pool in
  let bound = Cfg.label_bound g in
  let dummy = Bitvec.create 0 in
  let antloc = Array.make bound dummy
  and comp = Array.make bound dummy
  and transp = Array.make bound dummy in
  let live = Array.make bound false in
  (* Per-variable kill masks (bit set ⇔ the expression reads the variable),
     shared across blocks: applying a definition is then three word-wide
     vector ops instead of a per-bit loop over [Expr_pool.reading]. *)
  let mask_cache = Hashtbl.create 16 in
  let reads_mask v =
    match Hashtbl.find_opt mask_cache v with
    | Some m -> m
    | None ->
      let m = Bitvec.create n in
      List.iter (fun idx -> Bitvec.set m idx true) (Expr_pool.reading pool v);
      Hashtbl.add mask_cache v m;
      m
  in
  (* [killed] tracks expressions whose operands have been modified by an
     earlier instruction of the current block. *)
  let killed = Bitvec.create n in
  List.iter
    (fun l ->
      let a = Bitvec.create n and c = Bitvec.create n and t = Bitvec.create_full n in
      Bitvec.fill killed false;
      let scan i =
        (* The computation happens before the definition takes effect, so an
           instruction like [x := x + 1] exposes [x + 1] upwards but not
           downwards. *)
        (match Instr.candidate i with
        | Some e ->
          let idx =
            match Expr_pool.index pool e with
            | Some idx -> idx
            | None -> invalid_arg "Local.compute: pool is missing a candidate of the graph"
          in
          if not (Bitvec.get killed idx) then Bitvec.set a idx true;
          Bitvec.set c idx true
        | None -> ());
        match Instr.defs i with
        | Some v ->
          let m = reads_mask v in
          ignore (Bitvec.union_into ~into:killed m);
          ignore (Bitvec.diff_into ~into:t m);
          ignore (Bitvec.diff_into ~into:c m)
        | None -> ()
      in
      List.iter scan (Cfg.instrs g l);
      antloc.(l) <- a;
      comp.(l) <- c;
      transp.(l) <- t;
      live.(l) <- true)
    (Cfg.labels g);
  { pool; graph = g; antloc; comp; transp; live }

let pool t = t.pool
let nbits t = Expr_pool.size t.pool

let[@inline] get t arr l what =
  if l >= 0 && l < Array.length arr && Array.unsafe_get t.live l then Array.unsafe_get arr l
  else invalid_arg (Printf.sprintf "Local.%s: unknown label B%d" what l)

let antloc t l = get t t.antloc l "antloc"
let comp t l = get t t.comp l "comp"
let transp t l = get t t.transp l "transp"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun l ->
      Format.fprintf ppf "%a: antloc=%a comp=%a transp=%a@," Label.pp l Bitvec.pp (antloc t l)
        Bitvec.pp (comp t l) Bitvec.pp (transp t l))
    (Cfg.labels t.graph);
  Format.fprintf ppf "@]"
