module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Instr = Lcm_ir.Instr
module Expr_pool = Lcm_ir.Expr_pool

type t = {
  pool : Expr_pool.t;
  graph : Cfg.t;
  antloc : (Label.t, Bitvec.t) Hashtbl.t;
  comp : (Label.t, Bitvec.t) Hashtbl.t;
  transp : (Label.t, Bitvec.t) Hashtbl.t;
}

let compute g pool =
  let n = Expr_pool.size pool in
  let antloc = Hashtbl.create 64 and comp = Hashtbl.create 64 and transp = Hashtbl.create 64 in
  List.iter
    (fun l ->
      let a = Bitvec.create n and c = Bitvec.create n and t = Bitvec.create_full n in
      (* [killed] tracks expressions whose operands have been modified by an
         earlier instruction of this block. *)
      let killed = Bitvec.create n in
      let scan i =
        (* The computation happens before the definition takes effect, so an
           instruction like [x := x + 1] exposes [x + 1] upwards but not
           downwards. *)
        (match Instr.candidate i with
        | Some e ->
          let idx =
            match Expr_pool.index pool e with
            | Some idx -> idx
            | None -> invalid_arg "Local.compute: pool is missing a candidate of the graph"
          in
          if not (Bitvec.get killed idx) then Bitvec.set a idx true;
          Bitvec.set c idx true
        | None -> ());
        match Instr.defs i with
        | Some v ->
          List.iter
            (fun idx ->
              Bitvec.set killed idx true;
              Bitvec.set t idx false;
              Bitvec.set c idx false)
            (Expr_pool.reading pool v)
        | None -> ()
      in
      List.iter scan (Cfg.instrs g l);
      Hashtbl.replace antloc l a;
      Hashtbl.replace comp l c;
      Hashtbl.replace transp l t)
    (Cfg.labels g);
  { pool; graph = g; antloc; comp; transp }

let pool t = t.pool
let nbits t = Expr_pool.size t.pool

let get table l what =
  match Hashtbl.find_opt table l with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Local.%s: unknown label B%d" what l)

let antloc t l = get t.antloc l "antloc"
let comp t l = get t.comp l "comp"
let transp t l = get t.transp l "transp"

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun l ->
      Format.fprintf ppf "%a: antloc=%a comp=%a transp=%a@," Label.pp l Bitvec.pp (antloc t l)
        Bitvec.pp (comp t l) Bitvec.pp (transp t l))
    (Cfg.labels t.graph);
  Format.fprintf ppf "@]"
