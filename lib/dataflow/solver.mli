(** Generic iterative bit-vector data-flow solver.

    Solves one of the four classic problem shapes (forward/backward ×
    union/intersection) for all expressions simultaneously.  State lives in
    flat arrays indexed by label (labels are dense ints below
    [Cfg.label_bound]), and the default engine iterates with a worklist:
    blocks are seeded once in reverse postorder (forward) or postorder
    (backward), and afterwards only the direction-appropriate neighbors of a
    block whose transfer output changed are re-visited.  The round-robin
    sweep of the paper's cost model remains available as a reference engine
    ({!Sweep}) and is checked bit-identical against the worklist by the
    property tests. *)

(** Human-readable name of the default iteration engine (recorded in
    benchmark output). *)
val default_engine_name : string

(** Name of the domain-parallel engine ({!run_par}), for benchmark
    output. *)
val par_engine_name : string

type direction =
  | Forward
  | Backward

type confluence =
  | Union  (** "may" problems; interior initialized to all-zeros *)
  | Inter  (** "must" problems; interior initialized to all-ones *)

type engine =
  | Worklist  (** default: dedup priority queue in RPO/postorder priority *)
  | Sweep  (** reference: round-robin sweeps to a fixed point *)

type spec = {
  nbits : int;
  direction : direction;
  confluence : confluence;
  boundary : Lcm_support.Bitvec.t;
      (** the entry block's in-value (forward) or the exit block's out-value
          (backward) *)
  transfer : Lcm_cfg.Label.t -> src:Lcm_support.Bitvec.t -> dst:Lcm_support.Bitvec.t -> unit;
      (** [transfer l ~src ~dst] writes the block's transfer applied to
          [src] into [dst]; [dst] starts as a copy of [src]'s length, with
          unspecified contents. *)
}

type result = {
  block_in : Lcm_cfg.Label.t -> Lcm_support.Bitvec.t;
      (** value at block entry (meet result for forward problems) *)
  block_out : Lcm_cfg.Label.t -> Lcm_support.Bitvec.t;
      (** value at block exit (meet result for backward problems) *)
  sweeps : int;
      (** {!Sweep}: full passes over the block order, including the last,
          unchanged one.  {!Worklist}: the maximum number of times any
          single block was visited — the iteration depth, the worklist
          analogue of the sweep count. *)
  visits : int;  (** total transfer-function applications (both engines) *)
}

(** Returned vectors are owned by the result; callers must not mutate them.
    Both engines compute the same fixpoint (bit-identical for the monotone
    transfers used throughout this library); [engine] defaults to
    {!Worklist}.

    When [scratch] is given, every piece of solver state — the per-block
    meet/flow vectors (including those reachable through the result), the
    slot arrays, and the worklist machinery — is checked out of that arena
    instead of heap-allocated; the result is then only valid until the
    arena's next [reset].  Without it the behavior (and allocation) is
    unchanged. *)
val run : ?engine:engine -> ?scratch:Lcm_support.Arena.t -> Lcm_cfg.Cfg.t -> spec -> result

(** A fixpoint captured for later incremental restart: heap copies of every
    block's meet/flow vectors plus the shape facts ([nbits], direction,
    label bound, per-label reachability) needed to decide whether a later
    [resolve] against a patched graph is admissible.  Unlike a {!result}
    obtained under [?scratch], a [saved] never aliases arena storage, so it
    may be retained across requests. *)
type saved

(** [run_saved g spec] is [run g spec] (worklist engine) that additionally
    captures the fixpoint for incremental restart. *)
val run_saved :
  ?scratch:Lcm_support.Arena.t -> Lcm_cfg.Cfg.t -> spec -> result * saved

(** [resolve g spec ~prev ~dirty] re-solves [spec] on the patched graph
    [g], reusing the fixpoint [prev] saved before the patch: the affected
    region — the closure of [dirty] (plus any block added or whose
    reachability changed since the save) under flow dependents — is reset
    and re-iterated with the dense worklist seeded by it, while every other
    block keeps its saved value.  [dirty] must contain every block whose
    transfer function or meet inputs the patch changed (for a terminator
    edit: the block itself plus its old and new successors).

    Returns the result, a fresh [saved] for the next restart, and the
    region size in blocks ([visits] counts only region visits).  The result
    is bit-identical to a from-scratch [run g spec] — the property tests
    and the serving [delta] op's validate mode both assert this.  Returns
    [None] when [prev] is not admissible for [spec] ([nbits] or direction
    mismatch — e.g. the patch changed the candidate expression pool), in
    which case the caller should fall back to a full solve. *)
val resolve :
  ?scratch:Lcm_support.Arena.t ->
  Lcm_cfg.Cfg.t ->
  spec ->
  prev:saved ->
  dirty:Lcm_cfg.Label.t list ->
  (result * saved * int) option

(** Default [threshold] of {!run_par}, in bits per domain. *)
val default_par_threshold : int

(** [run_par ?pool ?threshold g spec ~slice] solves the same problem as
    [run g spec] by partitioning the [nbits] expression axis into
    word-aligned slices ({!Lcm_support.Bitvec.slice_bounds}) and running
    each slice's fixpoint on its own domain of [pool] (default:
    {!Lcm_support.Pool.default}).  Bit [i]'s fixpoint never depends on bit
    [j <> i], so the result is bit-identical to the sequential engines —
    slices are unique fixpoints of monotone systems, independent of pool
    scheduling.

    [slice ~lo ~len] must return a [len]-bit spec for bits
    [lo .. lo+len-1] of the full problem — same direction and confluence,
    boundary equal to the matching slice of the full boundary, transfer
    operating on [len]-bit vectors.  It is called from pool tasks and so
    must be safe to call from any domain; per-slice caches built inside the
    returned spec are confined to one domain.

    Falls back to [run g spec] when the problem is narrower than
    [threshold] (default {!default_par_threshold}) bits per available
    domain, or when the pool has a single domain.

    Counter semantics: [visits] is summed across slices (total transfer
    applications); [sweeps] is the maximum over slices (parallel iteration
    depth).

    [scratch] backs the sequential fallback and the caller-side assembly
    of the full-width result; slice fixpoints running on pool domains keep
    the heap path (an arena is single-owner per domain). *)
val run_par :
  ?pool:Lcm_support.Pool.t ->
  ?threshold:int ->
  ?scratch:Lcm_support.Arena.t ->
  Lcm_cfg.Cfg.t ->
  spec ->
  slice:(lo:int -> len:int -> spec) ->
  result
