(** Generic iterative bit-vector data-flow solver.

    Solves one of the four classic problem shapes (forward/backward ×
    union/intersection) for all expressions simultaneously, sweeping blocks
    in reverse postorder (forward) or postorder (backward) until a fixed
    point.  The solver reports how many sweeps and block visits it needed —
    the cost measure used by experiment EXP-C1. *)

type direction =
  | Forward
  | Backward

type confluence =
  | Union  (** "may" problems; interior initialized to all-zeros *)
  | Inter  (** "must" problems; interior initialized to all-ones *)

type spec = {
  nbits : int;
  direction : direction;
  confluence : confluence;
  boundary : Lcm_support.Bitvec.t;
      (** the entry block's in-value (forward) or the exit block's out-value
          (backward) *)
  transfer : Lcm_cfg.Label.t -> src:Lcm_support.Bitvec.t -> dst:Lcm_support.Bitvec.t -> unit;
      (** [transfer l ~src ~dst] writes the block's transfer applied to
          [src] into [dst]; [dst] starts as a copy of [src]'s length, with
          unspecified contents. *)
}

type result = {
  block_in : Lcm_cfg.Label.t -> Lcm_support.Bitvec.t;
      (** value at block entry (meet result for forward problems) *)
  block_out : Lcm_cfg.Label.t -> Lcm_support.Bitvec.t;
      (** value at block exit (meet result for backward problems) *)
  sweeps : int;  (** full passes over the block order, including the last, unchanged one *)
  visits : int;  (** total transfer-function applications *)
}

(** Returned vectors are owned by the result; callers must not mutate them. *)
val run : Lcm_cfg.Cfg.t -> spec -> result
