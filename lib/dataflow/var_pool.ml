type t = {
  table : (string, int) Hashtbl.t;
  mutable vars : string array;
  mutable size : int;
}

let create () = { table = Hashtbl.create 64; vars = Array.make 16 ""; size = 0 }

let add t v =
  match Hashtbl.find_opt t.table v with
  | Some i -> i
  | None ->
    if t.size = Array.length t.vars then begin
      let bigger = Array.make (2 * Array.length t.vars) "" in
      Array.blit t.vars 0 bigger 0 t.size;
      t.vars <- bigger
    end;
    let i = t.size in
    t.vars.(i) <- v;
    t.size <- i + 1;
    Hashtbl.add t.table v i;
    i

let of_list vars =
  let t = create () in
  List.iter (fun v -> ignore (add t v)) vars;
  t

let of_cfg g = of_list (Lcm_cfg.Cfg.all_vars g)

let index t v = Hashtbl.find_opt t.table v

let var t i =
  if i < 0 || i >= t.size then invalid_arg "Var_pool.var: index out of range";
  t.vars.(i)

let size t = t.size

let to_list t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    acc := (i, t.vars.(i)) :: !acc
  done;
  !acc
