module Bitvec = Lcm_support.Bitvec
module Arena = Lcm_support.Arena

type t = {
  antin : Lcm_cfg.Label.t -> Bitvec.t;
  antout : Lcm_cfg.Label.t -> Bitvec.t;
  sweeps : int;
  visits : int;
}

(* ANTIN(b) = ANTLOC(b) ∪ (ANTOUT(b) ∩ TRANSP(b)) *)
let transfer local l ~src ~dst =
  ignore (Bitvec.blit ~src ~dst);
  ignore (Bitvec.inter_into ~into:dst (Local.transp local l));
  ignore (Bitvec.union_into ~into:dst (Local.antloc local l))

let run confluence ?scratch g local =
  let nbits = Local.nbits local in
  let result =
    Solver.run ?scratch g
      {
        Solver.nbits;
        direction = Solver.Backward;
        confluence;
        boundary = Arena.alloc scratch nbits;
        transfer = transfer local;
      }
  in
  {
    antin = result.Solver.block_in;
    antout = result.Solver.block_out;
    sweeps = result.Solver.sweeps;
    visits = result.Solver.visits;
  }

(* Backward twin of [Avail.slice_spec]; see there for the ownership
   argument. *)
let slice_spec confluence local ~bound ~lo ~len =
  let transp_s = Array.make bound None and antloc_s = Array.make bound None in
  let view cache f l =
    match cache.(l) with
    | Some v -> v
    | None ->
      let v = Bitvec.slice (f local l) ~lo ~len in
      cache.(l) <- Some v;
      v
  in
  {
    Solver.nbits = len;
    direction = Solver.Backward;
    confluence;
    boundary = Bitvec.create len;
    transfer =
      (fun l ~src ~dst ->
        ignore (Bitvec.blit ~src ~dst);
        ignore (Bitvec.inter_into ~into:dst (view transp_s Local.transp l));
        ignore (Bitvec.union_into ~into:dst (view antloc_s Local.antloc l)));
  }

let run_par confluence ?pool ?threshold ?scratch g local =
  let nbits = Local.nbits local in
  let bound = Lcm_cfg.Cfg.label_bound g in
  let result =
    Solver.run_par ?pool ?threshold ?scratch g
      {
        Solver.nbits;
        direction = Solver.Backward;
        confluence;
        boundary = Arena.alloc scratch nbits;
        transfer = transfer local;
      }
      ~slice:(fun ~lo ~len -> slice_spec confluence local ~bound ~lo ~len)
  in
  {
    antin = result.Solver.block_in;
    antout = result.Solver.block_out;
    sweeps = result.Solver.sweeps;
    visits = result.Solver.visits;
  }

(* See [Avail.solve]. *)
let solve name f =
  Lcm_obs.Trace.span_attrs name (fun () ->
      let r = f () in
      (r, [ ("sweeps", string_of_int r.sweeps); ("visits", string_of_int r.visits) ]))

let compute ?scratch g local = solve "solve.antic" (fun () -> run Solver.Inter ?scratch g local)

let compute_partial ?scratch g local =
  solve "solve.antic.partial" (fun () -> run Solver.Union ?scratch g local)

let compute_par ?pool ?threshold ?scratch g local =
  solve "solve.antic" (fun () -> run_par Solver.Inter ?pool ?threshold ?scratch g local)

(* Incremental variants; backward twin of [Avail.compute_keep/_incr]. *)
let spec_of ?scratch local =
  let nbits = Local.nbits local in
  {
    Solver.nbits;
    direction = Solver.Backward;
    confluence = Solver.Inter;
    boundary = Arena.alloc scratch nbits;
    transfer = transfer local;
  }

let of_result (result : Solver.result) =
  {
    antin = result.Solver.block_in;
    antout = result.Solver.block_out;
    sweeps = result.Solver.sweeps;
    visits = result.Solver.visits;
  }

let compute_keep ?scratch g local =
  Lcm_obs.Trace.span_attrs "solve.antic" (fun () ->
      let result, saved = Solver.run_saved ?scratch g (spec_of ?scratch local) in
      let r = of_result result in
      ((r, saved), [ ("sweeps", string_of_int r.sweeps); ("visits", string_of_int r.visits) ]))

let compute_incr ?scratch g local ~prev ~dirty =
  Lcm_obs.Trace.span_attrs "solve.antic.incr" (fun () ->
      match Solver.resolve ?scratch g (spec_of ?scratch local) ~prev ~dirty with
      | None -> (None, [ ("fallback", "full") ])
      | Some (result, saved, region) ->
        ( Some (of_result result, saved, region),
          [ ("region", string_of_int region); ("visits", string_of_int result.Solver.visits) ] ))
