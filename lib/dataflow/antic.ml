module Bitvec = Lcm_support.Bitvec

type t = {
  antin : Lcm_cfg.Label.t -> Bitvec.t;
  antout : Lcm_cfg.Label.t -> Bitvec.t;
  sweeps : int;
  visits : int;
}

(* ANTIN(b) = ANTLOC(b) ∪ (ANTOUT(b) ∩ TRANSP(b)) *)
let transfer local l ~src ~dst =
  ignore (Bitvec.blit ~src ~dst);
  ignore (Bitvec.inter_into ~into:dst (Local.transp local l));
  ignore (Bitvec.union_into ~into:dst (Local.antloc local l))

let run confluence g local =
  let nbits = Local.nbits local in
  let result =
    Solver.run g
      {
        Solver.nbits;
        direction = Solver.Backward;
        confluence;
        boundary = Bitvec.create nbits;
        transfer = transfer local;
      }
  in
  {
    antin = result.Solver.block_in;
    antout = result.Solver.block_out;
    sweeps = result.Solver.sweeps;
    visits = result.Solver.visits;
  }

let compute g local = run Solver.Inter g local
let compute_partial g local = run Solver.Union g local
