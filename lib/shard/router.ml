module Daemon = Lcm_server.Daemon
module Protocol = Lcm_server.Protocol
module Frame = Lcm_server.Frame
module Json = Lcm_server.Json
module Stats = Lcm_server.Stats
module Smetrics = Lcm_server.Smetrics
module Handles = Lcm_server.Handles
module Chash = Lcm_support.Chash
module Fault = Lcm_support.Fault
module Journal = Lcm_support.Journal
module Cfg = Lcm_cfg.Cfg
module Cfg_text = Lcm_cfg.Cfg_text
module Frontend = Lcm_frontend.Frontend
module Trace = Lcm_obs.Trace

type config = {
  shards : int;
  cache_capacity : int;
  replicas : int;
  daemon : Daemon.config;
  socket_dir : string option;
  state_dir : string option;
  quiet : bool;
  stats : Stats.t;
}

let default_config () =
  {
    shards = 2;
    cache_capacity = 256;
    replicas = 32;
    daemon = Daemon.default_config ();
    socket_dir = None;
    state_dir = None;
    quiet = false;
    stats = Stats.create ();
  }

let shutdown_flag = Atomic.make false
let request_shutdown () = Atomic.set shutdown_flag true

(* ---- fleet state ---- *)

type client = {
  c_in : Unix.file_descr;
  c_out : Unix.file_descr;
  c_reader : Frame.reader;
  c_owns_fds : bool;
  mutable c_eof : bool;
  mutable c_dead : bool;
}

(* A coalesced duplicate of an in-flight cacheable run: answered from the
   primary's response under its own ids. *)
type waiter = { wt_client : client; wt_id : Json.t; wt_trace : string option }

type agg = {
  mutable a_remaining : int;
  a_reg : Stats.t;
  a_client : client;
  a_id : Json.t;
  a_trace : string option;
}

type kind =
  | K_run of { cache_key : string option }
  | K_delta
  | K_proxy  (* sleep / profile: retryable on any sibling *)
  | K_stats of agg

type pending = {
  p_client : client;
  p_orig_id : Json.t;
  p_trace : string option;
  p_kind : kind;
  p_frame : string;  (* the forwarded frame (internal id), kept for replay *)
  mutable p_worker : int;
  mutable p_attempts : int;
  mutable p_deaths : int;
      (* worker deaths this request's processing has coincided with; at
         two the router quarantines it as a poisoned request instead of
         feeding it to yet another worker *)
}

type worker = {
  w_id : int;
  w_sock : string;
  mutable w_pid : int;
  mutable w_fd : Unix.file_descr option;  (* the router<->worker pipe conn *)
  mutable w_reader : Frame.reader;
  mutable w_started : float;
  mutable w_restarts : int;
  mutable w_consecutive : int;  (* deaths without a healthy uptime in between *)
  mutable w_respawn_at : float;  (* dead worker: when the backoff allows respawn *)
  w_held : (int * pending) Queue.t;
      (* deltas parked while this worker is recovering (dead, but its
         handles are journaled): flushed onto it once it reconnects *)
}

(* A cached response plus enough to verify it on the way out: the key it
   was stored under and a CRC of the payload as serialized at insert. *)
type cached = {
  cd_key : string;
  cd_crc : int;
  cd_fields : (string * Json.t) list;  (* response fields minus id/trace_id/timing *)
}

type state = {
  cfg : config;
  m : Smetrics.t;
  ring : Chash.t;
  workers : worker array;
  cache : cached Cache.t;
  memo : string Cache.t;  (* raw-text digest -> canonical digest *)
  inflight : (string, waiter list ref) Hashtbl.t;  (* cache key -> coalesced dups *)
  pending : (int, pending) Hashtbl.t;  (* internal id -> in-flight request *)
  mutable next_internal : int;
  mutable rr : int;  (* round-robin cursor for proxied ops *)
  mutable epoch : int;  (* chaos epoch counter across all worker restarts *)
  mutable clients : client list;
  listen_fd : Unix.file_descr option;
}

let log st fmt =
  Printf.ksprintf
    (fun m ->
      if not st.cfg.quiet then begin
        Printf.eprintf "lcmd-router: %s\n" m;
        flush stderr
      end)
    fmt

let now () = Unix.gettimeofday ()
let alive w = w.w_fd <> None
let alive_fn st i = i >= 0 && i < Array.length st.workers && alive st.workers.(i)

(* With a state dir, workers journal their handles: a dead worker is
   "recovering" — it will rebuild every handle on respawn — rather than
   a total loss of its retained state. *)
let journaling st = st.cfg.state_dir <> None

let worker_state_dir st w = Option.map (fun d -> Filename.concat d (Printf.sprintf "worker-%d" w.w_id)) st.cfg.state_dir

let health st w = if alive w then "up" else if journaling st then "recovering" else "down"

(* ---- worker lifecycle ---- *)

(* Forked, not exec'd: the child keeps our address space but runs a whole
   daemon (its own domain pool, its own stats registry, its own handle
   table).  Forking happens strictly before any domain is spawned in this
   process — the router never creates domains. *)
let spawn_worker st w =
  (* Fresh fault epoch per incarnation, like the supervisor: without it a
     fixed LCM_CHAOS seed replays the predecessor's crash schedule. *)
  if st.epoch > 0 && Sys.getenv_opt Fault.env_var <> None then
    Unix.putenv Fault.epoch_env_var (string_of_int st.epoch);
  st.epoch <- st.epoch + 1;
  match Unix.fork () with
  | 0 ->
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Daemon.request_shutdown ()));
    Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> Daemon.request_shutdown ()));
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    ignore (Fault.install_from_env ());
    (* Drop the router's fds so a worker cannot pin a client connection
       (or the listener) past the router's own exit. *)
    Option.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) st.listen_fd;
    List.iter
      (fun c ->
        (try Unix.close c.c_in with Unix.Unix_error _ -> ());
        if c.c_out <> c.c_in then try Unix.close c.c_out with Unix.Unix_error _ -> ())
      st.clients;
    Array.iter
      (fun w' -> Option.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) w'.w_fd)
      st.workers;
    let dcfg =
      {
        st.cfg.daemon with
        Daemon.worker_id = Some w.w_id;
        stats = Stats.create ();
        (* Metrics survive this worker's own restarts (merged back in at
           startup); the stats op then reports fleet-lifetime counts. *)
        state_file = Some (w.w_sock ^ ".state");
        (* Each incarnation of slot [w_id] reads and writes the same
           journal directory: respawn hands the worker its predecessor's
           journals and it rebuilds every handle before serving. *)
        state_dir = worker_state_dir st w;
      }
    in
    (try
       Daemon.serve_unix_socket dcfg ~path:w.w_sock;
       Stdlib.exit 0
     with e ->
       Printf.eprintf "lcmd-worker%d: fatal: %s\n%!" w.w_id (Printexc.to_string e);
       Stdlib.exit 70)
  | pid ->
    w.w_pid <- pid;
    w.w_started <- now ()

(* The worker needs a beat to bind its socket; retry the connect briefly. *)
let connect_worker st w =
  let deadline = now () +. 10. in
  let rec go () =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX w.w_sock) with
    | () ->
      w.w_fd <- Some fd;
      w.w_reader <- Frame.create ~max_frame:st.cfg.daemon.Daemon.max_frame
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EINTR), _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if now () > deadline then log st "worker %d: cannot connect to %s" w.w_id w.w_sock
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

(* ---- frame plumbing ---- *)

let send_client c frame =
  if not c.c_dead then
    try Frame.write_frame c.c_out frame
    with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF | Unix.ECONNRESET), _, _) -> c.c_dead <- true

(* Replace (or insert, first) a top-level field of a parsed frame,
   preserving the order of everything else. *)
let set_field name v fields =
  if List.mem_assoc name fields then
    List.map (fun (k, x) -> if String.equal k name then (k, v) else (k, x)) fields
  else (name, v) :: fields

let drop_fields names fields = List.filter (fun (k, _) -> not (List.mem k names)) fields

let obj_fields = function Json.Obj fs -> fs | _ -> []

(* Restore a response's correlation ids: the forwarded frame carried our
   internal id (trace_id passed through untouched), coalesced waiters get
   their own id and trace. *)
let rewrite_ids ~id ~trace fields =
  let fields = set_field "id" id fields in
  match trace with
  | Some t -> set_field "trace_id" (Json.String t) fields
  | None -> drop_fields [ "trace_id" ] fields

let render_hit ~id ~trace stored =
  let tid = match trace with Some t -> [ ("trace_id", Json.String t) ] | None -> [] in
  Json.to_string (Json.Obj ((("id", id) :: tid) @ stored @ [ ("cache", Json.String "hit") ]))

let trace_of req_fields = Option.bind (List.assoc_opt "trace_id" req_fields) Json.to_string_opt
let id_of req_fields = Option.value (List.assoc_opt "id" req_fields) ~default:Json.Null

(* ---- routing keys ---- *)

(* The canonical content of a run request.  Frontends that declare
   [route_canonical] (cfg, bril) are parsed + reprinted to the canonical
   Cfg text, so structurally identical graphs share one digest however —
   and in whichever format — the client wrote them.  An unparsable
   program routes (and caches, harmlessly: the worker answers the same
   parse_error every time) by its raw text; so do formats keyed on
   source (miniimp — lowering happens on the worker) and unregistered
   format names (the worker answers unsupported_format). *)
let canonical_content (r : Protocol.run_request) =
  match Frontend.find r.Protocol.format with
  | Some fe when fe.Frontend.route_canonical -> (
    match Frontend.parse_one fe ?func:r.Protocol.func r.Protocol.program with
    | Ok g -> Cfg.to_string g
    | Error _ -> r.Protocol.program)
  | Some _ | None ->
    r.Protocol.format ^ "|" ^ Option.value r.Protocol.func ~default:"" ^ "|" ^ r.Protocol.program

let route_digest content = Digest.to_hex (Digest.string content)

(* The canonicalizing reparse above costs ~100x an MD5 of the raw bytes,
   and every repeat of the same request text (retries, dup-heavy
   corpora, cache hits) would pay it again.  The memo recalls the
   canonical digest by raw-text digest instead.  It maps a pure function
   of (format, func, program) — entries can never go stale — and it is a
   bounded LRU, so a stream of unique texts just cycles it. *)
let memo_capacity = 4096

let raw_digest (r : Protocol.run_request) =
  Digest.string
    (r.Protocol.format ^ "\x00" ^ Option.value r.Protocol.func ~default:"" ^ "\x00"
   ^ r.Protocol.program)

let digest_of_run st (r : Protocol.run_request) =
  let raw = raw_digest r in
  match Cache.find st.memo raw with
  | Some d ->
    Stats.bump st.m.Smetrics.digest_memo_hits;
    d
  | None ->
    let d = route_digest (canonical_content r) in
    ignore (Cache.add st.memo raw d);
    d

(* Every option that shapes the response payload is part of the cache
   key; deadline and trace do not (timing is dropped from cached
   responses). *)
let cache_key ~digest (r : Protocol.run_request) =
  Printf.sprintf "%s|%s|%b|%d|%b" digest r.Protocol.algorithm r.Protocol.simplify
    r.Protocol.workers r.Protocol.validate

(* ---- forwarding ---- *)

exception Worker_gone of int

let worker_write w frame =
  (* Chaos: the worker connection failed exactly at the forward — the
     same observable as EPIPE, exercising death handling and replay. *)
  if Fault.fire "shard.forward" then raise (Worker_gone w.w_id);
  match w.w_fd with
  | None -> raise (Worker_gone w.w_id)
  | Some fd -> (
    try Frame.write_frame fd frame
    with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF | Unix.ECONNRESET), _, _) ->
      raise (Worker_gone w.w_id))

let make_pending st client ~kind ~worker ?(deaths = 0) req_fields =
  let internal = st.next_internal in
  st.next_internal <- internal + 1;
  let frame = Json.to_string (Json.Obj (set_field "id" (Json.Int internal) req_fields)) in
  ( internal,
    {
      p_client = client;
      p_orig_id = id_of req_fields;
      p_trace = trace_of req_fields;
      p_kind = kind;
      p_frame = frame;
      p_worker = worker;
      p_attempts = 1;
      p_deaths = deaths;
    } )

(* Forward [req_fields] (the client's parsed frame) to [worker] under a
   fresh internal id.  May raise [Worker_gone]; callers route around the
   corpse and retry via [handle_worker_death]. *)
let forward st client ~kind ~worker req_fields =
  let internal, p = make_pending st client ~kind ~worker req_fields in
  Hashtbl.replace st.pending internal p;
  Stats.bump (st.m.Smetrics.shard_routed worker);
  worker_write st.workers.(worker) p.p_frame

(* Park a delta for a recovering worker: it is not forwarded (and not in
   [pending]) until the worker reconnects with its handles rebuilt. *)
let hold st client ~worker req_fields =
  let internal, p = make_pending st client ~kind:K_delta ~worker req_fields in
  Stats.bump st.m.Smetrics.shard_held;
  Queue.push (internal, p) st.workers.(worker).w_held

let inline_error st client ~id ~trace ~code ~message =
  Smetrics.error st.m code;
  send_client client (Protocol.error ~id ?trace_id:trace ~code ~message ())

(* Quarantine: the request's processing has now coincided with two worker
   deaths.  Odds are the request is what kills them — replaying it again
   would cycle the ring killing workers (the retry storm). *)
let poison st p =
  Stats.bump st.m.Smetrics.shard_poisoned;
  inline_error st p.p_client ~id:p.p_orig_id ~trace:p.p_trace ~code:Protocol.Poisoned_request
    ~message:
      "request quarantined: its processing coincided with two worker crashes — not replayed again"

(* ---- the stats broadcast ---- *)

let shard_info st =
  ( "shard",
    Json.Obj
      [
        ("workers", Json.Int st.cfg.shards);
        ( "fleet",
          Json.List
            (Array.to_list
               (Array.map
                  (fun w ->
                    Json.Obj
                      [
                        ("worker", Json.Int w.w_id);
                        ("pid", Json.Int w.w_pid);
                        ("alive", Json.Bool (alive w));
                        ("health", Json.String (health st w));
                        ("held", Json.Int (Queue.length w.w_held));
                        ("restarts", Json.Int w.w_restarts);
                      ])
                  st.workers)) );
      ] )

let finalize_stats st agg =
  (* Fold the router's own counters into the merged worker registries. *)
  Stats.record_gc st.cfg.stats;
  Stats.merge_snapshot agg.a_reg (Stats.snapshot st.cfg.stats);
  let merged =
    match Stats.snapshot agg.a_reg with
    | Json.Obj fields -> Json.Obj (fields @ [ shard_info st ])
    | j -> j
  in
  send_client agg.a_client
    (Protocol.ok_stats ~id:agg.a_id ?trace_id:agg.a_trace ~stats:merged ())

let broadcast_stats st client req_fields =
  let live = Array.to_list st.workers |> List.filter alive in
  let agg =
    {
      a_remaining = List.length live;
      a_reg = Stats.create ();
      a_client = client;
      a_id = id_of req_fields;
      a_trace = trace_of req_fields;
    }
  in
  if live = [] then finalize_stats st agg
  else
    List.iter
      (fun w ->
        try forward st client ~kind:(K_stats agg) ~worker:w.w_id req_fields
        with Worker_gone _ ->
          agg.a_remaining <- agg.a_remaining - 1;
          if agg.a_remaining = 0 then finalize_stats st agg)
      live

(* ---- worker responses ---- *)

let respond_waiters st ~cache_key ~stored ~response_fields =
  match Hashtbl.find_opt st.inflight cache_key with
  | None -> ()
  | Some waiters ->
    Hashtbl.remove st.inflight cache_key;
    List.iter
      (fun wt ->
        let frame =
          match stored with
          | Some s -> render_hit ~id:wt.wt_id ~trace:wt.wt_trace s
          | None ->
            (* The primary failed; every coalesced duplicate gets the same
               (error) response under its own ids. *)
            Json.to_string (Json.Obj (rewrite_ids ~id:wt.wt_id ~trace:wt.wt_trace response_fields))
        in
        send_client wt.wt_client frame)
      (List.rev !waiters)

let handle_worker_frame st frame =
  let j = try Json.parse frame with Json.Parse_error _ -> Json.Null in
  match Option.bind (Json.member "id" j) Json.to_int_opt with
  | None -> ()  (* not one of ours (or unparsable): drop *)
  | Some internal -> (
    match Hashtbl.find_opt st.pending internal with
    | None -> ()  (* response from a replaced incarnation; already retried *)
    | Some p -> (
      Hashtbl.remove st.pending internal;
      match p.p_kind with
      | K_stats agg ->
        Option.iter (Stats.merge_snapshot agg.a_reg) (Json.member "stats" j);
        agg.a_remaining <- agg.a_remaining - 1;
        if agg.a_remaining <= 0 then finalize_stats st agg
      | K_run { cache_key } ->
        let fields = obj_fields j in
        send_client p.p_client
          (Json.to_string (Json.Obj (rewrite_ids ~id:p.p_orig_id ~trace:p.p_trace fields)));
        Option.iter
          (fun key ->
            let ok =
              Json.member "status" j = Some (Json.String "ok")
              && Json.member "degraded" j = None
            in
            let stored =
              if ok then Some (drop_fields [ "id"; "trace_id"; "timing" ] fields) else None
            in
            Option.iter
              (fun s ->
                let crc = Journal.crc32 (Json.to_string (Json.Obj s)) in
                (* Chaos: the insert wrote a corrupt entry — the integrity
                   guard on the hit path must catch it. *)
                let crc = if Fault.fire "shard.cache.insert" then crc lxor 1 else crc in
                let evicted = Cache.add st.cache key { cd_key = key; cd_crc = crc; cd_fields = s } in
                if evicted > 0 then Stats.bump ~by:evicted st.m.Smetrics.cache_evictions)
              stored;
            respond_waiters st ~cache_key:key ~stored ~response_fields:fields)
          cache_key
      | K_delta | K_proxy ->
        send_client p.p_client
          (Json.to_string
             (Json.Obj (rewrite_ids ~id:p.p_orig_id ~trace:p.p_trace (obj_fields j))))))

(* ---- worker death: retry, reap, respawn ---- *)

let handle_worker_death st w =
  if alive w then begin
    Option.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) w.w_fd;
    w.w_fd <- None;
    let uptime = now () -. w.w_started in
    w.w_consecutive <- (if uptime >= 2. then 1 else w.w_consecutive + 1);
    let backoff =
      Float.min 1. (0.05 *. Float.pow 2. (float_of_int (w.w_consecutive - 1)))
    in
    w.w_respawn_at <- now () +. backoff;
    log st "worker %d (pid %d) died after %.1f s; respawn in %.0f ms" w.w_id w.w_pid uptime
      (backoff *. 1000.);
    (* Reassign the corpse's in-flight work — in admission order
       (internal ids are monotonic), so a stream of deltas on one handle
       replays in the order the client sent it. *)
    let victims =
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold
           (fun i p acc -> if p.p_worker = w.w_id then (i, p) :: acc else acc)
           st.pending [])
    in
    List.iter
      (fun (internal, p) ->
        Hashtbl.remove st.pending internal;
        p.p_deaths <- p.p_deaths + 1;
        match p.p_kind with
        | K_stats agg ->
          agg.a_remaining <- agg.a_remaining - 1;
          if agg.a_remaining <= 0 then finalize_stats st agg
        | _ when p.p_deaths >= 2 -> poison st p
        | K_delta when journaling st ->
          (* The handle is journaled: park the frame and replay it on this
             same worker once its handles are rebuilt.  Replaying onto a
             sibling would be wrong — no other worker holds the handle. *)
          Stats.bump st.m.Smetrics.shard_replays;
          Stats.bump st.m.Smetrics.shard_held;
          Queue.push (internal, p) w.w_held
        | K_delta ->
          (* Without a journal, handles die with their worker: a replay
             elsewhere could only answer unknown_handle anyway — say so
             directly. *)
          inline_error st p.p_client ~id:p.p_orig_id ~trace:p.p_trace
            ~code:Protocol.Unknown_handle
            ~message:
              (Printf.sprintf "worker %d crashed; its retained handles are gone — re-submit with \
                               retain:true" w.w_id)
        | K_run _ | K_proxy -> (
          (* Crash transparency: replay the identical frame — same payload,
             same trace_id — on the ring successor.  Hops are capped at
             ring size: past that every worker has refused (or died under)
             the frame once. *)
          match Chash.successor st.ring ~alive:(alive_fn st) w.w_id with
          | Some next when p.p_attempts < st.cfg.shards ->
            Stats.bump st.m.Smetrics.shard_retries;
            Stats.bump st.m.Smetrics.shard_replays;
            p.p_attempts <- p.p_attempts + 1;
            p.p_worker <- next;
            Hashtbl.replace st.pending internal p;
            Stats.bump (st.m.Smetrics.shard_routed next);
            (try worker_write st.workers.(next) p.p_frame
             with Worker_gone _ ->
               (* The sibling died between our liveness check and the
                  write; the recursive death handler will retry again. *)
               ())
          | _ ->
            inline_error st p.p_client ~id:p.p_orig_id ~trace:p.p_trace ~code:Protocol.Internal
              ~message:"no worker could serve the request (fleet unavailable)"))
      victims
  end

(* Replay the deltas parked while [w] was recovering.  Every handle was
   rebuilt from its journal before the worker's accept loop started, so
   the frames land on a worker that again holds them.  If the worker dies
   again mid-flush, the unsent remainder goes back through the death
   handler (which re-holds or poisons each one). *)
let flush_held st w =
  let rec go () =
    if alive w && not (Queue.is_empty w.w_held) then begin
      let internal, p = Queue.pop w.w_held in
      p.p_worker <- w.w_id;
      Hashtbl.replace st.pending internal p;
      Stats.bump (st.m.Smetrics.shard_routed w.w_id);
      (match worker_write w p.p_frame with
      | () -> ()
      | exception Worker_gone _ ->
        Hashtbl.remove st.pending internal;
        Queue.push (internal, p) w.w_held;
        handle_worker_death st w);
      go ()
    end
  in
  go ()

let reap st =
  Array.iter
    (fun w ->
      if w.w_pid > 0 then
        match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
        | 0, _ -> ()
        | _, _ ->
          w.w_pid <- -w.w_pid;  (* remember it for the stats fleet view, negated = reaped *)
          handle_worker_death st w
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
          w.w_pid <- -w.w_pid;
          handle_worker_death st w
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    st.workers

let respawn_due st =
  Array.iter
    (fun w ->
      if (not (alive w)) && now () >= w.w_respawn_at && not (Atomic.get shutdown_flag) then begin
        (* A corpse we could not connect to may still be running: make
           sure the slot is empty before forking into it. *)
        if w.w_pid > 0 then begin
          (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ()
        end;
        Stats.bump st.m.Smetrics.shard_restarts;
        w.w_restarts <- w.w_restarts + 1;
        spawn_worker st w;
        connect_worker st w;
        if alive w then begin
          log st "worker %d respawned (pid %d)" w.w_id w.w_pid;
          (* Safe even while the worker is still replaying its journal:
             it binds the socket before recovery, so frames flushed now
             queue in the socket buffer and are only processed by the
             serve loop, which starts after every handle is rebuilt. *)
          if not (Queue.is_empty w.w_held) then begin
            log st "worker %d: replaying %d held delta(s)" w.w_id (Queue.length w.w_held);
            flush_held st w
          end
        end
      end)
    st.workers

(* ---- request admission ---- *)

let process_frame st client line =
  Stats.bump st.m.Smetrics.frames_total;
  match Protocol.parse_request line with
  | Error (id, trace, code, message) -> inline_error st client ~id ~trace ~code ~message
  | Ok req -> (
    Stats.bump st.m.Smetrics.requests_total;
    let req_fields = obj_fields (Json.parse line) in
    let id = req.Protocol.id in
    let trace = req.Protocol.trace_id in
    match req.Protocol.op with
    | Protocol.Ping ->
      Stats.bump st.m.Smetrics.responses_ok;
      send_client client (Protocol.ok_ping ~id ?trace_id:trace ())
    | Protocol.Stats -> broadcast_stats st client req_fields
    | Protocol.Profile | Protocol.Sleep _ -> (
      (* Proxied, load-insensitive ops: round-robin over the live fleet. *)
      let n = Array.length st.workers in
      let rec pick k = if k >= n then None else
          let i = (st.rr + k) mod n in
          if alive_fn st i then Some i else pick (k + 1)
      in
      st.rr <- st.rr + 1;
      match pick 0 with
      | None ->
        inline_error st client ~id ~trace ~code:Protocol.Internal
          ~message:"no worker available"
      | Some w -> (
        try forward st client ~kind:K_proxy ~worker:w req_fields
        with Worker_gone wid -> handle_worker_death st st.workers.(wid)))
    | Protocol.Delta d -> (
      match Handles.worker_of_handle d.Protocol.d_handle with
      | Some w when alive_fn st w -> (
        try forward st client ~kind:K_delta ~worker:w req_fields
        with Worker_gone wid -> handle_worker_death st st.workers.(wid))
      | Some w
        when journaling st && w < Array.length st.workers && not (Atomic.get shutdown_flag) ->
        (* Recovering worker: its handles are journaled and will be back
           once it respawns.  Park the frame instead of failing it. *)
        hold st client ~worker:w req_fields
      | Some _ | None ->
        inline_error st client ~id ~trace ~code:Protocol.Unknown_handle
          ~message:
            (Printf.sprintf "unknown handle %S: no live worker holds it" d.Protocol.d_handle))
    | Protocol.Run r -> (
      let digest = digest_of_run st r in
      let key = if r.Protocol.retain then None else Some (cache_key ~digest r) in
      let serve_miss () =
        match Chash.lookup_alive st.ring ~alive:(alive_fn st) digest with
        | None ->
          inline_error st client ~id ~trace ~code:Protocol.Internal
            ~message:"no worker available"
        | Some w -> (
          Option.iter (fun k -> Hashtbl.replace st.inflight k (ref [])) key;
          try forward st client ~kind:(K_run { cache_key = key }) ~worker:w req_fields
          with Worker_gone wid -> handle_worker_death st st.workers.(wid))
      in
      match key with
      | None -> serve_miss ()
      | Some k -> (
        let hit =
          match Cache.find st.cache k with
          | None -> None
          | Some stored ->
            (* Integrity guard: the entry must still be keyed by the
               digest we asked for and its payload must match the
               checksum taken at insert.  A corrupt entry is dropped and
               the request falls through to a real solve. *)
            if
              String.equal stored.cd_key k
              && Journal.crc32 (Json.to_string (Json.Obj stored.cd_fields)) = stored.cd_crc
            then Some stored
            else begin
              Stats.bump st.m.Smetrics.cache_corrupt;
              Cache.remove st.cache k;
              None
            end
        in
        match hit with
        | Some stored ->
          (* Content-addressed hit: identical canonical graph + options,
             answered without any worker (or solver) involvement. *)
          Stats.bump st.m.Smetrics.cache_hits;
          Stats.bump st.m.Smetrics.responses_ok;
          send_client client (render_hit ~id ~trace stored.cd_fields)
        | None -> (
          match Hashtbl.find_opt st.inflight k with
          | Some waiters ->
            (* Same request already on a worker: wait for that answer
               instead of solving twice. *)
            Stats.bump st.m.Smetrics.cache_hits;
            waiters := { wt_client = client; wt_id = id; wt_trace = trace } :: !waiters
          | None ->
            Stats.bump st.m.Smetrics.cache_misses;
            serve_miss ()))))

(* ---- event loop ---- *)

let drain_inflight_errors st =
  (* Shutdown with work still in flight (worker never answered): fail the
     waiters explicitly rather than dropping the connection silently. *)
  Hashtbl.iter
    (fun _ p ->
      match p.p_kind with
      | K_stats agg ->
        if agg.a_remaining > 0 then begin
          agg.a_remaining <- 0;
          finalize_stats st agg
        end
      | _ ->
        inline_error st p.p_client ~id:p.p_orig_id ~trace:p.p_trace ~code:Protocol.Shutting_down
          ~message:"router shutting down before the worker answered")
    st.pending;
  Hashtbl.reset st.pending;
  (* Deltas parked for a recovering worker never reached st.pending. *)
  Array.iter
    (fun w ->
      Queue.iter
        (fun (_, p) ->
          inline_error st p.p_client ~id:p.p_orig_id ~trace:p.p_trace
            ~code:Protocol.Shutting_down
            ~message:"router shutting down before the worker recovered")
        w.w_held;
      Queue.clear w.w_held)
    st.workers

let teardown st =
  drain_inflight_errors st;
  Array.iter
    (fun w ->
      Option.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) w.w_fd;
      w.w_fd <- None;
      if w.w_pid > 0 then begin
        (try Unix.kill w.w_pid Sys.sigterm with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ())
      end;
      (try Unix.unlink w.w_sock with Unix.Unix_error _ -> ());
      (try Unix.unlink (w.w_sock ^ ".state") with Unix.Unix_error _ -> ()))
    st.workers;
  List.iter
    (fun c ->
      if c.c_owns_fds then begin
        (try Unix.close c.c_in with Unix.Unix_error _ -> ());
        if c.c_out <> c.c_in then try Unix.close c.c_out with Unix.Unix_error _ -> ()
      end)
    st.clients;
  Atomic.set shutdown_flag false

let mk_client ?(owns_fds = false) ~max_frame ~fd_in ~fd_out () =
  {
    c_in = fd_in;
    c_out = fd_out;
    c_reader = Frame.create ~max_frame;
    c_owns_fds = owns_fds;
    c_eof = false;
    c_dead = false;
  }

let read_client st c =
  let chunk = Frame.read_chunk c.c_reader in
  match Unix.read c.c_in chunk 0 (Bytes.length chunk) with
  | 0 -> c.c_eof <- true
  | n ->
    List.iter
      (function
        | Frame.Frame line -> process_frame st c line
        | Frame.Oversized bytes ->
          Stats.bump st.m.Smetrics.rejected_oversized;
          inline_error st c ~id:Json.Null ~trace:None ~code:Protocol.Oversized
            ~message:
              (Printf.sprintf "frame of %d bytes exceeds max_frame=%d" bytes
                 st.cfg.daemon.Daemon.max_frame))
      (Frame.feed c.c_reader chunk n)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) -> c.c_eof <- true

let read_worker st w =
  match w.w_fd with
  | None -> ()
  | Some fd -> (
    let chunk = Frame.read_chunk w.w_reader in
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> handle_worker_death st w
    | n ->
      List.iter
        (function Frame.Frame line -> handle_worker_frame st line | Frame.Oversized _ -> ())
        (Frame.feed w.w_reader chunk n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) ->
      handle_worker_death st w)

let serve_loop st =
  let stop = ref false in
  while not !stop do
    reap st;
    respawn_due st;
    let read_fds =
      (match st.listen_fd with Some fd when not (Atomic.get shutdown_flag) -> [ fd ] | _ -> [])
      @ List.filter_map (fun c -> if c.c_eof || c.c_dead then None else Some c.c_in) st.clients
      @ List.filter_map (fun w -> w.w_fd) (Array.to_list st.workers)
    in
    (match Unix.select read_fds [] [] 0.02 with
    | readable, _, _ ->
      (match st.listen_fd with
      | Some lfd when List.mem lfd readable -> (
        match Unix.accept ~cloexec:true lfd with
        | fd, _ ->
          (* Chaos: drop the connection at the door, as a flaky network
             stack would. *)
          if Fault.fire "shard.accept" then begin
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Stats.bump st.m.Smetrics.accept_failures
          end
          else begin
            Stats.bump st.m.Smetrics.connections_total;
            st.clients <-
              mk_client ~owns_fds:true ~max_frame:st.cfg.daemon.Daemon.max_frame ~fd_in:fd
                ~fd_out:fd ()
              :: st.clients
          end
        | exception Unix.Unix_error _ -> Stats.bump st.m.Smetrics.accept_failures)
      | _ -> ());
      List.iter (fun c -> if (not c.c_eof) && (not c.c_dead) && List.mem c.c_in readable then read_client st c) st.clients;
      Array.iter
        (fun w -> match w.w_fd with Some fd when List.mem fd readable -> read_worker st w | _ -> ())
        st.workers
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    (* Closed clients whose responses are all out can be dropped. *)
    st.clients <-
      List.filter
        (fun c ->
          let held_for c =
            Array.exists
              (fun w -> Queue.fold (fun acc (_, p) -> acc || p.p_client == c) false w.w_held)
              st.workers
          in
          let gone =
            (c.c_eof || c.c_dead)
            && (not (Hashtbl.fold (fun _ p acc -> acc || p.p_client == c) st.pending false))
            && not (held_for c)
          in
          if gone && c.c_owns_fds then begin
            (try Unix.close c.c_in with Unix.Unix_error _ -> ());
            if c.c_out <> c.c_in then (try Unix.close c.c_out with Unix.Unix_error _ -> ())
          end;
          not gone)
        st.clients;
    if Atomic.get shutdown_flag && Hashtbl.length st.pending = 0 then stop := true;
    (* fd mode: end of input + nothing in flight = graceful drain.  Held
       deltas count as in flight: their worker is recovering and will
       answer them after its respawn. *)
    if
      st.listen_fd = None
      && List.for_all (fun c -> c.c_eof || c.c_dead) st.clients
      && Hashtbl.length st.pending = 0
      && Array.for_all (fun w -> Queue.is_empty w.w_held) st.workers
    then stop := true
  done

let make_state cfg ?listen_fd clients =
  let socket_dir =
    match cfg.socket_dir with
    | Some d -> d
    | None ->
      let d =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "lcmd-shard-%d" (Unix.getpid ()))
      in
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      d
  in
  if cfg.shards < 1 then invalid_arg "Router: shards < 1";
  let workers =
    Array.init cfg.shards (fun i ->
        {
          w_id = i;
          w_sock = Filename.concat socket_dir (Printf.sprintf "worker-%d.sock" i);
          w_pid = 0;
          w_fd = None;
          w_reader = Frame.create ~max_frame:cfg.daemon.Daemon.max_frame;
          w_started = 0.;
          w_restarts = 0;
          w_consecutive = 0;
          w_respawn_at = 0.;
          w_held = Queue.create ();
        })
  in
  let st =
    {
      cfg;
      m = Smetrics.create cfg.stats;
      ring = Chash.create ~nodes:cfg.shards ~replicas:cfg.replicas;
      workers;
      cache = Cache.create ~capacity:cfg.cache_capacity;
      memo = Cache.create ~capacity:memo_capacity;
      inflight = Hashtbl.create 64;
      pending = Hashtbl.create 64;
      next_internal = 1;
      rr = 0;
      epoch = 0;
      clients;
      listen_fd;
    }
  in
  Array.iter
    (fun w ->
      spawn_worker st w;
      connect_worker st w)
    st.workers;
  log st "routing over %d workers (cache=%d entries, replicas=%d)" cfg.shards cfg.cache_capacity
    cfg.replicas;
  st

let serve_fds cfg ~fd_in ~fd_out =
  let client = mk_client ~max_frame:cfg.daemon.Daemon.max_frame ~fd_in ~fd_out () in
  let st = make_state cfg [ client ] in
  Fun.protect ~finally:(fun () -> teardown st) (fun () -> serve_loop st)

let serve_unix_socket cfg ~path =
  let lfd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 64;
  let st = make_state cfg ~listen_fd:lfd [] in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      teardown st)
    (fun () -> serve_loop st)
