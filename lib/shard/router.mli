(** The shard router: one front process, N worker daemons.

    [serve_*] forks [shards] worker processes, each running a full
    {!Lcm_server.Daemon} on a private Unix socket, and then runs a
    single-threaded event loop that multiplexes client frames onto them:

    - [run] requests are routed by the {e canonical} program digest over
      a consistent-hash ring ({!Lcm_support.Chash}) — identical graphs,
      however the client happened to label them, always land on the same
      worker — and are fronted by a digest-keyed LRU result cache
      ({!Cache}): a repeated request is answered from the router without
      any worker (the response carries ["cache":"hit"]).  Identical
      requests {e in flight} coalesce: duplicates wait for the first
      copy's answer instead of being forwarded again.
    - [delta] requests are routed by the worker index baked into their
      handle.  Without [state_dir], a handle whose worker is gone gets
      [unknown_handle]; with it, the worker is merely {e recovering} —
      frames for it are parked and replayed onto the respawned worker
      after it has rebuilt every handle from its write-ahead journal
      ({!Lcm_server.Hjournal}).
    - [stats] broadcasts to every live worker and merges the snapshots
      (additively, schema-checked) with the router's own counters, plus a
      ["shard"] object describing the fleet (pids, restarts, liveness).
    - [ping] is answered inline; [profile] and [sleep] are proxied.

    Crash transparency: when a worker dies mid-request, its in-flight
    [run]s are replayed — same frame, same [trace_id] — on the ring
    successor ([shard.retries_total] and [shard.replays_total] count
    these), with hops capped at the ring size; its [delta]s are parked
    for the respawned worker (journaled) or answer [unknown_handle]
    (not).  A request whose processing coincides with {e two} worker
    deaths is quarantined: it gets the typed [poisoned_request] error
    instead of a third chance to take a worker down
    ([shard.poisoned_total]).  The dead worker is reaped and respawned
    with capped exponential backoff and a fresh chaos epoch, exactly
    like the PR 4 supervisor, so a fixed [LCM_CHAOS] seed cannot replay
    the same crash schedule forever.

    The router holds no solver state: everything it serves from the cache
    was computed (and optionally validated) by a worker first — and every
    cache hit is re-verified against the CRC taken at insert before it is
    sent (a corrupt entry is dropped, counted in
    [shard.cache_corrupt_total], and the request solved afresh). *)

type config = {
  shards : int;  (** worker processes (>= 1) *)
  cache_capacity : int;  (** result cache entries; 0 disables caching *)
  replicas : int;  (** virtual nodes per worker on the hash ring *)
  daemon : Lcm_server.Daemon.config;
      (** template for the forked workers; [worker_id], [state_file] and
          [stats] are overridden per worker *)
  socket_dir : string option;  (** worker socket directory (default: a fresh temp dir) *)
  state_dir : string option;
      (** when set, each worker [i] is forked with
          [Daemon.state_dir = <dir>/worker-<i>] — retained handles are
          journaled and survive worker [kill -9] (default: none) *)
  quiet : bool;
  stats : Lcm_server.Stats.t;
      (** the router's own registry (routing/cache/retry counters) *)
}

val default_config : unit -> config

(** Ask a running router loop to drain: stop admitting, finish in-flight
    work, terminate the workers, return.  Async-signal-safe. *)
val request_shutdown : unit -> unit

(** Serve one pre-connected peer (stdio mode: [lcmopt serve --stdio
    --shards N]).  Returns after end-of-input once every pending response
    has been written and the workers are torn down. *)
val serve_fds : config -> fd_in:Unix.file_descr -> fd_out:Unix.file_descr -> unit

(** Accept clients on a Unix-domain socket at [path] until
    {!request_shutdown}. *)
val serve_unix_socket : config -> path:string -> unit
