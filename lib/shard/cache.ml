(* Classic intrusive LRU: a hash table over nodes of a doubly-linked
   recency list.  [head] is most recent, [tail] least. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards head (more recent) *)
  mutable next : 'a node option;  (* towards tail (less recent) *)
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  { capacity; tbl = Hashtbl.create 64; head = None; tail = None }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
    unlink t n;
    push_front t n;
    Some n.value

let add t k v =
  if t.capacity = 0 then 0
  else
    match Hashtbl.find_opt t.tbl k with
    | Some n ->
      n.value <- v;
      unlink t n;
      push_front t n;
      0
    | None ->
      let evicted = ref 0 in
      while Hashtbl.length t.tbl >= t.capacity do
        match t.tail with
        | None -> Hashtbl.reset t.tbl (* unreachable: table non-empty implies a tail *)
        | Some lru ->
          unlink t lru;
          Hashtbl.remove t.tbl lru.key;
          incr evicted
      done;
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.tbl k n;
      push_front t n;
      !evicted

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl k

let mem t k = Hashtbl.mem t.tbl k
let size t = Hashtbl.length t.tbl

let keys t =
  let rec go acc = function None -> acc | Some n -> go (n.key :: acc) n.next in
  go [] t.head
