(** Size-bounded LRU map, string-keyed.

    The router's content-addressed result cache: keys are canonical
    program digests (plus the request options that shape the response),
    values are stored response templates.  [find] refreshes recency;
    past [capacity] entries, [add] evicts the least recently used.

    Single-owner by design — the router's event loop is the only
    caller — so there is no locking. *)

type 'a t

(** [capacity >= 1]; [capacity] of 0 is allowed and makes every [add] a
    no-op (cache disabled). *)
val create : capacity:int -> 'a t

(** Lookup; a hit becomes the most recently used entry. *)
val find : 'a t -> string -> 'a option

(** Insert or replace; returns the number of entries evicted (0 or 1).
    Replacing an existing key refreshes its recency and never evicts. *)
val add : 'a t -> string -> 'a -> int

(** Delete an entry (no-op when absent).  Used by the router's integrity
    guard to drop a corrupt entry before falling through to a solve. *)
val remove : 'a t -> string -> unit

val mem : 'a t -> string -> bool
val size : 'a t -> int

(** Oldest-to-newest key order (tests). *)
val keys : 'a t -> string list
