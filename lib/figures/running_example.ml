module Cfg = Lcm_cfg.Cfg
module Validate = Lcm_cfg.Validate
module Expr = Lcm_ir.Expr
module Expr_pool = Lcm_ir.Expr_pool
module Instr = Lcm_ir.Instr

let a_plus_b = Expr.Binary (Expr.Add, Expr.Var "a", Expr.Var "b")

let labels =
  [
    ("B2", 2);
    ("B3", 3);
    ("B4", 4);
    ("B5", 5);
    ("B6", 6);
    ("B7", 7);
    ("B8", 8);
    ("B9", 9);
    ("B10", 10);
    ("B11", 11);
    ("B12", 12);
  ]

let graph () =
  let g = Cfg.create ~name:"running-example" () in
  let assign v e = Instr.Assign (v, e) in
  let atom v = Expr.Atom (Expr.Var v) in
  let b2 = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let b3 = Cfg.add_block g ~instrs:[ assign "x" a_plus_b ] ~term:Cfg.Halt in
  let b4 = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let b5 = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let b6 = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let b7 = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let b8 = Cfg.add_block g ~instrs:[ assign "z" a_plus_b; assign "a" (atom "z") ] ~term:Cfg.Halt in
  let b9 = Cfg.add_block g ~instrs:[ assign "u" a_plus_b ] ~term:Cfg.Halt in
  let b10 = Cfg.add_block g ~instrs:[ assign "a" (Expr.Atom (Expr.Const 1)) ] ~term:Cfg.Halt in
  let b11 = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let b12 = Cfg.add_block g ~instrs:[ assign "v" a_plus_b ] ~term:Cfg.Halt in
  let exit_l = Cfg.exit_label g in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b2);
  Cfg.set_term g b2 (Cfg.Branch (Expr.Var "p", b3, b4));
  Cfg.set_term g b3 (Cfg.Goto b5);
  Cfg.set_term g b4 (Cfg.Goto b5);
  Cfg.set_term g b5 (Cfg.Goto b6);
  Cfg.set_term g b6 (Cfg.Goto b7);
  Cfg.set_term g b7 (Cfg.Goto b8);
  Cfg.set_term g b8 (Cfg.Goto b9);
  Cfg.set_term g b9 (Cfg.Branch (Expr.Var "q", b9, b10));
  Cfg.set_term g b10 (Cfg.Branch (Expr.Var "r", b11, b12));
  Cfg.set_term g b11 (Cfg.Goto exit_l);
  Cfg.set_term g b12 (Cfg.Goto exit_l);
  Validate.check_exn g;
  (* Lock the diagram's numbering: alloc order must match [labels]. *)
  assert (List.for_all2 (fun (_, l) b -> l = b) labels [ b2; b3; b4; b5; b6; b7; b8; b9; b10; b11; b12 ]);
  g

let expr_index g =
  let pool = Cfg.candidate_pool g in
  match Expr_pool.index pool a_plus_b with
  | Some i -> i
  | None -> failwith "running example: a + b not in candidate pool"
