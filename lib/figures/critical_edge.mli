(** The critical-edge example: where Morel–Renvoise cannot follow.

    {v
            A   (branch p)
           / \
    B: x:=a+b \        ← the (A,D) edge is critical: A has two
           \  /           successors, D two predecessors
            D  y:=a+b     (partially redundant)
            │
           exit
    v}

    The only computationally optimal placement inserts on the critical
    edge (A,D).  Edge-based LCM splits that edge and removes the
    redundancy; Morel–Renvoise, restricted to block-end insertions, can
    place nothing: inserting at the end of A would be unsafe (the B arm
    does not use the inserted value before recomputing it ... more
    precisely, placement at A requires placement possible at both
    successors, and it is not possible at B).  The paper's move from node
    to edge placements is exactly what this shape rewards. *)

val graph : unit -> Lcm_cfg.Cfg.t

(** Input variables to bind when interpreting. *)
val inputs : string list
