(** The paper's running example, reconstructed.

    The PLDI 1992 paper works a single flow graph through every analysis
    and shows three placements of the expression [a + b]: the original
    (Figure 1), the busy one (BCM), and the lazy one (LCM).  The original
    figure is not reproduced verbatim here (see the mismatch note in
    DESIGN.md); this is a reconstruction with the same phenomena, each of
    which one region of the graph exercises:

    - a {b partially redundant} computation: one branch arm computes
      [a + b], the join's successor recomputes it;
    - a {b do-while loop} whose body recomputes the invariant [a + b] —
      movable, because the body is entered at least once;
    - a {b long empty chain} between the earliest safe insertion point and
      the use, so busy and lazy placements differ visibly;
    - an {b isolated} computation whose value never flows anywhere, which
      insertion cannot improve.

    Layout (expression [a + b] throughout; [p], [q], [r] are branch
    variables; B0/B1 are the implicit entry/exit):

    {v
                 B0 (entry)
                  │
                  B2            p?
                ┌─┴─┐
          B3: x:=a+b  B4: (empty)
                └─┬─┘
                  B5  y:=a+b        ← partially redundant
                  │
                  B6 (empty)
                  │
                  B7 (empty)        ← long chain: earliest is (B5,B6)-ish,
                  │                    lazy placement waits until B8
                  B8  z:=a+b
                  │
                  B9  ◄─┐           do-while body: u:=a+b
                  │ └───┘ q?
                  B10    r?
                ┌─┴──┐
         B11: a:=1   B12: v:=a+b    ← isolated: v is dead, a killed on
                └─┬──┘                 the other arm
                  B1 (exit)
    v} *)

(** The graph; labels are stable across calls. *)
val graph : unit -> Lcm_cfg.Cfg.t

(** The index of [a + b] in the graph's candidate pool. *)
val expr_index : Lcm_cfg.Cfg.t -> int

(** Stable labels of the interesting blocks, in the diagram's numbering
    (B2..B12). *)
val labels : (string * Lcm_cfg.Label.t) list
