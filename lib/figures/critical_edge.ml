module Cfg = Lcm_cfg.Cfg
module Validate = Lcm_cfg.Validate
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr

let a_plus_b = Expr.Binary (Expr.Add, Expr.Var "a", Expr.Var "b")

let inputs = [ "a"; "b"; "p" ]

let graph () =
  let g = Cfg.create ~name:"critical-edge" () in
  let a = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let b = Cfg.add_block g ~instrs:[ Instr.Assign ("x", a_plus_b) ] ~term:Cfg.Halt in
  let d = Cfg.add_block g ~instrs:[ Instr.Assign ("y", a_plus_b) ] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto a);
  Cfg.set_term g a (Cfg.Branch (Expr.Var "p", b, d));
  Cfg.set_term g b (Cfg.Goto d);
  Cfg.set_term g d (Cfg.Goto (Cfg.exit_label g));
  Validate.check_exn g;
  assert (Cfg.is_critical_edge g (a, d));
  g
