module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Loop = Lcm_cfg.Loop
module Validate = Lcm_cfg.Validate
module Expr = Lcm_ir.Expr
module Expr_pool = Lcm_ir.Expr_pool
module Instr = Lcm_ir.Instr
module Temps = Lcm_core.Temps

type stats = {
  loops_processed : int;
  preheaders_created : int;
  hoisted : int;
  rewritten : int;
}

module String_set = Set.Make (String)

let body_definitions g body =
  Label.Set.fold
    (fun l acc ->
      List.fold_left
        (fun acc i -> match Instr.defs i with Some v -> String_set.add v acc | None -> acc)
        acc (Cfg.instrs g l))
    body String_set.empty

let invariant_exprs g pool body =
  let defs = body_definitions g body in
  let invariant e = List.for_all (fun v -> not (String_set.mem v defs)) (Expr.vars e) in
  Label.Set.fold
    (fun l acc ->
      List.fold_left
        (fun acc i ->
          match Instr.candidate i with
          | Some e when invariant e ->
            (match Expr_pool.index pool e with
            | Some idx -> if List.mem idx acc then acc else idx :: acc
            | None -> acc)
          | Some _ | None -> acc)
        acc (Cfg.instrs g l))
    body []
  |> List.sort compare

let make_preheader g loop = Loop.insert_preheader g loop

let rewrite_body g pool temps body hoisted_idxs =
  let count = ref 0 in
  let member idx = List.mem idx hoisted_idxs in
  Label.Set.iter
    (fun l ->
      let changed = ref false in
      let instrs =
        List.map
          (fun i ->
            match (i, Instr.candidate i) with
            | Instr.Assign (v, _), Some e ->
              (match Expr_pool.index pool e with
              | Some idx when member idx ->
                incr count;
                changed := true;
                Instr.Assign (v, Expr.Atom (Expr.Var temps.(idx)))
              | Some _ | None -> i)
            | _, _ -> i)
          (Cfg.instrs g l)
      in
      if !changed then Cfg.set_instrs g l instrs)
    body;
  !count

let transform g =
  let g, _ = Lcm_opt.Lcse.run g in
  let pool = Cfg.candidate_pool g in
  let temps = Temps.names g pool in
  let loops = Loop.compute g in
  let stats = ref { loops_processed = 0; preheaders_created = 0; hoisted = 0; rewritten = 0 } in
  List.iter
    (fun loop ->
      let idxs = invariant_exprs g pool loop.Loop.body in
      stats := { !stats with loops_processed = (!stats).loops_processed + 1 };
      if idxs <> [] then begin
        let preheader = make_preheader g loop in
        Cfg.set_instrs g preheader
          (List.map (fun idx -> Instr.Assign (temps.(idx), Expr_pool.expr pool idx)) idxs);
        let rewritten = rewrite_body g pool temps loop.Loop.body idxs in
        stats :=
          {
            !stats with
            preheaders_created = (!stats).preheaders_created + 1;
            hoisted = (!stats).hoisted + List.length idxs;
            rewritten = (!stats).rewritten + rewritten;
          }
      end)
    (Loop.loops loops);
  Validate.check_exn g;
  (g, !stats)

let pass =
  Lcm_core.Pass.v "licm" (fun _ctx g ->
      let g', s = transform g in
      ( g',
        Lcm_core.Pass.report
          ~notes:
            [
              ("loops_processed", string_of_int s.loops_processed);
              ("hoisted", string_of_int s.hoisted);
              ("rewritten", string_of_int s.rewritten);
            ]
          () ))
