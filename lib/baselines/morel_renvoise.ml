module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Order = Lcm_cfg.Order
module Local = Lcm_dataflow.Local
module Avail = Lcm_dataflow.Avail
module Expr_pool = Lcm_ir.Expr_pool
module Transform = Lcm_core.Transform
module Copy_analysis = Lcm_core.Copy_analysis
module Temps = Lcm_core.Temps

type analysis = {
  pool : Expr_pool.t;
  local : Local.t;
  ppin : Label.t -> Bitvec.t;
  ppout : Label.t -> Bitvec.t;
  insert : (Label.t * Bitvec.t) list;
  delete : (Label.t * Bitvec.t) list;
  copy : (Label.t * Bitvec.t) list;
  sweeps : int;
  visits : int;
}

let analyze ?pool g =
  let pool = match pool with Some p -> p | None -> Cfg.candidate_pool g in
  let local = Local.compute g pool in
  let n = Expr_pool.size pool in
  let avail = Avail.compute g local in
  let pavail = Avail.compute_partial g local in
  let order = Order.compute g in
  let rpo = Order.reverse_postorder order in
  let ppin = Hashtbl.create 64 and ppout = Hashtbl.create 64 in
  List.iter
    (fun l ->
      Hashtbl.replace ppin l (Bitvec.create_full n);
      Hashtbl.replace ppout l (Bitvec.create_full n))
    (Cfg.labels g);
  Hashtbl.replace ppin (Cfg.entry g) (Bitvec.create n);
  Hashtbl.replace ppout (Cfg.exit_label g) (Bitvec.create n);
  let scratch = Bitvec.create n and term = Bitvec.create n in
  let sweeps = ref 0 and visits = ref 0 in
  let changed = ref true in
  (* The bidirectional system: each sweep recomputes both PPIN and PPOUT for
     every block until nothing moves.  Unlike LCM's cascade there is no
     single direction in which one pass suffices. *)
  while !changed do
    changed := false;
    incr sweeps;
    List.iter
      (fun b ->
        incr visits;
        (* PPOUT(b) = ∩ PPIN(s) over successors; exit stays ∅. *)
        if not (Label.equal b (Cfg.exit_label g)) then begin
          Bitvec.fill scratch true;
          List.iter
            (fun s -> ignore (Bitvec.inter_into ~into:scratch (Hashtbl.find ppin s)))
            (Cfg.successors g b);
          if Bitvec.blit ~src:scratch ~dst:(Hashtbl.find ppout b) then changed := true
        end;
        (* PPIN(b); entry stays ∅. *)
        if not (Label.equal b (Cfg.entry g)) then begin
          ignore (Bitvec.blit ~src:(Hashtbl.find ppout b) ~dst:scratch);
          ignore (Bitvec.inter_into ~into:scratch (Local.transp local b));
          ignore (Bitvec.union_into ~into:scratch (Local.antloc local b));
          ignore (Bitvec.inter_into ~into:scratch (pavail.Avail.avin b));
          List.iter
            (fun p ->
              ignore (Bitvec.blit ~src:(Hashtbl.find ppout p) ~dst:term);
              ignore (Bitvec.union_into ~into:term (avail.Avail.avout p));
              ignore (Bitvec.inter_into ~into:scratch term))
            (Cfg.predecessors g b);
          if Bitvec.blit ~src:scratch ~dst:(Hashtbl.find ppin b) then changed := true
        end)
      rpo
  done;
  let ppin_f l =
    match Hashtbl.find_opt ppin l with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Morel_renvoise.ppin: unknown label B%d" l)
  in
  let ppout_f l =
    match Hashtbl.find_opt ppout l with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Morel_renvoise.ppout: unknown label B%d" l)
  in
  (* INSERT(b) = PPOUT(b) ∩ ¬AVOUT(b) ∩ (¬PPIN(b) ∪ ¬TRANSP(b)) *)
  let insert =
    List.filter_map
      (fun b ->
        let v = Bitvec.copy (ppout_f b) in
        ignore (Bitvec.diff_into ~into:v (avail.Avail.avout b));
        ignore (Bitvec.diff_into ~into:v (Bitvec.inter (ppin_f b) (Local.transp local b)));
        if Bitvec.is_empty v then None else Some (b, v))
      (Cfg.labels g)
  in
  (* DELETE(b) = ANTLOC(b) ∩ PPIN(b) *)
  let delete =
    List.filter_map
      (fun b ->
        let v = Bitvec.inter (Local.antloc local b) (ppin_f b) in
        if Bitvec.is_empty v then None else Some (b, v))
      (Cfg.labels g)
  in
  (* A block-end insertion behaves like inserting on every outgoing edge for
     the purposes of deciding which original computations must seed the
     temporary. *)
  let insert_edges =
    List.concat_map
      (fun (b, set) -> List.map (fun s -> ((b, s), set)) (Cfg.successors g b))
      insert
  in
  let copy = Copy_analysis.copies g local ~insert_edges ~deletes:delete in
  {
    pool;
    local;
    ppin = ppin_f;
    ppout = ppout_f;
    insert;
    delete;
    copy;
    sweeps = !sweeps + avail.Avail.sweeps + pavail.Avail.sweeps;
    visits = !visits + avail.Avail.visits + pavail.Avail.visits;
  }

let spec g a =
  {
    Transform.algorithm = "morel-renvoise";
    pool = a.pool;
    temp_names = Temps.names g a.pool;
    edge_inserts = [];
    entry_inserts = [];
    exit_inserts = a.insert;
    deletes = a.delete;
    copies = a.copy;
  }

let transform ?simplify g =
  let a = analyze g in
  Transform.apply ?simplify g (spec g a)
