module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Local = Lcm_dataflow.Local
module Avail = Lcm_dataflow.Avail
module Expr_pool = Lcm_ir.Expr_pool
module Transform = Lcm_core.Transform
module Copy_analysis = Lcm_core.Copy_analysis
module Temps = Lcm_core.Temps

type analysis = {
  pool : Expr_pool.t;
  local : Local.t;
  ppin : Label.t -> Bitvec.t;
  ppout : Label.t -> Bitvec.t;
  insert : (Label.t * Bitvec.t) list;
  delete : (Label.t * Bitvec.t) list;
  copy : (Label.t * Bitvec.t) list;
  sweeps : int;
  visits : int;
}

let analyze ?pool g =
  let pool = match pool with Some p -> p | None -> Cfg.candidate_pool g in
  let local = Local.compute g pool in
  let n = Expr_pool.size pool in
  let avail = Avail.compute g local in
  let pavail = Avail.compute_partial g local in
  let adj = Cfg.adjacency g in
  let bound = adj.Cfg.adj_bound in
  let entry = Cfg.entry g and exit_l = Cfg.exit_label g in
  let ppin = Array.init bound (fun _ -> Bitvec.create_full n) in
  let ppout = Array.init bound (fun _ -> Bitvec.create_full n) in
  ppin.(entry) <- Bitvec.create n;
  ppout.(exit_l) <- Bitvec.create n;
  let scratch = Bitvec.create n and term = Bitvec.create n in
  let sweeps = ref 0 and visits = ref 0 in
  (* The bidirectional PPIN/PPOUT system, worklist-driven.  There is no
     single direction in which one pass suffices, but the dependency
     structure is still local: PPOUT(b) reads PPIN of b's successors, and
     PPIN(b) reads PPOUT of b itself and of its predecessors.  So a visit
     recomputes PPOUT(b) then PPIN(b); a PPOUT change re-enqueues the
     successors (their PPIN reads it) and a PPIN change re-enqueues the
     predecessors (their PPOUT reads it). *)
  let rpo_pos = adj.Cfg.adj_rpo_pos in
  let queue = Queue.create () in
  let in_queue = Array.make bound false in
  let enqueue b =
    if (not in_queue.(b)) && rpo_pos.(b) >= 0 then begin
      in_queue.(b) <- true;
      Queue.add b queue
    end
  in
  List.iter enqueue adj.Cfg.adj_rpo;
  let visit_count = Array.make bound 0 in
  while not (Queue.is_empty queue) do
    let b = Queue.take queue in
    in_queue.(b) <- false;
    incr visits;
    visit_count.(b) <- visit_count.(b) + 1;
    (* PPOUT(b) = ∩ PPIN(s) over successors; exit stays ∅. *)
    if not (Label.equal b exit_l) then begin
      Bitvec.fill scratch true;
      Array.iter (fun s -> ignore (Bitvec.inter_into ~into:scratch ppin.(s))) adj.Cfg.adj_succ.(b);
      if Bitvec.blit ~src:scratch ~dst:ppout.(b) then Array.iter enqueue adj.Cfg.adj_succ.(b)
    end;
    (* PPIN(b); entry stays ∅. *)
    if not (Label.equal b entry) then begin
      ignore (Bitvec.blit ~src:ppout.(b) ~dst:scratch);
      ignore (Bitvec.inter_into ~into:scratch (Local.transp local b));
      ignore (Bitvec.union_into ~into:scratch (Local.antloc local b));
      ignore (Bitvec.inter_into ~into:scratch (pavail.Avail.avin b));
      Array.iter
        (fun p ->
          ignore (Bitvec.blit ~src:ppout.(p) ~dst:term);
          ignore (Bitvec.union_into ~into:term (avail.Avail.avout p));
          ignore (Bitvec.inter_into ~into:scratch term))
        adj.Cfg.adj_pred.(b);
      if Bitvec.blit ~src:scratch ~dst:ppin.(b) then Array.iter enqueue adj.Cfg.adj_pred.(b)
    end
  done;
  sweeps := Array.fold_left max 0 visit_count;
  let live = Array.make bound false in
  List.iter (fun l -> live.(l) <- true) (Cfg.labels g);
  let lookup arr what l =
    if l >= 0 && l < bound && live.(l) then arr.(l)
    else invalid_arg (Printf.sprintf "Morel_renvoise.%s: unknown label B%d" what l)
  in
  let ppin_f = lookup ppin "ppin" and ppout_f = lookup ppout "ppout" in
  (* INSERT(b) = PPOUT(b) ∩ ¬AVOUT(b) ∩ (¬PPIN(b) ∪ ¬TRANSP(b)) *)
  let insert =
    List.filter_map
      (fun b ->
        let v = Bitvec.copy (ppout_f b) in
        ignore (Bitvec.diff_into ~into:v (avail.Avail.avout b));
        ignore (Bitvec.diff_into ~into:v (Bitvec.inter (ppin_f b) (Local.transp local b)));
        if Bitvec.is_empty v then None else Some (b, v))
      (Cfg.labels g)
  in
  (* DELETE(b) = ANTLOC(b) ∩ PPIN(b) *)
  let delete =
    List.filter_map
      (fun b ->
        let v = Bitvec.inter (Local.antloc local b) (ppin_f b) in
        if Bitvec.is_empty v then None else Some (b, v))
      (Cfg.labels g)
  in
  (* A block-end insertion behaves like inserting on every outgoing edge for
     the purposes of deciding which original computations must seed the
     temporary. *)
  let insert_edges =
    List.concat_map
      (fun (b, set) -> List.map (fun s -> ((b, s), set)) (Cfg.successors g b))
      insert
  in
  let copy = Copy_analysis.copies g local ~insert_edges ~deletes:delete in
  {
    pool;
    local;
    ppin = ppin_f;
    ppout = ppout_f;
    insert;
    delete;
    copy;
    sweeps = !sweeps + avail.Avail.sweeps + pavail.Avail.sweeps;
    visits = !visits + avail.Avail.visits + pavail.Avail.visits;
  }

let spec g a =
  {
    Transform.algorithm = "morel-renvoise";
    pool = a.pool;
    temp_names = Temps.names g a.pool;
    edge_inserts = [];
    entry_inserts = [];
    exit_inserts = a.insert;
    deletes = a.delete;
    copies = a.copy;
  }

let transform ?simplify g =
  let a = analyze g in
  Transform.apply ?simplify g (spec g a)

let pass =
  Lcm_core.Pass.v "morel-renvoise" (fun _ctx g ->
      let a = analyze g in
      let g', rep = Transform.apply g (spec g a) in
      (g', Lcm_core.Pass.report ~sweeps:a.sweeps ~visits:a.visits ~spec:rep.Transform.spec ()))
