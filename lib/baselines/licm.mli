(** Dominator-based loop-invariant code motion.

    The classic special case of PRE that compilers shipped before (and
    alongside) it: for each natural loop, expressions whose operands are
    never assigned inside the loop are computed once in a pre-header and
    reused in the body.

    Unlike LCM this is *speculative*: the pre-header computes the
    expression even on executions that would never have reached an original
    occurrence (e.g. a use guarded by a branch inside the loop), so it can
    *increase* the number of evaluations on some paths — exactly the safety
    defect the paper's down-safety requirement rules out.  EXP-T2 measures
    this: LICM loses to LCM on dynamic counts whenever guarded invariants
    occur, and wins on nothing. *)

type stats = {
  loops_processed : int;
  preheaders_created : int;
  hoisted : int;  (** expressions computed in pre-headers *)
  rewritten : int;  (** body occurrences replaced by temporaries *)
}

(** [transform g] hoists invariants of every natural loop of a copy of [g].
    Runs {!Lcse} first so that repeated in-block occurrences cannot be
    missed. *)
val transform : Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * stats

(** [transform] under the unified pass API. *)
val pass : Lcm_core.Pass.t
