(** Global common-subexpression elimination (full redundancies only).

    Deletes an upwards-exposed computation exactly when the expression is
    available on *every* incoming path ([DELETE(b) = ANTLOC(b) ∩ AVIN(b)]),
    inserting nothing.  This is the profitable-but-weaker ancestor of PRE:
    everything GCSE removes, LCM removes too, but not vice versa — the gap
    is measured in EXP-T2. *)

module Bitvec = Lcm_support.Bitvec
module Label = Lcm_cfg.Label

type analysis = {
  pool : Lcm_ir.Expr_pool.t;
  local : Lcm_dataflow.Local.t;
  avail : Lcm_dataflow.Avail.t;
  delete : (Label.t * Bitvec.t) list;
  copy : (Label.t * Bitvec.t) list;
  sweeps : int;
  visits : int;
}

val analyze : ?pool:Lcm_ir.Expr_pool.t -> Lcm_cfg.Cfg.t -> analysis
val spec : Lcm_cfg.Cfg.t -> analysis -> Lcm_core.Transform.spec
val transform : ?simplify:bool -> Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * Lcm_core.Transform.report

(** [analyze] + [apply] under the unified pass API. *)
val pass : Lcm_core.Pass.t
