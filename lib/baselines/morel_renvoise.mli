(** Morel–Renvoise partial redundancy elimination (CACM 1979).

    The seminal PRE algorithm that Lazy Code Motion improves on.  Its core
    is the famously *bidirectional* "placement possible" system

    {v
    PPIN(b)  = PAVIN(b) ∩ (ANTLOC(b) ∪ (TRANSP(b) ∩ PPOUT(b)))
                        ∩ ⋂_{p∈pred(b)} (PPOUT(p) ∪ AVOUT(p))
    PPOUT(b) = ⋂_{s∈succ(b)} PPIN(s)          (∅ at the exit block)
    INSERT(b) = PPOUT(b) ∩ ¬AVOUT(b) ∩ (¬PPIN(b) ∪ ¬TRANSP(b))   (at block end)
    DELETE(b) = ANTLOC(b) ∩ PPIN(b)
    v}

    solved as a greatest fixed point.  Two weaknesses the paper calls out
    and the benchmarks measure: the bidirectional system is costlier to
    solve than LCM's unidirectional cascade (EXP-C1), and because insertions
    sit at block ends rather than on edges it can miss transformations that
    LCM finds (EXP-T2), e.g. when a critical edge would have been the right
    insertion point. *)

module Bitvec = Lcm_support.Bitvec
module Label = Lcm_cfg.Label

type analysis = {
  pool : Lcm_ir.Expr_pool.t;
  local : Lcm_dataflow.Local.t;
  ppin : Label.t -> Bitvec.t;
  ppout : Label.t -> Bitvec.t;
  insert : (Label.t * Bitvec.t) list;  (** block-end insertions, non-empty sets only *)
  delete : (Label.t * Bitvec.t) list;
  copy : (Label.t * Bitvec.t) list;
  sweeps : int;
  visits : int;
}

val analyze : ?pool:Lcm_ir.Expr_pool.t -> Lcm_cfg.Cfg.t -> analysis
val spec : Lcm_cfg.Cfg.t -> analysis -> Lcm_core.Transform.spec
val transform : ?simplify:bool -> Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * Lcm_core.Transform.report

(** [analyze] + [apply] under the unified pass API. *)
val pass : Lcm_core.Pass.t
