module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Local = Lcm_dataflow.Local
module Avail = Lcm_dataflow.Avail
module Expr_pool = Lcm_ir.Expr_pool
module Transform = Lcm_core.Transform
module Copy_analysis = Lcm_core.Copy_analysis
module Temps = Lcm_core.Temps

type analysis = {
  pool : Expr_pool.t;
  local : Local.t;
  avail : Avail.t;
  delete : (Label.t * Bitvec.t) list;
  copy : (Label.t * Bitvec.t) list;
  sweeps : int;
  visits : int;
}

let analyze ?pool g =
  let pool = match pool with Some p -> p | None -> Cfg.candidate_pool g in
  let local = Local.compute g pool in
  let avail = Avail.compute g local in
  let delete =
    List.filter_map
      (fun b ->
        let v = Bitvec.inter (Local.antloc local b) (avail.Avail.avin b) in
        if Bitvec.is_empty v then None else Some (b, v))
      (Cfg.labels g)
  in
  let copy = Copy_analysis.copies g local ~insert_edges:[] ~deletes:delete in
  { pool; local; avail; delete; copy; sweeps = avail.Avail.sweeps; visits = avail.Avail.visits }

let spec g a =
  {
    Transform.algorithm = "gcse";
    pool = a.pool;
    temp_names = Temps.names g a.pool;
    edge_inserts = [];
    entry_inserts = [];
    exit_inserts = [];
    deletes = a.delete;
    copies = a.copy;
  }

let transform ?simplify g =
  let a = analyze g in
  Transform.apply ?simplify g (spec g a)

let pass =
  Lcm_core.Pass.v "gcse" (fun _ctx g ->
      let a = analyze g in
      let g', rep = Transform.apply g (spec g a) in
      (g', Lcm_core.Pass.report ~sweeps:a.sweeps ~visits:a.visits ~spec:rep.Transform.spec ()))
