type row = {
  name : string;
  count : int;
  total_s : float;
  self_s : float;
  alloc_w : float;
  gc : int;
  sweeps : int;
  visits : int;
}

type acc = {
  mutable a_count : int;
  mutable a_total_s : float;
  mutable a_self_s : float;
  mutable a_alloc_w : float;
  mutable a_gc : int;
  mutable a_sweeps : int;
  mutable a_visits : int;
}

type t = {
  lock : Mutex.t;
  phases : (string, acc) Hashtbl.t;
}

let create () = { lock = Mutex.create (); phases = Hashtbl.create 32 }

let attr_int sp name =
  match List.assoc_opt name sp.Trace.attrs with
  | Some s -> Option.value (int_of_string_opt s) ~default:0
  | None -> 0

let add t spans =
  (* Child time per parent id, for self-time: computed over this batch, so
     callers should feed whole trees (a trace at a time). *)
  let child = Hashtbl.create 64 in
  List.iter
    (fun (sp : Trace.span) ->
      if sp.Trace.parent >= 0 then
        let d = Float.max 0. (Trace.dur sp) in
        match Hashtbl.find_opt child sp.Trace.parent with
        | Some r -> r := !r +. d
        | None -> Hashtbl.add child sp.Trace.parent (ref d))
    spans;
  Mutex.lock t.lock;
  List.iter
    (fun (sp : Trace.span) ->
      let a =
        match Hashtbl.find_opt t.phases sp.Trace.name with
        | Some a -> a
        | None ->
          let a =
            {
              a_count = 0;
              a_total_s = 0.;
              a_self_s = 0.;
              a_alloc_w = 0.;
              a_gc = 0;
              a_sweeps = 0;
              a_visits = 0;
            }
          in
          Hashtbl.add t.phases sp.Trace.name a;
          a
      in
      let d = Float.max 0. (Trace.dur sp) in
      let child_s = match Hashtbl.find_opt child sp.Trace.id with Some r -> !r | None -> 0. in
      a.a_count <- a.a_count + 1;
      a.a_total_s <- a.a_total_s +. d;
      a.a_self_s <- a.a_self_s +. Float.max 0. (d -. child_s);
      a.a_alloc_w <- a.a_alloc_w +. Float.max 0. sp.Trace.alloc_w;
      a.a_gc <- a.a_gc + attr_int sp "gc";
      a.a_sweeps <- a.a_sweeps + attr_int sp "sweeps";
      a.a_visits <- a.a_visits + attr_int sp "visits")
    spans;
  Mutex.unlock t.lock

let rows t =
  Mutex.lock t.lock;
  let l =
    Hashtbl.fold
      (fun name a acc ->
        {
          name;
          count = a.a_count;
          total_s = a.a_total_s;
          self_s = a.a_self_s;
          alloc_w = a.a_alloc_w;
          gc = a.a_gc;
          sweeps = a.a_sweeps;
          visits = a.a_visits;
        }
        :: acc)
      t.phases []
  in
  Mutex.unlock t.lock;
  List.sort (fun a b -> compare (b.total_s, a.name) (a.total_s, b.name)) l

let to_json t =
  Json.Obj
    [
      ( "phases",
        Json.Obj
          (List.map
             (fun r ->
               ( r.name,
                 Json.Obj
                   [
                     ("count", Json.Int r.count);
                     ("total_ms", Json.Float (r.total_s *. 1000.));
                     ("self_ms", Json.Float (r.self_s *. 1000.));
                     ("alloc_w", Json.Float (Float.round r.alloc_w));
                     ("gc", Json.Int r.gc);
                     ("sweeps", Json.Int r.sweeps);
                     ("visits", Json.Int r.visits);
                   ] ))
             (rows t)) );
    ]

let pp fmt t =
  Format.fprintf fmt "%-28s %8s %12s %12s %14s %6s %8s %8s@." "phase" "count" "total_ms" "self_ms"
    "alloc_w" "gc" "sweeps" "visits";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-28s %8d %12.3f %12.3f %14.0f %6d %8d %8d@." r.name r.count
        (r.total_s *. 1000.) (r.self_s *. 1000.) r.alloc_w r.gc r.sweeps r.visits)
    (rows t)

let reset t =
  Mutex.lock t.lock;
  Hashtbl.reset t.phases;
  Mutex.unlock t.lock
