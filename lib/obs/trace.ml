type span = {
  id : int;
  parent : int;
  trace_id : string;
  name : string;
  domain : int;
  t_start : float;
  t_end : float;
  alloc_w : float;
  attrs : (string * string) list;
}

let dur sp = sp.t_end -. sp.t_start

(* One buffer per domain: appends take only the buffer's own mutex, so
   pool workers of a parallel solve never contend with each other.  The
   collector's lock guards only the buffer list (taken once per domain per
   collector generation, and by drains). *)
type buffer = {
  b_domain : int;
  b_lock : Mutex.t;
  mutable b_spans : span list;  (* newest first *)
}

type collector = {
  gen : int;  (* distinguishes enable/disable cycles in the DLS cache *)
  c_lock : Mutex.t;
  mutable c_buffers : buffer list;
}

(* The production state is [None]: a probe is one atomic load + branch —
   the same discipline as [Fault]. *)
let state : collector option Atomic.t = Atomic.make None
let generations = Atomic.make 0

let enabled () = Atomic.get state <> None

let enable () =
  Atomic.set state
    (Some { gen = Atomic.fetch_and_add generations 1; c_lock = Mutex.create (); c_buffers = [] })

let disable () = Atomic.set state None

let span_ids = Atomic.make 0
let mint_span_id () = Atomic.fetch_and_add span_ids 1

(* Trace ids are minted from a plain process-wide counter: deterministic
   (golden-testable) within one process, and the bundled client prefixes
   its own pid for cross-process uniqueness. *)
let trace_ids = Atomic.make 0
let mint_id () = "t-" ^ string_of_int (1 + Atomic.fetch_and_add trace_ids 1)

(* Domain-local cache of (generation, buffer); re-registers after an
   enable/disable cycle invalidates the cached buffer. *)
let buffer_key : (int * buffer) option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let my_buffer c =
  let cell = Domain.DLS.get buffer_key in
  match !cell with
  | Some (g, b) when g = c.gen -> b
  | _ ->
    let b = { b_domain = (Domain.self () :> int); b_lock = Mutex.create (); b_spans = [] } in
    Mutex.lock c.c_lock;
    c.c_buffers <- b :: c.c_buffers;
    Mutex.unlock c.c_lock;
    cell := Some (c.gen, b);
    b

type ctx = {
  trace_id : string;
  parent : int;
}

let ctx_key : ctx option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get ctx_key)

let with_ctx c f =
  let cell = Domain.DLS.get ctx_key in
  let saved = !cell in
  cell := c;
  Fun.protect ~finally:(fun () -> cell := saved) f

let record c sp =
  let b = my_buffer c in
  Mutex.lock b.b_lock;
  b.b_spans <- sp :: b.b_spans;
  Mutex.unlock b.b_lock

let word_bytes = float_of_int (Sys.word_size / 8)

let span_attrs name f =
  match Atomic.get state with
  | None -> fst (f ())
  | Some c ->
    (match current () with
    | None -> fst (f ())
    | Some ctx ->
      let id = mint_span_id () in
      let cell = Domain.DLS.get ctx_key in
      cell := Some { ctx with parent = id };
      let g0 = Gc.quick_stat () in
      let a0 = Gc.allocated_bytes () in
      let t0 = Unix.gettimeofday () in
      let finish attrs =
        let t1 = Unix.gettimeofday () in
        let alloc_w = (Gc.allocated_bytes () -. a0) /. word_bytes in
        (* Collections that fired inside the span; attached only when
           non-zero so the common (collection-free, arena-backed) case
           costs no attr.  Counts are per-domain, like [alloc_w]. *)
        let g1 = Gc.quick_stat () in
        let gc_n =
          g1.Gc.minor_collections - g0.Gc.minor_collections
          + (g1.Gc.major_collections - g0.Gc.major_collections)
        in
        let attrs = if gc_n > 0 then ("gc", string_of_int gc_n) :: attrs else attrs in
        cell := Some ctx;
        record c
          {
            id;
            parent = ctx.parent;
            trace_id = ctx.trace_id;
            name;
            domain = (Domain.self () :> int);
            t_start = t0;
            t_end = t1;
            alloc_w;
            attrs;
          }
      in
      (match f () with
      | v, attrs ->
        finish attrs;
        v
      | exception e ->
        finish [ ("error", Printexc.to_string e) ];
        raise e))

let span name f = span_attrs name (fun () -> (f (), []))

let in_trace ~trace_id name f =
  match Atomic.get state with
  | None -> f ()
  | Some _ -> with_ctx (Some { trace_id; parent = -1 }) (fun () -> span name f)

(* ---- draining ---- *)

let by_start a b = compare (a.t_start, a.id) (b.t_start, b.id)

let buffers () =
  match Atomic.get state with
  | None -> []
  | Some c ->
    Mutex.lock c.c_lock;
    let bs = c.c_buffers in
    Mutex.unlock c.c_lock;
    bs

let drain () =
  buffers ()
  |> List.concat_map (fun b ->
         Mutex.lock b.b_lock;
         let s = b.b_spans in
         b.b_spans <- [];
         Mutex.unlock b.b_lock;
         s)
  |> List.sort by_start

let take ~trace_id =
  buffers ()
  |> List.concat_map (fun b ->
         Mutex.lock b.b_lock;
         let mine, rest =
           List.partition (fun (sp : span) -> String.equal sp.trace_id trace_id) b.b_spans
         in
         b.b_spans <- rest;
         Mutex.unlock b.b_lock;
         mine)
  |> List.sort by_start

(* ---- exporters ---- *)

let attrs_json (sp : span) =
  Json.Obj
    ([
       ("trace_id", Json.String sp.trace_id);
       ("span_id", Json.Int sp.id);
       ("parent_id", Json.Int sp.parent);
       ("alloc_w", Json.Float (Float.round sp.alloc_w));
     ]
    @ List.map (fun (k, v) -> (k, Json.String v)) sp.attrs)

let chrome_event (sp : span) =
  Json.Obj
    [
      ("name", Json.String sp.name);
      ("cat", Json.String "lcm");
      ("ph", Json.String "X");
      ("ts", Json.Float (Float.round (sp.t_start *. 1e6)));
      ("dur", Json.Float (Float.round (Float.max 0. (dur sp) *. 1e6)));
      ("pid", Json.Int (Unix.getpid ()));
      ("tid", Json.Int sp.domain);
      ("args", attrs_json sp);
    ]

let to_chrome spans = Json.to_string (Json.List (List.map chrome_event spans))

let span_json (sp : span) =
  Json.Obj
    [
      ("id", Json.Int sp.id);
      ("parent", Json.Int sp.parent);
      ("trace_id", Json.String sp.trace_id);
      ("name", Json.String sp.name);
      ("domain", Json.Int sp.domain);
      ("start_s", Json.Float sp.t_start);
      ("dur_ms", Json.Float (Float.max 0. (dur sp) *. 1000.));
      ("alloc_w", Json.Float (Float.round sp.alloc_w));
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) sp.attrs));
    ]

let to_jsonl spans = String.concat "" (List.map (fun sp -> Json.to_string (span_json sp) ^ "\n") spans)
