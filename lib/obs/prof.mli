(** Span aggregation: per-phase profiles.

    Folds finished {!Trace.span}s into one row per span name: invocation
    count, total (inclusive) time, self time (total minus the time of
    direct children {e present in the same batch}), allocated words, GC
    collections that fired inside the span (the ["gc"] attribute), and
    summed solver iteration counts read from the conventional ["sweeps"]
    and ["visits"] attributes.

    Feed whole trees per {!add} call — self time is computed against the
    children of that batch.  A span whose children ran in parallel on
    other domains can have more child time than its own duration; self
    time clamps at zero rather than going negative. *)

type row = {
  name : string;
  count : int;
  total_s : float;
  self_s : float;
  alloc_w : float;
  gc : int;  (** minor+major collections during the span (["gc"] attr) *)
  sweeps : int;
  visits : int;
}

type t

val create : unit -> t

(** Fold a batch of spans (typically one trace) into the profile.
    Thread-safe. *)
val add : t -> Trace.span list -> unit

(** Rows sorted by total time, descending. *)
val rows : t -> row list

(** [{"phases": {name: {count, total_ms, self_ms, alloc_w, gc, sweeps,
    visits}, ...}}], phases sorted by total time descending. *)
val to_json : t -> Json.t

(** Human-readable table of {!rows}. *)
val pp : Format.formatter -> t -> unit

val reset : t -> unit
