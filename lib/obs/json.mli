(** Minimal JSON, sufficient for the serving protocol.

    The repository deliberately has no third-party JSON dependency; the
    protocol (docs/PROTOCOL.md) only needs objects, arrays, strings,
    numbers, booleans and null, so this module implements exactly that.
    Printing preserves object key order (frames are diffed in golden
    tests), and numbers that are integral print without a decimal point. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Parse one JSON document; trailing whitespace is allowed, any other
    trailing content raises {!Parse_error}. *)
val parse : string -> t

(** Compact (single-line) rendering; never emits newlines, so a printed
    document is a valid frame. *)
val to_string : t -> string

(** {2 Accessors} — all total; [member] on a non-object is [None]. *)

val member : string -> t -> t option
val to_int_opt : t -> int option

(** Accepts [Int] and integral [Float]s. *)
val to_float_opt : t -> float option

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
