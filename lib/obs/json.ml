type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* ---- printing ---- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
      if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_to_string f)
    | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          go x)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ---- parsing ---- *)

type state = {
  src : string;
  mutable pos : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail "expected %C at offset %d, found %C" c st.pos c'
  | None -> fail "expected %C at offset %d, found end of input" c st.pos

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.src then fail "truncated \\u escape";
          let hex = String.sub st.src st.pos 4 in
          st.pos <- st.pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code -> add_utf8 buf code
          | None -> fail "bad \\u escape %S" hex)
        | c -> fail "bad escape \\%C" c));
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ()

let is_number_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

let parse_number st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_number_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None ->
    (match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail "bad number %S" s)

let parse_literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail "bad literal at offset %d" st.pos

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "empty input"
  | Some '"' ->
    advance st;
    String (parse_string_body st)
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        expect st '"';
        let k = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance st;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}' at offset %d" st.pos
      in
      fields []
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']' at offset %d" st.pos
      in
      elements []
    end
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some c when is_number_char c -> parse_number st
  | Some c -> fail "unexpected character %C at offset %d" c st.pos

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail "trailing content at offset %d" st.pos;
  v

(* ---- accessors ---- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let to_string_opt = function
  | String s -> Some s
  | _ -> None

let to_bool_opt = function
  | Bool b -> Some b
  | _ -> None
