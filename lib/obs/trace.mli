(** Hierarchical tracing with per-domain span buffers.

    A {e span} is one timed region of work — a dataflow solve, a pipeline
    pass, a request — with a name, wall-clock start/stop, the domain it ran
    on, allocation delta, a parent link, and the id of the {e trace} (one
    request end-to-end) it belongs to.  Spans form trees: opening a span
    inside another makes the inner one a child.

    Collection discipline copies {!Lcm_support.Fault}: the production state
    is disabled, and a disabled probe costs one atomic load — {!span} with
    no collector installed is [f ()] plus a branch.  When enabled, each
    domain appends finished spans to its own mutex-guarded buffer, so
    [Solver.run_par] workers record without contention on a shared
    structure; buffers are registered once per domain in a global
    collector.

    The clock is [Unix.gettimeofday].  The repository deliberately has no
    third-party clock dependency; at the granularity traced here (dataflow
    solves, requests) wall time is the quantity of interest, and span
    durations are computed from two reads on the same domain.

    Context (current trace id + parent span) lives in domain-local storage.
    It does not follow work submitted to other domains by itself;
    {!Lcm_support.Pool} captures the submitter's context and reinstalls it
    around each task (see {!current}/{!with_ctx}), which is what keeps
    span trees connected across the domain pool. *)

type span = {
  id : int;  (** unique per process *)
  parent : int;  (** parent span id, [-1] for a root *)
  trace_id : string;
  name : string;
  domain : int;  (** domain the span ran on *)
  t_start : float;  (** seconds, Unix epoch *)
  t_end : float;
  alloc_w : float;  (** words allocated on this domain during the span *)
  attrs : (string * string) list;
}

(** Duration in seconds. *)
val dur : span -> float

(** {2 Collector lifecycle} *)

(** One atomic load; [false] in production. *)
val enabled : unit -> bool

(** Install a fresh collector (idempotent in effect: a new empty one). *)
val enable : unit -> unit

(** Drop the collector; subsequent probes cost one atomic load again. *)
val disable : unit -> unit

(** {2 Trace context} *)

type ctx = {
  trace_id : string;
  parent : int;  (** span id new children attach to; [-1] at a trace root *)
}

(** Mint a fresh trace id, ["t-1"], ["t-2"], … in process order. *)
val mint_id : unit -> string

(** The calling domain's current context, if any. *)
val current : unit -> ctx option

(** [with_ctx c f] runs [f] with the domain's context set to [c], restoring
    the previous context afterwards (also on exceptions).  Used by the
    domain pool to carry the submitter's context onto worker domains. *)
val with_ctx : ctx option -> (unit -> 'a) -> 'a

(** {2 Recording} *)

(** [in_trace ~trace_id name f] opens a root span [name] belonging to
    [trace_id] around [f].  When disabled this is [f ()]. *)
val in_trace : trace_id:string -> string -> (unit -> 'a) -> 'a

(** [span name f] records a child span around [f] under the current
    context.  Outside any context, or when disabled, this is [f ()].
    If [f] raises, the span is recorded with an ["error"] attribute and
    the exception is re-raised. *)
val span : string -> (unit -> 'a) -> 'a

(** [span_attrs name f] — like {!span}, but [f] returns [(value, attrs)]
    and the attributes are recorded on the span (e.g. solver iteration
    counts known only after the solve). *)
val span_attrs : string -> (unit -> 'a * (string * string) list) -> 'a

(** {2 Draining} *)

(** Remove and return every finished span, across all domains, ordered by
    start time.  [] when disabled. *)
val drain : unit -> span list

(** Remove and return the finished spans of one trace, ordered by start
    time, leaving other traces' spans buffered.  [] when disabled. *)
val take : trace_id:string -> span list

(** {2 Exporters} *)

(** One Chrome [trace_event] complete event ([ph:"X"], µs timestamps,
    pid = OS process, tid = domain).  Span identity, parentage, trace id
    and attributes ride in ["args"]. *)
val chrome_event : span -> Json.t

(** A complete Chrome trace document: a JSON array of {!chrome_event}s,
    loadable by chrome://tracing and Perfetto.  Note the format also
    accepts an {e unterminated} array, which is what lets a daemon append
    events to a per-trace file across retries and restarts without a
    read-modify-write. *)
val to_chrome : span list -> string

(** One compact JSON object per span, one per line (the JSON-lines sink). *)
val span_json : span -> Json.t

val to_jsonl : span list -> string
