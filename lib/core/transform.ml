module Bitvec = Lcm_support.Bitvec
module Label = Lcm_cfg.Label
module Cfg = Lcm_cfg.Cfg
module Validate = Lcm_cfg.Validate
module Expr = Lcm_ir.Expr
module Expr_pool = Lcm_ir.Expr_pool
module Instr = Lcm_ir.Instr

type spec = {
  algorithm : string;
  pool : Expr_pool.t;
  temp_names : string array;
  edge_inserts : ((Label.t * Label.t) * Bitvec.t) list;
  entry_inserts : (Label.t * Bitvec.t) list;
  exit_inserts : (Label.t * Bitvec.t) list;
  deletes : (Label.t * Bitvec.t) list;
  copies : (Label.t * Bitvec.t) list;
}

type report = {
  spec : spec;
  num_edge_insertions : int;
  num_entry_insertions : int;
  num_exit_insertions : int;
  num_deletions : int;
  num_copies : int;
  split_blocks : ((Label.t * Label.t) * Label.t) list;
}

let identity_spec pool algorithm =
  {
    algorithm;
    pool;
    temp_names = [||];
    edge_inserts = [];
    entry_inserts = [];
    exit_inserts = [];
    deletes = [];
    copies = [];
  }

(* Expression index of an instruction's candidate, if registered. *)
let candidate_index pool i =
  match Instr.candidate i with
  | Some e -> Expr_pool.index pool e
  | None -> None

(* Indices killed by an instruction, under the same conservative kill set
   the local predicates use ([Instr.kills]): the definition, plus — for
   opaque effects — every operand variable.  Keeping the transformer and
   the analysis on one kill relation means "upwards/downwards exposed"
   agree between them by construction. *)
let killed_by pool i =
  match Instr.kills i with
  | [] -> []
  | [ v ] -> Expr_pool.reading pool v
  | vs -> List.concat_map (fun v -> Expr_pool.reading pool v) vs

(* Replace the upwards-exposed occurrence of every expression in [set]
   within block [l] by a read of its temporary. *)
let apply_deletes g pool temps l set =
  let remaining = Bitvec.copy set in
  let killed = Bitvec.create (Bitvec.length set) in
  let deleted = ref 0 in
  let rewrite i =
    let i' =
      match (i, candidate_index pool i) with
      | Instr.Assign (v, _), Some idx when Bitvec.get remaining idx && not (Bitvec.get killed idx) ->
        Bitvec.set remaining idx false;
        incr deleted;
        Instr.Assign (v, Expr.Atom (Expr.Var temps.(idx)))
      | _, _ -> i
    in
    List.iter (fun idx -> Bitvec.set killed idx true) (killed_by pool i);
    i'
  in
  Cfg.set_instrs g l (List.map rewrite (Cfg.instrs g l));
  if not (Bitvec.is_empty remaining) then
    failwith
      (Format.asprintf "Transform.apply: block %a has no upwards-exposed occurrence of %a" Label.pp l
         Bitvec.pp remaining);
  !deleted

(* After the downwards-exposed occurrence of every expression in [set]
   within block [l], add [h := v].  The downwards-exposed occurrence of [e]
   is the last computation of [e] not followed by an operand kill. *)
let apply_copies g pool temps l set =
  let instrs = Array.of_list (Cfg.instrs g l) in
  let n = Array.length instrs in
  let nbits = Bitvec.length set in
  (* last_occurrence.(idx) = position of the downwards-exposed occurrence *)
  let last = Array.make nbits (-1) in
  let valid = Bitvec.create nbits in
  for pos = 0 to n - 1 do
    (match candidate_index pool instrs.(pos) with
    | Some idx ->
      last.(idx) <- pos;
      Bitvec.set valid idx true
    | None -> ());
    List.iter (fun idx -> Bitvec.set valid idx false) (killed_by pool instrs.(pos))
  done;
  (* copies_at.(pos) lists temp assignments to place directly after pos. *)
  let copies_at = Array.make n [] in
  let count = ref 0 in
  Bitvec.iter_true
    (fun idx ->
      if not (Bitvec.get valid idx) then
        failwith
          (Format.asprintf "Transform.apply: block %a has no downwards-exposed occurrence of expression %d"
             Label.pp l idx);
      let pos = last.(idx) in
      match instrs.(pos) with
      | Instr.Assign (v, _) ->
        copies_at.(pos) <- Instr.Assign (temps.(idx), Expr.Atom (Expr.Var v)) :: copies_at.(pos);
        incr count
      | Instr.Print _ | Instr.Effect _ -> assert false)
    set;
  let out = ref [] in
  for pos = n - 1 downto 0 do
    out := (instrs.(pos) :: List.rev copies_at.(pos)) @ !out
  done;
  Cfg.set_instrs g l !out;
  !count

let insertion_instrs pool temps set =
  List.rev
    (Bitvec.fold_true
       (fun idx acc -> Instr.Assign (temps.(idx), Expr_pool.expr pool idx) :: acc)
       set [])

let apply ?(simplify = false) g spec =
  let g = Cfg.copy g in
  let pool = spec.pool and temps = spec.temp_names in
  let num_deletions =
    List.fold_left (fun acc (l, set) -> acc + apply_deletes g pool temps l set) 0 spec.deletes
  in
  let num_copies =
    List.fold_left (fun acc (l, set) -> acc + apply_copies g pool temps l set) 0 spec.copies
  in
  let num_entry_insertions =
    List.fold_left
      (fun acc (l, set) ->
        let is = insertion_instrs pool temps set in
        Cfg.set_instrs g l (is @ Cfg.instrs g l);
        acc + List.length is)
      0 spec.entry_inserts
  in
  let num_exit_insertions =
    List.fold_left
      (fun acc (l, set) ->
        let is = insertion_instrs pool temps set in
        Cfg.set_instrs g l (Cfg.instrs g l @ is);
        acc + List.length is)
      0 spec.exit_inserts
  in
  let split_blocks = ref [] in
  let num_edge_insertions =
    List.fold_left
      (fun acc ((src, dst), set) ->
        let is = insertion_instrs pool temps set in
        if is = [] then acc
        else begin
          let fresh = Cfg.split_edge g src dst in
          Cfg.set_instrs g fresh is;
          split_blocks := ((src, dst), fresh) :: !split_blocks;
          acc + List.length is
        end)
      0 spec.edge_inserts
  in
  if simplify then begin
    Cfg.merge_straight_pairs g;
    Cfg.remove_unreachable g
  end;
  Validate.check_exn g;
  ( g,
    {
      spec;
      num_edge_insertions;
      num_entry_insertions;
      num_exit_insertions;
      num_deletions;
      num_copies;
      split_blocks = List.rev !split_blocks;
    } )

let pp_report ppf r =
  Format.fprintf ppf "%s: %d edge insertions, %d entry insertions, %d exit insertions, %d deletions, %d copies"
    r.spec.algorithm r.num_edge_insertions r.num_entry_insertions r.num_exit_insertions
    r.num_deletions r.num_copies
