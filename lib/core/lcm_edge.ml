module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Order = Lcm_cfg.Order
module Local = Lcm_dataflow.Local
module Avail = Lcm_dataflow.Avail
module Antic = Lcm_dataflow.Antic
module Expr_pool = Lcm_ir.Expr_pool

type analysis = {
  pool : Expr_pool.t;
  local : Local.t;
  avail : Avail.t;
  antic : Antic.t;
  earliest : Label.t * Label.t -> Bitvec.t;
  later : Label.t * Label.t -> Bitvec.t;
  laterin : Label.t -> Bitvec.t;
  insert : ((Label.t * Label.t) * Bitvec.t) list;
  delete : (Label.t * Bitvec.t) list;
  copy : (Label.t * Bitvec.t) list;
  sweeps : int;
  visits : int;
}

module Edge_table = Hashtbl.Make (struct
  type t = Label.t * Label.t

  let equal (a, b) (c, d) = Label.equal a c && Label.equal b d
  let hash = Hashtbl.hash
end)

let compute_earliest g local avail antic =
  let table = Edge_table.create 64 in
  let entry = Cfg.entry g in
  List.iter
    (fun ((p, b) as edge) ->
      let v = Bitvec.copy (antic.Antic.antin b) in
      ignore (Bitvec.diff_into ~into:v (avail.Avail.avout p));
      if not (Label.equal p entry) then begin
        (* ∩ (¬TRANSP(p) ∪ ¬ANTOUT(p)) = remove TRANSP(p) ∩ ANTOUT(p) *)
        let movable_through = Bitvec.inter (Local.transp local p) (antic.Antic.antout p) in
        ignore (Bitvec.diff_into ~into:v movable_through)
      end;
      Edge_table.replace table edge v)
    (Cfg.edges g);
  table

(* Greatest fixpoint of the LATER/LATERIN system, sweeping reverse
   postorder.  Returns the LATERIN table and the sweep/visit counts. *)
let compute_laterin g local earliest =
  let n = Local.nbits local in
  let laterin = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace laterin l (Bitvec.create_full n)) (Cfg.labels g);
  Hashtbl.replace laterin (Cfg.entry g) (Bitvec.create n);
  let order = Order.compute g in
  let scratch = Bitvec.create n and later_pb = Bitvec.create n in
  let sweeps = ref 0 and visits = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr sweeps;
    List.iter
      (fun b ->
        if not (Label.equal b (Cfg.entry g)) then begin
          incr visits;
          Bitvec.fill scratch true;
          List.iter
            (fun p ->
              (* LATER(p,b) = EARLIEST(p,b) ∪ (LATERIN(p) ∩ ¬ANTLOC(p)) *)
              ignore (Bitvec.blit ~src:(Hashtbl.find laterin p) ~dst:later_pb);
              ignore (Bitvec.diff_into ~into:later_pb (Local.antloc local p));
              ignore (Bitvec.union_into ~into:later_pb (Edge_table.find earliest (p, b)));
              ignore (Bitvec.inter_into ~into:scratch later_pb))
            (Cfg.predecessors g b);
          if Bitvec.blit ~src:scratch ~dst:(Hashtbl.find laterin b) then changed := true
        end)
      (Order.reverse_postorder order)
  done;
  (laterin, !sweeps, !visits)

let analyze ?pool g =
  let pool = match pool with Some p -> p | None -> Cfg.candidate_pool g in
  let local = Local.compute g pool in
  let avail = Avail.compute g local in
  let antic = Antic.compute g local in
  let earliest_tbl = compute_earliest g local avail antic in
  let laterin_tbl, later_sweeps, later_visits = compute_laterin g local earliest_tbl in
  let laterin l =
    match Hashtbl.find_opt laterin_tbl l with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Lcm_edge.laterin: unknown label B%d" l)
  in
  let earliest (p, b) =
    match Edge_table.find_opt earliest_tbl (p, b) with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Lcm_edge.earliest: unknown edge B%d->B%d" p b)
  in
  let later (p, b) =
    let v = Bitvec.copy (laterin p) in
    ignore (Bitvec.diff_into ~into:v (Local.antloc local p));
    ignore (Bitvec.union_into ~into:v (earliest (p, b)));
    v
  in
  let insert =
    List.filter_map
      (fun (p, b) ->
        let v = later (p, b) in
        ignore (Bitvec.diff_into ~into:v (laterin b));
        if Bitvec.is_empty v then None else Some ((p, b), v))
      (Cfg.edges g)
  in
  let delete =
    (* DELETE is defined for b ≠ ENTRY only: the entry has no incoming
       edges, so no insertion could ever cover a deletion there (its
       LATERIN is the ∅ boundary, not a data-flow result). *)
    List.filter_map
      (fun b ->
        if Label.equal b (Cfg.entry g) then None
        else begin
          let v = Bitvec.copy (Local.antloc local b) in
          ignore (Bitvec.diff_into ~into:v (laterin b));
          if Bitvec.is_empty v then None else Some (b, v)
        end)
      (Cfg.labels g)
  in
  let copy = Copy_analysis.copies g local ~insert_edges:insert ~deletes:delete in
  {
    pool;
    local;
    avail;
    antic;
    earliest;
    later;
    laterin;
    insert;
    delete;
    copy;
    sweeps = avail.Avail.sweeps + antic.Antic.sweeps + later_sweeps;
    visits = avail.Avail.visits + antic.Antic.visits + later_visits;
  }

let spec g a =
  {
    Transform.algorithm = "lcm-edge";
    pool = a.pool;
    temp_names = Temps.names g a.pool;
    edge_inserts = a.insert;
    entry_inserts = [];
    exit_inserts = [];
    deletes = a.delete;
    copies = a.copy;
  }

let transform ?simplify g =
  let a = analyze g in
  Transform.apply ?simplify g (spec g a)
