module Bitvec = Lcm_support.Bitvec
module Arena = Lcm_support.Arena
module Pool = Lcm_support.Pool
module Trace = Lcm_obs.Trace
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Local = Lcm_dataflow.Local
module Avail = Lcm_dataflow.Avail
module Antic = Lcm_dataflow.Antic
module Expr_pool = Lcm_ir.Expr_pool

type analysis = {
  pool : Expr_pool.t;
  local : Local.t;
  avail : Avail.t;
  antic : Antic.t;
  earliest : Label.t * Label.t -> Bitvec.t;
  later : Label.t * Label.t -> Bitvec.t;
  laterin : Label.t -> Bitvec.t;
  insert : ((Label.t * Label.t) * Bitvec.t) list;
  delete : (Label.t * Bitvec.t) list;
  copy : (Label.t * Bitvec.t) list;
  sweeps : int;
  visits : int;
}

(* Position of [p] in a predecessor (or successor) row of the adjacency
   snapshot, or -1.  Rows are short (bounded by terminator arity / join
   width) and edges are unique, so a linear scan replaces what used to be a
   hashed edge table — whose per-edge [replace] at build time and [Some]
   per lookup were the last allocations of the earliestness phase. *)
let rec row_index row p i =
  if i >= Array.length row then -1
  else if Label.equal (Array.unsafe_get row i) p then i
  else row_index row p (i + 1)

(* Per-edge EARLIEST sets as a flat array in the adjacency snapshot's CSR
   layout: slot [adj_pred_off.(b) + i] is EARLIEST(p, b) for the i-th
   predecessor p of b.  The LATERIN fixpoint below fetches by predecessor
   index directly; the public lookup API goes through {!row_index}.  Flat
   rather than nested so the whole structure is one arena slot-array
   checkout instead of a fresh array per block per request. *)
let compute_earliest ?scratch g local avail antic =
  let adj = Cfg.adjacency g in
  let entry = Cfg.entry g in
  let pred_off = adj.Cfg.adj_pred_off in
  (* ∩ (¬TRANSP(p) ∪ ¬ANTOUT(p)) = remove TRANSP(p) ∩ ANTOUT(p); the
     removed factor depends on the source block alone, so compute it once
     per block rather than once per edge. *)
  let movable = Arena.alloc_vec scratch adj.Cfg.adj_bound in
  let movable_set = Arena.alloc_bool scratch adj.Cfg.adj_bound in
  let movable_through p =
    if movable_set.(p) then movable.(p)
    else begin
      let v = Arena.alloc_copy scratch (Local.transp local p) in
      ignore (Bitvec.inter_into ~into:v (antic.Antic.antout p));
      movable.(p) <- v;
      movable_set.(p) <- true;
      v
    end
  in
  let flat = Arena.alloc_vec scratch pred_off.(adj.Cfg.adj_bound) in
  for b = 0 to adj.Cfg.adj_bound - 1 do
    let preds = adj.Cfg.adj_pred.(b) and off = pred_off.(b) in
    for i = 0 to Array.length preds - 1 do
      let p = preds.(i) in
      let v = Arena.alloc_copy scratch (antic.Antic.antin b) in
      ignore (Bitvec.diff_into ~into:v (avail.Avail.avout p));
      if not (Label.equal p entry) then ignore (Bitvec.diff_into ~into:v (movable_through p));
      flat.(off + i) <- v
    done
  done;
  flat

(* Greatest fixpoint of the LATER/LATERIN system, worklist-driven in
   reverse-postorder priority: LATERIN(b) depends only on LATERIN(p) of its
   predecessors, so when a block's LATERIN shrinks only its successors need
   re-visiting.  State is a flat array indexed by label.  Returns the
   LATERIN table and the iteration counts (visits = per-block LATERIN
   evaluations; sweeps = maximum visits of any single block). *)
let compute_laterin ?scratch:arena g local earliest_flat =
  let n = Local.nbits local in
  let adj = Cfg.adjacency g in
  let bound = adj.Cfg.adj_bound in
  let entry = Cfg.entry g in
  let laterin = Arena.alloc_vec arena bound in
  for l = 0 to bound - 1 do
    laterin.(l) <- Arena.alloc_full arena n
  done;
  laterin.(entry) <- Arena.alloc arena n;
  let scratch = Arena.alloc arena n and later_pb = Arena.alloc arena n in
  let rpo_pos = adj.Cfg.adj_rpo_pos in
  (* FIFO worklist as an arena-backed ring buffer: [in_queue] deduplicates,
     so occupancy never exceeds [bound] and [bound + 1] cells distinguish
     full from empty.  A [Queue.t] here would allocate a cell per enqueue
     inside the hot fixpoint. *)
  let qcap = bound + 1 in
  let qbuf = Arena.alloc_int arena qcap in
  let qhead = ref 0 and qtail = ref 0 in
  let in_queue = Arena.alloc_bool arena bound in
  let enqueue b =
    if (not in_queue.(b)) && not (Label.equal b entry) then begin
      in_queue.(b) <- true;
      qbuf.(!qtail) <- b;
      qtail := (!qtail + 1) mod qcap
    end
  in
  List.iter enqueue adj.Cfg.adj_rpo;
  let visits = ref 0 in
  let visit_count = Arena.alloc_int arena bound in
  while !qhead <> !qtail do
    let b = qbuf.(!qhead) in
    qhead := (!qhead + 1) mod qcap;
    in_queue.(b) <- false;
    incr visits;
    visit_count.(b) <- visit_count.(b) + 1;
    Bitvec.fill scratch true;
    let preds = adj.Cfg.adj_pred.(b) and off = adj.Cfg.adj_pred_off.(b) in
    for i = 0 to Array.length preds - 1 do
      let p = preds.(i) in
      (* LATER(p,b) = EARLIEST(p,b) ∪ (LATERIN(p) ∩ ¬ANTLOC(p)) *)
      ignore (Bitvec.blit ~src:earliest_flat.(off + i) ~dst:later_pb);
      ignore (Bitvec.union_diff_into ~into:later_pb laterin.(p) ~diff:(Local.antloc local p));
      ignore (Bitvec.inter_into ~into:scratch later_pb)
    done;
    if Bitvec.blit ~src:scratch ~dst:laterin.(b) then begin
      let succs = adj.Cfg.adj_succ.(b) in
      for i = 0 to Array.length succs - 1 do
        let s = succs.(i) in
        if rpo_pos.(s) >= 0 then enqueue s
      done
    end
  done;
  (* Arena-backed arrays may be wider than [bound]; fold the live prefix. *)
  let sweeps = ref 0 in
  for l = 0 to bound - 1 do
    if visit_count.(l) > !sweeps then sweeps := visit_count.(l)
  done;
  let live = Arena.alloc_bool arena bound in
  List.iter (fun l -> live.(l) <- true) (Cfg.labels g);
  ((laterin, live), !sweeps, !visits)

(* The down-safety (backward, ANTIC) and up-safety (forward, AVAIL) systems
   of the cascade read only the block-local predicates — neither reads the
   other's fixpoint — so with a worker pool they run as two overlapping
   tasks, each of which may fan out further into bit slices on the same
   pool ([Pool.run] is re-entrant).  Everything the two tasks share
   (adjacency snapshot, local predicate arrays, expression pool) is
   pre-built or lock-guarded before the fan-out; results land in distinct
   refs, so the outcome is independent of scheduling. *)
let solve_safety_systems ?workers ?scratch g local =
  match workers with
  | Some w when Pool.size w > 1 ->
    (* The two tasks may land on other domains, where the request's arena
       (single-owner) must not be touched: the parallel tier keeps the
       heap path for the safety systems. *)
    ignore (Cfg.adjacency g);
    let avail = ref None and antic = ref None in
    Pool.run w
      [
        (fun () ->
          avail := Some (Trace.span "lcm.up_safety" (fun () -> Avail.compute_par ~pool:w g local)));
        (fun () ->
          antic := Some (Trace.span "lcm.down_safety" (fun () -> Antic.compute_par ~pool:w g local)));
      ];
    (Option.get !avail, Option.get !antic)
  | Some _ | None ->
    ( Trace.span "lcm.up_safety" (fun () -> Avail.compute ?scratch g local),
      Trace.span "lcm.down_safety" (fun () -> Antic.compute ?scratch g local) )

(* Span names follow the paper's cascade: down-safety (ANTIC), earliestness,
   delay (LATERIN), latestness — the four phases a trace of one LCM solve
   must show (the up-safety AVAIL system rides along as "lcm.up_safety"). *)
let finish ?scratch g pool local avail antic =
  let earliest_flat =
    Trace.span "lcm.earliest" (fun () -> compute_earliest ?scratch g local avail antic)
  in
  let adj = Cfg.adjacency g in
  let (laterin_arr, laterin_live), later_sweeps, later_visits =
    Trace.span_attrs "lcm.delay" (fun () ->
        let ((_, later_sweeps, later_visits) as r) = compute_laterin ?scratch g local earliest_flat in
        ( r,
          [
            ("sweeps", string_of_int later_sweeps); ("visits", string_of_int later_visits);
          ] ))
  in
  let laterin l =
    if l >= 0 && l < Array.length laterin_arr && laterin_live.(l) then laterin_arr.(l)
    else invalid_arg (Printf.sprintf "Lcm_edge.laterin: unknown label B%d" l)
  in
  (* Uncurried internals: the tupled public closures below are thin
     wrappers, so per-edge calls inside this function never rebuild an
     edge pair. *)
  let earliest_pb p b =
    let i =
      if b >= 0 && b < adj.Cfg.adj_bound then row_index adj.Cfg.adj_pred.(b) p 0 else -1
    in
    if i >= 0 then earliest_flat.(adj.Cfg.adj_pred_off.(b) + i)
    else invalid_arg (Printf.sprintf "Lcm_edge.earliest: unknown edge B%d->B%d" p b)
  in
  let earliest (p, b) = earliest_pb p b in
  let later_into v p b =
    ignore (Bitvec.blit ~src:(laterin p) ~dst:v);
    ignore (Bitvec.diff_into ~into:v (Local.antloc local p));
    ignore (Bitvec.union_into ~into:v (earliest_pb p b));
    v
  in
  let later (p, b) = later_into (Arena.alloc scratch (Local.nbits local)) p b in
  let insert, delete, copy =
    Trace.span "lcm.latest" (fun () ->
        (* One reusable frame for the emptiness test; only non-empty sets
           are materialized (as arena copies), so edges and blocks that
           contribute nothing cost no fresh vector. *)
        let frame = Arena.alloc scratch (Local.nbits local) in
        let insert =
          List.filter_map
            (fun ((p, b) as e) ->
              let v = later_into frame p b in
              ignore (Bitvec.diff_into ~into:v (laterin b));
              if Bitvec.is_empty v then None else Some (e, Arena.alloc_copy scratch v))
            (Cfg.edges g)
        in
        let delete =
          (* DELETE is defined for b ≠ ENTRY only: the entry has no incoming
             edges, so no insertion could ever cover a deletion there (its
             LATERIN is the ∅ boundary, not a data-flow result). *)
          List.filter_map
            (fun b ->
              if Label.equal b (Cfg.entry g) then None
              else begin
                ignore (Bitvec.blit ~src:(Local.antloc local b) ~dst:frame);
                ignore (Bitvec.diff_into ~into:frame (laterin b));
                if Bitvec.is_empty frame then None else Some (b, Arena.alloc_copy scratch frame)
              end)
            (Cfg.labels g)
        in
        let copy = Copy_analysis.copies ?scratch g local ~insert_edges:insert ~deletes:delete in
        (insert, delete, copy))
  in
  {
    pool;
    local;
    avail;
    antic;
    earliest;
    later;
    laterin;
    insert;
    delete;
    copy;
    sweeps = avail.Avail.sweeps + antic.Antic.sweeps + later_sweeps;
    visits = avail.Avail.visits + antic.Antic.visits + later_visits;
  }

let analyze ?pool ?workers ?scratch g =
  let pool = match pool with Some p -> p | None -> Cfg.candidate_pool g in
  let local = Trace.span "lcm.local" (fun () -> Local.compute ?scratch g pool) in
  let avail, antic = solve_safety_systems ?workers ?scratch g local in
  finish ?scratch g pool local avail antic

(* --- incremental analysis ------------------------------------------------

   The safety systems (AVAIL/ANTIC) dominate the cascade's iteration cost
   and are the only fixpoints worth restarting: EARLIEST, the LATERIN
   delay fixpoint and latestness are straight recomputation over the
   (changed) graph.  A capture is admissible only while the candidate
   expression pool is unchanged — bit index i must mean the same
   expression in both solves — so [analyze_incr] re-derives the pool and
   compares it against the snapshot before touching the saved fixpoints. *)

type saved = {
  saved_pool : Expr_pool.t;
  saved_avail : Lcm_dataflow.Solver.saved;
  saved_antic : Lcm_dataflow.Solver.saved;
}

let analyze_keep ?scratch g =
  let pool = Cfg.candidate_pool g in
  let local = Trace.span "lcm.local" (fun () -> Local.compute ?scratch g pool) in
  let avail, saved_avail =
    Trace.span "lcm.up_safety" (fun () -> Avail.compute_keep ?scratch g local)
  in
  let antic, saved_antic =
    Trace.span "lcm.down_safety" (fun () -> Antic.compute_keep ?scratch g local)
  in
  (finish ?scratch g pool local avail antic, { saved_pool = pool; saved_avail; saved_antic })

let analyze_incr ?scratch g ~prev ~dirty =
  let pool = Cfg.candidate_pool g in
  let same_pool =
    List.equal
      (fun (i, e) (j, f) -> i = j && Lcm_ir.Expr.equal e f)
      (Expr_pool.to_list pool) (Expr_pool.to_list prev.saved_pool)
  in
  if not same_pool then None
  else begin
    let local = Trace.span "lcm.local" (fun () -> Local.compute ?scratch g pool) in
    match
      Trace.span "lcm.up_safety" (fun () ->
          Avail.compute_incr ?scratch g local ~prev:prev.saved_avail ~dirty)
    with
    | None -> None
    | Some (avail, saved_avail, region_a) ->
      (match
         Trace.span "lcm.down_safety" (fun () ->
             Antic.compute_incr ?scratch g local ~prev:prev.saved_antic ~dirty)
       with
      | None -> None
      | Some (antic, saved_antic, region_b) ->
        let a = finish ?scratch g pool local avail antic in
        Some (a, { saved_pool = pool; saved_avail; saved_antic }, max region_a region_b))
  end

let spec g a =
  {
    Transform.algorithm = "lcm-edge";
    pool = a.pool;
    temp_names = Temps.names g a.pool;
    edge_inserts = a.insert;
    entry_inserts = [];
    exit_inserts = [];
    deletes = a.delete;
    copies = a.copy;
  }

let transform ?simplify ?workers g =
  let a = analyze ?workers g in
  Transform.apply ?simplify g (spec g a)

let pass =
  Pass.v "lcm-edge" (fun ctx g ->
      let a = analyze ?workers:ctx.Pass.workers ?scratch:ctx.Pass.scratch g in
      let g', rep = Transform.apply g (spec g a) in
      (g', Pass.report ~sweeps:a.sweeps ~visits:a.visits ~spec:rep.Transform.spec ()))
