module Bitvec = Lcm_support.Bitvec
module Pool = Lcm_support.Pool
module Trace = Lcm_obs.Trace
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Local = Lcm_dataflow.Local
module Avail = Lcm_dataflow.Avail
module Antic = Lcm_dataflow.Antic
module Expr_pool = Lcm_ir.Expr_pool

type analysis = {
  pool : Expr_pool.t;
  local : Local.t;
  avail : Avail.t;
  antic : Antic.t;
  earliest : Label.t * Label.t -> Bitvec.t;
  later : Label.t * Label.t -> Bitvec.t;
  laterin : Label.t -> Bitvec.t;
  insert : ((Label.t * Label.t) * Bitvec.t) list;
  delete : (Label.t * Bitvec.t) list;
  copy : (Label.t * Bitvec.t) list;
  sweeps : int;
  visits : int;
}

module Edge_table = Hashtbl.Make (struct
  type t = Label.t * Label.t

  let equal (a, b) (c, d) = Label.equal a c && Label.equal b d
  let hash = Hashtbl.hash
end)

(* Returns the per-edge EARLIEST sets twice over: a hashed table keyed by
   (p, b) for the public lookup API, and a positional array mirroring
   [adj_pred] so the LATERIN fixpoint below can fetch EARLIEST(p, b) by
   predecessor index without hashing inside its inner loop.  Both views
   share the same vectors. *)
let compute_earliest g local avail antic =
  let adj = Cfg.adjacency g in
  let entry = Cfg.entry g in
  let table = Edge_table.create 64 in
  (* ∩ (¬TRANSP(p) ∪ ¬ANTOUT(p)) = remove TRANSP(p) ∩ ANTOUT(p); the
     removed factor depends on the source block alone, so compute it once
     per block rather than once per edge. *)
  let movable = Array.make adj.Cfg.adj_bound None in
  let movable_through p =
    match movable.(p) with
    | Some v -> v
    | None ->
      let v = Bitvec.inter (Local.transp local p) (antic.Antic.antout p) in
      movable.(p) <- Some v;
      v
  in
  let by_pred =
    Array.mapi
      (fun b preds ->
        Array.map
          (fun p ->
            let v = Bitvec.copy (antic.Antic.antin b) in
            ignore (Bitvec.diff_into ~into:v (avail.Avail.avout p));
            if not (Label.equal p entry) then
              ignore (Bitvec.diff_into ~into:v (movable_through p));
            Edge_table.replace table (p, b) v;
            v)
          preds)
      adj.Cfg.adj_pred
  in
  (table, by_pred)

(* Greatest fixpoint of the LATER/LATERIN system, worklist-driven in
   reverse-postorder priority: LATERIN(b) depends only on LATERIN(p) of its
   predecessors, so when a block's LATERIN shrinks only its successors need
   re-visiting.  State is a flat array indexed by label.  Returns the
   LATERIN table and the iteration counts (visits = per-block LATERIN
   evaluations; sweeps = maximum visits of any single block). *)
let compute_laterin g local earliest_by_pred =
  let n = Local.nbits local in
  let adj = Cfg.adjacency g in
  let bound = adj.Cfg.adj_bound in
  let entry = Cfg.entry g in
  let laterin = Array.init bound (fun _ -> Bitvec.create_full n) in
  laterin.(entry) <- Bitvec.create n;
  let scratch = Bitvec.create n and later_pb = Bitvec.create n in
  let rpo_pos = adj.Cfg.adj_rpo_pos in
  let queue = Queue.create () in
  let in_queue = Array.make bound false in
  let enqueue b =
    if (not in_queue.(b)) && not (Label.equal b entry) then begin
      in_queue.(b) <- true;
      Queue.add b queue
    end
  in
  List.iter enqueue adj.Cfg.adj_rpo;
  let visits = ref 0 in
  let visit_count = Array.make bound 0 in
  while not (Queue.is_empty queue) do
    let b = Queue.take queue in
    in_queue.(b) <- false;
    incr visits;
    visit_count.(b) <- visit_count.(b) + 1;
    Bitvec.fill scratch true;
    let preds = adj.Cfg.adj_pred.(b) and epreds = earliest_by_pred.(b) in
    for i = 0 to Array.length preds - 1 do
      let p = preds.(i) in
      (* LATER(p,b) = EARLIEST(p,b) ∪ (LATERIN(p) ∩ ¬ANTLOC(p)) *)
      ignore (Bitvec.blit ~src:epreds.(i) ~dst:later_pb);
      ignore (Bitvec.union_diff_into ~into:later_pb laterin.(p) ~diff:(Local.antloc local p));
      ignore (Bitvec.inter_into ~into:scratch later_pb)
    done;
    if Bitvec.blit ~src:scratch ~dst:laterin.(b) then
      Array.iter (fun s -> if rpo_pos.(s) >= 0 then enqueue s) adj.Cfg.adj_succ.(b)
  done;
  let sweeps = Array.fold_left max 0 visit_count in
  let live = Array.make bound false in
  List.iter (fun l -> live.(l) <- true) (Cfg.labels g);
  ((laterin, live), sweeps, !visits)

(* The down-safety (backward, ANTIC) and up-safety (forward, AVAIL) systems
   of the cascade read only the block-local predicates — neither reads the
   other's fixpoint — so with a worker pool they run as two overlapping
   tasks, each of which may fan out further into bit slices on the same
   pool ([Pool.run] is re-entrant).  Everything the two tasks share
   (adjacency snapshot, local predicate arrays, expression pool) is
   pre-built or lock-guarded before the fan-out; results land in distinct
   refs, so the outcome is independent of scheduling. *)
let solve_safety_systems ?workers g local =
  match workers with
  | Some w when Pool.size w > 1 ->
    ignore (Cfg.adjacency g);
    let avail = ref None and antic = ref None in
    Pool.run w
      [
        (fun () ->
          avail := Some (Trace.span "lcm.up_safety" (fun () -> Avail.compute_par ~pool:w g local)));
        (fun () ->
          antic := Some (Trace.span "lcm.down_safety" (fun () -> Antic.compute_par ~pool:w g local)));
      ];
    (Option.get !avail, Option.get !antic)
  | Some _ | None ->
    ( Trace.span "lcm.up_safety" (fun () -> Avail.compute g local),
      Trace.span "lcm.down_safety" (fun () -> Antic.compute g local) )

(* Span names follow the paper's cascade: down-safety (ANTIC), earliestness,
   delay (LATERIN), latestness — the four phases a trace of one LCM solve
   must show (the up-safety AVAIL system rides along as "lcm.up_safety"). *)
let analyze ?pool ?workers g =
  let pool = match pool with Some p -> p | None -> Cfg.candidate_pool g in
  let local = Trace.span "lcm.local" (fun () -> Local.compute g pool) in
  let avail, antic = solve_safety_systems ?workers g local in
  let earliest_tbl, earliest_by_pred =
    Trace.span "lcm.earliest" (fun () -> compute_earliest g local avail antic)
  in
  let (laterin_arr, laterin_live), later_sweeps, later_visits =
    Trace.span_attrs "lcm.delay" (fun () ->
        let ((_, later_sweeps, later_visits) as r) = compute_laterin g local earliest_by_pred in
        ( r,
          [
            ("sweeps", string_of_int later_sweeps); ("visits", string_of_int later_visits);
          ] ))
  in
  let laterin l =
    if l >= 0 && l < Array.length laterin_arr && laterin_live.(l) then laterin_arr.(l)
    else invalid_arg (Printf.sprintf "Lcm_edge.laterin: unknown label B%d" l)
  in
  let earliest (p, b) =
    match Edge_table.find_opt earliest_tbl (p, b) with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Lcm_edge.earliest: unknown edge B%d->B%d" p b)
  in
  let later (p, b) =
    let v = Bitvec.copy (laterin p) in
    ignore (Bitvec.diff_into ~into:v (Local.antloc local p));
    ignore (Bitvec.union_into ~into:v (earliest (p, b)));
    v
  in
  let insert, delete, copy =
    Trace.span "lcm.latest" (fun () ->
        let insert =
          List.filter_map
            (fun (p, b) ->
              let v = later (p, b) in
              ignore (Bitvec.diff_into ~into:v (laterin b));
              if Bitvec.is_empty v then None else Some ((p, b), v))
            (Cfg.edges g)
        in
        let delete =
          (* DELETE is defined for b ≠ ENTRY only: the entry has no incoming
             edges, so no insertion could ever cover a deletion there (its
             LATERIN is the ∅ boundary, not a data-flow result). *)
          List.filter_map
            (fun b ->
              if Label.equal b (Cfg.entry g) then None
              else begin
                let v = Bitvec.copy (Local.antloc local b) in
                ignore (Bitvec.diff_into ~into:v (laterin b));
                if Bitvec.is_empty v then None else Some (b, v)
              end)
            (Cfg.labels g)
        in
        let copy = Copy_analysis.copies g local ~insert_edges:insert ~deletes:delete in
        (insert, delete, copy))
  in
  {
    pool;
    local;
    avail;
    antic;
    earliest;
    later;
    laterin;
    insert;
    delete;
    copy;
    sweeps = avail.Avail.sweeps + antic.Antic.sweeps + later_sweeps;
    visits = avail.Avail.visits + antic.Antic.visits + later_visits;
  }

let spec g a =
  {
    Transform.algorithm = "lcm-edge";
    pool = a.pool;
    temp_names = Temps.names g a.pool;
    edge_inserts = a.insert;
    entry_inserts = [];
    exit_inserts = [];
    deletes = a.delete;
    copies = a.copy;
  }

let transform ?simplify ?workers g =
  let a = analyze ?workers g in
  Transform.apply ?simplify g (spec g a)

let pass =
  Pass.v "lcm-edge" (fun ctx g ->
      let a = analyze ?workers:ctx.Pass.workers g in
      let g', rep = Transform.apply g (spec g a) in
      (g', Pass.report ~sweeps:a.sweeps ~visits:a.visits ~spec:rep.Transform.spec ()))
