module Trace = Lcm_obs.Trace
module Cfg = Lcm_cfg.Cfg

type ctx = {
  workers : Lcm_support.Pool.t option;
  scratch : Lcm_support.Arena.t option;
}

let default_ctx = { workers = None; scratch = None }

type report = {
  sweeps : int;
  visits : int;
  spec : Transform.spec option;
  notes : (string * string) list;
}

let report ?(sweeps = 0) ?(visits = 0) ?spec ?(notes = []) () = { sweeps; visits; spec; notes }

type t = {
  name : string;
  run : ctx -> Cfg.t -> Cfg.t * report;
}

let v name run = { name; run }
let of_fn name f = v name (fun _ g -> (f g, report ()))

let count_attrs r =
  (if r.sweeps > 0 then [ ("sweeps", string_of_int r.sweeps) ] else [])
  @ (if r.visits > 0 then [ ("visits", string_of_int r.visits) ] else [])
  @ r.notes

let run ctx p g =
  Trace.span_attrs ("pass." ^ p.name) (fun () ->
      let g', r = p.run ctx g in
      ((g', r), count_attrs r))

let simplify =
  of_fn "simplify" (fun g ->
      let h = Cfg.copy g in
      Cfg.merge_straight_pairs h;
      Cfg.remove_unreachable h;
      h)

module Pipeline = struct
  type pass = t

  type t = {
    name : string;
    passes : pass list;
  }

  let v name passes = { name; passes }
  let append t passes = { t with passes = t.passes @ passes }

  let run_pass = run

  let run ctx pl g =
    Trace.span ("pipeline." ^ pl.name) (fun () ->
        let g, reports =
          List.fold_left
            (fun (g, reports) p ->
              let g', r = run_pass ctx p g in
              (g', (p.name, r) :: reports))
            (g, []) pl.passes
        in
        (g, List.rev reports))

  let run_graph ctx pl g = fst (run ctx pl g)
end
