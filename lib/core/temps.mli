(** Fresh temporary names for inserted computations.

    The paper writes [h] for the temporary that carries an expression's
    value; we allocate one such name per candidate expression, guaranteed
    not to collide with any variable of the graph. *)

(** [names g pool] maps each expression index to a fresh variable name. *)
val names : Lcm_cfg.Cfg.t -> Lcm_ir.Expr_pool.t -> string array
