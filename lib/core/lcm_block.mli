(** Block-placement realization of Lazy Code Motion (TOPLAS 1994 style).

    The journal version of the paper ("Optimal Code Motion: Theory and
    Practice") places computations at block *entries and exits* rather
    than on edges, assuming critical edges have been split beforehand.
    This module realizes the same decision that way: it pre-splits
    critical edges, runs the {!Lcm_edge} analysis, and lowers every edge
    insertion to a block placement — on an edge whose target has a single
    predecessor the insertion lands at the target's entry; otherwise the
    source necessarily has a single successor (the edge is not critical)
    and the insertion lands at the source's exit.

    The result is path-count-identical to {!Lcm_edge} and contains no
    transformation-time split blocks; the trade-off measured by
    experiment EXP-A2 (blocks added a priori vs on demand) applies. *)

type analysis = {
  graph : Lcm_cfg.Cfg.t;  (** the pre-split graph the decision refers to *)
  entry_inserts : (Lcm_cfg.Label.t * Lcm_support.Bitvec.t) list;
  exit_inserts : (Lcm_cfg.Label.t * Lcm_support.Bitvec.t) list;
  deletes : (Lcm_cfg.Label.t * Lcm_support.Bitvec.t) list;
  copies : (Lcm_cfg.Label.t * Lcm_support.Bitvec.t) list;
  edges_pre_split : int;  (** critical edges split before the analysis *)
}

(** [scratch] backs every analysis vector, as in {!Lcm_edge.analyze}. *)
val analyze : ?scratch:Lcm_support.Arena.t -> Lcm_cfg.Cfg.t -> analysis
val spec : analysis -> Transform.spec

(** [transform g]: pre-split, analyze, apply. *)
val transform : ?simplify:bool -> Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * Transform.report

(** {!transform} under the unified pass API (sequential; the report has no
    spec because the decision refers to the pre-split graph). *)
val pass : Pass.t
