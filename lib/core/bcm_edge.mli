(** Busy Code Motion, edge-insertion formulation.

    BCM places computations as early as safety allows: it inserts on every
    EARLIEST edge and deletes every upwards-exposed original computation.
    The paper proves BCM computationally optimal — no safe placement
    executes fewer computations on any path — but maximally eager, so the
    temporaries' live ranges are as long as they can be.  LCM exists to fix
    exactly that; benchmarks EXP-T3/EXP-A1 measure the gap. *)

module Bitvec = Lcm_support.Bitvec
module Label = Lcm_cfg.Label

type analysis = {
  pool : Lcm_ir.Expr_pool.t;
  local : Lcm_dataflow.Local.t;
  avail : Lcm_dataflow.Avail.t;
  antic : Lcm_dataflow.Antic.t;
  insert : ((Label.t * Label.t) * Bitvec.t) list;
  delete : (Label.t * Bitvec.t) list;
  copy : (Label.t * Bitvec.t) list;
  sweeps : int;
  visits : int;
}

(** [workers] overlaps the two independent safety systems and slices each
    fixpoint across domains (see {!Lcm_edge.analyze}); results are
    bit-identical with and without it. *)
val analyze :
  ?pool:Lcm_ir.Expr_pool.t ->
  ?workers:Lcm_support.Pool.t ->
  ?scratch:Lcm_support.Arena.t ->
  Lcm_cfg.Cfg.t ->
  analysis

val spec : Lcm_cfg.Cfg.t -> analysis -> Transform.spec

val transform :
  ?simplify:bool ->
  ?workers:Lcm_support.Pool.t ->
  Lcm_cfg.Cfg.t ->
  Lcm_cfg.Cfg.t * Transform.report

(** [analyze] + [apply] under the unified pass API. *)
val pass : Pass.t
