(** Lazy Code Motion, edge-insertion formulation on basic blocks.

    This is the practical reformulation of the paper's algorithm on basic
    blocks with insertions on edges (Drechsler & Stadel 1993; the TOPLAS
    1994 version of the paper; GCC's [lcm.c]):

    {v
    EARLIEST(p,b) = ANTIN(b) ∩ ¬AVOUT(p) ∩ (¬TRANSP(p) ∪ ¬ANTOUT(p))
                    (the last factor is dropped when p is the entry block)
    LATERIN(b)    = ⋂ over incoming edges (p,b) of LATER(p,b);  ∅ at entry
    LATER(p,b)    = EARLIEST(p,b) ∪ (LATERIN(p) ∩ ¬ANTLOC(p))
    INSERT(p,b)   = LATER(p,b) ∩ ¬LATERIN(b)
    DELETE(b)     = ANTLOC(b) ∩ ¬LATERIN(b)
    v}

    Laziness — inserting as late as possible — is what keeps temporary
    lifetimes minimal; see {!Bcm_edge} for the busy (earliest) placement
    that this improves on.  Copies that seed the temporary at original
    computations are decided by {!Copy_analysis}. *)

module Bitvec = Lcm_support.Bitvec
module Label = Lcm_cfg.Label

type analysis = {
  pool : Lcm_ir.Expr_pool.t;
  local : Lcm_dataflow.Local.t;
  avail : Lcm_dataflow.Avail.t;
  antic : Lcm_dataflow.Antic.t;
  earliest : Label.t * Label.t -> Bitvec.t;
  later : Label.t * Label.t -> Bitvec.t;
  laterin : Label.t -> Bitvec.t;
  insert : ((Label.t * Label.t) * Bitvec.t) list;  (** non-empty sets only *)
  delete : (Label.t * Bitvec.t) list;  (** non-empty sets only *)
  copy : (Label.t * Bitvec.t) list;
  sweeps : int;  (** data-flow sweeps over the graph, all passes summed *)
  visits : int;  (** transfer-function applications, all passes summed *)
}

(** Solve the independent down-safety (ANTIC, backward) and up-safety
    (AVAIL, forward) systems — overlapped as two tasks on [workers] when it
    has more than one domain (each may fan out further into bit slices on
    the same pool), sequentially otherwise.  Results are bit-identical
    either way.  Shared by {!Bcm_edge}. *)
val solve_safety_systems :
  ?workers:Lcm_support.Pool.t ->
  ?scratch:Lcm_support.Arena.t ->
  Lcm_cfg.Cfg.t ->
  Lcm_dataflow.Local.t ->
  Lcm_dataflow.Avail.t * Lcm_dataflow.Antic.t

(** Run the analyses.  [pool] defaults to all candidate expressions of the
    graph.  [workers] enables the parallel paths (pass-level overlap of the
    safety systems, slice-level fan-out inside each); the decision is
    bit-identical with and without it.  [scratch] backs every analysis
    vector (including the returned sets) on the sequential path — results
    are then valid only until the arena resets; the parallel safety solves
    keep the heap path (arenas are single-owner per domain). *)
val analyze :
  ?pool:Lcm_ir.Expr_pool.t ->
  ?workers:Lcm_support.Pool.t ->
  ?scratch:Lcm_support.Arena.t ->
  Lcm_cfg.Cfg.t ->
  analysis

(** A captured analysis for incremental restart: the candidate pool
    snapshot plus the saved AVAIL/ANTIC fixpoints (heap copies — safe to
    retain across requests and arena resets).  The serving layer keeps one
    per retained graph handle. *)
type saved

(** [analyze_keep g] is [analyze g] (sequential path) that additionally
    captures the safety fixpoints for {!analyze_incr}. *)
val analyze_keep : ?scratch:Lcm_support.Arena.t -> Lcm_cfg.Cfg.t -> analysis * saved

(** [analyze_incr g ~prev ~dirty] re-analyzes the patched graph [g] from
    the capture saved before the patch: the AVAIL/ANTIC fixpoints restart
    from the dirty frontier ({!Lcm_dataflow.Solver.resolve}) and visit
    only the affected region, while EARLIEST/LATERIN/latestness are
    recomputed outright.  [dirty] is {!Lcm_cfg.Patch.apply}'s seed.
    Returns the analysis (bit-identical to a from-scratch [analyze g]), a
    fresh capture, and the affected-region size in blocks (max over the
    two systems).  [None] when the capture is inadmissible — the patch
    changed the candidate expression pool, so bit indices shifted — in
    which case callers fall back to {!analyze_keep}. *)
val analyze_incr :
  ?scratch:Lcm_support.Arena.t ->
  Lcm_cfg.Cfg.t ->
  prev:saved ->
  dirty:Label.t list ->
  (analysis * saved * int) option

(** Decision of [analyze] as a transformation spec. *)
val spec : Lcm_cfg.Cfg.t -> analysis -> Transform.spec

(** [transform g] = apply the decision to (a copy of) [g]. *)
val transform :
  ?simplify:bool ->
  ?workers:Lcm_support.Pool.t ->
  Lcm_cfg.Cfg.t ->
  Lcm_cfg.Cfg.t * Transform.report

(** [analyze] + [apply] under the unified pass API; the context's pool
    enables the parallel path, the report carries the spec and iteration
    counts. *)
val pass : Pass.t
