(** The unified optimizer-pass API.

    Every transformation in the repository — the paper's BCM/LCM family,
    the baselines, the cleanup passes — runs under one signature: a named
    [run : ctx -> Cfg.t -> Cfg.t * report].  The context carries the
    execution environment (worker pool for the parallel analyses); the
    report carries what the caller may want downstream: solver iteration
    counts, the transformation spec when the pass exposes one (for cheap
    static validation), and free-form notes.

    Instrumentation comes from the harness, not from per-pass boilerplate:
    {!run} wraps the pass in a ["pass.<name>"] {!Lcm_obs.Trace} span with
    the report's counts as attributes, and {!Pipeline.run} wraps a pass
    sequence in a ["pipeline.<name>"] span, threading the graph through
    while the domain-local trace context threads itself. *)

type ctx = {
  workers : Lcm_support.Pool.t option;
      (** pool for passes with a parallel path; [None] = sequential.
          Passes without one ignore it (results are bit-identical either
          way for those that have it). *)
  scratch : Lcm_support.Arena.t option;
      (** per-request scratch arena for the analyses' solver state; [None]
          = heap-allocate as before.  Results are bit-identical either way;
          the report's spec vectors are arena-backed when set, so the
          caller must consume them before the arena resets. *)
}

(** Sequential, no pool, no arena. *)
val default_ctx : ctx

type report = {
  sweeps : int;  (** data-flow sweeps, summed over the pass's solves *)
  visits : int;  (** transfer-function applications, likewise *)
  spec : Transform.spec option;
      (** the code-motion decision, when the pass is a direct spec
          application on the input graph (enables static validation) *)
  notes : (string * string) list;  (** free-form, recorded as span attributes *)
}

val report :
  ?sweeps:int -> ?visits:int -> ?spec:Transform.spec -> ?notes:(string * string) list -> unit -> report

type t = {
  name : string;
  run : ctx -> Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * report;
}

val v : string -> (ctx -> Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * report) -> t

(** Lift a plain graph transformer (empty report). *)
val of_fn : string -> (Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t) -> t

(** Run one pass under its instrumentation span. *)
val run : ctx -> t -> Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * report

(** Structural cleanup as a pass: merge straight-line block pairs, drop
    unreachable blocks (on a copy). *)
val simplify : t

module Pipeline : sig
  type pass = t

  type t = {
    name : string;
    passes : pass list;
  }

  val v : string -> pass list -> t

  (** Append passes (e.g. a trailing {!simplify}). *)
  val append : t -> pass list -> t

  (** Run the passes in order, collecting each pass's report. *)
  val run : ctx -> t -> Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * (string * report) list

  (** {!run} without the reports. *)
  val run_graph : ctx -> t -> Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t
end
