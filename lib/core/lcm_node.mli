(** Lazy Code Motion, node-based formulation (faithful to PLDI 1992).

    The paper models programs as flow graphs whose nodes are single
    statements; insertions happen at node entries.  With [Comp(n)] ("n
    computes e before its assignment takes effect") and [Transp(n)] the
    analyses are:

    {v
    DSAFE(n)    = Comp(n) ∨ (Transp(n) ∧ ⋀_{s∈succ} DSAFE(s))      (exit: Comp)
    USAFE(n)    = ⋀_{p∈pred} ((USAFE(p) ∨ Comp(p)) ∧ Transp(p))     (entry: ∅)
    EARLIEST(n) = DSAFE(n) ∧ (n=entry ∨ ¬⋀_{p∈pred} (Transp(p) ∧ (DSAFE(p) ∨ USAFE(p))))
    DELAY(n)    = EARLIEST(n) ∨ (n≠entry ∧ ⋀_{p∈pred} (DELAY(p) ∧ ¬Comp(p)))
    LATEST(n)   = DELAY(n) ∧ (Comp(n) ∨ ¬⋀_{s∈succ} DELAY(s))
    ISOLATED(n) = ⋀_{s∈succ} (LATEST(s) ∨ (¬Comp(s) ∧ ISOLATED(s)))  (exit: true)
    v}

    The three transformations of the paper:
    - {b BCM} (busy): insert at EARLIEST entries, rewrite every computation;
    - {b ALCM} (almost lazy): insert at LATEST entries, rewrite every
      computation;
    - {b LCM} (lazy): insert at LATEST ∧ ¬ISOLATED entries, rewrite every
      computation except those at LATEST ∧ ISOLATED nodes, which stay put.

    All run on *granular* graphs (at most one instruction per block); use
    [Lcm_cfg.Granulate] — [transform] does it automatically. *)

module Bitvec = Lcm_support.Bitvec
module Label = Lcm_cfg.Label

type analysis = {
  pool : Lcm_ir.Expr_pool.t;
  local : Lcm_dataflow.Local.t;
  dsafe : Label.t -> Bitvec.t;  (** at node entry *)
  usafe : Label.t -> Bitvec.t;  (** at node entry *)
  earliest : Label.t -> Bitvec.t;
  delay : Label.t -> Bitvec.t;
  latest : Label.t -> Bitvec.t;
  isolated : Label.t -> Bitvec.t;
  sweeps : int;
  visits : int;
}

type variant =
  | Bcm
  | Alcm
  | Lcm

val variant_name : variant -> string

(** Run the analyses on a granular graph.  Raises [Invalid_argument] if a
    block holds more than one instruction. *)
val analyze : ?pool:Lcm_ir.Expr_pool.t -> Lcm_cfg.Cfg.t -> analysis

(** Insertion-point set of a variant: EARLIEST, LATEST, or
    LATEST ∧ ¬ISOLATED. *)
val insert_points : analysis -> variant -> Label.t -> Bitvec.t

(** Decision as a transformation spec (entry insertions + deletions). *)
val spec : Lcm_cfg.Cfg.t -> analysis -> variant -> Transform.spec

(** [transform variant g] granulates [g] if needed, places a landing node
    on every join edge (a node insertion executes once per node visit, so
    only landing nodes let the node model express per-edge placement), and
    applies the variant's decision. *)
val transform : ?simplify:bool -> variant -> Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * Transform.report

(** [transform variant] under the unified pass API (sequential; no spec in
    the report because the decision refers to the granulated graph). *)
val pass : variant -> Pass.t
