module Cfg = Lcm_cfg.Cfg
module Expr_pool = Lcm_ir.Expr_pool

let names g pool =
  let prefix = Lcm_support.Fresh.prefix ~existing:(Cfg.all_vars g) "_h" in
  Array.init (Expr_pool.size pool) (fun i -> Printf.sprintf "%s%d" prefix i)
