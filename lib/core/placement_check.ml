module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Order = Lcm_cfg.Order
module Expr = Lcm_ir.Expr
module Expr_pool = Lcm_ir.Expr_pool
module Instr = Lcm_ir.Instr

(* Per expression index [idx], simulate one block with entry validity
   [v]: return the validity at the block's exit, and whether the deleted
   occurrence (if the spec deletes [idx] here) was covered.

   Validity means "the temporary holds the expression's current value". *)
let simulate_block g spec idx l ~valid_in =
  let pool = spec.Transform.pool in
  let expr = Expr_pool.expr pool idx in
  let in_set tbl =
    match List.assoc_opt l tbl with
    | Some set -> Bitvec.get set idx
    | None -> false
  in
  let deletes_here = in_set spec.Transform.deletes in
  let copies_here = in_set spec.Transform.copies in
  let entry_insert = in_set spec.Transform.entry_inserts in
  let exit_insert = in_set spec.Transform.exit_inserts in
  let instrs = Array.of_list (Cfg.instrs g l) in
  let n = Array.length instrs in
  (* Positions of interest: the upwards-exposed occurrence (deletion
     target) and the downwards-exposed occurrence (copy point). *)
  let first_unkilled = ref (-1) and last_unkilled = ref (-1) in
  let killed = ref false in
  for pos = 0 to n - 1 do
    (match Instr.candidate instrs.(pos) with
    | Some e when Expr.equal (Expr.canonical e) expr ->
      if (not !killed) && !first_unkilled < 0 then first_unkilled := pos;
      last_unkilled := pos
    | Some _ | None -> ());
    (* Same conservative kill relation as [Transform.killed_by] and the
       local predicates: the definition, plus effect operands. *)
    if List.exists (fun v -> Expr.reads_var expr v) (Instr.kills instrs.(pos)) then begin
      killed := true;
      (* A later occurrence may restart the exposure. *)
      if !last_unkilled >= 0 && !last_unkilled < pos then last_unkilled := -1
    end
  done;
  (* Walk forward tracking validity. *)
  let valid = ref (valid_in || entry_insert) in
  (* A deletion must target an upwards-exposed occurrence at all. *)
  let covered = ref (not (deletes_here && !first_unkilled < 0)) in
  Array.iteri
    (fun pos i ->
      (* The deleted occurrence reads the temporary here. *)
      if deletes_here && pos = !first_unkilled && not !valid then covered := false;
      if List.exists (fun v -> Expr.reads_var expr v) (Instr.kills i) then valid := false;
      (* A copy publishes the value right after the downwards-exposed
         occurrence.  If the occurrence is also the deleted one, the
         rewritten [v := h] keeps the temporary valid anyway. *)
      if copies_here && pos = !last_unkilled then valid := true;
      (* An original computation that the spec deletes leaves h valid (it
         was valid just before, and nothing changed); one that stays and
         has no copy does not touch h. *)
      match Instr.candidate i with
      | Some e when Expr.equal (Expr.canonical e) expr && deletes_here && pos = !first_unkilled ->
        (* v := h; if v is an operand of e the kill above already fired. *)
        ()
      | Some _ | None -> ())
    instrs;
  if exit_insert then valid := true;
  (!valid, !covered)

let check g spec =
  let pool = spec.Transform.pool in
  let nexprs = Expr_pool.size pool in
  let order = Order.compute g in
  let rpo = Order.reverse_postorder order in
  let edge_insert (p, b) idx =
    match List.assoc_opt (p, b) spec.Transform.edge_inserts with
    | Some set -> Bitvec.get set idx
    | None -> false
  in
  let failures = ref [] in
  for idx = 0 to nexprs - 1 do
    (* Optimistic fixpoint on per-block exit validity. *)
    let valid_out = Hashtbl.create 64 in
    List.iter (fun l -> Hashtbl.replace valid_out l true) (Cfg.labels g);
    let entry = Cfg.entry g in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun l ->
          let valid_in =
            if Label.equal l entry then false
            else
              List.for_all
                (fun p -> Hashtbl.find valid_out p || edge_insert (p, l) idx)
                (Cfg.predecessors g l)
          in
          let v_out, _ = simulate_block g spec idx l ~valid_in in
          if v_out <> Hashtbl.find valid_out l then begin
            Hashtbl.replace valid_out l v_out;
            changed := true
          end)
        rpo
    done;
    (* With the fixpoint reached, check coverage of every deletion. *)
    List.iter
      (fun l ->
        let valid_in =
          if Label.equal l entry then false
          else
            List.for_all (fun p -> Hashtbl.find valid_out p || edge_insert (p, l) idx) (Cfg.predecessors g l)
        in
        let _, covered = simulate_block g spec idx l ~valid_in in
        if not covered then
          failures :=
            Format.asprintf "deletion of %a in %a is not covered on all paths" Expr.pp
              (Expr_pool.expr pool idx) Label.pp l
            :: !failures)
      rpo
  done;
  match List.rev !failures with
  | [] -> Ok ()
  | fs -> Error (String.concat "; " fs)
