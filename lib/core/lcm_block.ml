module Bitvec = Lcm_support.Bitvec
module Arena = Lcm_support.Arena
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Edge_split = Lcm_cfg.Edge_split

type analysis = {
  graph : Cfg.t;
  entry_inserts : (Label.t * Bitvec.t) list;
  exit_inserts : (Label.t * Bitvec.t) list;
  deletes : (Label.t * Bitvec.t) list;
  copies : (Label.t * Bitvec.t) list;
  edges_pre_split : int;
}

let analyze ?scratch g0 =
  let pre_split = List.length (List.filter (Cfg.is_critical_edge g0) (Cfg.edges g0)) in
  (* Splitting may grow the graph past the admission-time shape class; the
     arena's size buckets absorb that (the first such request warms larger
     buckets, later ones reuse them). *)
  let g = Edge_split.split_critical_edges g0 in
  let a = Lcm_edge.analyze ?scratch g in
  (* Lower each edge insertion to a block placement.  With critical edges
     gone, one of the two positions is always available. *)
  let entry_tbl = Hashtbl.create 16 and exit_tbl = Hashtbl.create 16 in
  let add tbl l set =
    match Hashtbl.find_opt tbl l with
    | Some existing -> ignore (Bitvec.union_into ~into:existing set)
    | None -> Hashtbl.replace tbl l (Arena.alloc_copy scratch set)
  in
  List.iter
    (fun ((p, b), set) ->
      if List.length (Cfg.predecessors g b) = 1 then add entry_tbl b set
      else begin
        assert (List.length (Cfg.successors g p) = 1);
        add exit_tbl p set
      end)
    a.Lcm_edge.insert;
  let to_list tbl =
    List.filter_map (fun l -> Option.map (fun s -> (l, s)) (Hashtbl.find_opt tbl l)) (Cfg.labels g)
  in
  {
    graph = g;
    entry_inserts = to_list entry_tbl;
    exit_inserts = to_list exit_tbl;
    deletes = a.Lcm_edge.delete;
    copies = a.Lcm_edge.copy;
    edges_pre_split = pre_split;
  }

let spec a =
  let pool = Cfg.candidate_pool a.graph in
  {
    Transform.algorithm = "lcm-block";
    pool;
    temp_names = Temps.names a.graph pool;
    edge_inserts = [];
    entry_inserts = a.entry_inserts;
    exit_inserts = a.exit_inserts;
    deletes = a.deletes;
    copies = a.copies;
  }

let transform ?simplify g =
  let a = analyze g in
  Transform.apply ?simplify a.graph (spec a)

(* The report deliberately carries no spec: the decision refers to the
   pre-split graph, so a placement check against the pass input would be
   checking the wrong graph. *)
let pass =
  Pass.v "lcm-block" (fun ctx g ->
      let a = Lcm_obs.Trace.span "lcm.split" (fun () -> analyze ?scratch:ctx.Pass.scratch g) in
      let g', _rep = Transform.apply a.graph (spec a) in
      (g', Pass.report ~notes:[ ("edges_pre_split", string_of_int a.edges_pre_split) ] ()))
