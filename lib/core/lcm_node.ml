module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Granulate = Lcm_cfg.Granulate
module Local = Lcm_dataflow.Local
module Avail = Lcm_dataflow.Avail
module Antic = Lcm_dataflow.Antic
module Solver = Lcm_dataflow.Solver
module Expr_pool = Lcm_ir.Expr_pool

type analysis = {
  pool : Expr_pool.t;
  local : Local.t;
  dsafe : Label.t -> Bitvec.t;
  usafe : Label.t -> Bitvec.t;
  earliest : Label.t -> Bitvec.t;
  delay : Label.t -> Bitvec.t;
  latest : Label.t -> Bitvec.t;
  isolated : Label.t -> Bitvec.t;
  sweeps : int;
  visits : int;
}

type variant =
  | Bcm
  | Alcm
  | Lcm

let variant_name = function
  | Bcm -> "bcm-node"
  | Alcm -> "alcm-node"
  | Lcm -> "lcm-node"

(* On a granular graph the paper's Comp(n) — "n computes e, reading entry
   values" — is exactly the upwards-exposed predicate. *)
let comp local l = Local.antloc local l

let table_of g f =
  let tbl = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace tbl l (f l)) (Cfg.labels g);
  fun l ->
    match Hashtbl.find_opt tbl l with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Lcm_node: unknown label B%d" l)

let analyze ?pool g =
  if not (Granulate.is_granular g) then
    invalid_arg "Lcm_node.analyze: graph has blocks with several instructions (granulate first)";
  let pool = match pool with Some p -> p | None -> Cfg.candidate_pool g in
  let local = Local.compute g pool in
  let n = Expr_pool.size pool in
  (* Down-safety is anticipatability and up-safety is availability at node
     entries; both reuse the generic analyses. *)
  let antic = Antic.compute g local in
  let avail = Avail.compute g local in
  let dsafe = antic.Antic.antin in
  let usafe = avail.Avail.avin in
  let entry = Cfg.entry g in
  let earliest =
    table_of g (fun l ->
        let v = Bitvec.copy (dsafe l) in
        if not (Label.equal l entry) then begin
          (* Remove bits for which every predecessor is transparent and safe:
             the insertion could move further up. *)
          let all_preds_safe = Bitvec.create_full n in
          List.iter
            (fun p ->
              let safe = Bitvec.union (dsafe p) (usafe p) in
              ignore (Bitvec.inter_into ~into:safe (Local.transp local p));
              ignore (Bitvec.inter_into ~into:all_preds_safe safe))
            (Cfg.predecessors g l);
          ignore (Bitvec.diff_into ~into:v all_preds_safe)
        end;
        v)
  in
  (* DELAY: forward, intersection, entry boundary ∅;
     transfer(out of n) = (in ∪ EARLIEST(n)) \ Comp(n). *)
  let delay_solution =
    Solver.run g
      {
        Solver.nbits = n;
        direction = Solver.Forward;
        confluence = Solver.Inter;
        boundary = Bitvec.create n;
        transfer =
          (fun l ~src ~dst ->
            ignore (Bitvec.blit ~src ~dst);
            ignore (Bitvec.union_into ~into:dst (earliest l));
            ignore (Bitvec.diff_into ~into:dst (comp local l)));
      }
  in
  let delay =
    table_of g (fun l -> Bitvec.union (delay_solution.Solver.block_in l) (earliest l))
  in
  let latest =
    table_of g (fun l ->
        let succs = Cfg.successors g l in
        let all_succs_delay = Bitvec.create_full n in
        List.iter (fun s -> ignore (Bitvec.inter_into ~into:all_succs_delay (delay s))) succs;
        let stop = Bitvec.union (comp local l) (Bitvec.complement all_succs_delay) in
        Bitvec.inter (delay l) stop)
  in
  (* ISOLATED: backward, intersection, exit boundary full;
     transfer(in of s) = LATEST(s) ∪ (out(s) \ Comp(s)). *)
  let isolated_solution =
    Solver.run g
      {
        Solver.nbits = n;
        direction = Solver.Backward;
        confluence = Solver.Inter;
        boundary = Bitvec.create_full n;
        transfer =
          (fun l ~src ~dst ->
            ignore (Bitvec.blit ~src ~dst);
            ignore (Bitvec.diff_into ~into:dst (comp local l));
            ignore (Bitvec.union_into ~into:dst (latest l)));
      }
  in
  let isolated = table_of g (fun l -> Bitvec.copy (isolated_solution.Solver.block_out l)) in
  {
    pool;
    local;
    dsafe;
    usafe;
    earliest;
    delay;
    latest;
    isolated;
    sweeps =
      antic.Antic.sweeps + avail.Avail.sweeps + delay_solution.Solver.sweeps
      + isolated_solution.Solver.sweeps;
    visits =
      antic.Antic.visits + avail.Avail.visits + delay_solution.Solver.visits
      + isolated_solution.Solver.visits;
  }

let insert_points a variant l =
  match variant with
  | Bcm -> Bitvec.copy (a.earliest l)
  | Alcm -> Bitvec.copy (a.latest l)
  | Lcm -> Bitvec.diff (a.latest l) (a.isolated l)

let spec g a variant =
  let entry_inserts =
    List.filter_map
      (fun l ->
        let v = insert_points a variant l in
        if Bitvec.is_empty v then None else Some (l, v))
      (Cfg.labels g)
  in
  (* Rewrite set: all computations, except — for LCM — the ones whose node
     is LATEST ∧ ISOLATED (they keep their original expression). *)
  let deletes =
    List.filter_map
      (fun l ->
        let v = Bitvec.copy (comp a.local l) in
        (match variant with
        | Lcm -> ignore (Bitvec.diff_into ~into:v (Bitvec.inter (a.latest l) (a.isolated l)))
        | Bcm | Alcm -> ());
        if Bitvec.is_empty v then None else Some (l, v))
      (Cfg.labels g)
  in
  {
    Transform.algorithm = variant_name variant;
    pool = a.pool;
    temp_names = Temps.names g a.pool;
    edge_inserts = [];
    entry_inserts;
    exit_inserts = [];
    deletes;
    copies = [];
  }

let transform ?simplify variant g =
  (* The node model needs a landing node on every join edge: a node
     insertion executes once per node visit, so only with landing nodes can
     it express per-edge placement (see Lcm_cfg.Edge_split). *)
  let g = if Granulate.is_granular g then g else Granulate.run g in
  let g = Lcm_cfg.Edge_split.split_join_edges g in
  let a = analyze g in
  Transform.apply ?simplify g (spec g a variant)

(* No spec in the report: the decision refers to the granulated, join-split
   graph, not the pass input. *)
let pass variant =
  Pass.v (variant_name variant) (fun _ctx g ->
      let g', _rep = transform variant g in
      (g', Pass.report ()))
