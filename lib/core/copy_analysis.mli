(** Deciding where original computations must seed the temporary.

    Deleting [v := e] in favour of [v := h] is only meaningful if [h] holds
    the value of [e] on every incoming path.  Paths through an *inserted*
    [h := e] are fine by construction; paths on which the deletion was
    justified by an *original* computation [x := e] need that computation to
    publish its value with a copy [h := x].

    This module finds the blocks that need such copies by solving a liveness
    problem for [h] over the decided insertions and deletions:

    {v
    LIVEIN(b)  = DELETE(b) ∪ (LIVEOUT(b) ∩ ¬COMP(b))
    LIVEOUT(b) = ⋃ over edges (b,s) not carrying an insertion of LIVEIN(s)
    COPY(b)    = COMP(b) ∩ LIVEOUT(b) ∩ ¬(DELETE(b) ∩ TRANSP(b))
    v}

    The last conjunct drops blocks whose deleted (upwards-exposed)
    occurrence is also the downwards-exposed one: the rewritten [v := h]
    leaves [h] already holding the value at the block's exit. *)

(** [copies g local ~insert_edges ~deletes] is the per-block set of
    expressions whose downwards-exposed occurrence must be followed by a
    copy into the temporary.  Only non-empty sets are listed.  [scratch]
    backs the liveness state and the returned sets. *)
val copies :
  ?scratch:Lcm_support.Arena.t ->
  Lcm_cfg.Cfg.t ->
  Lcm_dataflow.Local.t ->
  insert_edges:((Lcm_cfg.Label.t * Lcm_cfg.Label.t) * Lcm_support.Bitvec.t) list ->
  deletes:(Lcm_cfg.Label.t * Lcm_support.Bitvec.t) list ->
  (Lcm_cfg.Label.t * Lcm_support.Bitvec.t) list
