module Bitvec = Lcm_support.Bitvec
module Arena = Lcm_support.Arena
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Order = Lcm_cfg.Order
module Local = Lcm_dataflow.Local
module Avail = Lcm_dataflow.Avail
module Antic = Lcm_dataflow.Antic
module Expr_pool = Lcm_ir.Expr_pool

type analysis = {
  pool : Expr_pool.t;
  local : Local.t;
  avail : Avail.t;
  antic : Antic.t;
  insert : ((Label.t * Label.t) * Bitvec.t) list;
  delete : (Label.t * Bitvec.t) list;
  copy : (Label.t * Bitvec.t) list;
  sweeps : int;
  visits : int;
}

(* EARLIEST, shared with the lazy variant (see Lcm_edge for the formula). *)
let earliest ?scratch g local avail antic (p, b) =
  let v = Arena.alloc_copy scratch (antic.Antic.antin b) in
  ignore (Bitvec.diff_into ~into:v (avail.Avail.avout p));
  if not (Label.equal p (Cfg.entry g)) then begin
    let movable_through = Arena.alloc_copy scratch (Local.transp local p) in
    ignore (Bitvec.inter_into ~into:movable_through (antic.Antic.antout p));
    ignore (Bitvec.diff_into ~into:v movable_through)
  end;
  v

let analyze ?pool ?workers ?scratch g =
  let pool = match pool with Some p -> p | None -> Cfg.candidate_pool g in
  let local = Lcm_obs.Trace.span "lcm.local" (fun () -> Local.compute ?scratch g pool) in
  (* Same overlap as [Lcm_edge]: the two safety systems are independent. *)
  let avail, antic = Lcm_edge.solve_safety_systems ?workers ?scratch g local in
  let insert =
    Lcm_obs.Trace.span "lcm.earliest" (fun () ->
        List.filter_map
          (fun e ->
            let v = earliest ?scratch g local avail antic e in
            if Bitvec.is_empty v then None else Some (e, v))
          (Cfg.edges g))
  in
  (* Under busy placement every upwards-exposed computation of a reachable
     block becomes fully redundant — except in the entry block, which has
     no incoming edges for an insertion to cover it. *)
  let order = Order.compute g in
  let delete =
    List.filter_map
      (fun b ->
        if
          Order.is_reachable order b
          && (not (Label.equal b (Cfg.entry g)))
          && not (Bitvec.is_empty (Local.antloc local b))
        then Some (b, Arena.alloc_copy scratch (Local.antloc local b))
        else None)
      (Cfg.labels g)
  in
  let copy = Copy_analysis.copies ?scratch g local ~insert_edges:insert ~deletes:delete in
  {
    pool;
    local;
    avail;
    antic;
    insert;
    delete;
    copy;
    sweeps = avail.Avail.sweeps + antic.Antic.sweeps;
    visits = avail.Avail.visits + antic.Antic.visits;
  }

let spec g a =
  {
    Transform.algorithm = "bcm-edge";
    pool = a.pool;
    temp_names = Temps.names g a.pool;
    edge_inserts = a.insert;
    entry_inserts = [];
    exit_inserts = [];
    deletes = a.delete;
    copies = a.copy;
  }

let transform ?simplify ?workers g =
  let a = analyze ?workers g in
  Transform.apply ?simplify g (spec g a)

let pass =
  Pass.v "bcm-edge" (fun ctx g ->
      let a = analyze ?workers:ctx.Pass.workers ?scratch:ctx.Pass.scratch g in
      let g', rep = Transform.apply g (spec g a) in
      (g', Pass.report ~sweeps:a.sweeps ~visits:a.visits ~spec:rep.Transform.spec ()))
