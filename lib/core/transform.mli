(** Applying a code-motion decision to a graph.

    Every PRE algorithm in this repository — LCM, BCM, the node-based
    variants, and the baselines — reduces to the same four kinds of edits,
    gathered in a {!spec}:

    - {b edge insertions}: put [h := e] on a flow edge (the edge is split
      with a fresh block);
    - {b entry insertions}: put [h := e] at the very beginning of a block
      (used by the node-based formulation);
    - {b exit insertions}: put [h := e] at the end of a block, before its
      terminator (used by the Morel–Renvoise baseline);
    - {b deletions}: replace the upwards-exposed occurrence [v := e] of a
      block by [v := h];
    - {b copies}: after the downwards-exposed occurrence [v := e] of a
      block, add [h := v] so that [h] carries the value for later redundant
      uses.

    [apply] performs the edits on a copy of the graph and validates the
    result. *)

module Bitvec = Lcm_support.Bitvec
module Label = Lcm_cfg.Label

type spec = {
  algorithm : string;  (** name recorded in reports *)
  pool : Lcm_ir.Expr_pool.t;
  temp_names : string array;  (** one per expression index *)
  edge_inserts : ((Label.t * Label.t) * Bitvec.t) list;
  entry_inserts : (Label.t * Bitvec.t) list;
  exit_inserts : (Label.t * Bitvec.t) list;
  deletes : (Label.t * Bitvec.t) list;
  copies : (Label.t * Bitvec.t) list;
}

type report = {
  spec : spec;
  num_edge_insertions : int;  (** one per (edge, expression) pair *)
  num_entry_insertions : int;
  num_exit_insertions : int;
  num_deletions : int;
  num_copies : int;
  split_blocks : ((Label.t * Label.t) * Label.t) list;
      (** original edge mapped to the block created on it *)
}

(** An empty decision (the identity transformation). *)
val identity_spec : Lcm_ir.Expr_pool.t -> string -> spec

(** [apply g spec] edits a copy of [g].  [simplify] (default [false])
    additionally merges straight-line block pairs afterwards.  Raises
    [Failure] when the spec names an occurrence that does not exist — a
    spec produced from a sound analysis never does. *)
val apply : ?simplify:bool -> Lcm_cfg.Cfg.t -> spec -> Lcm_cfg.Cfg.t * report

(** Human-readable summary of a report. *)
val pp_report : Format.formatter -> report -> unit
