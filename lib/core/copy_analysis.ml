module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Order = Lcm_cfg.Order
module Local = Lcm_dataflow.Local

let copies g local ~insert_edges ~deletes =
  let n = Local.nbits local in
  let delete_set =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (l, set) -> Hashtbl.replace tbl l set) deletes;
    fun l -> Hashtbl.find_opt tbl l
  in
  let insert_set =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (e, set) -> Hashtbl.replace tbl e set) insert_edges;
    fun e -> Hashtbl.find_opt tbl e
  in
  (* Backward may-liveness of the temporaries, worklist-driven: LIVEIN(b)
     depends only on LIVEOUT(b), which reads LIVEIN of b's successors — so
     when a block's LIVEIN grows, only its predecessors need re-visiting.
     Dense arrays indexed by label, postorder priority for fast backward
     convergence. *)
  let adj = Cfg.adjacency g in
  let bound = adj.Cfg.adj_bound in
  let livein = Array.init bound (fun _ -> Bitvec.create n) in
  let liveout = Array.init bound (fun _ -> Bitvec.create n) in
  let scratch = Bitvec.create n in
  let rpo_pos = adj.Cfg.adj_rpo_pos in
  let queue = Queue.create () in
  let in_queue = Array.make bound false in
  let enqueue l =
    if (not in_queue.(l)) && rpo_pos.(l) >= 0 then begin
      in_queue.(l) <- true;
      Queue.add l queue
    end
  in
  List.iter enqueue adj.Cfg.adj_post;
  while not (Queue.is_empty queue) do
    let l = Queue.take queue in
    in_queue.(l) <- false;
    (* LIVEOUT(b): union over successor entries, masked by insertions. *)
    Bitvec.fill scratch false;
    Array.iter
      (fun s ->
        match insert_set (l, s) with
        | Some ins -> ignore (Bitvec.union_diff_into ~into:scratch livein.(s) ~diff:ins)
        | None -> ignore (Bitvec.union_into ~into:scratch livein.(s)))
      adj.Cfg.adj_succ.(l);
    ignore (Bitvec.blit ~src:scratch ~dst:liveout.(l));
    (* LIVEIN(b) = DELETE(b) ∪ (LIVEOUT(b) ∩ ¬COMP(b)) *)
    ignore (Bitvec.diff_into ~into:scratch (Local.comp local l));
    (match delete_set l with
    | Some d -> ignore (Bitvec.union_into ~into:scratch d)
    | None -> ());
    if Bitvec.blit ~src:scratch ~dst:livein.(l) then Array.iter enqueue adj.Cfg.adj_pred.(l)
  done;
  List.filter_map
    (fun l ->
      let want = Bitvec.inter (Local.comp local l) liveout.(l) in
      (match delete_set l with
      | Some d -> ignore (Bitvec.diff_into ~into:want (Bitvec.inter d (Local.transp local l)))
      | None -> ());
      if Bitvec.is_empty want then None else Some (l, want))
    (Cfg.labels g)
