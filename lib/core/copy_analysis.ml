module Bitvec = Lcm_support.Bitvec
module Arena = Lcm_support.Arena
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Order = Lcm_cfg.Order
module Local = Lcm_dataflow.Local

let copies ?scratch:arena g local ~insert_edges ~deletes =
  let n = Local.nbits local in
  let adj = Cfg.adjacency g in
  let bound = adj.Cfg.adj_bound in
  (* DELETE and INSERT lookups as dense arrays rather than hashtables: the
     fixpoint below queries them once per successor per visit, and both the
     hashing and the [Some] per [Hashtbl.find_opt] hit are per-visit heap
     traffic.  Deletes are keyed by label; inserts are keyed positionally by
     (source, successor-index) through a CSR-style offset table over
     [adj_succ], so the visit loop never builds an edge key. *)
  let del = Arena.alloc_vec arena bound in
  let del_present = Arena.alloc_bool arena bound in
  List.iter
    (fun (l, set) ->
      if l >= 0 && l < bound then begin
        del.(l) <- set;
        del_present.(l) <- true
      end)
    deletes;
  let succ_off = adj.Cfg.adj_succ_off in
  let ins = Arena.alloc_vec arena succ_off.(bound) in
  let ins_present = Arena.alloc_bool arena succ_off.(bound) in
  List.iter
    (fun ((p, s), set) ->
      if p >= 0 && p < bound then begin
        let succs = adj.Cfg.adj_succ.(p) in
        for i = 0 to Array.length succs - 1 do
          if Label.equal succs.(i) s then begin
            ins.(succ_off.(p) + i) <- set;
            ins_present.(succ_off.(p) + i) <- true
          end
        done
      end)
    insert_edges;
  (* Backward may-liveness of the temporaries, worklist-driven: LIVEIN(b)
     depends only on LIVEOUT(b), which reads LIVEIN of b's successors — so
     when a block's LIVEIN grows, only its predecessors need re-visiting.
     Dense arrays indexed by label, postorder priority for fast backward
     convergence. *)
  let livein = Arena.alloc_vec arena bound in
  let liveout = Arena.alloc_vec arena bound in
  for l = 0 to bound - 1 do
    livein.(l) <- Arena.alloc arena n;
    liveout.(l) <- Arena.alloc arena n
  done;
  let scratch = Arena.alloc arena n in
  let rpo_pos = adj.Cfg.adj_rpo_pos in
  (* FIFO worklist as an arena-backed ring buffer ([in_queue] bounds
     occupancy by [bound], so [bound + 1] cells distinguish full from
     empty); a [Queue.t] would allocate a cell per enqueue. *)
  let qcap = bound + 1 in
  let qbuf = Arena.alloc_int arena qcap in
  let qhead = ref 0 and qtail = ref 0 in
  let in_queue = Arena.alloc_bool arena bound in
  let enqueue l =
    if (not in_queue.(l)) && rpo_pos.(l) >= 0 then begin
      in_queue.(l) <- true;
      qbuf.(!qtail) <- l;
      qtail := (!qtail + 1) mod qcap
    end
  in
  List.iter enqueue adj.Cfg.adj_post;
  while !qhead <> !qtail do
    let l = qbuf.(!qhead) in
    qhead := (!qhead + 1) mod qcap;
    in_queue.(l) <- false;
    (* LIVEOUT(b): union over successor entries, masked by insertions. *)
    Bitvec.fill scratch false;
    let succs = adj.Cfg.adj_succ.(l) and off = succ_off.(l) in
    for i = 0 to Array.length succs - 1 do
      let s = succs.(i) in
      if ins_present.(off + i) then
        ignore (Bitvec.union_diff_into ~into:scratch livein.(s) ~diff:ins.(off + i))
      else ignore (Bitvec.union_into ~into:scratch livein.(s))
    done;
    ignore (Bitvec.blit ~src:scratch ~dst:liveout.(l));
    (* LIVEIN(b) = DELETE(b) ∪ (LIVEOUT(b) ∩ ¬COMP(b)) *)
    ignore (Bitvec.diff_into ~into:scratch (Local.comp local l));
    if del_present.(l) then ignore (Bitvec.union_into ~into:scratch del.(l));
    if Bitvec.blit ~src:scratch ~dst:livein.(l) then begin
      let preds = adj.Cfg.adj_pred.(l) in
      for i = 0 to Array.length preds - 1 do
        enqueue preds.(i)
      done
    end
  done;
  (* [masked] is reused across blocks; [want] is materialized (as an arena
     copy) only when non-empty. *)
  let masked = Arena.alloc arena n in
  List.filter_map
    (fun l ->
      ignore (Bitvec.blit ~src:(Local.comp local l) ~dst:scratch);
      ignore (Bitvec.inter_into ~into:scratch liveout.(l));
      if del_present.(l) then begin
        ignore (Bitvec.blit ~src:del.(l) ~dst:masked);
        ignore (Bitvec.inter_into ~into:masked (Local.transp local l));
        ignore (Bitvec.diff_into ~into:scratch masked)
      end;
      if Bitvec.is_empty scratch then None else Some (l, Arena.alloc_copy arena scratch))
    (Cfg.labels g)
