module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Order = Lcm_cfg.Order
module Local = Lcm_dataflow.Local

let copies g local ~insert_edges ~deletes =
  let n = Local.nbits local in
  let delete_set =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (l, set) -> Hashtbl.replace tbl l set) deletes;
    fun l -> Hashtbl.find_opt tbl l
  in
  let insert_set =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (e, set) -> Hashtbl.replace tbl e set) insert_edges;
    fun e -> Hashtbl.find_opt tbl e
  in
  let livein = Hashtbl.create 64 and liveout = Hashtbl.create 64 in
  List.iter
    (fun l ->
      Hashtbl.replace livein l (Bitvec.create n);
      Hashtbl.replace liveout l (Bitvec.create n))
    (Cfg.labels g);
  let order = Order.compute g in
  let scratch = Bitvec.create n in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        (* LIVEOUT(b): union over successor entries, masked by insertions. *)
        let out = Hashtbl.find liveout l in
        Bitvec.fill scratch false;
        List.iter
          (fun s ->
            let contribution =
              match insert_set (l, s) with
              | Some ins -> Bitvec.diff (Hashtbl.find livein s) ins
              | None -> Hashtbl.find livein s
            in
            ignore (Bitvec.union_into ~into:scratch contribution))
          (Cfg.successors g l);
        ignore (Bitvec.blit ~src:scratch ~dst:out);
        (* LIVEIN(b) = DELETE(b) ∪ (LIVEOUT(b) ∩ ¬COMP(b)) *)
        ignore (Bitvec.diff_into ~into:scratch (Local.comp local l));
        (match delete_set l with
        | Some d -> ignore (Bitvec.union_into ~into:scratch d)
        | None -> ());
        if Bitvec.blit ~src:scratch ~dst:(Hashtbl.find livein l) then changed := true)
      (Order.postorder order)
  done;
  List.filter_map
    (fun l ->
      let want = Bitvec.inter (Local.comp local l) (Hashtbl.find liveout l) in
      (match delete_set l with
      | Some d -> ignore (Bitvec.diff_into ~into:want (Bitvec.inter d (Local.transp local l)))
      | None -> ());
      if Bitvec.is_empty want then None else Some (l, want))
    (Cfg.labels g)
