(** Static verification of code-motion decisions.

    Independently of the dynamic oracles (interpreter, path replay), this
    module checks a {!Transform.spec} against its graph by data-flow
    reasoning: for every deleted occurrence of an expression [e], the
    temporary [h] must *provably* hold [e]'s current value on every
    incoming path — where [h] becomes valid at inserted computations
    ([h := e] on an edge, at a block entry or exit) and at copies
    ([h := v] after an original computation), and turns stale whenever an
    operand of [e] is redefined.

    A spec produced by a sound PRE algorithm always passes; a spec with a
    deletion that some path does not cover is reported with the offending
    block.  Tests run this verifier over every algorithm's spec on every
    workload and on random graphs, and check that it rejects corrupted
    specs. *)

(** [check g spec] is [Ok ()] when every deletion is covered. *)
val check : Lcm_cfg.Cfg.t -> Transform.spec -> (unit, string) result
