(** Constant folding and constant-branch elimination.

    Folds operator applications whose operands are literal constants
    (using the same total arithmetic as the interpreter), rewrites
    branches on constant conditions into unconditional jumps, and drops
    the blocks that become unreachable.  No constant *propagation* is
    performed here — combine with {!Copy_prop} and a round of
    {!Cleanup.run} for that. *)

type stats = {
  exprs_folded : int;
  branches_resolved : int;
}

val run : Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * stats

(** [run] under the unified pass API. *)
val pass : Lcm_core.Pass.t
