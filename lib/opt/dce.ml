module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Lower = Lcm_cfg.Lower
module Live = Lcm_dataflow.Live
module Var_pool = Lcm_dataflow.Var_pool
module Instr = Lcm_ir.Instr

type stats = {
  instrs_removed : int;
  rounds : int;
}

let sweep_block live vars g l =
  (* Walk instructions backwards, keeping an assignment only when its
     target is live at that point. *)
  let live_now = Bitvec.copy (live.Live.liveout l) in
  (* The terminator reads its condition after the last instruction. *)
  (match Cfg.term g l with
  | Cfg.Branch (Lcm_ir.Expr.Var v, _, _) ->
    Option.iter (fun idx -> Bitvec.set live_now idx true) (Var_pool.index vars v)
  | Cfg.Branch (Lcm_ir.Expr.Const _, _, _) | Cfg.Goto _ | Cfg.Halt -> ());
  let removed = ref 0 in
  let keep_instr i =
    match i with
    (* Effects are observable regardless of whether their destination is
       read: they are roots, like prints. *)
    | Instr.Print _ | Instr.Effect _ -> true
    | Instr.Assign (v, _) ->
      (match Var_pool.index vars v with
      | Some idx -> Bitvec.get live_now idx
      | None -> true)
  in
  let set_bit v b = Option.iter (fun idx -> Bitvec.set live_now idx b) (Var_pool.index vars v) in
  let step i acc =
    if keep_instr i then begin
      Option.iter (fun v -> set_bit v false) (Instr.defs i);
      List.iter (fun v -> set_bit v true) (Instr.uses i);
      i :: acc
    end
    else begin
      incr removed;
      acc
    end
  in
  let out = List.fold_right step (Cfg.instrs g l) [] in
  if !removed > 0 then Cfg.set_instrs g l out;
  !removed

let run ?(keep = []) g =
  let g = Cfg.copy g in
  let exit_live =
    let all = Cfg.all_vars g in
    let base = if List.mem Lower.return_var all then [ Lower.return_var ] else [] in
    base @ keep
  in
  let total = ref 0 and rounds = ref 0 in
  let changed = ref true in
  while !changed do
    incr rounds;
    let live = Live.compute ~exit_live g in
    let removed =
      List.fold_left (fun acc l -> acc + sweep_block live live.Live.vars g l) 0 (Cfg.labels g)
    in
    total := !total + removed;
    changed := removed > 0
  done;
  (g, { instrs_removed = !total; rounds = !rounds })

let pass =
  Lcm_core.Pass.v "dce" (fun _ctx g ->
      let g', s = run g in
      ( g',
        Lcm_core.Pass.report
          ~notes:
            [
              ("instrs_removed", string_of_int s.instrs_removed);
              ("rounds", string_of_int s.rounds);
            ]
          () ))
