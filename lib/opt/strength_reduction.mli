(** Loop strength reduction — the extension the paper points to.

    The PLDI 1992 paper closes by noting that the code-motion framework
    extends to strength reduction (spelled out by the same authors as
    *Lazy Strength Reduction*, J. Prog. Lang. 1993).  This module provides
    the classic loop-based form of that optimisation on this library's
    substrate:

    - a {e basic induction variable} is a variable [i] whose only
      definition inside a loop is [i := i + s] or [i := i - s] with a
      constant [s];
    - a {e reduction candidate} is a computation [v := i * c] inside the
      loop where [c] is loop-invariant (a constant, or — when the step is
      ±1 — an invariant variable).

    For each reduced pair, a temporary [t] tracks [i * c]: the pre-header
    initializes it, the instruction after the induction update adjusts it
    by the constant delta [s * c] (or [±c]), and the candidates read [t] —
    multiplications become additions.

    Like LICM, the pre-header initialization is speculative (a zero-trip
    loop pays one multiplication it never paid before); this pass is in
    the "extensions" tier, not among the safety-preserving transformations
    of the paper's core. *)

type stats = {
  loops_processed : int;
  induction_variables : int;
  pairs_reduced : int;  (** distinct (iv, multiplier) pairs given a temporary *)
  occurrences_rewritten : int;
}

val run : Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * stats

val pp_stats : Format.formatter -> stats -> unit

(** [run] under the unified pass API. *)
val pass : Lcm_core.Pass.t
