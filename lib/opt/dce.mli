(** Dead-code elimination.

    Removes assignments whose target is not live afterwards.  All MiniImp
    expressions are pure (division by zero is total), so any unused
    assignment may go; [print] instructions and terminators are never
    removed.  Runs liveness-and-sweep to a fixed point, since deleting one
    assignment can kill another. *)

type stats = {
  instrs_removed : int;
  rounds : int;  (** liveness/sweep iterations until the fixed point *)
}

(** [run ?keep g] eliminates dead assignments on a copy of [g].  [keep]
    lists variables to treat as live at the exit in addition to the
    lowered return variable (default []). *)
val run : ?keep:string list -> Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * stats

(** [run] with default [keep] under the unified pass API. *)
val pass : Lcm_core.Pass.t
