(** The standard post-PRE cleanup pipeline.

    Runs copy propagation, local value numbering, constant folding,
    dead-code elimination, and structural simplification (merging
    straight-line pairs, dropping unreachable blocks) to a fixed point.
    Copy propagation followed by local value numbering is what lets an
    *iterated* PRE see value redundancies hidden behind copies — the
    registry's "lcm-iterated" entry.  The paper's transformation
    deliberately emits copies and fresh temporaries and leaves tidying to
    passes like these; the cleanup makes "LCM then cleanup" directly
    comparable to the original program in instruction counts. *)

type stats = {
  rounds : int;
  copies_propagated : int;
  local_reuses : int;  (** recomputations eliminated by local value numbering *)
  exprs_folded : int;
  branches_resolved : int;
  instrs_removed : int;
}

(** [run ?keep g] applies the pipeline on a copy of [g] until nothing
    changes.  [keep] marks extra variables live at exit (see {!Dce}). *)
val run : ?keep:string list -> Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * stats

val pp_stats : Format.formatter -> stats -> unit

(** [run] with default [keep] under the unified pass API. *)
val pass : Lcm_core.Pass.t
