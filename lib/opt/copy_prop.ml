module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Solver = Lcm_dataflow.Solver
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr

type stats = { uses_rewritten : int }

(* The fact universe: one bit per distinct copy (target, source) pair
   occurring in the program. *)
type facts = {
  index : (string * string, int) Hashtbl.t;
  pairs : (string * string) array;
}

let collect_facts g =
  let index = Hashtbl.create 32 in
  let pairs = ref [] in
  let note v w =
    if (not (String.equal v w)) && not (Hashtbl.mem index (v, w)) then begin
      Hashtbl.add index (v, w) (Hashtbl.length index);
      pairs := (v, w) :: !pairs
    end
  in
  List.iter
    (fun l ->
      List.iter
        (fun i ->
          match i with
          | Instr.Assign (v, Expr.Atom (Expr.Var w)) -> note v w
          | Instr.Assign _ | Instr.Print _ | Instr.Effect _ -> ())
        (Cfg.instrs g l))
    (Cfg.labels g);
  { index; pairs = Array.of_list (List.rev !pairs) }

(* Facts invalidated by defining [v]: all pairs mentioning [v]. *)
let killed_by facts v =
  let acc = ref [] in
  Array.iteri
    (fun i (a, b) -> if String.equal a v || String.equal b v then acc := i :: !acc)
    facts.pairs;
  !acc

let block_transfer g facts l =
  let n = Array.length facts.pairs in
  let gen = Bitvec.create n and kill = Bitvec.create n in
  List.iter
    (fun i ->
      (match Instr.defs i with
      | Some v ->
        List.iter
          (fun idx ->
            Bitvec.set kill idx true;
            Bitvec.set gen idx false)
          (killed_by facts v)
      | None -> ());
      match i with
      | Instr.Assign (v, Expr.Atom (Expr.Var w)) when not (String.equal v w) ->
        Bitvec.set gen (Hashtbl.find facts.index (v, w)) true
      | Instr.Assign _ | Instr.Print _ | Instr.Effect _ -> ())
    (Cfg.instrs g l);
  (gen, kill)

(* Map view of a fact set: target variable to (transitively resolved)
   source. *)
let map_of_set facts set =
  let tbl = Hashtbl.create 16 in
  Bitvec.iter_true
    (fun i ->
      let v, w = facts.pairs.(i) in
      Hashtbl.replace tbl v w)
    set;
  tbl

let rec resolve tbl seen v =
  match Hashtbl.find_opt tbl v with
  | Some w when not (List.mem w seen) -> resolve tbl (v :: seen) w
  | Some _ | None -> v

let run g =
  let g = Cfg.copy g in
  let facts = collect_facts g in
  let n = Array.length facts.pairs in
  let rewritten = ref 0 in
  if n > 0 then begin
    let transfers = Hashtbl.create 32 in
    List.iter (fun l -> Hashtbl.replace transfers l (block_transfer g facts l)) (Cfg.labels g);
    let solution =
      Solver.run g
        {
          Solver.nbits = n;
          direction = Solver.Forward;
          confluence = Solver.Inter;
          boundary = Bitvec.create n;
          transfer =
            (fun l ~src ~dst ->
              let gen, kill = Hashtbl.find transfers l in
              ignore (Bitvec.blit ~src ~dst);
              ignore (Bitvec.diff_into ~into:dst kill);
              ignore (Bitvec.union_into ~into:dst gen));
        }
    in
    List.iter
      (fun l ->
        let tbl = map_of_set facts (solution.Solver.block_in l) in
        let subst v =
          let v' = resolve tbl [] v in
          if not (String.equal v' v) then incr rewritten;
          v'
        in
        let subst_operand = function
          | Expr.Var v -> Expr.Var (subst v)
          | Expr.Const _ as c -> c
        in
        let subst_expr = function
          | Expr.Atom a -> Expr.Atom (subst_operand a)
          | Expr.Unary (op, a) -> Expr.Unary (op, subst_operand a)
          | Expr.Binary (op, a, b) -> Expr.Binary (op, subst_operand a, subst_operand b)
        in
        let step i =
          let i' =
            match i with
            | Instr.Assign (v, e) -> Instr.Assign (v, subst_expr e)
            | Instr.Print a -> Instr.Print (subst_operand a)
            | Instr.Effect e ->
              (* Effect operands are plain reads: copies propagate into
                 them like any other use (Bril registers are value-typed,
                 so no effect can alias another register). *)
              Instr.Effect { e with Instr.eff_args = List.map subst_operand e.Instr.eff_args }
          in
          (* Update the local view: a definition invalidates facts, a copy
             introduces one. *)
          (match Instr.defs i' with
          | Some v ->
            let stale = Hashtbl.fold (fun a b acc -> if String.equal a v || String.equal b v then a :: acc else acc) tbl [] in
            List.iter (Hashtbl.remove tbl) stale
          | None -> ());
          (match i' with
          | Instr.Assign (v, Expr.Atom (Expr.Var w)) when not (String.equal v w) -> Hashtbl.replace tbl v w
          | Instr.Assign _ | Instr.Print _ | Instr.Effect _ -> ());
          i'
        in
        let instrs' = List.map step (Cfg.instrs g l) in
        Cfg.set_instrs g l instrs';
        match Cfg.term g l with
        | Cfg.Branch (Expr.Var v, a, b) ->
          let v' = resolve tbl [] v in
          if not (String.equal v' v) then begin
            incr rewritten;
            Cfg.set_term g l (Cfg.Branch (Expr.Var v', a, b))
          end
        | Cfg.Branch (Expr.Const _, _, _) | Cfg.Goto _ | Cfg.Halt -> ())
      (Cfg.labels g)
  end;
  (g, { uses_rewritten = !rewritten })

let pass =
  Lcm_core.Pass.v "copy-prop" (fun _ctx g ->
      let g', s = run g in
      (g', Lcm_core.Pass.report ~notes:[ ("uses_rewritten", string_of_int s.uses_rewritten) ] ()))
