module Cfg = Lcm_cfg.Cfg
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr

(* Local value numbering with temporaries.

   One forward pass per block tracks, for every still-valid candidate
   expression (its operands unmodified since its last computation), the
   set of variables currently holding its value and the position of the
   computation that opened the validity span.  A recomputation is
   rewritten to read a holder when one exists; when none does, the
   opening computation is made to publish its value into a fresh
   temporary ([copy_after]) and the recomputation reads that. *)

type span = {
  opened_at : int;  (** instruction index of the span's first computation *)
  mutable holders : string list;
  mutable temp : string option;  (** fresh temporary, once required *)
}

let fresh_temp fresh = Lcm_support.Fresh.mint fresh

let rewrite_block fresh instrs =
  let arr = Array.of_list instrs in
  let n = Array.length arr in
  let spans : (Expr.t, span) Hashtbl.t = Hashtbl.create 16 in
  (* copy_after.(i) = temporary definitions to place right after instr i *)
  let copy_after = Array.make n [] in
  let replaced = ref 0 in
  let on_def v =
    (* A definition of [v] closes the spans reading [v] and evicts [v]
       from all holder sets. *)
    let stale =
      Hashtbl.fold (fun e _ acc -> if Expr.reads_var e v then e :: acc else acc) spans []
    in
    List.iter (Hashtbl.remove spans) stale;
    Hashtbl.iter
      (fun _ span -> span.holders <- List.filter (fun h -> not (String.equal h v)) span.holders)
      spans
  in
  for pos = 0 to n - 1 do
    (match arr.(pos) with
    | Instr.Assign (v, e) when Expr.is_candidate e ->
      let key = Expr.canonical e in
      (match Hashtbl.find_opt spans key with
      | Some span ->
        incr replaced;
        let source =
          match (span.holders, span.temp) with
          | h :: _, _ -> h
          | [], Some t -> t
          | [], None ->
            (* No variable holds the value anymore: make the opening
               computation publish it into a fresh temporary. *)
            let t = fresh_temp fresh in
            span.temp <- Some t;
            (match arr.(span.opened_at) with
            | Instr.Assign (v0, _) ->
              copy_after.(span.opened_at) <- Instr.Assign (t, Expr.Atom (Expr.Var v0)) :: copy_after.(span.opened_at)
            | Instr.Print _ | Instr.Effect _ -> assert false);
            t
        in
        arr.(pos) <- Instr.Assign (v, Expr.Atom (Expr.Var source));
        on_def v;
        (* v now holds the value too (unless the definition killed the
           span, which on_def already handled). *)
        (match Hashtbl.find_opt spans key with
        | Some span -> span.holders <- v :: span.holders
        | None -> ())
      | None ->
        on_def v;
        (* Open a span unless the assignment killed its own expression. *)
        if not (Expr.reads_var key v) then
          Hashtbl.replace spans key { opened_at = pos; holders = [ v ]; temp = None })
    | Instr.Assign (v, _) -> on_def v
    | Instr.Print _ -> ()
    | Instr.Effect _ ->
      (* Conservative: close every span touching a variable the effect
         may clobber (destination plus operands). *)
      List.iter on_def (Instr.kills arr.(pos)))
  done;
  let out = ref [] in
  for pos = n - 1 downto 0 do
    out := (arr.(pos) :: List.rev copy_after.(pos)) @ !out
  done;
  (!out, !replaced)

let run g =
  let g = Cfg.copy g in
  let fresh = Lcm_support.Fresh.create ~existing:(Cfg.all_vars g) "_l" in
  let total = ref 0 in
  List.iter
    (fun l ->
      let out, n = rewrite_block fresh (Cfg.instrs g l) in
      if n > 0 then Cfg.set_instrs g l out;
      total := !total + n)
    (Cfg.labels g);
  (g, !total)

let is_clean g = snd (run g) = 0

let pass =
  Lcm_core.Pass.v "lcse" (fun _ctx g ->
      let g', eliminated = run g in
      (g', Lcm_core.Pass.report ~notes:[ ("eliminated", string_of_int eliminated) ] ()))
