module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Loop = Lcm_cfg.Loop
module Validate = Lcm_cfg.Validate
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr

type stats = {
  loops_processed : int;
  induction_variables : int;
  pairs_reduced : int;
  occurrences_rewritten : int;
}

module String_map = Map.Make (String)

(* i := i + s / s + i / i - s, with constant s: a basic induction update. *)
let induction_step var e =
  match e with
  | Expr.Binary (Expr.Add, Expr.Var v, Expr.Const s) when String.equal v var -> Some s
  | Expr.Binary (Expr.Add, Expr.Const s, Expr.Var v) when String.equal v var -> Some s
  | Expr.Binary (Expr.Sub, Expr.Var v, Expr.Const s) when String.equal v var -> Some (-s)
  | Expr.Atom _ | Expr.Unary _ | Expr.Binary _ -> None

(* Definitions inside the loop body, per variable. *)
let loop_def_counts g body =
  Label.Set.fold
    (fun l acc ->
      List.fold_left
        (fun acc i ->
          match Instr.defs i with
          | Some v -> String_map.update v (fun c -> Some (Option.value ~default:0 c + 1)) acc
          | None -> acc)
        acc (Cfg.instrs g l))
    body String_map.empty

(* Basic induction variables: exactly one defining instruction, of
   induction shape.  Returns var -> step. *)
let basic_ivs g body def_counts =
  Label.Set.fold
    (fun l acc ->
      List.fold_left
        (fun acc i ->
          match i with
          | Instr.Assign (v, e) when String_map.find_opt v def_counts = Some 1 ->
            (match induction_step v e with
            | Some s -> String_map.add v s acc
            | None -> acc)
          | Instr.Assign _ | Instr.Print _ | Instr.Effect _ -> acc)
        acc (Cfg.instrs g l))
    body String_map.empty

type pair = {
  iv : string;
  step : int;
  multiplier : Expr.operand;  (** loop-invariant *)
  temp : string;
}

let pair_key iv multiplier =
  match multiplier with
  | Expr.Const c -> Printf.sprintf "%s*#%d" iv c
  | Expr.Var v -> Printf.sprintf "%s*%s" iv v

(* A reduction candidate [iv * m] where [m] is invariant and the delta is
   expressible (constant multiplier, or unit step). *)
let candidate_pair ivs def_counts e =
  let classify iv_name m =
    match String_map.find_opt iv_name ivs with
    | None -> None
    | Some step ->
      (match m with
      | Expr.Const _ -> Some (iv_name, step, m)
      | Expr.Var v ->
        if String_map.mem v def_counts then None
        else if step = 1 || step = -1 then Some (iv_name, step, m)
        else None)
  in
  match e with
  | Expr.Binary (Expr.Mul, Expr.Var a, m) ->
    (match classify a m with
    | Some r -> Some r
    | None -> (match m with Expr.Var b -> classify b (Expr.Var a) | Expr.Const _ -> None))
  | Expr.Binary (Expr.Mul, (Expr.Const _ as m), Expr.Var b) -> classify b m
  | Expr.Atom _ | Expr.Unary _ | Expr.Binary _ -> None

(* The adjustment placed right after the induction update. *)
let adjustment pair =
  match pair.multiplier with
  | Expr.Const c -> Instr.Assign (pair.temp, Expr.Binary (Expr.Add, Expr.Var pair.temp, Expr.Const (pair.step * c)))
  | Expr.Var _ when pair.step = 1 ->
    Instr.Assign (pair.temp, Expr.Binary (Expr.Add, Expr.Var pair.temp, pair.multiplier))
  | Expr.Var _ ->
    (* step = -1 by construction *)
    Instr.Assign (pair.temp, Expr.Binary (Expr.Sub, Expr.Var pair.temp, pair.multiplier))

let reduce_loop g fresh loop stats =
  let body = loop.Loop.body in
  let def_counts = loop_def_counts g body in
  let ivs = basic_ivs g body def_counts in
  if not (String_map.is_empty ivs) then begin
    stats := { !stats with induction_variables = (!stats).induction_variables + String_map.cardinal ivs };
    (* Collect the distinct pairs used by candidates. *)
    let pairs = Hashtbl.create 8 in
    Label.Set.iter
      (fun l ->
        List.iter
          (fun i ->
            match i with
            | Instr.Assign (_, e) ->
              (match candidate_pair ivs def_counts e with
              | Some (iv, step, multiplier) ->
                let key = pair_key iv multiplier in
                if not (Hashtbl.mem pairs key) then
                  Hashtbl.add pairs key { iv; step; multiplier; temp = Lcm_support.Fresh.mint fresh }
              | None -> ())
            | Instr.Print _ | Instr.Effect _ -> ())
          (Cfg.instrs g l))
      body;
    if Hashtbl.length pairs > 0 then begin
      stats := { !stats with pairs_reduced = (!stats).pairs_reduced + Hashtbl.length pairs };
      (* Pre-header: t := iv * m for every pair. *)
      let preheader = Loop.insert_preheader g loop in
      let inits =
        Hashtbl.fold
          (fun _ p acc -> Instr.Assign (p.temp, Expr.Binary (Expr.Mul, Expr.Var p.iv, p.multiplier)) :: acc)
          pairs []
      in
      Cfg.set_instrs g preheader (List.sort compare inits);
      (* Rewrite candidates and attach adjustments after induction updates. *)
      Label.Set.iter
        (fun l ->
          let rewritten = ref false in
          let step_instr i =
            let replaced =
              match i with
              | Instr.Assign (v, e) ->
                (match candidate_pair ivs def_counts e with
                | Some (iv, _, multiplier) ->
                  let p = Hashtbl.find pairs (pair_key iv multiplier) in
                  stats := { !stats with occurrences_rewritten = (!stats).occurrences_rewritten + 1 };
                  rewritten := true;
                  Instr.Assign (v, Expr.Atom (Expr.Var p.temp))
                | None -> i)
              | Instr.Print _ | Instr.Effect _ -> i
            in
            let adjustments =
              match Instr.defs replaced with
              | Some v when String_map.mem v ivs ->
                (match replaced with
                | Instr.Assign (_, e) when induction_step v e <> None ->
                  Hashtbl.fold
                    (fun _ p acc -> if String.equal p.iv v then adjustment p :: acc else acc)
                    pairs []
                | Instr.Assign _ | Instr.Print _ | Instr.Effect _ -> [])
              | Some _ | None -> []
            in
            if adjustments <> [] then rewritten := true;
            replaced :: List.sort compare adjustments
          in
          let instrs' = List.concat_map step_instr (Cfg.instrs g l) in
          if !rewritten then Cfg.set_instrs g l instrs')
        body
    end
  end

let run g =
  let g = Cfg.copy g in
  let fresh = Lcm_support.Fresh.create ~existing:(Cfg.all_vars g) "_s" in
  let loops = Loop.compute g in
  let stats =
    ref { loops_processed = 0; induction_variables = 0; pairs_reduced = 0; occurrences_rewritten = 0 }
  in
  List.iter
    (fun loop ->
      stats := { !stats with loops_processed = (!stats).loops_processed + 1 };
      reduce_loop g fresh loop stats)
    (Loop.loops loops);
  Validate.check_exn g;
  (g, !stats)

let pp_stats ppf s =
  Format.fprintf ppf "%d loops, %d induction variables, %d pairs reduced, %d occurrences rewritten"
    s.loops_processed s.induction_variables s.pairs_reduced s.occurrences_rewritten

let pass =
  Lcm_core.Pass.v "strength-reduction" (fun _ctx g ->
      let g', s = run g in
      ( g',
        Lcm_core.Pass.report
          ~notes:
            [
              ("loops_processed", string_of_int s.loops_processed);
              ("pairs_reduced", string_of_int s.pairs_reduced);
              ("occurrences_rewritten", string_of_int s.occurrences_rewritten);
            ]
          () ))
