module Cfg = Lcm_cfg.Cfg
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr

type stats = {
  exprs_folded : int;
  branches_resolved : int;
}

let fold_expr folded e =
  match e with
  | Expr.Binary (op, Expr.Const a, Expr.Const b) ->
    incr folded;
    Expr.Atom (Expr.Const (Expr.eval_binop op a b))
  | Expr.Unary (op, Expr.Const a) ->
    incr folded;
    Expr.Atom (Expr.Const (Expr.eval_unop op a))
  | Expr.Atom _ | Expr.Unary _ | Expr.Binary _ -> e

let run g =
  let g = Cfg.copy g in
  let folded = ref 0 and branches = ref 0 in
  List.iter
    (fun l ->
      let changed = ref false in
      let instrs =
        List.map
          (fun i ->
            match i with
            | Instr.Assign (v, e) ->
              let e' = fold_expr folded e in
              if e' != e then changed := true;
              Instr.Assign (v, e')
            | Instr.Print _ | Instr.Effect _ -> i)
          (Cfg.instrs g l)
      in
      if !changed then Cfg.set_instrs g l instrs;
      match Cfg.term g l with
      | Cfg.Branch (Expr.Const c, a, b) ->
        incr branches;
        Cfg.set_term g l (Cfg.Goto (if c <> 0 then a else b))
      | Cfg.Branch (Expr.Var _, _, _) | Cfg.Goto _ | Cfg.Halt -> ())
    (Cfg.labels g);
  if !branches > 0 then Cfg.remove_unreachable g;
  (g, { exprs_folded = !folded; branches_resolved = !branches })

let pass =
  Lcm_core.Pass.v "const-fold" (fun _ctx g ->
      let g', s = run g in
      ( g',
        Lcm_core.Pass.report
          ~notes:
            [
              ("exprs_folded", string_of_int s.exprs_folded);
              ("branches_resolved", string_of_int s.branches_resolved);
            ]
          () ))
