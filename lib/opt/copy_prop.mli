(** Copy propagation.

    PRE leaves behind copy chains ([h := x] ... [y := h]); this pass
    forwards copies to their sources so that later dead-code elimination
    can drop the intermediaries.  It is a standard companion pass: the
    paper's transformation deliberately emits copies and relies on the
    surrounding compiler to clean them up.

    The analysis is a forward must-problem over (variable, source) pairs:
    a copy [v := w] reaches a use of [v] when every path from the entry
    passes such a copy with neither [v] nor [w] redefined in between.
    Within this library's small variable universes a dense product lattice
    would be wasteful; instead the pass runs an iterative available-copies
    analysis over hash-consed copy facts. *)

type stats = {
  uses_rewritten : int;  (** operand reads redirected to the copy source *)
}

(** [run g] propagates copies on a copy of [g]. *)
val run : Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * stats

(** [run] under the unified pass API. *)
val pass : Lcm_core.Pass.t
