(** Local (within-block) common-subexpression elimination.

    The paper assumes LCSE has run: within a block, no expression is ever
    recomputed while its previous value is still valid.  Plain
    rewrite-to-holder LCSE cannot always guarantee that — in

    {v
    b := a + d;  b := d;  b := a + d
    v}

    the recomputation of [a + d] is locally redundant, but the variable
    holding its value was clobbered.  This pass therefore performs local
    value numbering *with temporaries*: when a still-valid expression is
    recomputed and no variable holds it anymore, the first computation of
    the span is made to publish its value into a fresh temporary and the
    recomputations read the temporary.  Without this, block-level PRE is
    measurably weaker than the statement-level formulation (our property
    tests caught exactly that gap). *)

(** [run g] is a rewritten copy of [g]; the second component counts the
    eliminated recomputations. *)
val run : Lcm_cfg.Cfg.t -> Lcm_cfg.Cfg.t * int

(** [is_clean g] holds when no block recomputes an expression whose value
    is still valid (i.e. [run] would change nothing). *)
val is_clean : Lcm_cfg.Cfg.t -> bool

(** [run] under the unified pass API; the eliminated-recomputation count
    travels in the report notes. *)
val pass : Lcm_core.Pass.t
