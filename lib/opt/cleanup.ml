module Cfg = Lcm_cfg.Cfg
module Validate = Lcm_cfg.Validate

type stats = {
  rounds : int;
  copies_propagated : int;
  local_reuses : int;
  exprs_folded : int;
  branches_resolved : int;
  instrs_removed : int;
}

let run ?keep g =
  let g = ref (Cfg.copy g) in
  let rounds = ref 0 in
  let copies = ref 0 and reuses = ref 0 and folded = ref 0 and branches = ref 0 and removed = ref 0 in
  let changed = ref true in
  while !changed && !rounds < 10 do
    incr rounds;
    let g1, cp = Copy_prop.run !g in
    let g2, lvn = Lcse.run g1 in
    let g3, cf = Const_fold.run g2 in
    let g4, dc = Dce.run ?keep g3 in
    Cfg.merge_straight_pairs g4;
    Cfg.remove_unreachable g4;
    copies := !copies + cp.Copy_prop.uses_rewritten;
    reuses := !reuses + lvn;
    folded := !folded + cf.Const_fold.exprs_folded;
    branches := !branches + cf.Const_fold.branches_resolved;
    removed := !removed + dc.Dce.instrs_removed;
    changed :=
      cp.Copy_prop.uses_rewritten > 0
      || lvn > 0
      || cf.Const_fold.exprs_folded > 0
      || cf.Const_fold.branches_resolved > 0
      || dc.Dce.instrs_removed > 0
      || Cfg.num_blocks g4 <> Cfg.num_blocks !g;
    g := g4
  done;
  Validate.check_exn !g;
  ( !g,
    {
      rounds = !rounds;
      copies_propagated = !copies;
      local_reuses = !reuses;
      exprs_folded = !folded;
      branches_resolved = !branches;
      instrs_removed = !removed;
    } )

let pp_stats ppf s =
  Format.fprintf ppf
    "%d rounds: %d copies propagated, %d local reuses, %d exprs folded, %d branches resolved, %d instrs removed"
    s.rounds s.copies_propagated s.local_reuses s.exprs_folded s.branches_resolved s.instrs_removed

let pass =
  Lcm_core.Pass.v "cleanup" (fun _ctx g ->
      let g', s = run g in
      ( g',
        Lcm_core.Pass.report
          ~notes:
            [
              ("rounds", string_of_int s.rounds);
              ("copies_propagated", string_of_int s.copies_propagated);
              ("exprs_folded", string_of_int s.exprs_folded);
              ("instrs_removed", string_of_int s.instrs_removed);
            ]
          () ))
