(* Global common subexpressions: full vs partial redundancy.

   AVAIL-based GCSE only removes a computation when it is available on
   *every* incoming path; PRE also handles the partial case by inserting
   on the paths that miss it.

     dune exec examples/global_cse.exe *)

module Cfg = Lcm_cfg.Cfg
module Trace = Lcm_eval.Trace

let source =
  {|
function mixed(a, b, p, q) {
  // fully redundant: both arms compute a+b before the first join
  if (p > 0) {
    x = a + b;
  } else {
    x = (a + b) * 2;
  }
  u = a + b;

  // partially redundant: only one arm of the second branch computes a*b
  if (q > 0) {
    y = a * b;
  } else {
    y = 5;
  }
  v = a * b;
  return x + u + y + v;
}
|}

let path_cost g pool seq =
  let r = Trace.replay ~pool g seq in
  assert r.Trace.completed;
  Trace.total r.Trace.eval_counts

let () =
  let g = Lcm_cfg.Lower.parse_and_lower_func source in
  let pool = Cfg.candidate_pool g in
  let gcse, _ = Lcm_baselines.Gcse.transform g in
  let lcm, _ = Lcm_core.Lcm_edge.transform g in
  Printf.printf "%-28s %8s %8s %8s\n" "path (p-arm, q-arm)" "original" "gcse" "lcm";
  List.iter
    (fun (name, seq) ->
      Printf.printf "%-28s %8d %8d %8d\n" name (path_cost g pool seq) (path_cost gcse pool seq)
        (path_cost lcm pool seq))
    [
      ("(then, then)", [ true; true ]);
      ("(then, else)", [ true; false ]);
      ("(else, then)", [ false; true ]);
      ("(else, else)", [ false; false ]);
    ];
  print_newline ();
  print_endline "GCSE removes only the fully redundant u := a + b (available on both p-arms).";
  print_endline "LCM additionally fixes the partial redundancy at v := a * b by inserting";
  print_endline "a * b on the q-else edge, so every path evaluates it exactly once.";
  print_newline ();
  print_endline "== LCM output ==";
  print_endline (Cfg.to_string lcm)
