(* Why "lazy"?  Busy code motion is just as optimal in computation counts,
   but it stretches temporaries across the whole procedure.  This example
   measures the live ranges both placements produce on the paper's running
   example and on every named workload.

     dune exec examples/register_pressure.exe *)

module Cfg = Lcm_cfg.Cfg
module Table = Lcm_support.Table
module Metrics = Lcm_eval.Metrics
module Registry = Lcm_eval.Registry
module Suites = Lcm_eval.Suites

let lifetime ~original transformed =
  Metrics.temp_lifetime transformed
    ~temps:(Registry.new_temps ~original ~transformed)

let () =
  let example = Lcm_figures.Running_example.graph () in
  let bcm, _ = Lcm_core.Bcm_edge.transform example in
  let lcm, _ = Lcm_core.Lcm_edge.transform example in
  print_endline "Running example (see Lcm_figures.Running_example):";
  Printf.printf "  BCM temp lifetime: %d live block boundaries\n" (lifetime ~original:example bcm);
  Printf.printf "  LCM temp lifetime: %d live block boundaries\n\n" (lifetime ~original:example lcm);

  let t = Table.create [ "workload"; "bcm lifetime"; "lcm lifetime"; "saved" ] in
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let b = lifetime ~original:g (fst (Lcm_core.Bcm_edge.transform g)) in
      let l = lifetime ~original:g (fst (Lcm_core.Lcm_edge.transform g)) in
      Table.add_row t
        [ w.Suites.name; Table.cell_int b; Table.cell_int l; Table.cell_int (b - l) ])
    Suites.all;
  Table.print t;
  print_endline
    "\nBoth columns correspond to computationally optimal placements; the difference is purely \
     register pressure — the quantity the paper's lifetime-optimality theorem minimizes."
