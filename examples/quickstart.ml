(* Quickstart: parse a MiniImp function, run Lazy Code Motion, look at the
   result.

     dune exec examples/quickstart.exe *)

let source =
  {|
function quickstart(a, b, p) {
  // a + b is computed on one branch arm and again after the join:
  // partially redundant.  LCM makes the join's computation a reuse.
  if (p > 0) {
    x = a + b;
  } else {
    x = 1;
  }
  y = a + b;
  return x + y;
}
|}

let () =
  (* 1. Parse and lower to a control-flow graph. *)
  let graph = Lcm_cfg.Lower.parse_and_lower_func source in
  print_endline "== original control-flow graph ==";
  print_endline (Lcm_cfg.Cfg.to_string graph);

  (* 2. Run the analysis to see what LCM decided. *)
  let analysis = Lcm_core.Lcm_edge.analyze graph in
  let show_edge ((p, b), _) = Printf.sprintf "(%s -> %s)" (Lcm_cfg.Label.to_string p) (Lcm_cfg.Label.to_string b) in
  let show_block (b, _) = Lcm_cfg.Label.to_string b in
  Printf.printf "INSERT on edges: %s\n" (String.concat " " (List.map show_edge analysis.Lcm_core.Lcm_edge.insert));
  Printf.printf "DELETE in blocks: %s\n" (String.concat " " (List.map show_block analysis.Lcm_core.Lcm_edge.delete));
  Printf.printf "COPY in blocks:   %s\n\n" (String.concat " " (List.map show_block analysis.Lcm_core.Lcm_edge.copy));

  (* 3. Apply the transformation. *)
  let transformed, report = Lcm_core.Lcm_edge.transform graph in
  print_endline "== after lazy code motion ==";
  print_endline (Lcm_cfg.Cfg.to_string transformed);
  Format.printf "%a@." Lcm_core.Transform.pp_report report;

  (* 4. Check the result behaves identically on random inputs. *)
  let check =
    Lcm_eval.Oracle.semantics ~inputs:[ "a"; "b"; "p" ] (Lcm_support.Prng.of_int 1) ~original:graph
      ~transformed
  in
  (match check with
  | Ok () -> print_endline "semantics check: ok"
  | Error m -> print_endline ("semantics check FAILED: " ^ m));

  (* 5. Count the win: evaluations of a+b on the path through the branch. *)
  let pool = Lcm_cfg.Cfg.candidate_pool graph in
  let env = [ ("a", 3); ("b", 4); ("p", 1) ] in
  let before = Lcm_eval.Interp.run ~pool ~env graph in
  let after = Lcm_eval.Interp.run ~pool ~env transformed in
  Printf.printf "candidate evaluations, p=1: %d before, %d after\n"
    (Lcm_eval.Interp.total_evals before) (Lcm_eval.Interp.total_evals after)
