(* Loop-invariant motion, the safe way.

   The paper's down-safety requirement draws a sharp line between two loop
   shapes:
   - a do-while body always runs, so computing the invariant before the
     loop is safe: LCM hoists it;
   - a while body may run zero times, so hoisting would *add* work to the
     zero-trip path: LCM refuses, LICM speculates.

     dune exec examples/loop_invariant.exe *)

module Cfg = Lcm_cfg.Cfg
module Interp = Lcm_eval.Interp
module Expr = Lcm_ir.Expr

let do_while_source =
  {|
function sum_do(a, b, n) {
  s = 0;
  i = 0;
  do {
    s = s + (a * b);
    i = i + 1;
  } while (i < n);
  return s;
}
|}

let while_source =
  {|
function sum_while(a, b, n) {
  s = 0;
  i = 0;
  while (i < n) {
    s = s + (a * b);
    i = i + 1;
  }
  return s;
}
|}

let mul_evals g env =
  let pool = Cfg.candidate_pool g in
  let idx =
    Option.get (Lcm_ir.Expr_pool.index pool (Expr.Binary (Expr.Mul, Expr.Var "a", Expr.Var "b")))
  in
  let o = Interp.run ~pool ~env g in
  o.Interp.eval_counts.(idx)

let show title source =
  Printf.printf "== %s ==\n" title;
  let g = Lcm_cfg.Lower.parse_and_lower_func source in
  let lcm, _ = Lcm_core.Lcm_edge.transform g in
  let licm, _ = Lcm_baselines.Licm.transform g in
  let env n = [ ("a", 2); ("b", 3); ("n", n) ] in
  Printf.printf "  evaluations of a*b with n=8:  original %d, lcm %d, licm %d\n"
    (mul_evals g (env 8)) (mul_evals lcm (env 8)) (mul_evals licm (env 8));
  Printf.printf "  evaluations of a*b with n=0:  original %d, lcm %d, licm %d\n"
    (mul_evals g (env 0)) (mul_evals lcm (env 0)) (mul_evals licm (env 0))

let () =
  show "do-while loop (body always runs)" do_while_source;
  print_newline ();
  show "while loop (may run zero times)" while_source;
  print_newline ();
  print_endline
    "Note the n=0 row of the while loop: LICM evaluates a*b once on a path where the original \
     evaluated it zero times — the speculation classic PRE's safety requirement forbids.  LCM \
     stays at zero there, at the price of leaving the while-loop invariant in place for n>0; for \
     the do-while shape it gets both: one evaluation regardless of n."
