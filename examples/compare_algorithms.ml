(* Run every transformation in the registry over every named workload and
   compare dynamic evaluation counts side by side.

     dune exec examples/compare_algorithms.exe [workload]           *)

module Cfg = Lcm_cfg.Cfg
module Table = Lcm_support.Table
module Metrics = Lcm_eval.Metrics
module Registry = Lcm_eval.Registry
module Suites = Lcm_eval.Suites

let compare_on w =
  let g = Suites.graph w in
  let pool = Cfg.candidate_pool g in
  let envs = Suites.envs 7 w 10 in
  Printf.printf "== %s: %s ==\n" w.Suites.name w.Suites.description;
  let t = Table.create [ "algorithm"; "dynamic evals"; "static occurrences"; "blocks" ] in
  List.iter
    (fun (e : Registry.entry) ->
      let g' = e.Registry.run g in
      let evals =
        match Metrics.dynamic_evals ~pool ~envs g' with
        | Some n -> Table.cell_int n
        | None -> "did not terminate"
      in
      Table.add_row t
        [
          e.Registry.name;
          evals;
          Table.cell_int (Cfg.num_candidate_occurrences g');
          Table.cell_int (Cfg.num_blocks g');
        ])
    Registry.all;
  Table.print t;
  print_newline ()

let () =
  match Sys.argv with
  | [| _ |] -> List.iter compare_on Suites.all
  | [| _; name |] ->
    (match Suites.find name with
    | Some w -> compare_on w
    | None ->
      Printf.eprintf "unknown workload %S; known: %s\n" name
        (String.concat ", " (List.map (fun w -> w.Suites.name) Suites.all));
      exit 1)
  | _ ->
    prerr_endline "usage: compare_algorithms.exe [workload]";
    exit 1
