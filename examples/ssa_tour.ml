(* A tour of the SSA substrate: construction, value numbering, and why
   dominator-based redundancy elimination still needs PRE.

     dune exec examples/ssa_tour.exe *)

module Cfg = Lcm_cfg.Cfg
module Ssa = Lcm_ssa.Ssa
module Dvnt = Lcm_ssa.Dvnt
module Destruct = Lcm_ssa.Destruct

let source =
  {|
function tour(a, b, c, d, p, n) {
  x = a + b;          // dominates everything below
  s = 0;
  i = 0;
  while (i < n) {
    w = a + b;        // dominated by x's computation: DVNT removes it
    s = s + w;
    i = i + 1;
  }
  if (p > 0) {
    y = c * d;        // computed on one arm only...
  } else {
    y = 1;
  }
  z = c * d;          // ...so this is only PARTIALLY redundant: DVNT
  return s + y + z;   // must keep it, LCM removes it
}
|}

let () =
  let g = Lcm_cfg.Lower.parse_and_lower_func source in
  print_endline "== control-flow graph ==";
  print_endline (Cfg.to_string g);

  let ssa = Ssa.of_cfg g in
  Printf.printf "== pruned SSA form (%d phi functions) ==\n" (Ssa.num_phis ssa);
  Format.printf "%a@." Ssa.pp ssa;

  let ssa', stats = Dvnt.run ssa in
  Printf.printf "== after dominator-based value numbering ==\n";
  Printf.printf "replaced %d computations, simplified %d phis\n" stats.Dvnt.exprs_replaced
    stats.Dvnt.phis_simplified;

  let back, dstats = Destruct.run ssa' in
  Printf.printf "== back out of SSA (%d copies inserted, %d cycles broken) ==\n"
    dstats.Destruct.copies_inserted dstats.Destruct.cycles_broken;
  print_endline (Cfg.to_string back);

  (* DVNT removed the dominated w := a+b inside the loop; the partially
     redundant z := c*d at the join is out of its reach.  LCM gets both
     (and the cleanup pipeline tidies its copies). *)
  let lcm = (Option.get (Lcm_eval.Registry.find "lcm-cleanup")).Lcm_eval.Registry.run g in
  let pool = Cfg.candidate_pool g in
  let env = [ ("a", 1); ("b", 2); ("c", 3); ("d", 4); ("p", 1); ("n", 3) ] in
  let evals h = Lcm_eval.Interp.total_evals (Lcm_eval.Interp.run ~pool ~env h) in
  Printf.printf "candidate evaluations on one run (p=1, n=3): original %d, dvnt %d, lcm %d\n"
    (evals g) (evals back) (evals lcm)
