(* EXP-SERVE: the optimization daemon under offered load.

   Spawns `lcmopt serve --stdio` as a subprocess and drives it with an
   open-loop client (requests are offered on a fixed schedule regardless
   of completions, so the daemon's backpressure is actually exercised)
   at several request rates over a corpus of random CFGs.  Reports
   throughput, exact client-side latency quantiles, and the rejection
   counts, and cross-checks every ok response against the in-process
   transformation (the daemon must be bit-identical to `lcmopt run`).

   The "quick" mode (CI smoke) runs one small load and only asserts the
   plumbing: some requests succeed and every digest matches. *)

module Table = Lcm_support.Table
module Cfg = Lcm_cfg.Cfg
module Frontend = Lcm_frontend.Frontend
module Corpus = Lcm_eval.Corpus
module Lcm_edge = Lcm_core.Lcm_edge
module Json = Lcm_server.Json
module Frame = Lcm_server.Frame

(* Wire-text ingestion goes through the frontend registry, exactly like
   the daemon's. *)
let parse_cfg text =
  match Frontend.parse_one Frontend.cfg text with
  | Ok g -> g
  | Error _ -> failwith "canonical cfg text did not re-parse"

let now = Unix.gettimeofday

(* ---- the daemon subprocess ---- *)

let resolve_exe () =
  match Sys.getenv_opt "LCMOPT_EXE" with
  | Some p -> p
  | None ->
    (* bench/main.exe lives next to bin/lcmopt.exe in _build. *)
    let d = Filename.dirname Sys.executable_name in
    Filename.concat (Filename.concat (Filename.dirname d) "bin") "lcmopt.exe"

type daemon = { pid : int; req_w : Unix.file_descr; resp_r : Unix.file_descr }

let spawn_daemon ~queue =
  let exe = resolve_exe () in
  if not (Sys.file_exists exe) then begin
    Printf.eprintf "exp_serve: daemon binary not found at %s (set LCMOPT_EXE)\n" exe;
    exit 1
  end;
  (* cloexec: the child must not inherit the parent's pipe ends, or closing
     req_w here would never deliver EOF to the daemon (create_process dup2s
     the two ends the child actually uses onto its stdin/stdout). *)
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "--stdio"; "--quiet"; "--queue"; string_of_int queue |]
      req_r resp_w Unix.stderr
  in
  Unix.close req_r;
  Unix.close resp_w;
  { pid; req_w; resp_r }

let stop_daemon d =
  (try Unix.close d.req_w with Unix.Unix_error _ -> ());
  (try Unix.close d.resp_r with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] d.pid)

(* ---- the corpus ---- *)

type job = { frame_prefix : string; expected_digest : string }

(* The daemon parses the wire text, so the reference transformation must
   start from the same parse (labels are renumbered in print order). *)
let prepare_jobs jobs =
  List.map
    (fun (j : Corpus.job) ->
      let text = Cfg.to_string j.Corpus.graph in
      let g = parse_cfg text in
      let expected = Cfg.to_string (fst (Lcm_edge.transform g)) in
      {
        frame_prefix =
          Printf.sprintf "\"op\":\"run\",\"format\":\"cfg\",\"program\":%s}"
            (Json.to_string (Json.String text));
        expected_digest = Digest.to_hex (Digest.string expected);
      })
    jobs
  |> Array.of_list

(* ---- one offered load ---- *)

type load_result = {
  offered_rps : float;
  requests : int;
  completed : int;
  ok : int;
  rejected_overloaded : int;
  errors : int;
  wall_s : float;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  digest_mismatches : int;
  server_stats : Json.t;
  (* daemon-side GC work over the whole load, from the stats response
     (the daemon is a subprocess, so the client's own GC sees none of it) *)
  gc_minor_collections : int;
  gc_major_collections : int;
  gc_alloc_words : int;
  alloc_words_per_ok : float;
  (* router-side result cache (sharded serving); zero on a plain daemon *)
  cache_hits : int;
  cache_misses : int;
  (* crash-transparency work (sharded serving): frames replayed after a
     worker death, and requests quarantined after two of them *)
  shard_replays : int;
  shard_poisoned : int;
}

let quantile sorted q =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* Open-loop driver.  Both pipe ends are handled with select and a
   client-side output buffer so neither side can deadlock on a full pipe. *)
let run_load ~jobs ~queue ~offered_rps ~requests =
  let d = spawn_daemon ~queue in
  Unix.set_nonblock d.req_w;
  let outbuf = Buffer.create 65536 in
  let flush_client () =
    if Buffer.length outbuf > 0 then begin
      let s = Buffer.contents outbuf in
      match Unix.write_substring d.req_w s 0 (String.length s) with
      | k ->
        Buffer.clear outbuf;
        if k < String.length s then Buffer.add_substring outbuf s k (String.length s - k)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    end
  in
  let reader = Frame.create ~max_frame:(1 lsl 22) in
  let chunk = Bytes.create 65536 in
  let njobs = Array.length jobs in
  let send_times = Array.make requests 0. in
  let latencies = ref [] in
  let ok = ref 0 and overloaded = ref 0 and errors = ref 0 and completed = ref 0 in
  let mismatches = ref 0 in
  let stats = ref Json.Null in
  let handle_frame f =
    let j = Json.parse f in
    let sfield n = Option.bind (Json.member n j) Json.to_string_opt in
    if sfield "op" = Some "stats" then stats := Option.value (Json.member "stats" j) ~default:Json.Null
    else begin
      incr completed;
      (match Option.bind (Json.member "id" j) Json.to_int_opt with
      | Some id when id >= 0 && id < requests ->
        latencies := ((now () -. send_times.(id)) *. 1000.) :: !latencies
      | _ -> ());
      match sfield "status" with
      | Some "ok" ->
        incr ok;
        let k = match Option.bind (Json.member "id" j) Json.to_int_opt with Some id -> id mod njobs | None -> 0 in
        (match sfield "program" with
        | Some p when Digest.to_hex (Digest.string p) <> jobs.(k).expected_digest -> incr mismatches
        | Some _ -> ()
        | None -> incr mismatches)
      | _ ->
        if sfield "code" = Some "overloaded" then incr overloaded else incr errors
    end
  in
  let read_available () =
    match Unix.read d.resp_r chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      List.iter
        (function Frame.Frame f -> handle_frame f | Frame.Oversized _ -> ())
        (Frame.feed reader chunk n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  let t0 = now () in
  let sent = ref 0 in
  let stats_sent = ref false in
  while !completed < requests || !stats = Json.Null do
    let t = now () in
    let due = t0 +. (float_of_int !sent /. offered_rps) in
    if !sent < requests && t >= due then begin
      let id = !sent in
      send_times.(id) <- t;
      Buffer.add_string outbuf (Printf.sprintf "{\"id\":%d,%s\n" id jobs.(id mod njobs).frame_prefix);
      incr sent
    end
    else begin
      if !sent >= requests && !completed >= requests && not !stats_sent then begin
        Buffer.add_string outbuf "{\"id\":-1,\"op\":\"stats\"}\n";
        stats_sent := true
      end;
      flush_client ();
      let next_send =
        if !sent < requests then Float.max 0. (due -. t) else 0.05
      in
      let wfds = if Buffer.length outbuf > 0 then [ d.req_w ] else [] in
      match Unix.select [ d.resp_r ] wfds [] (Float.min next_send 0.05) with
      | rs, ws, _ ->
        if ws <> [] then flush_client ();
        if rs <> [] then read_available ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done;
  let wall_s = now () -. t0 in
  stop_daemon d;
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let gc_counter name =
    match Option.bind (Json.member "counters" !stats) (Json.member name) with
    | Some v -> Option.value (Json.to_int_opt v) ~default:0
    | None -> 0
  in
  let gc_alloc_words = gc_counter "gc.alloc_words" in
  {
    offered_rps;
    requests;
    completed = !completed;
    ok = !ok;
    rejected_overloaded = !overloaded;
    errors = !errors;
    wall_s;
    throughput_rps = float_of_int !ok /. wall_s;
    p50_ms = quantile lat 0.5;
    p95_ms = quantile lat 0.95;
    p99_ms = quantile lat 0.99;
    digest_mismatches = !mismatches;
    server_stats = !stats;
    gc_minor_collections = gc_counter "gc.minor_collections";
    gc_major_collections = gc_counter "gc.major_collections";
    gc_alloc_words;
    cache_hits = gc_counter "cache.hits_total";
    cache_misses = gc_counter "cache.misses_total";
    shard_replays = gc_counter "shard.replays_total";
    shard_poisoned = gc_counter "shard.poisoned_total";
    (* per *served* request: rejected ones never reach the engine, so they
       would only dilute the number (startup allocation is in here too, but
       it is fixed and amortizes out at benchmark request counts) *)
    alloc_words_per_ok = (if !ok > 0 then float_of_int gc_alloc_words /. float_of_int !ok else 0.);
  }

(* ---- reporting ---- *)

let print_rows rows =
  let t =
    Table.create
      [
        "offered rps"; "requests"; "ok"; "overloaded"; "errors"; "rps served"; "p50 ms"; "p95 ms";
        "p99 ms"; "alloc w/ok"; "minor gcs"; "cache h/m"; "replay/poison";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Printf.sprintf "%.0f" r.offered_rps;
          Table.cell_int r.requests;
          Table.cell_int r.ok;
          Table.cell_int r.rejected_overloaded;
          Table.cell_int r.errors;
          Printf.sprintf "%.0f" r.throughput_rps;
          Table.cell_float ~decimals:2 r.p50_ms;
          Table.cell_float ~decimals:2 r.p95_ms;
          Table.cell_float ~decimals:2 r.p99_ms;
          Printf.sprintf "%.0f" r.alloc_words_per_ok;
          Table.cell_int r.gc_minor_collections;
          Printf.sprintf "%d/%d" r.cache_hits r.cache_misses;
          Printf.sprintf "%d/%d" r.shard_replays r.shard_poisoned;
        ])
    rows;
  Table.print t

let json_of_load r =
  Json.Obj
    [
      ("offered_rps", Json.Float r.offered_rps);
      ("requests", Json.Int r.requests);
      ("completed", Json.Int r.completed);
      ("ok", Json.Int r.ok);
      ("rejected_overloaded", Json.Int r.rejected_overloaded);
      ("errors", Json.Int r.errors);
      ("wall_s", Json.Float r.wall_s);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("p50_ms", Json.Float r.p50_ms);
      ("p95_ms", Json.Float r.p95_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("gc_minor_collections", Json.Int r.gc_minor_collections);
      ("gc_major_collections", Json.Int r.gc_major_collections);
      ("gc_alloc_words", Json.Int r.gc_alloc_words);
      ("alloc_words_per_ok", Json.Float r.alloc_words_per_ok);
      ("cache_hits", Json.Int r.cache_hits);
      ("cache_misses", Json.Int r.cache_misses);
      ("shard_replays", Json.Int r.shard_replays);
      ("shard_poisoned", Json.Int r.shard_poisoned);
      ("server_stats", r.server_stats);
    ]

let emit_json ?(path = "BENCH_serve.json") ~corpus ~queue rows =
  let digest_match = List.for_all (fun r -> r.digest_mismatches = 0) rows in
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "serve");
        ( "benchmark",
          Json.String "lcmopt serve --stdio under open-loop offered load (lcm-edge over random CFGs)" );
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("corpus", Json.String corpus);
        ("queue_capacity", Json.Int queue);
        ("digest_match", Json.Bool digest_match);
        ("loads", Json.List (List.map json_of_load rows));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Common.note "wrote %s" path

let corpus_spec ~quick = if quick then [ (30, 8) ] else [ (40, 32) ]

let corpus_name ~quick =
  String.concat "+"
    (List.map (fun (b, c) -> Printf.sprintf "%dx%d-block" c b) (corpus_spec ~quick))

let run_mode ~quick () =
  Common.section
    (if quick then "EXP-SERVE  Daemon under offered load (quick smoke run)"
     else "EXP-SERVE  Daemon under offered load: throughput, latency, backpressure");
  let jobs = prepare_jobs (Corpus.generate (corpus_spec ~quick)) in
  let queue = 64 in
  let loads = if quick then [ (400., 60) ] else [ (200., 400); (1000., 2000); (5000., 5000) ] in
  let rows =
    List.map
      (fun (offered_rps, requests) ->
        Common.note "offering %.0f rps (%d requests)..." offered_rps requests;
        run_load ~jobs ~queue ~offered_rps ~requests)
      loads
  in
  print_rows rows;
  let mism = List.fold_left (fun acc r -> acc + r.digest_mismatches) 0 rows in
  Common.note "digest cross-check vs in-process lcm-edge: %s"
    (if mism = 0 then "bit-identical" else Printf.sprintf "%d MISMATCHES" mism);
  if mism > 0 then exit 1;
  if quick then begin
    let r = List.hd rows in
    if r.ok = 0 then begin
      Common.note "FAIL: no successful responses";
      exit 1
    end
  end
  else emit_json ~corpus:(corpus_name ~quick) ~queue rows;
  Common.note
    "open-loop client: requests offered on a fixed schedule; overloaded = rejected at the \
     admission queue (capacity %d); latency is client-side, send to response."
    queue

let run () = run_mode ~quick:false ()
let run_quick () = run_mode ~quick:true ()
