(* EXP-RECOVER: crash durability — what does the write-ahead journal cost,
   and what does it buy?

   Three questions:

   1. Overhead: p50 delta latency against `lcmopt serve --stdio` with and
      without `--state-dir` — the append+fsync on the delta hot path.  The
      paper-ready claim is that journaling costs < 10% of the delta p50
      (asserted in full mode, where the graphs are large enough that the
      solve dominates the fsync).

   2. Recovery time: in-process `Engine.recover` wall time as the patch
      log grows (0/16/64/256 patches), with compaction off vs on.
      Uncompacted recovery replays every patch, so it grows linearly with
      history; compaction snapshots the canonical program and truncates
      the log, so recovery is bounded by the compaction interval no
      matter how long the handle lived.

   3. Bit-identity: a recovered engine and the live engine it replaces
      must answer an identical probe delta with bit-identical programs
      (asserted at 0 mismatches — the same property the qcheck suite
      proves on small graphs, re-checked here at corpus scale). *)

module Cfg = Lcm_cfg.Cfg
module Corpus = Lcm_eval.Corpus
module Json = Lcm_server.Json
module Frame = Lcm_server.Frame
module Journal = Lcm_support.Journal
module Hjournal = Lcm_server.Hjournal
module Stats = Lcm_server.Stats
module Engine = Lcm_server.Engine
module Protocol = Lcm_server.Protocol
module Table = Lcm_support.Table

let now = Unix.gettimeofday

(* ---- daemon subprocess (same contract as exp_shard) ---- *)

let resolve_exe () =
  match Sys.getenv_opt "LCMOPT_EXE" with
  | Some p -> p
  | None ->
    let d = Filename.dirname Sys.executable_name in
    Filename.concat (Filename.concat (Filename.dirname d) "bin") "lcmopt.exe"

type daemon = { pid : int; req_w : Unix.file_descr; resp_r : Unix.file_descr }

let spawn_daemon ~args =
  let exe = resolve_exe () in
  if not (Sys.file_exists exe) then begin
    Printf.eprintf "exp_recover: daemon binary not found at %s (set LCMOPT_EXE)\n" exe;
    exit 1
  end;
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process exe
      (Array.of_list ((exe :: [ "serve"; "--stdio"; "--quiet" ]) @ args))
      req_r resp_w Unix.stderr
  in
  Unix.close req_r;
  Unix.close resp_w;
  { pid; req_w; resp_r }

let stop_daemon d =
  (try Unix.close d.req_w with Unix.Unix_error _ -> ());
  (try Unix.close d.resp_r with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] d.pid)

type conn = { d : daemon; reader : Frame.reader; chunk : Bytes.t; mutable inbox : Json.t list }

let connect ~args =
  { d = spawn_daemon ~args; reader = Frame.create ~max_frame:(1 lsl 22); chunk = Bytes.create 65536; inbox = [] }

let send conn line =
  let line = line ^ "\n" in
  let n = String.length line in
  let k = ref 0 in
  while !k < n do
    k := !k + Unix.write_substring conn.d.req_w line !k (n - !k)
  done

let recv conn =
  let rec pull () =
    match conn.inbox with
    | j :: rest ->
      conn.inbox <- rest;
      j
    | [] ->
      (match Unix.read conn.d.resp_r conn.chunk 0 (Bytes.length conn.chunk) with
      | 0 -> failwith "exp_recover: daemon closed the stream"
      | n ->
        conn.inbox <-
          List.filter_map
            (function Frame.Frame f -> Some (Json.parse f) | Frame.Oversized _ -> None)
            (Frame.feed conn.reader conn.chunk n);
        pull ())
  in
  pull ()

let close conn = stop_daemon conn.d

let sfield j n = Option.bind (Json.member n j) Json.to_string_opt

let fetch_stats conn =
  send conn "{\"id\":-1,\"op\":\"stats\"}";
  let rec wait () =
    let j = recv conn in
    if sfield j "op" = Some "stats" then Option.value (Json.member "stats" j) ~default:Json.Null
    else wait ()
  in
  wait ()

let stat_counter stats name =
  match Option.bind (Json.member "counters" stats) (Json.member name) with
  | Some v -> Option.value (Json.to_int_opt v) ~default:0
  | None -> 0

let quantile sorted q =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let sorted_of l =
  let a = Array.of_list l in
  Array.sort compare a;
  a

(* ---- delta synthesis (same block-surgery scheme as exp_shard) ---- *)

let split_blocks text =
  let lines = String.split_on_char '\n' (String.trim text) in
  match lines with
  | header :: rest ->
    let blocks = ref [] and cur = ref None in
    let flush () =
      match !cur with Some (n, ls) -> blocks := (n, List.rev ls) :: !blocks; cur := None | None -> ()
    in
    List.iter
      (fun line ->
        if String.length line > 0 && line.[0] = 'B' && String.length (String.trim line) > 1
           && line.[String.length (String.trim line) - 1] = ':' then begin
          flush ();
          cur := Some (String.sub (String.trim line) 0 (String.length (String.trim line) - 1), [])
        end
        else
          match !cur with
          | Some (n, ls) when String.trim line <> "" -> cur := Some (n, String.trim line :: ls)
          | _ -> ())
      rest;
    flush ();
    (header, List.rev !blocks)
  | [] -> failwith "empty program"

let find_candidate_rhs blocks =
  let is_binop s =
    match String.index_opt s ':' with
    | Some i when i + 1 < String.length s && s.[i + 1] = '=' ->
      let rhs = String.trim (String.sub s (i + 2) (String.length s - i - 2)) in
      let has op = List.exists (fun p -> p = op) (String.split_on_char ' ' rhs) in
      if has "+" || has "-" || has "*" then Some rhs else None
    | _ -> None
  in
  List.find_map (fun (_, lines) -> List.find_map is_binop lines) blocks

(* A retained program's middle block plus an alternating pair of bodies:
   delta i swaps which fresh variable recomputes [rhs], so every delta is
   a real state change (and a pure Set_instrs edit, like the recovery
   tests use). *)
type editor = { bname : string; bodies : string list array }

let make_editor retained =
  let _, blocks = split_blocks retained in
  match find_candidate_rhs blocks with
  | None -> None
  | Some rhs ->
    let bname, lines = List.nth blocks (List.length blocks / 2) in
    (match List.rev lines with
    | _term :: body_rev ->
      let body = List.rev body_rev in
      let variant v = body @ [ Printf.sprintf "zq%d := %s" v rhs ] in
      Some { bname; bodies = [| variant 0; variant 1 |] }
    | [] -> None)

let delta_frame ~id ~handle ed i =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Int id);
         ("op", Json.String "delta");
         ("handle", Json.String handle);
         ( "edits",
           Json.List
             [
               Json.Obj
                 [
                   ("block", Json.String ed.bname);
                   ("instrs", Json.List (List.map (fun l -> Json.String l) ed.bodies.(i mod 2)));
                 ];
             ] );
       ])

let retain_frame ~id text =
  Printf.sprintf "{\"id\":%d,\"op\":\"run\",\"format\":\"cfg\",\"retain\":true,\"program\":%s}" id
    (Json.to_string (Json.String text))

(* ---- phase 1: journal-append overhead on the delta hot path ---- *)

type overhead_result = {
  journaled : bool;
  deltas : int;
  p50_ms : float;
  p95_ms : float;
  appends : int;  (** journal.appends_total from the daemon's counters *)
}

let run_overhead ~state_dir ~text ~n =
  let args = match state_dir with None -> [] | Some d -> [ "--state-dir"; d ] in
  let conn = connect ~args in
  let resp = recv (send conn (retain_frame ~id:0 text); conn) in
  let handle =
    match sfield resp "handle" with
    | Some h -> h
    | None -> failwith ("retain failed: " ^ Json.to_string resp)
  in
  let ed =
    match Option.bind (sfield resp "retained_program") make_editor with
    | Some ed -> ed
    | None -> failwith "no candidate computation in the retained program"
  in
  (* warm-up: fault in both body variants before timing *)
  for i = 1 to 4 do
    ignore (recv (send conn (delta_frame ~id:i ~handle ed i); conn))
  done;
  let lat = ref [] in
  for i = 0 to n - 1 do
    let t0 = now () in
    let r = recv (send conn (delta_frame ~id:(10 + i) ~handle ed i); conn) in
    let dt = (now () -. t0) *. 1000. in
    if sfield r "status" = Some "ok" then lat := dt :: !lat
    else failwith ("delta failed: " ^ Json.to_string r)
  done;
  let stats = fetch_stats conn in
  close conn;
  let lat = sorted_of !lat in
  {
    journaled = state_dir <> None;
    deltas = n;
    p50_ms = quantile lat 0.5;
    p95_ms = quantile lat 0.95;
    appends = stat_counter stats "journal.appends_total";
  }

(* ---- phases 2 and 3: in-process engine + journal ---- *)

let fresh_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error _ -> ()

let engine_on ~compact_every dir =
  let stats = Stats.create () in
  let journal =
    match Hjournal.create ~dir ~fsync:false ~compact_every () with
    | Ok t -> t
    | Error m -> failwith ("Hjournal.create: " ^ m)
  in
  (Engine.default_config ~no_timing:true ~journal ~worker_id:0 stats, stats)

let exec cfg frame =
  match Protocol.parse_request frame with
  | Error (_, _, code, m) ->
    failwith (Printf.sprintf "bad frame (%s): %s" (Protocol.error_code_to_string code) m)
  | Ok req ->
    let t = now () in
    Json.parse (Engine.execute cfg ~now ~arrival:t ~deadline:None req)

let retain_inproc cfg text =
  let resp = exec cfg (retain_frame ~id:1 text) in
  match (sfield resp "handle", sfield resp "retained_program") with
  | Some h, Some retained -> (h, retained)
  | _ -> failwith ("retain failed: " ^ Json.to_string resp)

let journal_records dir handle =
  let path = Filename.concat dir (handle ^ ".journal") in
  let ic = open_in_bin path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let body = String.sub raw (String.length Journal.file_magic)
      (String.length raw - String.length Journal.file_magic) in
  let payloads, _, _ = Journal.decode body in
  List.length payloads

type recovery_result = {
  patches : int;
  compact_every : int option;  (** [None] = compaction effectively off *)
  recover_ms : float;
  records : int;  (** journal records on disk at recovery time *)
  replayed : int;  (** journal.replayed_patches_total after recovery *)
}

let run_recovery ~text ~patches ~compaction =
  let dir = fresh_dir "lcm-bench-rec" in
  let compact_every = match compaction with Some k -> k | None -> max_int in
  let live, _ = engine_on ~compact_every dir in
  let handle, retained = retain_inproc live text in
  let ed =
    match make_editor retained with
    | Some ed -> ed
    | None -> failwith "no candidate computation in the retained program"
  in
  for i = 0 to patches - 1 do
    let r = exec live (delta_frame ~id:(2 + i) ~handle ed i) in
    if sfield r "status" <> Some "ok" then failwith ("delta failed: " ^ Json.to_string r)
  done;
  let records = journal_records dir handle in
  (* The crash: a fresh engine sees only the journal directory. *)
  let reborn, rstats = engine_on ~compact_every dir in
  let t0 = now () in
  Engine.recover reborn;
  let recover_ms = (now () -. t0) *. 1000. in
  let replayed = Stats.counter_value rstats "journal.replayed_patches_total" in
  rm_rf dir;
  { patches; compact_every = compaction; recover_ms; records; replayed }

let run_identity ~graphs ~blocks ~patches =
  let jobs = Corpus.generate ~seed:4409 [ (blocks, graphs) ] in
  let mismatches = ref 0 and recovered_flags = ref 0 and checked = ref 0 in
  List.iter
    (fun (j : Corpus.job) ->
      let text = Cfg.to_string j.Corpus.graph in
      let dir = fresh_dir "lcm-bench-id" in
      let live, _ = engine_on ~compact_every:1000 dir in
      let handle, retained = retain_inproc live text in
      match make_editor retained with
      | None -> rm_rf dir
      | Some ed ->
        incr checked;
        for i = 0 to patches - 1 do
          ignore (exec live (delta_frame ~id:(2 + i) ~handle ed i))
        done;
        let reborn, _ = engine_on ~compact_every:1000 dir in
        Engine.recover reborn;
        let probe cfg = exec cfg (delta_frame ~id:99 ~handle ed patches) in
        let a = probe live and b = probe reborn in
        (match (sfield a "program", sfield b "program") with
        | Some pa, Some pb when String.equal pa pb -> ()
        | _ -> incr mismatches);
        (match Json.member "recovered" b with
        | Some (Json.Bool true) -> incr recovered_flags
        | _ -> ());
        rm_rf dir)
    jobs;
  (!checked, !mismatches, !recovered_flags)

(* ---- reporting ---- *)

let print_overhead rows =
  let t = Table.create [ "journal"; "deltas"; "p50 ms"; "p95 ms"; "appends" ] in
  List.iter
    (fun r ->
      Table.add_row t
        [
          (if r.journaled then "on" else "off");
          Table.cell_int r.deltas;
          Table.cell_float ~decimals:3 r.p50_ms;
          Table.cell_float ~decimals:3 r.p95_ms;
          Table.cell_int r.appends;
        ])
    rows;
  Table.print t

let print_recovery rows =
  let t = Table.create [ "patches"; "compact every"; "records"; "replayed"; "recover ms" ] in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_int r.patches;
          (match r.compact_every with Some k -> string_of_int k | None -> "off");
          Table.cell_int r.records;
          Table.cell_int r.replayed;
          Table.cell_float ~decimals:2 r.recover_ms;
        ])
    rows;
  Table.print t

let json_of_overhead r =
  Json.Obj
    [
      ("journaled", Json.Bool r.journaled);
      ("deltas", Json.Int r.deltas);
      ("p50_ms", Json.Float r.p50_ms);
      ("p95_ms", Json.Float r.p95_ms);
      ("journal_appends", Json.Int r.appends);
    ]

let json_of_recovery r =
  Json.Obj
    [
      ("patches", Json.Int r.patches);
      ("compact_every", match r.compact_every with Some k -> Json.Int k | None -> Json.Null);
      ("journal_records", Json.Int r.records);
      ("replayed_patches", Json.Int r.replayed);
      ("recover_ms", Json.Float r.recover_ms);
    ]

let emit_json ?(path = "BENCH_recover.json") ~overhead ~overhead_pct ~recovery ~identity () =
  let checked, mismatches, flags = identity in
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "recover");
        ( "benchmark",
          Json.String
            "crash durability: journal-append overhead, recovery time vs patch-log length, \
             recovered-state bit-identity" );
        ("overhead", Json.List (List.map json_of_overhead overhead));
        ("overhead_p50_pct", Json.Float overhead_pct);
        ("recovery", Json.List (List.map json_of_recovery recovery));
        ( "identity",
          Json.Obj
            [
              ("graphs", Json.Int checked);
              ("digest_mismatches", Json.Int mismatches);
              ("recovered_flags", Json.Int flags);
            ] );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Common.note "wrote %s" path

let run_mode ~quick () =
  Common.section
    (if quick then "EXP-RECOVER  Crash durability (quick smoke run)"
     else "EXP-RECOVER  Crash durability: journal overhead, recovery time, bit-identity");

  (* 1. journal-append overhead.  Large graphs in full mode so the delta's
     incremental re-solve and canonical reprint dominate the append+fsync
     it now carries — the journaled payload is the edit, not the program,
     so the append cost is flat while the delta cost grows with the
     graph. *)
  let blocks, n_deltas = if quick then (30, 16) else (1000, 100) in
  let job = List.hd (Corpus.generate ~seed:907 [ (blocks, 1) ]) in
  let text = Cfg.to_string job.Corpus.graph in
  Common.note "overhead: %d deltas on a %d-block graph, journal off vs on..." n_deltas blocks;
  let plain = run_overhead ~state_dir:None ~text ~n:n_deltas in
  let sdir = fresh_dir "lcm-bench-ovr" in
  let journaled = run_overhead ~state_dir:(Some sdir) ~text ~n:n_deltas in
  rm_rf sdir;
  let overhead = [ plain; journaled ] in
  print_overhead overhead;
  let overhead_pct =
    if plain.p50_ms > 0. then (journaled.p50_ms -. plain.p50_ms) /. plain.p50_ms *. 100. else 0.
  in
  Common.note "journal-append overhead: %+.1f%% on the delta p50" overhead_pct;

  (* 2. recovery time vs patch-log length, compaction off vs on.  A
     moderate graph keeps the per-patch replay cost visible without
     swamping the sweep. *)
  let rec_blocks = if quick then 30 else 120 in
  let text = Cfg.to_string (List.hd (Corpus.generate ~seed:911 [ (rec_blocks, 1) ])).Corpus.graph in
  let patch_counts = if quick then [ 0; 8; 32 ] else [ 0; 16; 64; 256 ] in
  let interval = if quick then 8 else 64 in
  Common.note "recovery: patch logs of %s, compaction off vs every %d..."
    (String.concat "/" (List.map string_of_int patch_counts))
    interval;
  let recovery =
    List.concat_map
      (fun p ->
        [ run_recovery ~text ~patches:p ~compaction:None;
          run_recovery ~text ~patches:p ~compaction:(Some interval) ])
      patch_counts
  in
  print_recovery recovery;

  (* 3. bit-identity of recovered state *)
  let graphs, id_blocks, id_patches = if quick then (3, 30, 4) else (8, 60, 6) in
  Common.note "identity: %d graphs, %d deltas each, recover + identical probe..." graphs id_patches;
  let ((checked, mismatches, flags) as identity) = run_identity ~graphs ~blocks:id_blocks ~patches:id_patches in
  Common.note "identity: %d/%d recovered handles bit-identical, %d announced recovered:true"
    (checked - mismatches) checked flags;

  (* invariants *)
  let fail = ref false in
  if mismatches > 0 then begin
    Common.note "FAIL: recovered handles diverged from their live counterparts";
    fail := true
  end;
  if checked > 0 && flags < checked then begin
    Common.note "FAIL: some recovered handles never announced recovered:true";
    fail := true
  end;
  if journaled.appends < n_deltas then begin
    Common.note "FAIL: journaled run recorded %d appends for %d deltas" journaled.appends n_deltas;
    fail := true
  end;
  (* Compaction must bound the on-disk log: at the longest history, the
     compacted journal holds at most [interval] patch records plus the
     snapshot, while the uncompacted one holds the full history. *)
  let longest = List.length patch_counts - 1 in
  let un = List.nth recovery (2 * longest) and co = List.nth recovery ((2 * longest) + 1) in
  if un.records <> un.patches + 1 then begin
    Common.note "FAIL: uncompacted journal has %d records for %d patches" un.records un.patches;
    fail := true
  end;
  if co.records > interval + 1 then begin
    Common.note "FAIL: compacted journal holds %d records (bound %d)" co.records (interval + 1);
    fail := true
  end;
  if co.replayed > interval then begin
    Common.note "FAIL: compacted recovery replayed %d patches (bound %d)" co.replayed interval;
    fail := true
  end;
  if not quick then begin
    if overhead_pct >= 10. then begin
      Common.note "FAIL: journal overhead %.1f%% exceeds the 10%% budget" overhead_pct;
      fail := true
    end;
    if co.recover_ms > un.recover_ms then
      Common.note "note: compacted recovery was not faster on this host (%.2f ms vs %.2f ms)"
        co.recover_ms un.recover_ms
  end;
  if !fail then exit 1;
  if not quick then emit_json ~overhead ~overhead_pct ~recovery ~identity ()

let run () = run_mode ~quick:false ()
let run_quick () = run_mode ~quick:true ()
