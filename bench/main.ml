(* Experiment harness: regenerates every figure/table of the reproduction
   (see DESIGN.md §4 for the experiment index).

   Usage:
     bench/main.exe                  run everything
     bench/main.exe --experiment f1  run one experiment
                                     (f1 f2 f3 t1 t2 t2c t3 c1 a1 a2)
     bench/main.exe --list           list experiments *)

let experiments =
  [
    ("f1", "running example: analysis annotations (Fig. 1)", Exp_figures.f1);
    ("f2", "running example: busy placement (Fig. BCM)", Exp_figures.f2);
    ("f3", "running example: lazy placement (Fig. LCM)", Exp_figures.f3);
    ("t1", "Theorem 1: correctness and per-path safety", Exp_theorems.t1);
    ("t2", "Theorem 2: dynamic computation counts", Exp_theorems.t2);
    ("t2c", "Theorem 2: brute-force optimality check", Exp_theorems.t2_brute);
    ("t2d", "Theorem 2: critical-edge example vs Morel-Renvoise", Exp_theorems.t2_critical);
    ("t3", "Theorem 3: temporary lifetimes", Exp_theorems.t3);
    ("c1", "cost: solver sweeps and wall-clock", Exp_cost.run);
    ("s1", "static code size and cleanup effects", Exp_size.run);
    ("p1", "dynamic evaluations by loop depth", Exp_profile.run);
    ("a1", "ablation: isolation analysis", Exp_ablation.a1);
    ("a2", "ablation: critical-edge pre-splitting", Exp_ablation.a2);
    ("scale", "solver throughput on random CFGs up to 10k blocks", Exp_scale.run);
    ("parallel", "multicore engine: pass overlap, bit slices, corpus fan-out", Exp_parallel.run);
    ("serve", "daemon under offered load: throughput, latency, backpressure", Exp_serve.run);
    ("shard", "sharded serving: fleet scaling, result cache, incremental deltas", Exp_shard.run);
    ("recover", "crash durability: journal overhead, recovery time, bit-identity", Exp_recover.run);
    ("chaos", "supervised daemon under injected faults: availability, degradation", Exp_chaos.run);
    ("trace", "observability: tracing overhead, retry-crossing trace reconstruction", Exp_trace.run);
  ]

let list_experiments () =
  List.iter (fun (id, descr, _) -> Printf.printf "%-4s %s\n" id descr) experiments

let run_one id =
  match List.find_opt (fun (i, _, _) -> String.equal i id) experiments with
  | Some (_, _, f) -> f ()
  | None ->
    Printf.eprintf "unknown experiment %S; use --list\n" id;
    exit 1

let () =
  match Array.to_list Sys.argv with
  | [ _ ] -> List.iter (fun (_, _, f) -> f ()) experiments
  | [ _; "--list" ] -> list_experiments ()
  | [ _; "--experiment"; "scale"; "--quick" ] | [ _; "scale"; "--quick" ] -> Exp_scale.run_quick ()
  | [ _; "--experiment"; "parallel"; "--quick" ] | [ _; "parallel"; "--quick" ] ->
    Exp_parallel.run_quick ()
  | [ _; "--experiment"; "serve"; "--quick" ] | [ _; "serve"; "--quick" ] -> Exp_serve.run_quick ()
  | [ _; "--experiment"; "shard"; "--quick" ] | [ _; "shard"; "--quick" ] -> Exp_shard.run_quick ()
  | [ _; "--experiment"; "recover"; "--quick" ] | [ _; "recover"; "--quick" ] ->
    Exp_recover.run_quick ()
  | [ _; "--experiment"; "chaos"; "--quick" ] | [ _; "chaos"; "--quick" ] -> Exp_chaos.run_quick ()
  | [ _; "--experiment"; "trace"; "--quick" ] | [ _; "trace"; "--quick" ] -> Exp_trace.run_quick ()
  | [ _; "--experiment"; id ] | [ _; id ] -> run_one id
  | _ ->
    prerr_endline "usage: main.exe [--list | --experiment <id> [--quick]]";
    exit 1
