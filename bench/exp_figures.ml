(* EXP-F1/F2/F3: the paper's worked example — predicate annotations, busy
   placement, lazy placement — regenerated as printed tables. *)

module Bitvec = Lcm_support.Bitvec
module Table = Lcm_support.Table
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Local = Lcm_dataflow.Local
module Avail = Lcm_dataflow.Avail
module Antic = Lcm_dataflow.Antic
module Lcm_edge = Lcm_core.Lcm_edge
module Bcm_edge = Lcm_core.Bcm_edge
module Running_example = Lcm_figures.Running_example

let bool_cell b = if b then "1" else "0"

let f1 () =
  Common.section "EXP-F1  Running example: flow graph and analysis annotations (paper Fig. 1)";
  let g = Running_example.graph () in
  print_endline (Cfg.to_string g);
  let a = Lcm_edge.analyze g in
  let idx = Running_example.expr_index g in
  let t =
    Table.create
      [ "block"; "ANTLOC"; "COMP"; "TRANSP"; "AVIN"; "AVOUT"; "ANTIN"; "ANTOUT"; "LATERIN" ]
  in
  List.iter
    (fun l ->
      let bit f = bool_cell (Bitvec.get (f l) idx) in
      Table.add_row t
        [
          Label.to_string l;
          bit (Local.antloc a.Lcm_edge.local);
          bit (Local.comp a.Lcm_edge.local);
          bit (Local.transp a.Lcm_edge.local);
          bit a.Lcm_edge.avail.Avail.avin;
          bit a.Lcm_edge.avail.Avail.avout;
          bit a.Lcm_edge.antic.Antic.antin;
          bit a.Lcm_edge.antic.Antic.antout;
          bit a.Lcm_edge.laterin;
        ])
    (Cfg.labels g);
  Table.print t;
  Common.note "Expression tracked: a + b (index %d)." idx

let show_placement name insert delete copy =
  let t = Table.create [ "set"; "contents" ] in
  Table.add_row t
    [ "INSERT"; String.concat " " (List.map (fun ((p, b), _) -> Printf.sprintf "(%s,%s)" (Label.to_string p) (Label.to_string b)) insert) ];
  Table.add_row t [ "DELETE"; String.concat " " (List.map (fun (b, _) -> Label.to_string b) delete) ];
  Table.add_row t [ "COPY"; String.concat " " (List.map (fun (b, _) -> Label.to_string b) copy) ];
  Common.note "%s placement:" name;
  Table.print t

let f2 () =
  Common.section "EXP-F2  Busy Code Motion on the running example (paper Fig. BCM)";
  let g = Running_example.graph () in
  let a = Bcm_edge.analyze g in
  show_placement "BCM" a.Bcm_edge.insert a.Bcm_edge.delete a.Bcm_edge.copy;
  let g', _ = Bcm_edge.transform g in
  Common.note "Transformed graph:";
  print_endline (Cfg.to_string g');
  Common.note "Temporary lifetime (live block boundaries): %d" (Common.lifetime_of ~original:g g')

let f3 () =
  Common.section "EXP-F3  Lazy Code Motion on the running example (paper Fig. LCM)";
  let g = Running_example.graph () in
  let a = Lcm_edge.analyze g in
  show_placement "LCM" a.Lcm_edge.insert a.Lcm_edge.delete a.Lcm_edge.copy;
  let g', _ = Lcm_edge.transform g in
  Common.note "Transformed graph:";
  print_endline (Cfg.to_string g');
  let bcm, _ = Bcm_edge.transform g in
  let t = Table.create [ "algorithm"; "static a+b occurrences"; "temp lifetime"; "max pressure" ] in
  let row name h =
    Table.add_row t
      [
        name;
        Table.cell_int (Cfg.num_candidate_occurrences h);
        Table.cell_int (Common.lifetime_of ~original:g h);
        Table.cell_int (Lcm_eval.Metrics.max_pressure h);
      ]
  in
  row "original" g;
  row "bcm-edge" bcm;
  row "lcm-edge" g';
  Table.print t;
  Common.note
    "Same computation counts on every path (Theorem 2 of the paper); the lazy placement shortens \
     the temporary's live range."

let run () =
  f1 ();
  f2 ();
  f3 ()
