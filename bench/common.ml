(* Shared helpers for the experiment harness. *)

module Table = Lcm_support.Table
module Prng = Lcm_support.Prng
module Cfg = Lcm_cfg.Cfg
module Registry = Lcm_eval.Registry
module Suites = Lcm_eval.Suites
module Metrics = Lcm_eval.Metrics
module Oracle = Lcm_eval.Oracle

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

let ok_or_message = function
  | Ok () -> "ok"
  | Error m -> "FAIL: " ^ m

let ok_flag = function
  | Ok () -> "yes"
  | Error _ -> "no"

(* Environments used for all dynamic measurements: deterministic per
   workload. *)
let workload_envs w = Suites.envs 2026 w 10

let algorithm name = Option.get (Registry.find name)

let run_algorithm name g = (algorithm name).Registry.run g

let temps_of ~original ~transformed = Registry.new_temps ~original ~transformed

let lifetime_of ~original transformed =
  Metrics.temp_lifetime transformed ~temps:(temps_of ~original ~transformed)
