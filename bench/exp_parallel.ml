(* EXP-PARALLEL: multicore throughput of the parallel analysis engine.

   Two workloads, both deterministic:

   - single graph: [Lcm_edge.analyze ~workers] on the EXP-SCALE random CFGs
     (pass-level overlap of the two safety systems + slice-level fan-out
     inside each fixpoint), against the sequential engine on the same
     graphs;
   - corpus: [Corpus.process ~workers] mapping analyze+transform over a
     ~10k-block suite of functions — the "compiler server" workload, the
     coarsest-grained and best-scaling layer.

   Domain counts 1/2/4/8 each get their own pool (created and shut down
   around the measurement).  The emitted BENCH_parallel.json records
   [host_cores] (Domain.recommended_domain_count): speedups above it are
   not physically reachable on the measuring machine, so the JSON is
   interpretable wherever it was produced.  Corpus digests are checked
   identical across all domain counts — the determinism contract, measured
   rather than assumed.

   Quick mode (CI smoke): domains {1,2}, the two smallest sizes, a toy
   corpus, one repetition, no JSON. *)

module Table = Lcm_support.Table
module Prng = Lcm_support.Prng
module Pool = Lcm_support.Pool
module Cfg = Lcm_cfg.Cfg
module Gencfg = Lcm_eval.Gencfg
module Corpus = Lcm_eval.Corpus
module Lcm_edge = Lcm_core.Lcm_edge
module Solver = Lcm_dataflow.Solver

let sizes ~quick = if quick then [ 100; 1000 ] else [ 100; 300; 1000; 3000; 10000 ]
let domain_counts ~quick = if quick then [ 1; 2 ] else [ 1; 2; 4; 8 ]

let corpus_counts ~quick =
  if quick then [ (50, 4) ] else [ (100, 40); (300, 10); (1000, 3) ] (* 10_000 blocks *)

(* Same deterministic graphs as EXP-SCALE, so rows line up across the two
   documents. *)
let graph_of_size n =
  let rng = Prng.of_int (4242 + n) in
  Gencfg.random_cfg ~params:{ Gencfg.default_cfg_params with num_blocks = n } rng

let best_of ~reps f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

type single_row = {
  blocks : int;
  domains : int;
  wall_s : float;
  blocks_per_sec : float;
  speedup : float;  (* vs the sequential engine on the same graph *)
}

let measure_single ~quick =
  let reps = if quick then 1 else 5 in
  List.concat_map
    (fun n ->
      let g = graph_of_size n in
      let blocks = Cfg.num_blocks g in
      let seq = best_of ~reps (fun () -> Lcm_edge.analyze g) in
      let seq_row =
        { blocks; domains = 0; wall_s = seq; blocks_per_sec = float_of_int blocks /. seq; speedup = 1. }
      in
      seq_row
      :: List.map
           (fun d ->
             let pool = Pool.create d in
             let wall = best_of ~reps (fun () -> Lcm_edge.analyze ~workers:pool g) in
             Pool.shutdown pool;
             {
               blocks;
               domains = d;
               wall_s = wall;
               blocks_per_sec = float_of_int blocks /. wall;
               speedup = seq /. wall;
             })
           (domain_counts ~quick))
    (sizes ~quick)

type corpus_row = {
  c_domains : int;
  c_wall_s : float;
  c_blocks_per_sec : float;
  c_speedup : float;  (* vs the 1-domain run *)
}

let measure_corpus ~quick =
  let reps = if quick then 1 else 3 in
  let jobs = Corpus.generate (corpus_counts ~quick) in
  let total = Corpus.total_blocks jobs in
  let reference = ref None in
  let deterministic = ref true in
  let rows =
    List.map
      (fun d ->
        let pool = Pool.create d in
        let wall = best_of ~reps (fun () -> Corpus.process ~workers:pool jobs) in
        let ds = Corpus.digests (Corpus.process ~workers:pool jobs) in
        Pool.shutdown pool;
        (match !reference with
        | None -> reference := Some ds
        | Some r -> if ds <> r then deterministic := false);
        {
          c_domains = d;
          c_wall_s = wall;
          c_blocks_per_sec = float_of_int total /. wall;
          c_speedup = 1.;
        })
      (domain_counts ~quick)
  in
  let one =
    match rows with
    | first :: _ -> first.c_wall_s
    | [] -> nan
  in
  let rows = List.map (fun r -> { r with c_speedup = one /. r.c_wall_s }) rows in
  (jobs, total, rows, !deterministic)

let print_single rows =
  let t = Table.create [ "blocks"; "domains"; "wall (ms)"; "blocks/s"; "speedup" ] in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_int r.blocks;
          (if r.domains = 0 then "seq" else string_of_int r.domains);
          Table.cell_float ~decimals:3 (1000. *. r.wall_s);
          Printf.sprintf "%.0f" r.blocks_per_sec;
          Printf.sprintf "%.2fx" r.speedup;
        ])
    rows;
  Table.print t

let print_corpus total rows deterministic =
  Common.note "corpus: %d blocks total; digests identical across domain counts: %b" total
    deterministic;
  let t = Table.create [ "domains"; "wall (ms)"; "blocks/s"; "speedup vs 1" ] in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_int r.c_domains;
          Table.cell_float ~decimals:3 (1000. *. r.c_wall_s);
          Printf.sprintf "%.0f" r.c_blocks_per_sec;
          Printf.sprintf "%.2fx" r.c_speedup;
        ])
    rows;
  Table.print t

let emit_json ?(path = "BENCH_parallel.json") single (jobs, total, corpus, deterministic) =
  let single_json =
    String.concat ",\n"
      (List.map
         (fun r ->
           Printf.sprintf
             "    { \"blocks\": %d, \"domains\": %s, \"wall_s\": %.6f, \"blocks_per_sec\": \
              %.0f, \"speedup_vs_sequential\": %.2f }"
             r.blocks
             (if r.domains = 0 then "\"seq\"" else string_of_int r.domains)
             r.wall_s r.blocks_per_sec r.speedup)
         single)
  in
  let corpus_json =
    String.concat ",\n"
      (List.map
         (fun r ->
           Printf.sprintf
             "    { \"domains\": %d, \"wall_s\": %.6f, \"blocks_per_sec\": %.0f, \
              \"speedup_vs_1domain\": %.2f }"
             r.c_domains r.c_wall_s r.c_blocks_per_sec r.c_speedup)
         corpus)
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"parallel\",\n\
    \  \"engine\": \"%s\",\n\
    \  \"sequential_engine\": \"%s\",\n\
    \  \"par_threshold_bits\": %d,\n\
    \  \"host_cores\": %d,\n\
    \  \"single_graph_rows\": [\n%s\n  ],\n\
    \  \"corpus\": {\n\
    \    \"graphs\": %d,\n\
    \    \"total_blocks\": %d,\n\
    \    \"deterministic_across_domain_counts\": %b,\n\
    \    \"rows\": [\n%s\n  ]\n\
    \  }\n\
     }\n"
    Solver.par_engine_name Solver.default_engine_name Solver.default_par_threshold
    (Domain.recommended_domain_count ())
    single_json (List.length jobs) total deterministic corpus_json;
  close_out oc;
  Common.note "wrote %s" path

let run_mode ~quick () =
  Common.section
    (if quick then "EXP-PARALLEL  Multicore engine (quick smoke run)"
     else "EXP-PARALLEL  Multicore engine: pass overlap, bit slices, corpus fan-out");
  Common.note "host cores (Domain.recommended_domain_count): %d"
    (Domain.recommended_domain_count ());
  let single = measure_single ~quick in
  print_single single;
  let ((_, total, corpus_rows, deterministic) as corpus) = measure_corpus ~quick in
  print_corpus total corpus_rows deterministic;
  if not deterministic then
    failwith "EXP-PARALLEL: corpus digests differ across domain counts";
  if not quick then emit_json single corpus;
  Common.note
    "single-graph rows: analyze end-to-end, best-of-%d; \"seq\" = the sequential engine \
     (no pool).  corpus rows: analyze+transform over the whole suite, one pool task per \
     function; visits/sweeps counters are unchanged by parallelism (visits summed across \
     slices, sweeps maxed)."
    (if quick then 1 else 5)

let run () = run_mode ~quick:false ()
let run_quick () = run_mode ~quick:true ()
