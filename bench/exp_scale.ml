(* EXP-SCALE: solver throughput on random CFGs of growing size.

   Generates random graphs up to 10k blocks (deterministic seeds), times
   [Lcm_edge.analyze] end to end, and reports blocks/second plus the
   solver's visit counters.  Results are appended as a JSON document
   (BENCH_scale.json) so the performance trajectory is tracked from PR to
   PR; the table printed to stdout is the human-readable view.

   The "quick" mode (used by CI as a smoke test) restricts the run to the
   two smallest sizes and a single repetition so it finishes in well under
   a second. *)

module Table = Lcm_support.Table
module Prng = Lcm_support.Prng
module Cfg = Lcm_cfg.Cfg
module Gencfg = Lcm_eval.Gencfg
module Lcm_edge = Lcm_core.Lcm_edge

type row = {
  blocks : int;
  edges : int;
  exprs : int;
  wall_s : float;
  blocks_per_sec : float;
  sweeps : int;
  visits : int;
}

let sizes ~quick = if quick then [ 100; 1000 ] else [ 100; 300; 1000; 3000; 10000 ]

let graph_of_size n =
  let rng = Prng.of_int (4242 + n) in
  Gencfg.random_cfg ~params:{ Gencfg.default_cfg_params with num_blocks = n } rng

(* Best-of-[reps] wall clock; the analysis allocates heavily, so a warmup
   run keeps the first measurement from paying one-off GC growth. *)
let time_analyze ~reps g =
  ignore (Lcm_edge.analyze g);
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let a = Lcm_edge.analyze g in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    last := Some a
  done;
  (Option.get !last, !best)

let measure ~quick =
  let reps = if quick then 1 else 5 in
  List.map
    (fun n ->
      let g = graph_of_size n in
      let a, wall = time_analyze ~reps g in
      let blocks = Cfg.num_blocks g in
      {
        blocks;
        edges = List.length (Cfg.edges g);
        exprs = Lcm_ir.Expr_pool.size a.Lcm_edge.pool;
        wall_s = wall;
        blocks_per_sec = float_of_int blocks /. wall;
        sweeps = a.Lcm_edge.sweeps;
        visits = a.Lcm_edge.visits;
      })
    (sizes ~quick)

let print_rows rows =
  let t =
    Table.create [ "blocks"; "edges"; "exprs"; "wall (ms)"; "blocks/s"; "sweeps"; "visits" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_int r.blocks;
          Table.cell_int r.edges;
          Table.cell_int r.exprs;
          Table.cell_float ~decimals:3 (1000. *. r.wall_s);
          Printf.sprintf "%.0f" r.blocks_per_sec;
          Table.cell_int r.sweeps;
          Table.cell_int r.visits;
        ])
    rows;
  Table.print t

(* Reference numbers measured on the seed engine ("round-robin sweep
   (hashtbl state)") on the same deterministic graphs, kept so the emitted
   document is a self-contained before/after record.  Wall-clock fields are
   machine-dependent; the sweep/visit counters are exact for that engine. *)
let baseline_engine = "round-robin sweep (hashtbl state)"

let baseline_rows =
  [
    { blocks = 102; edges = 150; exprs = 38; wall_s = 0.000682; blocks_per_sec = 149587.; sweeps = 8; visits = 814 };
    { blocks = 302; edges = 457; exprs = 67; wall_s = 0.003253; blocks_per_sec = 92838.; sweeps = 10; visits = 3017 };
    { blocks = 1002; edges = 1469; exprs = 72; wall_s = 0.014525; blocks_per_sec = 68985.; sweeps = 10; visits = 10017 };
    { blocks = 3002; edges = 4496; exprs = 72; wall_s = 0.050249; blocks_per_sec = 59742.; sweeps = 10; visits = 30017 };
    { blocks = 10002; edges = 14956; exprs = 72; wall_s = 0.279907; blocks_per_sec = 35733.; sweeps = 10; visits = 100017 };
  ]

let json_of_rows rows =
  let row_json r =
    Printf.sprintf
      "    { \"blocks\": %d, \"edges\": %d, \"exprs\": %d, \"wall_s\": %.6f, \
       \"blocks_per_sec\": %.0f, \"sweeps\": %d, \"visits\": %d }"
      r.blocks r.edges r.exprs r.wall_s r.blocks_per_sec r.sweeps r.visits
  in
  "[\n" ^ String.concat ",\n" (List.map row_json rows) ^ "\n  ]"

(* Speedup of [rows] over the baseline on the matching block counts. *)
let speedups rows =
  List.filter_map
    (fun r ->
      List.find_opt (fun b -> b.blocks = r.blocks) baseline_rows
      |> Option.map (fun b -> (r.blocks, r.blocks_per_sec /. b.blocks_per_sec)))
    rows

let emit_json ?(path = "BENCH_scale.json") rows =
  let speedup_json =
    String.concat ", "
      (List.map (fun (n, s) -> Printf.sprintf "\"%d\": %.2f" n s) (speedups rows))
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"scale\",\n\
    \  \"benchmark\": \"Lcm_edge.analyze end-to-end on random CFGs\",\n\
    \  \"host_cores\": %d,\n\
    \  \"engine\": \"%s\",\n\
    \  \"rows\": %s,\n\
    \  \"baseline_engine\": \"%s\",\n\
    \  \"baseline_rows\": %s,\n\
    \  \"speedup_by_blocks\": { %s }\n\
     }\n"
    (Domain.recommended_domain_count ())
    Lcm_dataflow.Solver.default_engine_name (json_of_rows rows) baseline_engine
    (json_of_rows baseline_rows) speedup_json;
  close_out oc;
  Common.note "wrote %s" path

let run_mode ~quick () =
  Common.section
    (if quick then "EXP-SCALE  Solver throughput on random CFGs (quick smoke run)"
     else "EXP-SCALE  Solver throughput on random CFGs up to 10k blocks");
  let rows = measure ~quick in
  print_rows rows;
  if not quick then begin
    Common.note "speedup vs %s: %s" baseline_engine
      (String.concat ", "
         (List.map (fun (n, s) -> Printf.sprintf "%.2fx at %d blocks" s n) (speedups rows)));
    emit_json rows
  end;
  Common.note
    "visits = transfer-function applications across all fixpoint passes of the analysis; \
     blocks/s = blocks divided by best-of-%d wall time."
    (if quick then 1 else 5)

let run () = run_mode ~quick:false ()
let run_quick () = run_mode ~quick:true ()
