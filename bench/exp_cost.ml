(* EXP-C1: the paper's cost claim — LCM is a cascade of unidirectional
   bit-vector problems, cheaper than the bidirectional Morel–Renvoise
   system.  Measured two ways: solver sweeps/visits, and wall-clock via
   bechamel. *)

module Table = Lcm_support.Table
module Prng = Lcm_support.Prng
module Cfg = Lcm_cfg.Cfg
module Gencfg = Lcm_eval.Gencfg
module Lcm_edge = Lcm_core.Lcm_edge
module Bcm_edge = Lcm_core.Bcm_edge
module Morel_renvoise = Lcm_baselines.Morel_renvoise

let sizes = [ 10; 30; 100; 300; 1000 ]

let graph_of_size n =
  let rng = Prng.of_int (4242 + n) in
  Gencfg.random_cfg ~params:{ Gencfg.default_cfg_params with num_blocks = n } rng

let sweeps_table () =
  Common.section "EXP-C1a  Data-flow solver cost: sweeps and block visits per algorithm";
  let t =
    Table.create
      [
        "blocks"; "edges"; "exprs";
        "lcm sweeps"; "lcm visits";
        "bcm sweeps"; "bcm visits";
        "mr sweeps"; "mr visits";
      ]
  in
  List.iter
    (fun n ->
      let g = graph_of_size n in
      let lcm = Lcm_edge.analyze g in
      let bcm = Bcm_edge.analyze g in
      let mr = Morel_renvoise.analyze g in
      Table.add_row t
        [
          Table.cell_int (Cfg.num_blocks g);
          Table.cell_int (List.length (Cfg.edges g));
          Table.cell_int (Lcm_ir.Expr_pool.size lcm.Lcm_edge.pool);
          Table.cell_int lcm.Lcm_edge.sweeps;
          Table.cell_int lcm.Lcm_edge.visits;
          Table.cell_int bcm.Bcm_edge.sweeps;
          Table.cell_int bcm.Bcm_edge.visits;
          Table.cell_int mr.Morel_renvoise.sweeps;
          Table.cell_int mr.Morel_renvoise.visits;
        ])
    sizes;
  Table.print t;
  Common.note
    "Sweeps/visits aggregate every fixpoint pass of the algorithm (LCM: availability + \
     anticipatability + LATER; MR: availability + partial availability + the bidirectional \
     PPIN/PPOUT system)."

(* Wall-clock with bechamel. *)
let wallclock () =
  Common.section "EXP-C1b  Wall-clock per analysis (bechamel, ns per run)";
  let g = graph_of_size 300 in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"lcm-edge analyze" (Staged.stage (fun () -> ignore (Lcm_edge.analyze g)));
      Test.make ~name:"bcm-edge analyze" (Staged.stage (fun () -> ignore (Bcm_edge.analyze g)));
      Test.make ~name:"morel-renvoise analyze" (Staged.stage (fun () -> ignore (Morel_renvoise.analyze g)));
      Test.make ~name:"lcm-node analyze (granular)"
        (Staged.stage
           (let gran = Lcm_cfg.Granulate.run g in
            fun () -> ignore (Lcm_core.Lcm_node.analyze gran)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let t = Table.create [ "analysis"; "ns/run" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols (Toolkit.Instance.monotonic_clock) results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> Printf.sprintf "%.0f" e
            | Some es -> String.concat "," (List.map (Printf.sprintf "%.0f") es)
            | None -> "n/a"
          in
          Table.add_row t [ name; estimate ])
        analyzed)
    tests;
  Table.print t;
  Common.note "Graph: 300 blocks, random workload; lower is better."

let run () =
  sweeps_table ();
  wallclock ()
