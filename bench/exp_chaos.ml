(* EXP-CHAOS: availability of the supervised daemon under injected faults.

   Spawns `lcmopt serve --stdio --supervise` with LCM_CHAOS in its
   environment and drives it over a corpus of random CFGs at several fault
   rates.  The fault mix at rate r:

     daemon.crash = r/10   hard process death mid-frame (supervisor restarts)
     engine.panic = r      algorithm raises mid-pipeline (tier degradation)
     engine.alloc = r      allocation failure mid-pipeline (tier degradation)

   The client resends any request that is unanswered after a timeout or
   answered with an error, up to a fixed attempt budget — the same contract
   `lcmopt request --retries` offers.  Reported per rate: availability
   (logical requests that eventually got an ok), supervisor restart count,
   degraded-response fraction, retry volume, and a digest cross-check of
   every NON-degraded ok response against the in-process transformation
   (bit-identical to `lcmopt run` is a hard requirement; degraded responses
   are excluded because the identity tier returns the input unchanged).

   The "quick" mode (CI smoke) runs one rate and asserts availability and
   the digest cross-check. *)

module Table = Lcm_support.Table
module Cfg = Lcm_cfg.Cfg
module Frontend = Lcm_frontend.Frontend
module Corpus = Lcm_eval.Corpus
module Lcm_edge = Lcm_core.Lcm_edge
module Json = Lcm_server.Json
module Frame = Lcm_server.Frame

(* Wire-text ingestion goes through the frontend registry, exactly like
   the daemon's. *)
let parse_cfg text =
  match Frontend.parse_one Frontend.cfg text with
  | Ok g -> g
  | Error _ -> failwith "canonical cfg text did not re-parse"

let now = Unix.gettimeofday

(* ---- the supervised daemon subprocess ---- *)

let resolve_exe () =
  match Sys.getenv_opt "LCMOPT_EXE" with
  | Some p -> p
  | None ->
    let d = Filename.dirname Sys.executable_name in
    Filename.concat (Filename.concat (Filename.dirname d) "bin") "lcmopt.exe"

type daemon = { pid : int; req_w : Unix.file_descr; resp_r : Unix.file_descr; state_file : string }

let chaos_spec ~seed ~rate =
  Printf.sprintf "%d:daemon.crash=%g,engine.panic=%g,engine.alloc=%g" seed (rate /. 10.) rate rate

let spawn_daemon ~seed ~rate =
  let exe = resolve_exe () in
  if not (Sys.file_exists exe) then begin
    Printf.eprintf "exp_chaos: daemon binary not found at %s (set LCMOPT_EXE)\n" exe;
    exit 1
  end;
  let state_file = Filename.temp_file "lcm-chaos" ".state" in
  Sys.remove state_file;
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let env =
    Array.append (Unix.environment ())
      (if rate > 0. then [| "LCM_CHAOS=" ^ chaos_spec ~seed ~rate |] else [||])
  in
  (* --max-restarts is effectively unlimited: the point of the experiment is
     that the supervisor keeps absorbing crashes for the whole run.  The
     restart backoff cap is lowered from the crash-loop-friendly default —
     at a 1%-per-frame crash rate under sustained load every child dies
     young, and 5 s pauses would be the availability story rather than the
     faults themselves. *)
  let pid =
    Unix.create_process_env exe
      [|
        exe; "serve"; "--stdio"; "--quiet"; "--queue"; "256"; "--supervise"; "--max-restarts";
        "100000"; "--restart-backoff-ms"; "50"; "--restart-cap-ms"; "500"; "--state-file";
        state_file;
      |]
      env req_r resp_w Unix.stderr
  in
  Unix.close req_r;
  Unix.close resp_w;
  { pid; req_w; resp_r; state_file }

let stop_daemon d =
  (try Unix.close d.req_w with Unix.Unix_error _ -> ());
  (try Unix.close d.resp_r with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] d.pid);
  (try Sys.remove d.state_file with Sys_error _ -> ())

(* ---- the corpus ---- *)

type job = { frame_suffix : string; expected_digest : string }

let prepare_jobs jobs =
  List.map
    (fun (j : Corpus.job) ->
      let text = Cfg.to_string j.Corpus.graph in
      let g = parse_cfg text in
      let expected = Cfg.to_string (fst (Lcm_edge.transform g)) in
      {
        frame_suffix =
          Printf.sprintf "\"op\":\"run\",\"format\":\"cfg\",\"program\":%s}"
            (Json.to_string (Json.String text));
        expected_digest = Digest.to_hex (Digest.string expected);
      })
    jobs
  |> Array.of_list

(* ---- one fault rate ---- *)

type rate_result = {
  rate : float;
  requests : int;
  succeeded : int;
  failed : int;
  degraded : int;
  retries : int;
  restarts : int;
  error_responses : int;
  digest_mismatches : int;
  wall_s : float;
  availability : float;
}

(* A logical request survives daemon crashes by being resent under a fresh
   wire id, with client-side backoff between attempts — resending
   instantly would amplify load exactly while the daemon is in a restart
   backoff, and every extra frame is another chance for the crash point to
   fire.  Across the attempt budget the schedule spans well past the
   supervisor's longest backoff pause (capped at 5 s). *)
let attempt_timeout_s = 2.0
let max_attempts = 10
let resend_delay_s ~attempt = Float.min (0.2 *. Float.pow 2. (float_of_int (attempt - 1))) 3.0

let run_rate ~jobs ~rate ~requests ~deadline_s =
  let d = spawn_daemon ~seed:42 ~rate in
  Unix.set_nonblock d.req_w;
  let outbuf = Buffer.create 65536 in
  let flush_client () =
    if Buffer.length outbuf > 0 then begin
      let s = Buffer.contents outbuf in
      match Unix.write_substring d.req_w s 0 (String.length s) with
      | k ->
        Buffer.clear outbuf;
        if k < String.length s then Buffer.add_substring outbuf s k (String.length s - k)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error (Unix.EPIPE, _, _) -> ()
    end
  in
  let reader = Frame.create ~max_frame:(1 lsl 22) in
  let chunk = Bytes.create 65536 in
  let njobs = Array.length jobs in
  (* wire id -> (logical index, send time); logical state arrays. *)
  let inflight : (int, int * float) Hashtbl.t = Hashtbl.create 256 in
  let answered = Array.make requests false in
  let attempts = Array.make requests 0 in
  let next_wire = ref 0 in
  let succeeded = ref 0 and failed = ref 0 and degraded = ref 0 in
  let retries = ref 0 and error_responses = ref 0 and mismatches = ref 0 in
  (* (eligible_at, logical index); kept unsorted, scanned each loop — a
     few hundred items at most. *)
  let pending = ref (List.init requests (fun k -> (0., k))) in
  let send k =
    let id = !next_wire in
    incr next_wire;
    Hashtbl.replace inflight id (k, now ());
    attempts.(k) <- attempts.(k) + 1;
    if attempts.(k) > 1 then incr retries;
    Buffer.add_string outbuf (Printf.sprintf "{\"id\":%d,%s\n" id jobs.(k mod njobs).frame_suffix)
  in
  let requeue k =
    if not answered.(k) then
      if attempts.(k) >= max_attempts then begin
        answered.(k) <- true;
        incr failed
      end
      else pending := (now () +. resend_delay_s ~attempt:attempts.(k), k) :: !pending
  in
  let stats = ref Json.Null in
  let handle_frame f =
    match Json.parse f with
    | exception Json.Parse_error _ -> ()
    | j ->
      let sfield n = Option.bind (Json.member n j) Json.to_string_opt in
      if sfield "op" = Some "stats" then
        stats := Option.value (Json.member "stats" j) ~default:Json.Null
      else begin
        match Option.bind (Json.member "id" j) Json.to_int_opt with
        | None -> ()
        | Some id -> (
          match Hashtbl.find_opt inflight id with
          | None -> ()
          | Some (k, _) ->
            Hashtbl.remove inflight id;
            if not answered.(k) then begin
              match sfield "status" with
              | Some "ok" ->
                answered.(k) <- true;
                incr succeeded;
                let tier = sfield "degraded" in
                if tier <> None then incr degraded
                else begin
                  match sfield "program" with
                  | Some p
                    when Digest.to_hex (Digest.string p) <> jobs.(k mod njobs).expected_digest ->
                    incr mismatches
                  | Some _ -> ()
                  | None -> incr mismatches
                end
              | _ ->
                incr error_responses;
                requeue k
            end)
      end
  in
  let read_available () =
    match Unix.read d.resp_r chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      List.iter
        (function Frame.Frame f -> handle_frame f | Frame.Oversized _ -> ())
        (Frame.feed reader chunk n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  let expire_timeouts () =
    let t = now () in
    let dead =
      Hashtbl.fold
        (fun id (k, sent) acc -> if t -. sent > attempt_timeout_s then (id, k) :: acc else acc)
        inflight []
    in
    List.iter
      (fun (id, k) ->
        Hashtbl.remove inflight id;
        requeue k)
      dead
  in
  let t0 = now () in
  let done_count () = !succeeded + !failed in
  let window = 64 in
  while done_count () < requests && now () -. t0 < deadline_s do
    let t = now () in
    let ready, later = List.partition (fun (at, _) -> at <= t) !pending in
    let slots = max 0 (window - Hashtbl.length inflight) in
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | rest -> List.iter (fun e -> pending := e :: !pending) rest; []
    in
    pending := later;
    List.iter (fun (_, k) -> send k) (take slots ready);
    flush_client ();
    let wfds = if Buffer.length outbuf > 0 then [ d.req_w ] else [] in
    (match Unix.select [ d.resp_r ] wfds [] 0.05 with
    | rs, ws, _ ->
      if ws <> [] then flush_client ();
      if rs <> [] then read_available ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    expire_timeouts ()
  done;
  (* Anything still unanswered at the overall deadline is a failure. *)
  Array.iteri
    (fun k a ->
      if not a then begin
        answered.(k) <- true;
        incr failed
      end)
    answered;
  let wall_s = now () -. t0 in
  (* Final stats frame: the last child loaded the shared state file, so its
     registry carries the supervisor's restart counters.  Resent
     periodically — the frame itself can be lost to a crash or land during
     a restart backoff. *)
  let stats_deadline = now () +. 20. in
  let next_stats_send = ref 0. in
  while !stats = Json.Null && now () < stats_deadline do
    if now () >= !next_stats_send then begin
      Buffer.add_string outbuf "{\"id\":-1,\"op\":\"stats\"}\n";
      next_stats_send := now () +. 2.
    end;
    flush_client ();
    let wfds = if Buffer.length outbuf > 0 then [ d.req_w ] else [] in
    match Unix.select [ d.resp_r ] wfds [] 0.05 with
    | rs, ws, _ ->
      if ws <> [] then flush_client ();
      if rs <> [] then read_available ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  let restarts =
    match
      Option.bind
        (Option.bind (Json.member "counters" !stats) (Json.member "supervisor.restarts_total"))
        Json.to_int_opt
    with
    | Some n -> n
    | None -> 0
  in
  stop_daemon d;
  {
    rate;
    requests;
    succeeded = !succeeded;
    failed = !failed;
    degraded = !degraded;
    retries = !retries;
    restarts;
    error_responses = !error_responses;
    digest_mismatches = !mismatches;
    wall_s;
    availability = float_of_int !succeeded /. float_of_int requests;
  }

(* ---- reporting ---- *)

let print_rows rows =
  let t =
    Table.create
      [
        "fault rate"; "requests"; "ok"; "failed"; "degraded"; "retries"; "restarts"; "availability";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Printf.sprintf "%.0f%%" (r.rate *. 100.);
          Table.cell_int r.requests;
          Table.cell_int r.succeeded;
          Table.cell_int r.failed;
          Table.cell_int r.degraded;
          Table.cell_int r.retries;
          Table.cell_int r.restarts;
          Printf.sprintf "%.2f%%" (r.availability *. 100.);
        ])
    rows;
  Table.print t

let json_of_rate r =
  Json.Obj
    [
      ("fault_rate", Json.Float r.rate);
      ("requests", Json.Int r.requests);
      ("succeeded", Json.Int r.succeeded);
      ("failed", Json.Int r.failed);
      ("degraded", Json.Int r.degraded);
      ("degraded_fraction", Json.Float (float_of_int r.degraded /. float_of_int r.requests));
      ("retries", Json.Int r.retries);
      ("supervisor_restarts", Json.Int r.restarts);
      ("error_responses", Json.Int r.error_responses);
      ("digest_mismatches", Json.Int r.digest_mismatches);
      ("wall_s", Json.Float r.wall_s);
      ("availability", Json.Float r.availability);
    ]

let emit_json ?(path = "BENCH_chaos.json") ~corpus rows =
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "chaos");
        ( "benchmark",
          Json.String
            "supervised lcmopt serve --stdio under injected faults (crash + engine panic/alloc), \
             resilient client with per-request retry" );
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("corpus", Json.String corpus);
        ("chaos_seed", Json.Int 42);
        ( "fault_mix",
          Json.String "daemon.crash=r/10, engine.panic=r, engine.alloc=r (r = fault_rate)" );
        ("digest_match", Json.Bool (List.for_all (fun r -> r.digest_mismatches = 0) rows));
        ("rates", Json.List (List.map json_of_rate rows));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Common.note "wrote %s" path

let corpus_spec ~quick = if quick then [ (30, 8) ] else [ (40, 24) ]

let corpus_name ~quick =
  String.concat "+"
    (List.map (fun (b, c) -> Printf.sprintf "%dx%d-block" c b) (corpus_spec ~quick))

let run_mode ~quick () =
  Common.section
    (if quick then "EXP-CHAOS  Supervised daemon under injected faults (quick smoke run)"
     else "EXP-CHAOS  Supervised daemon under injected faults: availability and degradation");
  let jobs = prepare_jobs (Corpus.generate (corpus_spec ~quick)) in
  let loads =
    if quick then [ (0.05, 100, 60.) ]
    else [ (0.0, 400, 120.); (0.01, 400, 150.); (0.05, 400, 180.); (0.10, 400, 240.) ]
  in
  let rows =
    List.map
      (fun (rate, requests, deadline_s) ->
        Common.note "fault rate %.0f%% (%d requests)..." (rate *. 100.) requests;
        run_rate ~jobs ~rate ~requests ~deadline_s)
      loads
  in
  print_rows rows;
  let mism = List.fold_left (fun acc r -> acc + r.digest_mismatches) 0 rows in
  Common.note "digest cross-check of non-degraded responses vs in-process lcm-edge: %s"
    (if mism = 0 then "bit-identical" else Printf.sprintf "%d MISMATCHES" mism);
  if mism > 0 then exit 1;
  (* The availability floor at 5% faults is a hard requirement, not a
     reported number. *)
  List.iter
    (fun r ->
      if r.rate <= 0.05 +. 1e-9 && r.availability < 0.99 then begin
        Common.note "FAIL: availability %.2f%% < 99%% at fault rate %.0f%%"
          (r.availability *. 100.) (r.rate *. 100.);
        exit 1
      end)
    rows;
  if not quick then emit_json ~corpus:(corpus_name ~quick) rows;
  Common.note
    "availability = logical requests that got an ok within %d attempts (%.0fs per-attempt \
     timeout); degraded responses carry degraded:<tier> and fall back to sequential or identity \
     execution instead of erroring."
    max_attempts attempt_timeout_s

let run () = run_mode ~quick:false ()
let run_quick () = run_mode ~quick:true ()
