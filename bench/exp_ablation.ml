(* EXP-A1: the isolation analysis (LCM vs ALCM);
   EXP-A2: a-priori critical-edge splitting vs on-demand edge blocks. *)

module Table = Lcm_support.Table
module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Granulate = Lcm_cfg.Granulate
module Edge_split = Lcm_cfg.Edge_split
module Lcm_node = Lcm_core.Lcm_node
module Lcm_edge = Lcm_core.Lcm_edge
module Transform = Lcm_core.Transform
module Registry = Lcm_eval.Registry
module Suites = Lcm_eval.Suites
module Oracle = Lcm_eval.Oracle
module Metrics = Lcm_eval.Metrics

let count_bits sets = List.fold_left (fun acc (_, set) -> acc + Bitvec.count set) 0 sets

(* EXP-A1: what the isolation analysis buys. *)
let a1 () =
  Common.section "EXP-A1  Ablating the isolation analysis: ALCM vs LCM (node forms)";
  let t =
    Table.create
      [
        "workload";
        "alcm inserts"; "lcm inserts";
        "alcm rewrites"; "lcm rewrites";
        "alcm lifetime"; "lcm lifetime";
      ]
  in
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let pre = Edge_split.split_join_edges (Granulate.run g) in
      let a = Lcm_node.analyze pre in
      let spec_a = Lcm_node.spec pre a Lcm_node.Alcm in
      let spec_l = Lcm_node.spec pre a Lcm_node.Lcm in
      let alcm = Common.run_algorithm "alcm-node" g in
      let lcm = Common.run_algorithm "lcm-node" g in
      let lifetime h = Metrics.temp_lifetime h ~temps:(Registry.new_temps ~original:pre ~transformed:h) in
      Table.add_row t
        [
          w.Suites.name;
          Table.cell_int (count_bits spec_a.Transform.entry_inserts);
          Table.cell_int (count_bits spec_l.Transform.entry_inserts);
          Table.cell_int (count_bits spec_a.Transform.deletes);
          Table.cell_int (count_bits spec_l.Transform.deletes);
          Table.cell_int (lifetime alcm);
          Table.cell_int (lifetime lcm);
        ])
    Suites.all;
  Table.print t;
  Common.note
    "Isolated insertions initialize a temporary that only one adjacent computation would read; \
     LCM's isolation pass suppresses them, so its insert/rewrite counts and lifetimes are never \
     larger than ALCM's."

(* EXP-A2: pre-splitting critical edges changes nothing about the result
   but adds blocks up front. *)
let a2 () =
  Common.section "EXP-A2  Critical-edge pre-splitting vs on-demand insertion blocks";
  let t =
    Table.create
      [
        "workload"; "critical edges";
        "blocks (on-demand)"; "blocks (pre-split)";
        "same path counts";
      ]
  in
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let pool = Cfg.candidate_pool g in
      let ondemand, _ = Lcm_edge.transform g in
      let presplit_input = Edge_split.split_critical_edges g in
      let presplit, _ = Lcm_edge.transform presplit_input in
      let critical = List.length (List.filter (Cfg.is_critical_edge g) (Cfg.edges g)) in
      let same =
        match
          ( Oracle.computations_leq ~pool ondemand presplit,
            Oracle.computations_leq ~pool presplit ondemand )
        with
        | Ok (), Ok () -> true
        | Error _, _ | _, Error _ -> false
      in
      Table.add_row t
        [
          w.Suites.name;
          Table.cell_int critical;
          Table.cell_int (Cfg.num_blocks ondemand);
          Table.cell_int (Cfg.num_blocks presplit);
          Table.cell_bool same;
        ])
    Suites.all;
  Table.print t;
  Common.note
    "Both strategies produce path-count-identical code; pre-splitting pays for blocks on edges \
     that never receive an insertion."

let run () =
  a1 ();
  a2 ()
