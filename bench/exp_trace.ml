(* EXP-TRACE: cost of the observability layer, and end-to-end trace
   reconstruction across client retries.

   Two questions, answered in one experiment:

   1. What does tracing cost?  The lcm-edge pipeline runs over random CFGs
      at three sizes, alternating between collection disabled (the
      production state: every probe is one atomic load) and enabled (every
      solve/pass/request span recorded and drained into a profile).  The
      requirement is < 3% overhead at p95 with tracing ON; the disabled
      probe is also microbenchmarked directly (ns per probe, expected to
      be nanoseconds — i.e. free).

   2. Does a trace survive the failure path it exists for?  A daemon is
      spawned with --trace-dir and an LCM_CHAOS queue.reject fault chosen
      (deterministically, same PRNG as the daemon) to reject the first
      admission and accept the second.  The client resends under the same
      trace_id — the `lcmopt request --retries` contract — and the
      per-trace Chrome file must then contain one well-formed span forest
      for the whole logical request: both admissions, the rejection, and
      the full LCM cascade of the attempt that ran.

   Full mode writes BENCH_trace.json; --quick (CI) runs one size with few
   iterations plus the retry check, asserting instead of reporting. *)

module Table = Lcm_support.Table
module Fault = Lcm_support.Fault
module Arena = Lcm_support.Arena
module Pool = Lcm_support.Pool
module Cfg = Lcm_cfg.Cfg
module Corpus = Lcm_eval.Corpus
module Registry = Lcm_eval.Registry
module Pass = Lcm_core.Pass
module Trace = Lcm_obs.Trace
module Prof = Lcm_obs.Prof
module Json = Lcm_server.Json
module Frame = Lcm_server.Frame

let now = Unix.gettimeofday

(* ---- overhead: traced vs disabled ---- *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (Float.of_int n *. q)))

type size_result = {
  blocks : int;
  iters : int;
  off_p50_ms : float;
  off_p95_ms : float;
  on_p50_ms : float;
  on_p95_ms : float;
  spans_per_run : int;
  prof : Prof.t;  (* per-phase breakdown accumulated over the traced runs *)
  alloc_heap_w : float;  (* words/request, historical heap path *)
  alloc_arena_w : float;  (* words/request, arena path (serving steady state) *)
  alloc_analyze_heap_w : float;  (* words per LCM cascade (analyze), heap path *)
  alloc_analyze_arena_w : float;  (* words per LCM cascade (analyze), arena path *)
  arena_misses_delta : int;  (* pool misses across the measured window; 0 = warm *)
  prof_arena : Prof.t;  (* per-phase breakdown of traced arena-backed runs *)
}

let overhead_p95 r = (r.on_p95_ms /. r.off_p95_ms) -. 1.
let word_bytes = float_of_int (Sys.word_size / 8)

(* Steady-state allocation per request: warm first (arena pools fill on the
   first requests of a shape), then measure a window of repeats.  The
   [Gc.minor] fences matter: in native code [Gc.allocated_bytes] under-counts
   in-flight minor allocation between collections and trues up in large
   lumps when one fires, so small per-request numbers read without the
   fences are noise. *)
let alloc_per_request ~warm ~iters run =
  for _ = 1 to warm do
    run ()
  done;
  Gc.minor ();
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to iters do
    run ()
  done;
  Gc.minor ();
  (Gc.allocated_bytes () -. a0) /. float_of_int iters /. word_bytes

(* Per-request alloc words of one profiled phase; None when absent. *)
let phase_alloc prof name =
  List.find_opt (fun (r : Prof.row) -> r.Prof.name = name) (Prof.rows prof)
  |> Option.map (fun (r : Prof.row) ->
         if r.Prof.count = 0 then 0. else r.Prof.alloc_w /. float_of_int r.Prof.count)

(* One timed run of the lcm-edge pipeline.  The graph is re-parsed from
   nothing each iteration?  No — the pipeline copies internally; running
   on the same input repeatedly is what the daemon does under load. *)
let measure_size ~blocks ~iters =
  let job = List.hd (Corpus.generate ~seed:(1000 + blocks) [ (blocks, 1) ]) in
  let g = job.Corpus.graph in
  let pipeline = (Option.get (Registry.find "lcm-edge")).Registry.pipeline in
  let run () = ignore (Pass.Pipeline.run_graph Pass.default_ctx pipeline g) in
  let prof = Prof.create () in
  let spans_per_run = ref 0 in
  (* The timed region is the request's compute path: span recording is in
     it, draining and profile folding are not — the daemon collects a
     request's spans after its response frame is sent. *)
  let collect i =
    let spans = Trace.drain () in
    if i = 0 then spans_per_run := List.length spans;
    Prof.add prof spans
  in
  let traced_run i =
    Trace.in_trace ~trace_id:(Printf.sprintf "bench-%d" i) "request" run
  in
  (* Warmup both paths, then alternate off/on rounds so drift (GC state,
     frequency scaling) lands on both sides equally. *)
  Trace.disable ();
  for _ = 1 to 3 do run () done;
  Trace.enable ();
  for i = 1 to 3 do
    traced_run (-i);
    collect (-i)
  done;
  let off = Array.make iters 0. and on = Array.make iters 0. in
  for i = 0 to iters - 1 do
    Trace.disable ();
    let t0 = now () in
    run ();
    off.(i) <- (now () -. t0) *. 1000.;
    Trace.enable ();
    let t1 = now () in
    traced_run i;
    on.(i) <- (now () -. t1) *. 1000.;
    collect i
  done;
  Trace.disable ();
  Array.sort compare off;
  Array.sort compare on;
  (* ---- steady-state allocation: heap path vs arena (serving) path ----
     The arena run is exactly what the engine does per admitted request:
     check a scratch arena out for the graph's shape class, thread it
     through the pipeline, reset on the way out. *)
  let shape_blocks = Cfg.label_bound g in
  let shape_exprs = Lcm_ir.Expr_pool.size (Cfg.candidate_pool g) in
  let arena_run () =
    Pool.Scratch.with_arena ~blocks:shape_blocks ~exprs:shape_exprs (fun a ->
        ignore
          (Pass.Pipeline.run_graph { Pass.default_ctx with Pass.scratch = Some a } pipeline g))
  in
  let alloc_iters = max 10 (iters / 4) in
  let alloc_heap_w = alloc_per_request ~warm:2 ~iters:alloc_iters run in
  let alloc_arena_w = alloc_per_request ~warm:5 ~iters:alloc_iters arena_run in
  (* The cascade alone (analyze: local predicates, safety systems,
     earliestness, delay, latestness, copies) — the phases the arena exists
     for, and the number the CI allocation budget below pins.  The full
     request above additionally rebuilds the output graph in the transform
     phase, whose allocation is inherently proportional to program size. *)
  let alloc_analyze_heap_w =
    alloc_per_request ~warm:2 ~iters:alloc_iters (fun () -> ignore (Lcm_core.Lcm_edge.analyze g))
  in
  let alloc_analyze_arena_w =
    alloc_per_request ~warm:5 ~iters:alloc_iters (fun () ->
        Pool.Scratch.with_arena ~blocks:shape_blocks ~exprs:shape_exprs (fun a ->
            ignore (Lcm_core.Lcm_edge.analyze ~scratch:a g)))
  in
  let misses0 =
    Pool.Scratch.with_arena ~blocks:shape_blocks ~exprs:shape_exprs (fun a -> Arena.misses a)
  in
  for _ = 1 to 5 do
    arena_run ()
  done;
  let misses1 =
    Pool.Scratch.with_arena ~blocks:shape_blocks ~exprs:shape_exprs (fun a -> Arena.misses a)
  in
  (* Traced arena runs, for the per-phase before/after breakdown (and the
     CI allocation budget on pass.lcm-edge). *)
  let prof_arena = Prof.create () in
  Trace.enable ();
  for i = 1 to 5 do
    Trace.in_trace ~trace_id:(Printf.sprintf "bench-arena-%d" i) "request" arena_run;
    Prof.add prof_arena (Trace.drain ())
  done;
  Trace.disable ();
  {
    blocks;
    iters;
    off_p50_ms = percentile off 0.5;
    off_p95_ms = percentile off 0.95;
    on_p50_ms = percentile on 0.5;
    on_p95_ms = percentile on 0.95;
    spans_per_run = !spans_per_run;
    prof;
    alloc_heap_w;
    alloc_arena_w;
    alloc_analyze_heap_w;
    alloc_analyze_arena_w;
    arena_misses_delta = misses1 - misses0;
    prof_arena;
  }

let disabled_probe_ns () =
  Trace.disable ();
  let n = 1_000_000 in
  (* Subtract the cost of the loop + closure call itself so the number is
     the probe, not the harness. *)
  let sink = ref 0 in
  let f () = incr sink in
  let t0 = now () in
  for _ = 1 to n do
    f ()
  done;
  let base = now () -. t0 in
  let t1 = now () in
  for _ = 1 to n do
    Trace.span "noop" f
  done;
  let probed = now () -. t1 in
  Float.max 0. ((probed -. base) *. 1e9 /. float_of_int n)

(* ---- retry-crossing trace through a --trace-dir daemon ---- *)

let resolve_exe () =
  match Sys.getenv_opt "LCMOPT_EXE" with
  | Some p -> p
  | None ->
    let d = Filename.dirname Sys.executable_name in
    Filename.concat (Filename.concat (Filename.dirname d) "bin") "lcmopt.exe"

(* Fault decisions are a pure function of (seed, point, occurrence), so we
   can pick — in-process, with the same PRNG the daemon will use — a seed
   whose queue.reject fires on the first admission and not the second. *)
let pick_reject_seed () =
  let rec go s =
    if s > 10_000 then failwith "exp_trace: no reject-then-accept seed in 10k tries"
    else begin
      Fault.configure ~seed:s [ ("queue.reject", 0.5) ];
      let first = Fault.fire "queue.reject" in
      let second = Fault.fire "queue.reject" in
      if first && not second then s else go (s + 1)
    end
  in
  let s = go 1 in
  Fault.disable ();
  s

let rec mkdtemp () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "lcm-trace-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  match Unix.mkdir d 0o700 with
  | () -> d
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> mkdtemp ()

let read_frame fd reader =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> None
    | n -> (
      match
        List.filter_map (function Frame.Frame f -> Some f | Frame.Oversized _ -> None)
          (Frame.feed reader chunk n)
      with
      | f :: _ -> Some f
      | [] -> go ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

type retry_result = {
  attempts : int;
  events : int;
  roots : int;
  admissions : int;
  well_formed : bool;
  one_trace : bool;
  cascade_present : bool;
}

let cascade_spans = [ "lcm.down_safety"; "lcm.earliest"; "lcm.delay"; "lcm.latest" ]

let run_retry_trace () =
  let exe = resolve_exe () in
  if not (Sys.file_exists exe) then begin
    Printf.eprintf "exp_trace: daemon binary not found at %s (set LCMOPT_EXE)\n" exe;
    exit 1
  end;
  let seed = pick_reject_seed () in
  let dir = mkdtemp () in
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let env =
    Array.append (Unix.environment ())
      [| Printf.sprintf "LCM_CHAOS=%d:queue.reject=0.5" seed |]
  in
  let pid =
    Unix.create_process_env exe
      [| exe; "serve"; "--stdio"; "--quiet"; "--trace-dir"; dir |]
      env req_r resp_w Unix.stderr
  in
  Unix.close req_r;
  Unix.close resp_w;
  let job = List.hd (Corpus.generate ~seed:7 [ (60, 1) ]) in
  let program = Cfg.to_string job.Corpus.graph in
  let reader = Frame.create ~max_frame:(1 lsl 22) in
  let trace_id = "bench-retry" in
  let send id =
    let frame =
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Int id);
             ("trace_id", Json.String trace_id);
             ("op", Json.String "run");
             ("format", Json.String "cfg");
             ("program", Json.String program);
           ])
      ^ "\n"
    in
    ignore (Unix.write_substring req_w frame 0 (String.length frame))
  in
  (* Resend on a retryable error under the SAME trace_id — the client
     retry contract whose span forest we are about to assert on. *)
  let rec attempt id tries =
    if tries > 10 then failwith "exp_trace: request never accepted in 10 attempts";
    send id;
    match read_frame resp_r reader with
    | None -> failwith "exp_trace: daemon closed the pipe without responding"
    | Some f -> (
      let j = Json.parse f in
      match Option.bind (Json.member "status" j) Json.to_string_opt with
      | Some "ok" -> tries
      | _ -> attempt (id + 1) (tries + 1))
  in
  let attempts = attempt 1 1 in
  (* EOF drains the daemon; finish() flushes every buffered span. *)
  Unix.close req_w;
  ignore (Unix.waitpid [] pid);
  Unix.close resp_r;
  let path = Filename.concat dir (trace_id ^ ".trace.json") in
  let content =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (* The file is a legal-but-unterminated Chrome JSON array (that is what
     makes it appendable across retries and restarts); terminate it. *)
  let events =
    match Json.parse (content ^ "null]") with
    | Json.List l -> List.filter (fun e -> e <> Json.Null) l
    | _ -> failwith "exp_trace: trace file is not a JSON array"
  in
  let arg name e = Json.member name (Option.value (Json.member "args" e) ~default:Json.Null) in
  let ids =
    List.filter_map (fun e -> Option.bind (arg "span_id" e) Json.to_int_opt) events
  in
  let names =
    List.filter_map (fun e -> Option.bind (Json.member "name" e) Json.to_string_opt) events
  in
  let parents =
    List.filter_map (fun e -> Option.bind (arg "parent_id" e) Json.to_int_opt) events
  in
  let well_formed =
    List.length ids = List.length events
    && List.for_all (fun p -> p = -1 || List.mem p ids) parents
  in
  let one_trace =
    List.for_all
      (fun e -> Option.bind (arg "trace_id" e) Json.to_string_opt = Some trace_id)
      events
  in
  (* Clean up the temp dir (the daemon also wrote daemon.trace.json for
     its frame I/O spans). *)
  Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ()) (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  {
    attempts;
    events = List.length events;
    roots = List.length (List.filter (fun p -> p = -1) parents);
    admissions = List.length (List.filter (String.equal "daemon.admission") names);
    well_formed;
    one_trace;
    cascade_present =
      List.for_all (fun c -> List.mem c names) cascade_spans && List.mem "request" names;
  }

(* ---- reporting ---- *)

let print_rows rows =
  let t =
    Table.create
      [ "blocks"; "iters"; "off p50"; "off p95"; "on p50"; "on p95"; "p95 overhead"; "spans/run" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_int r.blocks;
          Table.cell_int r.iters;
          Printf.sprintf "%.3f ms" r.off_p50_ms;
          Printf.sprintf "%.3f ms" r.off_p95_ms;
          Printf.sprintf "%.3f ms" r.on_p50_ms;
          Printf.sprintf "%.3f ms" r.on_p95_ms;
          Printf.sprintf "%+.2f%%" (overhead_p95 r *. 100.);
          Table.cell_int r.spans_per_run;
        ])
    rows;
  Table.print t

(* Steady-state allocation, heap path vs arena path, with the per-phase
   reduction for the cascade/solver phases the arena exists for. *)
let alloc_phases = [ "pass.lcm-edge"; "solve.avail"; "solve.antic"; "lcm.delay"; "lcm.latest" ]

let print_alloc_rows rows =
  let t =
    Table.create
      [
        "blocks"; "heap w/req"; "arena w/req"; "reduction"; "cascade heap"; "cascade arena";
        "cascade red."; "arena misses";
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_int r.blocks;
          Printf.sprintf "%.0f" r.alloc_heap_w;
          Printf.sprintf "%.0f" r.alloc_arena_w;
          Printf.sprintf "%.1fx" (r.alloc_heap_w /. Float.max 1. r.alloc_arena_w);
          Printf.sprintf "%.0f" r.alloc_analyze_heap_w;
          Printf.sprintf "%.0f" r.alloc_analyze_arena_w;
          Printf.sprintf "%.1fx" (r.alloc_analyze_heap_w /. Float.max 1. r.alloc_analyze_arena_w);
          Table.cell_int r.arena_misses_delta;
        ])
    rows;
  Table.print t;
  List.iter
    (fun r ->
      List.iter
        (fun name ->
          match (phase_alloc r.prof name, phase_alloc r.prof_arena name) with
          | Some heap, Some arena ->
            Common.note "  %4d blocks  %-16s %10.0f -> %8.0f w/req (%.0fx)" r.blocks name heap
              arena
              (heap /. Float.max 1. arena)
          | _ -> ())
        alloc_phases)
    rows

(* ---- CI allocation budget ----

   bench/alloc_budget.json pins arena-path words/request in the quick run.
   A regression (someone reintroduces a per-request allocation on the hot
   path) fails CI; raising the budget is a reviewed change in the same PR
   that justifies it.

   Budget keys:
   - "analyze.arena": the LCM cascade (pass.lcm-edge minus the transform),
     measured directly with GC fences — steady-state size-independent, so
     one tight budget covers every shape.
   - "request.arena": the whole pipeline, transform included — loose (the
     output graph scales with program size), a backstop against gross
     regressions.
   - any other key: matched against the traced per-phase profile (span
     accounting; indicative, coarser than the fenced numbers). *)

let budget_default_path = "bench/alloc_budget.json"

let check_alloc_budget rows =
  let path = Option.value (Sys.getenv_opt "LCM_ALLOC_BUDGET") ~default:budget_default_path in
  if not (Sys.file_exists path) then
    Common.note "no allocation budget at %s; skipping the alloc gate" path
  else begin
    let j =
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Json.parse s
    in
    let budgets =
      match Json.member "budgets" j with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (name, v) -> Option.map (fun b -> (name, b)) (Json.to_float_opt v))
          fields
      | _ -> []
    in
    List.iter
      (fun (name, budget) ->
        List.iter
          (fun r ->
            let got =
              match name with
              | "analyze.arena" -> Some r.alloc_analyze_arena_w
              | "request.arena" -> Some r.alloc_arena_w
              | _ -> phase_alloc r.prof_arena name
            in
            match got with
            | None -> ()
            | Some got ->
              if got > budget then begin
                Common.note
                  "FAIL: %s allocates %.0f words/request at %d blocks, budget is %.0f (%s)" name
                  got r.blocks budget path;
                exit 1
              end
              else
                Common.note "alloc budget ok: %-16s %8.0f <= %8.0f words/request" name got budget)
          rows)
      budgets
  end

let json_of_size r =
  Json.Obj
    [
      ("blocks", Json.Int r.blocks);
      ("iters", Json.Int r.iters);
      ("off_p50_ms", Json.Float r.off_p50_ms);
      ("off_p95_ms", Json.Float r.off_p95_ms);
      ("on_p50_ms", Json.Float r.on_p50_ms);
      ("on_p95_ms", Json.Float r.on_p95_ms);
      ("p95_overhead_pct", Json.Float (overhead_p95 r *. 100.));
      ("spans_per_run", Json.Int r.spans_per_run);
      ("alloc_heap_w_per_req", Json.Float (Float.round r.alloc_heap_w));
      ("alloc_arena_w_per_req", Json.Float (Float.round r.alloc_arena_w));
      ( "alloc_reduction_x",
        Json.Float (Float.round (r.alloc_heap_w /. Float.max 1. r.alloc_arena_w *. 10.) /. 10.) );
      ("alloc_analyze_heap_w_per_req", Json.Float (Float.round r.alloc_analyze_heap_w));
      ("alloc_analyze_arena_w_per_req", Json.Float (Float.round r.alloc_analyze_arena_w));
      ( "alloc_analyze_reduction_x",
        Json.Float
          (Float.round (r.alloc_analyze_heap_w /. Float.max 1. r.alloc_analyze_arena_w *. 10.)
          /. 10.) );
      ("arena_misses_delta", Json.Int r.arena_misses_delta);
      ("phases", Prof.to_json r.prof);
      ("phases_arena", Prof.to_json r.prof_arena);
    ]

let emit_json ?(path = "BENCH_trace.json") ~probe_ns rows retry =
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "trace");
        ( "benchmark",
          Json.String
            "lcm-edge pipeline traced vs disabled (alternating rounds, p95), disabled-probe \
             microbenchmark, and a retry-crossing request reconstructed from a --trace-dir \
             Chrome trace file" );
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("disabled_probe_ns", Json.Float probe_ns);
        ("p95_overhead_under_3pct", Json.Bool (List.for_all (fun r -> overhead_p95 r < 0.03) rows));
        ("sizes", Json.List (List.map json_of_size rows));
        ( "retry_trace",
          Json.Obj
            [
              ("attempts", Json.Int retry.attempts);
              ("retries_crossed", Json.Int (retry.attempts - 1));
              ("events", Json.Int retry.events);
              ("root_spans", Json.Int retry.roots);
              ("admission_spans", Json.Int retry.admissions);
              ("well_formed", Json.Bool retry.well_formed);
              ("single_trace_id", Json.Bool retry.one_trace);
              ("cascade_spans_present", Json.Bool retry.cascade_present);
            ] );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Common.note "wrote %s" path

let assert_retry retry =
  if retry.attempts < 2 then begin
    Common.note "FAIL: request was accepted first try; no retry crossed the trace";
    exit 1
  end;
  if not retry.well_formed then begin
    Common.note "FAIL: span forest has dangling parent ids";
    exit 1
  end;
  if not retry.one_trace then begin
    Common.note "FAIL: foreign trace_id in the per-trace file";
    exit 1
  end;
  if not retry.cascade_present then begin
    Common.note "FAIL: trace is missing the request root or an LCM cascade phase span";
    exit 1
  end;
  if retry.admissions < 2 then begin
    Common.note "FAIL: expected one admission span per attempt, got %d" retry.admissions;
    exit 1
  end

let run_mode ~quick () =
  Common.section
    (if quick then "EXP-TRACE  Observability overhead and retry-crossing traces (quick smoke run)"
     else "EXP-TRACE  Observability overhead and retry-crossing traces");
  let sizes = if quick then [ (100, 30) ] else [ (100, 200); (400, 120); (1000, 80) ] in
  let rows = List.map (fun (blocks, iters) -> measure_size ~blocks ~iters) sizes in
  print_rows rows;
  Common.note "steady-state allocation per request (heap path vs arena path):";
  print_alloc_rows rows;
  check_alloc_budget rows;
  let probe_ns = disabled_probe_ns () in
  Common.note "disabled probe: %.1f ns (one atomic load + branch)" probe_ns;
  Common.note "per-phase breakdown (largest size, traced runs):";
  Format.printf "%a@." Prof.pp (List.nth rows (List.length rows - 1)).prof;
  Common.note "per-phase breakdown (largest size, arena-backed runs):";
  Format.printf "%a@." Prof.pp (List.nth rows (List.length rows - 1)).prof_arena;
  Common.note "retry-crossing trace through `serve --trace-dir` under queue.reject chaos...";
  let retry = run_retry_trace () in
  Common.note
    "logical request: %d attempts, %d retries; trace file: %d events, %d roots, %d admission \
     spans, well-formed=%b, cascade=%b"
    retry.attempts (retry.attempts - 1) retry.events retry.roots retry.admissions
    retry.well_formed retry.cascade_present;
  assert_retry retry;
  if quick then begin
    (* CI gate: a quick run is an assertion, not a report.  The p95 bound
       is asserted only on the full run (quick iteration counts are too
       small for a stable tail); quick still requires the traced path to
       not be catastrophically slower. *)
    List.iter
      (fun r ->
        if overhead_p95 r > 0.25 then begin
          Common.note "FAIL: traced p95 overhead %.1f%% > 25%% in quick mode"
            (overhead_p95 r *. 100.);
          exit 1
        end)
      rows;
    Common.note "quick trace checks passed"
  end
  else emit_json ~probe_ns rows retry

let run () = run_mode ~quick:false ()
let run_quick () = run_mode ~quick:true ()
