(* EXP-P1: where the computations live — candidate evaluations by loop
   depth, before and after motion.  The paper's loop story made visible:
   safe motion drains depth ≥ 1 into depth 0 exactly where down-safety
   allows (do-while bodies, loops with exit uses), and nowhere else. *)

module Table = Lcm_support.Table
module Cfg = Lcm_cfg.Cfg
module Registry = Lcm_eval.Registry
module Suites = Lcm_eval.Suites
module Depth_profile = Lcm_eval.Depth_profile

let fmt_profile p =
  match p.Depth_profile.dynamic_by_depth with
  | None -> "did not terminate"
  | Some arr ->
    String.concat " / " (Array.to_list (Array.map string_of_int arr))

let run () =
  Common.section "EXP-P1  Dynamic evaluations by loop depth (depth 0 / 1 / ...)";
  let algorithms = [ "identity"; "licm"; "lcm-edge" ] in
  let t = Table.create ("workload" :: algorithms) in
  let loopy =
    List.filter
      (fun w ->
        List.mem w.Suites.name
          [
            "loop_invariant"; "guarded_invariant"; "nested_loops"; "loop_with_exit_use";
            "do_while_invariant"; "poly_eval"; "prime_count";
          ])
      Suites.all
  in
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let pool = Cfg.candidate_pool g in
      let envs = Common.workload_envs w in
      let cells =
        List.map
          (fun name ->
            let g' = Common.run_algorithm name g in
            fmt_profile (Depth_profile.collect ~envs ~pool g'))
          algorithms
      in
      Table.add_row t (w.Suites.name :: cells))
    loopy;
  Table.print t;
  Common.note
    "Reading do_while_invariant: the original evaluates everything at depth 1; LCM moves the \
     invariant's evaluations to depth 0 without speculation.  On the plain while loop \
     (loop_invariant) only the speculative licm drains depth 1.  Counts are summed over 10 \
     random runs.";
  Common.note
    "Nested workloads (nested_loops, prime_count) show partial drains at each level: only the \
     down-safe part moves."

let () = ignore Registry.all
