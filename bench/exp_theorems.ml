(* EXP-T1/T2/T3: the paper's three theorems (correctness, computational
   optimality, lifetime optimality) as measured tables. *)

module Table = Lcm_support.Table
module Prng = Lcm_support.Prng
module Cfg = Lcm_cfg.Cfg
module Granulate = Lcm_cfg.Granulate
module Lower = Lcm_cfg.Lower
module Registry = Lcm_eval.Registry
module Suites = Lcm_eval.Suites
module Oracle = Lcm_eval.Oracle
module Metrics = Lcm_eval.Metrics
module Gencfg = Lcm_eval.Gencfg
module Brute = Lcm_eval.Brute
module Trace = Lcm_eval.Trace
module Lcse = Lcm_opt.Lcse

(* EXP-T1: admissibility — semantics preserved, no path executes more
   evaluations (LICM is expected to fail the latter: it speculates). *)
let t1 () =
  Common.section "EXP-T1  Correctness and safety of every transformation on every workload";
  let t = Table.create ("workload" :: List.map (fun (e : Registry.entry) -> e.Registry.name) Registry.all) in
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let pool = Cfg.candidate_pool g in
      let cells =
        List.map
          (fun (e : Registry.entry) ->
            let g' = e.Registry.run g in
            let sem =
              Oracle.semantics ~inputs:w.Suites.inputs (Prng.of_int 97) ~original:g ~transformed:g'
            in
            (* Per-expression path counts for identity-preserving passes;
               per-path totals when copy propagation renames operands. *)
            let safe =
              if e.Registry.preserves_expressions then Oracle.safety ~pool ~original:g g'
              else Oracle.computations_leq ~pool g' g
            in
            match (sem, safe) with
            | Ok (), Ok () -> "sem+safe"
            | Ok (), Error _ -> "sem only"
            | Error _, _ -> "BROKEN")
          Registry.all
      in
      Table.add_row t (w.Suites.name :: cells))
    Suites.all;
  Table.print t;
  Common.note
    "\"sem only\" marks speculative transformations: semantics preserved but some path evaluates \
     more than the original.  Only licm may (and does) show it — the paper's down-safety \
     requirement exists to exclude exactly this.";
  Common.note "Safety is checked per-path over all decision sequences up to length 10."

(* EXP-T2: computational optimality — dynamic evaluation counts. *)
let t2 () =
  Common.section "EXP-T2  Dynamic candidate evaluations (10 random runs per workload; lower is better)";
  let names = List.map (fun (e : Registry.entry) -> e.Registry.name) Registry.all in
  let t = Table.create ("workload" :: names) in
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let pool = Cfg.candidate_pool g in
      let envs = Common.workload_envs w in
      let cells =
        List.map
          (fun (e : Registry.entry) ->
            let g' = e.Registry.run g in
            match Metrics.dynamic_evals ~pool ~envs g' with
            | Some n -> Table.cell_int n
            | None -> "∞")
          Registry.all
      in
      Table.add_row t (w.Suites.name :: cells))
    Suites.all;
  Table.print t;
  Common.note
    "Expected shape: lcm-edge = bcm-edge <= every safe competitor on every row; licm may beat \
     them only by speculating (and pays for it on zero-trip runs)."

(* EXP-T2c: exhaustive optimality on tiny graphs. *)
let t2_brute () =
  Common.section "EXP-T2c  Brute-force check: LCM vs all 2^edges placements (single expression)";
  let trials = 40 in
  let optimal = ref 0 and skipped = ref 0 in
  let rng = Prng.of_int 31337 in
  for _ = 1 to trials do
    let g = fst (Lcse.run (Gencfg.random_single_expr_cfg ~blocks:4 rng)) in
    if Cfg.num_candidate_occurrences g = 0 || List.length (Cfg.edges g) > 10 then incr skipped
    else begin
      let lcm = Common.run_algorithm "lcm-edge" g in
      match Brute.check_computational_optimality ~max_decisions:7 g ~transformed:lcm with
      | Ok () -> incr optimal
      | Error m -> Common.note "counterexample: %s" m
    end
  done;
  let t = Table.create [ "trials"; "skipped (trivial)"; "checked"; "optimal" ] in
  Table.add_row t
    [
      Table.cell_int trials;
      Table.cell_int !skipped;
      Table.cell_int (trials - !skipped);
      Table.cell_int !optimal;
    ];
  Table.print t;
  Common.note "Expected: optimal = checked (no safe placement beats LCM on any path)."

(* EXP-T2d: the critical-edge shape where edge placement beats the
   block-end placement of Morel–Renvoise. *)
let t2_critical () =
  Common.section "EXP-T2d  Critical-edge example: LCM strictly beats Morel-Renvoise";
  let g = Lcm_figures.Critical_edge.graph () in
  let pool = Cfg.candidate_pool g in
  let t = Table.create [ "algorithm"; "evals on path through B"; "evals on skip path"; "insert/delete sets" ] in
  let row name h extra =
    let through = Trace.replay ~pool h [ true ] in
    let skip = Trace.replay ~pool h [ false ] in
    Table.add_row t
      [
        name;
        Table.cell_int (Trace.total through.Trace.eval_counts);
        Table.cell_int (Trace.total skip.Trace.eval_counts);
        extra;
      ]
  in
  row "original" g "";
  let mr = Common.run_algorithm "morel-renvoise" g in
  let mra = Lcm_baselines.Morel_renvoise.analyze g in
  row "morel-renvoise" mr
    (Printf.sprintf "%d inserts, %d deletes" (List.length mra.Lcm_baselines.Morel_renvoise.insert)
       (List.length mra.Lcm_baselines.Morel_renvoise.delete));
  let lcm = Common.run_algorithm "lcm-edge" g in
  let la = Lcm_core.Lcm_edge.analyze g in
  row "lcm-edge" lcm
    (Printf.sprintf "%d inserts, %d deletes" (List.length la.Lcm_core.Lcm_edge.insert)
       (List.length la.Lcm_core.Lcm_edge.delete));
  Table.print t;
  Common.note
    "Morel-Renvoise can only insert at block ends; placing a+b at the end of A would be unsafe \
     for the B arm, so it finds nothing.  LCM inserts on the critical edge (A,D) itself and \
     removes the join's recomputation."

(* EXP-T3: lifetime optimality — temp live ranges under the three paper
   variants. *)
let t3 () =
  Common.section "EXP-T3  Temporary lifetimes: LCM <= ALCM <= BCM (node forms, same granular graph)";
  let t = Table.create [ "workload"; "lcm-node"; "alcm-node"; "bcm-node"; "ordering holds" ] in
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let gran = Granulate.run g in
      let lt name =
        let h = Common.run_algorithm name g in
        Metrics.temp_lifetime h ~temps:(Registry.new_temps ~original:gran ~transformed:h)
      in
      let l = lt "lcm-node" and a = lt "alcm-node" and b = lt "bcm-node" in
      Table.add_row t
        [
          w.Suites.name;
          Table.cell_int l;
          Table.cell_int a;
          Table.cell_int b;
          Table.cell_bool (l <= a && a <= b);
        ])
    Suites.all;
  Table.print t;
  let t2 = Table.create [ "workload"; "lcm-edge lifetime"; "bcm-edge lifetime"; "lcm <= bcm" ] in
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let l = Common.lifetime_of ~original:g (Common.run_algorithm "lcm-edge" g) in
      let b = Common.lifetime_of ~original:g (Common.run_algorithm "bcm-edge" g) in
      Table.add_row t2 [ w.Suites.name; Table.cell_int l; Table.cell_int b; Table.cell_bool (l <= b) ])
    Suites.all;
  Table.print t2

let run () =
  t1 ();
  t2 ();
  t2_brute ();
  t3 ()
