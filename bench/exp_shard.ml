(* EXP-SHARD: the sharded serving tier — scaling, caching, incrementality.

   Three questions, each against `lcmopt serve --stdio --shards N`:

   1. Scaling: aggregate served rps as the worker fleet grows (1/2/4
      shards, result cache off, open-loop offered load well past a single
      worker's capacity).  Every ok response is digest-checked against the
      in-process transformation, so the routing/multiplexing layer is
      proven bit-transparent while it is being stressed.

   2. Cache: a dup-heavy corpus (Corpus.generate ~dup_rate) served once
      each, closed-loop, through the router's content-addressed result
      cache.  Reports the hit ratio and the p50 latency of cache hits vs
      full solves — the paper-ready claim is that a hit costs an order of
      magnitude less than a solve (asserted at >= 5x in full mode).

   3. Incremental: retain a graph, send a pool-preserving `delta`, and
      check the server's incremental re-solve (a) visited strictly fewer
      blocks and transfer applications than the from-scratch solve, and
      (b) produced a program bit-identical to transforming the patched
      graph from scratch in-process.  A second, untimed-validation delta
      against a plain full `run` of the same patched text gives the
      latency advantage of re-solving in place. *)

module Table = Lcm_support.Table
module Cfg = Lcm_cfg.Cfg
module Frontend = Lcm_frontend.Frontend
module Corpus = Lcm_eval.Corpus
module Lcm_edge = Lcm_core.Lcm_edge
module Json = Lcm_server.Json
module Frame = Lcm_server.Frame

(* Wire-text ingestion goes through the frontend registry, exactly like
   the daemon's. *)
let parse_cfg text =
  match Frontend.parse_one Frontend.cfg text with
  | Ok g -> g
  | Error _ -> failwith "canonical cfg text did not re-parse"

let now = Unix.gettimeofday

(* ---- daemon subprocess (same contract as exp_serve) ---- *)

let resolve_exe () =
  match Sys.getenv_opt "LCMOPT_EXE" with
  | Some p -> p
  | None ->
    let d = Filename.dirname Sys.executable_name in
    Filename.concat (Filename.concat (Filename.dirname d) "bin") "lcmopt.exe"

type daemon = { pid : int; req_w : Unix.file_descr; resp_r : Unix.file_descr }

let spawn_daemon ~args =
  let exe = resolve_exe () in
  if not (Sys.file_exists exe) then begin
    Printf.eprintf "exp_shard: daemon binary not found at %s (set LCMOPT_EXE)\n" exe;
    exit 1
  end;
  let req_r, req_w = Unix.pipe ~cloexec:true () in
  let resp_r, resp_w = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process exe
      (Array.of_list ((exe :: [ "serve"; "--stdio"; "--quiet" ]) @ args))
      req_r resp_w Unix.stderr
  in
  Unix.close req_r;
  Unix.close resp_w;
  { pid; req_w; resp_r }

let stop_daemon d =
  (try Unix.close d.req_w with Unix.Unix_error _ -> ());
  (try Unix.close d.resp_r with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] d.pid)

(* ---- closed-loop client (phases 2 and 3) ---- *)

type conn = { d : daemon; reader : Frame.reader; chunk : Bytes.t; mutable inbox : Json.t list }

let connect ~args = { d = spawn_daemon ~args; reader = Frame.create ~max_frame:(1 lsl 22); chunk = Bytes.create 65536; inbox = [] }

let send conn line =
  let line = line ^ "\n" in
  let n = String.length line in
  let k = ref 0 in
  while !k < n do
    k := !k + Unix.write_substring conn.d.req_w line !k (n - !k)
  done

let recv conn =
  let rec pull () =
    match conn.inbox with
    | j :: rest ->
      conn.inbox <- rest;
      j
    | [] ->
      (match Unix.read conn.d.resp_r conn.chunk 0 (Bytes.length conn.chunk) with
      | 0 -> failwith "exp_shard: daemon closed the stream"
      | n ->
        conn.inbox <-
          List.filter_map
            (function Frame.Frame f -> Some (Json.parse f) | Frame.Oversized _ -> None)
            (Frame.feed conn.reader conn.chunk n);
        pull ())
  in
  pull ()

let close conn = stop_daemon conn.d

let sfield j n = Option.bind (Json.member n j) Json.to_string_opt
let ifield j n = Option.bind (Json.member n j) Json.to_int_opt

let fetch_stats conn =
  send conn "{\"id\":-1,\"op\":\"stats\"}";
  let rec wait () =
    let j = recv conn in
    if sfield j "op" = Some "stats" then Option.value (Json.member "stats" j) ~default:Json.Null
    else wait ()
  in
  wait ()

let stat_counter stats name =
  match Option.bind (Json.member "counters" stats) (Json.member name) with
  | Some v -> Option.value (Json.to_int_opt v) ~default:0
  | None -> 0

(* ---- corpus ---- *)

type job = { name : string; text : string; expected_digest : string }

(* The daemon parses the wire text, so the reference transformation starts
   from the same parse (labels are renumbered in print order). *)
let prepare_jobs jobs =
  List.map
    (fun (j : Corpus.job) ->
      let text = Cfg.to_string j.Corpus.graph in
      let g = parse_cfg text in
      {
        name = j.Corpus.name;
        text;
        expected_digest = Digest.to_hex (Digest.string (Cfg.to_string (fst (Lcm_edge.transform g))));
      })
    jobs
  |> Array.of_list

let run_frame ?(retain = false) ~id text =
  Printf.sprintf "{\"id\":%d,\"op\":\"run\",\"format\":\"cfg\"%s,\"program\":%s}" id
    (if retain then ",\"retain\":true" else "")
    (Json.to_string (Json.String text))

(* ---- phase 1: open-loop scaling ---- *)

type scale_result = {
  shards : int;
  requests : int;
  ok : int;
  rejected : int;
  errors : int;
  wall_s : float;
  throughput_rps : float;
  p50_ms : float;
  p99_ms : float;
  mismatches : int;
  routed : (string * int) list;  (** per-worker routed counts from the stats merge *)
}

let quantile sorted q =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* Open-loop driver over the router: requests offered on a fixed schedule
   regardless of completions (buffered client side so neither pipe can
   deadlock), cache disabled so repeats of the cycled corpus are real
   solves and the measured rps is solver throughput, not cache hits. *)
let run_scale ~shards ~jobs ~offered_rps ~requests =
  let d =
    spawn_daemon
      ~args:[ "--shards"; string_of_int shards; "--cache"; "0"; "--workers"; "1"; "--queue"; "64" ]
  in
  Unix.set_nonblock d.req_w;
  let outbuf = Buffer.create 65536 in
  let flush_client () =
    if Buffer.length outbuf > 0 then begin
      let s = Buffer.contents outbuf in
      match Unix.write_substring d.req_w s 0 (String.length s) with
      | k ->
        Buffer.clear outbuf;
        if k < String.length s then Buffer.add_substring outbuf s k (String.length s - k)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    end
  in
  let reader = Frame.create ~max_frame:(1 lsl 22) in
  let chunk = Bytes.create 65536 in
  let njobs = Array.length jobs in
  let send_times = Array.make requests 0. in
  let latencies = ref [] in
  let ok = ref 0 and rejected = ref 0 and errors = ref 0 and completed = ref 0 in
  let mismatches = ref 0 in
  let stats = ref Json.Null in
  let handle_frame f =
    let j = Json.parse f in
    if sfield j "op" = Some "stats" then
      stats := Option.value (Json.member "stats" j) ~default:Json.Null
    else begin
      incr completed;
      (match ifield j "id" with
      | Some id when id >= 0 && id < requests ->
        latencies := ((now () -. send_times.(id)) *. 1000.) :: !latencies
      | _ -> ());
      match sfield j "status" with
      | Some "ok" ->
        incr ok;
        let k = match ifield j "id" with Some id -> id mod njobs | None -> 0 in
        (match sfield j "program" with
        | Some p when Digest.to_hex (Digest.string p) <> jobs.(k).expected_digest -> incr mismatches
        | Some _ -> ()
        | None -> incr mismatches)
      | _ -> if sfield j "code" = Some "overloaded" then incr rejected else incr errors
    end
  in
  let read_available () =
    match Unix.read d.resp_r chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      List.iter
        (function Frame.Frame f -> handle_frame f | Frame.Oversized _ -> ())
        (Frame.feed reader chunk n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  let t0 = now () in
  let sent = ref 0 in
  let stats_sent = ref false in
  while !completed < requests || !stats = Json.Null do
    let t = now () in
    let due = t0 +. (float_of_int !sent /. offered_rps) in
    if !sent < requests && t >= due then begin
      let id = !sent in
      send_times.(id) <- t;
      Buffer.add_string outbuf (run_frame ~id jobs.(id mod njobs).text);
      Buffer.add_char outbuf '\n';
      incr sent
    end
    else begin
      if !sent >= requests && !completed >= requests && not !stats_sent then begin
        Buffer.add_string outbuf "{\"id\":-1,\"op\":\"stats\"}\n";
        stats_sent := true
      end;
      flush_client ();
      let next_send = if !sent < requests then Float.max 0. (due -. t) else 0.05 in
      let wfds = if Buffer.length outbuf > 0 then [ d.req_w ] else [] in
      match Unix.select [ d.resp_r ] wfds [] (Float.min next_send 0.05) with
      | rs, ws, _ ->
        if ws <> [] then flush_client ();
        if rs <> [] then read_available ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    end
  done;
  let wall_s = now () -. t0 in
  stop_daemon d;
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let routed =
    List.init shards (fun w ->
        let name = Printf.sprintf "shard.routed.w%d" w in
        (name, stat_counter !stats name))
  in
  {
    shards;
    requests;
    ok = !ok;
    rejected = !rejected;
    errors = !errors;
    wall_s;
    throughput_rps = float_of_int !ok /. wall_s;
    p50_ms = quantile lat 0.5;
    p99_ms = quantile lat 0.99;
    mismatches = !mismatches;
    routed;
  }

(* ---- phase 2: content-addressed cache on a dup-heavy corpus ---- *)

type cache_result = {
  jobs_sent : int;
  hit_responses : int;
  miss_responses : int;
  hits_counter : int;
  misses_counter : int;
  hit_p50_ms : float;
  miss_p50_ms : float;
  speedup : float;
  cache_mismatches : int;
}

(* Cache economics only show when a solve costs something: 120-block
   graphs put the full-solve p50 well clear of the router's fixed
   per-request overhead (canonicalize + digest + frame I/O), which is
   what a cache hit costs. *)
let run_cache ~quick ~dup_rate =
  let spec = if quick then [ (30, 24) ] else [ (120, 120) ] in
  let jobs = prepare_jobs (Corpus.generate ~dup_rate spec) in
  let conn = connect ~args:[ "--shards"; "2"; "--cache"; "1024"; "--workers"; "1" ] in
  let hit_lat = ref [] and miss_lat = ref [] in
  let hits = ref 0 and misses = ref 0 and mism = ref 0 in
  (* Closed loop, one outstanding request: by the time a duplicate is
     offered its original has completed, so duplicates hit the cache
     proper rather than coalescing onto an in-flight solve. *)
  Array.iteri
    (fun id j ->
      let t0 = now () in
      let resp = recv (send conn (run_frame ~id j.text); conn) in
      let dt = (now () -. t0) *. 1000. in
      (match sfield resp "program" with
      | Some p when Digest.to_hex (Digest.string p) <> j.expected_digest -> incr mism
      | Some _ -> ()
      | None -> incr mism);
      if sfield resp "cache" = Some "hit" then begin
        incr hits;
        hit_lat := dt :: !hit_lat
      end
      else begin
        incr misses;
        miss_lat := dt :: !miss_lat
      end)
    jobs;
  let stats = fetch_stats conn in
  close conn;
  let sorted l =
    let a = Array.of_list l in
    Array.sort compare a;
    a
  in
  let hp50 = quantile (sorted !hit_lat) 0.5 and mp50 = quantile (sorted !miss_lat) 0.5 in
  {
    jobs_sent = Array.length jobs;
    hit_responses = !hits;
    miss_responses = !misses;
    hits_counter = stat_counter stats "cache.hits_total";
    misses_counter = stat_counter stats "cache.misses_total";
    hit_p50_ms = hp50;
    miss_p50_ms = mp50;
    speedup = (if hp50 > 0. then mp50 /. hp50 else 0.);
    cache_mismatches = !mism;
  }

(* ---- phase 3: retain + delta, incremental vs from-scratch ---- *)

(* The canonical text of a retained graph, split into header and blocks so
   a pool-preserving edit can be synthesized: blocks are "B<n>:" headers
   followed by indented lines, the last of which is the terminator. *)
let split_blocks text =
  let lines = String.split_on_char '\n' (String.trim text) in
  match lines with
  | header :: rest ->
    let blocks = ref [] and cur = ref None in
    let flush () = match !cur with Some (n, ls) -> blocks := (n, List.rev ls) :: !blocks; cur := None | None -> () in
    List.iter
      (fun line ->
        if String.length line > 0 && line.[0] = 'B' && String.length (String.trim line) > 1
           && line.[String.length (String.trim line) - 1] = ':' then begin
          flush ();
          cur := Some (String.sub (String.trim line) 0 (String.length (String.trim line) - 1), [])
        end
        else
          match !cur with
          | Some (n, ls) when String.trim line <> "" -> cur := Some (n, String.trim line :: ls)
          | _ -> ())
      rest;
    flush ();
    (header, List.rev !blocks)
  | [] -> failwith "empty program"

(* Find the rhs of some candidate computation in the program: a line of
   the shape "x := a OP b".  Re-computing that rhs into a fresh variable
   changes local bits but not the candidate pool, which is exactly the
   admissibility condition for the incremental re-solve. *)
let find_candidate_rhs blocks =
  let is_binop s =
    match String.index_opt s ':' with
    | Some i when i + 1 < String.length s && s.[i + 1] = '=' ->
      let rhs = String.trim (String.sub s (i + 2) (String.length s - i - 2)) in
      let has op = List.exists (fun p -> p = op) (String.split_on_char ' ' rhs) in
      if has "+" || has "-" || has "*" then Some rhs else None
    | _ -> None
  in
  List.find_map (fun (_, lines) -> List.find_map is_binop lines) blocks

let rebuild header blocks =
  String.concat "\n"
    (header :: List.concat_map (fun (n, ls) -> (n ^ ":") :: List.map (fun l -> "  " ^ l) ls) blocks)
  ^ "\n"

(* Append [instr] to block [bname] (before its terminator); returns the
   patched whole-program text and the edited block's new body (the wire
   `delta` edit replaces the block's instruction list wholesale). *)
let append_instr header blocks bname instr =
  let patched =
    List.map
      (fun (n, ls) ->
        if n = bname then
          match List.rev ls with
          | term :: body_rev -> (n, List.rev (term :: instr :: body_rev))
          | [] -> (n, [ instr ])
        else (n, ls))
      blocks
  in
  let body = match List.assoc_opt bname patched with Some ls -> List.filteri (fun i _ -> i < List.length ls - 1) ls | None -> [] in
  (rebuild header patched, body)

type incr_result = {
  graphs : int;
  incremental : int;  (** deltas the solver took on the incremental path *)
  fewer_visits : int;  (** deltas with visits < full_visits *)
  fewer_blocks : int;  (** deltas with region_blocks < blocks *)
  incr_mismatches : int;  (** client-side digest mismatches vs from-scratch *)
  delta_p50_ms : float;
  full_p50_ms : float;
  mean_region_frac : float;  (** mean region_blocks / blocks over incremental deltas *)
  mean_visit_frac : float;  (** mean visits / full_visits over incremental deltas *)
}

let run_incr ~quick =
  let spec = if quick then [ (30, 4) ] else [ (60, 16) ] in
  let jobs = Corpus.generate ~seed:2207 spec in
  let conn = connect ~args:[ "--shards"; "1"; "--cache"; "0"; "--workers"; "1" ] in
  let incremental = ref 0 and fewer_v = ref 0 and fewer_b = ref 0 and mism = ref 0 in
  let delta_lat = ref [] and full_lat = ref [] in
  let region_fracs = ref [] and visit_fracs = ref [] in
  let graphs = ref 0 in
  List.iteri
    (fun i (j : Corpus.job) ->
      let text = Cfg.to_string j.Corpus.graph in
      (* 1. retain *)
      let resp = recv (send conn (run_frame ~retain:true ~id:(i * 10) text); conn) in
      match (sfield resp "handle", sfield resp "retained_program") with
      | Some handle, Some retained ->
        let header, blocks = split_blocks retained in
        (match find_candidate_rhs blocks with
        | None -> ()  (* no candidate computation to re-use; skip graph *)
        | Some rhs ->
          incr graphs;
          let bname = fst (List.nth blocks (List.length blocks / 2)) in
          (* 2. pool-preserving delta, server-side validation on *)
          let patched1, body1 = append_instr header blocks bname (Printf.sprintf "zq0 := %s" rhs) in
          let edit =
            Json.Obj
              [
                ("block", Json.String bname);
                ("instrs", Json.List (List.map (fun l -> Json.String l) body1));
              ]
          in
          let frame =
            Json.to_string
              (Json.Obj
                 [
                   ("id", Json.Int ((i * 10) + 1));
                   ("op", Json.String "delta");
                   ("handle", Json.String handle);
                   ("edits", Json.List [ edit ]);
                   ("validate", Json.Bool true);
                 ])
          in
          let dresp = recv (send conn frame; conn) in
          if sfield dresp "status" <> Some "ok" then failwith ("delta failed: " ^ Json.to_string dresp);
          let solve = Option.value (Json.member "solve" dresp) ~default:Json.Null in
          let gi n = Option.value (ifield solve n) ~default:0 in
          if sfield solve "mode" = Some "incremental" then begin
            incr incremental;
            let blocks_n = gi "blocks" and region = gi "region_blocks" in
            let visits = gi "visits" and fullv = gi "full_visits" in
            if visits < fullv then incr fewer_v;
            if region < blocks_n then incr fewer_b;
            if blocks_n > 0 then region_fracs := (float_of_int region /. float_of_int blocks_n) :: !region_fracs;
            if fullv > 0 then visit_fracs := (float_of_int visits /. float_of_int fullv) :: !visit_fracs
          end;
          (* client-side cross-check: transform the patched text from scratch *)
          let expected = Cfg.to_string (fst (Lcm_edge.transform (parse_cfg patched1))) in
          (match sfield dresp "program" with
          | Some p when p <> expected -> incr mism
          | Some _ -> ()
          | None -> incr mism);
          (* 3. latency: a second delta without validation, vs a full run of
             the same resulting text *)
          let parsed1 = parse_cfg patched1 in
          let header1, blocks1 = split_blocks (Cfg.to_string parsed1) in
          let patched2, body2 = append_instr header1 blocks1 bname (Printf.sprintf "zq1 := %s" rhs) in
          let edit2 =
            Json.Obj
              [
                ("block", Json.String bname);
                ("instrs", Json.List (List.map (fun l -> Json.String l) body2));
              ]
          in
          let dframe2 =
            Json.to_string
              (Json.Obj
                 [
                   ("id", Json.Int ((i * 10) + 2));
                   ("op", Json.String "delta");
                   ("handle", Json.String handle);
                   ("edits", Json.List [ edit2 ]);
                 ])
          in
          let t0 = now () in
          let d2 = recv (send conn dframe2; conn) in
          let t_delta = (now () -. t0) *. 1000. in
          if sfield d2 "status" = Some "ok" then delta_lat := t_delta :: !delta_lat;
          let t1 = now () in
          let fr = recv (send conn (run_frame ~id:((i * 10) + 3) patched2); conn) in
          let t_full = (now () -. t1) *. 1000. in
          if sfield fr "status" = Some "ok" then full_lat := t_full :: !full_lat;
          (* the delta'd handle and the full run must agree bit-for-bit *)
          (match (sfield d2 "program", sfield fr "program") with
          | Some a, Some b when a <> b -> incr mism
          | _ -> ()))
      | _ -> failwith ("retain failed: " ^ Json.to_string resp))
    jobs;
  close conn;
  let sorted l =
    let a = Array.of_list l in
    Array.sort compare a;
    a
  in
  let mean = function [] -> 0. | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  {
    graphs = !graphs;
    incremental = !incremental;
    fewer_visits = !fewer_v;
    fewer_blocks = !fewer_b;
    incr_mismatches = !mism;
    delta_p50_ms = quantile (sorted !delta_lat) 0.5;
    full_p50_ms = quantile (sorted !full_lat) 0.5;
    mean_region_frac = mean !region_fracs;
    mean_visit_frac = mean !visit_fracs;
  }

(* ---- reporting ---- *)

let print_scale rows =
  let t =
    Table.create
      [ "shards"; "requests"; "ok"; "rejected"; "errors"; "rps served"; "p50 ms"; "p99 ms"; "speedup" ]
  in
  let base = match rows with r :: _ -> r.throughput_rps | [] -> 1. in
  List.iter
    (fun r ->
      Table.add_row t
        [
          Table.cell_int r.shards;
          Table.cell_int r.requests;
          Table.cell_int r.ok;
          Table.cell_int r.rejected;
          Table.cell_int r.errors;
          Printf.sprintf "%.0f" r.throughput_rps;
          Table.cell_float ~decimals:2 r.p50_ms;
          Table.cell_float ~decimals:2 r.p99_ms;
          Printf.sprintf "%.2fx" (r.throughput_rps /. base);
        ])
    rows;
  Table.print t

let json_of_scale r =
  Json.Obj
    [
      ("shards", Json.Int r.shards);
      ("requests", Json.Int r.requests);
      ("ok", Json.Int r.ok);
      ("rejected_overloaded", Json.Int r.rejected);
      ("errors", Json.Int r.errors);
      ("wall_s", Json.Float r.wall_s);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("p50_ms", Json.Float r.p50_ms);
      ("p99_ms", Json.Float r.p99_ms);
      ("digest_mismatches", Json.Int r.mismatches);
      ("routed", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.routed));
    ]

let json_of_cache c =
  Json.Obj
    [
      ("jobs", Json.Int c.jobs_sent);
      ("hit_responses", Json.Int c.hit_responses);
      ("miss_responses", Json.Int c.miss_responses);
      ("router_cache_hits", Json.Int c.hits_counter);
      ("router_cache_misses", Json.Int c.misses_counter);
      ("hit_ratio", Json.Float (float_of_int c.hit_responses /. float_of_int (max 1 c.jobs_sent)));
      ("hit_p50_ms", Json.Float c.hit_p50_ms);
      ("miss_p50_ms", Json.Float c.miss_p50_ms);
      ("hit_speedup", Json.Float c.speedup);
      ("digest_mismatches", Json.Int c.cache_mismatches);
    ]

let json_of_incr r =
  Json.Obj
    [
      ("graphs", Json.Int r.graphs);
      ("incremental_deltas", Json.Int r.incremental);
      ("deltas_with_fewer_visits", Json.Int r.fewer_visits);
      ("deltas_with_smaller_region", Json.Int r.fewer_blocks);
      ("digest_mismatches", Json.Int r.incr_mismatches);
      ("delta_p50_ms", Json.Float r.delta_p50_ms);
      ("full_run_p50_ms", Json.Float r.full_p50_ms);
      ("mean_region_fraction", Json.Float r.mean_region_frac);
      ("mean_visit_fraction", Json.Float r.mean_visit_frac);
    ]

let emit_json ?(path = "BENCH_shard.json") ~scale ~cache ~incr () =
  let doc =
    Json.Obj
      [
        ("experiment", Json.String "shard");
        ( "benchmark",
          Json.String
            "sharded serving: fleet scaling, content-addressed result cache, incremental delta re-solve" );
        ("host_cores", Json.Int (Domain.recommended_domain_count ()));
        ("scaling", Json.List (List.map json_of_scale scale));
        ("cache", json_of_cache cache);
        ("incremental", json_of_incr incr);
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Common.note "wrote %s" path

let run_mode ~quick () =
  Common.section
    (if quick then "EXP-SHARD  Sharded serving (quick smoke run)"
     else "EXP-SHARD  Sharded serving: fleet scaling, result cache, incremental deltas");

  (* 1. scaling *)
  let shard_counts = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let spec = if quick then [ (30, 8) ] else [ (40, 32) ] in
  let jobs = prepare_jobs (Corpus.generate spec) in
  let offered, requests = if quick then (400., 80) else (4000., 4000) in
  let scale =
    List.map
      (fun shards ->
        Common.note "scaling: %d shard(s), offering %.0f rps (%d requests)..." shards offered
          requests;
        run_scale ~shards ~jobs ~offered_rps:offered ~requests)
      shard_counts
  in
  print_scale scale;
  let scale_mism = List.fold_left (fun a r -> a + r.mismatches) 0 scale in
  Common.note "routing digest cross-check: %s"
    (if scale_mism = 0 then "bit-identical across the fleet"
     else Printf.sprintf "%d MISMATCHES" scale_mism);

  (* 2. cache *)
  Common.note "cache: serving a dup-heavy corpus (dup_rate 0.5) through the router cache...";
  let cache = run_cache ~quick ~dup_rate:0.5 in
  Common.note "cache: %d/%d hits (router counters %d/%d), hit p50 %.3f ms vs solve p50 %.3f ms (%.1fx)"
    cache.hit_responses cache.jobs_sent cache.hits_counter cache.misses_counter cache.hit_p50_ms
    cache.miss_p50_ms cache.speedup;

  (* 3. incremental *)
  Common.note "incremental: retain + pool-preserving deltas...";
  let incr_r = run_incr ~quick in
  Common.note
    "incremental: %d/%d deltas on the incremental path; %d visited fewer blocks, %d fewer transfer \
     applications; delta p50 %.3f ms vs full run p50 %.3f ms"
    incr_r.incremental incr_r.graphs incr_r.fewer_blocks incr_r.fewer_visits incr_r.delta_p50_ms
    incr_r.full_p50_ms;

  (* invariants *)
  let fail = ref false in
  if scale_mism > 0 then begin
    Common.note "FAIL: routed responses diverged from in-process transforms";
    fail := true
  end;
  if cache.cache_mismatches > 0 then begin
    Common.note "FAIL: cached responses diverged from in-process transforms";
    fail := true
  end;
  if cache.hit_responses = 0 then begin
    Common.note "FAIL: dup-heavy corpus produced no cache hits";
    fail := true
  end;
  if incr_r.incr_mismatches > 0 then begin
    Common.note "FAIL: incremental re-solve diverged from from-scratch transforms";
    fail := true
  end;
  if incr_r.graphs > 0 && (incr_r.incremental < incr_r.graphs || incr_r.fewer_visits < incr_r.incremental)
  then begin
    Common.note "FAIL: some pool-preserving deltas fell back to full solves or saved no work";
    fail := true
  end;
  if not quick then begin
    if cache.speedup < 5. then begin
      Common.note "FAIL: cache-hit p50 not >= 5x below full-solve p50 (got %.1fx)" cache.speedup;
      fail := true
    end;
    let r1 = List.hd scale and rN = List.nth scale (List.length scale - 1) in
    if rN.throughput_rps < r1.throughput_rps then
      Common.note "note: fleet rps did not exceed single-worker rps on this host"
  end;
  if !fail then exit 1;
  if not quick then emit_json ~scale ~cache ~incr:incr_r ()

let run () = run_mode ~quick:false ()
let run_quick () = run_mode ~quick:true ()
