(* EXP-S1: code-size effects.  PRE trades dynamic computations for static
   code (insertions, copies, split blocks); after the standard cleanup
   pipeline the net size effect is usually small.  This table measures
   instruction and block counts per algorithm, plus what the cleanup
   pipeline reclaims. *)

module Table = Lcm_support.Table
module Cfg = Lcm_cfg.Cfg
module Registry = Lcm_eval.Registry
module Suites = Lcm_eval.Suites
module Cleanup = Lcm_opt.Cleanup

let run () =
  Common.section "EXP-S1  Static code size: instructions (blocks) per algorithm";
  let algorithms = [ "identity"; "gcse"; "morel-renvoise"; "bcm-edge"; "lcm-edge"; "lcm-cleanup" ] in
  let t = Table.create ("workload" :: algorithms) in
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let cells =
        List.map
          (fun name ->
            let g' = Common.run_algorithm name g in
            Printf.sprintf "%d (%d)" (Cfg.num_instrs g') (Cfg.num_blocks g'))
          algorithms
      in
      Table.add_row t (w.Suites.name :: cells))
    Suites.all;
  Table.print t;
  Common.note
    "lcm-cleanup = lcm-edge followed by copy propagation, constant folding, dead-code elimination \
     and block merging; it bounds the real size cost of the transformation.";
  (* What cleanup reclaims from each PRE output. *)
  let t2 =
    Table.create
      [ "workload"; "lcm instrs"; "after cleanup"; "copies propagated"; "instrs removed" ]
  in
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let lcm = Common.run_algorithm "lcm-edge" g in
      let cleaned, stats = Cleanup.run lcm in
      Table.add_row t2
        [
          w.Suites.name;
          Table.cell_int (Cfg.num_instrs lcm);
          Table.cell_int (Cfg.num_instrs cleaned);
          Table.cell_int stats.Cleanup.copies_propagated;
          Table.cell_int stats.Cleanup.instrs_removed;
        ])
    Suites.all;
  Table.print t2;
  ignore Registry.all
