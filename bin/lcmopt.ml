(* lcmopt: command-line driver for the Lazy Code Motion library.

   Subcommands:
     run       parse a program (any registered frontend), run a PRE algorithm
     analyze   print the LCM analysis predicates per block
     interp    interpret a function on given bindings
     list      list available algorithms and named workloads
     formats   list registered program frontends (miniimp, cfg, bril)
     corpus    ingest a directory of programs and optimize each function
     serve     long-lived optimization daemon (JSON-lines; see docs/PROTOCOL.md)
     request   one-shot client for a running daemon

   Exit codes: 0 success; 1 usage, input or request errors; 2 internal
   errors (unexpected exceptions). *)

module Bitvec = Lcm_support.Bitvec
module Table = Lcm_support.Table
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Dot = Lcm_cfg.Dot
module Lower = Lcm_cfg.Lower
module Parser = Lcm_ir.Parser
module Lexer = Lcm_ir.Lexer
module Expr_pool = Lcm_ir.Expr_pool
module Local = Lcm_dataflow.Local
module Avail = Lcm_dataflow.Avail
module Antic = Lcm_dataflow.Antic
module Lcm_edge = Lcm_core.Lcm_edge
module Registry = Lcm_eval.Registry
module Suites = Lcm_eval.Suites
module Interp = Lcm_eval.Interp
module Metrics = Lcm_eval.Metrics
module Frontend = Lcm_frontend.Frontend

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Resolve a frontend: an explicit --format name wins, else the file's
   extension picks one (see `lcmopt formats`), else MiniImp. *)
let resolve_frontend ?path format =
  match format with
  | Some name ->
    (match Frontend.find name with
    | Some fe -> Ok fe
    | None ->
      Error
        (Printf.sprintf "unknown format %S; registered: %s" name (String.concat ", " Frontend.names)))
  | None ->
    Ok
      (match Option.bind path Frontend.of_extension with
      | Some fe -> fe
      | None -> Frontend.default)

(* Load a graph from a source file (any registered frontend) or a named
   workload. *)
let load ?format ~source ~func_name () =
  match source with
  | `Workload name ->
    (match Suites.find name with
    | Some w -> Ok (Suites.graph w)
    | None ->
      Error
        (Printf.sprintf "unknown workload %S; available: %s" name
           (String.concat ", " (List.map (fun w -> w.Suites.name) Suites.all))))
  | `File path ->
    Result.bind (resolve_frontend ~path format) (fun fe ->
        match read_file path with
        | exception Sys_error m -> Error m
        | text ->
          (match Frontend.parse_one fe ?func:func_name text with
          | Ok g -> Ok g
          | Error (Frontend.Parse e) -> Error e.Frontend.message
          | Error (Frontend.Pick m) -> Error m))

(* Print graphs back in the surface syntax they came from, so a `run` over
   a Bril file emits Bril the file's toolchain can consume again.
   Workloads (and resolution failures, which [load] already reported) fall
   back to the canonical CFG text. *)
let printer_of source format =
  match source with
  | `Workload _ -> Cfg.to_string
  | `File path ->
    (match resolve_frontend ~path format with
    | Ok fe -> fe.Frontend.print
    | Error _ -> Cfg.to_string)

let print_stats g =
  let s = Metrics.static_counts g in
  Printf.printf "blocks=%d instrs=%d candidate-occurrences=%d moves=%d max-pressure=%d\n" s.Metrics.blocks
    s.Metrics.instrs s.Metrics.candidate_occurrences s.Metrics.copies_and_moves (Metrics.max_pressure g)

(* ---- run ---- *)

module Pass = Lcm_core.Pass
module Trace = Lcm_obs.Trace
module Prof = Lcm_obs.Prof

let run_cmd source func_name format algorithm simplify dot_path quiet trace_path profile =
  match load ?format ~source ~func_name () with
  | Error m ->
    prerr_endline m;
    1
  | Ok g ->
    (match Registry.find algorithm with
    | None ->
      Printf.eprintf "unknown algorithm %S; see `lcmopt list`\n" algorithm;
      1
    | Some entry ->
      let observing = trace_path <> None || profile in
      if observing then Trace.enable ();
      let pipe =
        if simplify then Pass.Pipeline.append entry.Registry.pipeline [ Pass.simplify ]
        else entry.Registry.pipeline
      in
      let g', _reports =
        Trace.in_trace ~trace_id:(Trace.mint_id ()) "request" (fun () ->
            Pass.Pipeline.run Pass.default_ctx pipe g)
      in
      (if observing then begin
         let spans = Trace.drain () in
         Trace.disable ();
         (match trace_path with
         | Some path ->
           let oc = open_out path in
           output_string oc (Trace.to_chrome spans);
           close_out oc;
           Printf.eprintf "wrote %s (%d spans)\n" path (List.length spans)
         | None -> ());
         if profile then begin
           let p = Prof.create () in
           Prof.add p spans;
           Format.printf "%a@." Prof.pp p
         end
       end);
      if not quiet then begin
        let pp = printer_of source format in
        print_endline "== before ==";
        print_endline (pp g);
        print_endline "== after ==";
        print_endline (pp g')
      end;
      print_string "before: ";
      print_stats g;
      print_string "after:  ";
      print_stats g';
      (match dot_path with
      | Some path ->
        Dot.write_file path g';
        Printf.printf "wrote %s\n" path
      | None -> ());
      0)

(* ---- analyze ---- *)

let analyze_cmd source func_name format =
  match load ?format ~source ~func_name () with
  | Error m ->
    prerr_endline m;
    1
  | Ok g ->
    print_endline (Cfg.to_string g);
    let a = Lcm_edge.analyze g in
    let pool = a.Lcm_edge.pool in
    Printf.printf "\ncandidate expressions:\n";
    Expr_pool.iter (fun i e -> Printf.printf "  [%d] %s\n" i (Lcm_ir.Expr.to_string e)) pool;
    let t =
      Table.create [ "block"; "ANTLOC"; "COMP"; "TRANSP"; "AVIN"; "AVOUT"; "ANTIN"; "ANTOUT"; "LATERIN" ]
    in
    let cell v = Format.asprintf "%a" Bitvec.pp v in
    List.iter
      (fun l ->
        Table.add_row t
          [
            Label.to_string l;
            cell (Local.antloc a.Lcm_edge.local l);
            cell (Local.comp a.Lcm_edge.local l);
            cell (Local.transp a.Lcm_edge.local l);
            cell (a.Lcm_edge.avail.Avail.avin l);
            cell (a.Lcm_edge.avail.Avail.avout l);
            cell (a.Lcm_edge.antic.Antic.antin l);
            cell (a.Lcm_edge.antic.Antic.antout l);
            cell (a.Lcm_edge.laterin l);
          ])
      (Cfg.labels g);
    print_newline ();
    Table.print t;
    let show_edge ((p, b), set) =
      Printf.printf "  %s -> %s : %s\n" (Label.to_string p) (Label.to_string b)
        (Format.asprintf "%a" Bitvec.pp set)
    in
    let show_block (b, set) =
      Printf.printf "  %s : %s\n" (Label.to_string b) (Format.asprintf "%a" Bitvec.pp set)
    in
    print_endline "INSERT (edges):";
    List.iter show_edge a.Lcm_edge.insert;
    print_endline "DELETE (blocks):";
    List.iter show_block a.Lcm_edge.delete;
    print_endline "COPY (blocks):";
    List.iter show_block a.Lcm_edge.copy;
    0

(* ---- ssa ---- *)

let ssa_cmd source func_name format value_number =
  match load ?format ~source ~func_name () with
  | Error m ->
    prerr_endline m;
    1
  | Ok g ->
    let ssa = Lcm_ssa.Ssa.of_cfg g in
    let ssa, stats =
      if value_number then begin
        let ssa', s = Lcm_ssa.Dvnt.run ssa in
        (ssa', Some s)
      end
      else (ssa, None)
    in
    Format.printf "%a@." Lcm_ssa.Ssa.pp ssa;
    Printf.printf "%d phi functions\n" (Lcm_ssa.Ssa.num_phis ssa);
    (match stats with
    | Some s ->
      Printf.printf "dvnt: %d computations replaced, %d phis simplified\n"
        s.Lcm_ssa.Dvnt.exprs_replaced s.Lcm_ssa.Dvnt.phis_simplified
    | None -> ());
    (match Lcm_ssa.Ssa.check ssa with
    | Ok () -> 0
    | Error m ->
      Printf.eprintf "ssa check failed: %s\n" m;
      1)

(* ---- interp ---- *)

let parse_binding s =
  match String.index_opt s '=' with
  | Some i ->
    let name = String.sub s 0 i in
    let value = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt value with
    | Some v -> Ok (name, v)
    | None -> Error (Printf.sprintf "bad binding %S (expected name=int)" s))
  | None -> Error (Printf.sprintf "bad binding %S (expected name=int)" s)

let interp_cmd source func_name format bindings fuel =
  match load ?format ~source ~func_name () with
  | Error m ->
    prerr_endline m;
    1
  | Ok g ->
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest ->
        (match parse_binding s with
        | Ok b -> collect (b :: acc) rest
        | Error m -> Error m)
    in
    (match collect [] bindings with
    | Error m ->
      prerr_endline m;
      1
    | Ok env ->
      let pool = Cfg.candidate_pool g in
      let o = Interp.run ~fuel ~pool ~env g in
      List.iter (fun v -> Printf.printf "print: %d\n" v) o.Interp.prints;
      (match o.Interp.return_value with
      | Some v -> Printf.printf "return: %d\n" v
      | None -> print_endline "return: (none)");
      Printf.printf "candidate evaluations: %d\n" (Interp.total_evals o);
      Printf.printf "instructions executed: %d\n" o.Interp.steps;
      if o.Interp.undefined_reads <> [] then
        Printf.printf "warning: read before write: %s\n" (String.concat ", " o.Interp.undefined_reads);
      if not o.Interp.terminated then begin
        (* Keep the code word stable: scripts and the protocol's
           [fuel_exhausted] error grep for it (fuel ran out, as opposed to a
           wall-clock [deadline] the daemon enforces). *)
        Printf.eprintf
          "error: fuel_exhausted: fuel (%d) spent after %d instructions before reaching the exit \
           (non-terminating input? raise --fuel to allow more steps)\n"
          fuel o.Interp.steps;
        1
      end
      else 0)

(* ---- trace ---- *)

let trace_cmd source func_name format decisions =
  match load ?format ~source ~func_name () with
  | Error m ->
    prerr_endline m;
    1
  | Ok g ->
    let pool = Cfg.candidate_pool g in
    let parse_decisions s =
      let ok = ref true in
      let ds =
        List.filter_map
          (fun c ->
            match c with
            | '0' -> Some false
            | '1' -> Some true
            | _ ->
              ok := false;
              None)
          (List.init (String.length s) (String.get s))
      in
      if !ok then Some ds else None
    in
    (match parse_decisions decisions with
    | None ->
      prerr_endline "decisions must be a string of 0s and 1s (1 = take the then-arm)";
      1
    | Some ds ->
      let r = Lcm_eval.Trace.replay ~pool g ds in
      Printf.printf "path: %s\n"
        (String.concat " -> " (List.map Label.to_string r.Lcm_eval.Trace.blocks));
      Printf.printf "completed: %b\n" r.Lcm_eval.Trace.completed;
      Expr_pool.iter
        (fun i e ->
          if r.Lcm_eval.Trace.eval_counts.(i) > 0 then
            Printf.printf "  %-16s evaluated %d times\n" (Lcm_ir.Expr.to_string e)
              r.Lcm_eval.Trace.eval_counts.(i))
        pool;
      Printf.printf "total candidate evaluations: %d\n" (Lcm_eval.Trace.grand_total r);
      if r.Lcm_eval.Trace.completed then 0 else 1)

(* ---- compare ---- *)

let compare_cmd source func_name format runs fuel =
  match load ?format ~source ~func_name () with
  | Error m ->
    prerr_endline m;
    1
  | Ok g ->
    let pool = Cfg.candidate_pool g in
    let inputs =
      (* Free variables: read somewhere, defined nowhere. *)
      let defined = Hashtbl.create 16 in
      List.iter
        (fun l ->
          List.iter
            (fun i -> Option.iter (fun v -> Hashtbl.replace defined v ()) (Lcm_ir.Instr.defs i))
            (Cfg.instrs g l))
        (Cfg.labels g);
      List.filter (fun v -> not (Hashtbl.mem defined v)) (Cfg.all_vars g)
    in
    let rng = Lcm_support.Prng.of_int 2026 in
    let envs =
      List.init runs (fun _ -> List.map (fun v -> (v, Lcm_support.Prng.int_in rng 0 8)) inputs)
    in
    let t = Table.create [ "algorithm"; "dynamic evals"; "static occurrences"; "instrs"; "blocks" ] in
    List.iter
      (fun (e : Registry.entry) ->
        let g' = e.Registry.run g in
        let evals =
          match Metrics.dynamic_evals ~fuel ~pool ~envs g' with
          | Some n -> string_of_int n
          | None -> Printf.sprintf "did not terminate (within %d fuel)" fuel
        in
        let s = Metrics.static_counts g' in
        Table.add_row t
          [
            e.Registry.name;
            evals;
            string_of_int s.Metrics.candidate_occurrences;
            string_of_int s.Metrics.instrs;
            string_of_int s.Metrics.blocks;
          ])
      Registry.all;
    Printf.printf "inputs: %s (bound randomly over %d runs)\n" (String.concat ", " inputs) runs;
    Table.print t;
    0

(* ---- serve ---- *)

module Daemon = Lcm_server.Daemon
module Protocol = Lcm_server.Protocol
module Frame = Lcm_server.Frame
module Json = Lcm_server.Json
module Supervisor = Lcm_server.Supervisor
module Retry = Lcm_server.Retry
module Router = Lcm_shard.Router

let write_pid_file path =
  try
    let oc = open_out path in
    Printf.fprintf oc "%d\n" (Unix.getpid ());
    close_out oc
  with Sys_error m -> Printf.eprintf "cannot write pid file: %s\n" m

let serve_cmd stdio socket queue batch max_frame deadline_ms workers no_timing quiet supervise
    max_restarts restart_backoff_ms restart_cap_ms state_file pid_file trace_dir shards
    cache_entries state_dir journal_compact =
  match (stdio, socket) with
  | false, None ->
    prerr_endline "serve: provide --stdio or --socket PATH";
    1
  | true, Some _ ->
    prerr_endline "serve: provide either --stdio or --socket, not both";
    1
  | _ ->
    let daemon_cfg ~state_file =
      {
        (Daemon.default_config ()) with
        Daemon.queue_capacity = queue;
        batch_max = batch;
        max_frame;
        default_deadline_ms = deadline_ms;
        workers = (match workers with Some w -> w | None -> Lcm_support.Pool.default_size ());
        no_timing;
        quiet;
        (* A standalone binary may die of chaos (that is what the
           supervisor — or the shard router — is for); in-process daemons
           never get this. *)
        hard_faults = true;
        state_file;
        state_dir;
        journal_compact;
        trace_dir;
      }
    in
    let serve ~state_file () =
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      if shards > 0 then begin
        (* Sharded mode: this process routes; the daemons are its forked
           children.  State files and chaos epochs are per worker, managed
           by the router, so --state-file only names the template's. *)
        let drain = Sys.Signal_handle (fun _ -> Router.request_shutdown ()) in
        Sys.set_signal Sys.sigterm drain;
        Sys.set_signal Sys.sigint drain;
        let rcfg =
          {
            (Router.default_config ()) with
            Router.shards;
            cache_capacity = cache_entries;
            (* The router derives a per-worker journal directory from
               --state-dir; the template's own state_dir is overridden. *)
            state_dir;
            daemon =
              { (daemon_cfg ~state_file:None) with Daemon.quiet = true; state_dir = None };
            quiet;
          }
        in
        match socket with
        | Some path -> Router.serve_unix_socket rcfg ~path
        | None -> Router.serve_fds rcfg ~fd_in:Unix.stdin ~fd_out:Unix.stdout
      end
      else begin
        let drain = Sys.Signal_handle (fun _ -> Daemon.request_shutdown ()) in
        Sys.set_signal Sys.sigterm drain;
        Sys.set_signal Sys.sigint drain;
        let cfg = daemon_cfg ~state_file in
        match socket with
        | Some path -> Daemon.serve_unix_socket cfg ~path
        | None -> Daemon.serve_fds cfg ~fd_in:Unix.stdin ~fd_out:Unix.stdout
      end
    in
    if supervise then begin
      let state_file =
        match state_file with
        | Some s -> s
        | None ->
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "lcmd-%d.state" (Unix.getpid ()))
      in
      let scfg =
        {
          (Supervisor.default_config ~state_file) with
          Supervisor.max_restarts;
          backoff_base_ms = restart_backoff_ms;
          backoff_cap_ms = restart_cap_ms;
          child_pid_file = pid_file;
          quiet;
        }
      in
      Supervisor.run scfg (serve ~state_file:(Some state_file))
    end
    else begin
      Option.iter write_pid_file pid_file;
      serve ~state_file ();
      0
    end

(* ---- request ---- *)

(* Wait until [fd] is readable, or the absolute [deadline] passes. *)
let rec wait_readable fd deadline =
  match deadline with
  | None -> true
  | Some d ->
    let remaining = d -. Unix.gettimeofday () in
    if remaining <= 0. then false
    else (
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> wait_readable fd deadline
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable fd deadline)

let read_response_frame ?deadline fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    if not (wait_readable fd deadline) then `Timeout
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> `Eof
      | n ->
        (match Bytes.index_opt (Bytes.sub chunk 0 n) '\n' with
        | Some i ->
          Buffer.add_subbytes buf chunk 0 i;
          `Frame (Buffer.contents buf)
        | None ->
          Buffer.add_subbytes buf chunk 0 n;
          go ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Eof
  in
  go ()

let request_cmd socket file workload func_name format algorithm simplify workers deadline_ms
    retries backoff_ms timeout_ms op trace_id =
  let build_run () =
    match (file, workload) with
    | Some _, Some _ -> Error "provide either a FILE or --workload, not both"
    | None, None -> Error "provide a FILE or --workload NAME (or use --stats/--ping)"
    | Some path, None ->
      (try
         Result.map
           (fun fe ->
             [
               ("program", Json.String (read_file path));
               ("format", Json.String fe.Frontend.name);
             ]
             @ (match func_name with Some f -> [ ("function", Json.String f) ] | None -> []))
           (resolve_frontend ~path format)
       with Sys_error m -> Error m)
    | None, Some w ->
      (match Suites.find w with
      | Some w ->
        Ok
          [
            ("program", Json.String (Lcm_cfg.Cfg_text.to_string (Suites.graph w)));
            ("format", Json.String "cfg");
          ]
      | None ->
        Error
          (Printf.sprintf "unknown workload %S; available: %s" w
             (String.concat ", " (List.map (fun w -> w.Suites.name) Suites.all))))
  in
  let fields =
    match op with
    | `Stats -> Ok [ ("op", Json.String "stats") ]
    | `Ping -> Ok [ ("op", Json.String "ping") ]
    | `Profile -> Ok [ ("op", Json.String "profile") ]
    | `Run ->
      Result.map
        (fun body ->
          [ ("op", Json.String "run"); ("algorithm", Json.String algorithm) ]
          @ body
          @ (if simplify then [ ("simplify", Json.Bool true) ] else [])
          @ match workers with Some w -> [ ("workers", Json.Int w) ] | None -> [])
        (build_run ())
  in
  match fields with
  | Error m ->
    prerr_endline m;
    1
  | Ok fields ->
    (* One trace id for the whole command: every retry reuses it, so a
       request that crosses retries (and daemon restarts) reconstructs as
       one span tree in the daemon's --trace-dir file. *)
    let tid =
      match trace_id with Some t -> t | None -> Printf.sprintf "cli-%d" (Unix.getpid ())
    in
    let fields =
      [ ("id", Json.Int (Unix.getpid ())); ("trace_id", Json.String tid) ]
      @ fields
      @ match deadline_ms with Some d -> [ ("deadline_ms", Json.Float d) ] | None -> []
    in
    let frame_str = Json.to_string (Json.Obj fields) in
    (* The daemon may vanish between connect and write; that must be a
       retryable error on this side, not a SIGPIPE death. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let policy =
      {
        Retry.retries;
        base_ms = backoff_ms;
        cap_ms = Float.max backoff_ms 5000.;
        budget_ms = timeout_ms;
      }
    in
    let rng = Lcm_support.Prng.of_int (Unix.getpid ()) in
    let start = Unix.gettimeofday () in
    let deadline_abs = Option.map (fun b -> start +. (b /. 1000.)) timeout_ms in
    (* One attempt: connect, send, wait for the response line.  [`Transient]
       covers failures a healthy daemon would not produce (connection
       refused, closed mid-exchange) — worth retrying against a supervised
       daemon that is restarting.  A typed [overloaded]/[shutting_down]
       response is retryable by contract; other error responses are final. *)
    let attempt_once () =
      match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error (e, _, _) -> `Transient (Unix.error_message e)
      | fd ->
        Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        @@ fun () ->
        (match Unix.connect fd (Unix.ADDR_UNIX socket) with
        | exception Unix.Unix_error (e, _, _) ->
          `Transient
            (Printf.sprintf "cannot connect to %s: %s (is `lcmopt serve` running?)" socket
               (Unix.error_message e))
        | () ->
          (match Frame.write_frame fd frame_str with
          | exception Unix.Unix_error (e, _, _) -> `Transient ("send failed: " ^ Unix.error_message e)
          | () ->
            (match read_response_frame ?deadline:deadline_abs fd with
            | `Timeout -> `Timeout
            | `Eof -> `Transient "daemon closed the connection without a response"
            | `Frame frame ->
              (match Json.member "status" (Json.parse frame) with
              | Some (Json.String "ok") -> `Ok frame
              | _ ->
                let code =
                  match Json.member "code" (Json.parse frame) with
                  | Some (Json.String c) -> c
                  | _ -> ""
                in
                if Retry.retryable_code code then `Server_retryable (frame, code)
                else `Final frame))))
    in
    let rec go attempt =
      let retry_or ~reason ~give_up =
        let elapsed_ms = (Unix.gettimeofday () -. start) *. 1000. in
        match Retry.next_delay_ms policy rng ~attempt ~elapsed_ms with
        | None -> give_up ()
        | Some d ->
          Printf.eprintf "request: %s; retry %d/%d in %.0f ms\n%!" reason (attempt + 1)
            policy.Retry.retries d;
          Unix.sleepf (d /. 1000.);
          go (attempt + 1)
      in
      match attempt_once () with
      | `Ok frame ->
        print_endline frame;
        (* Serving metadata (sharded daemons echo who answered): report it
           on stderr so stdout stays exactly the response frame. *)
        (let j = Json.parse frame in
         match (Option.bind (Json.member "worker" j) Json.to_int_opt, Json.member "cache" j) with
         | Some w, Some (Json.String "hit") ->
           Printf.eprintf "request: served from the router cache (computed by worker %d)\n%!" w
         | Some w, _ -> Printf.eprintf "request: served by worker %d\n%!" w
         | None, Some (Json.String "hit") -> Printf.eprintf "request: served from the router cache\n%!"
         | None, _ -> ());
        0
      | `Final frame ->
        print_endline frame;
        1
      | `Timeout ->
        prerr_endline "request: no response within the --timeout-ms budget";
        1
      | `Transient reason ->
        retry_or ~reason ~give_up:(fun () ->
            prerr_endline ("request: " ^ reason);
            1)
      | `Server_retryable (frame, code) ->
        retry_or ~reason:("server answered " ^ code) ~give_up:(fun () ->
            print_endline frame;
            1)
    in
    go 0

(* ---- formats ---- *)

let formats_cmd () =
  print_endline "frontends:";
  List.iter
    (fun (fe : Frontend.t) ->
      Printf.printf "  %-10s %-14s %s\n" fe.Frontend.name
        (String.concat "," fe.Frontend.extensions)
        fe.Frontend.description)
    Frontend.all;
  0

(* ---- corpus ---- *)

let corpus_cmd dir format =
  if not (Sys.file_exists dir && Sys.is_directory dir) then begin
    Printf.eprintf "corpus: %s is not a directory\n" dir;
    1
  end
  else begin
    let fe =
      match format with
      | None -> Ok None
      | Some name -> Result.map Option.some (resolve_frontend (Some name))
    in
    match fe with
    | Error m ->
      prerr_endline m;
      1
    | Ok fe ->
      let module Corpus = Lcm_eval.Corpus in
      let ing = Corpus.ingest_dir ?format:fe dir in
      List.iter (fun (f, m) -> Printf.eprintf "corpus: skipping %s: %s\n" f m) ing.Corpus.errors;
      let reports = Corpus.process ing.Corpus.jobs in
      let t = Table.create [ "function"; "blocks"; "exprs"; "insertions"; "deletions"; "digest" ] in
      List.iter
        (fun (r : Corpus.report) ->
          Table.add_row t
            [
              r.Corpus.job;
              string_of_int r.Corpus.blocks;
              string_of_int r.Corpus.exprs;
              string_of_int r.Corpus.insertions;
              string_of_int r.Corpus.deletions;
              String.sub r.Corpus.digest 0 12;
            ])
        reports;
      Table.print t;
      Printf.printf "%d functions (%d duplicates skipped, %d files failed)\n"
        (List.length ing.Corpus.jobs) ing.Corpus.duplicates
        (List.length ing.Corpus.errors);
      if ing.Corpus.errors = [] then 0 else 1
  end

(* ---- list ---- *)

let list_cmd () =
  print_endline "algorithms:";
  List.iter
    (fun (e : Registry.entry) -> Printf.printf "  %-16s %s\n" e.Registry.name e.Registry.description)
    Registry.all;
  print_endline "\nworkloads (usable via --workload):";
  List.iter (fun w -> Printf.printf "  %-20s %s\n" w.Suites.name w.Suites.description) Suites.all;
  0

(* ---- cmdliner wiring ---- *)

open Cmdliner

let source_term =
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"MiniImp source file.")
  in
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Use a named built-in workload instead of a file.")
  in
  let combine file workload =
    match (file, workload) with
    | Some f, None -> Ok (`File f)
    | None, Some w -> Ok (`Workload w)
    | None, None -> Error "provide a FILE or --workload NAME"
    | Some _, Some _ -> Error "provide either a FILE or --workload, not both"
  in
  Term.(const combine $ file $ workload)

let func_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "function" ] ~docv:"NAME" ~doc:"Function to use when the file defines several.")

let format_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "format" ] ~docv:"NAME"
        ~doc:
          "Frontend to parse the file with (see `lcmopt formats`); default: by file extension, \
           MiniImp otherwise.")

let with_source f source func_name format =
  match source with
  | Ok s -> f s func_name format
  | Error m ->
    prerr_endline m;
    1

let run_term =
  let algorithm =
    Arg.(
      value & opt string "lcm-edge"
      & info [ "a"; "algorithm" ] ~docv:"NAME" ~doc:"Transformation to run (see `lcmopt list`).")
  in
  let simplify =
    Arg.(value & flag & info [ "simplify" ] ~doc:"Merge straight-line blocks afterwards.")
  in
  let dot =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"PATH" ~doc:"Write the result as Graphviz.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print statistics.") in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"PATH"
          ~doc:
            "Record a span trace of the run and write it to $(docv) as a Chrome trace_event JSON \
             document (load with chrome://tracing or Perfetto).")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Print a per-phase profile (time, allocation, solver iterations) after the run.")
  in
  Term.(
    const (fun source func_name format algorithm simplify dot quiet trace profile ->
        with_source
          (fun s f fmt -> run_cmd s f fmt algorithm simplify dot quiet trace profile)
          source func_name format)
    $ source_term $ func_term $ format_term $ algorithm $ simplify $ dot $ quiet $ trace $ profile)

let analyze_term =
  Term.(
    const (fun source func_name format ->
        with_source (fun s f fmt -> analyze_cmd s f fmt) source func_name format)
    $ source_term $ func_term $ format_term)

let trace_term =
  let decisions =
    Arg.(
      value & opt string ""
      & info [ "d"; "decisions" ] ~docv:"BITS" ~doc:"Branch decisions, e.g. 0110 (1 = then-arm).")
  in
  Term.(
    const (fun source func_name format ds ->
        with_source (fun s f fmt -> trace_cmd s f fmt ds) source func_name format)
    $ source_term $ func_term $ format_term $ decisions)

let compare_term =
  let runs = Arg.(value & opt int 10 & info [ "runs" ] ~docv:"N" ~doc:"Random runs to sum over.") in
  let fuel =
    Arg.(
      value & opt int 100_000
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Interpreter step budget per run; non-terminating inputs fail fast instead of hanging.")
  in
  Term.(
    const (fun source func_name format runs fuel ->
        with_source (fun s f fmt -> compare_cmd s f fmt runs fuel) source func_name format)
    $ source_term $ func_term $ format_term $ runs $ fuel)

let ssa_term =
  let value_number =
    Arg.(value & flag & info [ "vn" ] ~doc:"Also run dominator-based value numbering.")
  in
  Term.(
    const (fun source func_name format vn ->
        with_source (fun s f fmt -> ssa_cmd s f fmt vn) source func_name format)
    $ source_term $ func_term $ format_term $ value_number)

let interp_term =
  let bindings =
    Arg.(value & opt_all string [] & info [ "b"; "bind" ] ~docv:"VAR=INT" ~doc:"Initial variable binding.")
  in
  let fuel =
    Arg.(value & opt int 1_000_000 & info [ "fuel" ] ~docv:"N" ~doc:"Execution step budget.")
  in
  Term.(
    const (fun source func_name format bindings fuel ->
        with_source (fun s f fmt -> interp_cmd s f fmt bindings fuel) source func_name format)
    $ source_term $ func_term $ format_term $ bindings $ fuel)

let serve_term =
  let stdio =
    Arg.(value & flag & info [ "stdio" ] ~doc:"Serve a single peer on stdin/stdout (tests, CI, benchmarks).")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket at $(docv).")
  in
  let queue =
    Arg.(
      value & opt int 256
      & info [ "queue" ] ~docv:"N"
          ~doc:"Admission queue high-water mark; further requests are rejected as overloaded.")
  in
  let batch =
    Arg.(
      value & opt int 32
      & info [ "batch" ] ~docv:"N" ~doc:"Maximum requests dispatched to the domain pool as one batch.")
  in
  let max_frame =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-frame" ] ~docv:"BYTES" ~doc:"Frame size ceiling; longer lines are rejected as oversized.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Default per-request deadline when the request carries none.")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N"
          ~doc:"Domain-pool size (default: \\$LCM_DOMAINS or the host's core count, capped at 8).")
  in
  let no_timing =
    Arg.(value & flag & info [ "no-timing" ] ~doc:"Omit timing fields from responses (golden tests).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No stderr logging or shutdown stats dump.") in
  let supervise =
    Arg.(
      value & flag
      & info [ "supervise" ]
          ~doc:
            "Run the daemon as a supervised child: restart it with capped exponential backoff when \
             it dies abnormally, carrying the metrics registry across restarts via --state-file.")
  in
  let max_restarts =
    Arg.(
      value & opt int 10
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:
            "Give up after $(docv) consecutive quick failures under --supervise; a child that \
             stays up a few seconds resets the count.")
  in
  let restart_backoff_ms =
    Arg.(
      value & opt float 100.
      & info [ "restart-backoff-ms" ] ~docv:"MS"
          ~doc:
            "Base restart delay under --supervise; doubles per consecutive failure up to \
             --restart-cap-ms.")
  in
  let restart_cap_ms =
    Arg.(
      value & opt float 5000.
      & info [ "restart-cap-ms" ] ~docv:"MS"
          ~doc:
            "Ceiling on the restart backoff under --supervise.  The default favours not \
             thrashing a crash-looping host; lower it when availability under frequent \
             crashes matters more than restart churn.")
  in
  let state_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-file" ] ~docv:"PATH"
          ~doc:
            "Persist the metrics registry to $(docv) (restored at startup, saved every second). \
             Defaults to a temp file under --supervise.")
  in
  let pid_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "pid-file" ] ~docv:"PATH"
          ~doc:
            "Write the pid of the serving process to $(docv); under --supervise this is the current \
             child, rewritten after every restart.")
  in
  let trace_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-dir" ] ~docv:"DIR"
          ~doc:
            "Enable request tracing: every request's span tree is appended to \
             $(docv)/<trace_id>.trace.json in Chrome trace_event format.  Retries and supervised \
             restarts that reuse a client trace_id append to the same file.")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard the daemon over $(docv) worker processes behind a routing front: requests are \
             consistent-hashed by canonical program digest, results are cached content-addressed \
             at the router, crashed workers are respawned and their in-flight requests replayed \
             on a sibling.  0 (the default) serves from a single in-process daemon.")
  in
  let cache_entries =
    Arg.(
      value & opt int 256
      & info [ "cache" ] ~docv:"N"
          ~doc:"Router result-cache capacity in entries under --shards; 0 disables caching.")
  in
  let state_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Make retained handles crash-durable: every retain and accepted delta is \
             append-fsynced to a per-handle write-ahead journal under $(docv), and a respawned \
             process (or shard worker, which journals under $(docv)/worker-<i>) rebuilds every \
             handle under its original id before serving.  Off by default.")
  in
  let journal_compact =
    Arg.(
      value & opt int 64
      & info [ "journal-compact" ] ~docv:"N"
          ~doc:
            "Under --state-dir, compact a handle's journal to a single snapshot record after \
             $(docv) appended patches — bounds recovery replay time per handle.")
  in
  Term.(
    const serve_cmd $ stdio $ socket $ queue $ batch $ max_frame $ deadline $ workers $ no_timing
    $ quiet $ supervise $ max_restarts $ restart_backoff_ms $ restart_cap_ms $ state_file
    $ pid_file $ trace_dir $ shards $ cache_entries $ state_dir $ journal_compact)

let request_term =
  let socket =
    Arg.(
      value
      & opt string "/tmp/lcmd.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Socket of the running daemon.")
  in
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"MiniImp or .cfg source file.")
  in
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Use a named built-in workload instead of a file.")
  in
  let algorithm =
    Arg.(
      value & opt string "lcm-edge"
      & info [ "a"; "algorithm" ] ~docv:"NAME" ~doc:"Transformation to run (see `lcmopt list`).")
  in
  let simplify =
    Arg.(value & flag & info [ "simplify" ] ~doc:"Merge straight-line blocks afterwards.")
  in
  let workers =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers" ] ~docv:"N" ~doc:"Requested intra-request parallelism (capped by the daemon).")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request deadline in milliseconds.")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Query the daemon's metrics registry instead.") in
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Liveness check instead of a run request.") in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ] ~doc:"Query the daemon's per-phase profile aggregates instead.")
  in
  let trace_id =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-id" ] ~docv:"ID"
          ~doc:
            "Trace id attached to the request (default: cli-<pid>).  Reused verbatim across \
             retries so one logical request reconstructs as one trace.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry up to $(docv) times on connection failures and on typed overloaded or \
             shutting_down responses, with capped jittered exponential backoff.")
  in
  let backoff =
    Arg.(
      value & opt float 100.
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:"Base backoff before the first retry; doubles per attempt, capped at 5000 ms.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Overall wall-clock budget across all attempts, including backoff sleeps and waiting \
             for the response.")
  in
  Term.(
    const (fun socket file workload func format algorithm simplify workers deadline stats ping
               profile retries backoff timeout trace_id ->
        let op =
          if stats then `Stats
          else if ping then `Ping
          else if profile then `Profile
          else `Run
        in
        request_cmd socket file workload func format algorithm simplify workers deadline retries
          backoff timeout op trace_id)
    $ socket $ file $ workload $ func_term $ format_term $ algorithm $ simplify $ workers
    $ deadline $ stats $ ping $ profile $ retries $ backoff $ timeout $ trace_id)

let corpus_term =
  let dir = Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Directory of programs.") in
  let format =
    Arg.(
      value
      & opt (some string) None
      & info [ "format" ] ~docv:"NAME"
          ~doc:"Only ingest this frontend's files (default: every registered extension).")
  in
  Term.(const corpus_cmd $ dir $ format)

let cmd_of name doc term = Cmd.v (Cmd.info name ~doc) term

let () =
  (* Chaos configuration is process-wide and read once: a bad spec should
     fail loudly at startup, not be silently ignored mid-load-test. *)
  (match Lcm_support.Fault.install_from_env () with
  | Ok () -> ()
  | Error m ->
    Printf.eprintf "bad %s: %s\n" Lcm_support.Fault.env_var m;
    exit 1);
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info = Cmd.info "lcmopt" ~version:"1.0.0" ~doc:"Lazy Code Motion playground" in
  let tree =
    Cmd.group ~default info
      [
        cmd_of "run" "run a PRE transformation on a function" run_term;
        cmd_of "analyze" "print the LCM data-flow predicates" analyze_term;
        cmd_of "ssa" "print the (pruned) SSA form" ssa_term;
        cmd_of "compare" "run every algorithm and compare counts" compare_term;
        cmd_of "trace" "replay one decision path and count evaluations" trace_term;
        cmd_of "interp" "interpret a function" interp_term;
        cmd_of "list" "list algorithms and workloads" Term.(const list_cmd $ const ());
        cmd_of "formats" "list registered program frontends" Term.(const formats_cmd $ const ());
        cmd_of "corpus" "ingest a directory of programs and optimize each function" corpus_term;
        cmd_of "serve" "serve optimization requests over JSON-lines frames" serve_term;
        cmd_of "request" "send one request to a running daemon" request_term;
      ]
  in
  (* Exit codes: 0 success, 1 usage/parse/request errors (including
     cmdliner's own CLI errors via ~term_err), 2 internal errors. *)
  match Cmd.eval' ~term_err:1 tree with
  | code -> exit code
  | exception e ->
    Printf.eprintf "internal error: %s\n" (Printexc.to_string e);
    exit 2
