(* The reconstructed running example: golden predicate table and golden
   BCM/LCM placements (experiments EXP-F1..F3 as assertions). *)

module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Running_example = Lcm_figures.Running_example
module Lcm_edge = Lcm_core.Lcm_edge
module Bcm_edge = Lcm_core.Bcm_edge
module Lcm_node = Lcm_core.Lcm_node
module Local = Lcm_dataflow.Local
module Avail = Lcm_dataflow.Avail
module Antic = Lcm_dataflow.Antic
module Oracle = Lcm_eval.Oracle
module Metrics = Lcm_eval.Metrics
module Registry = Lcm_eval.Registry
module Prng = Lcm_support.Prng

let inputs = [ "a"; "b"; "p"; "q"; "r" ]

let test_structure () =
  let g = Running_example.graph () in
  Alcotest.(check int) "13 blocks" 13 (Cfg.num_blocks g);
  Alcotest.(check int) "4 occurrences of a+b" 4 (Cfg.num_candidate_occurrences g);
  Alcotest.(check int) "single candidate expression" 0 (Running_example.expr_index g)

(* EXP-F1: the per-block predicate annotations of the paper's Figure 1. *)
let test_predicate_table () =
  let g = Running_example.graph () in
  let a = Lcm_edge.analyze g in
  let idx = Running_example.expr_index g in
  let antin l = Bitvec.get (a.Lcm_edge.antic.Antic.antin l) idx in
  let avout l = Bitvec.get (a.Lcm_edge.avail.Avail.avout l) idx in
  let laterin l = Bitvec.get (a.Lcm_edge.laterin l) idx in
  (* Anticipatability: a+b is down-safe from the entry all the way to the
     loop, but not below B10's kill on the B11 arm. *)
  List.iter (fun l -> Alcotest.(check bool) (Printf.sprintf "antin B%d" l) true (antin l)) [ 2; 3; 4; 5; 6; 7; 8; 9; 12 ];
  List.iter (fun l -> Alcotest.(check bool) (Printf.sprintf "antin B%d" l) false (antin l)) [ 10; 11 ];
  (* Availability: only after the computing blocks. *)
  List.iter (fun l -> Alcotest.(check bool) (Printf.sprintf "avout B%d" l) true (avout l)) [ 3; 9; 12 ];
  List.iter (fun l -> Alcotest.(check bool) (Printf.sprintf "avout B%d" l) false (avout l)) [ 2; 4; 5; 8; 10 ];
  (* LATERIN: insertion can still be delayed through B2/B3/B4 (the region
     above the join) but not past it. *)
  List.iter (fun l -> Alcotest.(check bool) (Printf.sprintf "laterin B%d" l) true (laterin l)) [ 2; 3; 4; 12 ];
  List.iter (fun l -> Alcotest.(check bool) (Printf.sprintf "laterin B%d" l) false (laterin l)) [ 5; 6; 7; 8; 9 ]

(* EXP-F3: the lazy placement. *)
let test_lcm_placement () =
  let g = Running_example.graph () in
  let a = Lcm_edge.analyze g in
  Alcotest.(check (list (pair int int))) "insertions" [ (4, 5); (8, 9) ]
    (List.map fst a.Lcm_edge.insert);
  Alcotest.(check (list int)) "deletions" [ 8; 9 ] (List.map fst a.Lcm_edge.delete);
  Alcotest.(check (list int)) "copies" [ 3 ] (List.map fst a.Lcm_edge.copy)

(* EXP-F2: the busy placement inserts at the very top and the isolated
   arm, deleting every original computation. *)
let test_bcm_placement () =
  let g = Running_example.graph () in
  let a = Bcm_edge.analyze g in
  Alcotest.(check (list (pair int int))) "insertions" [ (0, 2); (8, 9); (10, 12) ]
    (List.map fst a.Bcm_edge.insert);
  Alcotest.(check (list int)) "deletions" [ 3; 8; 9; 12 ] (List.map fst a.Bcm_edge.delete);
  Alcotest.(check (list int)) "no copies" [] (List.map fst a.Bcm_edge.copy)

(* The figures' point: same computation counts, shorter lifetimes. *)
let test_lifetime_gap () =
  let g = Running_example.graph () in
  let pool = Cfg.candidate_pool g in
  let bcm, _ = Bcm_edge.transform g in
  let lcm, _ = Lcm_edge.transform g in
  (match Oracle.computations_leq ~pool lcm bcm with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match Oracle.computations_leq ~pool bcm lcm with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let lifetime h = Metrics.temp_lifetime h ~temps:(Registry.new_temps ~original:g ~transformed:h) in
  Alcotest.(check bool) "lcm lifetime strictly smaller" true (lifetime lcm < lifetime bcm)

(* Isolation (EXP-A1): ALCM rewrites the isolated computation in B12, LCM
   leaves it alone. *)
let test_isolation_on_example () =
  let g = Lcm_cfg.Granulate.run (Running_example.graph ()) in
  let a = Lcm_node.analyze g in
  let lcm = Lcm_node.spec g a Lcm_node.Lcm in
  let alcm = Lcm_node.spec g a Lcm_node.Alcm in
  let count_inserts spec =
    List.fold_left (fun acc (_, set) -> acc + Bitvec.count set) 0 spec.Lcm_core.Transform.entry_inserts
  in
  let count_deletes spec =
    List.fold_left (fun acc (_, set) -> acc + Bitvec.count set) 0 spec.Lcm_core.Transform.deletes
  in
  Alcotest.(check bool) "alcm inserts more" true (count_inserts alcm > count_inserts lcm);
  Alcotest.(check bool) "alcm rewrites more" true (count_deletes alcm > count_deletes lcm)

(* All algorithms preserve the example's semantics and safety. *)
let test_all_algorithms_sound_here () =
  let g = Running_example.graph () in
  let pool = Cfg.candidate_pool g in
  List.iter
    (fun (e : Registry.entry) ->
      let g' = e.Registry.run g in
      match Oracle.semantics ~inputs (Prng.of_int 31) ~original:g ~transformed:g' with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: semantics: %s" e.Registry.name m)
    Registry.all;
  (* The non-speculative entries are also per-path safe and never read an
     undefined temporary. *)
  List.iter
    (fun (e : Registry.entry) ->
      let g' = e.Registry.run g in
      let verdict =
        if e.Registry.preserves_expressions then Oracle.safety ~pool ~original:g g'
        else Oracle.computations_leq ~pool g' g
      in
      (match verdict with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: safety: %s" e.Registry.name m);
      match Oracle.no_undefined_temp_reads ~inputs ~original:g g' with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: temps: %s" e.Registry.name m)
    Registry.safe

(* The critical-edge example: MR finds nothing, LCM removes the partial
   redundancy, strictly better on the computing-arm path. *)
let test_critical_edge_example () =
  let g = Lcm_figures.Critical_edge.graph () in
  let pool = Cfg.candidate_pool g in
  let mra = Lcm_baselines.Morel_renvoise.analyze g in
  Alcotest.(check int) "mr inserts nothing" 0 (List.length mra.Lcm_baselines.Morel_renvoise.insert);
  Alcotest.(check int) "mr deletes nothing" 0 (List.length mra.Lcm_baselines.Morel_renvoise.delete);
  let la = Lcm_core.Lcm_edge.analyze g in
  Alcotest.(check int) "lcm inserts once" 1 (List.length la.Lcm_core.Lcm_edge.insert);
  Alcotest.(check int) "lcm deletes once" 1 (List.length la.Lcm_core.Lcm_edge.delete);
  let lcm = (Option.get (Registry.find "lcm-edge")).Registry.run g in
  let through = Lcm_eval.Trace.replay ~pool lcm [ true ] in
  let orig_through = Lcm_eval.Trace.replay ~pool g [ true ] in
  Alcotest.(check int) "lcm: 1 eval on the B path" 1 (Lcm_eval.Trace.total through.Lcm_eval.Trace.eval_counts);
  Alcotest.(check int) "original: 2 evals on the B path" 2
    (Lcm_eval.Trace.total orig_through.Lcm_eval.Trace.eval_counts);
  match Oracle.semantics ~inputs:Lcm_figures.Critical_edge.inputs (Prng.of_int 3) ~original:g ~transformed:lcm with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "critical-edge example beats Morel-Renvoise" `Quick test_critical_edge_example;
    Alcotest.test_case "EXP-F1: predicate table" `Quick test_predicate_table;
    Alcotest.test_case "EXP-F3: lazy placement" `Quick test_lcm_placement;
    Alcotest.test_case "EXP-F2: busy placement" `Quick test_bcm_placement;
    Alcotest.test_case "lifetime gap BCM vs LCM" `Quick test_lifetime_gap;
    Alcotest.test_case "EXP-A1: isolation pruning" `Quick test_isolation_on_example;
    Alcotest.test_case "all algorithms sound on the example" `Quick test_all_algorithms_sound_here;
  ]
