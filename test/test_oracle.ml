(* The oracles themselves: each must detect a deliberately broken
   transformation.  A test harness that cannot fail is no harness. *)

module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Lower = Lcm_cfg.Lower
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr
module Oracle = Lcm_eval.Oracle
module Prng = Lcm_support.Prng

let a_plus_b = Expr.Binary (Expr.Add, Expr.Var "a", Expr.Var "b")

let base () = Lower.parse_and_lower_func "function f(a, b, p) { if (p > 0) { x = a + b; } else { x = 1; } y = a + b; return x + y; }"

let first_assign_block g v =
  List.find
    (fun l -> List.exists (fun i -> Instr.defs i = Some v) (Cfg.instrs g l))
    (Cfg.labels g)

(* Changing a computed value must trip the semantics oracle. *)
let test_semantics_catches_wrong_value () =
  let g = base () in
  let broken = Cfg.copy g in
  let l = first_assign_block broken "y" in
  let instrs =
    List.map
      (fun i ->
        match i with
        | Instr.Assign ("y", _) -> Instr.Assign ("y", Expr.Binary (Expr.Sub, Expr.Var "a", Expr.Var "b"))
        | _ -> i)
      (Cfg.instrs broken l)
  in
  Cfg.set_instrs broken l instrs;
  match Oracle.semantics ~inputs:[ "a"; "b"; "p" ] (Prng.of_int 1) ~original:g ~transformed:broken with
  | Ok () -> Alcotest.fail "oracle missed a wrong value"
  | Error _ -> ()

(* Dropping a print must trip the semantics oracle. *)
let test_semantics_catches_missing_print () =
  let g = Lower.parse_and_lower_func "function f(a) { print a; return a; }" in
  let broken = Cfg.copy g in
  List.iter
    (fun l ->
      Cfg.set_instrs broken l
        (List.filter (fun i -> match i with Instr.Print _ -> false | _ -> true) (Cfg.instrs broken l)))
    (Cfg.labels broken);
  match Oracle.semantics ~inputs:[ "a" ] (Prng.of_int 1) ~original:g ~transformed:broken with
  | Ok () -> Alcotest.fail "oracle missed a dropped print"
  | Error _ -> ()

(* A gratuitous insertion on a path that did not compute the expression
   must trip the safety oracle (this is exactly what speculation does). *)
let test_safety_catches_speculation () =
  let g = base () in
  let pool = Cfg.candidate_pool g in
  let broken = Cfg.copy g in
  let l = first_assign_block broken "x" in
  (* x = 1 arm: add a spurious a+b *)
  let other =
    List.find
      (fun l' ->
        l' <> l
        && List.exists (fun i -> match i with Instr.Assign ("x", Expr.Atom _) -> true | _ -> false)
             (Cfg.instrs broken l'))
      (Cfg.labels broken)
  in
  Cfg.prepend_instr broken other (Instr.Assign ("junk", a_plus_b));
  match Oracle.safety ~pool ~original:g broken with
  | Ok () -> Alcotest.fail "oracle missed a speculative insertion"
  | Error _ -> ()

(* Reading a temporary that is not defined on every path must trip the
   undefined-temp oracle. *)
let test_undefined_temp_caught () =
  let g = base () in
  let broken = Cfg.copy g in
  let l = first_assign_block broken "y" in
  let instrs =
    List.map
      (fun i ->
        match i with
        | Instr.Assign ("y", _) -> Instr.Assign ("y", Expr.Atom (Expr.Var "_h99"))
        | _ -> i)
      (Cfg.instrs broken l)
  in
  Cfg.set_instrs broken l instrs;
  match Oracle.no_undefined_temp_reads ~inputs:[ "a"; "b"; "p" ] ~original:g broken with
  | Ok () -> Alcotest.fail "oracle missed an undefined temporary"
  | Error _ -> ()

(* computations_leq must notice a regression. *)
let test_computations_leq_detects_regression () =
  let g = base () in
  let pool = Cfg.candidate_pool g in
  let worse = Cfg.copy g in
  let l = first_assign_block worse "y" in
  Cfg.prepend_instr worse l (Instr.Assign ("extra", a_plus_b));
  (match Oracle.computations_leq ~pool worse g with
  | Ok () -> Alcotest.fail "leq missed a regression"
  | Error _ -> ());
  match Oracle.computations_leq ~pool g worse with
  | Ok () -> ()
  | Error m -> Alcotest.failf "leq false positive: %s" m

(* The brute-force checker must reject a clearly suboptimal transformation
   (here: the identity on a graph with a removable partial redundancy). *)
let test_brute_rejects_suboptimal () =
  let g = Lcm_figures.Critical_edge.graph () in
  match Lcm_eval.Brute.check_computational_optimality ~max_decisions:6 g ~transformed:(Cfg.copy g) with
  | Ok () -> Alcotest.fail "brute force accepted the identity as optimal"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "semantics: wrong value" `Quick test_semantics_catches_wrong_value;
    Alcotest.test_case "semantics: dropped print" `Quick test_semantics_catches_missing_print;
    Alcotest.test_case "safety: speculative insertion" `Quick test_safety_catches_speculation;
    Alcotest.test_case "temps: undefined read" `Quick test_undefined_temp_caught;
    Alcotest.test_case "leq: regression detected" `Quick test_computations_leq_detects_regression;
    Alcotest.test_case "brute force: rejects suboptimal" `Quick test_brute_rejects_suboptimal;
  ]
