(* The transformation engine: edits specified by specs are performed
   faithfully and invalid specs are rejected. *)

module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Lower = Lcm_cfg.Lower
module Expr = Lcm_ir.Expr
module Expr_pool = Lcm_ir.Expr_pool
module Instr = Lcm_ir.Instr
module Transform = Lcm_core.Transform
module Temps = Lcm_core.Temps

let a_plus_b = Expr.Binary (Expr.Add, Expr.Var "a", Expr.Var "b")

let simple_graph () =
  let g = Cfg.create () in
  let b1 = Cfg.add_block g ~instrs:[ Instr.Assign ("x", a_plus_b) ] ~term:Cfg.Halt in
  let b2 = Cfg.add_block g ~instrs:[ Instr.Assign ("y", a_plus_b) ] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b1);
  Cfg.set_term g b1 (Cfg.Goto b2);
  Cfg.set_term g b2 (Cfg.Goto (Cfg.exit_label g));
  (g, b1, b2)

let base_spec g =
  let pool = Cfg.candidate_pool g in
  {
    Transform.algorithm = "test";
    pool;
    temp_names = Temps.names g pool;
    edge_inserts = [];
    entry_inserts = [];
    exit_inserts = [];
    deletes = [];
    copies = [];
  }

let one = Bitvec.of_list 1 [ 0 ]

let test_identity () =
  let g, _, _ = simple_graph () in
  let g', report = Transform.apply g (base_spec g) in
  Alcotest.(check int) "no edits" 0
    (report.Transform.num_deletions + report.Transform.num_edge_insertions
   + report.Transform.num_entry_insertions + report.Transform.num_copies);
  Alcotest.(check int) "same blocks" (Cfg.num_blocks g) (Cfg.num_blocks g')

let test_delete_rewrites_first_occurrence () =
  let g, _, b2 = simple_graph () in
  let spec = { (base_spec g) with Transform.deletes = [ (b2, Bitvec.copy one) ] } in
  let g', report = Transform.apply g spec in
  Alcotest.(check int) "one deletion" 1 report.Transform.num_deletions;
  (match Cfg.instrs g' b2 with
  | [ Instr.Assign ("y", Expr.Atom (Expr.Var t)) ] ->
    Alcotest.(check string) "reads the temp" spec.Transform.temp_names.(0) t
  | _ -> Alcotest.fail "expected y := temp");
  (* Original graph untouched. *)
  Alcotest.(check int) "original intact" 1 (List.length (Cfg.instrs g b2))

let test_delete_missing_occurrence_fails () =
  let g, b1, _ = simple_graph () in
  Cfg.set_instrs g b1 [];
  let spec = { (base_spec g) with Transform.deletes = [ (b1, Bitvec.copy one) ] } in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Transform.apply g spec);
       false
     with Failure _ -> true)

let test_edge_insert_splits () =
  let g, b1, b2 = simple_graph () in
  let spec = { (base_spec g) with Transform.edge_inserts = [ ((b1, b2), Bitvec.copy one) ] } in
  let g', report = Transform.apply g spec in
  Alcotest.(check int) "one insertion" 1 report.Transform.num_edge_insertions;
  (match report.Transform.split_blocks with
  | [ ((s, d), fresh) ] ->
    Alcotest.(check (pair int int)) "split of b1->b2" (b1, b2) (s, d);
    (match Cfg.instrs g' fresh with
    | [ Instr.Assign (t, e) ] ->
      Alcotest.(check string) "temp target" spec.Transform.temp_names.(0) t;
      Alcotest.(check bool) "computes a+b" true (Expr.equal e a_plus_b)
    | _ -> Alcotest.fail "expected one inserted instruction")
  | _ -> Alcotest.fail "expected one split block")

let test_entry_and_exit_inserts () =
  let g, b1, _ = simple_graph () in
  let spec =
    {
      (base_spec g) with
      Transform.entry_inserts = [ (b1, Bitvec.copy one) ];
      exit_inserts = [ (b1, Bitvec.copy one) ];
    }
  in
  let g', report = Transform.apply g spec in
  Alcotest.(check int) "entry insert" 1 report.Transform.num_entry_insertions;
  Alcotest.(check int) "exit insert" 1 report.Transform.num_exit_insertions;
  match Cfg.instrs g' b1 with
  | [ Instr.Assign (t1, _); Instr.Assign ("x", _); Instr.Assign (t2, _) ] ->
    Alcotest.(check string) "first is temp" spec.Transform.temp_names.(0) t1;
    Alcotest.(check string) "last is temp" spec.Transform.temp_names.(0) t2
  | is -> Alcotest.failf "expected 3 instructions, got %d" (List.length is)

let test_copy_after_downward_exposed () =
  let g = Cfg.create () in
  (* x := a+b ; a := 0 ; y := a+b ; z := 1 — the downwards-exposed occurrence
     of a+b is the second one; the copy must land right after it. *)
  let b =
    Cfg.add_block g
      ~instrs:
        [
          Instr.Assign ("x", a_plus_b);
          Instr.Assign ("a", Expr.Atom (Expr.Const 0));
          Instr.Assign ("y", a_plus_b);
          Instr.Assign ("z", Expr.Atom (Expr.Const 1));
        ]
      ~term:(Cfg.Goto (Cfg.exit_label g))
  in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b);
  let spec = { (base_spec g) with Transform.copies = [ (b, Bitvec.copy one) ] } in
  let g', report = Transform.apply g spec in
  Alcotest.(check int) "one copy" 1 report.Transform.num_copies;
  match Cfg.instrs g' b with
  | [ _; _; Instr.Assign ("y", _); Instr.Assign (t, Expr.Atom (Expr.Var "y")); _ ] ->
    Alcotest.(check string) "copy into temp" spec.Transform.temp_names.(0) t
  | is -> Alcotest.failf "unexpected layout (%d instrs)" (List.length is)

let test_copy_without_occurrence_fails () =
  let g, b1, _ = simple_graph () in
  Cfg.set_instrs g b1 [ Instr.Assign ("a", Expr.Atom (Expr.Const 0)) ];
  let spec = { (base_spec g) with Transform.copies = [ (b1, Bitvec.copy one) ] } in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Transform.apply g spec);
       false
     with Failure _ -> true)

let test_simplify_merges_split_blocks () =
  let g, b1, b2 = simple_graph () in
  let spec = { (base_spec g) with Transform.edge_inserts = [ ((b1, b2), Bitvec.copy one) ] } in
  let unsimplified, _ = Transform.apply g spec in
  let simplified, _ = Transform.apply ~simplify:true g spec in
  Alcotest.(check bool) "simplified has fewer blocks" true
    (Cfg.num_blocks simplified < Cfg.num_blocks unsimplified)

let test_self_kill_delete () =
  (* Deleting the upwards-exposed occurrence in x := x + 1 must rewrite it
     even though the instruction kills its own expression. *)
  let g = Cfg.create () in
  let x_plus_1 = Expr.Binary (Expr.Add, Expr.Var "x", Expr.Const 1) in
  let b = Cfg.add_block g ~instrs:[ Instr.Assign ("x", x_plus_1) ] ~term:(Cfg.Goto (Cfg.exit_label g)) in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b);
  let spec = { (base_spec g) with Transform.deletes = [ (b, Bitvec.copy one) ] } in
  let g', _ = Transform.apply g spec in
  match Cfg.instrs g' b with
  | [ Instr.Assign ("x", Expr.Atom (Expr.Var _)) ] -> ()
  | _ -> Alcotest.fail "expected x := temp"

let suite =
  [
    Alcotest.test_case "identity spec" `Quick test_identity;
    Alcotest.test_case "delete rewrites occurrence" `Quick test_delete_rewrites_first_occurrence;
    Alcotest.test_case "delete without occurrence fails" `Quick test_delete_missing_occurrence_fails;
    Alcotest.test_case "edge insert splits the edge" `Quick test_edge_insert_splits;
    Alcotest.test_case "entry and exit inserts" `Quick test_entry_and_exit_inserts;
    Alcotest.test_case "copy lands after downwards-exposed occurrence" `Quick test_copy_after_downward_exposed;
    Alcotest.test_case "copy without occurrence fails" `Quick test_copy_without_occurrence_fails;
    Alcotest.test_case "simplify merges blocks" `Quick test_simplify_merges_split_blocks;
    Alcotest.test_case "delete self-killing occurrence" `Quick test_self_kill_delete;
  ]
