(* The node-based (PLDI 1992) formulation: analysis predicates on a
   hand-checked chain, the three variants, and isolation pruning. *)

module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Granulate = Lcm_cfg.Granulate
module Lower = Lcm_cfg.Lower
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr
module Lcm_node = Lcm_core.Lcm_node
module Oracle = Lcm_eval.Oracle
module Suites = Lcm_eval.Suites
module Prng = Lcm_support.Prng

let a_plus_b = Expr.Binary (Expr.Add, Expr.Var "a", Expr.Var "b")

(* entry → n1 (empty) → n2 (x := a+b) → n3 (empty) → n4 (y := a+b) → exit *)
let chain () =
  let g = Cfg.create () in
  let n1 = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let n2 = Cfg.add_block g ~instrs:[ Instr.Assign ("x", a_plus_b) ] ~term:Cfg.Halt in
  let n3 = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let n4 = Cfg.add_block g ~instrs:[ Instr.Assign ("y", a_plus_b) ] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto n1);
  Cfg.set_term g n1 (Cfg.Goto n2);
  Cfg.set_term g n2 (Cfg.Goto n3);
  Cfg.set_term g n3 (Cfg.Goto n4);
  Cfg.set_term g n4 (Cfg.Goto (Cfg.exit_label g));
  (g, n1, n2, n3, n4)

let bit f l = Bitvec.get (f l) 0

let test_chain_predicates () =
  let g, n1, n2, n3, n4 = chain () in
  let a = Lcm_node.analyze g in
  (* Down-safety holds everywhere up to the first computation. *)
  Alcotest.(check bool) "dsafe n1" true (bit a.Lcm_node.dsafe n1);
  Alcotest.(check bool) "dsafe n2" true (bit a.Lcm_node.dsafe n2);
  Alcotest.(check bool) "dsafe n3" true (bit a.Lcm_node.dsafe n3);
  (* Up-safety holds strictly below the first computation. *)
  Alcotest.(check bool) "usafe n2" false (bit a.Lcm_node.usafe n2);
  Alcotest.(check bool) "usafe n3" true (bit a.Lcm_node.usafe n3);
  Alcotest.(check bool) "usafe n4" true (bit a.Lcm_node.usafe n4);
  (* Earliest at the entry of the down-safe region. *)
  Alcotest.(check bool) "earliest entry" true (bit a.Lcm_node.earliest (Cfg.entry g));
  Alcotest.(check bool) "not earliest n2" false (bit a.Lcm_node.earliest n2);
  (* Delay pushes the insertion down to the first use. *)
  Alcotest.(check bool) "delay n1" true (bit a.Lcm_node.delay n1);
  Alcotest.(check bool) "delay n2" true (bit a.Lcm_node.delay n2);
  Alcotest.(check bool) "no delay n3 (past the use)" false (bit a.Lcm_node.delay n3);
  (* Latest exactly at the first computation. *)
  Alcotest.(check bool) "latest n2" true (bit a.Lcm_node.latest n2);
  Alcotest.(check bool) "not latest n1" false (bit a.Lcm_node.latest n1);
  Alcotest.(check bool) "not latest n4" false (bit a.Lcm_node.latest n4)

let test_chain_lcm_transform () =
  (* LCM on the chain: n2's computation is latest but NOT isolated (n4
     reuses the value), so insert at n2, rewrite both. *)
  let g, _, n2, _, n4 = chain () in
  let a = Lcm_node.analyze g in
  Alcotest.(check bool) "n2 not isolated" false (bit a.Lcm_node.isolated n2);
  let spec = Lcm_node.spec g a Lcm_node.Lcm in
  Alcotest.(check int) "one insertion" 1 (List.length spec.Lcm_core.Transform.entry_inserts);
  Alcotest.(check (list int)) "inserted at n2" [ n2 ]
    (List.map fst spec.Lcm_core.Transform.entry_inserts);
  Alcotest.(check (list int)) "both uses rewritten" [ n2; n4 ]
    (List.map fst spec.Lcm_core.Transform.deletes)

let test_isolated_single_use () =
  (* A single computation with no reuse: LCM must leave it alone, ALCM
     inserts uselessly. *)
  let g = Cfg.create () in
  let n1 = Cfg.add_block g ~instrs:[ Instr.Assign ("x", a_plus_b) ] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto n1);
  Cfg.set_term g n1 (Cfg.Goto (Cfg.exit_label g));
  let a = Lcm_node.analyze g in
  Alcotest.(check bool) "latest at n1" true (bit a.Lcm_node.latest n1);
  Alcotest.(check bool) "isolated at n1" true (bit a.Lcm_node.isolated n1);
  let lcm = Lcm_node.spec g a Lcm_node.Lcm in
  Alcotest.(check int) "lcm: no insertions" 0 (List.length lcm.Lcm_core.Transform.entry_inserts);
  Alcotest.(check int) "lcm: no rewrites" 0 (List.length lcm.Lcm_core.Transform.deletes);
  let alcm = Lcm_node.spec g a Lcm_node.Alcm in
  Alcotest.(check int) "alcm: inserts" 1 (List.length alcm.Lcm_core.Transform.entry_inserts);
  let bcm = Lcm_node.spec g a Lcm_node.Bcm in
  Alcotest.(check bool) "bcm inserts somewhere" true (List.length bcm.Lcm_core.Transform.entry_inserts >= 1)

let test_requires_granular () =
  let g = Cfg.create () in
  let b =
    Cfg.add_block g
      ~instrs:[ Instr.Assign ("x", a_plus_b); Instr.Assign ("y", a_plus_b) ]
      ~term:(Cfg.Goto (Cfg.exit_label g))
  in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto b);
  Alcotest.(check bool) "raises on non-granular" true
    (try
       ignore (Lcm_node.analyze g);
       false
     with Invalid_argument _ -> true)

let test_variants_behave_on_workloads () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      List.iter
        (fun variant ->
          let g', _ = Lcm_node.transform variant g in
          match
            Oracle.semantics ~inputs:w.Suites.inputs (Prng.of_int 23) ~original:g ~transformed:g'
          with
          | Ok () -> ()
          | Error m ->
            Alcotest.failf "%s / %s: %s" w.Suites.name (Lcm_node.variant_name variant) m)
        [ Lcm_node.Bcm; Lcm_node.Alcm; Lcm_node.Lcm ])
    Suites.all

let test_node_edge_equal_counts () =
  (* Edge-based and node-based LCM are both computationally optimal, hence
     equal per-path candidate counts. *)
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let pool = Cfg.candidate_pool g in
      let edge, _ = Lcm_core.Lcm_edge.transform g in
      let node, _ = Lcm_node.transform Lcm_node.Lcm g in
      (match Oracle.computations_leq ~pool edge node with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: edge > node: %s" w.Suites.name m);
      match Oracle.computations_leq ~pool node edge with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: node > edge: %s" w.Suites.name m)
    Suites.all

(* Golden node-form predicates at the isolated computation of the running
   example: the node holding v := a+b is LATEST and ISOLATED. *)
let test_running_example_isolated_node () =
  let g = Lcm_cfg.Edge_split.split_join_edges (Granulate.run (Lcm_figures.Running_example.graph ())) in
  let a = Lcm_node.analyze g in
  let pool = a.Lcm_node.pool in
  let idx = Option.get (Lcm_ir.Expr_pool.index pool a_plus_b) in
  let v_node =
    List.find
      (fun l ->
        List.exists
          (fun i -> match i with Instr.Assign ("v", _) -> true | _ -> false)
          (Cfg.instrs g l))
      (Cfg.labels g)
  in
  Alcotest.(check bool) "latest" true (Bitvec.get (a.Lcm_node.latest v_node) idx);
  Alcotest.(check bool) "isolated" true (Bitvec.get (a.Lcm_node.isolated v_node) idx);
  (* Whereas the loop computation u := a+b is rewritten (not isolated:
     the loop reuses the value). *)
  let u_node =
    List.find
      (fun l ->
        List.exists
          (fun i -> match i with Instr.Assign ("u", _) -> true | _ -> false)
          (Cfg.instrs g l))
      (Cfg.labels g)
  in
  Alcotest.(check bool) "loop node not both latest+isolated" false
    (Bitvec.get (a.Lcm_node.latest u_node) idx && Bitvec.get (a.Lcm_node.isolated u_node) idx)

let test_safety_all_variants () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let pool = Cfg.candidate_pool g in
      List.iter
        (fun variant ->
          let g', _ = Lcm_node.transform variant g in
          match Oracle.safety ~pool ~original:g g' with
          | Ok () -> ()
          | Error m ->
            Alcotest.failf "%s / %s: %s" w.Suites.name (Lcm_node.variant_name variant) m)
        [ Lcm_node.Bcm; Lcm_node.Alcm; Lcm_node.Lcm ])
    Suites.all

let suite =
  [
    Alcotest.test_case "chain predicates" `Quick test_chain_predicates;
    Alcotest.test_case "chain LCM transform" `Quick test_chain_lcm_transform;
    Alcotest.test_case "isolated computation kept in place" `Quick test_isolated_single_use;
    Alcotest.test_case "requires granular graph" `Quick test_requires_granular;
    Alcotest.test_case "variants preserve semantics on workloads" `Quick test_variants_behave_on_workloads;
    Alcotest.test_case "node and edge LCM: equal path counts" `Quick test_node_edge_equal_counts;
    Alcotest.test_case "all variants safe on workloads" `Quick test_safety_all_variants;
    Alcotest.test_case "running example: isolated node" `Quick test_running_example_isolated_node;
  ]
