(* SSA: construction, validation, destruction, value numbering. *)

module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Lower = Lcm_cfg.Lower
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr
module Ssa = Lcm_ssa.Ssa
module Frontier = Lcm_ssa.Frontier
module Destruct = Lcm_ssa.Destruct
module Dvnt = Lcm_ssa.Dvnt
module Oracle = Lcm_eval.Oracle
module Interp = Lcm_eval.Interp
module Suites = Lcm_eval.Suites
module Gencfg = Lcm_eval.Gencfg
module Prng = Lcm_support.Prng

let lower = Lower.parse_and_lower_func

(* ---- dominance frontiers ---- *)

let test_frontier_diamond () =
  let g = Cfg.create () in
  let a = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let b = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let c = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let d = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto a);
  Cfg.set_term g a (Cfg.Branch (Expr.Var "p", b, c));
  Cfg.set_term g b (Cfg.Goto d);
  Cfg.set_term g c (Cfg.Goto d);
  Cfg.set_term g d (Cfg.Goto (Cfg.exit_label g));
  let f = Frontier.compute g in
  Alcotest.(check (list int)) "DF(b) = {d}" [ d ] (Frontier.frontier f b);
  Alcotest.(check (list int)) "DF(c) = {d}" [ d ] (Frontier.frontier f c);
  Alcotest.(check (list int)) "DF(a) = {}" [] (Frontier.frontier f a);
  Alcotest.(check (list int)) "DF(d) = {}" [] (Frontier.frontier f d)

let test_frontier_loop () =
  (* A loop header is in the frontier of its own body. *)
  let g = lower "function f(n) { i = 0; while (i < n) { i = i + 1; } return i; }" in
  let f = Frontier.compute g in
  let headers =
    List.filter (fun l -> List.length (Cfg.predecessors g l) >= 2) (Cfg.labels g)
  in
  Alcotest.(check bool) "some block has the header in its frontier" true
    (List.exists
       (fun l -> List.exists (fun h -> List.mem h headers) (Frontier.frontier f l))
       (Cfg.labels g))

(* ---- construction ---- *)

let test_ssa_single_assignment () =
  let g = lower "function f(a, p) { x = a + 1; if (p > 0) { x = a + 2; } return x; }" in
  let ssa = Ssa.of_cfg g in
  (match Ssa.check ssa with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "has a phi for x" true
    (List.exists
       (fun l -> List.exists (fun (p : Ssa.phi) -> p.Ssa.orig = "x") (Ssa.phis ssa l))
       (Cfg.labels (Ssa.graph ssa)))

let test_ssa_loop_phi () =
  let g = lower "function f(n) { i = 0; while (i < n) { i = i + 1; } return i; }" in
  let ssa = Ssa.of_cfg g in
  (match Ssa.check ssa with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check bool) "phi for the loop variable" true
    (List.exists
       (fun l -> List.exists (fun (p : Ssa.phi) -> p.Ssa.orig = "i") (Ssa.phis ssa l))
       (Ssa.phi_blocks ssa))

let test_ssa_inputs_keep_names () =
  (* A parameter read before any write keeps its original name, so the
     interpreter can still bind it. *)
  let g = lower "function f(a) { x = a + 1; return x; }" in
  let ssa = Ssa.of_cfg g in
  let reads_a =
    List.exists
      (fun l ->
        List.exists (fun i -> List.mem "a" (Instr.uses i)) (Cfg.instrs (Ssa.graph ssa) l))
      (Cfg.labels (Ssa.graph ssa))
  in
  Alcotest.(check bool) "a still read by name" true reads_a

(* ---- destruction: the round trip ---- *)

let roundtrip_check name src inputs =
  let g = lower src in
  let ssa = Ssa.of_cfg g in
  (match Ssa.check ssa with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: ssa check: %s" name m);
  let back, _ = Destruct.run ssa in
  match Oracle.semantics ~inputs (Prng.of_int 13) ~original:g ~transformed:back with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" name m

let test_roundtrip_programs () =
  roundtrip_check "branch" "function f(a, p) { x = 1; if (p > 0) { x = a; } return x + 1; }" [ "a"; "p" ];
  roundtrip_check "loop"
    "function f(a, n) { s = 0; i = 0; while (i < n) { s = s + a; i = i + 1; } return s; }"
    [ "a"; "n" ];
  roundtrip_check "nested"
    "function f(n, m) { s = 0; i = 0; while (i < n) { j = 0; while (j < m) { s = s + 1; j = j + 1; } \
     i = i + 1; } return s; }"
    [ "n"; "m" ];
  roundtrip_check "prints" "function f(a, p) { if (p > 0) { print a; a = a + 1; } print a; return a; }" [ "a"; "p" ]

let test_roundtrip_workloads () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let ssa = Ssa.of_cfg g in
      (match Ssa.check ssa with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: ssa check: %s" w.Suites.name m);
      let back, _ = Destruct.run ssa in
      match Oracle.semantics ~inputs:w.Suites.inputs (Prng.of_int 17) ~original:g ~transformed:back with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" w.Suites.name m)
    Suites.all

(* The classic swap: two phis exchanging values; destruction must break
   the parallel-copy cycle with a temporary. *)
let test_swap_cycle () =
  let src =
    "function f(a, b, n) { x = a; y = b; i = 0; while (i < n) { t = x; x = y; y = t; i = i + 1; } \
     return x - y; }"
  in
  let g = lower src in
  let ssa = Ssa.of_cfg g in
  let back, _ = Destruct.run ssa in
  match Oracle.semantics ~inputs:[ "a"; "b"; "n" ] (Prng.of_int 19) ~original:g ~transformed:back with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* Destroying after copy-propagating the phi-feeding copies away creates
   a true cycle; exercise sequentialize's cycle breaker directly. *)
let test_swap_cycle_direct () =
  let g = lower "function f(a, b, p) { x = a; y = b; if (p > 0) { t = x; x = y; y = t; } return x - y; }" in
  let ssa = Ssa.of_cfg g in
  let ssa', _ = Dvnt.run ssa in
  let back, _ = Destruct.run ssa' in
  match Oracle.semantics ~inputs:[ "a"; "b"; "p" ] (Prng.of_int 23) ~original:g ~transformed:back with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* ---- DVNT ---- *)

let test_dvnt_dominated_redundancy () =
  (* The second a+b is dominated by the first: DVNT removes it. *)
  let g = lower "function f(a, b, p) { x = a + b; if (p > 0) { y = a + b; print y; } return x; }" in
  let back, stats = Dvnt.pass g in
  Alcotest.(check bool) "replaced at least one" true (stats.Dvnt.exprs_replaced >= 1);
  match Oracle.semantics ~inputs:[ "a"; "b"; "p" ] (Prng.of_int 29) ~original:g ~transformed:back with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_dvnt_misses_diamond () =
  (* The diamond's partial redundancy is NOT dominator-visible: DVNT must
     leave it (this is the gap PRE closes). *)
  let w = Option.get (Suites.find "diamond") in
  let g = Suites.graph w in
  let _, stats = Dvnt.pass g in
  Alcotest.(check int) "nothing replaced" 0 stats.Dvnt.exprs_replaced

let test_dvnt_meaningless_phi () =
  (* Both arms assign the same value: the join phi is meaningless. *)
  let g = lower "function f(a, p) { if (p > 0) { x = a; } else { x = a; } return x + 1; }" in
  let ssa = Ssa.of_cfg g in
  let _, stats = Dvnt.run ssa in
  Alcotest.(check bool) "phi simplified" true (stats.Dvnt.phis_simplified >= 1)

let test_dvnt_semantics_on_workloads () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let back, _ = Dvnt.pass g in
      match Oracle.semantics ~inputs:w.Suites.inputs (Prng.of_int 31) ~original:g ~transformed:back with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" w.Suites.name m)
    Suites.all

let test_dvnt_never_adds_evals () =
  List.iter
    (fun w ->
      let g = Suites.graph w in
      let pool = Cfg.candidate_pool g in
      let back, _ = Dvnt.pass g in
      match Oracle.computations_leq ~pool back g with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" w.Suites.name m)
    Suites.all

(* Property: the SSA round trip preserves semantics on random programs. *)
let prop_roundtrip_random =
  QCheck2.Test.make ~name:"SSA roundtrip on random programs" ~count:50 (QCheck2.Gen.int_bound 100_000)
    (fun seed ->
      let rng = Prng.of_int seed in
      let f = Gencfg.random_func rng in
      let g = Lower.func f in
      let ssa = Ssa.of_cfg g in
      (match Ssa.check ssa with
      | Ok () -> ()
      | Error m -> QCheck2.Test.fail_reportf "check: %s" m);
      let back, _ = Destruct.run ssa in
      let inputs = Gencfg.func_inputs Gencfg.default_func_params in
      match Oracle.semantics ~runs:8 ~inputs (Prng.of_int (seed + 1)) ~original:g ~transformed:back with
      | Ok () -> true
      | Error m -> QCheck2.Test.fail_reportf "%s" m)

(* Property: the full DVNT pipeline preserves semantics and never adds
   evaluations on random raw graphs. *)
let prop_dvnt_random =
  QCheck2.Test.make ~name:"DVNT pipeline on random graphs" ~count:50 (QCheck2.Gen.int_bound 100_000)
    (fun seed ->
      let rng = Prng.of_int (seed + 31337) in
      let g = Gencfg.random_cfg rng in
      let pool = Cfg.candidate_pool g in
      let back, _ = Dvnt.pass g in
      (match Oracle.computations_leq ~max_decisions:8 ~pool back g with
      | Ok () -> ()
      | Error m -> QCheck2.Test.fail_reportf "counts: %s" m);
      match
        Oracle.semantics ~runs:6 ~inputs:[ "a"; "b"; "c"; "d" ] (Prng.of_int (seed + 2)) ~original:g
          ~transformed:back
      with
      | Ok () -> true
      | Error m -> QCheck2.Test.fail_reportf "%s" m)

let suite =
  [
    Alcotest.test_case "frontier: diamond" `Quick test_frontier_diamond;
    Alcotest.test_case "frontier: loop header" `Quick test_frontier_loop;
    Alcotest.test_case "ssa: single assignment + phi" `Quick test_ssa_single_assignment;
    Alcotest.test_case "ssa: loop phi" `Quick test_ssa_loop_phi;
    Alcotest.test_case "ssa: inputs keep names" `Quick test_ssa_inputs_keep_names;
    Alcotest.test_case "roundtrip: programs" `Quick test_roundtrip_programs;
    Alcotest.test_case "roundtrip: workloads" `Quick test_roundtrip_workloads;
    Alcotest.test_case "swap cycle via loop" `Quick test_swap_cycle;
    Alcotest.test_case "swap cycle after DVNT" `Quick test_swap_cycle_direct;
    Alcotest.test_case "dvnt: dominated redundancy removed" `Quick test_dvnt_dominated_redundancy;
    Alcotest.test_case "dvnt: diamond out of reach" `Quick test_dvnt_misses_diamond;
    Alcotest.test_case "dvnt: meaningless phi" `Quick test_dvnt_meaningless_phi;
    Alcotest.test_case "dvnt: semantics on workloads" `Quick test_dvnt_semantics_on_workloads;
    Alcotest.test_case "dvnt: never adds evaluations" `Quick test_dvnt_never_adds_evals;
    QCheck_alcotest.to_alcotest prop_roundtrip_random;
    QCheck_alcotest.to_alcotest prop_dvnt_random;
  ]
