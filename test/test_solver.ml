(* The generic solver: all four problem shapes against hand-computed
   fixpoints on a small graph, plus convergence behaviour. *)

module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Solver = Lcm_dataflow.Solver
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr

(* entry → a → (b | c) → d → exit with a back edge d → a. *)
let graph () =
  let g = Cfg.create () in
  let a = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let b = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let c = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let d = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto a);
  Cfg.set_term g a (Cfg.Branch (Expr.Var "p", b, c));
  Cfg.set_term g b (Cfg.Goto d);
  Cfg.set_term g c (Cfg.Goto d);
  Cfg.set_term g d (Cfg.Branch (Expr.Var "q", a, Cfg.exit_label g));
  (g, a, b, c, d)

(* One bit; block b "generates" it, block c "kills" it. *)
let transfer ~gen_at ~kill_at l ~src ~dst =
  ignore (Bitvec.blit ~src ~dst);
  if List.exists (Label.equal l) kill_at then Bitvec.set dst 0 false;
  if List.exists (Label.equal l) gen_at then Bitvec.set dst 0 true

let run g direction confluence ~gen_at ~kill_at =
  Solver.run g
    {
      Solver.nbits = 1;
      direction;
      confluence;
      boundary = Bitvec.create 1;
      transfer = transfer ~gen_at ~kill_at;
    }

let bit v = Bitvec.get v 0

let test_forward_inter () =
  (* Gen in b only: at the join d, must-availability fails (c path). *)
  let g, a, b, c, d = graph () in
  let r = run g Solver.Forward Solver.Inter ~gen_at:[ b ] ~kill_at:[] in
  Alcotest.(check bool) "out b" true (bit (r.Solver.block_out b));
  Alcotest.(check bool) "out c" false (bit (r.Solver.block_out c));
  Alcotest.(check bool) "in d (must)" false (bit (r.Solver.block_in d));
  Alcotest.(check bool) "in a (backedge meet)" false (bit (r.Solver.block_in a));
  ignore c

let test_forward_union () =
  (* Same gen, may-analysis: d sees it, and around the back edge so does
     a. *)
  let g, a, b, _c, d = graph () in
  let r = run g Solver.Forward Solver.Union ~gen_at:[ b ] ~kill_at:[] in
  Alcotest.(check bool) "in d (may)" true (bit (r.Solver.block_in d));
  Alcotest.(check bool) "in a via back edge" true (bit (r.Solver.block_in a))

let test_backward_inter () =
  (* Gen at d: everything above d must reach it... except paths that exit
     — but the only exit is below d, so a/b/c all anticipate. *)
  let g, a, b, c, d = graph () in
  let r = run g Solver.Backward Solver.Inter ~gen_at:[ d ] ~kill_at:[] in
  Alcotest.(check bool) "out a" true (bit (r.Solver.block_out a));
  Alcotest.(check bool) "out b" true (bit (r.Solver.block_out b));
  Alcotest.(check bool) "out c" true (bit (r.Solver.block_out c));
  (* At d's exit: the q-branch goes to a (leading back to d: gen) or to
     the exit (no gen): must fails. *)
  Alcotest.(check bool) "out d" false (bit (r.Solver.block_out d))

let test_backward_union () =
  let g, _a, b, _c, d = graph () in
  let r = run g Solver.Backward Solver.Union ~gen_at:[ b ] ~kill_at:[] in
  (* b is reachable (backwards) from d's exit via the back edge. *)
  Alcotest.(check bool) "out d (may, around the loop)" true (bit (r.Solver.block_out d))

let test_kill () =
  let g, a, b, _c, d = graph () in
  let r = run g Solver.Forward Solver.Union ~gen_at:[ a ] ~kill_at:[ b ] in
  Alcotest.(check bool) "killed on b path" true (bit (r.Solver.block_in d));
  Alcotest.(check bool) "out b killed" false (bit (r.Solver.block_out b));
  ignore d

let test_counts_monotone () =
  let g, a, _b, _c, _d = graph () in
  let r = run g Solver.Forward Solver.Inter ~gen_at:[ a ] ~kill_at:[] in
  Alcotest.(check bool) "at least two sweeps (loop)" true (r.Solver.sweeps >= 2);
  Alcotest.(check bool) "visits = sweeps * blocks" true
    (r.Solver.visits = r.Solver.sweeps * 6)

let suite =
  [
    Alcotest.test_case "forward/inter" `Quick test_forward_inter;
    Alcotest.test_case "forward/union" `Quick test_forward_union;
    Alcotest.test_case "backward/inter" `Quick test_backward_inter;
    Alcotest.test_case "backward/union" `Quick test_backward_union;
    Alcotest.test_case "kill" `Quick test_kill;
    Alcotest.test_case "sweep accounting" `Quick test_counts_monotone;
  ]
