(* The generic solver: all four problem shapes against hand-computed
   fixpoints on a small graph, plus convergence behaviour. *)

module Bitvec = Lcm_support.Bitvec
module Cfg = Lcm_cfg.Cfg
module Label = Lcm_cfg.Label
module Solver = Lcm_dataflow.Solver
module Expr = Lcm_ir.Expr
module Instr = Lcm_ir.Instr

(* entry → a → (b | c) → d → exit with a back edge d → a. *)
let graph () =
  let g = Cfg.create () in
  let a = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let b = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let c = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  let d = Cfg.add_block g ~instrs:[] ~term:Cfg.Halt in
  Cfg.set_term g (Cfg.entry g) (Cfg.Goto a);
  Cfg.set_term g a (Cfg.Branch (Expr.Var "p", b, c));
  Cfg.set_term g b (Cfg.Goto d);
  Cfg.set_term g c (Cfg.Goto d);
  Cfg.set_term g d (Cfg.Branch (Expr.Var "q", a, Cfg.exit_label g));
  (g, a, b, c, d)

(* One bit; block b "generates" it, block c "kills" it. *)
let transfer ~gen_at ~kill_at l ~src ~dst =
  ignore (Bitvec.blit ~src ~dst);
  if List.exists (Label.equal l) kill_at then Bitvec.set dst 0 false;
  if List.exists (Label.equal l) gen_at then Bitvec.set dst 0 true

let run g direction confluence ~gen_at ~kill_at =
  Solver.run g
    {
      Solver.nbits = 1;
      direction;
      confluence;
      boundary = Bitvec.create 1;
      transfer = transfer ~gen_at ~kill_at;
    }

let bit v = Bitvec.get v 0

let test_forward_inter () =
  (* Gen in b only: at the join d, must-availability fails (c path). *)
  let g, a, b, c, d = graph () in
  let r = run g Solver.Forward Solver.Inter ~gen_at:[ b ] ~kill_at:[] in
  Alcotest.(check bool) "out b" true (bit (r.Solver.block_out b));
  Alcotest.(check bool) "out c" false (bit (r.Solver.block_out c));
  Alcotest.(check bool) "in d (must)" false (bit (r.Solver.block_in d));
  Alcotest.(check bool) "in a (backedge meet)" false (bit (r.Solver.block_in a));
  ignore c

let test_forward_union () =
  (* Same gen, may-analysis: d sees it, and around the back edge so does
     a. *)
  let g, a, b, _c, d = graph () in
  let r = run g Solver.Forward Solver.Union ~gen_at:[ b ] ~kill_at:[] in
  Alcotest.(check bool) "in d (may)" true (bit (r.Solver.block_in d));
  Alcotest.(check bool) "in a via back edge" true (bit (r.Solver.block_in a))

let test_backward_inter () =
  (* Gen at d: everything above d must reach it... except paths that exit
     — but the only exit is below d, so a/b/c all anticipate. *)
  let g, a, b, c, d = graph () in
  let r = run g Solver.Backward Solver.Inter ~gen_at:[ d ] ~kill_at:[] in
  Alcotest.(check bool) "out a" true (bit (r.Solver.block_out a));
  Alcotest.(check bool) "out b" true (bit (r.Solver.block_out b));
  Alcotest.(check bool) "out c" true (bit (r.Solver.block_out c));
  (* At d's exit: the q-branch goes to a (leading back to d: gen) or to
     the exit (no gen): must fails. *)
  Alcotest.(check bool) "out d" false (bit (r.Solver.block_out d))

let test_backward_union () =
  let g, _a, b, _c, d = graph () in
  let r = run g Solver.Backward Solver.Union ~gen_at:[ b ] ~kill_at:[] in
  (* b is reachable (backwards) from d's exit via the back edge. *)
  Alcotest.(check bool) "out d (may, around the loop)" true (bit (r.Solver.block_out d))

let test_kill () =
  let g, a, b, _c, d = graph () in
  let r = run g Solver.Forward Solver.Union ~gen_at:[ a ] ~kill_at:[ b ] in
  Alcotest.(check bool) "killed on b path" true (bit (r.Solver.block_in d));
  Alcotest.(check bool) "out b killed" false (bit (r.Solver.block_out b));
  ignore d

let test_counts_monotone () =
  let g, a, _b, _c, _d = graph () in
  (* Worklist engine: every reachable block is visited at least once, the
     back edge forces at least one re-visit, and visits are bounded by what
     a round-robin sweep would have paid. *)
  let r = run g Solver.Forward Solver.Inter ~gen_at:[ a ] ~kill_at:[] in
  Alcotest.(check bool) "visits cover blocks" true (r.Solver.visits >= 6);
  Alcotest.(check bool) "at least depth 1" true (r.Solver.sweeps >= 1);
  Alcotest.(check bool) "depth bounds visits" true (r.Solver.visits <= r.Solver.sweeps * 6);
  (* Reference engine keeps the historical meaning: every sweep transfers
     every reachable block. *)
  let s =
    Solver.run ~engine:Solver.Sweep g
      {
        Solver.nbits = 1;
        direction = Solver.Forward;
        confluence = Solver.Inter;
        boundary = Bitvec.create 1;
        transfer = transfer ~gen_at:[ a ] ~kill_at:[];
      }
  in
  Alcotest.(check bool) "sweep engine: at least two sweeps" true (s.Solver.sweeps >= 2);
  Alcotest.(check bool) "sweep engine: visits = sweeps * blocks" true
    (s.Solver.visits = s.Solver.sweeps * 6)

(* ------------------------------------------------------------------ *)
(* Property: the worklist engine computes bit-identical block_in/block_out
   to the reference round-robin sweep, on random CFGs, for all four problem
   shapes, with random monotone gen/kill transfers whose width straddles a
   word boundary. *)

module Prng = Lcm_support.Prng
module Gencfg = Lcm_eval.Gencfg

let random_gen_kill rng bound nbits =
  Array.init bound (fun _ ->
      let random_vec () =
        let v = Bitvec.create nbits in
        for i = 0 to nbits - 1 do
          if Prng.chance rng ~num:1 ~den:4 then Bitvec.set v i true
        done;
        v
      in
      (random_vec (), random_vec ()))

let test_worklist_equals_sweep () =
  let rng = Prng.of_int 9001 in
  for _case = 1 to 100 do
    let num_blocks = Prng.int_in rng 3 40 in
    let g =
      Gencfg.random_cfg ~params:{ Gencfg.default_cfg_params with num_blocks } rng
    in
    let nbits = 65 in
    let table = random_gen_kill rng (Cfg.label_bound g) nbits in
    let transfer l ~src ~dst =
      let gen, kill = table.(l) in
      ignore (Bitvec.blit ~src ~dst);
      ignore (Bitvec.diff_into ~into:dst kill);
      ignore (Bitvec.union_into ~into:dst gen)
    in
    List.iter
      (fun direction ->
        List.iter
          (fun confluence ->
            let spec =
              { Solver.nbits; direction; confluence; boundary = Bitvec.create nbits; transfer }
            in
            let w = Solver.run ~engine:Solver.Worklist g spec in
            let s = Solver.run ~engine:Solver.Sweep g spec in
            List.iter
              (fun l ->
                Alcotest.(check bool) "block_in identical" true
                  (Bitvec.equal (w.Solver.block_in l) (s.Solver.block_in l));
                Alcotest.(check bool) "block_out identical" true
                  (Bitvec.equal (w.Solver.block_out l) (s.Solver.block_out l)))
              (Cfg.labels g))
          [ Solver.Union; Solver.Inter ])
      [ Solver.Forward; Solver.Backward ]
  done

(* ------------------------------------------------------------------ *)
(* The full LCM cascade against a naive reference: reference avail/antic
   via the sweep engine, EARLIEST from the paper's formula, LATERIN by
   round-robin sweeps over predecessor lists (the seed implementation), and
   the INSERT/DELETE formulas on top.  The production [Lcm_edge.analyze]
   (worklist throughout) must produce identical insert/delete sets. *)

module Local = Lcm_dataflow.Local
module Lcm_edge = Lcm_core.Lcm_edge
module Suites = Lcm_eval.Suites
module Order = Lcm_cfg.Order

let reference_lcm g =
  let pool = Cfg.candidate_pool g in
  let local = Local.compute g pool in
  let n = Local.nbits local in
  let solve direction transfer =
    Solver.run ~engine:Solver.Sweep g
      { Solver.nbits = n; direction; confluence = Solver.Inter; boundary = Bitvec.create n; transfer }
  in
  let avail =
    solve Solver.Forward (fun l ~src ~dst ->
        ignore (Bitvec.blit ~src ~dst);
        ignore (Bitvec.inter_into ~into:dst (Local.transp local l));
        ignore (Bitvec.union_into ~into:dst (Local.comp local l)))
  in
  let antic =
    solve Solver.Backward (fun l ~src ~dst ->
        ignore (Bitvec.blit ~src ~dst);
        ignore (Bitvec.inter_into ~into:dst (Local.transp local l));
        ignore (Bitvec.union_into ~into:dst (Local.antloc local l)))
  in
  let entry = Cfg.entry g in
  let earliest (p, b) =
    let v = Bitvec.copy (antic.Solver.block_in b) in
    ignore (Bitvec.diff_into ~into:v (avail.Solver.block_out p));
    if not (Label.equal p entry) then begin
      let movable = Bitvec.inter (Local.transp local p) (antic.Solver.block_out p) in
      ignore (Bitvec.diff_into ~into:v movable)
    end;
    v
  in
  let earliest_tbl = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace earliest_tbl e (earliest e)) (Cfg.edges g);
  let laterin = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace laterin l (Bitvec.create_full n)) (Cfg.labels g);
  Hashtbl.replace laterin entry (Bitvec.create n);
  let order = Order.compute g in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if not (Label.equal b entry) then begin
          let scratch = Bitvec.create_full n in
          List.iter
            (fun p ->
              let later_pb = Bitvec.copy (Hashtbl.find laterin p) in
              ignore (Bitvec.diff_into ~into:later_pb (Local.antloc local p));
              ignore (Bitvec.union_into ~into:later_pb (Hashtbl.find earliest_tbl (p, b)));
              ignore (Bitvec.inter_into ~into:scratch later_pb))
            (Cfg.predecessors g b);
          if Bitvec.blit ~src:scratch ~dst:(Hashtbl.find laterin b) then changed := true
        end)
      (Order.reverse_postorder order)
  done;
  let insert =
    List.filter_map
      (fun (p, b) ->
        let v = Bitvec.copy (Hashtbl.find laterin p) in
        ignore (Bitvec.diff_into ~into:v (Local.antloc local p));
        ignore (Bitvec.union_into ~into:v (Hashtbl.find earliest_tbl (p, b)));
        ignore (Bitvec.diff_into ~into:v (Hashtbl.find laterin b));
        if Bitvec.is_empty v then None else Some ((p, b), v))
      (Cfg.edges g)
  in
  let delete =
    List.filter_map
      (fun b ->
        if Label.equal b entry then None
        else begin
          let v = Bitvec.copy (Local.antloc local b) in
          ignore (Bitvec.diff_into ~into:v (Hashtbl.find laterin b));
          if Bitvec.is_empty v then None else Some (b, v)
        end)
      (Cfg.labels g)
  in
  (insert, delete)

let check_same_placement name g =
  let a = Lcm_edge.analyze g in
  let ref_insert, ref_delete = reference_lcm g in
  let edge_str (p, b) = Printf.sprintf "B%d->B%d" p b in
  Alcotest.(check (list string))
    (name ^ ": insert edges")
    (List.map (fun (e, _) -> edge_str e) ref_insert)
    (List.map (fun (e, _) -> edge_str e) a.Lcm_edge.insert);
  List.iter2
    (fun (e, v) (_, v') ->
      Alcotest.(check bool) (name ^ ": insert set at " ^ edge_str e) true (Bitvec.equal v v'))
    ref_insert a.Lcm_edge.insert;
  Alcotest.(check (list int))
    (name ^ ": delete blocks")
    (List.map fst ref_delete)
    (List.map fst a.Lcm_edge.delete);
  List.iter2
    (fun (b, v) (_, v') ->
      Alcotest.(check bool)
        (name ^ ": delete set at B" ^ string_of_int b)
        true (Bitvec.equal v v'))
    ref_delete a.Lcm_edge.delete

let test_lcm_matches_reference_suites () =
  List.iter (fun w -> check_same_placement w.Suites.name (Suites.graph w)) Suites.all

let test_lcm_matches_reference_random () =
  let rng = Prng.of_int 515151 in
  for case = 1 to 50 do
    let num_blocks = Prng.int_in rng 3 30 in
    let g =
      Gencfg.random_cfg ~params:{ Gencfg.default_cfg_params with num_blocks } rng
    in
    check_same_placement (Printf.sprintf "random-%d" case) g
  done

let suite =
  [
    Alcotest.test_case "forward/inter" `Quick test_forward_inter;
    Alcotest.test_case "forward/union" `Quick test_forward_union;
    Alcotest.test_case "backward/inter" `Quick test_backward_inter;
    Alcotest.test_case "backward/union" `Quick test_backward_union;
    Alcotest.test_case "kill" `Quick test_kill;
    Alcotest.test_case "sweep accounting" `Quick test_counts_monotone;
    Alcotest.test_case "worklist ≡ sweep (100 random CFGs × 4 shapes)" `Quick
      test_worklist_equals_sweep;
    Alcotest.test_case "lcm-edge placement ≡ naive reference (suites)" `Quick
      test_lcm_matches_reference_suites;
    Alcotest.test_case "lcm-edge placement ≡ naive reference (random)" `Quick
      test_lcm_matches_reference_random;
  ]
